// SEATS: repair the airline-ticketing benchmark and sweep client counts on
// the globally distributed cluster — the regime where coordination is most
// expensive and schema refactoring buys the most (the paper's Fig. 14,
// right panel).
//
// Run with: go run ./examples/seats
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"atropos"
)

func main() {
	seats := atropos.BenchmarkByName("SEATS")
	prog, err := seats.Program()
	if err != nil {
		log.Fatal(err)
	}

	result, err := atropos.Repair(context.Background(), prog, atropos.EC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SEATS: %d anomalies under EC, %d remain after repair\n",
		len(result.Initial), len(result.Remaining))
	fmt.Printf("transactions still needing SC: %v\n\n", result.SerializableTxns)

	res, err := atropos.Perf(atropos.PerfConfig{
		Benchmark:    seats,
		Topology:     atropos.GlobalCluster,
		ClientCounts: []int{10, 50, 100},
		Duration:     10 * time.Second,
		Scale:        atropos.Scale{Records: 100},
		Seed:         7,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(res.Format())

	// The headline comparison: the safe deployment (AT-SC) versus
	// serializing everything (SC).
	var sc, atsc float64
	for _, s := range res.Series {
		n := len(s.Points) - 1
		switch s.Label {
		case "SC":
			sc = s.Points[n].Throughput
		case "AT-SC":
			atsc = s.Points[n].Throughput
		}
	}
	if sc > 0 {
		fmt.Printf("\nAT-SC over SC at peak load: %+.0f%% throughput\n", 100*(atsc-sc)/sc)
	}
}
