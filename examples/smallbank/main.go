// SmallBank: repair the banking benchmark and measure what the repair buys
// in deployment performance — one point of the paper's Fig. 12a per
// deployment (EC, AT-EC, SC, AT-SC) on a simulated US-wide cluster.
//
// Run with: go run ./examples/smallbank
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"atropos"
)

func main() {
	bank := atropos.BenchmarkByName("SmallBank")
	prog, err := bank.Program()
	if err != nil {
		log.Fatal(err)
	}

	// Repair: the deposit counters become append-only ledgers; conditional
	// writes (overdraft guards) cannot be repaired and stay anomalous.
	result, err := atropos.Repair(context.Background(), prog, atropos.EC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("SmallBank: %d anomalies under EC, %d remain after repair\n",
		len(result.Initial), len(result.Remaining))
	fmt.Printf("transactions still needing SC: %v\n", result.SerializableTxns)
	fmt.Printf("value correspondences introduced:\n")
	for _, c := range result.Corrs {
		fmt.Printf("  %s\n", c)
	}
	fmt.Println()

	// Deployment comparison at 100 clients on the US topology.
	scale := atropos.Scale{Records: 100}
	rows := bank.Rows(scale)
	atRows, err := atropos.MigrateRows(prog, result.Program, result.Corrs, rows)
	if err != nil {
		log.Fatal(err)
	}
	serializable := map[string]bool{}
	for _, t := range result.SerializableTxns {
		serializable[t] = true
	}
	variants := []struct {
		label string
		prog  *atropos.Program
		rows  []atropos.TableRow
		mode  atropos.ClusterMode
		ser   map[string]bool
	}{
		{"EC   ", prog, rows, atropos.ModeEC, nil},
		{"AT-EC", result.Program, atRows, atropos.ModeEC, nil},
		{"SC   ", prog, rows, atropos.ModeSC, nil},
		{"AT-SC", result.Program, atRows, atropos.ModeATSC, serializable},
	}
	fmt.Println("deployment comparison, 100 clients, US cluster (Fig. 12a point):")
	for _, v := range variants {
		res, err := atropos.Simulate(atropos.ClusterConfig{
			Program:          v.prog,
			Mix:              bank.Mix,
			Scale:            scale,
			Rows:             v.rows,
			Topology:         atropos.USCluster,
			Clients:          100,
			Duration:         15 * time.Second,
			Warmup:           time.Second,
			Seed:             1,
			Mode:             v.mode,
			SerializableTxns: v.ser,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("  %s  %8.1f txn/s  mean %7.2f ms  p95 %7.2f ms\n",
			v.label, res.Point.Throughput, res.Point.MeanMs, res.Point.P95Ms)
	}
}
