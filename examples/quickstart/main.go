// Quickstart: the paper's running example end to end (Figs. 1-3).
//
// We define the course-management program of Fig. 1, ask Atropos which
// command pairs can witness serializability anomalies under eventual
// consistency, repair the program by schema refactoring, and print the
// result — which matches Fig. 3: the email address and course availability
// fold into STUDENT, and the enrollment counter becomes an append-only
// logging table.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"

	"atropos"
)

const courseware = `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}
`

func main() {
	prog, err := atropos.Parse(courseware)
	if err != nil {
		log.Fatal(err)
	}

	ctx := context.Background()

	// Step 1: which access pairs are anomalous under eventual consistency?
	report, err := atropos.Analyze(ctx, prog, atropos.EC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("anomalous access pairs under EC: %d\n", report.Count())
	for _, p := range report.Pairs {
		fmt.Printf("  %s\n", p)
	}

	// Step 2: repair by schema refactoring.
	result, err := atropos.Repair(ctx, prog, atropos.EC)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nrepaired %d/%d pairs in %.2fs\n",
		result.RepairedCount(), len(result.Initial), result.Elapsed.Seconds())
	for _, s := range result.Steps {
		fmt.Printf("  %s\n", s)
	}

	// Step 3: the refactored program (compare with the paper's Fig. 3).
	fmt.Println("\n-- refactored program --")
	fmt.Println(atropos.Format(result.Program))

	// Every transaction is now safe under plain eventual consistency.
	if len(result.SerializableTxns) == 0 {
		fmt.Println("no transaction needs serializability any more")
	}
}
