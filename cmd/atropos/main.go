// Command atropos analyzes and repairs database programs: it reports the
// anomalous access pairs found under a consistency model and prints the
// refactored program.
//
// Usage:
//
//	atropos [flags] program.dsl ...   # analyze + repair DSL files
//	atropos [flags] -bench SmallBank
//
// Flags:
//
//	-model EC|CC|RR|SC   consistency model (default EC)
//	-analyze             only detect anomalies, do not repair
//	-steps               print the refactoring steps applied
//	-bench NAME          use built-in benchmarks instead of files
//	                     (comma-separated names, or "all")
//	-parallel N          analyze inputs on N workers (0 = GOMAXPROCS)
//	-incremental         cached incremental detection inside repair
//	                     (default true; -incremental=false re-solves
//	                     every SAT query from scratch)
//	-certify             replay every detected anomaly as an executable
//	                     certificate in the cluster simulator; with
//	                     repair, also run the SC and repaired-program
//	                     negative controls
//
// Multiple inputs are analyzed concurrently on a bounded worker pool;
// output order matches input order.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strings"

	"atropos"
	"atropos/internal/exp"
)

func main() {
	model := flag.String("model", "EC", "consistency model: EC, CC, RR, or SC")
	analyzeOnly := flag.Bool("analyze", false, "only detect anomalies")
	showSteps := flag.Bool("steps", false, "print refactoring steps")
	benchName := flag.String("bench", "", `built-in benchmark names, comma-separated, or "all"`)
	outPath := flag.String("out", "", "write the refactored program to this file instead of stdout (single input only)")
	parallel := flag.Int("parallel", 0, "worker goroutines for multiple inputs (0 = GOMAXPROCS); with one input, the detection fan-out width (0 = min(GOMAXPROCS, 4))")
	portfolio := flag.Int("portfolio", 1, "race this many diversified SAT solver replicas per detection query, first verdict wins (1 = off)")
	incremental := flag.Bool("incremental", true, "use the cached incremental detection engine inside repair")
	certify := flag.Bool("certify", false, "replay every detected anomaly as an executable certificate in the cluster simulator")
	flag.Parse()

	m, err := atropos.ParseModel(*model)
	if err != nil {
		fatal(err)
	}
	inputs, err := loadInputs(*benchName, flag.Args())
	if err != nil {
		fatal(err)
	}
	if *outPath != "" && len(inputs) != 1 {
		fatal(fmt.Errorf("-out requires exactly one input, got %d", len(inputs)))
	}

	// Analyze/repair every input concurrently on the experiment engine's
	// worker pool; buffer per-input output so the report order matches the
	// input order.
	// With multiple inputs -parallel fans out across them and detection
	// inside each repair stays sequential (the cores are already claimed);
	// with a single input it instead bounds the detection session's
	// (txn, witness) fan-out, defaulting to the multi-core fast path
	// (reports are identical at every setting).
	opts := []atropos.RepairOption{
		atropos.WithIncrementalDetect(*incremental),
		atropos.WithCertify(*certify),
		atropos.WithPortfolio(*portfolio),
	}
	if len(inputs) == 1 {
		opts = append(opts, atropos.WithDetectParallelism(*parallel))
	} else {
		opts = append(opts, atropos.WithDetectParallelism(1))
	}
	ctx := context.Background()
	outputs := make([]string, len(inputs))
	err = exp.ForEach(exp.Workers(*parallel), len(inputs), func(i int) error {
		var perr error
		outputs[i], perr = process(ctx, inputs[i], m, *analyzeOnly, *showSteps, *certify, *outPath, opts)
		return perr
	})
	if err != nil {
		fatal(err)
	}
	for _, out := range outputs {
		fmt.Print(out)
	}
}

type input struct {
	name string
	prog *atropos.Program
}

// process runs one input through the pipeline, returning its full report.
func process(ctx context.Context, in input, m atropos.Model, analyzeOnly, showSteps, certify bool, outPath string, opts []atropos.RepairOption) (string, error) {
	var b strings.Builder
	if analyzeOnly {
		if certify {
			cert, report, err := atropos.Certify(ctx, in.prog, m)
			if err != nil {
				return "", err
			}
			fmt.Fprintf(&b, "%s: %d anomalous access pairs under %s, %d certified by replay (%.0f%%)\n",
				in.name, report.Count(), m, cert.Certified, 100*cert.Rate())
			for _, out := range cert.Outcomes {
				status := "replayed " + out.Method
				if !out.Reproduced {
					status = "not reproduced: " + out.Reason
				}
				fmt.Fprintf(&b, "  %s  [%s]\n", out.Pair, status)
			}
			return b.String(), nil
		}
		report, err := atropos.Analyze(ctx, in.prog, m)
		if err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "%s: %d anomalous access pairs under %s\n", in.name, report.Count(), m)
		for _, p := range report.Pairs {
			fmt.Fprintf(&b, "  %s\n", p)
		}
		return b.String(), nil
	}

	res, err := atropos.Repair(ctx, in.prog, m, opts...)
	if err != nil {
		return "", err
	}
	fmt.Fprintf(&b, "%s: %d anomalies under %s, %d remaining after repair (%.1fs)\n",
		in.name, len(res.Initial), m, len(res.Remaining), res.Elapsed.Seconds())
	fmt.Fprintf(&b, "SAT queries: %d issued, %d solved (%.0f%% cached)\n",
		res.Stats.Queries, res.Stats.Solved+res.Stats.Replayed, 100*res.Stats.CacheHitRate())
	if c := res.Certificate; c != nil {
		fmt.Fprintf(&b, "certificates: %d/%d anomalies replayed (%.0f%%); SC controls %d/%d violations, repaired controls %d/%d\n",
			c.Certified, c.Total, 100*c.Rate(),
			c.SCViolations, c.SCRuns, c.RepairedViolations, c.RepairedRuns)
	}
	if showSteps {
		fmt.Fprintln(&b, "steps:")
		for _, s := range res.Steps {
			fmt.Fprintf(&b, "  %s\n", s)
		}
	}
	if len(res.Remaining) > 0 {
		fmt.Fprintf(&b, "transactions still requiring SC: %s\n", strings.Join(res.SerializableTxns, ", "))
	}
	text := atropos.Format(res.Program)
	if outPath != "" {
		if err := os.WriteFile(outPath, []byte(text), 0o644); err != nil {
			return "", err
		}
		fmt.Fprintf(&b, "refactored program written to %s\n", outPath)
		return b.String(), nil
	}
	fmt.Fprintf(&b, "\n-- refactored program --\n%s\n", text)
	return b.String(), nil
}

func loadInputs(benchNames string, args []string) ([]input, error) {
	if benchNames != "" {
		var benches []*atropos.Benchmark
		if benchNames == "all" {
			benches = atropos.Benchmarks()
		} else {
			for _, name := range strings.Split(benchNames, ",") {
				b := atropos.BenchmarkByName(strings.TrimSpace(name))
				if b == nil {
					var names []string
					for _, bb := range atropos.Benchmarks() {
						names = append(names, bb.Name)
					}
					return nil, fmt.Errorf("unknown benchmark %q (have: %s)", name, strings.Join(names, ", "))
				}
				benches = append(benches, b)
			}
		}
		var out []input
		for _, b := range benches {
			p, err := b.Program()
			if err != nil {
				return nil, err
			}
			out = append(out, input{name: b.Name, prog: p})
		}
		return out, nil
	}
	if len(args) == 0 {
		return nil, fmt.Errorf("usage: atropos [flags] program.dsl ... (or -bench NAME[,NAME...])")
	}
	var out []input
	for _, path := range args {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, err
		}
		p, err := atropos.Parse(string(src))
		if err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		out = append(out, input{name: path, prog: p})
	}
	return out, nil
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atropos:", err)
	os.Exit(1)
}
