// Command atropos analyzes and repairs a database program: it reports the
// anomalous access pairs found under a consistency model and prints the
// refactored program.
//
// Usage:
//
//	atropos [flags] program.dsl     # analyze + repair a DSL file
//	atropos [flags] -bench SmallBank
//
// Flags:
//
//	-model EC|CC|RR|SC   consistency model (default EC)
//	-analyze             only detect anomalies, do not repair
//	-steps               print the refactoring steps applied
//	-bench NAME          use a built-in benchmark instead of a file
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"atropos"
)

func main() {
	model := flag.String("model", "EC", "consistency model: EC, CC, RR, or SC")
	analyzeOnly := flag.Bool("analyze", false, "only detect anomalies")
	showSteps := flag.Bool("steps", false, "print refactoring steps")
	benchName := flag.String("bench", "", "built-in benchmark name (SmallBank, TPC-C, ...)")
	outPath := flag.String("out", "", "write the refactored program to this file instead of stdout")
	flag.Parse()

	m, err := parseModel(*model)
	if err != nil {
		fatal(err)
	}
	prog, name, err := loadInput(*benchName, flag.Args())
	if err != nil {
		fatal(err)
	}

	if *analyzeOnly {
		report, err := atropos.Analyze(prog, m)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d anomalous access pairs under %s\n", name, report.Count(), m)
		for _, p := range report.Pairs {
			fmt.Printf("  %s\n", p)
		}
		return
	}

	res, elapsed, err := atropos.RepairTimed(prog, m)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("%s: %d anomalies under %s, %d remaining after repair (%.1fs)\n",
		name, len(res.Initial), m, len(res.Remaining), elapsed.Seconds())
	if *showSteps {
		fmt.Println("steps:")
		for _, s := range res.Steps {
			fmt.Printf("  %s\n", s)
		}
	}
	if len(res.Remaining) > 0 {
		fmt.Printf("transactions still requiring SC: %s\n", strings.Join(res.SerializableTxns, ", "))
	}
	text := atropos.Format(res.Program)
	if *outPath != "" {
		if err := os.WriteFile(*outPath, []byte(text), 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("refactored program written to %s\n", *outPath)
		return
	}
	fmt.Println("\n-- refactored program --")
	fmt.Println(text)
}

func parseModel(s string) (atropos.Model, error) {
	switch strings.ToUpper(s) {
	case "EC":
		return atropos.EC, nil
	case "CC":
		return atropos.CC, nil
	case "RR":
		return atropos.RR, nil
	case "SC":
		return atropos.SC, nil
	default:
		return atropos.EC, fmt.Errorf("unknown model %q (want EC, CC, RR, or SC)", s)
	}
}

func loadInput(benchName string, args []string) (*atropos.Program, string, error) {
	if benchName != "" {
		b := atropos.BenchmarkByName(benchName)
		if b == nil {
			var names []string
			for _, bb := range atropos.Benchmarks() {
				names = append(names, bb.Name)
			}
			return nil, "", fmt.Errorf("unknown benchmark %q (have: %s)", benchName, strings.Join(names, ", "))
		}
		p, err := b.Program()
		return p, b.Name, err
	}
	if len(args) != 1 {
		return nil, "", fmt.Errorf("usage: atropos [flags] program.dsl (or -bench NAME)")
	}
	src, err := os.ReadFile(args[0])
	if err != nil {
		return nil, "", err
	}
	p, err := atropos.Parse(string(src))
	return p, args[0], err
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atropos:", err)
	os.Exit(1)
}
