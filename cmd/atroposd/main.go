// Command atroposd serves the Atropos repair pipeline over HTTP: one
// long-lived engine (bounded worker pool, per-client detection-session
// cache, pooled solver arenas) behind five JSON endpoints.
//
//	POST /v1/parse     {"source": ...}                     → formatted program
//	POST /v1/analyze   {"source"|"benchmark", "model"}     → anomalous pairs
//	POST /v1/repair    {"source"|"benchmark", "model"}     → repaired program
//	POST /v1/certify   {"source"|"benchmark", "model"}     → witness replays
//	POST /v1/simulate  {"benchmark", "topology", "mode"}   → cluster metrics
//	GET  /v1/stats                                          → engine counters
//	GET  /healthz                                           → liveness probe
//	GET  /readyz                                            → readiness probe
//
// Requests carrying a "client" id reuse that client's cached detection
// session across calls (incremental re-analysis); "timeout_ms" bounds one
// request, and closing the connection aborts its solve mid-flight. When all
// workers are busy and the queue is full the daemon answers 429 with a
// Retry-After hint instead of queueing unboundedly. On SIGINT/SIGTERM the
// daemon flips /readyz to 503 (so load balancers stop routing to it),
// finishes in-flight requests, and exits. See DESIGN.md §12.
//
// Usage:
//
//	atroposd [-addr :8372] [-workers N] [-queue N] [-sessions N] [-detect-parallel N]
//	atroposd -loadtest [-clients 64] [-requests 4]   # in-process load test
//	atroposd -servicechaos                           # scripted fault harness + gate
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"atropos/internal/engine"
	"atropos/internal/exp"
	"atropos/internal/service"
)

var (
	addr     = flag.String("addr", ":8372", "listen address")
	workers  = flag.Int("workers", 0, "concurrent solve workers (0 = GOMAXPROCS)")
	queue    = flag.Int("queue", 0, "admission queue depth before 429 (0 = 4x workers)")
	sessions = flag.Int("sessions", 0, "cached client detection sessions before LRU eviction (0 = 64)")
	detPar   = flag.Int("detect-parallel", 0, "per-request detection fan-out width (0 = min(GOMAXPROCS, 4); 1 = sequential — the right setting when -workers already saturates the cores)")
	loadtest = flag.Bool("loadtest", false, "run the in-process load test instead of serving")
	clients  = flag.Int("clients", 0, "loadtest: concurrent clients (0 = 64)")
	requests = flag.Int("requests", 0, "loadtest: requests per client (0 = 4)")
	svcChaos = flag.Bool("servicechaos", false, "run the scripted service-fault harness and its gate instead of serving")
)

func main() {
	flag.Parse()
	cfg := engine.Config{Workers: *workers, QueueDepth: *queue, Sessions: *sessions, DetectParallelism: *detPar}
	if *loadtest {
		runLoadtest()
		return
	}
	if *svcChaos {
		runServiceChaos()
		return
	}
	eng := engine.New(cfg)
	svc := service.New(eng)
	srv := &http.Server{
		Addr:    *addr,
		Handler: svc,
		// Slow-client bounds; solve time itself is bounded per request via
		// timeout_ms, not here.
		ReadHeaderTimeout: 10 * time.Second,
	}
	go func() {
		stop := make(chan os.Signal, 1)
		signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
		<-stop
		// Go dark on /readyz first so balancers drain us, then finish the
		// in-flight requests.
		svc.SetReady(false)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		srv.Shutdown(ctx) //nolint:errcheck // best-effort drain, then exit
	}()
	fmt.Fprintf(os.Stderr, "atroposd: listening on %s (workers=%d queue=%d sessions=%d)\n",
		*addr, eng.Stats().Workers, eng.Stats().QueueDepth, *sessions)
	if err := srv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		fatal(err)
	}
}

// runLoadtest drives the exp harness: an in-process daemon under N
// concurrent clients, printing the measurement as JSON (the same shape the
// baseline's "service" section records).
func runLoadtest() {
	res, err := exp.RunLoad(exp.LoadConfig{
		Clients:           *clients,
		RequestsPerClient: *requests,
		Workers:           *workers,
		QueueDepth:        *queue,
		Sessions:          *sessions,
	})
	if err != nil {
		fatal(err)
	}
	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fatal(err)
	}
	os.Stdout.Write(append(buf, '\n'))
	if res.Completed != res.Requests || res.Errors != 0 {
		fatal(fmt.Errorf("dropped requests: %d/%d completed, %d errors",
			res.Completed, res.Requests, res.Errors))
	}
}

// runServiceChaos drives the scripted service-fault harness against a fresh
// engine and holds the result to its gate: stalled slots drain, overload
// sheds, the breaker trips, the injected panic is contained, and the engine
// recovers to steady state. Exit status 1 on any gate failure.
func runServiceChaos() {
	res, err := exp.RunServiceChaos(exp.ServiceChaosConfig{Workers: *workers, QueueDepth: *queue})
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if fails := exp.ServiceChaosGate(res); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "atroposd: service-chaos gate:", f)
		}
		os.Exit(1)
	}
	fmt.Println("service-chaos gate: PASS")
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atroposd:", err)
	os.Exit(1)
}
