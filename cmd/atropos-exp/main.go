// Command atropos-exp regenerates the paper's tables and figures
// (see DESIGN.md §5 for the experiment index).
//
// Usage:
//
//	atropos-exp -exp table1
//	atropos-exp -exp fig12 [-bench SmallBank] [-duration 90]
//	atropos-exp -exp fig13|fig14|fig15          # per-topology panels
//	atropos-exp -exp fig16 [-rounds 20]
//	atropos-exp -exp invariants
//	atropos-exp -exp summary
//	atropos-exp -exp baseline [-out BENCH_baseline.json]
//	atropos-exp -exp drift [-baseline BENCH_baseline.json]
//	atropos-exp -exp certify                    # witness-replay gate
//	atropos-exp -exp chaos [-bench SmallBank] [-scenarios clean,rolling-crash]
//	atropos-exp -exp all
//
// Experiments fan out on a bounded worker pool; -parallel bounds the
// workers (default: GOMAXPROCS). Results are independent of the setting.
//
// The compiled cluster simulator (DESIGN.md §9) makes panels far larger
// than the paper's tractable. -scale N multiplies the initial population
// and the client sweep of the fig12-15 panels; -ops N switches each panel
// point to the ops-bounded mode, stopping after exactly N measured commits
// instead of at -duration. Million-row/million-transaction panels:
//
//	atropos-exp -exp fig12 -bench SmallBank -scale 10000 -ops 1000000
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strconv"
	"strings"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/exp"
)

var (
	expName  = flag.String("exp", "table1", "experiment: table1, fig12, fig13, fig14, fig15, fig16, invariants, summary, baseline, drift, certify, chaos, scaling, all")
	benchArg = flag.String("bench", "", "benchmark for fig12/fig16 (default: the figure's benchmarks)")
	duration = flag.Int("duration", 90, "seconds of simulated time per performance point")
	clients  = flag.String("clients", "", "comma-separated client counts (default: paper's sweep)")
	rounds   = flag.Int("rounds", 20, "random-refactoring rounds for fig16")
	seed     = flag.Int64("seed", 42, "random seed")
	records  = flag.Int("records", 100, "benchmark population scale")
	scaleUp  = flag.Int("scale", 1, "multiply the fig12-15 population and client sweep by this factor")
	ops      = flag.Int64("ops", 0, "stop each fig12-15 point after this many commits instead of -duration (0 = duration-bounded)")
	parallel = flag.Int("parallel", 0, "worker goroutines for the experiment drivers (0 = GOMAXPROCS)")
	outPath  = flag.String("out", "", "write the baseline snapshot to this file (baseline experiment)")
	incr     = flag.Bool("incremental", true, "use the cached incremental detection engine in the repair pipelines")
	baseline = flag.String("baseline", "BENCH_baseline.json", "committed snapshot the drift experiment compares against")
	cpuProf  = flag.String("cpuprofile", "", "write a CPU profile of the experiment to this file")
	memProf  = flag.String("memprofile", "", "write an allocation profile of the experiment to this file")
	scenArg  = flag.String("scenarios", "", "comma-separated chaos scenario names (default: the full panel)")
	workers  = flag.String("workers", "", "comma-separated detection-parallelism widths for the scaling sweep (default 1,2,4,8)")
	smoke    = flag.Bool("smoke", false, "scaling: cheap 1-vs-2 worker smoke variant instead of the full sweep")
)

func main() {
	flag.Parse()
	// The heap-profile defer is registered first so it runs last (LIFO):
	// the CPU profile is stopped and flushed before the heap is written,
	// and a heap-profile failure warns instead of exiting so it can never
	// truncate the CPU profile.
	if *memProf != "" {
		defer func() {
			f, err := os.Create(*memProf)
			if err != nil {
				fmt.Fprintln(os.Stderr, "atropos-exp: -memprofile:", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained + cumulative allocs
			if err := pprof.WriteHeapProfile(f); err != nil {
				fmt.Fprintln(os.Stderr, "atropos-exp: -memprofile:", err)
			}
		}()
	}
	if *cpuProf != "" {
		f, err := os.Create(*cpuProf)
		if err != nil {
			fatal(err)
		}
		if err := pprof.StartCPUProfile(f); err != nil {
			fatal(err)
		}
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	switch *expName {
	case "table1":
		runTable1()
	case "fig12":
		runFig(12)
	case "fig13":
		runFig(13)
	case "fig14":
		runFig(14)
	case "fig15":
		runFig(15)
	case "fig16":
		runFig16()
	case "invariants":
		runInvariants()
	case "summary":
		runSummary()
	case "baseline":
		runBaseline()
	case "drift":
		runDrift()
	case "certify":
		runCertify()
	case "chaos":
		runChaos()
	case "scaling":
		runScaling()
	case "all":
		runTable1()
		runFig(12)
		runFig(13)
		runFig(14)
		runFig(15)
		runFig16()
		runInvariants()
		runSummary()
		runBaseline()
	default:
		fatal(fmt.Errorf("unknown experiment %q", *expName))
	}
}

func runTable1() {
	fmt.Println("== Table 1: statically identified anomalous access pairs ==")
	rows, err := exp.Table1(benchmarks.All(), exp.WithParallelism(*parallel), exp.WithIncremental(*incr))
	if err != nil {
		fatal(err)
	}
	fmt.Print(exp.FormatTable1(rows))
	fmt.Println()
}

// figBenches returns the benchmarks of each performance figure.
func figBenches(fig int) []*benchmarks.Benchmark {
	switch fig {
	case 12: // Fig. 12: SmallBank, SEATS, TPC-C on the US cluster
		return []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.SEATS, benchmarks.TPCC}
	case 13:
		return []*benchmarks.Benchmark{benchmarks.SmallBank}
	case 14:
		return []*benchmarks.Benchmark{benchmarks.SEATS}
	default:
		return []*benchmarks.Benchmark{benchmarks.TPCC}
	}
}

func figTopologies(fig int) []cluster.Topology {
	if fig == 12 {
		return []cluster.Topology{cluster.USCluster}
	}
	return cluster.Topologies() // Figs. 13-15: VA, US, Global
}

func runFig(fig int) {
	benches := figBenches(fig)
	if *benchArg != "" {
		b := benchmarks.ByName(*benchArg)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *benchArg))
		}
		benches = []*benchmarks.Benchmark{b}
	}
	fmt.Printf("== Figure %d: throughput and latency vs clients ==\n", fig)
	if *scaleUp < 1 {
		fatal(fmt.Errorf("-scale must be >= 1"))
	}
	for _, b := range benches {
		for _, topo := range figTopologies(fig) {
			res, err := exp.Perf(exp.PerfConfig{
				Benchmark:      b,
				Topology:       topo,
				ClientCounts:   clientCounts(b),
				Duration:       time.Duration(*duration) * time.Second,
				Ops:            *ops,
				Scale:          benchmarks.Scale{Records: *records * *scaleUp},
				Seed:           *seed,
				Parallelism:    *parallel,
				NonIncremental: !*incr,
			})
			if err != nil {
				fatal(err)
			}
			fmt.Print(res.Format())
			fmt.Println()
		}
	}
}

// clientCounts returns the sweep for one panel: an explicit -clients list
// verbatim, or the paper's default sweep multiplied by -scale (the paper
// sweeps to 250 clients for SmallBank, 125 for SEATS/TPC-C).
func clientCounts(b *benchmarks.Benchmark) []int {
	if *clients != "" {
		var out []int
		for _, part := range strings.Split(*clients, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -clients: %w", err))
			}
			out = append(out, n)
		}
		return out
	}
	sweep := []int{10, 25, 50, 75, 100, 125}
	if b.Name == "SmallBank" {
		sweep = []int{10, 50, 100, 150, 200, 250}
	}
	for i := range sweep {
		sweep[i] *= *scaleUp
	}
	return sweep
}

func runFig16() {
	fmt.Println("== Figure 16: random refactoring vs Atropos (App. A.3) ==")
	benches := []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.SEATS, benchmarks.TPCC}
	if *benchArg != "" {
		b := benchmarks.ByName(*benchArg)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *benchArg))
		}
		benches = []*benchmarks.Benchmark{b}
	}
	for _, b := range benches {
		res, err := exp.Fig16(b, *rounds, 10, *seed, exp.WithIncremental(*incr))
		if err != nil {
			fatal(err)
		}
		fmt.Print(res.Format())
		fmt.Println()
	}
}

func runInvariants() {
	fmt.Println("== SmallBank application-level invariants (§7.1, App. A.2) ==")
	res, err := exp.Invariants(60, *seed, exp.WithIncremental(*incr))
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	fmt.Println()
}

func runSummary() {
	fmt.Println("== Headline aggregates ==")
	t1, err := exp.Table1(benchmarks.All(), exp.WithParallelism(*parallel), exp.WithIncremental(*incr))
	if err != nil {
		fatal(err)
	}
	s, err := exp.Summary(t1, 150, time.Duration(*duration)*time.Second, *seed, exp.WithParallelism(*parallel))
	if err != nil {
		fatal(err)
	}
	fmt.Print(s.Format())
}

func runBaseline() {
	fmt.Println("== Benchmark-regression baseline ==")
	b, err := exp.RunBaseline(exp.BaselineConfig{
		Duration:       time.Duration(*duration) * time.Second,
		Parallelism:    *parallel,
		Seed:           *seed,
		NonIncremental: !*incr,
	})
	if err != nil {
		fatal(err)
	}
	buf, err := b.JSON()
	if err != nil {
		fatal(err)
	}
	if *outPath != "" {
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("baseline written to %s (table1 %0.fms sequential, %0.fms parallel, %.2fx)\n",
			*outPath, b.Table1.SequentialMs, b.Table1.ParallelMs, b.Table1.SpeedupX)
		return
	}
	os.Stdout.Write(buf)
}

// runDrift is the CI perf-drift gate: it re-measures the per-benchmark
// repair counts (anomalies and SAT queries — deterministic and
// machine-independent) and fails if they diverge from the committed
// baseline snapshot. Wall-clock columns are never compared.
func runDrift() {
	fmt.Println("== Perf-drift gate: counts vs committed baseline ==")
	want, err := exp.LoadBaseline(*baseline)
	if err != nil {
		fatal(err)
	}
	got, err := exp.RunBaseline(exp.BaselineConfig{
		Duration:       time.Duration(*duration) * time.Second,
		Parallelism:    *parallel,
		Seed:           *seed,
		NonIncremental: !*incr,
		CountsOnly:     true,
	})
	if err != nil {
		fatal(err)
	}
	if got.Incremental != want.Incremental {
		fmt.Fprintf(os.Stderr, "warning: engine mismatch (run incremental=%t, baseline %t): comparing anomaly counts only\n",
			got.Incremental, want.Incremental)
	}
	drift := exp.CountDrift(got, want)
	if len(drift) == 0 {
		fmt.Printf("no drift: %d benchmarks match %s\n", len(got.Repairs), *baseline)
		return
	}
	for _, d := range drift {
		fmt.Fprintln(os.Stderr, "drift:", d)
	}
	fmt.Fprintf(os.Stderr, "atropos-exp: %d count divergences from %s — regenerate with `make baseline` if intentional\n", len(drift), *baseline)
	os.Exit(1)
}

// runScaling is the multi-core scaling baseline (`make baseline-mc`) and
// its CI smoke variant (`make scaling-smoke`): the Table-1 repair corpus
// measured at increasing detection-parallelism widths, gated on anomaly
// counts staying identical at every width plus — on hosts with enough
// cores — a 0.7 efficiency floor at 8 workers (full sweep) or a
// speedup > 1.0 at 2 workers (smoke).
func runScaling() {
	fmt.Println("== Multi-core scaling: Table-1 repairs vs detection workers ==")
	cfg := exp.ScalingConfig{Smoke: *smoke, NonIncremental: !*incr}
	if *workers != "" {
		for _, part := range strings.Split(*workers, ",") {
			n, err := strconv.Atoi(strings.TrimSpace(part))
			if err != nil {
				fatal(fmt.Errorf("bad -workers: %w", err))
			}
			cfg.Workers = append(cfg.Workers, n)
		}
	}
	res, err := exp.RunScaling(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if *outPath != "" {
		buf, err := res.JSON()
		if err != nil {
			fatal(err)
		}
		if err := os.WriteFile(*outPath, buf, 0o644); err != nil {
			fatal(err)
		}
		fmt.Printf("scaling summary written to %s\n", *outPath)
	}
	for _, s := range exp.ScalingGateSkipped(res) {
		fmt.Println("skipped:", s)
	}
	if fails := exp.ScalingGate(res); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "scaling:", f)
		}
		fmt.Fprintf(os.Stderr, "atropos-exp: %d scaling-gate failures\n", len(fails))
		os.Exit(1)
	}
	fmt.Println("scaling gate passed")
}

// runCertify is the witness-replay certification gate (`make certify`):
// every benchmark × weak model must replay ≥95% of its detected anomalous
// pairs as executable certificates, every benchmark must contribute at
// least one replayed schedule, and the negative controls — serial replays
// of the original program and projected replays of the repaired one — must
// show zero violations.
func runCertify() {
	fmt.Println("== Witness-replay certificates: detected pairs reproduced in the simulator ==")
	benches := benchmarks.All()
	rows, err := exp.CertifyGrid(benches, *parallel)
	if err != nil {
		fatal(err)
	}
	fmt.Print(exp.FormatCertify(rows))
	fmt.Println()
	fmt.Println("== Negative controls: serial (SC) and repaired-program replays (EC) ==")
	negs, err := exp.CertifyNegatives(benches, *parallel)
	if err != nil {
		fatal(err)
	}
	fmt.Print(exp.FormatCertifyNegatives(negs))
	if fails := exp.CertifyGate(rows, negs); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "certify:", f)
		}
		fmt.Fprintf(os.Stderr, "atropos-exp: %d certification failures\n", len(fails))
		os.Exit(1)
	}
	fmt.Println("\ncertification gate passed: all rates >= 95%, negative controls clean")
}

// runChaos is the fault-injection gate (`make chaos`): every selected
// benchmark runs the named fault scenarios in the EC / SC / AT-SC
// deployments, and the sweep must show violations on some unrepaired EC
// run under faults while the SC control and the repaired transactions of
// every AT-SC run stay at zero.
func runChaos() {
	fmt.Println("== Chaos panel: Adya-style violations under deterministic fault schedules ==")
	cfg := exp.ChaosConfig{
		Seed:           *seed,
		Parallelism:    *parallel,
		NonIncremental: !*incr,
	}
	if *benchArg != "" {
		b := benchmarks.ByName(*benchArg)
		if b == nil {
			fatal(fmt.Errorf("unknown benchmark %q", *benchArg))
		}
		cfg.Benchmarks = []*benchmarks.Benchmark{b}
	}
	if *scenArg != "" {
		for _, part := range strings.Split(*scenArg, ",") {
			cfg.Scenarios = append(cfg.Scenarios, strings.TrimSpace(part))
		}
	}
	res, err := exp.RunChaos(cfg)
	if err != nil {
		fatal(err)
	}
	fmt.Print(res.Format())
	if fails := exp.ChaosGate(res.Rows); len(fails) > 0 {
		for _, f := range fails {
			fmt.Fprintln(os.Stderr, "chaos:", f)
		}
		fmt.Fprintf(os.Stderr, "atropos-exp: %d chaos-gate failures\n", len(fails))
		os.Exit(1)
	}
	fmt.Printf("\nchaos gate passed (%.1fs): unrepaired EC violates under faults, SC control and repaired deployments clean\n",
		res.Wall.Seconds())
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "atropos-exp:", err)
	os.Exit(1)
}
