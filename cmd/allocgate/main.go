// Command allocgate is the CI allocation-regression gate: it parses a `go
// test -bench` output file (the bench smoke job's bench-smoke.txt) and
// compares each benchmark's allocs/op against the checked-in thresholds in
// BENCH_allocs.json, failing on regressions beyond the tolerance.
//
// allocs/op is the one benchmark column that is deterministic and
// machine-independent enough to gate on: the repair pipeline and the
// compiled simulator allocate identically on every machine at a given Go
// version, while ns/op varies with hardware — wall clock therefore stays
// informational (the drift gate's philosophy, applied to memory).
//
// Usage:
//
//	allocgate [-bench bench-smoke.txt] [-thresholds BENCH_allocs.json]
//
// Regenerate the thresholds after an intentional change with:
//
//	make bench && go run ./cmd/allocgate -update
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// Thresholds is the BENCH_allocs.json layout.
type Thresholds struct {
	// TolerancePct is the allowed regression before the gate fails; the
	// headroom absorbs Go-runtime version noise (map growth, pool
	// behavior), not real regressions.
	TolerancePct float64 `json:"tolerance_pct"`
	// AllocsPerOp maps benchmark name (no -N GOMAXPROCS suffix) to its
	// recorded allocs/op ceiling.
	AllocsPerOp map[string]uint64 `json:"allocs_per_op"`
}

var (
	benchPath = flag.String("bench", "bench-smoke.txt", "go test -bench output to check")
	thrPath   = flag.String("thresholds", "BENCH_allocs.json", "checked-in allocs/op thresholds")
	update    = flag.Bool("update", false, "rewrite the thresholds file from the bench output instead of checking")
)

// gated reports whether a benchmark participates in the gate: the repair
// pipeline (Table 1), the compiled cluster simulator, and the parallel
// fast path (sharded interning and wavefront detection, both measured at
// fixed worker counts so allocs/op stays machine-independent).
func gated(name string) bool {
	return strings.HasPrefix(name, "BenchmarkTable1_") ||
		strings.HasPrefix(name, "BenchmarkSim") ||
		strings.HasPrefix(name, "BenchmarkInternParallel") ||
		strings.HasPrefix(name, "BenchmarkDetectParallel")
}

var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+.*?\s(\d+)\s+allocs/op`)

// parseBench extracts name → allocs/op for every gated benchmark in the
// output file.
func parseBench(path string) (map[string]uint64, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	out := map[string]uint64{}
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(sc.Text())
		if m == nil || !gated(m[1]) {
			continue
		}
		n, err := strconv.ParseUint(m[2], 10, 64)
		if err != nil {
			return nil, fmt.Errorf("allocgate: %s: bad allocs/op in %q", path, sc.Text())
		}
		out[m[1]] = n
	}
	return out, sc.Err()
}

func main() {
	flag.Parse()
	got, err := parseBench(*benchPath)
	if err != nil {
		fatal(err)
	}
	if len(got) == 0 {
		fatal(fmt.Errorf("no gated benchmarks (BenchmarkTable1_*/BenchmarkSim*) found in %s", *benchPath))
	}
	if *update {
		writeThresholds(got)
		return
	}

	buf, err := os.ReadFile(*thrPath)
	if err != nil {
		fatal(err)
	}
	var thr Thresholds
	if err := json.Unmarshal(buf, &thr); err != nil {
		fatal(fmt.Errorf("%s: %w", *thrPath, err))
	}
	if thr.TolerancePct <= 0 {
		thr.TolerancePct = 15
	}

	var failures []string
	for _, name := range sortedKeys(got) {
		want, ok := thr.AllocsPerOp[name]
		if !ok {
			// A gated benchmark without a threshold is a failure, not a
			// note: a newly added benchmark must be recorded before it
			// ships, or the gate silently never protects it (same policy
			// as the drift gate's missing-benchmark check).
			failures = append(failures, fmt.Sprintf(
				"%s: no threshold recorded — run `go run ./cmd/allocgate -update` after `make bench` to add it", name))
			continue
		}
		limit := float64(want) * (1 + thr.TolerancePct/100)
		switch g := got[name]; {
		case float64(g) > limit:
			failures = append(failures, fmt.Sprintf(
				"%s: %d allocs/op exceeds threshold %d by more than %.0f%% (limit %.0f)",
				name, g, want, thr.TolerancePct, limit))
		case float64(g) < float64(want)*(1-thr.TolerancePct/100):
			fmt.Printf("allocgate: %s improved: %d allocs/op vs threshold %d — consider ratcheting with -update\n",
				name, g, want)
		default:
			fmt.Printf("allocgate: %s ok: %d allocs/op (threshold %d)\n", name, got[name], want)
		}
	}
	for _, name := range sortedKeys(thr.AllocsPerOp) {
		if _, ok := got[name]; !ok {
			fmt.Printf("allocgate: warning: %s has a threshold but was not measured\n", name)
		}
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "allocgate: FAIL:", f)
		}
		fmt.Fprintf(os.Stderr, "allocgate: %d allocation regressions vs %s — if intentional, regenerate with `go run ./cmd/allocgate -update` after `make bench`\n",
			len(failures), *thrPath)
		os.Exit(1)
	}
	fmt.Printf("allocgate: %d benchmarks within %.0f%% of %s\n", len(got), thr.TolerancePct, *thrPath)
}

func writeThresholds(got map[string]uint64) {
	thr := Thresholds{TolerancePct: 15, AllocsPerOp: got}
	buf, err := json.MarshalIndent(&thr, "", "  ")
	if err != nil {
		fatal(err)
	}
	if err := os.WriteFile(*thrPath, append(buf, '\n'), 0o644); err != nil {
		fatal(err)
	}
	fmt.Printf("allocgate: wrote %d thresholds to %s\n", len(got), *thrPath)
}

func sortedKeys[V any](m map[string]V) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "allocgate:", err)
	os.Exit(1)
}
