# Atropos-Go development targets. `make ci` is the full gate mirrored by
# .github/workflows/ci.yml: the workflow's jobs invoke these targets, so
# changing a gate means changing it here.

GO ?= go

# Coverage floor enforced by `make cover` and the CI coverage job.
COVER_FLOOR ?= 60

# Seconds each fuzz target runs under `make fuzz` / the nightly workflow.
FUZZTIME ?= 30s

.PHONY: ci fmt vet build test race race-par bench bench-compare cover drift certify loadtest-smoke chaos service-chaos scaling-smoke baseline-mc fuzz baseline profile

ci: fmt vet build race race-par bench cover drift certify loadtest-smoke chaos service-chaos scaling-smoke

# gofmt as a check: fail (and list the files) if anything is unformatted.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detector pass over the concurrent detection/repair surfaces at a
# fixed fan-out width of 8 (wider than any default on CI runners), so the
# wavefront scheduler and the sharded cons table are exercised under
# contention regardless of host core count. ATROPOS_TEST_PARALLELISM
# overrides the min(GOMAXPROCS, 4) default inside repair.Options and the
# differential detection tests.
race-par:
	ATROPOS_TEST_PARALLELISM=8 $(GO) test -race ./internal/anomaly ./internal/repair

# One pass over every experiment benchmark and hot-path microbenchmark —
# a smoke test that each driver still runs, not a measurement — followed by
# the allocation-regression gate: allocs/op of the repair pipeline
# (BenchmarkTable1_*) and the compiled simulator (BenchmarkSim*) are
# deterministic and machine-independent, so they are compared against the
# checked-in BENCH_allocs.json thresholds (>15% regression fails; wall
# clock stays informational, like the drift gate). The output lands in
# bench-smoke.txt, which the CI bench job uploads as an artifact.
# (Redirect + cat rather than tee: a pipe would mask go test's exit code.)
bench:
	@$(GO) test -bench . -benchtime 1x -run '^$$' $(BENCH_PKGS) > bench-smoke.txt; \
	status=$$?; cat bench-smoke.txt; \
	if [ $$status -ne 0 ]; then exit $$status; fi
	$(GO) run ./cmd/allocgate -bench bench-smoke.txt -thresholds BENCH_allocs.json

# Benchmark pattern/packages/repetitions for `make bench-compare`. The
# default pattern covers the detect→encode→solve hot path (Table 1 repairs,
# detection, and the solver/encoder microbenchmarks) plus the cluster
# simulator (BenchmarkSim*: ops-bounded, so ns/op and allocs/op are
# per-simulated-transaction); override BENCH_PATTERN to widen, BASE_REF to
# compare against another ref.
BASE_REF ?= HEAD~1
BENCH_PATTERN ?= BenchmarkTable1_|BenchmarkDetect|BenchmarkPairEncoder|BenchmarkAssert|BenchmarkEncode|BenchmarkAddClauses|BenchmarkSolveAssuming|BenchmarkPigeonhole|BenchmarkSim
BENCH_PKGS ?= . ./internal/anomaly ./internal/ast ./internal/logic ./internal/sat ./internal/cluster
BENCH_COUNT ?= 5

# Run the benchmark suite at BASE_REF (in a throwaway git worktree) and in
# the working tree, writing bench-base.txt / bench-head.txt, and summarize
# with benchstat when it is installed (the container image may not ship
# it; the raw files remain either way).
bench-compare:
	@set -e; tmp=$$(mktemp -d); \
	git worktree add --quiet --detach $$tmp/base $(BASE_REF); \
	echo "== benchmarks at $(BASE_REF) =="; \
	( cd $$tmp/base && $(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) ) > bench-base.txt || \
		{ git worktree remove --force $$tmp/base; rmdir $$tmp; exit 1; }; \
	git worktree remove --force $$tmp/base; rmdir $$tmp; \
	echo "== benchmarks at working tree =="; \
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -count $(BENCH_COUNT) $(BENCH_PKGS) > bench-head.txt; \
	if command -v benchstat >/dev/null 2>&1; then \
		benchstat bench-base.txt bench-head.txt; \
	else \
		echo "benchstat not installed; raw outputs in bench-base.txt and bench-head.txt"; \
		echo "(install on a networked machine: go install golang.org/x/perf/cmd/benchstat@latest)"; \
	fi

# Coverage with a floor: write cover.out (the CI job uploads it) and fail
# if total statement coverage drops below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Perf-drift smoke: re-measure the per-benchmark anomaly/repair/SAT-query
# counts (deterministic, machine-independent — never wall clock) and fail
# if they diverge from the committed BENCH_baseline.json.
drift:
	$(GO) run ./cmd/atropos-exp -exp drift -duration 1 -baseline BENCH_baseline.json

# Witness-replay certification gate: every benchmark × weak model must
# replay >= 95% of its detected anomalies as executable certificates, and
# the SC / repaired-program negative controls must show zero violations.
certify:
	$(GO) run ./cmd/atropos-exp -exp certify

# Run every fuzz target for FUZZTIME each (the nightly workflow mirrors
# this; `go test` allows one -fuzz pattern per run).
fuzz:
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzRepairRandomProgram$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzDetectSessionEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzCOWDeepCloneEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzParallelDetectEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/replay -run '^$$' -fuzz '^FuzzWitnessReplaySoundness$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/cluster -run '^$$' -fuzz '^FuzzFaultScheduleEquivalence$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/sat -run '^$$' -fuzz '^FuzzBudgetedSolveEquivalence$$' -fuzztime $(FUZZTIME)

# Service load-test smoke: the in-process atroposd daemon under a small
# concurrent client fleet (counts-only assertions — the binary exits
# non-zero if any request is dropped or errors; wall-clock numbers are
# informational). The latency summary lands in loadtest-summary.json,
# which the CI job uploads as an artifact. The full-scale measurement
# (64 clients) is the baseline's "service" section, drift-gated by counts.
loadtest-smoke:
	@$(GO) run ./cmd/atroposd -loadtest -clients 16 -requests 2 > loadtest-summary.json; \
	status=$$?; cat loadtest-summary.json; \
	if [ $$status -ne 0 ]; then exit $$status; fi

# Chaos gate: every benchmark runs the deterministic fault-scenario panel
# (partitions, crashes, lag, clock skew, drop/reorder) in three
# deployments, and the gate asserts the repair guarantee under faults —
# unrepaired EC programs exhibit serializability violations, the SC
# control and every repaired AT-SC deployment show zero. Counts are
# virtual-time deterministic; the full panel is also pinned in the
# baseline's drift-gated "chaos" section.
chaos:
	$(GO) run ./cmd/atropos-exp -exp chaos

# Service-chaos gate: the scripted service-fault harness against a live
# engine — stalled workers, queue overflow, a budget-starved client
# tripping its circuit breaker, an injected handler panic — with every
# count asserted exactly (faults fire at scripted points, not timers, so
# the panel is deterministic). Also pinned in the baseline's drift-gated
# "service_chaos" section.
service-chaos:
	$(GO) run ./cmd/atroposd -servicechaos

# Regenerate the committed perf snapshot (see EXPERIMENTS.md §Baselines).
baseline:
	$(GO) run ./cmd/atropos-exp -exp baseline -duration 2 -out BENCH_baseline.json

# Multi-core scaling baseline: the Table-1 repair corpus at 1/2/4/8
# detection workers, best-of-3 (see EXPERIMENTS.md §Scaling). The summary
# is machine-dependent, so scaling-summary.json is gitignored, unlike
# BENCH_baseline.json. The gate enforces identical anomaly counts at
# every width, plus a 0.7 efficiency floor at 8 workers on hosts with
# >= 8 cores (self-skipped below that).
baseline-mc:
	$(GO) run ./cmd/atropos-exp -exp scaling -out scaling-summary.json

# CI smoke variant: 1 vs 2 workers, one repeat; the speedup > 1.0 check
# self-skips on single-core hosts, the count-equality check never does.
scaling-smoke:
	$(GO) run ./cmd/atropos-exp -exp scaling -smoke

# Capture CPU + allocation profiles of the two hot surfaces — the repair
# pipeline (Table 1 over all nine benchmarks) and the compiled cluster
# simulator (the TPC-C Fig. 12 panel) — so perf work starts from pprof
# instead of guesswork:
#
#	make profile
#	go tool pprof -top -sample_index=alloc_objects profiles/repair.mem.pprof
#	go tool pprof -http=:8080 profiles/sim-tpcc.cpu.pprof
profile:
	mkdir -p profiles
	$(GO) run ./cmd/atropos-exp -exp table1 \
		-cpuprofile profiles/repair.cpu.pprof -memprofile profiles/repair.mem.pprof > /dev/null
	$(GO) run ./cmd/atropos-exp -exp fig12 -bench TPC-C -duration 5 -clients 50 \
		-cpuprofile profiles/sim-tpcc.cpu.pprof -memprofile profiles/sim-tpcc.mem.pprof > /dev/null
	@ls -l profiles/
