# Atropos-Go development targets. `make ci` is the full gate mirrored by
# .github/workflows/ci.yml.

GO ?= go

.PHONY: ci vet build test race bench baseline

ci: vet build race bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every experiment benchmark — a smoke test that each
# table/figure driver still runs, not a measurement.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Regenerate the committed perf snapshot (see EXPERIMENTS.md §Baselines).
baseline:
	$(GO) run ./cmd/atropos-exp -exp baseline -duration 2 -out BENCH_baseline.json
