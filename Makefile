# Atropos-Go development targets. `make ci` is the full gate mirrored by
# .github/workflows/ci.yml: the workflow's jobs invoke these targets, so
# changing a gate means changing it here.

GO ?= go

# Coverage floor enforced by `make cover` and the CI coverage job.
COVER_FLOOR ?= 60

# Seconds each fuzz target runs under `make fuzz` / the nightly workflow.
FUZZTIME ?= 30s

.PHONY: ci fmt vet build test race bench cover drift fuzz baseline

ci: fmt vet build race bench cover drift

# gofmt as a check: fail (and list the files) if anything is unformatted.
fmt:
	@out="$$(gofmt -l .)"; \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One pass over every experiment benchmark — a smoke test that each
# table/figure driver still runs, not a measurement.
bench:
	$(GO) test -bench . -benchtime 1x -run '^$$' .

# Coverage with a floor: write cover.out (the CI job uploads it) and fail
# if total statement coverage drops below COVER_FLOOR percent.
cover:
	$(GO) test -coverprofile=cover.out ./...
	@total="$$($(GO) tool cover -func=cover.out | awk '/^total:/ {sub(/%/, "", $$3); print $$3}')"; \
	echo "total coverage: $$total% (floor $(COVER_FLOOR)%)"; \
	awk "BEGIN { exit !($$total >= $(COVER_FLOOR)) }" || \
		{ echo "coverage $$total% is below the $(COVER_FLOOR)% floor"; exit 1; }

# Perf-drift smoke: re-measure the per-benchmark anomaly/repair/SAT-query
# counts (deterministic, machine-independent — never wall clock) and fail
# if they diverge from the committed BENCH_baseline.json.
drift:
	$(GO) run ./cmd/atropos-exp -exp drift -duration 1 -baseline BENCH_baseline.json

# Run every fuzz target in internal/repair for FUZZTIME each (the nightly
# workflow mirrors this; `go test` allows one -fuzz pattern per run).
fuzz:
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzRepairRandomProgram$$' -fuzztime $(FUZZTIME)
	$(GO) test ./internal/repair -run '^$$' -fuzz '^FuzzDetectSessionEquivalence$$' -fuzztime $(FUZZTIME)

# Regenerate the committed perf snapshot (see EXPERIMENTS.md §Baselines).
baseline:
	$(GO) run ./cmd/atropos-exp -exp baseline -duration 2 -out BENCH_baseline.json
