package atropos_test

import (
	"context"
	"strings"
	"testing"
	"time"

	"atropos"
)

const quickstartSrc = `
table T { id: int key, n: int, }
txn bump(k: int, amt: int) {
  x := select n from T where id = k;
  update T set n = x.n + amt where id = k;
}
txn read(k: int) {
  x := select n from T where id = k;
  return x.n;
}
`

func TestPublicAPIRoundTrip(t *testing.T) {
	prog, err := atropos.Parse(quickstartSrc)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	report, err := atropos.Analyze(context.Background(), prog, atropos.EC)
	if err != nil {
		t.Fatalf("Analyze: %v", err)
	}
	if report.Count() == 0 {
		t.Fatal("no anomalies found in the RMW program")
	}
	res, err := atropos.Repair(context.Background(), prog, atropos.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed time not recorded")
	}
	if len(res.Remaining) != 0 {
		t.Errorf("remaining anomalies: %v", res.Remaining)
	}
	out := atropos.Format(res.Program)
	if !strings.Contains(out, "T_N_LOG") {
		t.Errorf("repaired program lacks the logging table:\n%s", out)
	}
	// The output re-parses (Format emits valid DSL).
	if _, err := atropos.Parse(out); err != nil {
		t.Errorf("formatted output does not re-parse: %v", err)
	}
}

func TestPublicAPIParseErrors(t *testing.T) {
	if _, err := atropos.Parse("table T {"); err == nil {
		t.Error("syntax error accepted")
	}
	if _, err := atropos.Parse("table T { n: int, }"); err == nil {
		t.Error("schema without key accepted")
	}
}

func TestPublicAPIBenchmarks(t *testing.T) {
	all := atropos.Benchmarks()
	if len(all) != 9 {
		t.Fatalf("benchmarks = %d, want 9", len(all))
	}
	if atropos.BenchmarkByName("SmallBank") == nil {
		t.Fatal("SmallBank missing")
	}
	if atropos.BenchmarkByName("bogus") != nil {
		t.Fatal("unknown benchmark resolved")
	}
}

func TestPublicAPISimulate(t *testing.T) {
	bank := atropos.BenchmarkByName("SIBench")
	prog, err := bank.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := atropos.Scale{Records: 20}
	res, err := atropos.Simulate(atropos.ClusterConfig{
		Program:  prog,
		Mix:      bank.Mix,
		Scale:    scale,
		Rows:     bank.Rows(scale),
		Topology: atropos.VACluster,
		Clients:  8,
		Duration: 2 * time.Second,
		Seed:     1,
		Mode:     atropos.ModeEC,
	})
	if err != nil {
		t.Fatalf("Simulate: %v", err)
	}
	if res.Committed == 0 {
		t.Error("no transactions committed")
	}
}

func TestPublicAPITable1(t *testing.T) {
	rows, err := atropos.Table1([]*atropos.Benchmark{atropos.BenchmarkByName("SIBench")})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 1 || rows[0].EC != 1 || rows[0].AT != 0 {
		t.Errorf("SIBench Table1 row = %+v", rows[0])
	}
	if out := atropos.FormatTable1(rows); !strings.Contains(out, "SIBench") {
		t.Errorf("FormatTable1:\n%s", out)
	}
}
