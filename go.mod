module atropos

go 1.24
