// Package progen generates random, well-formed database programs for
// property-based testing: every generated program parses, passes the
// semantic checker, and exercises selects, single- and multi-field
// updates, conditionals, aggregations, and return expressions.
package progen

import (
	"fmt"
	"math/rand"

	"atropos/internal/ast"
	"atropos/internal/parser"
)

type gen struct {
	rng *rand.Rand
	p   *ast.Program
}

// Program generates a random well-formed program from the seed.
func Program(seed int64) *ast.Program {
	g := &gen{rng: rand.New(rand.NewSource(seed)), p: &ast.Program{}}
	nSchemas := 1 + g.rng.Intn(3)
	for i := 0; i < nSchemas; i++ {
		g.p.Schemas = append(g.p.Schemas, g.schema(i))
	}
	nTxns := 1 + g.rng.Intn(3)
	for i := 0; i < nTxns; i++ {
		g.p.Txns = append(g.p.Txns, g.txn(i, 1+g.rng.Intn(3)))
	}
	parser.AssignLabels(g.p)
	ast.InternProgramExprs(g.p)
	return g.p
}

func (g *gen) schema(idx int) *ast.Schema {
	s := &ast.Schema{Name: fmt.Sprintf("TBL%d", idx)}
	nFields := 2 + g.rng.Intn(4)
	for f := 0; f < nFields; f++ {
		ty := []ast.Type{ast.TInt, ast.TBool, ast.TString}[g.rng.Intn(3)]
		if f == 0 {
			ty = ast.TInt
		}
		s.Fields = append(s.Fields, &ast.Field{
			Name: fmt.Sprintf("t%d_f%d", idx, f),
			Type: ty,
			PK:   f == 0,
		})
	}
	return s
}

// expr produces a well-typed expression over int parameters p0..p(n-1) and
// previously bound select variables.
func (g *gen) expr(want ast.Type, params int, vars []*ast.Select, depth int) ast.Expr {
	if depth <= 0 || g.rng.Intn(3) == 0 {
		switch want {
		case ast.TInt:
			if params > 0 && g.rng.Intn(2) == 0 {
				return &ast.Arg{Name: fmt.Sprintf("p%d", g.rng.Intn(params))}
			}
			return &ast.IntLit{Val: int64(g.rng.Intn(100))}
		case ast.TBool:
			return &ast.BoolLit{Val: g.rng.Intn(2) == 0}
		default:
			return &ast.StringLit{Val: fmt.Sprintf("s%d", g.rng.Intn(10))}
		}
	}
	switch want {
	case ast.TInt:
		if len(vars) > 0 && g.rng.Intn(3) == 0 {
			v := vars[g.rng.Intn(len(vars))]
			schema := g.p.Schema(v.Table)
			var intFields []string
			for _, fn := range v.Fields {
				if schema.Field(fn).Type == ast.TInt {
					intFields = append(intFields, fn)
				}
			}
			if len(intFields) > 0 {
				f := intFields[g.rng.Intn(len(intFields))]
				if g.rng.Intn(2) == 0 {
					return &ast.Agg{Fn: ast.AggSum, Var: v.Var, Field: f}
				}
				return &ast.FieldAt{Var: v.Var, Field: f}
			}
		}
		op := []ast.BinOp{ast.OpAdd, ast.OpSub, ast.OpMul}[g.rng.Intn(3)]
		return &ast.Binary{Op: op,
			L: g.expr(ast.TInt, params, vars, depth-1),
			R: g.expr(ast.TInt, params, vars, depth-1)}
	case ast.TBool:
		op := []ast.BinOp{ast.OpLt, ast.OpLe, ast.OpEq, ast.OpNe, ast.OpGt, ast.OpGe}[g.rng.Intn(6)]
		return &ast.Binary{Op: op,
			L: g.expr(ast.TInt, params, vars, depth-1),
			R: g.expr(ast.TInt, params, vars, depth-1)}
	default:
		return &ast.StringLit{Val: fmt.Sprintf("s%d", g.rng.Intn(10))}
	}
}

func (g *gen) where(schema *ast.Schema, params int, vars []*ast.Select) ast.Expr {
	pk := schema.PrimaryKey()[0]
	return &ast.Binary{Op: ast.OpEq,
		L: &ast.ThisField{Field: pk.Name},
		R: g.expr(ast.TInt, params, vars, 1)}
}

func (g *gen) txn(idx, params int) *ast.Txn {
	t := &ast.Txn{Name: fmt.Sprintf("txn%d", idx)}
	for i := 0; i < params; i++ {
		t.Params = append(t.Params, &ast.Param{Name: fmt.Sprintf("p%d", i), Type: ast.TInt})
	}
	var vars []*ast.Select
	nStmts := 1 + g.rng.Intn(4)
	for s := 0; s < nStmts; s++ {
		schema := g.p.Schemas[g.rng.Intn(len(g.p.Schemas))]
		switch g.rng.Intn(3) {
		case 0:
			sel := &ast.Select{
				Var:   fmt.Sprintf("v%d_%d", idx, s),
				Table: schema.Name,
				Where: g.where(schema, params, vars),
			}
			for _, f := range schema.Fields {
				sel.Fields = append(sel.Fields, f.Name)
			}
			t.Body = append(t.Body, sel)
			vars = append(vars, sel)
		case 1:
			nk := schema.NonKeyFields()
			if len(nk) == 0 {
				t.Body = append(t.Body, &ast.Skip{})
				continue
			}
			f := nk[g.rng.Intn(len(nk))]
			t.Body = append(t.Body, &ast.Update{
				Table: schema.Name,
				Sets:  []ast.Assign{{Field: f.Name, Expr: g.expr(f.Type, params, vars, 2)}},
				Where: g.where(schema, params, vars),
			})
		default:
			nk := schema.NonKeyFields()
			if len(nk) == 0 {
				t.Body = append(t.Body, &ast.Skip{})
				continue
			}
			f := nk[0]
			t.Body = append(t.Body, &ast.If{
				Cond: g.expr(ast.TBool, params, vars, 2),
				Then: []ast.Stmt{&ast.Update{
					Table: schema.Name,
					Sets:  []ast.Assign{{Field: f.Name, Expr: g.expr(f.Type, params, vars, 1)}},
					Where: g.where(schema, params, vars),
				}},
			})
		}
	}
	if g.rng.Intn(2) == 0 {
		t.Ret = g.expr(ast.TInt, params, vars, 2)
	}
	return t
}
