package metrics

import (
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func TestMeanAndCount(t *testing.T) {
	l := NewLatencies(100, 1)
	for _, d := range []time.Duration{10 * time.Millisecond, 20 * time.Millisecond, 30 * time.Millisecond} {
		l.Add(d)
	}
	if l.Count() != 3 {
		t.Fatalf("count = %d", l.Count())
	}
	if got := l.Mean(); got != 20*time.Millisecond {
		t.Fatalf("mean = %v, want 20ms", got)
	}
}

func TestEmptyAggregator(t *testing.T) {
	l := NewLatencies(10, 1)
	if l.Mean() != 0 || l.Percentile(95) != 0 || l.Count() != 0 {
		t.Fatal("empty aggregator not zero-valued")
	}
}

func TestPercentileOrdering(t *testing.T) {
	l := NewLatencies(1000, 1)
	for i := 1; i <= 100; i++ {
		l.Add(time.Duration(i) * time.Millisecond)
	}
	p50 := l.Percentile(50)
	p95 := l.Percentile(95)
	p100 := l.Percentile(100)
	if !(p50 <= p95 && p95 <= p100) {
		t.Fatalf("percentiles not monotone: p50=%v p95=%v p100=%v", p50, p95, p100)
	}
	if p100 != 100*time.Millisecond {
		t.Fatalf("p100 = %v, want 100ms", p100)
	}
	if p50 < 45*time.Millisecond || p50 > 55*time.Millisecond {
		t.Fatalf("p50 = %v, want ≈50ms", p50)
	}
}

// TestReservoirDeterministic: the seeded reservoir makes the percentile
// estimate a pure function of (seed, sample sequence) even after
// replacement kicks in — the property the cluster simulator's golden
// latency test (internal/cluster) builds on.
func TestReservoirDeterministic(t *testing.T) {
	run := func() (time.Duration, time.Duration) {
		l := NewLatencies(32, 5)
		for i := 1; i <= 1000; i++ {
			l.Add(time.Duration(i*i%997) * time.Millisecond)
		}
		return l.Percentile(50), l.Percentile(99)
	}
	p50a, p99a := run()
	p50b, p99b := run()
	if p50a != p50b || p99a != p99b {
		t.Fatalf("reservoir not deterministic: (%v,%v) vs (%v,%v)", p50a, p99a, p50b, p99b)
	}
	if p50a > p99a {
		t.Fatalf("p50 %v > p99 %v", p50a, p99a)
	}
}

// TestReservoirBounded is a property test: however many samples arrive,
// the reservoir never exceeds its capacity and mean stays within the
// sample range.
func TestReservoirBounded(t *testing.T) {
	f := func(samples []uint16) bool {
		l := NewLatencies(64, 7)
		var min, max time.Duration
		for i, s := range samples {
			d := time.Duration(s) * time.Microsecond
			l.Add(d)
			if i == 0 || d < min {
				min = d
			}
			if d > max {
				max = d
			}
		}
		if len(l.reservoir) > 64 {
			return false
		}
		if len(samples) == 0 {
			return l.Mean() == 0
		}
		m := l.Mean()
		return m >= min && m <= max
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestSeriesFormat(t *testing.T) {
	s := Series{Label: "EC", Points: []Point{
		{Clients: 10, Throughput: 123.4, MeanMs: 5.6, P95Ms: 9.9},
	}}
	out := s.Format()
	if !strings.Contains(out, "EC:") || !strings.Contains(out, "123.4") {
		t.Fatalf("Format output malformed:\n%s", out)
	}
}
