// Package metrics provides the latency/throughput aggregation used by the
// performance experiments: streaming mean, percentiles over a bounded
// reservoir, and formatted series output matching the paper's figures.
package metrics

import (
	"fmt"
	"math/rand"
	"sort"
	"time"
)

// Latencies aggregates latency samples with a fixed-size reservoir for
// percentile estimation.
type Latencies struct {
	count     int64
	sum       time.Duration
	reservoir []time.Duration
	cap       int
	rng       *rand.Rand
}

// NewLatencies creates an aggregator keeping at most cap samples for
// percentiles (reservoir sampling).
func NewLatencies(cap int, seed int64) *Latencies {
	if cap <= 0 {
		cap = 4096
	}
	return &Latencies{cap: cap, rng: rand.New(rand.NewSource(seed))}
}

// Add records one sample.
func (l *Latencies) Add(d time.Duration) {
	l.count++
	l.sum += d
	if len(l.reservoir) < l.cap {
		l.reservoir = append(l.reservoir, d)
		return
	}
	if i := l.rng.Int63n(l.count); i < int64(l.cap) {
		l.reservoir[i] = d
	}
}

// Count returns the number of samples recorded.
func (l *Latencies) Count() int64 { return l.count }

// Mean returns the average latency (0 when empty).
func (l *Latencies) Mean() time.Duration {
	if l.count == 0 {
		return 0
	}
	return time.Duration(int64(l.sum) / l.count)
}

// Percentile returns the p-th percentile (0 < p <= 100) from the reservoir.
func (l *Latencies) Percentile(p float64) time.Duration {
	if len(l.reservoir) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), l.reservoir...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(p / 100 * float64(len(sorted)-1))
	return sorted[idx]
}

// Point is one measurement of a throughput/latency curve.
type Point struct {
	Clients    int
	Throughput float64 // transactions per second
	MeanMs     float64 // mean latency in milliseconds
	P50Ms      float64
	P95Ms      float64
	P99Ms      float64
}

// Series is a labelled performance curve (one line in Figs. 12–15).
type Series struct {
	Label  string
	Points []Point
}

// Format renders the series as an aligned table, one row per point.
func (s Series) Format() string {
	out := fmt.Sprintf("%s:\n", s.Label)
	out += fmt.Sprintf("  %8s %14s %12s %10s\n", "clients", "txn/s", "mean-ms", "p95-ms")
	for _, p := range s.Points {
		out += fmt.Sprintf("  %8d %14.1f %12.2f %10.2f\n", p.Clients, p.Throughput, p.MeanMs, p.P95Ms)
	}
	return out
}
