package anomaly

import (
	"testing"

	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/logic"
	"atropos/internal/parser"
	"atropos/internal/sema"
)

// Allocation-reporting microbenchmarks for the detect→encode→solve hot
// path (the regression surface of the interned-atom encoding; compare
// with `make bench-compare`, see EXPERIMENTS.md §Baselines).

func benchProg(b *testing.B, src string) *ast.Program {
	b.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		b.Fatal(err)
	}
	if err := sema.Check(p); err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPairEncoderBuild measures encoding one (txn, witness) pair into
// a fresh solver: interning, axiom assertion, Tseitin conversion.
func BenchmarkPairEncoderBuild(b *testing.B) {
	prog := benchProg(b, courseware)
	t := prog.Txns[2] // regSt: the widest encoder of the running example
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := newPairEncoder(logic.AcquireEncoder(), prog, t, t, EC, true, false); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectCourseware measures a full fresh detection (every encoder
// plus every cycle query) of the paper's running example.
func BenchmarkDetectCourseware(b *testing.B) {
	prog := benchProg(b, courseware)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(prog, EC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectSmallBank measures fresh detection on a real benchmark
// translation (the detect column of Table 1).
func BenchmarkDetectSmallBank(b *testing.B) {
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Detect(prog, EC); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDetectParallel_TPCC measures a cold wavefront detection of the
// largest benchmark at a fixed fan-out of 4 workers — the parallel fast
// path end to end: sharded interning, per-worker encoder caches, the
// (txn, witness) wavefront scheduler. A fresh session per iteration keeps
// allocs/op deterministic (the fixed width keeps it machine-independent,
// so the allocgate can gate it; see cmd/allocgate).
func BenchmarkDetectParallel_TPCC(b *testing.B) {
	prog, err := benchmarks.TPCC.Program()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := NewSession(EC)
		s.SetParallelism(4)
		if _, err := s.Detect(prog); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSessionWarmDetect measures a fully warm incremental pass: every
// transaction fingerprint hits, so this is the session's bookkeeping
// floor.
func BenchmarkSessionWarmDetect(b *testing.B) {
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		b.Fatal(err)
	}
	s := NewSession(EC)
	if _, err := s.Detect(prog); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Detect(prog); err != nil {
			b.Fatal(err)
		}
	}
}
