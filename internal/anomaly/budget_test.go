package anomaly

import (
	"context"
	"reflect"
	"testing"

	"atropos/internal/sat"
)

// TestDetectBudgetedHugeEquivalent is the degradation differential's easy
// half: a budget far above what any courseware solve needs must produce a
// report byte-identical to the unbudgeted detector's — same pairs, same
// query counters, nothing degraded.
func TestDetectBudgetedHugeEquivalent(t *testing.T) {
	prog := mustProg(t, courseware)
	for _, m := range []Model{EC, CC, RR} {
		want, err := Detect(prog, m)
		if err != nil {
			t.Fatal(err)
		}
		huge := sat.Budget{Conflicts: 1 << 40, Propagations: 1 << 40, ArenaLits: 1 << 40}
		got, err := DetectBudgeted(context.Background(), prog, m, huge)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("%v: huge-budget report differs from unbudgeted:\ngot  %+v\nwant %+v", m, got, want)
		}
	}
}

// TestDetectBudgetedZeroEquivalent: the zero budget is the documented
// off-switch — DetectBudgeted must be DetectContext exactly.
func TestDetectBudgetedZeroEquivalent(t *testing.T) {
	prog := mustProg(t, courseware)
	want, err := Detect(prog, EC)
	if err != nil {
		t.Fatal(err)
	}
	got, err := DetectBudgeted(context.Background(), prog, EC, sat.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("zero-budget report differs from unbudgeted:\ngot  %+v\nwant %+v", got, want)
	}
}

// TestDetectBudgetedStarvedDegrades is the hard half: under a starvation
// budget the report must degrade soundly — flagged Degraded with the
// unresolved pairs enumerated, reported pairs a subset of the full
// verdict's (exhaustion removes answers, never invents them), and the
// whole outcome deterministic across runs.
func TestDetectBudgetedStarvedDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	full, err := Detect(prog, EC)
	if err != nil {
		t.Fatal(err)
	}
	starved := sat.Budget{Propagations: 1}
	got, err := DetectBudgeted(context.Background(), prog, EC, starved)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.Exhausted == 0 {
		t.Fatalf("starved detect not degraded: degraded=%v exhausted=%d", got.Degraded, got.Exhausted)
	}
	if got.Unknown != len(got.UnknownPairs) {
		t.Fatalf("Unknown=%d but %d UnknownPairs", got.Unknown, len(got.UnknownPairs))
	}
	if got.Unknown == 0 {
		t.Fatal("starved detect resolved every pair")
	}
	for _, p := range got.Pairs {
		if !hasPair(full, p.Txn, p.C1, p.C2) {
			t.Fatalf("starved detect invented pair %s(%s,%s) absent from the full verdict", p.Txn, p.C1, p.C2)
		}
	}
	again, err := DetectBudgeted(context.Background(), prog, EC, starved)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, again) {
		t.Fatalf("starved detection nondeterministic:\nrun1 %+v\nrun2 %+v", got, again)
	}
}

// TestSessionBudgetDegradedNotCached: a degraded detection must not poison
// the session's caches — lifting the budget and re-detecting the same
// program through the same session yields the full unbudgeted verdict.
func TestSessionBudgetDegradedNotCached(t *testing.T) {
	prog := mustProg(t, courseware)
	full, err := Detect(prog, EC)
	if err != nil {
		t.Fatal(err)
	}
	s := NewSession(EC)
	s.SetSolveBudget(sat.Budget{Propagations: 1})
	deg, err := s.DetectContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if !deg.Degraded {
		t.Fatal("setup: starved session detect not degraded")
	}
	s.SetSolveBudget(sat.Budget{})
	got, err := s.DetectContext(context.Background(), prog)
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded || got.Unknown != 0 {
		t.Fatalf("unbudgeted re-detect still degraded: %+v", got)
	}
	if len(got.Pairs) != len(full.Pairs) {
		t.Fatalf("re-detect found %d pairs, fresh detect %d — degraded results leaked into the cache",
			len(got.Pairs), len(full.Pairs))
	}
	for _, p := range full.Pairs {
		if !hasPair(got, p.Txn, p.C1, p.C2) {
			t.Fatalf("re-detect missing pair %s(%s,%s)", p.Txn, p.C1, p.C2)
		}
	}
}

// TestDetectWitnessedBudgetedDegrades: the witness-recording detector
// degrades the same way, and every pair it does report still carries its
// executable schedule.
func TestDetectWitnessedBudgetedDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	got, err := DetectWitnessedBudgeted(context.Background(), prog, EC, sat.Budget{Propagations: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded {
		t.Fatal("starved witnessed detect not degraded")
	}
	for _, p := range got.Pairs {
		if p.Witness.Schedule == nil {
			t.Fatalf("reported pair %s(%s,%s) has no witness schedule", p.Txn, p.C1, p.C2)
		}
	}
}
