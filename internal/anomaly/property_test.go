package anomaly_test

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/progen"
)

// TestModelMonotonicityOnRandomPrograms is the detector's core semantic
// property, validated over randomly generated programs: stronger
// consistency models admit fewer executions, so anomaly counts must be
// monotone — SC ≤ CC ≤ EC and SC ≤ RR ≤ EC — and SC must always be zero
// (serializable executions have no serializability anomalies).
func TestModelMonotonicityOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 40; seed++ {
		p := progen.Program(seed)
		counts := map[anomaly.Model]int{}
		for _, m := range []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR, anomaly.SC} {
			r, err := anomaly.Detect(p, m)
			if err != nil {
				t.Fatalf("seed %d: Detect(%v): %v", seed, m, err)
			}
			counts[m] = r.Count()
		}
		if counts[anomaly.SC] != 0 {
			t.Errorf("seed %d: SC reports %d anomalies, want 0", seed, counts[anomaly.SC])
		}
		if counts[anomaly.CC] > counts[anomaly.EC] {
			t.Errorf("seed %d: CC (%d) > EC (%d)", seed, counts[anomaly.CC], counts[anomaly.EC])
		}
		if counts[anomaly.RR] > counts[anomaly.EC] {
			t.Errorf("seed %d: RR (%d) > EC (%d)", seed, counts[anomaly.RR], counts[anomaly.EC])
		}
	}
}

// TestDetectorGoldenCounts pins the measured Table 1 anomaly counts of the
// benchmark corpus so detector or benchmark changes surface explicitly
// (EXPERIMENTS.md records these next to the paper's numbers).
func TestDetectorGoldenCounts(t *testing.T) {
	want := map[string]int{
		"TPC-C":      123,
		"SEATS":      38,
		"Courseware": 10,
		"SmallBank":  32,
		"Twitter":    11,
		"FMKe":       23,
		"SIBench":    1,
		"Wikipedia":  29,
		"Killrchat":  13,
	}
	for _, b := range benchmarks.All() {
		if b.Name == "TPC-C" && testing.Short() {
			continue
		}
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		r, err := anomaly.Detect(prog, anomaly.EC)
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if got := r.Count(); got != want[b.Name] {
			t.Errorf("%s: EC anomalies = %d, want %d (update EXPERIMENTS.md if intentional)", b.Name, got, want[b.Name])
		}
	}
}
