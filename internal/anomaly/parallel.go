package anomaly

import (
	"context"
	"sync"

	"atropos/internal/ast"
	"atropos/internal/logic"
	"atropos/internal/pool"
)

// Parallel detection: the session's wavefront fan-out (DESIGN.md §15).
//
// The unit of work is one (transaction, witness) task — one encoder plus
// all of its cycle queries — not one transaction: wide programs have few
// transactions but many witnesses, and the txn-granular split left cores
// idle whenever one transaction dominated the pass.
//
// The fan-out must reproduce the sequential oracle byte-for-byte, and the
// obstacle is the witness loop's early exit: sequentially, pair p of
// transaction t consults witnesses in program order and stops at the first
// satisfiable one, so whether witness w runs any queries for p depends on
// the verdicts of witnesses 0..w-1 at p. Those verdicts are deterministic
// — SAT/UNSAT is a property of the encoding, independent of solver state;
// only models are state-dependent — which admits a wavefront: witness w's
// task walks pairs in order, and at each pair waits for witness w-1 to
// publish the cumulative found bit (did any witness ≤ w-1 find p?). Found
// → skip, exactly as the sequential loop never reaches w; not found → run
// checkPairWitness verbatim on the task's own encoder. Every encoder
// therefore sees exactly the query sequence the sequential oracle would
// issue on it, so the history-keyed session cache, the replay protocol,
// and the reported pairs are all unchanged by parallelism.
//
// A task that cannot proceed registers itself as its predecessor's waiter
// (under the wave mutex, re-checking the published count so a concurrent
// publish cannot strand it) and returns TaskSuspended; the predecessor's
// next publish re-pushes it. Workers never block on wave state, so the
// scheduling is deadlock-free regardless of worker count. Tasks may block
// on session query futures, but those are safe: a future's producer solves
// synchronously and never suspends, so every future resolves.

// txnOut is one transaction's detection outcome, merged into the report in
// transaction order (shared by the sequential and wavefront paths).
type txnOut struct {
	pairs                    []AccessPair
	unknown                  []UnknownPair
	issued, solved, replayed int
	exhausted                int
}

// wavefrontRun is the per-Detect-call shared state of the fan-out: one
// encoder freelist per worker and the first-error slot.
type wavefrontRun struct {
	caches []logic.EncoderCache

	mu  sync.Mutex
	err error
	// errPos orders concurrent errors by the sequential iteration position
	// (txn, pair, witness) so the reported error is the one the sequential
	// oracle would have hit first.
	errPos [3]int
	abort  bool
}

func (r *wavefrontRun) fail(txn, pair, wit int, err error) {
	pos := [3]int{txn, pair, wit}
	r.mu.Lock()
	if r.err == nil || lessPos(pos, r.errPos) {
		r.err, r.errPos = err, pos
	}
	r.abort = true
	r.mu.Unlock()
}

func (r *wavefrontRun) aborted() bool {
	r.mu.Lock()
	a := r.abort
	r.mu.Unlock()
	return a
}

func lessPos(a, b [3]int) bool {
	if a[0] != b[0] {
		return a[0] < b[0]
	}
	if a[1] != b[1] {
		return a[1] < b[1]
	}
	return a[2] < b[2]
}

// txnWave is one transaction's wavefront: W witness tasks advancing over P
// command pairs, coupled only through the cumulative found bits.
type txnWave struct {
	run       *wavefrontRun
	txn       *ast.Txn
	txnIdx    int
	fp        uint64
	cmds      []ast.DBCommand
	witnesses []*ast.Txn
	pairs     [][2]int    // (i, j) command pairs in sequential order
	dets      []*detector // one per witness task; read only after Run

	mu        sync.Mutex
	cum       [][]bool // cum[w][p]: some witness ≤ w found pair p
	published []int    // published[w]: pairs witness w has decided
	waiter    []*witnessTask
	results   []AccessPair // first finder's pair, per pair index
	foundAny  []bool
	unknown   []bool
}

// witnessTask is the resumable unit of work: witness w of one transaction,
// suspended at pair boundary p. All mutable fields are owned by whichever
// worker is running the task; ownership hands off through wave.mu (waiter
// registration) and the stealer's deque mutex (re-push).
type witnessTask struct {
	wave *txnWave
	w    int
	p    int
	d    *detector
}

func (t *witnessTask) Run(s *pool.Stealer, worker int) pool.TaskStatus {
	wv := t.wave
	// Route this task's encoder churn through the current worker's
	// freelist; a resumption may land on a different worker.
	t.d.encCache = &wv.run.caches[worker]
	for t.p < len(wv.pairs) {
		if wv.run.aborted() {
			t.drain(s, worker)
			return pool.TaskDone
		}
		p := t.p
		predFound := false
		if t.w > 0 {
			wv.mu.Lock()
			if wv.published[t.w-1] <= p {
				wv.waiter[t.w-1] = t
				wv.mu.Unlock()
				// The predecessor may already have re-pushed this task onto
				// another worker; touch nothing of t past this point.
				return pool.TaskSuspended
			}
			predFound = wv.cum[t.w-1][p]
			wv.mu.Unlock()
		}
		var pair AccessPair
		selfFound, unknown := false, false
		if !predFound {
			var err error
			pair, selfFound, unknown, err = t.d.checkPairWitness(wv.txn, wv.witnesses[t.w], wv.pairs[p][0], wv.pairs[p][1])
			if err != nil {
				wv.run.fail(wv.txnIdx, p, t.w, err)
				t.drain(s, worker)
				return pool.TaskDone
			}
		}
		t.p = p + 1
		t.publish(s, worker, p, predFound || selfFound, selfFound && !predFound, pair, unknown)
	}
	t.d.releaseEncoders()
	return pool.TaskDone
}

// publish records pair p's cumulative decision and wakes the successor if
// it suspended on it.
func (t *witnessTask) publish(s *pool.Stealer, worker, p int, found, first bool, pair AccessPair, unknown bool) {
	wv := t.wave
	wv.mu.Lock()
	wv.cum[t.w][p] = found
	wv.published[t.w] = p + 1
	if first {
		wv.results[p] = pair
		wv.foundAny[p] = true
	}
	if unknown {
		wv.unknown[p] = true
	}
	wake := wv.waiter[t.w]
	wv.waiter[t.w] = nil
	wv.mu.Unlock()
	if wake != nil {
		s.Push(worker, wake)
	}
}

// drain unblocks the successor chain after an abort: the remaining pairs
// are published as found (successors skip their queries and drain in
// turn), the wave's report is discarded with the error anyway.
func (t *witnessTask) drain(s *pool.Stealer, worker int) {
	wv := t.wave
	wv.mu.Lock()
	for p := t.p; p < len(wv.pairs); p++ {
		wv.cum[t.w][p] = true
	}
	wv.published[t.w] = len(wv.pairs)
	wake := wv.waiter[t.w]
	wv.waiter[t.w] = nil
	wv.mu.Unlock()
	if wake != nil {
		s.Push(worker, wake)
	}
	t.d.releaseEncoders()
}

// finalize assembles the transaction's outcome once every witness task has
// completed (called after Stealer.Run, so all wave state is quiescent).
// Pair order and the first-finder rule reproduce detectTxn exactly.
func (wv *txnWave) finalize() txnOut {
	var out txnOut
	for p, ij := range wv.pairs {
		switch {
		case wv.foundAny[p]:
			out.pairs = append(out.pairs, wv.results[p])
		case wv.unknown[p]:
			out.unknown = append(out.unknown, UnknownPair{
				Txn: wv.txn.Name, C1: wv.cmds[ij[0]].CmdLabel(), C2: wv.cmds[ij[1]].CmdLabel(),
			})
		}
	}
	for _, d := range wv.dets {
		out.issued += d.issued
		out.solved += d.solved
		out.replayed += d.replayed
		out.exhausted += d.exhausted
	}
	return out
}

// detectWavefront is DetectContext's parallel path: seed one witness task
// per (cache-missing transaction, witness) into a work-stealing pool and
// reassemble per-transaction outcomes afterwards.
//
// Duplicate fingerprints within one pass are deferred rather than raced:
// the first occurrence detects, the rest resolve from the fingerprint
// cache after the fan-out (counting the TxnHit a sequential pass would),
// falling back to direct detection only when the first occurrence was
// degraded and therefore not stored.
func (s *DetectSession) detectWavefront(ctx context.Context, prog *ast.Program, workers int, fps []uint64) ([]txnOut, error) {
	n := len(prog.Txns)
	outs := make([]txnOut, n)
	run := &wavefrontRun{caches: make([]logic.EncoderCache, workers)}
	scheduled := map[uint64]bool{}
	var deferred []int
	var waves []*txnWave
	var seed []pool.Task
	for i, t := range prog.Txns {
		fp := fps[i]
		if scheduled[fp] {
			deferred = append(deferred, i)
			continue
		}
		if e, ok := s.lookupTxn(fp); ok {
			outs[i] = txnOut{pairs: e.pairs, issued: e.issued}
			continue
		}
		scheduled[fp] = true
		cmds := ast.Commands(t.Body)
		witnesses := witnessesOf(prog, t)
		var pairs [][2]int
		for a := 0; a < len(cmds); a++ {
			for b := a + 1; b < len(cmds); b++ {
				pairs = append(pairs, [2]int{a, b})
			}
		}
		if len(pairs) == 0 || len(witnesses) == 0 {
			// No queries to issue; a fresh detection reports nothing and is
			// complete, so it enters the fingerprint cache immediately.
			s.storeTxn(fp, txnEntry{})
			continue
		}
		wv := &txnWave{
			run: run, txn: t, txnIdx: i, fp: fp, cmds: cmds,
			witnesses: witnesses, pairs: pairs,
			dets:      make([]*detector, len(witnesses)),
			cum:       make([][]bool, len(witnesses)),
			published: make([]int, len(witnesses)),
			waiter:    make([]*witnessTask, len(witnesses)),
			results:   make([]AccessPair, len(pairs)),
			foundAny:  make([]bool, len(pairs)),
			unknown:   make([]bool, len(pairs)),
		}
		for w := range witnesses {
			wv.cum[w] = make([]bool, len(pairs))
			d := &detector{prog: prog, model: s.model, encoders: map[[2]string]*pairEncoder{}, session: s, record: s.record, budget: s.budget, portfolio: s.portfolio}
			d.setContext(ctx)
			wv.dets[w] = d
			seed = append(seed, &witnessTask{wave: wv, w: w, d: d})
		}
		waves = append(waves, wv)
	}
	if len(seed) > 0 {
		pool.NewStealer(workers, len(seed)).Run(seed)
	}
	for i := range run.caches {
		run.caches[i].Drain()
	}
	run.mu.Lock()
	err := run.err
	run.mu.Unlock()
	if err != nil {
		return nil, err
	}
	for _, wv := range waves {
		out := wv.finalize()
		if out.exhausted == 0 {
			s.storeTxn(wv.fp, txnEntry{pairs: out.pairs, issued: out.issued})
		}
		outs[wv.txnIdx] = out
	}
	for _, i := range deferred {
		if e, ok := s.lookupTxn(fps[i]); ok {
			outs[i] = txnOut{pairs: e.pairs, issued: e.issued}
			continue
		}
		// The scheduled twin was degraded and not stored; detect directly,
		// exactly as the sequential pass would on its cache miss.
		d := &detector{prog: prog, model: s.model, encoders: map[[2]string]*pairEncoder{}, session: s, record: s.record, budget: s.budget, portfolio: s.portfolio}
		d.setContext(ctx)
		pairs, derr := d.detectTxn(prog.Txns[i])
		d.releaseEncoders()
		if derr != nil {
			return nil, derr
		}
		if d.exhausted == 0 {
			s.storeTxn(fps[i], txnEntry{pairs: pairs, issued: d.issued})
		}
		outs[i] = txnOut{pairs: pairs, unknown: d.unknownPairs, issued: d.issued, solved: d.solved, replayed: d.replayed, exhausted: d.exhausted}
	}
	return outs, nil
}
