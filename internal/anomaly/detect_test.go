package anomaly

import (
	"testing"

	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/sema"
)

// courseware is the paper's running example (Fig. 1).
const courseware = `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}
`

// refactored is the paper's Fig. 3: the Atropos output for courseware.
const refactored = `
table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_em_addr: string,
  st_co_id: int,
  st_co_avail: bool,
  st_reg: bool,
}

table COURSE_CO_ST_CNT_LOG {
  co_id: int key,
  log_id: int key,
  co_st_cnt_log: int,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  return x.st_em_addr;
}

txn setSt(id: int, name: string, email: string) {
  update STUDENT set st_name = name, st_em_addr = email where st_id = id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_co_avail = true, st_reg = true where st_id = id;
  insert into COURSE_CO_ST_CNT_LOG values (co_id = course, log_id = uuid(), co_st_cnt_log = 1);
}
`

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return p
}

func detect(t *testing.T, src string, m Model) *Report {
	t.Helper()
	r, err := Detect(mustProg(t, src), m)
	if err != nil {
		t.Fatalf("Detect(%v): %v", m, err)
	}
	return r
}

func hasPair(r *Report, txn, c1, c2 string) bool {
	for _, p := range r.Pairs {
		if p.Txn == txn && ((p.C1 == c1 && p.C2 == c2) || (p.C1 == c2 && p.C2 == c1)) {
			return true
		}
	}
	return false
}

func TestCoursewareAnomaliesUnderEC(t *testing.T) {
	r := detect(t, courseware, EC)
	// The paper's §3.2/§5 examples: the non-repeatable read pairs in getSt
	// and setSt, and regSt's dirty read (U1,U3) and lost update (S1,U2)
	// (our labels: regSt has U1=student update, S1=count select, U2=course
	// update).
	if !hasPair(r, "getSt", "S1", "S2") {
		t.Error("missing getSt (S1,S2) non-repeatable read pair")
	}
	if !hasPair(r, "setSt", "U1", "U2") {
		t.Error("missing setSt (U1,U2) pair")
	}
	if !hasPair(r, "regSt", "U1", "U2") {
		t.Error("missing regSt (U1,U2) dirty-read pair")
	}
	if !hasPair(r, "regSt", "S1", "U2") {
		t.Error("missing regSt (S1,U2) lost-update pair")
	}
	if r.Count() == 0 {
		t.Fatal("no anomalies found in courseware under EC")
	}
	t.Logf("courseware EC anomalies: %d (queries: %d)", r.Count(), r.Queries)
	for _, p := range r.Pairs {
		t.Logf("  %s", p)
	}
}

func TestCoursewareCleanUnderSC(t *testing.T) {
	r := detect(t, courseware, SC)
	if r.Count() != 0 {
		t.Fatalf("SC reports %d anomalies, want 0:\n%v", r.Count(), r.Pairs)
	}
}

func TestLostUpdateKindAndWitness(t *testing.T) {
	r := detect(t, courseware, EC)
	found := false
	for _, p := range r.Pairs {
		if p.Txn == "regSt" && ((p.C1 == "S1" && p.C2 == "U2") || (p.C1 == "U2" && p.C2 == "S1")) {
			found = true
			if p.Kind != KindLostUpdate {
				t.Errorf("regSt (S1,U2) classified %s, want %s", p.Kind, KindLostUpdate)
			}
			if p.Witness.Txn == "" || p.Witness.D1 == "" {
				t.Error("witness not populated")
			}
		}
	}
	if !found {
		t.Fatal("regSt (S1,U2) not reported")
	}
}

func TestRefactoredProgramFixedUnderEC(t *testing.T) {
	r := detect(t, refactored, EC)
	if r.Count() != 0 {
		t.Fatalf("refactored courseware has %d anomalies under EC, want 0:\n%v", r.Count(), r.Pairs)
	}
}

func TestWeakerModelsBetweenECAndSC(t *testing.T) {
	ec := detect(t, courseware, EC).Count()
	cc := detect(t, courseware, CC).Count()
	rr := detect(t, courseware, RR).Count()
	sc := detect(t, courseware, SC).Count()
	if sc != 0 {
		t.Errorf("SC = %d, want 0", sc)
	}
	if cc > ec {
		t.Errorf("CC (%d) > EC (%d): CC must not add anomalies", cc, ec)
	}
	if rr > ec {
		t.Errorf("RR (%d) > EC (%d): RR must not add anomalies", rr, ec)
	}
	t.Logf("EC=%d CC=%d RR=%d SC=%d", ec, cc, rr, sc)
}

func TestReadOnlyProgramClean(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn r1(k: int) {
  x := select n from T where id = k;
  y := select n from T where id = k;
  return x.n + y.n;
}
txn r2(k: int) {
  x := select n from T where id = k;
  return x.n;
}
`
	r := detect(t, src, EC)
	if r.Count() != 0 {
		t.Fatalf("read-only program has %d anomalies:\n%v", r.Count(), r.Pairs)
	}
}

func TestDistinctConstantsNeverAlias(t *testing.T) {
	// The two commands operate on provably different records (distinct
	// constant keys), so no anomaly is possible.
	src := `
table T { id: int key, n: int, }
txn a() {
  x := select n from T where id = 1;
  update T set n = x.n + 1 where id = 1;
}
txn b() {
  y := select n from T where id = 2;
  update T set n = y.n + 1 where id = 2;
}
`
	r := detect(t, src, EC)
	for _, p := range r.Pairs {
		if (p.Txn == "a" && p.Witness.Txn == "b") || (p.Txn == "b" && p.Witness.Txn == "a") {
			t.Fatalf("cross-key anomaly reported: %s", p)
		}
	}
	// a racing with another instance of a IS anomalous (same key).
	if !hasPair(r, "a", "S1", "U1") {
		t.Error("self-race lost update on a not reported")
	}
}

func TestUUIDInsertsNeverConflict(t *testing.T) {
	// Append-only logging with uuid keys: concurrent inserts target
	// provably distinct records, so a write-only logger is anomaly-free.
	src := `
table LOG { k: int key, lid: int key, v: int, }
txn logIt(k: int, v: int) {
  insert into LOG values (k = k, lid = uuid(), v = v);
  insert into LOG values (k = k, lid = uuid(), v = v + 1);
}
`
	r := detect(t, src, EC)
	if r.Count() != 0 {
		t.Fatalf("logger program has %d anomalies:\n%v", r.Count(), r.Pairs)
	}
}

func TestSelectVsInsertPhantom(t *testing.T) {
	// A transaction that reads an aggregate over a log table twice can see
	// different phantom sets: anomalous with the inserter.
	src := `
table LOG { k: int key, lid: int key, v: int, }
txn audit(k: int) {
  x := select v from LOG where k = k;
  y := select v from LOG where k = k;
  return sum(x.v) - sum(y.v);
}
txn logIt(k: int, v: int) {
  insert into LOG values (k = k, lid = uuid(), v = v);
  insert into LOG values (k = k, lid = uuid(), v = 0 - v);
}
`
	r := detect(t, src, EC)
	if !hasPair(r, "audit", "S1", "S2") {
		t.Error("phantom non-repeatable read between selects and inserts not reported")
	}
	if !hasPair(r, "logIt", "U1", "U2") {
		t.Error("fractured visibility of the two inserts not reported")
	}
}

func TestDirtyReadClassification(t *testing.T) {
	r := detect(t, courseware, EC)
	for _, p := range r.Pairs {
		if p.Txn == "setSt" && ((p.C1 == "U1" && p.C2 == "U2") || (p.C1 == "U2" && p.C2 == "U1")) {
			if p.Kind != KindDirtyRead {
				t.Errorf("setSt (U1,U2) kind = %s, want %s (both writes)", p.Kind, KindDirtyRead)
			}
			return
		}
	}
	t.Fatal("setSt (U1,U2) not reported")
}

func TestDetectDeterministic(t *testing.T) {
	a := detect(t, courseware, EC)
	b := detect(t, courseware, EC)
	if a.Count() != b.Count() {
		t.Fatalf("nondeterministic counts: %d vs %d", a.Count(), b.Count())
	}
	for i := range a.Pairs {
		if a.Pairs[i].Txn != b.Pairs[i].Txn || a.Pairs[i].C1 != b.Pairs[i].C1 || a.Pairs[i].C2 != b.Pairs[i].C2 {
			t.Fatalf("nondeterministic pair %d: %v vs %v", i, a.Pairs[i], b.Pairs[i])
		}
	}
}

// TestRRKillsRepeatedReadPair: two reads of the same field in one
// transaction racing a single writer form a non-repeatable read under EC;
// the paper's repeatable read fixes exactly this snapshot-stability
// pattern (§7.1 measured 5–16% reductions of this kind).
func TestRRKillsRepeatedReadPair(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn readTwice(k: int) {
  x := select n from T where id = k;
  y := select n from T where id = k;
  return x.n - y.n;
}
txn bump(k: int, v: int) {
  update T set n = v where id = k;
}
`
	ec := detect(t, src, EC)
	if !hasPair(ec, "readTwice", "S1", "S2") {
		t.Fatal("EC misses the non-repeatable read")
	}
	rr := detect(t, src, RR)
	if hasPair(rr, "readTwice", "S1", "S2") {
		t.Fatal("RR still reports the repeated-read pair; snapshot stability broken")
	}
	if rr.Count() >= ec.Count() {
		t.Errorf("RR count %d not below EC count %d", rr.Count(), ec.Count())
	}
}

// TestRRKeepsLostUpdate: repeatable read famously does not prevent lost
// updates (no first-committer-wins): the increment race must survive RR.
func TestRRKeepsLostUpdate(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn inc(k: int) {
  x := select n from T where id = k;
  update T set n = x.n + 1 where id = k;
}
`
	rr := detect(t, src, RR)
	if !hasPair(rr, "inc", "S1", "U1") {
		t.Fatal("RR eliminated the lost update; it must not")
	}
}

// TestCCKeepsFracturedRead: causal consistency gives no transaction
// isolation, so the fractured read of a two-table writer survives CC
// (the paper found CC ineffective on nearly every benchmark).
func TestCCKeepsFracturedRead(t *testing.T) {
	src := `
table A { a_id: int key, a_n: int, }
table B { b_id: int key, b_n: int, }
txn readBoth(k: int) {
  x := select a_n from A where a_id = k;
  y := select b_n from B where b_id = k;
  return x.a_n + y.b_n;
}
txn writeBoth(k: int, v: int) {
  update A set a_n = v where a_id = k;
  update B set b_n = v where b_id = k;
}
`
	cc := detect(t, src, CC)
	if !hasPair(cc, "readBoth", "S1", "S2") {
		t.Fatal("CC eliminated the fractured read; causal delivery should not isolate transactions")
	}
}

// TestMultiKeyAliasing: composite primary keys alias only when every
// jointly pinned field can be equal.
func TestMultiKeyAliasing(t *testing.T) {
	src := `
table T { a: int key, b: int key, n: int, }
txn one(k: int) {
  x := select n from T where a = 1 && b = k;
  update T set n = x.n + 1 where a = 1 && b = k;
}
txn two(k: int) {
  x := select n from T where a = 2 && b = k;
  update T set n = x.n + 1 where a = 2 && b = k;
}
`
	r := detect(t, src, EC)
	for _, p := range r.Pairs {
		if (p.Txn == "one" && p.Witness.Txn == "two") || (p.Txn == "two" && p.Witness.Txn == "one") {
			t.Fatalf("pair witnessed across provably distinct composite keys: %s", p)
		}
	}
	// Each transaction still races its own twin.
	if !hasPair(r, "one", "S1", "U1") || !hasPair(r, "two", "S1", "U1") {
		t.Error("self-races missing")
	}
}

// TestCommandsInsideIterate: commands under iterate participate in
// detection (bounded to one iteration).
func TestCommandsInsideIterate(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn loopInc(k: int, times: int) {
  iterate (times) {
    x := select n from T where id = k;
    update T set n = x.n + 1 where id = k;
  }
}
`
	r := detect(t, src, EC)
	if !hasPair(r, "loopInc", "S1", "U1") {
		t.Fatal("anomaly inside iterate body missed")
	}
}
