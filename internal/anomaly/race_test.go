package anomaly

import (
	"sync"
	"testing"

	"atropos/internal/benchmarks"
)

// TestDetectConcurrent runs the detector from many goroutines over the
// same shared *ast.Program under every consistency model. The parallel
// experiment engine relies on Detect treating its input as read-only; run
// with -race this test guards that contract (detector state — encoders,
// query counters, SAT solvers — must be per-call).
func TestDetectConcurrent(t *testing.T) {
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		t.Fatal(err)
	}
	models := []Model{EC, CC, RR, SC}
	want := make([]int, len(models))
	for i, m := range models {
		r, err := Detect(prog, m)
		if err != nil {
			t.Fatalf("%v: %v", m, err)
		}
		want[i] = r.Count()
	}

	const rounds = 4
	counts := make([][]int, rounds)
	var wg sync.WaitGroup
	for round := 0; round < rounds; round++ {
		counts[round] = make([]int, len(models))
		for i, m := range models {
			wg.Add(1)
			go func(round, i int, m Model) {
				defer wg.Done()
				r, err := Detect(prog, m)
				if err != nil {
					t.Errorf("%v: %v", m, err)
					return
				}
				counts[round][i] = r.Count()
			}(round, i, m)
		}
	}
	wg.Wait()
	for round := range counts {
		for i, m := range models {
			if counts[round][i] != want[i] {
				t.Errorf("round %d %v: count %d, want %d (detection not deterministic under concurrency)",
					round, m, counts[round][i], want[i])
			}
		}
	}
}
