package anomaly_test

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
)

// The experiment drivers diff detector output textually (Table 1 goldens,
// the drift gate, the -analyze CLI), so Report.Pairs must come back in the
// same order — and render identically — no matter which engine produced
// them or how many workers the session fanned transactions out on.

func pairStrings(rep *anomaly.Report) []string {
	out := make([]string, len(rep.Pairs))
	for i, p := range rep.Pairs {
		out[i] = p.String()
	}
	return out
}

// TestReportOrderingAcrossEngines pins that fresh detection, a sequential
// session, and a parallel session report byte-identical pair sequences.
func TestReportOrderingAcrossEngines(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.TPCC} {
		prog := b.MustProgram()
		for _, model := range []anomaly.Model{anomaly.EC, anomaly.RR} {
			fresh, err := anomaly.Detect(prog, model)
			if err != nil {
				t.Fatalf("%s/%s: Detect: %v", b.Name, model, err)
			}
			want := pairStrings(fresh)

			for _, par := range []int{1, 4} {
				s := anomaly.NewSession(model)
				s.SetParallelism(par)
				rep, err := s.Detect(prog)
				if err != nil {
					t.Fatalf("%s/%s: session(par=%d): %v", b.Name, model, par, err)
				}
				got := pairStrings(rep)
				if len(got) != len(want) {
					t.Fatalf("%s/%s: session(par=%d) reported %d pairs, fresh %d",
						b.Name, model, par, len(got), len(want))
				}
				for i := range want {
					if got[i] != want[i] {
						t.Errorf("%s/%s: session(par=%d) pair %d:\n got %s\nwant %s",
							b.Name, model, par, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestAccessPairStringGolden pins the exact rendering the drivers diff.
// Update deliberately, with the Table-1 goldens.
func TestAccessPairStringGolden(t *testing.T) {
	rep, err := anomaly.Detect(benchmarks.SmallBank.MustProgram(), anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Pairs) == 0 {
		t.Fatal("no pairs detected")
	}
	const want = "depositChecking: (S1, [chk_bal], U1, [chk_bal]) [lost-update via depositChecking(U1,S1)]"
	if got := rep.Pairs[0].String(); got != want {
		t.Errorf("first SmallBank/EC pair rendered\n got %s\nwant %s", got, want)
	}
}
