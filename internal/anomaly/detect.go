package anomaly

import (
	"context"
	"errors"
	"fmt"
	"maps"
	"slices"
	"sort"
	"strings"

	"atropos/internal/ast"
	"atropos/internal/logic"
	"atropos/internal/sat"
)

// cmdInst is one command of one of the two instantiated transaction
// instances (A = instance 0, B = instance 1).
type cmdInst struct {
	idx    int
	inst   int
	cmd    ast.DBCommand
	label  string
	table  string
	reads  map[string]bool
	writes map[string]bool
	key    keyConstraint
	writer bool
	reader bool
	// pins are the key constraints with their source expressions, kept only
	// when the detector records witness schedules (see witness.go).
	pins []KeyPin
}

// Detect runs the oracle over every transaction of the program under the
// given consistency model. Every SAT query is encoded and solved from
// scratch; use a DetectSession to reuse work across related programs (the
// repair pipeline's repeated detection passes).
func Detect(prog *ast.Program, model Model) (*Report, error) {
	return DetectContext(context.Background(), prog, model)
}

// DetectContext is Detect with cancellation: the context's deadline or
// cancellation aborts detection mid-solve (the SAT solvers poll it) and
// returns ctx.Err(). An uncancellable context adds no overhead.
func DetectContext(ctx context.Context, prog *ast.Program, model Model) (*Report, error) {
	return DetectBudgeted(ctx, prog, model, sat.Budget{})
}

// DetectBudgeted is DetectContext with a per-solve resource budget: every
// cycle query's SAT solve is bounded by b, and a budget-exhausted solve
// marks its pair's verdict unknown instead of failing the detection. The
// report is then partial — Degraded is set, UnknownPairs lists the pairs
// no surviving query could classify — but everything it does report is
// sound (see Report.Degraded). A zero budget is byte-identical to
// DetectContext.
func DetectBudgeted(ctx context.Context, prog *ast.Program, model Model, b sat.Budget) (*Report, error) {
	d := &detector{prog: prog, model: model, encoders: map[[2]string]*pairEncoder{}, budget: b}
	d.setContext(ctx)
	return runDetector(d)
}

// setContext installs the detector's cancellation probe. The stop function
// is only materialized for cancellable contexts, so Background-context
// detection keeps a nil probe on every solver (zero polling cost).
func (d *detector) setContext(ctx context.Context) {
	d.ctx = ctx
	if ctx.Done() != nil {
		d.stop = func() bool { return ctx.Err() != nil }
	}
}

// ctxErr returns the detector's cancellation error, defaulting to
// context.Canceled if a stop was observed before ctx recorded its error.
func (d *detector) ctxErr() error {
	if err := d.ctx.Err(); err != nil {
		return err
	}
	return context.Canceled
}

// runDetector drives a configured detector over every transaction.
func runDetector(d *detector) (*Report, error) {
	defer d.releaseEncoders()
	report := &Report{Model: d.model}
	for _, t := range d.prog.Txns {
		pairs, err := d.detectTxn(t)
		if err != nil {
			return nil, err
		}
		report.Pairs = append(report.Pairs, pairs...)
	}
	report.Queries = d.issued
	report.Solved = d.solved
	report.UnknownPairs = d.unknownPairs
	report.Unknown = len(d.unknownPairs)
	report.Exhausted = d.exhausted
	report.Degraded = d.exhausted > 0
	return report, nil
}

type detector struct {
	prog     *ast.Program
	model    Model
	encoders map[[2]string]*pairEncoder
	// ctx carries the caller's deadline/cancellation; stop is the probe
	// installed on every encoder's solver (nil when ctx cannot be
	// cancelled). See setContext.
	ctx  context.Context
	stop func() bool
	// session, when non-nil, memoizes solved cycle queries across
	// detectors (and across Detect calls) by canonical formula hash.
	session *DetectSession
	// encCache, when non-nil, is the worker-local encoder freelist the
	// parallel wavefront routes acquisition through (DESIGN.md §15); nil
	// falls back to the shared pool. The wavefront re-points it at the
	// current worker's cache on every task resumption.
	encCache *logic.EncoderCache
	// portfolio > 1 races that many diversified solver replicas per query
	// (sat.SetPortfolio). Portfolio encoders are tainted at birth: raced
	// models are timing-dependent, so they must never feed the
	// history-keyed cache.
	portfolio int
	// record opts satisfiable queries into witness-schedule extraction
	// (witness.go); it adds no propositions and changes no solve, so
	// reports and cache keys are identical either way.
	record   bool
	issued   int // cycle-satisfiability queries asked
	solved   int // cache-miss queries solved (issued - cache hits)
	replayed int // cache-hit queries re-run to restore solver-state parity
	// budget, when limited, bounds every encoder's SAT solves; exhausted
	// counts the solves that crossed it, and unknownPairs the access pairs
	// left unclassified because of them.
	budget       sat.Budget
	exhausted    int
	unknownPairs []UnknownPair
}

// detectTxn finds the anomalous access pairs of transaction t: for each
// pair of distinct commands (c1, c2), search over witness transactions and
// witness command pairs for a satisfiable dependency cycle.
func (d *detector) detectTxn(t *ast.Txn) ([]AccessPair, error) {
	cmds := ast.Commands(t.Body)
	witnesses := witnessesOf(d.prog, t)
	var found []AccessPair
	for i := 0; i < len(cmds); i++ {
		for j := i + 1; j < len(cmds); j++ {
			pair, ok, unknown, err := d.checkPair(t, witnesses, i, j)
			if err != nil {
				return nil, err
			}
			switch {
			case ok:
				found = append(found, pair)
			case unknown:
				// No witness proved the pair anomalous, but at least one
				// query ran out of budget: the pair's verdict is unknown,
				// not clean. Reported separately so callers can degrade
				// instead of silently under-reporting.
				d.unknownPairs = append(d.unknownPairs, UnknownPair{
					Txn: t.Name, C1: cmds[i].CmdLabel(), C2: cmds[j].CmdLabel(),
				})
			}
		}
	}
	return found, nil
}

// witnessesOf lists the witness transactions of t in program order. Only
// transactions sharing a table with t can contribute a dependency edge
// (defineEdges requires x.table == y.table); skipping the rest avoids
// building dead encodings. Results are unaffected: a disjoint witness
// defines no deps and issues no queries.
func witnessesOf(prog *ast.Program, t *ast.Txn) []*ast.Txn {
	tables := txnTables(t)
	var witnesses []*ast.Txn
	for _, w := range prog.Txns {
		for tb := range txnTables(w) {
			if tables[tb] {
				witnesses = append(witnesses, w)
				break
			}
		}
	}
	return witnesses
}

func (d *detector) checkPair(t *ast.Txn, witnesses []*ast.Txn, i, j int) (AccessPair, bool, bool, error) {
	anyUnknown := false
	for _, w := range witnesses {
		pair, ok, unknown, err := d.checkPairWitness(t, w, i, j)
		if err != nil || ok {
			return pair, ok, false, err
		}
		anyUnknown = anyUnknown || unknown
	}
	return AccessPair{}, false, anyUnknown, nil
}

// checkPairWitness searches witness transaction w for a satisfiable
// dependency cycle through commands i and j of t. It is the unit of work
// the parallel session fans out: one (txn, witness) encoder, all its cycle
// queries.
func (d *detector) checkPairWitness(t, w *ast.Txn, i, j int) (AccessPair, bool, bool, error) {
	enc, err := d.encoderFor(t, w)
	if err != nil {
		return AccessPair{}, false, false, err
	}
	c1 := enc.items[i]
	c2 := enc.items[j]
	anyUnknown := false
	for _, d1 := range enc.items[enc.nA:] {
		for _, d2 := range enc.items[enc.nA:] {
			// Orientation 1: A.c1 → B.d1, B.d2 → A.c2.
			if enc.hasDep(c1, d1) && enc.hasDep(d2, c2) {
				r, err := d.solveCycle(enc, c1, d1, d2, c2)
				if err != nil {
					return AccessPair{}, false, false, err
				}
				if r.Sat {
					return buildPair(t.Name, w.Name, c1, c2, d1, d2, r), true, false, nil
				}
				anyUnknown = anyUnknown || r.Unknown
			}
			// Orientation 2: B.d1 → A.c1, A.c2 → B.d2.
			if enc.hasDep(d1, c1) && enc.hasDep(c2, d2) {
				r, err := d.solveCycle(enc, d1, c1, c2, d2)
				if err != nil {
					return AccessPair{}, false, false, err
				}
				if r.Sat {
					return buildPair(t.Name, w.Name, c1, c2, d1, d2, r), true, false, nil
				}
				anyUnknown = anyUnknown || r.Unknown
			}
		}
	}
	return AccessPair{}, false, anyUnknown, nil
}

// cycleResult is the complete outcome of one cycle-satisfiability query:
// the verdict plus the witnessing edge kinds and fields read off the SAT
// model. Caching the edge data alongside the verdict keeps cached and
// freshly solved detections byte-identical (reports never depend on which
// encoder's solver produced the model).
type cycleResult struct {
	Sat bool
	// Unknown marks a budget-exhausted solve: neither SAT nor UNSAT may be
	// claimed. Unknown results are never cached (see solveCycle).
	Unknown      bool
	Kind1, Kind2 EdgeKind
	Flds1, Flds2 []string
	// Sched is the witness schedule read off the satisfying model, present
	// only under witness recording. It is immutable once built, so cached
	// results may share it across hits.
	Sched *Schedule
}

// solveCycle answers one dep(from1→to1) ∧ dep(from2→to2) query, consulting
// the session's query cache when one is attached.
//
// Cache soundness: CDCL solvers are stateful — learnt clauses, variable
// activity, and saved phases accumulate across queries — so which model a
// satisfiable query returns depends on the queries solved before it. The
// cache key therefore pins not just the encoder's assertion set (the
// formula hash) and the assumed propositions but the encoder's entire
// prior query sequence (histHash): a hit guarantees the producer's solver
// was in exactly the state a fresh oracle's would be, so the cached edge
// data is the fresh answer by construction. When a miss follows earlier
// hits on the same encoder, the skipped queries are replayed first
// (replayPending) to restore that state parity before solving.
func (d *detector) solveCycle(enc *pairEncoder, from1, to1, from2, to2 *cmdInst) (cycleResult, error) {
	if d.stop != nil {
		if err := d.ctx.Err(); err != nil {
			return cycleResult{}, err
		}
	}
	d.issued++
	solve := func() (cycleResult, error) {
		r := cycleResult{Sat: enc.solveCycle(from1, to1, from2, to2)}
		// An interrupted Solve also returns false; it must surface as the
		// context's error, never be recorded (or cached) as UNSAT.
		if enc.enc.S.Stopped() {
			return cycleResult{}, d.ctxErr()
		}
		// A budget-exhausted Solve also returns false; it surfaces as an
		// unknown verdict. The solver's learnt clauses are sound but its
		// search state now diverges from a fresh oracle's, so this encoder
		// can no longer participate in the history-keyed cache: taint it
		// (subsequent queries solve directly) and hand the session path the
		// sentinel so the unknown is never published as a cached verdict.
		if enc.enc.S.Exhausted() {
			enc.tainted = true
			d.exhausted++
			return cycleResult{Unknown: true}, errExhausted
		}
		if r.Sat {
			r.Kind1, r.Flds1 = enc.modelEdge(from1, to1)
			r.Kind2, r.Flds2 = enc.modelEdge(from2, to2)
			if d.record {
				r.Sched = enc.buildSchedule(from1, to1, from2, to2)
			}
		}
		return r, nil
	}
	if d.session == nil || enc.tainted {
		d.solved++
		r, err := solve()
		if err == errExhausted {
			return r, nil
		}
		return r, err
	}
	s1 := enc.depS[from1.idx][to1.idx]
	s2 := enc.depS[from2.idx][to2.idx]
	// The interned name strings key the cache and the history hash; reading
	// them back is a slice index, not a fmt.Sprintf.
	a1 := enc.enc.NameOf(s1)
	a2 := enc.enc.NameOf(s2)
	key := queryKey{enc: enc.enc.FormulaHash(), hist: enc.histHash, a1: a1, a2: a2}
	r, hit, err := d.session.query(d.ctx, key, func() (cycleResult, error) {
		d.replayed += enc.replayPending()
		return solve()
	})
	if err == errExhausted {
		// The solve ran (and exhausted) on this encoder; the session's
		// error path already removed the future, so the unknown was never
		// cached and waiters retry as producers under their own budgets.
		// The encoder is tainted, so its history hash no longer matters.
		d.solved++
		return cycleResult{Unknown: true}, nil
	}
	if err != nil {
		return cycleResult{}, err
	}
	if hit {
		enc.pending = append(enc.pending, [2]logic.Sym{s1, s2})
	} else {
		d.solved++
	}
	enc.histHash = chainHist(enc.histHash, a1, a2)
	return r, nil
}

// errExhausted is the internal sentinel a budget-exhausted solve returns
// through the session cache's error path: like a cancellation it removes
// the query's future before publishing, so unknowns are never cached, but
// unlike a cancellation the detection continues with a degraded report.
var errExhausted = errors.New("anomaly: solve budget exhausted")

// chainHist folds one query's assumed propositions into an encoder's
// query-history hash.
func chainHist(h uint64, a1, a2 string) uint64 {
	return logic.ChainString(logic.ChainString(h, a1), a2)
}

// releaseEncoders returns every encoder's solver memory to the shared pool
// (or the detector's worker-local freelist) once the detector's results
// are extracted. Nothing a detector publishes aliases encoder memory:
// reported pairs, cached cycle results, and cache keys carry only
// immutable strings and freshly built field slices.
func (d *detector) releaseEncoders() {
	for _, enc := range d.encoders {
		if d.encCache != nil {
			d.encCache.Release(enc.enc)
		} else {
			enc.enc.Release()
		}
	}
	clear(d.encoders)
}

func (d *detector) encoderFor(t, w *ast.Txn) (*pairEncoder, error) {
	key := [2]string{t.Name, w.Name}
	if enc, ok := d.encoders[key]; ok {
		return enc, nil
	}
	var le *logic.Encoder
	if d.encCache != nil {
		le = d.encCache.Acquire()
	} else {
		le = logic.AcquireEncoder()
	}
	// Portfolio mode must be configured before the encoding is asserted:
	// the shadow replicas replicate the clause stream from this point on.
	// Portfolio encoders skip formula hashing — they are tainted at birth
	// (below), so no cache key ever needs their hash.
	if d.portfolio > 1 {
		le.S.SetPortfolio(d.portfolio)
	}
	hashed := d.session != nil && d.portfolio <= 1
	enc, err := newPairEncoder(le, d.prog, t, w, d.model, hashed, d.record)
	if err != nil {
		return nil, err
	}
	enc.tainted = d.portfolio > 1
	// The stop probe aborts this encoder's solves when the detector's
	// context is cancelled; Encoder.Release → Solver.Reset clears it before
	// the solver returns to the pool. The budget, likewise per-solver and
	// Reset-cleared, bounds each of this encoder's solves.
	if d.stop != nil {
		enc.enc.S.SetStop(d.stop)
	}
	if d.budget.Limited() {
		enc.enc.S.SetBudget(d.budget)
	}
	d.encoders[key] = enc
	return enc, nil
}

// pairEncoder holds the SAT encoding for one (T, T') transaction pair.
// All relational propositions (ord, vis, co, dep) are interned once into
// n×n Sym matrices at construction, so the witness loop and the axiom
// builders address them by integer lookup — no per-use fmt.Sprintf or
// string hashing.
type pairEncoder struct {
	enc   *logic.Encoder
	items []*cmdInst // A's commands then B's commands
	nA    int
	// tName/wName are the instance transaction names, kept for witness
	// schedules.
	tName, wName string
	// record opts the encoder into witness-schedule bookkeeping: command
	// pins are retained and free equality atoms are indexed (eqAtoms) so a
	// satisfying model can be read back. Purely additive — no proposition,
	// assertion, or solve differs with it on.
	record  bool
	eqAtoms []eqAtomProp
	eqSeen  map[logic.Sym]bool
	// scratch is the reusable model read-back buffer.
	scratch []bool
	// ordS/visS/depS (and coS under CC) are the interned proposition
	// matrices, indexed [from][to]; the diagonal is unused.
	ordS, visS, coS, depS [][]logic.Sym
	// deps[x][y] true when a dep(x→y) proposition was defined.
	deps map[int]map[int]bool
	// edgeNames[x][y] lists the per-field edge propositions behind dep(x→y).
	edgeNames map[int]map[int][]edgeProp
	// histHash chains the cycle queries asked on this encoder so far; the
	// session's cache keys include it so a hit is only taken from a
	// producer whose solver had seen the identical query sequence.
	histHash uint64
	// pending are the assumed propositions of queries answered from the
	// cache and not yet run on this solver; replayPending runs them before
	// the next fresh solve to restore solver-state parity.
	pending [][2]logic.Sym
	// tainted marks an encoder whose solver exhausted a budget: its search
	// state no longer matches a fresh oracle's, so it must neither consume
	// nor produce history-keyed cache entries (see detector.solveCycle).
	tainted bool
	// assume is the reusable assumption buffer for the witness loop's
	// SolveAssuming calls.
	assume [2]sat.Lit
}

// replayPending re-runs every cache-answered query on this encoder's own
// solver (discarding the verdicts — they are deterministic and already
// known) and returns how many it replayed.
func (pe *pairEncoder) replayPending() int {
	n := len(pe.pending)
	for _, p := range pe.pending {
		pe.assume[0] = pe.enc.LitS(p[0], false)
		pe.assume[1] = pe.enc.LitS(p[1], false)
		pe.enc.SolveAssuming(pe.assume[:]...)
	}
	pe.pending = nil
	return n
}

type edgeProp struct {
	sym   logic.Sym
	kind  EdgeKind
	field string
}

func ordName(i, j int) string { return fmt.Sprintf("o_%d_%d", i, j) }
func visName(i, j int) string { return fmt.Sprintf("v_%d_%d", i, j) }
func coName(i, j int) string  { return fmt.Sprintf("co_%d_%d", i, j) }
func depName(i, j int) string { return fmt.Sprintf("dep_%d_%d", i, j) }

// internRel builds the n×n Sym matrix for one relational proposition
// family, paying each name's fmt.Sprintf exactly once per encoder.
func (pe *pairEncoder) internRel(name func(i, j int) string) [][]logic.Sym {
	n := len(pe.items)
	m := make([][]logic.Sym, n)
	for i := 0; i < n; i++ {
		m[i] = make([]logic.Sym, n)
		for j := 0; j < n; j++ {
			if j == i {
				m[i][j] = -1
				continue
			}
			m[i][j] = pe.enc.Sym(name(i, j))
		}
	}
	return m
}

// newPairEncoder builds the SAT encoding for (t, w) on the supplied (fresh
// or freshly reset) encoder. hashed opts the encoder into formula-hash
// recording, needed only when a session will key its query cache on the
// encoding; record opts it into witness-schedule bookkeeping (witness.go).
// On error the encoder is left unreleased; letting it be collected is safe.
func newPairEncoder(le *logic.Encoder, prog *ast.Program, t, w *ast.Txn, model Model, hashed, record bool) (*pairEncoder, error) {
	pe := &pairEncoder{
		enc:       le,
		deps:      map[int]map[int]bool{},
		edgeNames: map[int]map[int][]edgeProp{},
		tName:     t.Name,
		wName:     w.Name,
		record:    record,
	}
	if record {
		pe.eqSeen = map[logic.Sym]bool{}
	}
	if hashed {
		pe.enc.RecordFormulaHashes()
	}
	build := func(txn *ast.Txn, inst int) error {
		for ci, c := range ast.Commands(txn.Body) {
			schema := prog.Schema(c.TableName())
			if schema == nil {
				return fmt.Errorf("anomaly: %s.%s: unknown table %q", txn.Name, c.CmdLabel(), c.TableName())
			}
			acc := ast.CommandAccess(c, schema)
			item := &cmdInst{
				idx:    len(pe.items),
				inst:   inst,
				cmd:    c,
				label:  c.CmdLabel(),
				table:  c.TableName(),
				reads:  map[string]bool{},
				writes: map[string]bool{},
				key:    extractKey(c, schema, inst, ci),
			}
			if record {
				item.pins = extractPins(c, schema, inst, ci)
			}
			for _, f := range acc.Reads {
				item.reads[f] = true
			}
			for _, f := range acc.Writes {
				item.writes[f] = true
			}
			// Selects and updates implicitly read the presence field: they
			// filter on alive records, so inserts conflict with them
			// (phantom dependencies).
			switch c.(type) {
			case *ast.Select, *ast.Update:
				item.reads[ast.AliveField] = true
			}
			item.writer = len(item.writes) > 0
			item.reader = len(item.reads) > 0
			pe.items = append(pe.items, item)
		}
		return nil
	}
	if err := build(t, 0); err != nil {
		return nil, err
	}
	pe.nA = len(pe.items)
	if err := build(w, 1); err != nil {
		return nil, err
	}

	n := len(pe.items)
	pe.ordS = pe.internRel(ordName)
	pe.visS = pe.internRel(visName)
	pe.depS = pe.internRel(depName)
	// Axiom: ord is a strict total order (the execution counter).
	pe.enc.AssertStrictTotalOrderS(n, pe.ord)
	// Axiom: program order within each instance.
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if pe.items[i].inst == pe.items[j].inst {
				pe.enc.Assert(pe.enc.Atom(pe.ordS[i][j]))
			}
		}
	}
	// Axiom: vis ⊆ ord for every cross-instance writer pair.
	for _, x := range pe.items {
		if !x.writer {
			continue
		}
		for _, y := range pe.items {
			if y.inst == x.inst {
				continue
			}
			pe.enc.Assert(logic.ImpliesF(pe.enc.Atom(pe.visS[x.idx][y.idx]), pe.enc.Atom(pe.ordS[x.idx][y.idx])))
		}
	}

	pe.assertTermCongruence()
	pe.defineEdges()
	pe.assertModelAxioms(model)
	return pe, nil
}

func (pe *pairEncoder) ord(i, j int) logic.Sym { return pe.ordS[i][j] }

// eqPropName returns the canonical equality proposition name for two terms
// of one sort (table, primary-key field).
func eqPropName(table, field string, a, b term) string {
	if b.id < a.id {
		a, b = b, a
	}
	return fmt.Sprintf("eq_%s_%s_%s=%s", table, field, a.id, b.id)
}

// eqFormula returns the formula for term equality within a sort.
func (pe *pairEncoder) eqFormula(table, field string, a, b term) logic.Formula {
	switch decideEq(a, b) {
	case eqTrue:
		return logic.True
	case eqFalse:
		return logic.False
	default:
		s := pe.enc.Sym(eqPropName(table, field, a, b))
		if pe.record && !pe.eqSeen[s] {
			pe.eqSeen[s] = true
			ca, cb := a, b
			if cb.id < ca.id {
				ca, cb = cb, ca
			}
			pe.eqAtoms = append(pe.eqAtoms, eqAtomProp{sym: s, table: table, field: field, a: ca.id, b: cb.id})
		}
		return pe.enc.Atom(s)
	}
}

// assertTermCongruence adds transitivity over the free equality atoms of
// each (table, field) sort.
func (pe *pairEncoder) assertTermCongruence() {
	sorts := map[[2]string]map[string]term{}
	for _, it := range pe.items {
		for f, tm := range it.key {
			key := [2]string{it.table, f}
			if sorts[key] == nil {
				sorts[key] = map[string]term{}
			}
			sorts[key][tm.id] = tm
		}
	}
	// Sorted (table, field) order keeps proposition numbering deterministic
	// across runs (see defineEdges).
	sortKeys := slices.SortedFunc(maps.Keys(sorts), func(a, b [2]string) int {
		if c := strings.Compare(a[0], b[0]); c != 0 {
			return c
		}
		return strings.Compare(a[1], b[1])
	})
	for _, key := range sortKeys {
		termSet := sorts[key]
		ids := slices.Sorted(maps.Keys(termSet))
		terms := make([]term, len(ids))
		for i, id := range ids {
			terms[i] = termSet[id]
		}
		for a := 0; a < len(terms); a++ {
			for b := 0; b < len(terms); b++ {
				if b == a {
					continue
				}
				for c := 0; c < len(terms); c++ {
					if c == a || c == b {
						continue
					}
					pe.enc.Assert(logic.ImpliesF(
						logic.AndF(
							pe.eqFormula(key[0], key[1], terms[a], terms[b]),
							pe.eqFormula(key[0], key[1], terms[b], terms[c]),
						),
						pe.eqFormula(key[0], key[1], terms[a], terms[c]),
					))
				}
			}
		}
	}
}

// aliasFormula is satisfiable when x and y may access a common record:
// every primary-key field pinned by both must pin equal values.
func (pe *pairEncoder) aliasFormula(x, y *cmdInst) logic.Formula {
	if x.table != y.table {
		return logic.False
	}
	conj := make([]logic.Formula, 0, len(x.key))
	for _, f := range slices.Sorted(maps.Keys(x.key)) {
		if ty, ok := y.key[f]; ok {
			conj = append(conj, pe.eqFormula(x.table, f, x.key[f], ty))
		}
	}
	return logic.AndF(conj...)
}

// defineEdges introduces the per-field dependency-edge propositions and the
// aggregated dep(x→y) propositions for cross-instance command pairs.
func (pe *pairEncoder) defineEdges() {
	for _, x := range pe.items {
		for _, y := range pe.items {
			if x.inst == y.inst {
				continue
			}
			if x.table != y.table || mustDiffer(x.key, y.key) {
				continue
			}
			alias := pe.aliasFormula(x, y)
			maxEdges := 2*len(x.writes) + len(x.reads)
			props := make([]edgeProp, 0, maxEdges)
			defs := make([]logic.Formula, 0, maxEdges)
			addEdge := func(kind EdgeKind, field string, cond logic.Formula) {
				s := pe.enc.Symf("e_%s_%d_%d_%s", kind, x.idx, y.idx, field)
				pe.enc.Assert(logic.IffF(pe.enc.Atom(s), logic.AndF(alias, cond)))
				props = append(props, edgeProp{sym: s, kind: kind, field: field})
				defs = append(defs, pe.enc.Atom(s))
			}
			// Iterate fields in sorted order so proposition numbering — and
			// with it the solver's search and the models it reports — is
			// deterministic across runs (required for the query cache to be
			// exchangeable with fresh solving).
			for _, f := range sortedFields(x.writes) {
				if y.reads[f] {
					// wr: y's local view contains x's write of f.
					addEdge(EdgeWR, f, pe.enc.Atom(pe.visS[x.idx][y.idx]))
				}
				if y.writes[f] {
					// ww: y's write of f follows x's in arbitration order.
					addEdge(EdgeWW, f, pe.enc.Atom(pe.ordS[x.idx][y.idx]))
				}
			}
			for _, f := range sortedFields(x.reads) {
				if y.writes[f] {
					// rw: x read a version of f that does not include y's
					// write (anti-dependency).
					addEdge(EdgeRW, f, logic.NotF(pe.enc.Atom(pe.visS[y.idx][x.idx])))
				}
			}
			if len(props) == 0 {
				continue
			}
			pe.enc.Assert(logic.IffF(pe.enc.Atom(pe.depS[x.idx][y.idx]), logic.OrF(defs...)))
			if pe.deps[x.idx] == nil {
				pe.deps[x.idx] = map[int]bool{}
			}
			pe.deps[x.idx][y.idx] = true
			if pe.edgeNames[x.idx] == nil {
				pe.edgeNames[x.idx] = map[int][]edgeProp{}
			}
			pe.edgeNames[x.idx][y.idx] = props
		}
	}
}

// assertModelAxioms adds the per-consistency-model visibility axioms.
func (pe *pairEncoder) assertModelAxioms(model Model) {
	n := len(pe.items)
	switch model {
	case EC:
		// Eventual consistency constrains nothing further: local views are
		// arbitrary subsets of committed batches (ConstructView).
	case CC:
		// co is the happens-before relation: program order ∪ vis, closed
		// transitively, consistent with arbitration order.
		pe.coS = pe.internRel(coName)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				x, y := pe.items[i], pe.items[j]
				if x.inst == y.inst && i < j {
					pe.enc.Assert(pe.enc.Atom(pe.coS[i][j]))
				}
				if x.writer && y.inst != x.inst {
					pe.enc.Assert(logic.ImpliesF(pe.enc.Atom(pe.visS[i][j]), pe.enc.Atom(pe.coS[i][j])))
				}
				pe.enc.Assert(logic.ImpliesF(pe.enc.Atom(pe.coS[i][j]), pe.enc.Atom(pe.ordS[i][j])))
			}
		}
		pe.enc.AssertTransitiveS(n, func(i, j int) logic.Sym { return pe.coS[i][j] })
		// Causal delivery: a view containing w2 contains every write w1
		// happening-before w2.
		for _, w1 := range pe.items {
			if !w1.writer {
				continue
			}
			for _, w2 := range pe.items {
				if !w2.writer || w2.idx == w1.idx {
					continue
				}
				for _, y := range pe.items {
					if y.inst == w1.inst || y.inst == w2.inst {
						continue
					}
					pe.enc.Assert(logic.ImpliesF(
						logic.AndF(pe.enc.Atom(pe.coS[w1.idx][w2.idx]), pe.enc.Atom(pe.visS[w2.idx][y.idx])),
						pe.enc.Atom(pe.visS[w1.idx][y.idx]),
					))
				}
			}
		}
	case RR:
		// Repeatable read (paper §7.1): results of a newly committed
		// transaction do not become visible to an executing transaction
		// that has already read its state — i.e., all of a transaction's
		// commands observe one stable snapshot per foreign write. (The
		// writer's own commands need not become visible together: RR gives
		// the reader snapshot stability, not writer atomicity, which is
		// why it removes only reader-side pairs — the paper measured
		// 5–16% reductions on three benchmarks.)
		for _, w := range pe.items {
			if !w.writer {
				continue
			}
			for _, y := range pe.items {
				if y.inst == w.inst {
					continue
				}
				for _, y2 := range pe.items {
					if y2.inst != y.inst || y2.idx <= y.idx {
						continue
					}
					pe.enc.Assert(logic.IffF(
						pe.enc.Atom(pe.visS[w.idx][y.idx]),
						pe.enc.Atom(pe.visS[w.idx][y2.idx]),
					))
				}
			}
		}
	case SC:
		// Strong atomicity: arbitration order implies visibility, and all
		// of a transaction's writes become visible together. Strong
		// isolation: views do not grow mid-transaction (§3.2).
		for _, x := range pe.items {
			if !x.writer {
				continue
			}
			for _, y := range pe.items {
				if y.inst == x.inst {
					continue
				}
				pe.enc.Assert(logic.ImpliesF(pe.enc.Atom(pe.ordS[x.idx][y.idx]), pe.enc.Atom(pe.visS[x.idx][y.idx])))
			}
			for _, x2 := range pe.items {
				if !x2.writer || x2.inst != x.inst || x2.idx <= x.idx {
					continue
				}
				for _, y := range pe.items {
					if y.inst == x.inst {
						continue
					}
					pe.enc.Assert(logic.IffF(pe.enc.Atom(pe.visS[x.idx][y.idx]), pe.enc.Atom(pe.visS[x2.idx][y.idx])))
				}
			}
		}
		for _, y := range pe.items {
			for _, y2 := range pe.items {
				if y2.inst != y.inst || y2.idx <= y.idx {
					continue
				}
				for _, w := range pe.items {
					if !w.writer || w.inst == y.inst {
						continue
					}
					pe.enc.Assert(logic.ImpliesF(pe.enc.Atom(pe.visS[w.idx][y2.idx]), pe.enc.Atom(pe.visS[w.idx][y.idx])))
				}
			}
		}
	}
}

// hasDep reports whether a dep(x→y) proposition exists (some statically
// possible conflict).
func (pe *pairEncoder) hasDep(x, y *cmdInst) bool { return pe.deps[x.idx][y.idx] }

// solveCycle checks satisfiability of dep(from1→to1) ∧ dep(from2→to2)
// under the encoder's axioms. The assumption buffer is reused across the
// witness loop.
func (pe *pairEncoder) solveCycle(from1, to1, from2, to2 *cmdInst) bool {
	pe.assume[0] = pe.enc.LitS(pe.depS[from1.idx][to1.idx], false)
	pe.assume[1] = pe.enc.LitS(pe.depS[from2.idx][to2.idx], false)
	return pe.enc.SolveAssuming(pe.assume[:]...)
}

// buildPair assembles the reported access pair from a cycle query's
// outcome: the involved fields were read off the true edge propositions of
// whichever (identically encoded) solver answered the query.
func buildPair(txn, witness string, c1, c2, d1, d2 *cmdInst, r cycleResult) AccessPair {
	// Report the fields belonging to c1 and c2 respectively.
	pair := AccessPair{
		Txn: txn,
		C1:  c1.label, F1: r.Flds1,
		C2: c2.label, F2: r.Flds2,
		Witness: Witness{Txn: witness, D1: d1.label, D2: d2.label, Edge1: r.Kind1, Edge2: r.Kind2, Schedule: r.Sched},
	}
	pair.Kind = classify(c1, c2, r.Flds1, r.Flds2)
	return pair
}

// modelEdge returns the kind and fields of the true edge propositions for
// (x→y) in the current model.
func (pe *pairEncoder) modelEdge(x, y *cmdInst) (EdgeKind, []string) {
	var kind EdgeKind
	var fields []string
	for _, ep := range pe.edgeNames[x.idx][y.idx] {
		if pe.enc.ValueS(ep.sym) {
			kind = ep.kind
			fields = append(fields, ep.field)
		}
	}
	sort.Strings(fields)
	return kind, dedup(fields)
}

func sortedFields(set map[string]bool) []string {
	return slices.Sorted(maps.Keys(set))
}

func dedup(xs []string) []string {
	out := xs[:0:0]
	for i, x := range xs {
		if i == 0 || xs[i-1] != x {
			out = append(out, x)
		}
	}
	return out
}

// classify names the anomaly per the Fig. 2 taxonomy.
func classify(c1, c2 *cmdInst, f1, f2 []string) Kind {
	_, c1Sel := c1.cmd.(*ast.Select)
	_, c2Sel := c2.cmd.(*ast.Select)
	switch {
	case c1Sel && c2Sel:
		return KindNonRepeatableRead
	case !c1Sel && !c2Sel:
		return KindDirtyRead
	default:
		for _, a := range f1 {
			for _, b := range f2 {
				if a == b {
					return KindLostUpdate
				}
			}
		}
		return KindWriteSkew
	}
}
