package anomaly

import (
	"context"
	"maps"
	"slices"
	"sync"

	"atropos/internal/ast"
	"atropos/internal/logic"
	"atropos/internal/pool"
	"atropos/internal/sat"
)

// DetectSession is the incremental anomaly-detection engine. It answers the
// same queries as Detect — byte-identical reports — but remembers work
// across calls, which the repair pipeline exploits: its three detection
// passes run over programs that differ only where a refactoring touched
// them.
//
// Two cache layers (see DESIGN.md §7 for the invalidation contract):
//
//   - Transaction level: each transaction's detection outcome is keyed by a
//     fingerprint of everything it can depend on — the transaction's own
//     text, the text of every witness transaction touching an overlapping
//     table, the schemas of every table either side touches, and the
//     consistency model. A re-detection after a refactoring therefore only
//     re-examines transactions whose code or relevant schema slice changed.
//   - Query level: each cycle-satisfiability query is keyed by the
//     canonical hash of its encoder's asserted formulas (logic.FormulaHash),
//     the encoder's prior query sequence (the CDCL solver is stateful, so
//     the sequence pins which model a satisfiable query returns — see
//     detector.solveCycle), and the two assumed dependency propositions.
//     Identically encoded (txn, witness) pairs running identical query
//     sequences — across detection passes or within one — share solved
//     verdicts and witness-edge data; a sequence divergence falls back to
//     solving, after replaying the skipped prefix for state parity.
//
// Detection work fans out over a work-stealing pool at (txn, witness)
// granularity (SetParallelism; see parallel.go): witness tasks advance in
// a wavefront that reproduces the sequential witness loop's early exits,
// so per-encoder query order — and with it every reported witness and
// field — matches the sequential oracle exactly.
//
// A session is safe for concurrent use by its own workers; callers should
// issue Detect calls sequentially.
type DetectSession struct {
	model       Model
	parallelism int
	// portfolio > 1 races that many diversified solver replicas per cycle
	// query (see SetPortfolio).
	portfolio int
	// record opts every detection into witness-schedule extraction. It must
	// be set before the first Detect call: recording changes no encoding,
	// no solve, and no cache key, but cached cycle results only carry a
	// Schedule if their first (cache-missing) asker recorded one.
	record bool
	// budget, when limited, bounds every SAT solve the session's detectors
	// issue (see SetSolveBudget). Degraded per-transaction results are
	// never stored in the fingerprint cache, and unknown verdicts are never
	// stored in the query cache, so a later unbudgeted (or more generously
	// budgeted) detection re-solves exactly the work that was cut short.
	budget sat.Budget

	mu      sync.Mutex
	txns    map[uint64]txnEntry
	queries map[queryKey]*queryFuture
	stats   SessionStats
}

type txnEntry struct {
	pairs []AccessPair
	// issued is the number of cycle queries the transaction's detection
	// asked; replayed into the stats on a hit so Queries always reflects
	// the work a fresh detector would have done.
	issued int
}

// queryKey identifies one cycle-satisfiability query up to logical
// equivalence of its encoder and its solver's query history.
type queryKey struct {
	enc    uint64 // canonical formula hash of the (txn, witness) encoder
	hist   uint64 // chained hash of the encoder's prior queries
	a1, a2 string // assumed dependency propositions
}

// queryFuture is a once-per-key slot: the first asker solves, concurrent
// askers wait, later askers hit. First-write-wins keeps parallel runs as
// deterministic as sequential ones. A producer whose solve aborts
// (cancelled context) sets err, removes the key, and closes done; waiters
// observe err and retry as producers under their own contexts, so a
// cancelled request never publishes a bogus verdict or strands other
// requests' queries.
type queryFuture struct {
	done   chan struct{}
	result cycleResult
	err    error
}

// SessionStats aggregates a session's cache effectiveness across all of
// its Detect calls.
type SessionStats struct {
	// Queries counts cycle-satisfiability queries a fresh (uncached)
	// detection of the same call sequence would have solved.
	Queries int
	// Solved counts cache-miss queries solved on a SAT solver.
	Solved int
	// Replayed counts cache-hit queries re-run on their own encoder's
	// solver to restore state parity before a subsequent miss (see
	// detector.solveCycle); they cost solver time without issuing new
	// answers.
	Replayed int
	// QueryHits counts queries answered from the formula-hash cache.
	QueryHits int
	// TxnHits / TxnMisses count transaction-level fingerprint outcomes.
	TxnHits   int
	TxnMisses int
}

// CacheHitRate is the fraction of fresh-equivalent queries the session
// saved the solver: 1 - (Solved+Replayed)/Queries.
func (s SessionStats) CacheHitRate() float64 {
	if s.Queries == 0 {
		return 0
	}
	return 1 - float64(s.Solved+s.Replayed)/float64(s.Queries)
}

// NewSession creates an incremental detection session for one consistency
// model.
func NewSession(model Model) *DetectSession {
	return &DetectSession{
		model:   model,
		txns:    map[uint64]txnEntry{},
		queries: map[queryKey]*queryFuture{},
	}
}

// Model returns the session's consistency model.
func (s *DetectSession) Model() Model { return s.model }

// SetParallelism bounds the worker goroutines Detect fans (txn, witness)
// tasks out on; n <= 0 selects GOMAXPROCS, 1 forces sequential detection.
// Reported pairs are identical at every setting — the wavefront reproduces
// each encoder's sequential query order (parallel.go), and cached values
// are pinned to the producer's solver state by the history-keyed cache, so
// they do not depend on which worker populates a key first. Only the
// Solved/Replayed/QueryHits stats can shift under concurrency.
func (s *DetectSession) SetParallelism(n int) { s.parallelism = n }

// SetPortfolio races k diversified CDCL replicas per cycle query, first
// definitive verdict wins (sat.SetPortfolio); k <= 1 restores plain
// solving. Verdicts — and therefore which pairs are anomalous, and under
// which witness — are unchanged, but the satisfying models a race reports
// are timing-dependent, so reported fields and witness schedules may
// legitimately vary between runs. For the same reason portfolio encoders
// never consume or produce history-keyed query-cache entries. Set it
// between Detect calls, not during one.
func (s *DetectSession) SetPortfolio(k int) { s.portfolio = k }

// RecordWitnesses opts every subsequent detection into witness-schedule
// extraction (see witness.go): reported pairs carry Witness.Schedule.
// Call it before the session's first Detect — cycle results cached by a
// non-recording detection have no schedule to share. Cache keys, reports,
// and statistics are unaffected.
func (s *DetectSession) RecordWitnesses() { s.record = true }

// Recording reports whether witness-schedule extraction is enabled. Callers
// injecting a shared session into a certifying pipeline must check this:
// cached results from a non-recording session carry no schedules.
func (s *DetectSession) Recording() bool { return s.record }

// SetSolveBudget bounds every SAT solve of subsequent Detect calls by b
// (sat.Budget semantics; the zero budget removes the bound). Budgeted
// detections may return Degraded reports; their partial results never
// enter the session's caches, so flipping the budget between calls is
// always sound. Set it between Detect calls, not during one.
func (s *DetectSession) SetSolveBudget(b sat.Budget) { s.budget = b }

// Stats returns a snapshot of the session's aggregate cache statistics.
func (s *DetectSession) Stats() SessionStats {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.stats
}

// Reset drops all cached detection work (statistics are kept). Long-lived
// sessions — an editing loop detecting after every change — grow a cache
// entry per unique transaction fingerprint and solved query; call Reset
// periodically to bound memory at the cost of re-solving afterwards.
func (s *DetectSession) Reset() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.txns = map[uint64]txnEntry{}
	s.queries = map[queryKey]*queryFuture{}
}

// Detect runs the oracle over every transaction of the program, reusing
// all applicable cached work. The report equals Detect(prog, model)'s.
func (s *DetectSession) Detect(prog *ast.Program) (*Report, error) {
	return s.DetectContext(context.Background(), prog)
}

// DetectContext is Detect with cancellation: the context aborts in-flight
// SAT solves and the transaction fan-out, returning ctx.Err(). Work cached
// before the abort remains valid — a cancelled call never stores partial or
// interrupted results (see query).
func (s *DetectSession) DetectContext(ctx context.Context, prog *ast.Program) (*Report, error) {
	n := len(prog.Txns)
	// Precompute each transaction's structural hash and table set once per
	// pass; fingerprinting consults every (txn, witness) combination. The
	// hashes are memoized on the transaction nodes (ast.HashTxn), and the
	// refactoring engine is copy-on-write, so a transaction the previous
	// refactoring step did not touch keeps its node — hashing it again here
	// is one atomic load, where the pre-hash-consing engine re-printed
	// every transaction on each of the pipeline's three detection passes.
	// This sequential prepass also publishes every memo before the workers
	// fan out below.
	hashes := make([]uint64, n)
	tables := make([]map[string]bool, n)
	for i, t := range prog.Txns {
		hashes[i] = ast.HashTxn(t)
		tables[i] = txnTables(t)
	}
	schemaHash := make(map[string]uint64, len(prog.Schemas))
	for _, sch := range prog.Schemas {
		schemaHash[sch.Name] = ast.HashSchema(sch)
	}
	fps := make([]uint64, n)
	for i := range prog.Txns {
		fps[i] = fingerprintTxn(prog, i, hashes, tables, schemaHash, s.model)
	}
	var outs []txnOut
	var err error
	if workers := pool.Workers(s.parallelism); workers > 1 {
		// Wavefront fan-out over (txn, witness) tasks — see parallel.go for
		// why the reports stay byte-identical to the sequential oracle.
		outs, err = s.detectWavefront(ctx, prog, workers, fps)
	} else {
		outs = make([]txnOut, n)
		err = pool.ForEach(1, n, func(i int) error {
			if err := ctx.Err(); err != nil {
				return err
			}
			if e, ok := s.lookupTxn(fps[i]); ok {
				outs[i] = txnOut{pairs: e.pairs, issued: e.issued}
				return nil
			}
			d := &detector{prog: prog, model: s.model, encoders: map[[2]string]*pairEncoder{}, session: s, record: s.record, budget: s.budget, portfolio: s.portfolio}
			d.setContext(ctx)
			pairs, err := d.detectTxn(prog.Txns[i])
			d.releaseEncoders()
			if err != nil {
				return err
			}
			// Degraded results are partial, so only complete detections enter
			// the fingerprint cache: a cached entry must equal what a fresh
			// unbudgeted oracle would report.
			if d.exhausted == 0 {
				s.storeTxn(fps[i], txnEntry{pairs: pairs, issued: d.issued})
			}
			outs[i] = txnOut{pairs: pairs, unknown: d.unknownPairs, issued: d.issued, solved: d.solved, replayed: d.replayed, exhausted: d.exhausted}
			return nil
		})
	}
	if err != nil {
		return nil, err
	}
	report := &Report{Model: s.model}
	replayed := 0
	for _, o := range outs {
		report.Pairs = append(report.Pairs, o.pairs...)
		report.UnknownPairs = append(report.UnknownPairs, o.unknown...)
		report.Queries += o.issued
		report.Solved += o.solved
		report.Exhausted += o.exhausted
		replayed += o.replayed
	}
	report.Unknown = len(report.UnknownPairs)
	report.Degraded = report.Exhausted > 0
	s.mu.Lock()
	s.stats.Queries += report.Queries
	s.stats.Solved += report.Solved
	s.stats.Replayed += replayed
	s.mu.Unlock()
	return report, nil
}

func (s *DetectSession) lookupTxn(fp uint64) (txnEntry, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e, ok := s.txns[fp]
	if ok {
		s.stats.TxnHits++
	} else {
		s.stats.TxnMisses++
	}
	return e, ok
}

func (s *DetectSession) storeTxn(fp uint64, e txnEntry) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.txns[fp]; !ok {
		s.txns[fp] = e
	}
}

// query answers one cycle query through the cache: the first asker of a key
// runs solve() and publishes the result, concurrent askers of the same key
// wait for it, and later askers hit. hit reports whether solve was skipped.
//
// Cancellation never poisons the cache: a producer whose solve errors
// removes its future before publishing the error, so only real verdicts are
// ever stored, and a waiter whose producer aborted loops back to become the
// producer itself (under its own context).
func (s *DetectSession) query(ctx context.Context, key queryKey, solve func() (cycleResult, error)) (r cycleResult, hit bool, err error) {
	for {
		s.mu.Lock()
		if f, ok := s.queries[key]; ok {
			s.stats.QueryHits++
			s.mu.Unlock()
			select {
			case <-f.done:
			case <-ctx.Done():
				return cycleResult{}, false, ctx.Err()
			}
			if f.err != nil {
				// The producer aborted without an answer; un-count the hit
				// and retry (the key was removed, so this asker produces).
				s.mu.Lock()
				s.stats.QueryHits--
				s.mu.Unlock()
				continue
			}
			return f.result, true, nil
		}
		f := &queryFuture{done: make(chan struct{})}
		s.queries[key] = f
		s.mu.Unlock()
		r, err = solve()
		if err != nil {
			s.mu.Lock()
			delete(s.queries, key)
			s.mu.Unlock()
			f.err = err
			close(f.done)
			return cycleResult{}, false, err
		}
		f.result = r
		close(f.done)
		return r, false, nil
	}
}

// fingerprintTxn digests everything transaction i's detection outcome can
// depend on: its own structural hash, the hash of every potential witness
// (a transaction touching at least one common table, in program order —
// the first satisfiable witness is the one reported), the schemas of every
// table it or those witnesses touch, and the consistency model.
// Transactions sharing no table with it cannot contribute a dependency
// edge and are excluded, so refactoring them does not invalidate i.
// hashes, tables, and schemaHash are the per-pass precomputations of
// Detect: structural hashes (ast.HashTxn / ast.HashSchema) replaced the
// printed-text digests the session used before hash-consing, so a pass
// over a mostly-shared program prints nothing at all.
func fingerprintTxn(prog *ast.Program, i int, hashes []uint64, tables []map[string]bool, schemaHash map[string]uint64, model Model) uint64 {
	h := logic.ChainString(logic.ChainSeed, model.String())
	h = logic.ChainUint64(h, hashes[i])
	relevant := tables[i]
	var merged map[string]bool
	for j := range prog.Txns {
		overlap := false
		for tb := range tables[j] {
			if tables[i][tb] {
				overlap = true
				break
			}
		}
		if !overlap {
			continue
		}
		h = logic.ChainString(h, "\x00witness\x00")
		h = logic.ChainUint64(h, hashes[j])
		if j != i {
			if merged == nil {
				merged = make(map[string]bool, len(relevant)+len(tables[j]))
				for tb := range relevant {
					merged[tb] = true
				}
				relevant = merged
			}
			for tb := range tables[j] {
				merged[tb] = true
			}
		}
	}
	for _, name := range slices.Sorted(maps.Keys(relevant)) {
		if sh, ok := schemaHash[name]; ok {
			h = logic.ChainString(h, "\x00schema\x00")
			h = logic.ChainUint64(h, sh)
		}
	}
	return h
}

// txnTables is the set of tables a transaction's commands touch.
func txnTables(t *ast.Txn) map[string]bool {
	out := map[string]bool{}
	for _, c := range ast.Commands(t.Body) {
		out[c.TableName()] = true
	}
	return out
}
