package anomaly_test

import (
	"os"
	"reflect"
	"strconv"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/progen"
	"atropos/internal/sat"
)

// testParallelism is the fan-out width the differential tests force.
// It is wider than any default so the wavefront scheduler is exercised
// even where min(GOMAXPROCS, 4) would stay low; the `make race-par` CI
// job overrides it through ATROPOS_TEST_PARALLELISM to pin the width
// explicitly.
func testParallelism() int {
	if v := os.Getenv("ATROPOS_TEST_PARALLELISM"); v != "" {
		if n, err := strconv.Atoi(v); err == nil && n > 0 {
			return n
		}
	}
	return 8
}

// TestWavefrontEquivalentOnBenchmarks is the parallel fast path's core
// contract on the full evaluation corpus: a wavefront detection must
// report byte-identical pairs — and issue the same number of queries —
// as the sequential fresh oracle, under every weak model, cold and warm.
func TestWavefrontEquivalentOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence; skipped with -short")
	}
	par := testParallelism()
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sessionModels {
			fresh, err := anomaly.Detect(prog, m)
			if err != nil {
				t.Fatalf("%s %v: Detect: %v", b.Name, m, err)
			}
			s := anomaly.NewSession(m)
			s.SetParallelism(par)
			cold, err := s.Detect(prog)
			if err != nil {
				t.Fatalf("%s %v: wavefront Detect: %v", b.Name, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, cold.Pairs) {
				t.Fatalf("%s %v: wavefront diverges from fresh Detect:\nfresh %v\ngot   %v",
					b.Name, m, fresh.Pairs, cold.Pairs)
			}
			if cold.Queries != fresh.Queries {
				t.Errorf("%s %v: wavefront issued %d queries, fresh %d", b.Name, m, cold.Queries, fresh.Queries)
			}
			warm, err := s.Detect(prog)
			if err != nil {
				t.Fatalf("%s %v: warm wavefront Detect: %v", b.Name, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, warm.Pairs) {
				t.Fatalf("%s %v: warm wavefront diverges", b.Name, m)
			}
			if warm.Solved != 0 {
				t.Errorf("%s %v: warm wavefront solved %d queries, want 0", b.Name, m, warm.Solved)
			}
		}
	}
}

// TestWavefrontEquivalentOnRandomPrograms pins the same contract over
// generator-derived programs, whose witness structure is adversarial in
// ways the benchmarks are not (empty transactions, single-table
// programs, dense overlap).
func TestWavefrontEquivalentOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	par := testParallelism()
	for seed := int64(0); seed < 20; seed++ {
		p := progen.Program(seed)
		for _, m := range sessionModels {
			fresh, err := anomaly.Detect(p, m)
			if err != nil {
				t.Fatalf("seed %d %v: Detect: %v", seed, m, err)
			}
			s := anomaly.NewSession(m)
			s.SetParallelism(par)
			got, err := s.Detect(p)
			if err != nil {
				t.Fatalf("seed %d %v: wavefront Detect: %v", seed, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, got.Pairs) {
				t.Fatalf("seed %d %v: wavefront diverges:\nfresh %v\ngot   %v", seed, m, fresh.Pairs, got.Pairs)
			}
			if got.Queries != fresh.Queries {
				t.Errorf("seed %d %v: wavefront issued %d queries, fresh %d", seed, m, got.Queries, fresh.Queries)
			}
		}
	}
}

// TestWavefrontDuplicateFingerprints exercises the deferral path: a
// program listing the same transaction node twice gives both copies one
// fingerprint, so the wavefront schedules the first and answers the
// second from the first's cached entry — counting exactly the
// transaction-cache hit the sequential order would.
func TestWavefrontDuplicateFingerprints(t *testing.T) {
	prog := mustProgT(t, `
table account { id: int key, bal: int, }
txn Deposit(a: int, v: int) {
  x := select bal from account where id = a;
  update account set bal = x.bal + v where id = a;
}
txn Audit(a: int) {
  x := select bal from account where id = a;
  update account set bal = x.bal where id = a;
}
`)
	prog.Txns = append(prog.Txns, prog.Txns[0])
	fresh, err := anomaly.Detect(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Detect: %v", err)
	}

	seq := anomaly.NewSession(anomaly.EC)
	seq.SetParallelism(1)
	sq, err := seq.Detect(prog)
	if err != nil {
		t.Fatalf("sequential session: %v", err)
	}
	wav := anomaly.NewSession(anomaly.EC)
	wav.SetParallelism(testParallelism())
	wv, err := wav.Detect(prog)
	if err != nil {
		t.Fatalf("wavefront session: %v", err)
	}
	if !reflect.DeepEqual(fresh.Pairs, sq.Pairs) || !reflect.DeepEqual(fresh.Pairs, wv.Pairs) {
		t.Fatalf("duplicate-txn reports diverge:\nfresh %v\nseq   %v\nwave  %v", fresh.Pairs, sq.Pairs, wv.Pairs)
	}
	if sq.Queries != fresh.Queries || wv.Queries != fresh.Queries {
		t.Errorf("queries diverge: fresh %d, seq %d, wave %d", fresh.Queries, sq.Queries, wv.Queries)
	}
	if sh, wh := seq.Stats().TxnHits, wav.Stats().TxnHits; sh != wh {
		t.Errorf("txn-cache hits diverge: seq %d, wave %d", sh, wh)
	}
}

// TestWavefrontBudgetedEquivalence checks that a starved solve budget
// degrades the wavefront exactly as it degrades the sequential session:
// same pairs, same unknowns, same query count. Budget exhaustion is a
// deterministic function of each solve's position in its encoder's query
// sequence, which the wavefront reproduces.
func TestWavefrontBudgetedEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	starved := sat.Budget{Propagations: 1}
	for seed := int64(0); seed < 10; seed++ {
		p := progen.Program(seed)
		// Duplicate the first transaction so exhaustion also exercises the
		// deferral fallback: a degraded first copy stores no cache entry,
		// and the deferred copy must re-detect directly.
		if len(p.Txns) > 0 {
			p.Txns = append(p.Txns, p.Txns[0])
		}
		seq := anomaly.NewSession(anomaly.EC)
		seq.SetParallelism(1)
		seq.SetSolveBudget(starved)
		sq, err := seq.Detect(p)
		if err != nil {
			t.Fatalf("seed %d: sequential budgeted Detect: %v", seed, err)
		}
		wav := anomaly.NewSession(anomaly.EC)
		wav.SetParallelism(testParallelism())
		wav.SetSolveBudget(starved)
		wv, err := wav.Detect(p)
		if err != nil {
			t.Fatalf("seed %d: wavefront budgeted Detect: %v", seed, err)
		}
		if !reflect.DeepEqual(sq.Pairs, wv.Pairs) {
			t.Fatalf("seed %d: budgeted pairs diverge:\nseq  %v\nwave %v", seed, sq.Pairs, wv.Pairs)
		}
		if !reflect.DeepEqual(sq.UnknownPairs, wv.UnknownPairs) {
			t.Fatalf("seed %d: unknown pairs diverge:\nseq  %v\nwave %v", seed, sq.UnknownPairs, wv.UnknownPairs)
		}
		if sq.Queries != wv.Queries || sq.Degraded != wv.Degraded {
			t.Errorf("seed %d: queries %d/%d degraded %t/%t (seq/wave)",
				seed, sq.Queries, wv.Queries, sq.Degraded, wv.Degraded)
		}
	}
}

// pairIdentity projects an access pair onto its timing-independent
// identity. Portfolio racing changes which satisfying model a SAT query
// returns, and the reported fields and witness schedule are read off
// that model — so under a portfolio only the pair identities and the
// query count are comparable, not the full pair (see SetPortfolio).
type pairIdentity struct {
	txn, c1, c2, wTxn, wD1, wD2 string
}

func identities(pairs []anomaly.AccessPair) []pairIdentity {
	out := make([]pairIdentity, len(pairs))
	for i, p := range pairs {
		out[i] = pairIdentity{txn: p.Txn, c1: p.C1, c2: p.C2, wTxn: p.Witness.Txn, wD1: p.Witness.D1, wD2: p.Witness.D2}
	}
	return out
}

// TestPortfolioDetectEquivalence runs the wavefront with solver
// portfolios enabled: every detected pair identity and the query count
// must match the sequential fresh oracle (verdicts are deterministic —
// only the satisfying models a race returns are not).
func TestPortfolioDetectEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence; skipped with -short")
	}
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sessionModels {
			fresh, err := anomaly.Detect(prog, m)
			if err != nil {
				t.Fatalf("%s %v: Detect: %v", b.Name, m, err)
			}
			s := anomaly.NewSession(m)
			s.SetParallelism(4)
			s.SetPortfolio(3)
			got, err := s.Detect(prog)
			if err != nil {
				t.Fatalf("%s %v: portfolio Detect: %v", b.Name, m, err)
			}
			if !reflect.DeepEqual(identities(fresh.Pairs), identities(got.Pairs)) {
				t.Fatalf("%s %v: portfolio pair identities diverge:\nfresh %v\ngot   %v",
					b.Name, m, fresh.Pairs, got.Pairs)
			}
			if got.Queries != fresh.Queries {
				t.Errorf("%s %v: portfolio issued %d queries, fresh %d", b.Name, m, got.Queries, fresh.Queries)
			}
		}
	}
}
