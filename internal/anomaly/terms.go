package anomaly

import (
	"fmt"

	"atropos/internal/ast"
)

// This file implements the record-aliasing analysis: each command's where
// clause (or insert value list) is abstracted into symbolic terms pinning
// the target table's primary-key fields. Whether two commands may access a
// common record reduces to satisfiability of equalities between these
// terms: constants decide immediately, uuid() terms are globally fresh
// (never equal to anything), and everything else becomes a free equality
// atom subject to congruence (symmetry by canonical naming, transitivity
// asserted per sort).

type termKind int

const (
	termConst termKind = iota
	termUUID
	termExpr // argument or arbitrary expression: value chosen by execution
)

// term is a symbolic primary-key constraint value.
type term struct {
	kind termKind
	// id is the canonical identity: equal ids denote equal runtime values.
	// For termExpr it includes the owning instance so the same expression
	// in different transaction instances yields distinct terms.
	id string
}

// termOf abstracts the expression pinning a primary-key field. inst
// distinguishes the two transaction instances; cmdIdx makes uuid() terms
// unique per command instance.
func termOf(e ast.Expr, inst, cmdIdx int) term {
	switch x := e.(type) {
	case *ast.IntLit:
		return term{kind: termConst, id: fmt.Sprintf("ci%d", x.Val)}
	case *ast.BoolLit:
		return term{kind: termConst, id: fmt.Sprintf("cb%t", x.Val)}
	case *ast.StringLit:
		return term{kind: termConst, id: "cs" + x.Val}
	case *ast.UUID:
		return term{kind: termUUID, id: fmt.Sprintf("u%d_%d", inst, cmdIdx)}
	default:
		// Arguments, at-accesses, arithmetic: identical expressions within
		// one instance evaluate to the same value (the DSL is deterministic
		// given views), so canonicalize by printed form + instance.
		return term{kind: termExpr, id: fmt.Sprintf("e%d_%s", inst, ast.ExprString(e))}
	}
}

// eqStatus is the decidable part of term equality.
type eqStatus int

const (
	eqUnknown eqStatus = iota
	eqTrue
	eqFalse
)

// decideEq returns whether two terms are definitely equal, definitely
// unequal, or execution-dependent.
func decideEq(a, b term) eqStatus {
	if a.id == b.id {
		return eqTrue
	}
	if a.kind == termUUID || b.kind == termUUID {
		// uuid() values are globally fresh: unequal to every other value.
		return eqFalse
	}
	if a.kind == termConst && b.kind == termConst {
		return eqFalse // distinct ids ⇒ distinct constants
	}
	return eqUnknown
}

// keyConstraint maps a table's primary-key field names to the term pinning
// them; unconstrained fields are absent (the command may range over that
// dimension).
type keyConstraint map[string]term

// extractKey computes the key constraint of a database command. For
// selects/updates it uses the equality conjuncts of the where clause (other
// shapes leave fields unconstrained — a conservative over-approximation);
// for inserts it uses the value list (inserts always pin the full key).
func extractKey(c ast.DBCommand, schema *ast.Schema, inst, cmdIdx int) keyConstraint {
	kc := keyConstraint{}
	pk := map[string]bool{}
	for _, f := range schema.PrimaryKey() {
		pk[f.Name] = true
	}
	switch x := c.(type) {
	case *ast.Select:
		if eqs, ok := ast.WhereEqualities(x.Where); ok {
			for _, q := range eqs {
				if pk[q.Field] {
					kc[q.Field] = termOf(q.Expr, inst, cmdIdx)
				}
			}
		}
	case *ast.Update:
		if eqs, ok := ast.WhereEqualities(x.Where); ok {
			for _, q := range eqs {
				if pk[q.Field] {
					kc[q.Field] = termOf(q.Expr, inst, cmdIdx)
				}
			}
		}
	case *ast.Insert:
		for _, a := range x.Values {
			if pk[a.Field] {
				kc[a.Field] = termOf(a.Expr, inst, cmdIdx)
			}
		}
	}
	return kc
}

// mustDiffer reports whether two commands on the same table can never
// access a common record: some primary-key field is pinned by both to
// definitely-unequal terms.
func mustDiffer(a, b keyConstraint) bool {
	for f, ta := range a {
		if tb, ok := b[f]; ok && decideEq(ta, tb) == eqFalse {
			return true
		}
	}
	return false
}
