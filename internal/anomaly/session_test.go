package anomaly_test

import (
	"reflect"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/parser"
	"atropos/internal/progen"
	"atropos/internal/sema"
)

func mustProgT(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return p
}

// sessionModels are the weak models the incremental engine is exercised
// under (SC is uninteresting: every query is unsatisfiable).
var sessionModels = []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR}

// TestSessionEquivalentOnRandomPrograms is the incremental engine's core
// contract, validated over randomized programs: a DetectSession must
// report byte-identical pairs to a fresh Detect — on a cold cache, on a
// warm cache (second call over the same program), and with transaction
// fan-out enabled.
func TestSessionEquivalentOnRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 30; seed++ {
		p := progen.Program(seed)
		for _, m := range sessionModels {
			fresh, err := anomaly.Detect(p, m)
			if err != nil {
				t.Fatalf("seed %d %v: Detect: %v", seed, m, err)
			}
			s := anomaly.NewSession(m)
			s.SetParallelism(1)
			cold, err := s.Detect(p)
			if err != nil {
				t.Fatalf("seed %d %v: session Detect: %v", seed, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, cold.Pairs) {
				t.Fatalf("seed %d %v: cold session diverges:\nfresh %v\ncold  %v", seed, m, fresh.Pairs, cold.Pairs)
			}
			if cold.Queries != fresh.Queries {
				t.Errorf("seed %d %v: cold session issued %d queries, fresh %d", seed, m, cold.Queries, fresh.Queries)
			}
			warm, err := s.Detect(p)
			if err != nil {
				t.Fatalf("seed %d %v: warm Detect: %v", seed, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, warm.Pairs) {
				t.Fatalf("seed %d %v: warm session diverges", seed, m)
			}
			if warm.Solved != 0 {
				t.Errorf("seed %d %v: warm re-detection solved %d queries, want 0 (txn cache should absorb the call)", seed, m, warm.Solved)
			}

			par := anomaly.NewSession(m)
			par.SetParallelism(4)
			pr, err := par.Detect(p)
			if err != nil {
				t.Fatalf("seed %d %v: parallel session Detect: %v", seed, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, pr.Pairs) {
				t.Fatalf("seed %d %v: parallel session diverges:\nfresh %v\npar   %v", seed, m, fresh.Pairs, pr.Pairs)
			}
		}
	}
}

// TestSessionEquivalentOnBenchmarks pins the contract on the full
// evaluation corpus: every benchmark under EC, CC, and RR.
func TestSessionEquivalentOnBenchmarks(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus equivalence; skipped with -short")
	}
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		for _, m := range sessionModels {
			fresh, err := anomaly.Detect(prog, m)
			if err != nil {
				t.Fatalf("%s %v: Detect: %v", b.Name, m, err)
			}
			s := anomaly.NewSession(m)
			got, err := s.Detect(prog)
			if err != nil {
				t.Fatalf("%s %v: session Detect: %v", b.Name, m, err)
			}
			if !reflect.DeepEqual(fresh.Pairs, got.Pairs) {
				t.Errorf("%s %v: session diverges from fresh Detect", b.Name, m)
			}
			if got.Queries != fresh.Queries || got.Solved > fresh.Solved {
				t.Errorf("%s %v: queries %d/%d solved %d/%d (session/fresh)",
					b.Name, m, got.Queries, fresh.Queries, got.Solved, fresh.Solved)
			}
		}
	}
}

// TestSessionInvalidation verifies the fingerprint contract: after editing
// one transaction, re-detection reuses every unrelated transaction's
// result and re-solves only what the edit could affect — and still matches
// a fresh detection of the edited program.
func TestSessionInvalidation(t *testing.T) {
	const before = `
table A { a_id: int key, a_n: int, }
table B { b_id: int key, b_n: int, }
txn incA(k: int) {
  x := select a_n from A where a_id = k;
  update A set a_n = x.a_n + 1 where a_id = k;
}
txn incB(k: int) {
  x := select b_n from B where b_id = k;
  update B set b_n = x.b_n + 1 where b_id = k;
}
`
	// incB gains a second bump; incA and its witnesses are untouched.
	const after = `
table A { a_id: int key, a_n: int, }
table B { b_id: int key, b_n: int, }
txn incA(k: int) {
  x := select a_n from A where a_id = k;
  update A set a_n = x.a_n + 1 where a_id = k;
}
txn incB(k: int) {
  x := select b_n from B where b_id = k;
  update B set b_n = x.b_n + 2 where b_id = k;
  update B set b_n = x.b_n + 3 where b_id = k;
}
`
	p1 := mustProgT(t, before)
	p2 := mustProgT(t, after)
	s := anomaly.NewSession(anomaly.EC)
	if _, err := s.Detect(p1); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	got, err := s.Detect(p2)
	if err != nil {
		t.Fatal(err)
	}
	delta := s.Stats()
	if hits := delta.TxnHits - base.TxnHits; hits != 1 {
		t.Errorf("txn cache hits on re-detection = %d, want 1 (incA untouched)", hits)
	}
	fresh, err := anomaly.Detect(p2, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(fresh.Pairs, got.Pairs) {
		t.Errorf("re-detection after edit diverges from fresh Detect:\nfresh %v\ngot   %v", fresh.Pairs, got.Pairs)
	}
}

// TestSessionReset: dropping the caches forces re-solving but never
// changes results.
func TestSessionReset(t *testing.T) {
	p := progen.Program(7)
	s := anomaly.NewSession(anomaly.EC)
	first, err := s.Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	s.Reset()
	again, err := s.Detect(p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first.Pairs, again.Pairs) {
		t.Error("detection after Reset diverges")
	}
	if first.Queries > 0 && again.Solved != first.Solved {
		t.Errorf("post-Reset detection solved %d queries, want %d (cold-cache behavior)", again.Solved, first.Solved)
	}
}

// TestSessionSchemaSliceInvalidation: editing a schema invalidates exactly
// the transactions touching it.
func TestSessionSchemaSliceInvalidation(t *testing.T) {
	const before = `
table A { a_id: int key, a_n: int, }
table B { b_id: int key, b_n: int, }
txn incA(k: int) {
  x := select a_n from A where a_id = k;
  update A set a_n = x.a_n + 1 where a_id = k;
}
txn incB(k: int) {
  x := select b_n from B where b_id = k;
  update B set b_n = x.b_n + 1 where b_id = k;
}
`
	// B grows a field; incA's relevant schema slice is unchanged.
	const after = `
table A { a_id: int key, a_n: int, }
table B { b_id: int key, b_n: int, b_extra: int, }
txn incA(k: int) {
  x := select a_n from A where a_id = k;
  update A set a_n = x.a_n + 1 where a_id = k;
}
txn incB(k: int) {
  x := select b_n from B where b_id = k;
  update B set b_n = x.b_n + 1 where b_id = k;
}
`
	s := anomaly.NewSession(anomaly.EC)
	if _, err := s.Detect(mustProgT(t, before)); err != nil {
		t.Fatal(err)
	}
	base := s.Stats()
	if _, err := s.Detect(mustProgT(t, after)); err != nil {
		t.Fatal(err)
	}
	delta := s.Stats()
	if hits := delta.TxnHits - base.TxnHits; hits != 1 {
		t.Errorf("txn cache hits = %d, want 1 (only incA's slice is unchanged)", hits)
	}
}
