package anomaly

import (
	"context"

	"atropos/internal/ast"
	"atropos/internal/logic"
	"atropos/internal/sat"
)

// This file implements witness-schedule extraction: when a detector opts in
// (DetectWitnessed, DetectSession.RecordWitnesses), every satisfiable cycle
// query additionally reads the full satisfying model back off the solver —
// the ord total order, the vis relation, and the free aliasing-equality
// atoms — and packages it as a Schedule on the reported pair's Witness.
// A Schedule is everything internal/replay needs to lower the static
// witness into a concrete directed run of the cluster simulator: which
// command executes when, which write batches each command's local view
// contains, and which symbolic key terms must coincide for the dependency
// edges to touch a common record.
//
// Recording is strictly additive: it changes no interned proposition, no
// assertion, and no solve call, so encodings, reports, and the session's
// cache keys are byte-identical with recording on or off (the cached
// cycleResult simply carries the extra Schedule pointer).

// TermKind is the exported classification of a symbolic primary-key term
// (see terms.go): a literal constant, a globally fresh uuid(), or an
// execution-dependent expression.
type TermKind int

// Term kinds.
const (
	TermConst TermKind = iota
	TermUUID
	TermExpr
)

// KeyPin records that a command pins one primary-key field of its table to
// a symbolic term. Expr is the pinning expression from the program text —
// the replayer evaluates or inverts it to make the model's aliasing
// equalities hold concretely.
type KeyPin struct {
	Field string
	Term  string // canonical term id; equal ids denote equal runtime values
	Kind  TermKind
	Expr  ast.Expr
}

// SchedItem is one command instance of the two-transaction encoding, in the
// detector's global numbering (A's commands then B's).
type SchedItem struct {
	Inst  int    // 0 = the anomalous transaction A, 1 = the witness B
	Idx   int    // static command index within its transaction
	Label string // command label (S1, U2, ...)
	Table string
	Pins  []KeyPin
}

// EqAtom is the model valuation of one free aliasing-equality atom of a
// (table, field) sort: whether terms A and B denote the same value in the
// witnessing execution.
type EqAtom struct {
	Table string
	Field string
	A, B  string // canonical term ids, A < B
	Equal bool
}

// EdgeField is one per-field dependency-edge proposition true in the model.
type EdgeField struct {
	Field string
	Kind  EdgeKind
}

// SchedEdge is one of the two directed dependency edges of the witnessing
// cycle, with the global item indices it connects. Orientation matters:
// the cycle may traverse A.c1 → B.d1 or B.d1 → A.c1 depending on which
// query was satisfiable, and the replayer must reproduce the actual
// direction, not the reported (c1, c2) pair order.
type SchedEdge struct {
	From, To int
	Kind     EdgeKind
	Fields   []EdgeField
}

// Schedule is the executable witness read off a satisfying cycle model.
type Schedule struct {
	TxnA, TxnB string // instance 0 / instance 1 transaction names
	NA         int    // instance 0's command count; items NA.. belong to B
	Items      []SchedItem
	// Order lists the global item indices sorted by the model's ord
	// relation: Order[k] executes k-th.
	Order []int
	// Vis[x][y] reports whether writer x's batch is in y's local view
	// (meaningful for cross-instance writer pairs; false elsewhere).
	Vis [][]bool
	// Eqs are the model valuations of every free aliasing-equality atom.
	Eqs []EqAtom
	// Edge1, Edge2 are the two dependency edges of the witnessing cycle.
	Edge1, Edge2 SchedEdge
}

// ItemAt maps a global item index to its (instance, static command index).
func (s *Schedule) ItemAt(g int) (inst, idx int) {
	it := s.Items[g]
	return it.Inst, it.Idx
}

// DetectWitnessed runs Detect with witness-schedule recording: every
// reported pair's Witness carries the Schedule extracted from its
// satisfying cycle model. Reports are otherwise byte-identical to Detect's.
func DetectWitnessed(prog *ast.Program, model Model) (*Report, error) {
	return DetectWitnessedContext(context.Background(), prog, model)
}

// DetectWitnessedContext is DetectWitnessed with cancellation, mirroring
// DetectContext.
func DetectWitnessedContext(ctx context.Context, prog *ast.Program, model Model) (*Report, error) {
	return DetectWitnessedBudgeted(ctx, prog, model, sat.Budget{})
}

// DetectWitnessedBudgeted is DetectWitnessedContext with a per-solve
// resource budget, mirroring DetectBudgeted: exhausted solves degrade the
// report instead of failing it, and a zero budget is byte-identical.
func DetectWitnessedBudgeted(ctx context.Context, prog *ast.Program, model Model, b sat.Budget) (*Report, error) {
	d := &detector{prog: prog, model: model, encoders: map[[2]string]*pairEncoder{}, record: true, budget: b}
	d.setContext(ctx)
	return runDetector(d)
}

// exportKind maps the internal term classification to the exported one.
func exportKind(k termKind) TermKind {
	switch k {
	case termConst:
		return TermConst
	case termUUID:
		return TermUUID
	default:
		return TermExpr
	}
}

// extractPins is extractKey's recording twin: the same primary-key pins,
// but keeping the pinning expressions so the replayer can evaluate them.
func extractPins(c ast.DBCommand, schema *ast.Schema, inst, cmdIdx int) []KeyPin {
	pk := map[string]bool{}
	for _, f := range schema.PrimaryKey() {
		pk[f.Name] = true
	}
	var out []KeyPin
	add := func(field string, e ast.Expr) {
		if !pk[field] {
			return
		}
		tm := termOf(e, inst, cmdIdx)
		out = append(out, KeyPin{Field: field, Term: tm.id, Kind: exportKind(tm.kind), Expr: e})
	}
	switch x := c.(type) {
	case *ast.Select:
		if eqs, ok := ast.WhereEqualities(x.Where); ok {
			for _, q := range eqs {
				add(q.Field, q.Expr)
			}
		}
	case *ast.Update:
		if eqs, ok := ast.WhereEqualities(x.Where); ok {
			for _, q := range eqs {
				add(q.Field, q.Expr)
			}
		}
	case *ast.Insert:
		for _, a := range x.Values {
			add(a.Field, a.Expr)
		}
	}
	return out
}

// eqAtomProp records, for one free equality proposition, the sort and term
// pair behind it — only populated when the encoder records witnesses.
type eqAtomProp struct {
	sym          logic.Sym
	table, field string
	a, b         string
}

// buildSchedule reads the current satisfying model back into a Schedule.
// It must be called immediately after the satisfiable SolveAssuming, before
// any further solve on this encoder.
func (pe *pairEncoder) buildSchedule(from1, to1, from2, to2 *cmdInst) *Schedule {
	n := len(pe.items)
	s := &Schedule{TxnA: pe.tName, TxnB: pe.wName, NA: pe.nA}
	for _, it := range pe.items {
		idx := it.idx
		if it.inst == 1 {
			idx -= pe.nA
		}
		s.Items = append(s.Items, SchedItem{
			Inst: it.inst, Idx: idx, Label: it.label, Table: it.table, Pins: it.pins,
		})
	}
	// ord is a strict total order, so each item's position is its number of
	// predecessors in the model.
	s.Order = make([]int, n)
	for i := 0; i < n; i++ {
		pos := 0
		for j := 0; j < n; j++ {
			if j != i && pe.enc.ValueS(pe.ordS[j][i]) {
				pos++
			}
		}
		s.Order[pos] = i
	}
	s.Vis = make([][]bool, n)
	for i := 0; i < n; i++ {
		s.Vis[i] = make([]bool, n)
		x := pe.items[i]
		if !x.writer {
			continue
		}
		for j := 0; j < n; j++ {
			if j != i && pe.items[j].inst != x.inst {
				s.Vis[i][j] = pe.enc.ValueS(pe.visS[i][j])
			}
		}
	}
	if len(pe.eqAtoms) > 0 {
		syms := make([]logic.Sym, len(pe.eqAtoms))
		for i, ea := range pe.eqAtoms {
			syms[i] = ea.sym
		}
		vals := pe.enc.ModelValuesS(pe.scratch[:0], syms...)
		pe.scratch = vals
		for i, ea := range pe.eqAtoms {
			s.Eqs = append(s.Eqs, EqAtom{Table: ea.table, Field: ea.field, A: ea.a, B: ea.b, Equal: vals[i]})
		}
	}
	s.Edge1 = pe.modelSchedEdge(from1, to1)
	s.Edge2 = pe.modelSchedEdge(from2, to2)
	return s
}

// modelSchedEdge reads the directed edge (x → y) with its per-field kinds
// off the current model.
func (pe *pairEncoder) modelSchedEdge(x, y *cmdInst) SchedEdge {
	e := SchedEdge{From: x.idx, To: y.idx}
	for _, ep := range pe.edgeNames[x.idx][y.idx] {
		if pe.enc.ValueS(ep.sym) {
			e.Kind = ep.kind
			e.Fields = append(e.Fields, EdgeField{Field: ep.field, Kind: ep.kind})
		}
	}
	return e
}
