// Package anomaly implements the paper's static anomaly-detection oracle O
// (§3.2, §6): given a database program and a consistency model, it reports
// the anomalous access pairs — pairs of commands (c1, c2) within one
// transaction whose joint non-atomic visibility is witnessed by a
// serializability violation in some concurrent execution.
//
// Detection reduces to satisfiability of a bounded first-order encoding,
// exactly as in the paper (which discharges the FOL formula with Z3): for
// each pair of transactions we instantiate two transaction instances A and
// B, introduce a strict total order ord over their commands (the execution
// counter), a visibility relation vis (which writes each command's local
// view contains), and equality atoms between the symbolic primary-key terms
// of their where clauses (record aliasing). A pair (c1, c2) of transaction
// T is anomalous iff the model's axioms admit an execution containing a
// dependency cycle that enters instance A at one command of the pair and
// leaves at the other:
//
//	dep(A.c1 → B.d1) ∧ dep(B.d2 → A.c2)
//
// with dep ∈ {wr, ww, rw} edges derived from ord/vis over aliasing
// accesses. The consistency models differ only in their vis axioms:
//
//	EC — no constraints beyond vis ⊆ ord (arbitrary subsets of commits);
//	CC — causal delivery: co(w1,w2) ∧ vis(w2,y) ⇒ vis(w1,y);
//	RR — a transaction that read T's state does not later observe T's
//	     newly committed results (the paper's repeatable read);
//	SC — strong atomicity + strong isolation (§3.2); every cycle becomes
//	     unsatisfiable, so SC reports zero anomalies.
//
// Bounding: two transaction instances, one execution of each command
// (commands under if/iterate are assumed to may-execute once). These are
// the same bounds used by the static analyses the paper builds on [13, 36].
package anomaly

import (
	"fmt"
	"strings"
)

// Model is the consistency model anomalies are detected under.
type Model int

// Consistency models of the paper's evaluation (§7.1, Table 1).
const (
	EC Model = iota // eventual consistency
	CC              // causal consistency
	RR              // repeatable read
	SC              // serializability (strong consistency)
)

func (m Model) String() string {
	switch m {
	case EC:
		return "EC"
	case CC:
		return "CC"
	case RR:
		return "RR"
	case SC:
		return "SC"
	default:
		return fmt.Sprintf("Model(%d)", int(m))
	}
}

// ParseModel parses a model name, case-insensitively. The CLIs and the
// service layer share this so every surface accepts the same spellings.
func ParseModel(s string) (Model, error) {
	switch strings.ToUpper(s) {
	case "EC":
		return EC, nil
	case "CC":
		return CC, nil
	case "RR":
		return RR, nil
	case "SC":
		return SC, nil
	default:
		return EC, fmt.Errorf("anomaly: unknown model %q (want EC, CC, RR, or SC)", s)
	}
}

// Kind classifies an anomalous access pair by its witnessing dependency
// pattern, mirroring the paper's Fig. 2 taxonomy.
type Kind string

// Anomaly kinds.
const (
	KindLostUpdate        Kind = "lost-update"
	KindDirtyRead         Kind = "dirty-read"
	KindNonRepeatableRead Kind = "non-repeatable-read"
	KindWriteSkew         Kind = "write-skew"
)

// EdgeKind is the dependency-edge type in a witness cycle.
type EdgeKind string

// Dependency edge kinds (Adya-style).
const (
	EdgeWR EdgeKind = "wr" // read dependency: target read source's write
	EdgeWW EdgeKind = "ww" // write dependency: target overwrote source
	EdgeRW EdgeKind = "rw" // anti-dependency: source read, target overwrote unseen
)

// Witness describes the concurrent transaction instance that exhibits the
// serializability violation for an access pair.
type Witness struct {
	Txn   string   // witnessing transaction
	D1    string   // command of the witness conflicting with C1
	D2    string   // command of the witness conflicting with C2
	Edge1 EdgeKind // kind of the A.c1 → B.d1 edge
	Edge2 EdgeKind // kind of the B.d2 → A.c2 edge
	// Schedule is the executable witness extracted from the satisfying
	// cycle model; nil unless detection recorded witnesses
	// (DetectWitnessed / DetectSession.RecordWitnesses). It never feeds
	// String() or any golden output.
	Schedule *Schedule
}

// AccessPair is an anomalous access pair χ = (c1, f̄1, c2, f̄2) (§3.2).
type AccessPair struct {
	Txn     string
	C1      string
	F1      []string
	C2      string
	F2      []string
	Kind    Kind
	Witness Witness
}

// String renders the pair in the paper's notation.
func (a AccessPair) String() string {
	return fmt.Sprintf("%s: (%s, %v, %s, %v) [%s via %s(%s,%s)]",
		a.Txn, a.C1, a.F1, a.C2, a.F2, a.Kind, a.Witness.Txn, a.Witness.D1, a.Witness.D2)
}

// UnknownPair names an access pair whose verdict a budgeted detection
// could not establish: no witness proved it anomalous, but at least one of
// its cycle queries ran out of solve budget, so it cannot be claimed clean
// either.
type UnknownPair struct {
	Txn string
	C1  string
	C2  string
}

// Report is the detector's output.
//
// Degraded reports: a budgeted detection that exhausted at least one solve
// is partial. What it still soundly claims (Nagar & Jagannathan's framing
// for partial weak-consistency detection): every pair in Pairs is a real
// anomaly — budgeted SAT answers come with a genuine model, and budgeted
// UNSAT answers are genuine refutations, so exhaustion only ever *removes*
// pairs from the report, never invents them. Pairs absent from both Pairs
// and UnknownPairs are proven clean. Pairs in UnknownPairs are unresolved —
// callers must treat them as possibly anomalous (the repair pipeline skips
// them rather than claiming them repaired).
type Report struct {
	Model   Model
	Pairs   []AccessPair
	Queries int // cycle-satisfiability queries issued (cache hits included)
	// Solved counts cache-miss queries solved on the SAT solver. A fresh
	// Detect solves every query it issues; a DetectSession answers repeats
	// from its cache, so Solved <= Queries. State-parity replays are not
	// included here — see SessionStats.Replayed.
	Solved int
	// Degraded is set when any solve exhausted its budget; the report is
	// then a sound under-approximation (see the type comment).
	Degraded bool
	// Unknown is len(UnknownPairs): access pairs left unclassified.
	Unknown int
	// UnknownPairs lists the pairs whose verdict ran out of budget.
	UnknownPairs []UnknownPair
	// Exhausted counts the individual budget-exhausted SAT solves.
	Exhausted int
}

// PairsByTxn groups the anomalous pairs by transaction name.
func (r *Report) PairsByTxn() map[string][]AccessPair {
	out := map[string][]AccessPair{}
	for _, p := range r.Pairs {
		out[p.Txn] = append(out[p.Txn], p)
	}
	return out
}

// Count returns the number of anomalous access pairs.
func (r *Report) Count() int { return len(r.Pairs) }
