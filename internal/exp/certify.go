package exp

import (
	"fmt"
	"strings"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/repair"
	"atropos/internal/replay"
)

// This file is the witness-replay certification driver behind
// `atropos-exp -exp certify` (and `make certify` in the CI gate): every
// Table-1 anomaly count is backed by an executable certificate — the
// detector's witness schedule lowered into a directed simulator run that
// exhibits the claimed dependency cycle — plus the two negative controls
// (serial replays of the original program and projected replays of the
// repaired one, both of which must show zero violations). See DESIGN.md §11.

// CertModels are the weak models certificates cover: SC admits no anomalies
// on the benchmarks, so there is nothing to replay there.
var CertModels = []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR}

// certRateFloor is the acceptance threshold on the per-benchmark×model
// reproduction rate.
const certRateFloor = 0.95

// CertifyRow is one benchmark × model certificate measurement.
type CertifyRow struct {
	Benchmark string
	Model     anomaly.Model
	Total     int // anomalous pairs detected
	Lowered   int // pairs whose witness model was realizable as a run
	Certified int // pairs whose dependency cycle manifested when run
}

// Rate is the row's reproduction rate (1 when there is nothing to replay).
func (r CertifyRow) Rate() float64 {
	if r.Total == 0 {
		return 1
	}
	return float64(r.Certified) / float64(r.Total)
}

// CertifyGrid replays witness certificates for every benchmark × weak
// model on a bounded worker pool. Counts are deterministic and
// machine-independent; RunBaseline records them and the drift gate
// compares them.
func CertifyGrid(benches []*benchmarks.Benchmark, parallelism int) ([]CertifyRow, error) {
	for _, b := range benches {
		if _, err := b.Program(); err != nil {
			return nil, err
		}
	}
	rows := make([]CertifyRow, len(benches)*len(CertModels))
	err := ForEach(Workers(parallelism), len(rows), func(i int) error {
		b := benches[i/len(CertModels)]
		m := CertModels[i%len(CertModels)]
		prog, _ := b.Program()
		cert, _, err := replay.CertifyModel(prog, m)
		if err != nil {
			return err
		}
		rows[i] = CertifyRow{
			Benchmark: b.Name, Model: m,
			Total: cert.Total, Lowered: cert.Lowered, Certified: cert.Certified,
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// FormatCertify renders the grid as the EXPERIMENTS.md certificate table.
func FormatCertify(rows []CertifyRow) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %8s %10s %6s\n", "benchmark", "model", "pairs", "lowered", "certified", "rate")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6s %8d %8d %10d %5.0f%%\n",
			r.Benchmark, r.Model, r.Total, r.Lowered, r.Certified, 100*r.Rate())
	}
	return b.String()
}

// CertifyNegative is one benchmark's negative-control measurement: the full
// certified repair under EC, with the serial (SC) and repaired-program
// replays that must show no violation.
type CertifyNegative struct {
	Benchmark string
	Cert      *replay.RepairCertificate
}

// CertifyNegatives runs the certified repair pipeline for each benchmark
// under EC on a bounded worker pool.
func CertifyNegatives(benches []*benchmarks.Benchmark, parallelism int) ([]CertifyNegative, error) {
	for _, b := range benches {
		if _, err := b.Program(); err != nil {
			return nil, err
		}
	}
	out := make([]CertifyNegative, len(benches))
	err := ForEach(Workers(parallelism), len(benches), func(i int) error {
		prog, _ := benches[i].Program()
		// Detection runs sequentially inside each repair: the benchmark
		// grid already owns the worker pool.
		res, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: true, Certify: true, Parallelism: 1})
		if err != nil {
			return err
		}
		out[i] = CertifyNegative{Benchmark: benches[i].Name, Cert: res.Certificate}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return out, nil
}

// FormatCertifyNegatives renders the negative-control table.
func FormatCertifyNegatives(negs []CertifyNegative) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %10s %12s %15s %8s\n", "benchmark", "certified", "sc-replays", "repaired-runs", "errors")
	for _, n := range negs {
		c := n.Cert
		fmt.Fprintf(&b, "%-12s %6d/%-3d %6d/%-5d %9d/%-5d %8d\n",
			n.Benchmark, c.Certified, c.Total,
			c.SCViolations, c.SCRuns, c.RepairedViolations, c.RepairedRuns, len(c.Errors))
	}
	return b.String()
}

// CertifyGate evaluates the acceptance criteria over a grid and its
// negative controls, returning one message per failure; empty means the
// gate passes. The thresholds mirror ISSUE/EXPERIMENTS: every benchmark ×
// model replays at least 95% of its detected pairs, every benchmark
// contributes at least one replayed schedule (anti-vacuity), and the
// negative controls replay zero violations with no run errors.
func CertifyGate(rows []CertifyRow, negs []CertifyNegative) []string {
	var fails []string
	byBench := map[string]int{}
	for _, r := range rows {
		byBench[r.Benchmark] += r.Certified
		if r.Rate() < certRateFloor {
			fails = append(fails, fmt.Sprintf("%s/%s: reproduction rate %.0f%% below %.0f%% (%d/%d)",
				r.Benchmark, r.Model, 100*r.Rate(), 100*certRateFloor, r.Certified, r.Total))
		}
	}
	for _, r := range rows {
		if byBench[r.Benchmark] == 0 {
			fails = append(fails, fmt.Sprintf("%s: no replayed schedule under any model (vacuous certificate)", r.Benchmark))
			byBench[r.Benchmark] = -1 // report once
		}
	}
	for _, n := range negs {
		c := n.Cert
		if c.SCViolations > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d/%d serial (SC) replays exhibited a violation", n.Benchmark, c.SCViolations, c.SCRuns))
		}
		if c.RepairedViolations > 0 {
			fails = append(fails, fmt.Sprintf("%s: %d/%d repaired-program replays exhibited a violation", n.Benchmark, c.RepairedViolations, c.RepairedRuns))
		}
		for _, e := range c.Errors {
			fails = append(fails, fmt.Sprintf("%s: negative control error: %s", n.Benchmark, e))
		}
	}
	return fails
}
