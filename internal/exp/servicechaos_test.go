package exp

import "testing"

// TestServiceChaos runs the full scripted fault sequence and holds it to
// the gate: stalls drain, overload sheds, the breaker trips exactly once,
// the injected panic is contained, and the engine recovers.
func TestServiceChaos(t *testing.T) {
	res, err := RunServiceChaos(ServiceChaosConfig{})
	if err != nil {
		t.Fatalf("RunServiceChaos: %v", err)
	}
	for _, f := range ServiceChaosGate(res) {
		t.Error(f)
	}
	if t.Failed() {
		t.Logf("\n%s", res.Format())
	}
}

// TestServiceChaosDeterministic: two runs produce identical count columns —
// the property that lets BENCH_baseline.json pin them.
func TestServiceChaosDeterministic(t *testing.T) {
	a, err := RunServiceChaos(ServiceChaosConfig{})
	if err != nil {
		t.Fatalf("run 1: %v", err)
	}
	b, err := RunServiceChaos(ServiceChaosConfig{})
	if err != nil {
		t.Fatalf("run 2: %v", err)
	}
	a.Wall, b.Wall = 0, 0
	if *a != *b {
		t.Errorf("service-chaos counts differ across runs:\nrun1: %+v\nrun2: %+v", a, b)
	}
}
