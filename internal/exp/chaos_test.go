package exp

import (
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// TestChaosSmallBank runs one benchmark through the full scenario panel
// and checks the harness's headline properties: the serializable control
// and the repaired deployment's repaired transactions show zero
// violations, the unrepaired EC deployment shows at least one under some
// fault scenario, and the sweep is deterministic (same config ⇒ same
// rows).
func TestChaosSmallBank(t *testing.T) {
	cfg := ChaosConfig{
		Benchmarks: []*benchmarks.Benchmark{benchmarks.SmallBank},
		Clients:    12,
		Duration:   1200 * time.Millisecond,
	}
	res, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if fails := ChaosGate(res.Rows); len(fails) > 0 {
		t.Fatalf("chaos gate failed:\n%s\n%s", res.Format(), fails)
	}
	for _, r := range res.Rows {
		if r.Committed == 0 {
			t.Errorf("%s/%s/%s: no committed transactions (vacuous run)", r.Benchmark, r.Scenario, r.Series)
		}
	}
	res2, err := RunChaos(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Rows {
		if res.Rows[i] != res2.Rows[i] {
			t.Fatalf("chaos sweep not deterministic: %+v vs %+v", res.Rows[i], res2.Rows[i])
		}
	}
	t.Log("\n" + res.Format())
}
