package exp

import (
	"fmt"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/metrics"
	"atropos/internal/refactor"
	"atropos/internal/repair"
	"atropos/internal/store"
)

// PerfConfig drives one Fig. 12/13/14/15 panel: one benchmark on one
// topology across a range of client counts, measuring the four deployments
// (EC, AT-EC, SC, AT-SC).
type PerfConfig struct {
	Benchmark    *benchmarks.Benchmark
	Topology     cluster.Topology
	ClientCounts []int
	Duration     time.Duration // per point; the paper uses 90 s
	Warmup       time.Duration
	// Ops, when positive, makes every deployment point ops-bounded: each
	// run stops after Ops measured commits instead of at Duration
	// (machine-independent sizing for benchmarks and CI).
	Ops   int64
	Scale benchmarks.Scale
	Seed  int64
	// Parallelism bounds the number of deployment simulations run
	// concurrently (the panel's 4 variants × client counts are mutually
	// independent); <= 0 selects GOMAXPROCS.
	Parallelism int
	// NonIncremental disables the cached detection session in the panel's
	// repair; the zero value uses the default incremental engine. Results
	// are identical either way.
	NonIncremental bool
}

// PerfResult bundles the four measured curves of one panel.
type PerfResult struct {
	Benchmark string
	Topology  string
	// Series order: EC, AT-EC, SC, AT-SC (the paper's legend).
	Series []metrics.Series
	// Committed is the total number of transactions simulated across the
	// panel's runs, and SimWall the wall-clock time those simulations took
	// (excluding the repair pipeline and row migration) — their ratio is
	// the simulator's own throughput, reported as sim_txns_per_sec in the
	// perf baseline.
	Committed int64
	SimWall   time.Duration
}

// Perf runs one panel. The AT variants run the repaired program on an
// initial state produced by the schema migration; AT-SC serializes exactly
// the transactions the repair left anomalous.
func Perf(cfg PerfConfig) (*PerfResult, error) {
	b := cfg.Benchmark
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	if cfg.Duration == 0 {
		cfg.Duration = 90 * time.Second
	}
	if cfg.Warmup == 0 {
		cfg.Warmup = 2 * time.Second
	}
	if len(cfg.ClientCounts) == 0 {
		cfg.ClientCounts = []int{10, 25, 50, 100, 150, 200, 250}
	}
	rep, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: !cfg.NonIncremental})
	if err != nil {
		return nil, err
	}
	rows := b.Rows(cfg.Scale)
	atRows, err := MigrateRows(prog, rep.Program, rep.Corrs, rows)
	if err != nil {
		return nil, err
	}
	serializable := map[string]bool{}
	for _, t := range rep.SerializableTxns {
		serializable[t] = true
	}
	allSerializable := map[string]bool{}
	for _, t := range prog.Txns {
		allSerializable[t.Name] = true
	}

	variants := []struct {
		label   string
		prog    *ast.Program
		rows    []benchmarks.TableRow
		mode    cluster.Mode
		serTxns map[string]bool
	}{
		{"EC", prog, rows, cluster.ModeEC, nil},
		{"AT-EC", rep.Program, atRows, cluster.ModeEC, nil},
		{"SC", prog, rows, cluster.ModeSC, allSerializable},
		{"AT-SC", rep.Program, atRows, cluster.ModeATSC, serializable},
	}
	// Every (variant, client count) deployment run is independent — each
	// owns its replicas, RNG, and latency reservoir — so the whole panel
	// fans out on one bounded worker pool. Runs are deterministic given
	// their seed, so the points are identical to a sequential sweep.
	nc := len(cfg.ClientCounts)
	points := make([][]metrics.Point, len(variants))
	for i := range points {
		points[i] = make([]metrics.Point, nc)
	}
	committed := make([]int64, len(variants)*nc)
	simStart := time.Now()
	err = ForEach(Workers(cfg.Parallelism), len(variants)*nc, func(i int) error {
		v, clients := variants[i/nc], cfg.ClientCounts[i%nc]
		run, err := cluster.Run(cluster.Config{
			Program:          v.prog,
			Mix:              b.Mix,
			Scale:            cfg.Scale,
			Rows:             v.rows,
			Topology:         cfg.Topology,
			Clients:          clients,
			Duration:         cfg.Duration,
			Warmup:           cfg.Warmup,
			Ops:              cfg.Ops,
			Seed:             cfg.Seed + int64(clients),
			Mode:             v.mode,
			SerializableTxns: v.serTxns,
		})
		if err != nil {
			return fmt.Errorf("perf: %s %s %d clients: %w", b.Name, v.label, clients, err)
		}
		points[i/nc][i%nc] = run.Point
		committed[i] = run.Committed
		return nil
	})
	if err != nil {
		return nil, err
	}
	out := &PerfResult{Benchmark: b.Name, Topology: cfg.Topology.Name, SimWall: time.Since(simStart)}
	for _, c := range committed {
		out.Committed += c
	}
	for i, v := range variants {
		out.Series = append(out.Series, metrics.Series{Label: v.label, Points: points[i]})
	}
	return out, nil
}

// MigrateRows converts a benchmark's initial rows into the refactored
// program's initial state via the recorded value correspondences.
func MigrateRows(orig, refactored *ast.Program, corrs []refactor.ValueCorr, rows []benchmarks.TableRow) ([]benchmarks.TableRow, error) {
	db := store.NewDB(orig)
	for _, r := range rows {
		if _, err := db.Load(r.Table, r.Row); err != nil {
			return nil, err
		}
	}
	mdb, err := refactor.Migrate(db, orig, refactored, corrs)
	if err != nil {
		return nil, err
	}
	return DumpRows(mdb, refactored), nil
}

// DumpRows materializes a store's full view as loadable rows.
func DumpRows(db *store.DB, prog *ast.Program) []benchmarks.TableRow {
	view := db.FullView()
	var out []benchmarks.TableRow
	for _, s := range prog.Schemas {
		for _, k := range view.Keys(s.Name) {
			if !view.Alive(s.Name, k) {
				continue
			}
			out = append(out, benchmarks.TableRow{Table: s.Name, Row: view.Row(s.Name, k)})
		}
	}
	return out
}

// Format renders the panel: throughput and latency per series, matching
// the two stacked plots of each figure.
func (r *PerfResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s on %s cluster ===\n", r.Benchmark, r.Topology)
	for _, s := range r.Series {
		b.WriteString(s.Format())
	}
	return b.String()
}
