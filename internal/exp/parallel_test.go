package exp

import (
	"fmt"
	"reflect"
	"sync/atomic"
	"testing"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
)

func TestForEachRunsEveryIndex(t *testing.T) {
	for _, w := range []int{1, 3, 8, 100} {
		var hits [40]int32
		err := ForEach(w, len(hits), func(i int) error {
			atomic.AddInt32(&hits[i], 1)
			return nil
		})
		if err != nil {
			t.Fatalf("w=%d: %v", w, err)
		}
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("w=%d: index %d ran %d times", w, i, h)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	if err := ForEach(4, 0, func(int) error { t.Fatal("called"); return nil }); err != nil {
		t.Fatal(err)
	}
}

// ForEach must return the lowest-index error so the reported failure does
// not depend on goroutine scheduling — and later indices still run.
func TestForEachLowestIndexError(t *testing.T) {
	for _, w := range []int{1, 4} {
		var ran int32
		err := ForEach(w, 10, func(i int) error {
			atomic.AddInt32(&ran, 1)
			if i == 7 || i == 3 {
				return fmt.Errorf("fail %d", i)
			}
			return nil
		})
		if err == nil || err.Error() != "fail 3" {
			t.Errorf("w=%d: err = %v, want fail 3", w, err)
		}
		if ran != 10 {
			t.Errorf("w=%d: ran %d of 10 indices", w, ran)
		}
	}
}

func TestWorkersResolution(t *testing.T) {
	if w := Workers(5); w != 5 {
		t.Errorf("Workers(5) = %d", w)
	}
	if w := Workers(0); w < 1 {
		t.Errorf("Workers(0) = %d, want >= 1", w)
	}
	if w := Workers(-3); w < 1 {
		t.Errorf("Workers(-3) = %d, want >= 1", w)
	}
}

// TestTable1ParallelMatchesSequential pins the tentpole property: the
// parallel engine produces the same table as the sequential path. Run with
// -race this also exercises the concurrent detector/repair paths.
func TestTable1ParallelMatchesSequential(t *testing.T) {
	corpus := []*benchmarks.Benchmark{benchmarks.SIBench, benchmarks.Courseware, benchmarks.Twitter, benchmarks.Killrchat}
	seq, err := Table1(corpus, WithParallelism(1))
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	par, err := Table1(corpus, WithParallelism(4))
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	for i := range seq {
		a, b := seq[i], par[i]
		a.Time, b.Time = 0, 0
		if a != b {
			t.Errorf("row %d differs:\n seq %+v\n par %+v", i, a, b)
		}
	}
}

// TestTable1ErrorPropagation: a benchmark whose program fails to load must
// fail the whole run deterministically, parallel or not.
func TestTable1ErrorPropagation(t *testing.T) {
	bad := &benchmarks.Benchmark{Name: "Broken", Source: "table T {"}
	for _, par := range []int{1, 4} {
		_, err := Table1([]*benchmarks.Benchmark{benchmarks.SIBench, bad}, WithParallelism(par))
		if err == nil {
			t.Errorf("parallelism %d: no error for broken benchmark", par)
		}
	}
}

// TestPerfParallelMatchesSequential: every deployment simulation owns its
// RNG and metrics, so a parallel panel equals the sequential one exactly.
func TestPerfParallelMatchesSequential(t *testing.T) {
	cfg := PerfConfig{
		Benchmark:    benchmarks.SIBench,
		Topology:     cluster.VACluster,
		ClientCounts: []int{8, 16},
		Duration:     1 * time.Second,
		Warmup:       100 * time.Millisecond,
		Scale:        benchmarks.Scale{Records: 20},
		Seed:         11,
	}
	cfg.Parallelism = 1
	seq, err := Perf(cfg)
	if err != nil {
		t.Fatalf("sequential: %v", err)
	}
	cfg.Parallelism = 8
	par, err := Perf(cfg)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	// SimWall is wall-clock and legitimately differs between runs; every
	// simulated measurement must be identical.
	seq.SimWall, par.SimWall = 0, 0
	if !reflect.DeepEqual(seq, par) {
		t.Errorf("panel differs:\n seq %+v\n par %+v", seq, par)
	}
}

// TestBaselineSnapshot exercises the regression harness end to end on a
// small simulated duration and sanity-checks the recorded fields.
func TestBaselineSnapshot(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus harness; skipped with -short")
	}
	b, err := RunBaseline(BaselineConfig{Duration: 300 * time.Millisecond, Clients: 12, Seed: 7})
	if err != nil {
		t.Fatalf("RunBaseline: %v", err)
	}
	if len(b.Repairs) != 9 {
		t.Fatalf("repairs = %d, want 9", len(b.Repairs))
	}
	for _, r := range b.Repairs {
		if r.WallMs <= 0 {
			t.Errorf("%s: wall time %.3fms not recorded", r.Benchmark, r.WallMs)
		}
		if r.Remaining > r.Initial {
			t.Errorf("%s: repair added anomalies: %d -> %d", r.Benchmark, r.Initial, r.Remaining)
		}
	}
	if b.Table1.SequentialMs <= 0 || b.Table1.ParallelMs <= 0 || b.Table1.SpeedupX <= 0 {
		t.Errorf("table1 timings missing: %+v", b.Table1)
	}
	if b.PanelDurationMs != 300 {
		t.Errorf("panel duration = %.0fms, want 300", b.PanelDurationMs)
	}
	if len(b.Panels) != 3 {
		t.Fatalf("panels = %d, want 3", len(b.Panels))
	}
	for _, p := range b.Panels {
		if p.WallMs <= 0 {
			t.Errorf("%s: panel wall time %.3fms not recorded", p.Benchmark, p.WallMs)
		}
		if len(p.Series) != 4 {
			t.Fatalf("%s: series = %d, want 4", p.Benchmark, len(p.Series))
		}
		for _, s := range p.Series {
			if s.Throughput <= 0 {
				t.Errorf("%s/%s: zero throughput", p.Benchmark, s.Series)
			}
		}
	}
	buf, err := b.JSON()
	if err != nil || len(buf) == 0 {
		t.Fatalf("JSON: %v", err)
	}
}
