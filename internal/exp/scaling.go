package exp

import (
	"encoding/json"
	"fmt"
	"runtime"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/repair"
)

// ScalingConfig configures the multi-core scaling baseline
// (`make baseline-mc`): the Table-1 repair corpus is measured end to end
// at increasing detection-parallelism widths, with the benchmarks run
// strictly one after another so the only concurrency is the (txn, witness)
// wavefront inside each detection session.
type ScalingConfig struct {
	// Workers are the detection-parallelism widths to measure, each an
	// explicit repair.Options.Parallelism value. Default: 1, 2, 4, 8.
	Workers []int
	// Repeats is the number of measurements per width; the best
	// (minimum) wall time is kept, which discards warmup and scheduler
	// noise. Default 3.
	Repeats int
	// Smoke trims the sweep to widths 1 and 2 with a single repeat —
	// the cheap variant `make scaling-smoke` runs on every CI push.
	Smoke bool
	// NonIncremental disables the cached incremental detection engine
	// inside the measured repairs.
	NonIncremental bool
}

func (c ScalingConfig) orDefault() ScalingConfig {
	if c.Smoke {
		c.Workers = []int{1, 2}
		c.Repeats = 1
		return c
	}
	if len(c.Workers) == 0 {
		c.Workers = []int{1, 2, 4, 8}
	}
	if c.Repeats == 0 {
		c.Repeats = 3
	}
	return c
}

// ScalingPoint is one measured width of the sweep.
type ScalingPoint struct {
	// Workers is the detection-parallelism width.
	Workers int `json:"workers"`
	// WallMs is the best-of-Repeats wall time of the full corpus.
	WallMs float64 `json:"wall_ms"`
	// SpeedupX is wall(1)/wall(Workers).
	SpeedupX float64 `json:"speedup_x"`
	// Efficiency is SpeedupX/Workers — 1.0 is perfect linear scaling.
	Efficiency float64 `json:"efficiency"`
	// Pairs is the total anomalous access pairs reported across the
	// corpus; it must be identical at every width (the wavefront's
	// equivalence contract), and ScalingGate checks that it is.
	Pairs int `json:"pairs"`
}

// ScalingResult is a finished sweep. Wall times are machine-dependent;
// the Pairs column is not.
type ScalingResult struct {
	GOMAXPROCS int            `json:"gomaxprocs"`
	Smoke      bool           `json:"smoke,omitempty"`
	Points     []ScalingPoint `json:"points"`
	Wall       time.Duration  `json:"-"`
}

// JSON renders the summary for scaling-summary.json (gitignored: the
// wall-time columns are machine-dependent, unlike BENCH_baseline.json).
func (r *ScalingResult) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(r, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

// RunScaling measures the sweep. Each width repairs every Table-1
// benchmark sequentially (no outer fan-out) so the measured speedup is
// the detection wavefront's alone.
func RunScaling(cfg ScalingConfig) (*ScalingResult, error) {
	cfg = cfg.orDefault()
	start := time.Now()
	benches := benchmarks.All()
	progs := make([]*astProgram, 0, len(benches))
	for _, b := range benches {
		p, err := b.Program()
		if err != nil {
			return nil, err
		}
		progs = append(progs, &astProgram{name: b.Name, prog: p})
	}

	res := &ScalingResult{GOMAXPROCS: runtime.GOMAXPROCS(0), Smoke: cfg.Smoke}
	var base float64
	for _, w := range cfg.Workers {
		if w < 1 {
			return nil, fmt.Errorf("scaling: worker width must be >= 1, got %d", w)
		}
		best := time.Duration(0)
		pairs := 0
		for rep := 0; rep < cfg.Repeats; rep++ {
			t0 := time.Now()
			total := 0
			for _, p := range progs {
				r, err := repair.RepairWith(p.prog, anomaly.EC,
					repair.Options{Incremental: !cfg.NonIncremental, Parallelism: w})
				if err != nil {
					return nil, fmt.Errorf("scaling: %s at %d workers: %w", p.name, w, err)
				}
				total += len(r.Initial)
			}
			wall := time.Since(t0)
			if rep == 0 || wall < best {
				best = wall
			}
			pairs = total
		}
		pt := ScalingPoint{Workers: w, WallMs: ms(best), Pairs: pairs}
		if w == 1 {
			base = pt.WallMs
		}
		if base > 0 && pt.WallMs > 0 {
			pt.SpeedupX = base / pt.WallMs
			pt.Efficiency = pt.SpeedupX / float64(w)
		}
		res.Points = append(res.Points, pt)
	}
	res.Wall = time.Since(start)
	return res, nil
}

// astProgram pairs a parsed benchmark with its name for error messages.
type astProgram struct {
	name string
	prog *ast.Program
}

// scalingEfficiencyFloor is the CI threshold: at 8 workers the sweep
// must retain at least this fraction of linear speedup.
const scalingEfficiencyFloor = 0.7

// ScalingGate checks the CI thresholds of a finished sweep and returns
// the failures (empty = pass). The anomaly-count equality check always
// runs — it is machine-independent. The timing thresholds self-skip on
// hosts without enough cores to make them meaningful: the 0.7 efficiency
// floor at 8 workers needs GOMAXPROCS >= 8, and the smoke-mode
// 2-vs-1 speedup needs GOMAXPROCS >= 2.
func ScalingGate(res *ScalingResult) []string {
	var fails []string
	for _, pt := range res.Points[1:] {
		if pt.Pairs != res.Points[0].Pairs {
			fails = append(fails, fmt.Sprintf(
				"anomaly counts diverge: %d pairs at %d workers vs %d at %d",
				pt.Pairs, pt.Workers, res.Points[0].Pairs, res.Points[0].Workers))
		}
	}
	for _, pt := range res.Points {
		if pt.Workers == 8 && res.GOMAXPROCS >= 8 && pt.Efficiency < scalingEfficiencyFloor {
			fails = append(fails, fmt.Sprintf(
				"scaling efficiency %.2f at 8 workers below the %.1f floor (speedup %.2fx)",
				pt.Efficiency, scalingEfficiencyFloor, pt.SpeedupX))
		}
		if res.Smoke && pt.Workers == 2 && res.GOMAXPROCS >= 2 && pt.SpeedupX <= 1.0 {
			fails = append(fails, fmt.Sprintf(
				"smoke: 2 workers did not beat 1 (speedup %.2fx)", pt.SpeedupX))
		}
	}
	return fails
}

// ScalingGateSkipped reports which timing thresholds the host cannot
// check, for the gate's log line.
func ScalingGateSkipped(res *ScalingResult) []string {
	var skipped []string
	if res.GOMAXPROCS < 8 {
		skipped = append(skipped, fmt.Sprintf("8-worker efficiency floor (GOMAXPROCS=%d < 8)", res.GOMAXPROCS))
	}
	if res.Smoke && res.GOMAXPROCS < 2 {
		skipped = append(skipped, fmt.Sprintf("smoke speedup check (GOMAXPROCS=%d < 2)", res.GOMAXPROCS))
	}
	return skipped
}

// Format renders the sweep as the EXPERIMENTS.md scaling table.
func (r *ScalingResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-8s %10s %9s %11s %7s\n", "workers", "wall(ms)", "speedup", "efficiency", "pairs")
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%-8d %10.1f %8.2fx %11.2f %7d\n",
			pt.Workers, pt.WallMs, pt.SpeedupX, pt.Efficiency, pt.Pairs)
	}
	fmt.Fprintf(&b, "GOMAXPROCS=%d, %.1fs total\n", r.GOMAXPROCS, r.Wall.Seconds())
	return b.String()
}
