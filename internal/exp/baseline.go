package exp

import (
	"encoding/json"
	"runtime"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/progen"
	"atropos/internal/repair"
)

// This file is the benchmark-regression harness: RunBaseline measures the
// repo's three performance surfaces — per-benchmark repair wall time, the
// Table 1 pipeline's wall clock (sequential vs parallel), and the Fig. 12
// panel simulations — and serializes them as BENCH_baseline.json so later
// PRs have a machine-readable perf trajectory to beat. Regenerate with
//
//	atropos-exp -exp baseline -duration 2 -out BENCH_baseline.json
//
// (-duration 2 matches the committed snapshot; the file records the
// duration actually used, and panel wall clocks are only comparable at
// equal duration and gomaxprocs). See EXPERIMENTS.md §Baselines.

// BaselineConfig sizes the harness run.
type BaselineConfig struct {
	// Duration is simulated time per panel point (default 2s — the panels
	// are discrete-event simulations, so this is virtual, not wall, time).
	Duration time.Duration
	// Clients is the load of each panel point (default 50).
	Clients int
	// Parallelism is the worker bound for the parallel measurements;
	// <= 0 means GOMAXPROCS.
	Parallelism int
	// Seed fixes the simulated workloads.
	Seed int64
	// NonIncremental disables the cached detection session in the measured
	// repairs (the zero value measures the default engine).
	NonIncremental bool
	// CountsOnly skips the wall-clock-oriented sections (Table 1 pipeline
	// timing and the Fig. 12 panels) and measures only the per-benchmark
	// repairs — the machine-independent count columns the CI drift gate
	// compares.
	CountsOnly bool
	// ServiceClients / ServiceRequests size the atroposd load test
	// (LoadConfig.Clients / RequestsPerClient); zero takes the load
	// harness defaults (64 clients × 4 requests).
	ServiceClients  int
	ServiceRequests int
}

// Baseline is the machine-readable perf snapshot.
type Baseline struct {
	// GoVersion and MaxProcs identify the measuring machine; wall-clock
	// numbers are only comparable at equal MaxProcs.
	GoVersion string `json:"go_version"`
	MaxProcs  int    `json:"gomaxprocs"`
	// Parallelism is the resolved worker count of the parallel runs.
	Parallelism int `json:"parallelism"`
	// Incremental records whether the measured repairs used the cached
	// detection session; SAT-query counts are only comparable at equal
	// settings.
	Incremental bool `json:"incremental"`
	// PanelDurationMs is the simulated time per panel point; panel wall
	// clocks are only comparable at equal duration.
	PanelDurationMs float64 `json:"panel_duration_ms"`
	// Repairs is Table 1's Time column: per-benchmark analyze+repair wall
	// time, plus the anomaly counts guarding against "fast because wrong".
	Repairs []RepairBaseline `json:"repairs"`
	// Certificates records, per benchmark × weak model, how many detected
	// anomalous pairs replayed as executable certificates (DESIGN.md §11).
	// Deterministic counts — the drift gate compares them.
	Certificates []CertBaseline `json:"certificates"`
	// Corpus is the generated-program repair-throughput measurement: N
	// progen programs at fixed seeds repaired back to back, the workload
	// shape of ROADMAP-scale corpus evaluations.
	Corpus CorpusBaseline `json:"corpus"`
	// Service is the atroposd load-test measurement: concurrent progen
	// clients against the in-process HTTP engine. Requests/Completed and
	// the anomaly totals are deterministic (the drift gate compares them);
	// latency, throughput, retry, and hit-rate columns are informational.
	Service *LoadResult `json:"service,omitempty"`
	// Chaos is the fault-injection panel: Adya-style violation counts per
	// benchmark × fault scenario × deployment (see chaos.go). Virtual-time
	// deterministic, so the drift gate compares every column.
	Chaos []ChaosRow `json:"chaos,omitempty"`
	// ServiceChaos is the scripted service-fault panel (servicechaos.go):
	// admission, shed, degradation, breaker, and panic counters under
	// deterministic daemon-side fault injection. Every count column is
	// drift-gated.
	ServiceChaos *ServiceChaosResult `json:"service_chaos,omitempty"`
	// Table1 compares the sequential and parallel corpus pipelines.
	Table1 Table1Baseline `json:"table1"`
	// Panels is one Fig. 12 deployment point per benchmark × mode.
	Panels []PanelBaseline `json:"panels"`
}

// RepairBaseline is one benchmark's repair timing, plus the oracle's
// SAT-query counters. SATQueries counts the cycle queries the pipeline's
// three detection passes issued (what a fresh oracle would solve);
// SATSolved counts the ones that reached a SAT solver (cache-miss solves
// plus state-parity replays). Both are deterministic — the repairs run at
// parallelism 1 — so the CI drift gate compares them alongside the
// anomaly counts. AllocsPerRepair / BytesPerRepair are informational
// heap-allocation deltas (runtime mallocs / bytes across the repair):
// they track the encode/solve memory trajectory between PRs but vary
// slightly with the runtime version, so the drift gate never compares
// them.
type RepairBaseline struct {
	Benchmark       string  `json:"benchmark"`
	WallMs          float64 `json:"wall_ms"`
	Initial         int     `json:"initial_anomalies"`
	Remaining       int     `json:"remaining_anomalies"`
	SATQueries      int     `json:"sat_queries"`
	SATSolved       int     `json:"sat_solved"`
	CacheHitRate    float64 `json:"cache_hit_rate"`
	AllocsPerRepair uint64  `json:"allocs_per_repair"`
	BytesPerRepair  uint64  `json:"bytes_per_repair"`
}

// CertBaseline is one benchmark × model witness-replay certificate count:
// Total anomalous pairs detected, Certified the ones whose witness schedule
// reproduced its dependency cycle in the directed simulator.
type CertBaseline struct {
	Benchmark string `json:"benchmark"`
	Model     string `json:"model"`
	Total     int    `json:"total_pairs"`
	Certified int    `json:"certified"`
}

// CorpusBaseline is the progen-corpus repair measurement: Programs fixed
// seeds (0..Programs-1) repaired under EC. The anomaly totals are
// deterministic and machine-independent — the drift gate compares them —
// while WallMs, RepairsPerSec, and TotalAllocs are informational like
// every other wall-clock column.
type CorpusBaseline struct {
	Programs       int     `json:"programs"`
	WallMs         float64 `json:"wall_ms"`
	RepairsPerSec  float64 `json:"repairs_per_sec"`
	TotalAllocs    uint64  `json:"total_allocs"`
	TotalInitial   int     `json:"total_initial_anomalies"`
	TotalRemaining int     `json:"total_remaining_anomalies"`
}

// corpusPrograms is the fixed corpus size; seeds are 0..corpusPrograms-1.
const corpusPrograms = 32

// Table1Baseline is the corpus-wide pipeline wall clock.
type Table1Baseline struct {
	SequentialMs float64 `json:"sequential_ms"`
	ParallelMs   float64 `json:"parallel_ms"`
	SpeedupX     float64 `json:"speedup_x"`
}

// PanelBaseline is one benchmark's Fig. 12 panel: the wall clock of the
// whole panel (repair + row migration + its four deployment simulations,
// run at the recorded parallelism) and the simulated metrics per series.
// SimWallMs covers only the four deployment simulations; SimTxnsPerSec is
// the simulator's own throughput (simulated committed transactions per
// wall-clock second) — informational, like every wall-clock column: the
// drift gate never compares it.
type PanelBaseline struct {
	Benchmark     string           `json:"benchmark"`
	Topology      string           `json:"topology"`
	Clients       int              `json:"clients"`
	WallMs        float64          `json:"wall_ms"`
	SimWallMs     float64          `json:"sim_wall_ms"`
	SimTxns       int64            `json:"sim_txns"`
	SimTxnsPerSec float64          `json:"sim_txns_per_sec"`
	Series        []SeriesBaseline `json:"series"`
}

// SeriesBaseline is one deployment's simulated measurement (the figure's
// y-axes — virtual time, machine-independent).
type SeriesBaseline struct {
	Series     string  `json:"series"` // EC, AT-EC, SC, AT-SC
	Throughput float64 `json:"txn_per_s"`
	MeanMs     float64 `json:"mean_latency_ms"`
	P95Ms      float64 `json:"p95_latency_ms"`
}

func (c BaselineConfig) orDefault() BaselineConfig {
	if c.Duration == 0 {
		c.Duration = 2 * time.Second
	}
	if c.Clients == 0 {
		c.Clients = 50
	}
	return c
}

// RunBaseline measures the full baseline snapshot.
func RunBaseline(cfg BaselineConfig) (*Baseline, error) {
	cfg = cfg.orDefault()
	out := &Baseline{
		GoVersion:       runtime.Version(),
		MaxProcs:        runtime.GOMAXPROCS(0),
		Parallelism:     Workers(cfg.Parallelism),
		Incremental:     !cfg.NonIncremental,
		PanelDurationMs: ms(cfg.Duration),
	}

	// Per-benchmark repair wall time (Table 1's Time column). Programs are
	// parsed up front so the numbers measure analysis+repair, not parsing.
	// Repairs run at parallelism 1 so the SAT-query counters are
	// deterministic and machine-independent (the drift gate compares them).
	all := benchmarks.All()
	for _, b := range all {
		if _, err := b.Program(); err != nil {
			return nil, err
		}
	}
	for _, b := range all {
		prog, _ := b.Program()
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		start := time.Now()
		// Parallelism pinned to 1: SATSolved and CacheHitRate are
		// drift-gated, and only sequential detection keeps them exact
		// (concurrent workers shift which query populates a cache key).
		rep, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: !cfg.NonIncremental, Parallelism: 1})
		if err != nil {
			return nil, err
		}
		wall := time.Since(start)
		runtime.ReadMemStats(&after)
		out.Repairs = append(out.Repairs, RepairBaseline{
			Benchmark:       b.Name,
			WallMs:          ms(wall),
			Initial:         len(rep.Initial),
			Remaining:       len(rep.Remaining),
			SATQueries:      rep.Stats.Queries,
			SATSolved:       rep.Stats.Solved + rep.Stats.Replayed,
			CacheHitRate:    rep.Stats.CacheHitRate(),
			AllocsPerRepair: after.Mallocs - before.Mallocs,
			BytesPerRepair:  after.TotalAlloc - before.TotalAlloc,
		})
	}
	// Witness-replay certificates: certified/total per benchmark × weak
	// model. Deterministic and machine-independent, so the drift gate
	// compares them alongside the anomaly counts.
	certRows, err := CertifyGrid(all, 1)
	if err != nil {
		return nil, err
	}
	for _, r := range certRows {
		out.Certificates = append(out.Certificates, CertBaseline{
			Benchmark: r.Benchmark, Model: r.Model.String(),
			Total: r.Total, Certified: r.Certified,
		})
	}
	// Corpus repair throughput: generated programs at fixed seeds, repaired
	// back to back. Programs are generated up front so the measurement
	// covers repair, not generation.
	corpus := make([]*ast.Program, corpusPrograms)
	for i := range corpus {
		corpus[i] = progen.Program(int64(i))
	}
	var cBefore, cAfter runtime.MemStats
	runtime.ReadMemStats(&cBefore)
	corpusStart := time.Now()
	for _, p := range corpus {
		// Sequential detection, as above: the corpus anomaly totals are
		// drift-gated.
		rep, err := repair.RepairWith(p, anomaly.EC, repair.Options{Incremental: !cfg.NonIncremental, Parallelism: 1})
		if err != nil {
			return nil, err
		}
		out.Corpus.TotalInitial += len(rep.Initial)
		out.Corpus.TotalRemaining += len(rep.Remaining)
	}
	corpusWall := time.Since(corpusStart)
	runtime.ReadMemStats(&cAfter)
	out.Corpus.Programs = corpusPrograms
	out.Corpus.WallMs = ms(corpusWall)
	out.Corpus.TotalAllocs = cAfter.Mallocs - cBefore.Mallocs
	if corpusWall > 0 {
		out.Corpus.RepairsPerSec = float64(corpusPrograms) / corpusWall.Seconds()
	}

	// Service load test: concurrent HTTP clients against the in-process
	// engine. Runs in counts-only mode too — its request and anomaly totals
	// are deterministic, so the drift gate compares them.
	svc, err := RunLoad(LoadConfig{
		Clients:           cfg.ServiceClients,
		RequestsPerClient: cfg.ServiceRequests,
	})
	if err != nil {
		return nil, err
	}
	out.Service = svc

	// Chaos panel: violation counts per benchmark × fault scenario ×
	// deployment. The sweep runs at the chaos harness's own fixed sizing —
	// deliberately independent of cfg.Duration, so drift runs at any
	// -duration compare equal against the committed snapshot.
	chaos, err := RunChaos(ChaosConfig{
		Seed:           cfg.Seed,
		Parallelism:    cfg.Parallelism,
		NonIncremental: cfg.NonIncremental,
	})
	if err != nil {
		return nil, err
	}
	out.Chaos = chaos.Rows

	// Service-chaos panel: scripted daemon-side faults against one live
	// engine. The script fixes every request's fate, so all counters are
	// exact and drift-gated.
	sc, err := RunServiceChaos(ServiceChaosConfig{})
	if err != nil {
		return nil, err
	}
	out.ServiceChaos = sc

	if cfg.CountsOnly {
		return out, nil
	}

	// Corpus pipeline wall clock, sequential vs parallel.
	start := time.Now()
	if _, err := Table1(all, WithParallelism(1)); err != nil {
		return nil, err
	}
	seq := time.Since(start)
	start = time.Now()
	if _, err := Table1(all, WithParallelism(cfg.Parallelism)); err != nil {
		return nil, err
	}
	par := time.Since(start)
	out.Table1 = Table1Baseline{
		SequentialMs: ms(seq),
		ParallelMs:   ms(par),
		SpeedupX:     seq.Seconds() / par.Seconds(),
	}

	// Fig. 12 panel points (US cluster, one load level, all four series).
	for _, b := range []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.SEATS, benchmarks.TPCC} {
		start := time.Now()
		res, err := Perf(PerfConfig{
			Benchmark:      b,
			Topology:       cluster.USCluster,
			ClientCounts:   []int{cfg.Clients},
			Duration:       cfg.Duration,
			Warmup:         cfg.Duration / 10,
			Seed:           cfg.Seed,
			Parallelism:    cfg.Parallelism,
			NonIncremental: cfg.NonIncremental,
		})
		if err != nil {
			return nil, err
		}
		panel := PanelBaseline{
			Benchmark: b.Name,
			Topology:  res.Topology,
			Clients:   cfg.Clients,
			WallMs:    ms(time.Since(start)),
			SimWallMs: ms(res.SimWall),
			SimTxns:   res.Committed,
		}
		if res.SimWall > 0 {
			panel.SimTxnsPerSec = float64(res.Committed) / res.SimWall.Seconds()
		}
		for _, s := range res.Series {
			p := s.Points[0]
			panel.Series = append(panel.Series, SeriesBaseline{
				Series:     s.Label,
				Throughput: p.Throughput,
				MeanMs:     p.MeanMs,
				P95Ms:      p.P95Ms,
			})
		}
		out.Panels = append(out.Panels, panel)
	}
	return out, nil
}

// JSON renders the snapshot in the BENCH_baseline.json layout.
func (b *Baseline) JSON() ([]byte, error) {
	buf, err := json.MarshalIndent(b, "", "  ")
	if err != nil {
		return nil, err
	}
	return append(buf, '\n'), nil
}

func ms(d time.Duration) float64 { return float64(d.Microseconds()) / 1000 }
