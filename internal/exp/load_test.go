package exp

import "testing"

// TestRunLoadSmoke drives a small in-process service load test end to end:
// every request must be served (429s absorbed by retry, zero drops), the
// anomaly totals must be reported, and the engine must drain cleanly.
func TestRunLoadSmoke(t *testing.T) {
	res, err := RunLoad(LoadConfig{Clients: 8, RequestsPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	if res.Requests != 16 || res.Completed != 16 || res.Errors != 0 {
		t.Fatalf("requests/completed/errors = %d/%d/%d, want 16/16/0",
			res.Requests, res.Completed, res.Errors)
	}
	if res.TotalInitial <= 0 {
		t.Fatal("no anomalies reported across the progen corpus")
	}
	if res.TotalRemaining >= res.TotalInitial {
		t.Fatalf("repairs removed nothing: initial %d, remaining %d",
			res.TotalInitial, res.TotalRemaining)
	}
	// Each client's second request reuses its cached session.
	if res.SessionHitRate <= 0 {
		t.Fatalf("session hit rate = %v, want > 0", res.SessionHitRate)
	}
	st := res.Stats
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("engine did not drain: %+v", st)
	}
	// Admission accounting must balance: each served request completes once
	// on the engine, and every client-side 429 retry matches one rejection.
	if st.Completed != int64(res.Completed) || st.Rejected != int64(res.Retried429) {
		t.Fatalf("admission imbalance: %+v vs %+v", st, res)
	}
	if res.P50Ms <= 0 || res.P99Ms < res.P50Ms {
		t.Fatalf("percentiles: p50 %v p99 %v", res.P50Ms, res.P99Ms)
	}
}

// TestRunLoadDeterministicCounts: the anomaly totals are a pure function of
// the client count (progen seeds 1..N), independent of scheduling — two
// runs must agree. This is the property the drift gate leans on.
func TestRunLoadDeterministicCounts(t *testing.T) {
	a, err := RunLoad(LoadConfig{Clients: 4, RequestsPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunLoad(LoadConfig{Clients: 4, RequestsPerClient: 2})
	if err != nil {
		t.Fatal(err)
	}
	if a.TotalInitial != b.TotalInitial || a.TotalRemaining != b.TotalRemaining {
		t.Fatalf("totals differ across runs: %d/%d vs %d/%d",
			a.TotalInitial, a.TotalRemaining, b.TotalInitial, b.TotalRemaining)
	}
}
