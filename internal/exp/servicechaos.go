package exp

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/engine"
	"atropos/internal/repair"
	"atropos/internal/sat"
)

// This file is the service-chaos harness (the daemon-side twin of the
// cluster fault panel in chaos.go): a scripted sequence of injected service
// faults — worker stalls, queue overflow, stale-waiter sheds, budget-
// exhausting solves, a handler panic — driven against one live engine
// through its instrumentation hooks (engine.Hooks). Every phase is
// deterministic by construction: faults fire on named chaos clients at
// scripted points, not on timers racing real work, so the resulting
// admission/degradation counters are exact integers the drift gate pins in
// BENCH_baseline.json. ServiceChaosGate then asserts the robustness
// headline: every accepted request completes or degrades within its
// deadline, overload sheds instead of stalling, repeated exhaustion trips
// the client's breaker, a panic is contained, and the engine drains back to
// a clean steady state.

// chaosWatchdog bounds every wait in the harness: a request or phase
// transition that has not happened by then is reported as a stuck-service
// gate failure rather than hanging the run.
const chaosWatchdog = 30 * time.Second

// ServiceChaosConfig sizes the harness. The zero value is the committed
// panel: 2 workers, 2 queue slots, a 400ms queue-wait ceiling, a
// 3-strike breaker.
type ServiceChaosConfig struct {
	Workers      int
	QueueDepth   int
	MaxQueueWait time.Duration
	BreakerTrip  int
}

func (c ServiceChaosConfig) orDefault() ServiceChaosConfig {
	if c.Workers <= 0 {
		c.Workers = 2
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 2
	}
	if c.MaxQueueWait <= 0 {
		// Wide enough that the scripted queue-full burst (microseconds after
		// the queue fills) always lands before the shed timer fires.
		c.MaxQueueWait = 400 * time.Millisecond
	}
	if c.BreakerTrip <= 0 {
		c.BreakerTrip = 3
	}
	return c
}

// ServiceChaosResult is one harness run. Every field is a deterministic
// count (the drift gate compares all of them); Wall is informational.
type ServiceChaosResult struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// Stall phase: requests held mid-execution until released, then run to
	// completion — slots stall but never leak.
	StallCompleted int `json:"stall_completed"`
	// Overload phase: immediate queue-full rejections during the stall, and
	// queued waiters shed at the queue-wait ceiling.
	QueueRejected int `json:"queue_rejected"`
	QueueShed     int `json:"queue_shed"`
	// Breaker phase: consecutive budget-exhausted (degraded) analyses from
	// one client, the unknown pairs they reported, and the fast-fails after
	// the circuit opened.
	BreakerDegraded  int   `json:"breaker_degraded"`
	BreakerUnknown   int   `json:"breaker_unknown"`
	BreakerTrips     int64 `json:"breaker_trips"`
	BreakerFastFails int   `json:"breaker_fast_fails"`
	// Panic phase: injected handler panics and how many came back as
	// contained errors.
	PanicsInjected  int `json:"panics_injected"`
	PanicsRecovered int `json:"panics_recovered"`
	// Recovery phase: clean requests after all faults, none degraded.
	RecoveryCompleted int `json:"recovery_completed"`
	RecoveryDegraded  int `json:"recovery_degraded"`
	// Final engine counters (deterministic: the script fixes every request's
	// fate) and the steady-state gauges.
	EngineCompleted   int64 `json:"engine_completed"`
	EngineRejected    int64 `json:"engine_rejected"`
	EngineShed        int64 `json:"engine_shed"`
	EngineDegraded    int64 `json:"engine_degraded"`
	EngineExhaustions int64 `json:"engine_exhaustions"`
	FinalInFlight     int   `json:"final_in_flight"`
	FinalQueued       int   `json:"final_queued"`
	BreakerOpen       int   `json:"breaker_open"`

	Wall time.Duration `json:"-"`
}

// Chaos client names; the Exec hook keys its faults off them.
const (
	chaosStall = "chaos-stall"
	chaosQueue = "chaos-queued"
	chaosBurst = "chaos-burst"
	chaosBad   = "chaos-bad"
	chaosBoom  = "chaos-boom"
	chaosOK    = "chaos-ok"
)

// waitUntil polls cond every millisecond up to the watchdog bound.
func waitUntil(cond func() bool) bool {
	deadline := time.Now().Add(chaosWatchdog)
	for time.Now().Before(deadline) {
		if cond() {
			return true
		}
		time.Sleep(time.Millisecond)
	}
	return cond()
}

type chaosOutcome struct {
	degraded bool
	err      error
}

// RunServiceChaos runs the scripted fault sequence against a fresh engine.
func RunServiceChaos(cfg ServiceChaosConfig) (*ServiceChaosResult, error) {
	cfg = cfg.orDefault()
	start := time.Now()
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		return nil, err
	}
	res := &ServiceChaosResult{Workers: cfg.Workers, QueueDepth: cfg.QueueDepth}

	// The fault injectors: stall requests block on the gate until phase 1
	// releases them; boom requests panic inside their worker slot.
	gate := make(chan struct{})
	eng := engine.New(engine.Config{
		Workers:      cfg.Workers,
		QueueDepth:   cfg.QueueDepth,
		MaxQueueWait: cfg.MaxQueueWait,
		BreakerTrip:  cfg.BreakerTrip,
		// The breaker must still be open at the final snapshot, so the
		// cooldown outlives the run by construction.
		BreakerCooldown: time.Hour,
		Hooks: &engine.Hooks{Exec: func(verb, client string) {
			switch client {
			case chaosStall:
				<-gate
			case chaosBoom:
				panic("servicechaos: injected handler panic")
			}
		}},
	})
	analyze := func(client string, opts ...repair.Option) (*anomaly.Report, error) {
		ctx, cancel := context.WithTimeout(context.Background(), chaosWatchdog)
		defer cancel()
		opts = append([]repair.Option{repair.Client(client), repair.Incremental(false)}, opts...)
		return eng.Analyze(ctx, prog, anomaly.EC, opts...)
	}

	// Phase 1 — stall + overload: fill every worker slot with stalled
	// requests, fill the queue with waiters, then measure both overload
	// answers: immediate rejection while the queue is full, and the
	// queue-wait shed of the stale waiters. Releasing the gate must complete
	// every stalled request — slots stall, they do not leak.
	stallDone := make(chan chaosOutcome, cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go func() {
			rep, err := analyze(chaosStall)
			stallDone <- chaosOutcome{err: err, degraded: err == nil && rep.Degraded}
		}()
	}
	if !waitUntil(func() bool { return eng.Stats().InFlight == cfg.Workers }) {
		return nil, fmt.Errorf("servicechaos: stalled requests never occupied all %d workers", cfg.Workers)
	}
	queueDone := make(chan chaosOutcome, cfg.QueueDepth)
	for i := 0; i < cfg.QueueDepth; i++ {
		go func() {
			_, err := analyze(chaosQueue)
			queueDone <- chaosOutcome{err: err}
		}()
	}
	if !waitUntil(func() bool { return eng.Stats().Queued == cfg.QueueDepth }) {
		return nil, fmt.Errorf("servicechaos: waiters never filled the %d-deep queue", cfg.QueueDepth)
	}
	for i := 0; i < 3; i++ {
		_, err := analyze(chaosBurst)
		switch {
		case errors.Is(err, engine.ErrOverloaded):
			res.QueueRejected++
		case err == nil:
			return nil, fmt.Errorf("servicechaos: burst request admitted with workers stalled and queue full")
		default:
			return nil, fmt.Errorf("servicechaos: burst request: %w", err)
		}
	}
	for i := 0; i < cfg.QueueDepth; i++ {
		select {
		case o := <-queueDone:
			if errors.Is(o.err, engine.ErrOverloaded) {
				res.QueueShed++
			} else {
				return nil, fmt.Errorf("servicechaos: queued waiter returned %v, want shed", o.err)
			}
		case <-time.After(chaosWatchdog):
			return nil, fmt.Errorf("servicechaos: queued waiter stuck past the queue-wait ceiling")
		}
	}
	close(gate)
	for i := 0; i < cfg.Workers; i++ {
		select {
		case o := <-stallDone:
			if o.err != nil {
				return nil, fmt.Errorf("servicechaos: stalled request failed after release: %w", o.err)
			}
			res.StallCompleted++
		case <-time.After(chaosWatchdog):
			return nil, fmt.Errorf("servicechaos: stalled request stuck after release")
		}
	}

	// Phase 2 — slow solver: one client's analyses run under a starvation
	// budget (one propagation per solve), so every report degrades; the
	// BreakerTrip-th consecutive degradation opens its circuit and further
	// requests fast-fail without touching a worker slot.
	for i := 0; i < cfg.BreakerTrip; i++ {
		rep, err := analyze(chaosBad, repair.SolveBudget(sat.Budget{Propagations: 1}))
		if err != nil {
			return nil, fmt.Errorf("servicechaos: budgeted analyze %d: %w", i, err)
		}
		if rep.Degraded {
			res.BreakerDegraded++
			res.BreakerUnknown += rep.Unknown
		}
	}
	for i := 0; i < 2; i++ {
		_, err := analyze(chaosBad, repair.SolveBudget(sat.Budget{Propagations: 1}))
		if errors.Is(err, engine.ErrCircuitOpen) {
			res.BreakerFastFails++
		} else {
			return nil, fmt.Errorf("servicechaos: post-trip request returned %v, want open circuit", err)
		}
	}

	// Phase 3 — poisoned request: the hook panics inside the worker slot;
	// the guard must contain it as an error and keep the engine serving.
	res.PanicsInjected = 1
	if _, err := analyze(chaosBoom); err != nil && strings.Contains(err.Error(), "internal panic") {
		res.PanicsRecovered++
	}

	// Phase 4 — recovery: clean requests from a fresh client all complete
	// undegraded, and the engine has drained to steady state.
	for i := 0; i < 4; i++ {
		rep, err := analyze(chaosOK)
		if err != nil {
			return nil, fmt.Errorf("servicechaos: recovery analyze %d: %w", i, err)
		}
		res.RecoveryCompleted++
		if rep.Degraded {
			res.RecoveryDegraded++
		}
	}

	st := eng.Stats()
	res.EngineCompleted = st.Completed
	res.EngineRejected = st.Rejected
	res.EngineShed = st.Shed
	res.EngineDegraded = st.Degraded
	res.EngineExhaustions = st.BudgetExhaustions
	res.BreakerTrips = st.BreakerTrips
	res.FinalInFlight = st.InFlight
	res.FinalQueued = st.Queued
	res.BreakerOpen = st.BreakerOpen
	res.Wall = time.Since(start)
	return res, nil
}

// ServiceChaosGate checks the harness's robustness claims, returning one
// message per failure (empty means the gate passes).
func ServiceChaosGate(r *ServiceChaosResult) []string {
	var fails []string
	check := func(ok bool, format string, args ...any) {
		if !ok {
			fails = append(fails, fmt.Sprintf(format, args...))
		}
	}
	check(r.StallCompleted == r.Workers,
		"stalled requests completed = %d, want %d (stalled slots must drain, not leak)", r.StallCompleted, r.Workers)
	check(r.QueueRejected == 3,
		"queue-full rejections = %d, want 3", r.QueueRejected)
	check(r.QueueShed == r.QueueDepth,
		"shed waiters = %d, want %d (stale waiters must be shed at the ceiling)", r.QueueShed, r.QueueDepth)
	check(r.BreakerDegraded >= 1 && r.BreakerUnknown >= 1,
		"budgeted analyses degraded %d time(s) with %d unknown pair(s); want both >= 1", r.BreakerDegraded, r.BreakerUnknown)
	check(r.BreakerTrips == 1,
		"breaker trips = %d, want exactly 1", r.BreakerTrips)
	check(r.BreakerFastFails == 2,
		"breaker fast-fails = %d, want 2", r.BreakerFastFails)
	check(r.PanicsRecovered == r.PanicsInjected,
		"panics recovered = %d of %d injected", r.PanicsRecovered, r.PanicsInjected)
	check(r.RecoveryCompleted == 4 && r.RecoveryDegraded == 0,
		"recovery: %d completed (%d degraded), want 4 clean", r.RecoveryCompleted, r.RecoveryDegraded)
	check(r.FinalInFlight == 0 && r.FinalQueued == 0,
		"engine not drained: in_flight=%d queued=%d", r.FinalInFlight, r.FinalQueued)
	check(r.BreakerOpen == 1,
		"open breakers = %d, want 1 (the tripped client's)", r.BreakerOpen)
	check(r.EngineExhaustions >= 1,
		"engine recorded %d budget exhaustions, want >= 1", r.EngineExhaustions)
	return fails
}

// Format renders the run as the EXPERIMENTS.md service-chaos panel block.
func (r *ServiceChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== service chaos (%d workers, %d queue slots, %.0f ms wall) ===\n",
		r.Workers, r.QueueDepth, float64(r.Wall)/float64(time.Millisecond))
	fmt.Fprintf(&b, "stall:    %d/%d stalled requests completed after release\n", r.StallCompleted, r.Workers)
	fmt.Fprintf(&b, "overload: %d queue-full rejections, %d stale waiters shed\n", r.QueueRejected, r.QueueShed)
	fmt.Fprintf(&b, "breaker:  %d degraded (%d unknown pairs, %d exhausted solves) -> %d trip(s), %d fast-fail(s)\n",
		r.BreakerDegraded, r.BreakerUnknown, r.EngineExhaustions, r.BreakerTrips, r.BreakerFastFails)
	fmt.Fprintf(&b, "panic:    %d/%d contained\n", r.PanicsRecovered, r.PanicsInjected)
	fmt.Fprintf(&b, "recovery: %d clean completions, %d degraded; in_flight=%d queued=%d open_breakers=%d\n",
		r.RecoveryCompleted, r.RecoveryDegraded, r.FinalInFlight, r.FinalQueued, r.BreakerOpen)
	return b.String()
}
