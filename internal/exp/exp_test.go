package exp

import (
	"strings"
	"testing"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
)

func TestTable1SmallCorpus(t *testing.T) {
	rows, err := Table1([]*benchmarks.Benchmark{benchmarks.SIBench, benchmarks.Courseware})
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	si := rows[0]
	if si.Benchmark != "SIBench" || si.EC != 1 || si.AT != 0 {
		t.Errorf("SIBench row = %+v, want EC=1 AT=0", si)
	}
	cw := rows[1]
	if cw.AT != 0 {
		t.Errorf("Courseware AT = %d, want 0 (fully repaired)", cw.AT)
	}
	if cw.EC <= 0 {
		t.Errorf("Courseware EC = %d, want > 0", cw.EC)
	}
	if cw.CC > cw.EC || cw.RR > cw.EC {
		t.Errorf("weaker models exceed EC: %+v", cw)
	}
	text := FormatTable1(rows)
	if !strings.Contains(text, "SIBench") || !strings.Contains(text, "repaired:") {
		t.Errorf("FormatTable1 output malformed:\n%s", text)
	}
}

func TestPerfPanelShape(t *testing.T) {
	res, err := Perf(PerfConfig{
		Benchmark:    benchmarks.SmallBank,
		Topology:     cluster.USCluster,
		ClientCounts: []int{16, 48},
		Duration:     3 * time.Second,
		Warmup:       300 * time.Millisecond,
		Seed:         3,
	})
	if err != nil {
		t.Fatalf("Perf: %v", err)
	}
	if len(res.Series) != 4 {
		t.Fatalf("series = %d, want 4 (EC, AT-EC, SC, AT-SC)", len(res.Series))
	}
	byLabel := map[string][]float64{}
	for _, s := range res.Series {
		if len(s.Points) != 2 {
			t.Fatalf("%s has %d points", s.Label, len(s.Points))
		}
		for _, p := range s.Points {
			byLabel[s.Label] = append(byLabel[s.Label], p.Throughput)
		}
	}
	// The paper's ordering at load: EC ≈ AT-EC > AT-SC > SC.
	last := func(label string) float64 { return byLabel[label][1] }
	if !(last("EC") > last("SC")) {
		t.Errorf("EC (%.0f) not above SC (%.0f)", last("EC"), last("SC"))
	}
	if !(last("AT-EC") > last("SC")) {
		t.Errorf("AT-EC (%.0f) not above SC (%.0f)", last("AT-EC"), last("SC"))
	}
	if !(last("AT-SC") > last("SC")) {
		t.Errorf("AT-SC (%.0f) not above SC (%.0f): repair must buy throughput", last("AT-SC"), last("SC"))
	}
	t.Logf("\n%s", res.Format())
}

func TestMigrateRowsRoundTrip(t *testing.T) {
	// Migrating with no correspondences reproduces the same row set for an
	// unchanged program.
	b := benchmarks.SIBench
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	rows := b.Rows(benchmarks.Scale{Records: 5})
	out, err := MigrateRows(prog, prog, nil, rows)
	if err != nil {
		t.Fatalf("MigrateRows: %v", err)
	}
	if len(out) != len(rows) {
		t.Fatalf("migrated %d rows, want %d", len(out), len(rows))
	}
}

func TestFig16RandomWorseThanAtropos(t *testing.T) {
	res, err := Fig16(benchmarks.Courseware, 6, 4, 99)
	if err != nil {
		t.Fatalf("Fig16: %v", err)
	}
	if res.Atropos != 0 {
		t.Errorf("Atropos anomalies = %d, want 0 on Courseware", res.Atropos)
	}
	if len(res.Points) != 6 {
		t.Fatalf("points = %d", len(res.Points))
	}
	// The vast majority of random rounds must not beat the oracle-guided
	// repair (App. A.3's finding).
	atOrBelow := 0
	for _, p := range res.Points {
		if p.Anomalies <= res.Atropos {
			atOrBelow++
		}
	}
	if atOrBelow > len(res.Points)/2 {
		t.Errorf("%d/%d random rounds matched Atropos; random search should rarely win", atOrBelow, len(res.Points))
	}
	t.Logf("\n%s", res.Format())
}

func TestInvariantsExperiment(t *testing.T) {
	res, err := Invariants(25, 5)
	if err != nil {
		t.Fatalf("Invariants: %v", err)
	}
	if res.Original.ViolatedCount() != 3 {
		t.Errorf("original violates %d invariants, want 3", res.Original.ViolatedCount())
	}
	if res.Repaired.ViolatedCount() >= res.Original.ViolatedCount() {
		t.Errorf("repair did not reduce invariant violations: %d -> %d",
			res.Original.ViolatedCount(), res.Repaired.ViolatedCount())
	}
	if res.Repaired.Violations[1] != 0 {
		t.Errorf("deposit-history invariant still violated after repair")
	}
	t.Logf("\n%s", res.Format())
}

func TestSummaryAggregates(t *testing.T) {
	t1, err := Table1([]*benchmarks.Benchmark{benchmarks.SIBench, benchmarks.Courseware, benchmarks.SmallBank})
	if err != nil {
		t.Fatal(err)
	}
	s, err := Summary(t1, 48, 3*time.Second, 17)
	if err != nil {
		t.Fatalf("Summary: %v", err)
	}
	if s.AvgRepairedPct < 50 {
		t.Errorf("avg repaired %.0f%%, want a majority repaired", s.AvgRepairedPct)
	}
	if s.ThroughputGainPct <= 0 {
		t.Errorf("AT-SC throughput gain %.0f%%, want positive", s.ThroughputGainPct)
	}
	if s.LatencyDropPct <= 0 {
		t.Errorf("AT-SC latency drop %.0f%%, want positive", s.LatencyDropPct)
	}
	t.Logf("\n%s", s.Format())
}
