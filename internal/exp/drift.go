package exp

import (
	"encoding/json"
	"fmt"
	"os"
)

// This file implements the CI perf-drift gate: a fresh counts-only baseline
// run is compared against the committed BENCH_baseline.json on the count
// columns only — anomaly and SAT-query counts are deterministic and
// machine-independent, wall-clock numbers are not and are never compared.

// LoadBaseline reads a committed baseline snapshot.
func LoadBaseline(path string) (*Baseline, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var b Baseline
	if err := json.Unmarshal(buf, &b); err != nil {
		return nil, fmt.Errorf("exp: %s: %w", path, err)
	}
	return &b, nil
}

// CountDrift compares the machine-independent count columns of a fresh
// baseline run (got) against the committed snapshot (want), returning one
// message per divergence; empty means no drift. Wall-clock fields are
// deliberately ignored.
func CountDrift(got, want *Baseline) []string {
	var drift []string
	// Anomaly counts are engine-independent (the incremental oracle is
	// equivalence-tested against the fresh one), so they are always
	// compared; SAT-query counts only when both runs used the same engine.
	// A mismatch is not itself drift — callers can warn about it.
	sameEngine := got.Incremental == want.Incremental
	wantBy := map[string]RepairBaseline{}
	for _, r := range want.Repairs {
		wantBy[r.Benchmark] = r
	}
	seen := map[string]bool{}
	for _, g := range got.Repairs {
		seen[g.Benchmark] = true
		w, ok := wantBy[g.Benchmark]
		if !ok {
			drift = append(drift, fmt.Sprintf("%s: missing from committed baseline", g.Benchmark))
			continue
		}
		check := func(field string, gv, wv int) {
			if gv != wv {
				drift = append(drift, fmt.Sprintf("%s: %s = %d, baseline %d", g.Benchmark, field, gv, wv))
			}
		}
		check("initial_anomalies", g.Initial, w.Initial)
		check("remaining_anomalies", g.Remaining, w.Remaining)
		if sameEngine {
			check("sat_queries", g.SATQueries, w.SATQueries)
			check("sat_solved", g.SATSolved, w.SATSolved)
		}
	}
	for _, w := range want.Repairs {
		if !seen[w.Benchmark] {
			drift = append(drift, fmt.Sprintf("%s: in committed baseline but not measured", w.Benchmark))
		}
	}
	// Certificate counts are deterministic replay outcomes; an absent
	// section marks a pre-certificate baseline, which is not itself drift.
	if len(want.Certificates) != 0 {
		type certKey struct{ bench, model string }
		gotC := map[certKey]CertBaseline{}
		for _, c := range got.Certificates {
			gotC[certKey{c.Benchmark, c.Model}] = c
		}
		for _, w := range want.Certificates {
			g, ok := gotC[certKey{w.Benchmark, w.Model}]
			if !ok {
				drift = append(drift, fmt.Sprintf("%s/%s: certificate in committed baseline but not measured", w.Benchmark, w.Model))
				continue
			}
			if g.Total != w.Total {
				drift = append(drift, fmt.Sprintf("%s/%s: certificate total_pairs = %d, baseline %d", w.Benchmark, w.Model, g.Total, w.Total))
			}
			if g.Certified != w.Certified {
				drift = append(drift, fmt.Sprintf("%s/%s: certified = %d, baseline %d", w.Benchmark, w.Model, g.Certified, w.Certified))
			}
			delete(gotC, certKey{w.Benchmark, w.Model})
		}
		for _, g := range got.Certificates {
			if _, extra := gotC[certKey{g.Benchmark, g.Model}]; extra {
				drift = append(drift, fmt.Sprintf("%s/%s: certificate missing from committed baseline", g.Benchmark, g.Model))
			}
		}
	}
	// Service load-test counts are deterministic: clients retry 429s until
	// served (so Completed == Requests on a healthy run) and each client's
	// program is a fixed progen seed. An absent section marks a pre-service
	// baseline, which is not itself drift. Latency and throughput columns
	// are wall clock and never compared.
	if want.Service != nil && want.Service.Requests != 0 && got.Service != nil {
		check := func(field string, gv, wv int) {
			if gv != wv {
				drift = append(drift, fmt.Sprintf("service: %s = %d, baseline %d", field, gv, wv))
			}
		}
		check("clients", got.Service.Clients, want.Service.Clients)
		check("requests", got.Service.Requests, want.Service.Requests)
		check("completed", got.Service.Completed, want.Service.Completed)
		check("errors", got.Service.Errors, want.Service.Errors)
		check("total_initial", got.Service.TotalInitial, want.Service.TotalInitial)
		check("total_remaining", got.Service.TotalRemaining, want.Service.TotalRemaining)
	}
	// Chaos rows are virtual-time deterministic end to end (fixed workload
	// seeds, fixed fault-plan seeds), so every column is compared. An
	// absent section marks a pre-chaos baseline, which is not itself drift.
	if len(want.Chaos) != 0 {
		type chaosKey struct{ bench, scenario, series string }
		gotC := map[chaosKey]ChaosRow{}
		for _, r := range got.Chaos {
			gotC[chaosKey{r.Benchmark, r.Scenario, r.Series}] = r
		}
		for _, w := range want.Chaos {
			k := chaosKey{w.Benchmark, w.Scenario, w.Series}
			g, ok := gotC[k]
			if !ok {
				drift = append(drift, fmt.Sprintf("chaos %s/%s/%s: in committed baseline but not measured", w.Benchmark, w.Scenario, w.Series))
				continue
			}
			if g.Committed != w.Committed {
				drift = append(drift, fmt.Sprintf("chaos %s/%s/%s: committed = %d, baseline %d", w.Benchmark, w.Scenario, w.Series, g.Committed, w.Committed))
			}
			if g.Violations != w.Violations {
				drift = append(drift, fmt.Sprintf("chaos %s/%s/%s: violations = %d, baseline %d", w.Benchmark, w.Scenario, w.Series, g.Violations, w.Violations))
			}
			if g.Residual != w.Residual {
				drift = append(drift, fmt.Sprintf("chaos %s/%s/%s: residual_violations = %d, baseline %d", w.Benchmark, w.Scenario, w.Series, g.Residual, w.Residual))
			}
			delete(gotC, k)
		}
		for _, g := range got.Chaos {
			if _, extra := gotC[chaosKey{g.Benchmark, g.Scenario, g.Series}]; extra {
				drift = append(drift, fmt.Sprintf("chaos %s/%s/%s: missing from committed baseline", g.Benchmark, g.Scenario, g.Series))
			}
		}
	}
	// Service-chaos counters are scripted-deterministic end to end, so every
	// count column is compared. An absent section marks a pre-service-chaos
	// baseline, which is not itself drift.
	if want.ServiceChaos != nil && got.ServiceChaos != nil {
		check := func(field string, gv, wv int64) {
			if gv != wv {
				drift = append(drift, fmt.Sprintf("service_chaos: %s = %d, baseline %d", field, gv, wv))
			}
		}
		g, w := got.ServiceChaos, want.ServiceChaos
		check("workers", int64(g.Workers), int64(w.Workers))
		check("queue_depth", int64(g.QueueDepth), int64(w.QueueDepth))
		check("stall_completed", int64(g.StallCompleted), int64(w.StallCompleted))
		check("queue_rejected", int64(g.QueueRejected), int64(w.QueueRejected))
		check("queue_shed", int64(g.QueueShed), int64(w.QueueShed))
		check("breaker_degraded", int64(g.BreakerDegraded), int64(w.BreakerDegraded))
		check("breaker_unknown", int64(g.BreakerUnknown), int64(w.BreakerUnknown))
		check("breaker_trips", g.BreakerTrips, w.BreakerTrips)
		check("breaker_fast_fails", int64(g.BreakerFastFails), int64(w.BreakerFastFails))
		check("panics_recovered", int64(g.PanicsRecovered), int64(w.PanicsRecovered))
		check("recovery_completed", int64(g.RecoveryCompleted), int64(w.RecoveryCompleted))
		check("recovery_degraded", int64(g.RecoveryDegraded), int64(w.RecoveryDegraded))
		check("engine_completed", g.EngineCompleted, w.EngineCompleted)
		check("engine_rejected", g.EngineRejected, w.EngineRejected)
		check("engine_shed", g.EngineShed, w.EngineShed)
		check("engine_degraded", g.EngineDegraded, w.EngineDegraded)
		check("engine_exhaustions", g.EngineExhaustions, w.EngineExhaustions)
		check("final_in_flight", int64(g.FinalInFlight), int64(w.FinalInFlight))
		check("final_queued", int64(g.FinalQueued), int64(w.FinalQueued))
		check("breaker_open", int64(g.BreakerOpen), int64(w.BreakerOpen))
	}
	// Corpus anomaly totals are deterministic (fixed progen seeds) and
	// engine-independent; a zero Programs count marks a pre-corpus
	// baseline, which is not itself drift.
	if want.Corpus.Programs != 0 {
		check := func(field string, gv, wv int) {
			if gv != wv {
				drift = append(drift, fmt.Sprintf("corpus: %s = %d, baseline %d", field, gv, wv))
			}
		}
		check("programs", got.Corpus.Programs, want.Corpus.Programs)
		check("total_initial_anomalies", got.Corpus.TotalInitial, want.Corpus.TotalInitial)
		check("total_remaining_anomalies", got.Corpus.TotalRemaining, want.Corpus.TotalRemaining)
	}
	return drift
}
