package exp

import (
	"fmt"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/repair"
	"atropos/internal/replay"
)

// The chaos harness (ROADMAP item 3): every benchmark runs under a panel
// of named deterministic fault scenarios (cluster.ChaosScenarios) in
// three deployments — EC (the unrepaired program on weak consistency),
// SC (the unrepaired program fully serialized, the control), and AT-SC
// (the repaired program, with only the repair's residual transactions
// serialized). Each run records per-command observations and
// replay.Violations counts the transaction instances sitting on an
// anomalous dependency cycle. The headline the chaos gate asserts:
// unrepaired EC programs exhibit violations under faults, repaired
// deployments exhibit zero on their repaired (EC-running) transactions.
// All counts are virtual-time deterministic, so the baseline's chaos
// section is drift-gated like every other count column.

// ChaosConfig sizes one chaos sweep.
type ChaosConfig struct {
	// Benchmarks to sweep; nil means all nine.
	Benchmarks []*benchmarks.Benchmark
	// Scenarios filters the panel by name; nil means the full panel.
	Scenarios []string
	// Clients is the load of each run (default 12).
	Clients int
	// Duration is measured virtual time per run (default 1.2s); Warmup
	// defaults to Duration/8.
	Duration time.Duration
	Warmup   time.Duration
	// Seed fixes the workloads (fault plans carry their own seeds).
	Seed int64
	// Parallelism bounds concurrent runs; <= 0 selects GOMAXPROCS.
	Parallelism int
	// NonIncremental disables the cached detection session in the
	// per-benchmark repairs.
	NonIncremental bool
}

// ChaosRow is one (benchmark, scenario, deployment) measurement. For the
// AT-SC series Violations counts only instances of repaired transactions
// (the ones the repair moved to EC — the guarantee under test), while
// Residual counts instances of the transactions the repair left
// serialized; for EC and SC every instance counts toward Violations.
type ChaosRow struct {
	Benchmark  string `json:"benchmark"`
	Scenario   string `json:"scenario"`
	Series     string `json:"series"`
	Committed  int64  `json:"committed"`
	Violations int    `json:"violations"`
	Residual   int    `json:"residual_violations,omitempty"`
}

// ChaosResult is one sweep's outcome.
type ChaosResult struct {
	Clients    int           `json:"clients"`
	DurationMs float64       `json:"duration_ms"`
	Rows       []ChaosRow    `json:"rows"`
	Wall       time.Duration `json:"-"`
}

func (c ChaosConfig) orDefault() ChaosConfig {
	if len(c.Benchmarks) == 0 {
		c.Benchmarks = benchmarks.All()
	}
	if c.Clients == 0 {
		c.Clients = 12
	}
	if c.Duration == 0 {
		c.Duration = 1200 * time.Millisecond
	}
	if c.Warmup == 0 {
		c.Warmup = c.Duration / 8
	}
	return c
}

// chaosVariant is one deployment of one benchmark's sweep.
type chaosVariant struct {
	label   string
	prog    *ast.Program
	rows    []benchmarks.TableRow
	mode    cluster.Mode
	serTxns map[string]bool
	// repairedOnly scopes the violation count to instances of
	// transactions outside serTxns (the AT-SC guarantee).
	repairedOnly bool
}

// RunChaos executes the sweep. Every run is independent and deterministic
// (virtual time, fixed seeds), so the grid fans out on a bounded pool and
// the counts are machine-independent.
func RunChaos(cfg ChaosConfig) (*ChaosResult, error) {
	cfg = cfg.orDefault()
	start := time.Now()
	horizon := (cfg.Warmup + cfg.Duration).Microseconds()
	scenarios := cluster.ChaosScenarios(horizon)
	if len(cfg.Scenarios) > 0 {
		keep := map[string]bool{}
		for _, s := range cfg.Scenarios {
			keep[s] = true
		}
		var filtered []cluster.Scenario
		for _, s := range scenarios {
			if keep[s.Name] {
				filtered = append(filtered, s)
			}
		}
		scenarios = filtered
	}
	scale := benchmarks.Scale{Records: 30}

	// Per-benchmark setup: repair once, migrate rows once.
	variants := make([][]chaosVariant, len(cfg.Benchmarks))
	for bi, b := range cfg.Benchmarks {
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		rep, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: !cfg.NonIncremental})
		if err != nil {
			return nil, err
		}
		rows := b.Rows(scale)
		atRows, err := MigrateRows(prog, rep.Program, rep.Corrs, rows)
		if err != nil {
			return nil, err
		}
		serializable := map[string]bool{}
		for _, t := range rep.SerializableTxns {
			serializable[t] = true
		}
		allSerializable := map[string]bool{}
		for _, t := range prog.Txns {
			allSerializable[t.Name] = true
		}
		variants[bi] = []chaosVariant{
			{label: "EC", prog: prog, rows: rows, mode: cluster.ModeEC},
			{label: "SC", prog: prog, rows: rows, mode: cluster.ModeSC, serTxns: allSerializable},
			{label: "AT-SC", prog: rep.Program, rows: atRows, mode: cluster.ModeATSC,
				serTxns: serializable, repairedOnly: true},
		}
	}

	nv, ns := 3, len(scenarios)
	rows := make([]ChaosRow, len(cfg.Benchmarks)*ns*nv)
	err := ForEach(Workers(cfg.Parallelism), len(rows), func(i int) error {
		bi, rest := i/(ns*nv), i%(ns*nv)
		si, vi := rest/nv, rest%nv
		b, sc, v := cfg.Benchmarks[bi], scenarios[si], variants[bi][vi]
		var obs cluster.Observation
		res, err := cluster.Run(cluster.Config{
			Program:          v.prog,
			Mix:              b.Mix,
			Scale:            scale,
			Rows:             v.rows,
			Topology:         cluster.USCluster,
			Clients:          cfg.Clients,
			Duration:         cfg.Duration,
			Warmup:           cfg.Warmup,
			Seed:             cfg.Seed + int64(bi+1)*1000 + int64(si+1)*10,
			Mode:             v.mode,
			SerializableTxns: v.serTxns,
			Faults:           sc.Plan,
			Observe:          &obs,
		})
		if err != nil {
			return fmt.Errorf("chaos: %s/%s/%s: %w", b.Name, sc.Name, v.label, err)
		}
		row := ChaosRow{Benchmark: b.Name, Scenario: sc.Name, Series: v.label, Committed: res.Committed}
		for _, inst := range replay.Violations(obs.Obs) {
			if v.repairedOnly && v.serTxns[obs.Txns[inst]] {
				row.Residual++
			} else {
				row.Violations++
			}
		}
		rows[i] = row
		return nil
	})
	if err != nil {
		return nil, err
	}
	return &ChaosResult{
		Clients:    cfg.Clients,
		DurationMs: ms(cfg.Duration),
		Rows:       rows,
		Wall:       time.Since(start),
	}, nil
}

// ChaosGate checks the sweep's headline claims, returning one message per
// failure (empty means the gate passes): every AT-SC row shows zero
// violations on repaired transactions, every SC control row shows zero,
// and at least one EC row under an actual fault scenario shows a
// violation (so the panel is not vacuously quiet).
func ChaosGate(rows []ChaosRow) []string {
	var fails []string
	faultedEC := 0
	for _, r := range rows {
		switch r.Series {
		case "AT-SC":
			if r.Violations > 0 {
				fails = append(fails, fmt.Sprintf(
					"%s/%s: repaired program shows %d violation(s) on repaired transactions",
					r.Benchmark, r.Scenario, r.Violations))
			}
		case "SC":
			if r.Violations > 0 {
				fails = append(fails, fmt.Sprintf(
					"%s/%s: serializable control shows %d violation(s)",
					r.Benchmark, r.Scenario, r.Violations))
			}
		case "EC":
			if r.Scenario != "clean" && r.Violations > 0 {
				faultedEC++
			}
		}
	}
	if faultedEC == 0 {
		fails = append(fails, "no unrepaired benchmark showed violations under the fault panel")
	}
	return fails
}

// Format renders the sweep as a violations table, one benchmark block per
// scenario column set (the EXPERIMENTS.md chaos table).
func (r *ChaosResult) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== chaos panel (%d clients, %.0f ms virtual per run) ===\n", r.Clients, r.DurationMs)
	scenarios := []string{}
	seen := map[string]bool{}
	for _, row := range r.Rows {
		if !seen[row.Scenario] {
			seen[row.Scenario] = true
			scenarios = append(scenarios, row.Scenario)
		}
	}
	byKey := map[string]ChaosRow{}
	benchOrder := []string{}
	seenB := map[string]bool{}
	for _, row := range r.Rows {
		byKey[row.Benchmark+"/"+row.Scenario+"/"+row.Series] = row
		if !seenB[row.Benchmark] {
			seenB[row.Benchmark] = true
			benchOrder = append(benchOrder, row.Benchmark)
		}
	}
	fmt.Fprintf(&b, "%-12s %-8s", "benchmark", "series")
	for _, s := range scenarios {
		fmt.Fprintf(&b, " %16s", s)
	}
	b.WriteString("\n")
	for _, bench := range benchOrder {
		for _, series := range []string{"EC", "SC", "AT-SC"} {
			fmt.Fprintf(&b, "%-12s %-8s", bench, series)
			for _, s := range scenarios {
				row, ok := byKey[bench+"/"+s+"/"+series]
				if !ok {
					fmt.Fprintf(&b, " %16s", "-")
					continue
				}
				cell := fmt.Sprintf("%d", row.Violations)
				if row.Residual > 0 {
					cell += fmt.Sprintf("(+%dr)", row.Residual)
				}
				cell += fmt.Sprintf("/%d", row.Committed)
				fmt.Fprintf(&b, " %16s", cell)
			}
			b.WriteString("\n")
		}
	}
	return b.String()
}
