package exp

import (
	"testing"

	"atropos/internal/benchmarks"
)

// goldenTable1 pins the Table 1 reproduction: anomalous access pairs per
// consistency model and the repair outcome for every benchmark. These are
// the measured values recorded in EXPERIMENTS.md; a change here is a
// change to the detector, the repair engine, or a benchmark translation
// and must be deliberate.
var goldenTable1 = []Table1Row{
	{Benchmark: "TPC-C", Txns: 5, TablesOrig: 9, TablesRef: 16, EC: 123, AT: 40, CC: 123, RR: 123},
	{Benchmark: "SEATS", Txns: 6, TablesOrig: 8, TablesRef: 10, EC: 38, AT: 4, CC: 38, RR: 38},
	{Benchmark: "Courseware", Txns: 5, TablesOrig: 3, TablesRef: 2, EC: 10, AT: 0, CC: 10, RR: 10},
	{Benchmark: "SmallBank", Txns: 6, TablesOrig: 3, TablesRef: 3, EC: 32, AT: 21, CC: 32, RR: 31},
	{Benchmark: "Twitter", Txns: 5, TablesOrig: 4, TablesRef: 5, EC: 11, AT: 4, CC: 11, RR: 11},
	{Benchmark: "FMKe", Txns: 7, TablesOrig: 7, TablesRef: 8, EC: 23, AT: 13, CC: 23, RR: 23},
	{Benchmark: "SIBench", Txns: 2, TablesOrig: 1, TablesRef: 1, EC: 1, AT: 0, CC: 1, RR: 1},
	{Benchmark: "Wikipedia", Txns: 5, TablesOrig: 12, TablesRef: 13, EC: 29, AT: 9, CC: 29, RR: 29},
	{Benchmark: "Killrchat", Txns: 5, TablesOrig: 3, TablesRef: 4, EC: 13, AT: 3, CC: 13, RR: 13},
}

// TestTable1Golden regenerates the full Table 1 (on the parallel engine)
// and asserts every count column against the golden values.
func TestTable1Golden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-corpus regression; skipped with -short")
	}
	rows, err := Table1(benchmarks.All())
	if err != nil {
		t.Fatalf("Table1: %v", err)
	}
	if len(rows) != len(goldenTable1) {
		t.Fatalf("rows = %d, want %d", len(rows), len(goldenTable1))
	}
	totalEC, totalAT := 0, 0
	for i, want := range goldenTable1 {
		got := rows[i]
		got.Time = 0 // timing is machine-dependent
		if got != want {
			t.Errorf("row %d:\n got %+v\nwant %+v", i, got, want)
		}
		if got.AT > got.EC {
			t.Errorf("%s: repair increased anomalies: EC=%d AT=%d", got.Benchmark, got.EC, got.AT)
		}
		if got.CC > got.EC || got.RR > got.EC {
			t.Errorf("%s: stronger model found more pairs than EC: %+v", got.Benchmark, got)
		}
		totalEC += got.EC
		totalAT += got.AT
	}
	// The paper's headline: a substantial majority of pairs repaired.
	if repaired := float64(totalEC-totalAT) / float64(totalEC); repaired < 0.6 {
		t.Errorf("corpus repair rate %.0f%%, want >= 60%%", 100*repaired)
	}
}
