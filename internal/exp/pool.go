package exp

import "atropos/internal/pool"

// Option configures an experiment driver.
type Option func(*options)

type options struct {
	parallelism int
	// incremental selects the cached anomaly-detection session for the
	// repair pipelines (default on; see internal/anomaly.DetectSession).
	incremental bool
}

// WithParallelism sets the number of worker goroutines an experiment may
// use; n <= 0 selects GOMAXPROCS (the default).
func WithParallelism(n int) Option {
	return func(o *options) { o.parallelism = n }
}

// WithIncremental toggles the incremental (fingerprinted, SAT-query-cached)
// anomaly-detection engine inside the repair pipelines. On by default;
// results are identical either way — only the number of solved SAT queries
// changes.
func WithIncremental(on bool) Option {
	return func(o *options) { o.incremental = on }
}

func buildOptions(opts []Option) options {
	o := options{incremental: true}
	for _, f := range opts {
		f(&o)
	}
	return o
}

// Workers resolves a parallelism knob: n <= 0 means GOMAXPROCS.
// It forwards to the shared internal/pool package.
func Workers(n int) int { return pool.Workers(n) }

// ForEach runs fn(0) … fn(n-1) on at most w goroutines and waits for all
// of them (see internal/pool.ForEach for the contract).
func ForEach(w, n int, fn func(i int) error) error { return pool.ForEach(w, n, fn) }
