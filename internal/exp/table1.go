// Package exp implements the experiment harness: one entry point per table
// and figure of the paper's evaluation (§7, Appendix A), each returning the
// data series the paper plots and a formatter producing the corresponding
// rows. DESIGN.md §5 maps every experiment to these functions.
//
// The drivers are parallel: Table1 fans its benchmark × consistency-model
// grid out on a bounded worker pool, and Perf runs the independent
// deployment simulations of a panel concurrently. The worker count is set
// with WithParallelism (Table1) or PerfConfig.Parallelism (Perf) and
// defaults to GOMAXPROCS; results are identical to the sequential runs
// because every unit of work owns its state (see DESIGN.md §6).
package exp

import (
	"fmt"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/core"
	"atropos/internal/repair"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Benchmark  string
	Txns       int
	TablesOrig int
	TablesRef  int
	EC         int // anomalous access pairs under eventual consistency
	AT         int // remaining after Atropos repair
	CC         int // under causal consistency
	RR         int // under repeatable read
	Time       time.Duration
}

// table1Parts is the per-benchmark work grid: the EC analyze+repair
// pipeline plus one detector pass per weaker model column.
const table1Parts = 3

// Table1 reproduces Table 1: statically identified anomalous access pairs
// in the original and refactored programs, per consistency model, plus
// analysis+repair time. The benchmark × model grid runs on a worker pool
// (WithParallelism; default GOMAXPROCS). Each row's Time column is the
// total CPU work spent on that benchmark — the sum of its parts — so it is
// comparable across parallelism settings.
func Table1(benches []*benchmarks.Benchmark, opts ...Option) ([]Table1Row, error) {
	o := buildOptions(opts)
	rows := make([]Table1Row, len(benches))
	durs := make([][table1Parts]time.Duration, len(benches))
	err := ForEach(Workers(o.parallelism), len(benches)*table1Parts, func(i int) error {
		bi, part := i/table1Parts, i%table1Parts
		b := benches[bi]
		prog, err := b.Program()
		if err != nil {
			return err
		}
		start := time.Now()
		switch part {
		case 0: // EC detection + repair (EC, AT, and the shape columns)
			// The grid is already fanned out per benchmark, so the
			// detection session inside each repair runs sequentially.
			res, err := core.RunWith(prog, anomaly.EC, repair.Options{Incremental: o.incremental, Parallelism: 1})
			if err != nil {
				return fmt.Errorf("table1: %s: %w", b.Name, err)
			}
			rows[bi].Benchmark = b.Name
			rows[bi].Txns = len(prog.Txns)
			rows[bi].TablesOrig = len(prog.Schemas)
			rows[bi].TablesRef = len(res.Repair.Program.Schemas)
			rows[bi].EC = len(res.Repair.Initial)
			rows[bi].AT = len(res.Repair.Remaining)
		case 1: // causal consistency column
			cc, err := core.Analyze(prog, anomaly.CC)
			if err != nil {
				return fmt.Errorf("table1: %s: CC: %w", b.Name, err)
			}
			rows[bi].CC = cc.Count()
		case 2: // repeatable read column
			rr, err := core.Analyze(prog, anomaly.RR)
			if err != nil {
				return fmt.Errorf("table1: %s: RR: %w", b.Name, err)
			}
			rows[bi].RR = rr.Count()
		}
		durs[bi][part] = time.Since(start)
		return nil
	})
	if err != nil {
		return nil, err
	}
	for i := range rows {
		for _, d := range durs[i] {
			rows[i].Time += d
		}
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %5s %5s %5s %5s %9s\n",
		"Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time(s)")
	totalEC, totalAT := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %4d,%3d %5d %5d %5d %5d %9.1f\n",
			r.Benchmark, r.Txns, r.TablesOrig, r.TablesRef, r.EC, r.AT, r.CC, r.RR, r.Time.Seconds())
		totalEC += r.EC
		totalAT += r.AT
	}
	if totalEC > 0 {
		fmt.Fprintf(&b, "repaired: %d/%d anomalous access pairs (%.0f%%)\n",
			totalEC-totalAT, totalEC, 100*float64(totalEC-totalAT)/float64(totalEC))
	}
	return b.String()
}
