// Package exp implements the experiment harness: one entry point per table
// and figure of the paper's evaluation (§7, Appendix A), each returning the
// data series the paper plots and a formatter producing the corresponding
// rows. DESIGN.md §5 maps every experiment to these functions.
package exp

import (
	"fmt"
	"strings"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/core"
)

// Table1Row is one row of Table 1.
type Table1Row struct {
	Benchmark  string
	Txns       int
	TablesOrig int
	TablesRef  int
	EC         int // anomalous access pairs under eventual consistency
	AT         int // remaining after Atropos repair
	CC         int // under causal consistency
	RR         int // under repeatable read
	Time       time.Duration
}

// Table1 reproduces Table 1: statically identified anomalous access pairs
// in the original and refactored programs, per consistency model, plus
// analysis+repair time.
func Table1(benches []*benchmarks.Benchmark) ([]Table1Row, error) {
	var rows []Table1Row
	for _, b := range benches {
		prog, err := b.Program()
		if err != nil {
			return nil, err
		}
		start := time.Now()
		res, err := core.Run(prog, anomaly.EC)
		if err != nil {
			return nil, fmt.Errorf("table1: %s: %w", b.Name, err)
		}
		cc, err := core.Analyze(prog, anomaly.CC)
		if err != nil {
			return nil, err
		}
		rr, err := core.Analyze(prog, anomaly.RR)
		if err != nil {
			return nil, err
		}
		rows = append(rows, Table1Row{
			Benchmark:  b.Name,
			Txns:       len(prog.Txns),
			TablesOrig: len(prog.Schemas),
			TablesRef:  len(res.Repair.Program.Schemas),
			EC:         len(res.Repair.Initial),
			AT:         len(res.Repair.Remaining),
			CC:         cc.Count(),
			RR:         rr.Count(),
			Time:       time.Since(start),
		})
	}
	return rows, nil
}

// FormatTable1 renders rows in the paper's layout.
func FormatTable1(rows []Table1Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-12s %6s %8s %5s %5s %5s %5s %9s\n",
		"Benchmark", "#Txns", "#Tables", "EC", "AT", "CC", "RR", "Time(s)")
	totalEC, totalAT := 0, 0
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %6d %4d,%3d %5d %5d %5d %5d %9.1f\n",
			r.Benchmark, r.Txns, r.TablesOrig, r.TablesRef, r.EC, r.AT, r.CC, r.RR, r.Time.Seconds())
		totalEC += r.EC
		totalAT += r.AT
	}
	if totalEC > 0 {
		fmt.Fprintf(&b, "repaired: %d/%d anomalous access pairs (%.0f%%)\n",
			totalEC-totalAT, totalEC, 100*float64(totalEC-totalAT)/float64(totalEC))
	}
	return b.String()
}
