package exp

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net"
	"net/http"
	"sort"
	"strconv"
	"sync"
	"time"

	"atropos/internal/ast"
	"atropos/internal/engine"
	"atropos/internal/progen"
	"atropos/internal/service"
)

// LoadConfig sizes one service load-test run: N concurrent progen clients
// driving an in-process atroposd (engine + HTTP stack over a loopback
// listener — real sockets, real JSON, real backpressure).
type LoadConfig struct {
	// Clients is the number of concurrent clients (default 64).
	Clients int
	// RequestsPerClient is how many requests each client issues, strictly
	// alternating analyze and repair over its own progen program
	// (default 4).
	RequestsPerClient int
	// Workers / QueueDepth / Sessions size the engine (engine.Config
	// semantics). The defaults keep the queue deliberately smaller than
	// the client count so backpressure (429 + retry) is exercised.
	Workers    int
	QueueDepth int
	Sessions   int
}

func (c LoadConfig) withDefaults() LoadConfig {
	if c.Clients <= 0 {
		c.Clients = 64
	}
	if c.RequestsPerClient <= 0 {
		c.RequestsPerClient = 4
	}
	if c.QueueDepth <= 0 {
		// Undersized on purpose: with the queue below the client count,
		// admission rejections (429) are part of the measured behavior.
		c.QueueDepth = max(1, c.Clients/8)
	}
	if c.Sessions <= 0 {
		c.Sessions = c.Clients
	}
	return c
}

// LoadResult is one load-test measurement. The request/anomaly counts are
// deterministic functions of the configuration — every client retries 429s
// until served, and its program is progen.Program(client index) — so the
// drift gate pins them; the latency, throughput, retry, and hit-rate
// numbers are machine- and scheduling-dependent (informational).
type LoadResult struct {
	Clients           int `json:"clients"`
	RequestsPerClient int `json:"requests_per_client"`
	// Requests = Clients × RequestsPerClient; Completed counts requests
	// that returned 200. Zero dropped means Completed == Requests.
	Requests  int `json:"requests"`
	Completed int `json:"completed"`
	// Errors counts non-200, non-429 responses (always 0 on a healthy run).
	Errors int `json:"errors"`
	// Retried429 counts admission rejections absorbed by client retry —
	// backpressure observed, no request dropped.
	Retried429 int `json:"retried_429"`
	// TotalInitial sums the anomaly counts every response reported
	// (analyze count + repair initial); TotalRemaining sums repair
	// leftovers. Both are scheduling-independent.
	TotalInitial   int `json:"total_initial"`
	TotalRemaining int `json:"total_remaining"`
	// Wall-clock measurements (informational).
	WallMs        float64 `json:"wall_ms"`
	ThroughputRPS float64 `json:"throughput_rps"`
	P50Ms         float64 `json:"p50_ms"`
	P99Ms         float64 `json:"p99_ms"`
	// SessionHitRate is the engine's LRU hit fraction over the run.
	SessionHitRate float64      `json:"session_hit_rate"`
	Stats          engine.Stats `json:"stats"`
}

// RunLoad starts an in-process atroposd on a loopback socket, drives it
// with cfg.Clients concurrent clients, and aggregates the result. Every
// client issues all its requests to completion (429s are retried after the
// server's Retry-After hint, scaled down for test speed), so a healthy run
// completes exactly Clients×RequestsPerClient requests.
func RunLoad(cfg LoadConfig) (*LoadResult, error) {
	cfg = cfg.withDefaults()
	eng := engine.New(engine.Config{
		Workers:    cfg.Workers,
		QueueDepth: cfg.QueueDepth,
		Sessions:   cfg.Sessions,
	})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	srv := &http.Server{Handler: service.New(eng)}
	go srv.Serve(ln) //nolint:errcheck // closed via srv.Close below
	defer srv.Close()
	base := "http://" + ln.Addr().String()

	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        cfg.Clients,
		MaxIdleConnsPerHost: cfg.Clients,
	}}
	defer client.CloseIdleConnections()

	var (
		mu        sync.Mutex
		latencies []time.Duration
		res       = LoadResult{
			Clients:           cfg.Clients,
			RequestsPerClient: cfg.RequestsPerClient,
			Requests:          cfg.Clients * cfg.RequestsPerClient,
		}
		firstErr error
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < cfg.Clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			src := ast.Format(progen.Program(int64(c + 1)))
			id := "load-" + strconv.Itoa(c)
			// Per-client seeded RNG: the retry jitter below is reproducible
			// for a given configuration, like everything else the drift gate
			// compares.
			rng := rand.New(rand.NewSource(int64(c + 1)))
			for i := 0; i < cfg.RequestsPerClient; i++ {
				endpoint := "/v1/analyze"
				if i%2 == 1 {
					endpoint = "/v1/repair"
				}
				body, _ := json.Marshal(service.ProgramRequest{Source: src, Model: "EC", Client: id})
				initial, remaining, retries, lat, err := postUntilServed(client, base+endpoint, body, rng)
				mu.Lock()
				res.Retried429 += retries
				if err != nil {
					res.Errors++
					if firstErr == nil {
						firstErr = fmt.Errorf("client %d %s: %w", c, endpoint, err)
					}
				} else {
					res.Completed++
					res.TotalInitial += initial
					res.TotalRemaining += remaining
					latencies = append(latencies, lat)
				}
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)
	if firstErr != nil {
		return nil, firstErr
	}

	res.WallMs = float64(wall) / float64(time.Millisecond)
	if wall > 0 {
		res.ThroughputRPS = float64(res.Completed) / wall.Seconds()
	}
	res.P50Ms = percentileMs(latencies, 0.50)
	res.P99Ms = percentileMs(latencies, 0.99)
	res.Stats = eng.Stats()
	res.SessionHitRate = res.Stats.SessionHitRate()
	return &res, nil
}

// Retry backoff bounds: the first 429 waits ~1ms, each further rejection
// doubles the step up to the cap. Sleeping a flat interval would march all
// rejected clients back in lockstep and re-collide them at the admission
// queue; exponential growth with jitter spreads the retry wave out.
const (
	retryBase = time.Millisecond
	retryCap  = 16 * time.Millisecond
)

// backoff is the sleep before retry number n (1-based): the capped
// exponential step, jittered uniformly over its upper half so concurrent
// clients desynchronize but never return faster than half the step.
func backoff(n int, rng *rand.Rand) time.Duration {
	d := retryBase << min(n-1, 10)
	if d > retryCap {
		d = retryCap
	}
	return d/2 + time.Duration(rng.Int63n(int64(d/2)+1))
}

// postUntilServed POSTs body to url, absorbing 429 backpressure with
// capped jittered exponential retries, and extracts the response's anomaly
// counts. The reported latency is the served attempt's round trip; queue
// time spent inside the server is included, client-side retry backoff is
// not. (The server's Retry-After hint says seconds; a progen request takes
// milliseconds, so the client honors its spirit at test timescales.)
func postUntilServed(client *http.Client, url string, body []byte, rng *rand.Rand) (initial, remaining, retries int, lat time.Duration, err error) {
	for {
		t0 := time.Now()
		resp, err := client.Post(url, "application/json", bytes.NewReader(body))
		if err != nil {
			return 0, 0, retries, 0, err
		}
		data, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			return 0, 0, retries, 0, err
		}
		switch resp.StatusCode {
		case http.StatusOK:
			initial, remaining, err = extractCounts(data)
			return initial, remaining, retries, time.Since(t0), err
		case http.StatusTooManyRequests:
			retries++
			time.Sleep(backoff(retries, rng))
		default:
			return 0, 0, retries, 0, fmt.Errorf("%s: status %d: %s", url, resp.StatusCode, data)
		}
	}
}

// extractCounts pulls the anomaly totals out of either response shape:
// analyze carries count, repair carries initial/remaining pair lists.
func extractCounts(data []byte) (initial, remaining int, err error) {
	var probe struct {
		Count     *int              `json:"count"`
		Initial   []json.RawMessage `json:"initial"`
		Remaining []json.RawMessage `json:"remaining"`
	}
	if err := json.Unmarshal(data, &probe); err != nil {
		return 0, 0, err
	}
	if probe.Count != nil {
		return *probe.Count, 0, nil
	}
	return len(probe.Initial), len(probe.Remaining), nil
}

func percentileMs(lats []time.Duration, q float64) float64 {
	if len(lats) == 0 {
		return 0
	}
	sorted := append([]time.Duration(nil), lats...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	idx := int(q*float64(len(sorted))+0.5) - 1
	if idx < 0 {
		idx = 0
	}
	if idx >= len(sorted) {
		idx = len(sorted) - 1
	}
	return float64(sorted[idx]) / float64(time.Millisecond)
}
