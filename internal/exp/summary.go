package exp

import (
	"fmt"
	"strings"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
)

// Summary reproduces the paper's headline aggregates (§1, §7.2): the
// average fraction of anomalies repaired across the corpus, and the
// throughput/latency advantage of the safe AT-SC deployment over full SC.
type SummaryResult struct {
	AvgRepairedPct float64
	// ThroughputGainPct is the AT-SC throughput improvement over SC
	// (the paper reports 120% on average).
	ThroughputGainPct float64
	// LatencyDropPct is the AT-SC latency reduction versus SC (paper: 45%).
	LatencyDropPct float64
	// ATECOverheadPct is AT-EC throughput overhead versus EC (paper: <3%).
	ATECOverheadPct float64
}

// Summary computes the aggregates from a Table 1 run plus a SmallBank
// performance panel at the given load.
func Summary(t1 []Table1Row, clients int, duration time.Duration, seed int64, opts ...Option) (*SummaryResult, error) {
	o := buildOptions(opts)
	out := &SummaryResult{}
	var pctSum float64
	n := 0
	for _, r := range t1 {
		if r.EC == 0 {
			continue
		}
		pctSum += 100 * float64(r.EC-r.AT) / float64(r.EC)
		n++
	}
	if n > 0 {
		out.AvgRepairedPct = pctSum / float64(n)
	}
	perf, err := Perf(PerfConfig{
		Benchmark:      benchmarks.SmallBank,
		Topology:       cluster.USCluster,
		ClientCounts:   []int{clients},
		Duration:       duration,
		Seed:           seed,
		Parallelism:    o.parallelism,
		NonIncremental: !o.incremental,
	})
	if err != nil {
		return nil, err
	}
	byLabel := map[string]float64{}
	latByLabel := map[string]float64{}
	for _, s := range perf.Series {
		byLabel[s.Label] = s.Points[0].Throughput
		latByLabel[s.Label] = s.Points[0].MeanMs
	}
	if sc := byLabel["SC"]; sc > 0 {
		out.ThroughputGainPct = 100 * (byLabel["AT-SC"] - sc) / sc
	}
	if scLat := latByLabel["SC"]; scLat > 0 {
		out.LatencyDropPct = 100 * (scLat - latByLabel["AT-SC"]) / scLat
	}
	if ec := byLabel["EC"]; ec > 0 {
		out.ATECOverheadPct = 100 * (ec - byLabel["AT-EC"]) / ec
	}
	return out, nil
}

// Format renders the aggregates next to the paper's claims.
func (s *SummaryResult) Format() string {
	var b strings.Builder
	b.WriteString("=== headline aggregates (paper §1) ===\n")
	fmt.Fprintf(&b, "avg anomalies repaired:      %.0f%%   (paper: 74%%)\n", s.AvgRepairedPct)
	fmt.Fprintf(&b, "AT-SC throughput vs SC:     +%.0f%%   (paper: +120%%)\n", s.ThroughputGainPct)
	fmt.Fprintf(&b, "AT-SC latency vs SC:        -%.0f%%   (paper: -45%%)\n", s.LatencyDropPct)
	fmt.Fprintf(&b, "AT-EC overhead vs EC:        %.1f%%   (paper: <3%%)\n", s.ATECOverheadPct)
	return b.String()
}
