package exp

import (
	"fmt"
	"strings"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/invariant"
	"atropos/internal/repair"
)

// InvariantsResult compares SmallBank's application-level invariant
// violations before and after repair (§7.1, Appendix A.2).
type InvariantsResult struct {
	Original invariant.Report
	Repaired invariant.Report
}

// Invariants runs the three-invariant study on SmallBank.
func Invariants(runsPer int, seed int64, opts ...Option) (*InvariantsResult, error) {
	o := buildOptions(opts)
	b := benchmarks.SmallBank
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	rows := b.Rows(benchmarks.Scale{Records: 6})
	orig, err := invariant.CheckSmallBank(invariant.Config{
		Program: prog, Rows: rows, RunsPer: runsPer, Seed: seed,
	})
	if err != nil {
		return nil, fmt.Errorf("invariants: original: %w", err)
	}
	rep, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: o.incremental})
	if err != nil {
		return nil, err
	}
	repaired, err := invariant.CheckSmallBank(invariant.Config{
		Program:  rep.Program,
		Corrs:    rep.Corrs,
		Original: prog,
		Rows:     rows,
		RunsPer:  runsPer,
		Seed:     seed,
	})
	if err != nil {
		return nil, fmt.Errorf("invariants: repaired: %w", err)
	}
	return &InvariantsResult{Original: orig, Repaired: repaired}, nil
}

// Format renders the study.
func (r *InvariantsResult) Format() string {
	var b strings.Builder
	b.WriteString("=== SmallBank application-level invariants under EC ===\n")
	fmt.Fprintf(&b, "original: %s\n", r.Original)
	fmt.Fprintf(&b, "repaired: %s\n", r.Repaired)
	return b.String()
}
