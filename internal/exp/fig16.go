package exp

import (
	"fmt"
	"math/rand"
	"strings"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/refactor"
	"atropos/internal/repair"
)

// Fig16Point is one round of the random-refactoring ablation (App. A.3):
// the anomaly count after applying a batch of random refactorings.
type Fig16Point struct {
	Round     int
	Applied   int // refactorings that validated and applied
	Anomalies int
}

// Fig16Result compares random search against the oracle-guided repair.
type Fig16Result struct {
	Benchmark string
	Original  int // anomalies in the unmodified program
	Atropos   int // anomalies after oracle-guided repair (the blue line)
	Points    []Fig16Point
}

// Fig16 reproduces Appendix A.3: each round applies perRound random
// refactorings (random redirect or logger correspondences, merges, and
// splits — validity-checked, invalid draws are skipped) to a fresh copy of
// the program and counts the remaining anomalies, against the anomaly
// count of Atropos's oracle-guided repair.
func Fig16(b *benchmarks.Benchmark, rounds, perRound int, seed int64, opts ...Option) (*Fig16Result, error) {
	o := buildOptions(opts)
	prog, err := b.Program()
	if err != nil {
		return nil, err
	}
	// The rounds detect N variants of the same base program — the
	// detection session's exact use case: unchanged transactions are
	// answered from cache, counts are identical to the fresh oracle.
	detect := func(p *ast.Program) (*anomaly.Report, error) { return anomaly.Detect(p, anomaly.EC) }
	if o.incremental {
		detect = anomaly.NewSession(anomaly.EC).Detect
	}
	ec, err := detect(prog)
	if err != nil {
		return nil, err
	}
	rep, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: o.incremental})
	if err != nil {
		return nil, err
	}
	out := &Fig16Result{Benchmark: b.Name, Original: ec.Count(), Atropos: len(rep.Remaining)}
	for round := 1; round <= rounds; round++ {
		rng := rand.New(rand.NewSource(seed + int64(round)))
		p := ast.CloneProgram(prog)
		applied := 0
		attempts := 0
		for applied < perRound && attempts < perRound*30 {
			attempts++
			if np, ok := randomRefactoring(p, rng); ok {
				p = np
				applied++
			}
		}
		r, err := detect(p)
		if err != nil {
			return nil, err
		}
		out.Points = append(out.Points, Fig16Point{Round: round, Applied: applied, Anomalies: r.Count()})
	}
	return out, nil
}

// randomRefactoring draws one refactoring and applies it if it validates.
func randomRefactoring(p *ast.Program, rng *rand.Rand) (*ast.Program, bool) {
	switch rng.Intn(3) {
	case 0:
		return randomRedirect(p, rng)
	case 1:
		return randomLogger(p, rng)
	default:
		return randomMerge(p, rng)
	}
}

func randomSchema(p *ast.Program, rng *rand.Rand) *ast.Schema {
	if len(p.Schemas) == 0 {
		return nil
	}
	return p.Schemas[rng.Intn(len(p.Schemas))]
}

// randomRedirect moves a random non-key field onto a random destination
// table with a randomly guessed θ̂.
func randomRedirect(p *ast.Program, rng *rand.Rand) (*ast.Program, bool) {
	src := randomSchema(p, rng)
	dst := randomSchema(p, rng)
	if src == nil || dst == nil || src.Name == dst.Name {
		return p, false
	}
	nonKey := src.NonKeyFields()
	if len(nonKey) == 0 {
		return p, false
	}
	f := nonKey[rng.Intn(len(nonKey))]
	theta := map[string]string{}
	for _, pk := range src.PrimaryKey() {
		// Guess a random destination field of the same type.
		var candidates []string
		for _, df := range dst.Fields {
			if df.Type == pk.Type {
				candidates = append(candidates, df.Name)
			}
		}
		if len(candidates) == 0 {
			return p, false
		}
		theta[pk.Name] = candidates[rng.Intn(len(candidates))]
	}
	dstField := refactor.DstFieldName(dst, f.Name)
	np, err := refactor.IntroField(p, dst.Name, ast.Field{Name: dstField, Type: f.Type})
	if err != nil {
		return p, false
	}
	np, err = refactor.ApplyCorr(np, refactor.ValueCorr{
		SrcTable: src.Name, SrcField: f.Name,
		DstTable: dst.Name, DstField: dstField,
		Theta: theta, Agg: ast.AggAny,
	})
	if err != nil {
		return p, false
	}
	return np, true
}

// randomLogger turns a random int field into a logging table.
func randomLogger(p *ast.Program, rng *rand.Rand) (*ast.Program, bool) {
	src := randomSchema(p, rng)
	if src == nil {
		return p, false
	}
	var ints []string
	for _, f := range src.NonKeyFields() {
		if f.Type == ast.TInt {
			ints = append(ints, f.Name)
		}
	}
	if len(ints) == 0 {
		return p, false
	}
	np, corr, err := refactor.BuildLoggerSchema(p, src.Name, ints[rng.Intn(len(ints))])
	if err != nil {
		return p, false
	}
	np, err = refactor.ApplyCorr(np, corr)
	if err != nil {
		return p, false
	}
	return np, true
}

// randomMerge merges two random same-kind commands of a random transaction.
func randomMerge(p *ast.Program, rng *rand.Rand) (*ast.Program, bool) {
	if len(p.Txns) == 0 {
		return p, false
	}
	t := p.Txns[rng.Intn(len(p.Txns))]
	cmds := ast.Commands(t.Body)
	if len(cmds) < 2 {
		return p, false
	}
	i := rng.Intn(len(cmds))
	j := rng.Intn(len(cmds))
	if i == j {
		return p, false
	}
	np, err := refactor.Merge(p, t.Name, cmds[i].CmdLabel(), cmds[j].CmdLabel())
	if err != nil {
		return p, false
	}
	return np, true
}

// Format renders the ablation like the paper's scatter: one row per round
// plus the Atropos reference line.
func (r *Fig16Result) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s: random refactoring vs Atropos ===\n", r.Benchmark)
	fmt.Fprintf(&b, "original anomalies: %d; Atropos repaired program: %d\n", r.Original, r.Atropos)
	fmt.Fprintf(&b, "%8s %10s %10s\n", "round", "applied", "anomalies")
	better := 0
	for _, pt := range r.Points {
		fmt.Fprintf(&b, "%8d %10d %10d\n", pt.Round, pt.Applied, pt.Anomalies)
		if pt.Anomalies <= r.Atropos {
			better++
		}
	}
	fmt.Fprintf(&b, "rounds at or below the Atropos line: %d/%d\n", better, len(r.Points))
	return b.String()
}
