package cluster

// Topology describes the three-node cluster's network geometry. RTT values
// are microseconds for a full round trip between replicas.
type Topology struct {
	Name string
	// RTT[i][j] is the round-trip time between replicas i and j.
	RTT [3][3]int64
	// ClientRTT is the round trip between a client and its home replica
	// (clients are colocated with their region's replica).
	ClientRTT int64
}

func symmetric(ab, ac, bc int64) [3][3]int64 {
	return [3][3]int64{
		{0, ab, ac},
		{ab, 0, bc},
		{ac, bc, 0},
	}
}

// The paper's three deployments (§7.2, App. A.1): a single-datacenter
// cluster in N. Virginia, a US-wide cluster (N. Virginia / Ohio / Oregon),
// and a global cluster (N. Virginia / London / Tokyo). RTTs follow typical
// inter-region measurements.
var (
	VACluster = Topology{
		Name:      "VA",
		RTT:       symmetric(400, 400, 400), // intra-datacenter: ~0.4 ms
		ClientRTT: 250,
	}
	USCluster = Topology{
		Name:      "US",
		RTT:       symmetric(11_000, 75_000, 50_000), // VA-OH, VA-OR, OH-OR
		ClientRTT: 250,
	}
	GlobalCluster = Topology{
		Name:      "Global",
		RTT:       symmetric(75_000, 170_000, 240_000), // VA-LON, VA-TYO, LON-TYO
		ClientRTT: 250,
	}
)

// Topologies lists the three clusters in paper order (Figs. 13–15).
func Topologies() []Topology { return []Topology{VACluster, USCluster, GlobalCluster} }

// TopologyByName returns the named topology; ok is false if unknown.
func TopologyByName(name string) (Topology, bool) {
	for _, t := range Topologies() {
		if t.Name == name {
			return t, true
		}
	}
	return Topology{}, false
}

// majorityRTT is the round trip the primary needs for a majority ack: the
// fastest of the two other replicas. It is the fault-free value; under an
// active FaultPlan the drivers use ackDelay (fault.go), which degenerates
// to this when no window touches the primary's links.
func (t Topology) majorityRTT(primary int) int64 {
	best := int64(-1)
	for j := 0; j < 3; j++ {
		if j == primary {
			continue
		}
		if best == -1 || t.RTT[primary][j] < best {
			best = t.RTT[primary][j]
		}
	}
	return best
}
