package cluster

import (
	"sort"

	"atropos/internal/store"
)

// keyIndex keeps a table's row slots ordered by key as a sequence of
// sorted chunks (an indexed-sequential structure). A flat sorted array
// pays an O(n) middle insertion per new row — quadratic over a run for
// workloads whose fresh keys interleave (TPC-C's uuid-derived order ids) —
// where a chunked index bounds the shift to idxChunk slots plus an
// occasional split, while scans stay sequential and prefix narrowing a
// pair of binary searches. Rows are never deleted (the DSL retires them
// via alive=false), so chunks only grow and split.
type keyIndex struct {
	mins   []store.Key // first key of each chunk
	chunks [][]int32   // row slots, each chunk sorted by key
}

const idxChunk = 512

// idxPos is an iteration position: chunk index and offset.
type idxPos struct{ ci, i int }

func (ix *keyIndex) valid(p idxPos) bool { return p.ci < len(ix.chunks) }

func (ix *keyIndex) at(p idxPos) int32 { return ix.chunks[p.ci][p.i] }

// norm advances past exhausted chunks (only the tail can be exhausted:
// interior chunks are never empty).
func (ix *keyIndex) norm(p idxPos) idxPos {
	for p.ci < len(ix.chunks) && p.i >= len(ix.chunks[p.ci]) {
		p.ci++
		p.i = 0
	}
	return p
}

func (ix *keyIndex) begin() idxPos { return ix.norm(idxPos{}) }

func (ix *keyIndex) next(p idxPos) idxPos {
	p.i++
	return ix.norm(p)
}

// seek returns the position of the first key >= prefix.
func (ix *keyIndex) seek(keys []store.Key, prefix []byte) idxPos {
	if len(ix.chunks) == 0 {
		return idxPos{}
	}
	ci := sort.Search(len(ix.mins), func(i int) bool { return keyCmp(ix.mins[i], prefix) >= 0 }) - 1
	if ci < 0 {
		ci = 0
	}
	ch := ix.chunks[ci]
	i := sort.Search(len(ch), func(j int) bool { return keyCmp(keys[ch[j]], prefix) >= 0 })
	return ix.norm(idxPos{ci, i})
}

// insert adds a slot for key k (keys[slot] == k; k is not already present).
func (ix *keyIndex) insert(keys []store.Key, k store.Key, slot int32) {
	if len(ix.chunks) == 0 {
		ch := make([]int32, 1, 64)
		ch[0] = slot
		ix.chunks = append(ix.chunks, ch)
		ix.mins = append(ix.mins, k)
		return
	}
	ci := sort.Search(len(ix.mins), func(i int) bool { return ix.mins[i] > k }) - 1
	if ci < 0 {
		ci = 0
	}
	ch := ix.chunks[ci]
	i := sort.Search(len(ch), func(j int) bool { return keys[ch[j]] >= k })
	ch = append(ch, 0)
	copy(ch[i+1:], ch[i:])
	ch[i] = slot
	ix.chunks[ci] = ch
	if i == 0 {
		ix.mins[ci] = k
	}
	if len(ch) >= idxChunk {
		ix.split(keys, ci)
	}
}

func (ix *keyIndex) split(keys []store.Key, ci int) {
	ch := ix.chunks[ci]
	mid := len(ch) / 2
	right := make([]int32, len(ch)-mid, idxChunk)
	copy(right, ch[mid:])
	ix.chunks[ci] = ch[:mid]
	ix.chunks = append(ix.chunks, nil)
	copy(ix.chunks[ci+2:], ix.chunks[ci+1:])
	ix.chunks[ci+1] = right
	ix.mins = append(ix.mins, "")
	copy(ix.mins[ci+2:], ix.mins[ci+1:])
	ix.mins[ci+1] = keys[right[0]]
}

// clone deep-copies the index.
func (ix *keyIndex) clone() keyIndex {
	out := keyIndex{
		mins:   append([]store.Key(nil), ix.mins...),
		chunks: make([][]int32, len(ix.chunks)),
	}
	for i, ch := range ix.chunks {
		out.chunks[i] = append([]int32(nil), ch...)
	}
	return out
}
