package cluster

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// faultedConfig is diffConfig plus a fault plan.
func faultedConfig(b *benchmarks.Benchmark, mode Mode, seed int64, plan *FaultPlan, t *testing.T) Config {
	t.Helper()
	cfg := diffConfig(b, mode, seed, t)
	cfg.Faults = plan
	return cfg
}

// TestFaultedCompiledMatchesInterpreter extends the DESIGN.md §9
// differential gate to the fault layer: across every benchmark, every
// non-clean chaos scenario, and all three deployment modes, the compiled
// executor and the AST interpreter must produce byte-identical traces —
// the fault hooks sit at mirrored call sites in both engines, and this
// test is what keeps them mirrored.
func TestFaultedCompiledMatchesInterpreter(t *testing.T) {
	horizon := (900 * time.Millisecond).Microseconds() // diffConfig's warmup+duration
	for _, b := range benchmarks.All() {
		for _, sc := range ChaosScenarios(horizon) {
			if sc.Plan == nil {
				continue // the clean control is compiled_test.go's grid
			}
			for _, mode := range []Mode{ModeEC, ModeSC, ModeATSC} {
				name := fmt.Sprintf("%s/%s/%s", b.Name, sc.Name, mode)
				t.Run(name, func(t *testing.T) {
					cfg := faultedConfig(b, mode, 5, sc.Plan, t)

					ref := cfg
					ref.UseInterpreter = true
					ref.Trace = &Trace{}
					wantRes, err := Run(ref)
					if err != nil {
						t.Fatalf("interpreter run: %v", err)
					}
					got := cfg
					got.Trace = &Trace{}
					gotRes, err := Run(got)
					if err != nil {
						t.Fatalf("compiled run: %v", err)
					}

					if gotRes != wantRes {
						t.Errorf("results diverge:\n  compiled:    %+v\n  interpreter: %+v", gotRes, wantRes)
					}
					if len(got.Trace.Events) != len(ref.Trace.Events) {
						t.Fatalf("history length diverges: compiled %d events, interpreter %d",
							len(got.Trace.Events), len(ref.Trace.Events))
					}
					for i := range got.Trace.Events {
						if got.Trace.Events[i] != ref.Trace.Events[i] {
							t.Fatalf("history diverges at event %d:\n  compiled:    %s\n  interpreter: %s",
								i, got.Trace.Events[i], ref.Trace.Events[i])
						}
					}
					if wantRes.Committed == 0 {
						t.Error("no transactions committed; faulted differential run is vacuous")
					}
				})
			}
		}
	}
}

// TestFaultTraceDeterminism is the reproducibility property of the fault
// layer: the same (seed, plan, config) must yield the same trace byte for
// byte on repeated runs of either engine — and a faulted run must not
// silently equal the fault-free one (the panel would be vacuous).
func TestFaultTraceDeterminism(t *testing.T) {
	horizon := (900 * time.Millisecond).Microseconds()
	for _, sc := range ChaosScenarios(horizon) {
		for _, interp := range []bool{false, true} {
			engine := "compiled"
			if interp {
				engine = "interpreter"
			}
			t.Run(sc.Name+"/"+engine, func(t *testing.T) {
				run := func() []string {
					cfg := faultedConfig(benchmarks.SmallBank, ModeATSC, 9, sc.Plan, t)
					cfg.UseInterpreter = interp
					cfg.Trace = &Trace{}
					if _, err := Run(cfg); err != nil {
						t.Fatal(err)
					}
					return cfg.Trace.Events
				}
				first, second := run(), run()
				if len(first) != len(second) {
					t.Fatalf("repeated run changed history length: %d vs %d", len(first), len(second))
				}
				for i := range first {
					if first[i] != second[i] {
						t.Fatalf("repeated run diverges at event %d:\n  first:  %s\n  second: %s",
							i, first[i], second[i])
					}
				}
				if sc.Plan != nil {
					// Header lines pin the schedule, and the history itself
					// must actually be perturbed by the faults.
					for i, f := range sc.Plan.Faults {
						if !strings.HasPrefix(first[i], "fault "+f.Kind.String()) {
							t.Errorf("event %d: want a %q fault header, got %q", i, f.Kind, first[i])
						}
					}
					clean := faultedConfig(benchmarks.SmallBank, ModeATSC, 9, nil, t)
					clean.UseInterpreter = interp
					clean.Trace = &Trace{}
					if _, err := Run(clean); err != nil {
						t.Fatal(err)
					}
					body := first[len(sc.Plan.Faults):]
					same := len(body) == len(clean.Trace.Events)
					for i := 0; same && i < len(body); i++ {
						same = body[i] == clean.Trace.Events[i]
					}
					if same {
						t.Errorf("%s: faulted history identical to fault-free history", sc.Name)
					}
				}
			})
		}
	}
}

// TestFaultPlanValidation checks that malformed plans are rejected before
// a single event runs.
func TestFaultPlanValidation(t *testing.T) {
	cases := []struct {
		name  string
		fault Fault
	}{
		{"empty-window", Fault{Kind: FaultCrash, From: 100, Until: 100, A: 1}},
		{"negative-from", Fault{Kind: FaultCrash, From: -1, Until: 100, A: 1}},
		{"bad-replica", Fault{Kind: FaultCrash, From: 0, Until: 100, A: 3}},
		{"self-link", Fault{Kind: FaultPartition, From: 0, Until: 100, A: 1, B: 1}},
		{"drop-pct-low", Fault{Kind: FaultDrop, From: 0, Until: 100, A: 0, B: 1, Pct: 0}},
		{"drop-pct-high", Fault{Kind: FaultDrop, From: 0, Until: 100, A: 0, B: 1, Pct: 96}},
		{"lag-no-amount", Fault{Kind: FaultLag, From: 0, Until: 100, A: 0, B: 1}},
		{"unknown-kind", Fault{Kind: FaultKind(99), From: 0, Until: 100, A: 0}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cfg := diffConfig(benchmarks.SmallBank, ModeEC, 1, t)
			cfg.Faults = &FaultPlan{Faults: []Fault{tc.fault}}
			if _, err := Run(cfg); err == nil {
				t.Errorf("Run accepted invalid fault %+v", tc.fault)
			}
		})
	}
}

// fuzzPlan decodes fuzzer bytes into a valid FaultPlan: one fault window
// per 7-byte chunk (at most 8 windows), every field clamped into its legal
// range so the fuzzer explores schedules, not the validator.
func fuzzPlan(data []byte, horizon int64) *FaultPlan {
	plan := &FaultPlan{Seed: int64(len(data))}
	for len(data) >= 7 && len(plan.Faults) < 8 {
		c := data[:7]
		data = data[7:]
		f := Fault{
			Kind: FaultKind(c[0] % 6),
			A:    int(c[1] % 3),
			From: int64(c[3]) * horizon / 256,
		}
		f.Until = f.From + 1 + int64(c[4])*horizon/256
		switch f.Kind {
		case FaultCrash:
		case FaultSkew:
			f.Amount = int64(c[5]%128) - 64
		default:
			f.B = int(c[2] % 3)
			if f.B == f.A {
				f.B = (f.A + 1) % 3
			}
			f.Amount = 1 + int64(c[5])*2000
			f.Pct = 1 + int(c[6])%95
		}
		plan.Seed = plan.Seed*257 + int64(c[6])
		plan.Faults = append(plan.Faults, f)
	}
	if len(plan.Faults) == 0 {
		return nil
	}
	return plan
}

// FuzzFaultScheduleEquivalence fuzzes fault schedules against the twin
// property: any valid plan, on a mixed-mode SmallBank run, must leave the
// compiled executor and the AST interpreter byte-identical.
func FuzzFaultScheduleEquivalence(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0, 0, 1, 10, 200, 5, 40})                             // partition 0-1
	f.Add([]byte{1, 1, 0, 20, 100, 0, 0, 3, 2, 0, 30, 180, 96, 7})     // crash r1 + skew r2
	f.Add([]byte{4, 1, 2, 25, 150, 9, 60, 5, 1, 2, 25, 150, 9, 19, 2}) // drop + reorder 1-2
	prog, err := benchmarks.SmallBank.Program()
	if err != nil {
		f.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 20}
	rows := benchmarks.SmallBank.Rows(scale)
	serial := map[string]bool{}
	for i, txn := range prog.Txns {
		if i%2 == 0 {
			serial[txn.Name] = true
		}
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		cfg := Config{
			Program:          prog,
			Mix:              benchmarks.SmallBank.Mix,
			Scale:            scale,
			Rows:             rows,
			Topology:         USCluster,
			Clients:          6,
			Duration:         300 * time.Millisecond,
			Warmup:           50 * time.Millisecond,
			Seed:             13,
			Mode:             ModeATSC,
			SerializableTxns: serial,
			Faults:           fuzzPlan(data, (350 * time.Millisecond).Microseconds()),
		}
		ref := cfg
		ref.UseInterpreter = true
		ref.Trace = &Trace{}
		wantRes, err := Run(ref)
		if err != nil {
			t.Fatal(err)
		}
		got := cfg
		got.Trace = &Trace{}
		gotRes, err := Run(got)
		if err != nil {
			t.Fatal(err)
		}
		if gotRes != wantRes {
			t.Fatalf("results diverge under plan %+v:\n  compiled:    %+v\n  interpreter: %+v",
				cfg.Faults, gotRes, wantRes)
		}
		if len(got.Trace.Events) != len(ref.Trace.Events) {
			t.Fatalf("history length diverges under plan %+v: compiled %d, interpreter %d",
				cfg.Faults, len(got.Trace.Events), len(ref.Trace.Events))
		}
		for i := range got.Trace.Events {
			if got.Trace.Events[i] != ref.Trace.Events[i] {
				t.Fatalf("history diverges at event %d under plan %+v:\n  compiled:    %s\n  interpreter: %s",
					i, cfg.Faults, got.Trace.Events[i], ref.Trace.Events[i])
			}
		}
	})
}
