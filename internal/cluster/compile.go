package cluster

import (
	"fmt"
	"sort"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// This file compiles a program once per simulated run into a flat op-code
// form the cluster executor runs instead of re-walking the AST per
// transaction instance (DESIGN.md §9). Compilation pre-resolves every name:
// tables become dense ids, fields become indices into a table's flat value
// array, transaction arguments and select-bound result sets become numbered
// frame slots, and expressions become postfix op sequences evaluated on a
// reusable stack. A transaction the compiler cannot prove equivalent to the
// AST walker (inconsistent variable rebinding, statically ill-placed
// uuid()/iter/this) is left uncompiled and silently falls back to the
// interpreter — per transaction, so one odd transaction does not slow the
// rest of the workload.

// Compiled is a program lowered to the executor's addressing: dense table
// ids and per-transaction op-code programs.
type Compiled struct {
	prog    *ast.Program
	tables  []ctable
	tableID map[string]int32
	txns    map[string]*ctxn
	// maxVars/maxArgs size a frame that any compiled transaction of the
	// program can reuse.
	maxVars int
	maxArgs int
}

// ctable is a schema with resolved field addressing. Field indices follow
// declaration order with the implicit alive field appended last, so a row
// is a flat []store.Value of nf values.
type ctable struct {
	name    string
	schema  *ast.Schema
	fields  []string
	fieldID map[string]int32
	zeros   []store.Value
	tszero  []int64
	pk      []int32
	nf      int32
	alive   int32
}

// ctxn is one compiled transaction: a flat instruction array plus the frame
// geometry (argument and result-set slot counts) its execution needs.
type ctxn struct {
	name     string
	src      *ast.Txn
	argNames []string
	nvars    int
	code     []cinstr
	ret      cexpr // nil when the transaction returns nothing
}

type cop uint8

const (
	copSelect cop = iota
	copUpdate
	copInsert
	// copIfFalse evaluates cond; unless it is boolean true, jump to a.
	copIfFalse
	// copIterInit evaluates cond; if a positive int, push an iteration
	// counter and fall through, else jump to a (past the loop).
	copIterInit
	// copIterNext advances the innermost counter and jumps back to a while
	// iterations remain; otherwise pops it and falls through.
	copIterNext
)

type cinstr struct {
	op   cop
	a    int32
	cond cexpr
	cmd  *ccmd
}

type ckind uint8

const (
	ckSelect ckind = iota
	ckUpdate
	ckInsert
)

// ccmd is a compiled database command.
type ccmd struct {
	kind  ckind
	label string
	tid   int32

	// where/scan state (select, update). pins are the compiled equality
	// expressions pinning a prefix of the primary key (the sorted-key
	// range narrowing of DESIGN.md §4.4); pinFull marks a full-key pin.
	// whereIsPin marks clauses that are EXACTLY a full-key pin over
	// int/bool key fields: every key in the narrowed window then satisfies
	// the clause by key-encoding injectivity and the per-row evaluation is
	// skipped (string keys are excluded — a string value containing the
	// key separator could alias another tuple's encoding).
	where      cexpr
	pins       []cexpr
	pinFull    bool
	whereIsPin bool

	// select
	varSlot int32
	cols    []int32

	// update
	setF []int32
	setE []cexpr

	// insert: one entry per VALUES assignment in declaration order (the
	// evaluation — and uuid consumption — order), plus the derived write
	// emission order (field-name-sorted, duplicate fields last-wins, the
	// interpreter's order) and the entry feeding each primary-key field.
	insF    []int32
	insE    []cexpr
	insUUID []bool
	emit    []int32
	insPK   []int32
}

// cexpr is a compiled expression: a postfix op sequence evaluated against a
// frame's value stack.
type cexpr []eop

type eopc uint8

const (
	eConst eopc = iota
	eArg
	eIterVar
	eThis
	eField     // i=var slot, j=column, val=zero for the empty result set
	eFieldIdx  // like eField, the 1-based index is popped from the stack
	eFieldMiss // field in schema but never selected: n>0 errors, else zero
	eFieldMissIdx
	eAggCount
	eAggSum
	eAggMin
	eAggMax
	eAggAny
	eUUID
	// Fused where-clause conjuncts: this.f = arg / this.f = literal,
	// collapsing the three-op compare into one dispatch on the per-row
	// hot path.
	eThisEqArg   // i = field id, j = arg slot
	eThisEqConst // i = field id, val = literal
	eAdd
	eSub
	eMul
	eDiv
	eLt
	eLe
	eEq
	eNe
	eGt
	eGe
	eAnd
	eOr
	eAndShort // skip i ops when the top of stack is boolean false
	eOrShort  // skip i ops when the top of stack is boolean true
)

type eop struct {
	op   eopc
	i, j int32
	val  store.Value
	s    string // name for error messages (arg/var/field)
}

// CompileProgram lowers prog. Schema compilation always succeeds (MatStore
// addressing needs it); transactions that cannot be compiled faithfully are
// simply absent from txns and run on the AST interpreter.
func CompileProgram(prog *ast.Program) *Compiled {
	cp := &Compiled{
		prog:    prog,
		tableID: make(map[string]int32, len(prog.Schemas)),
		txns:    make(map[string]*ctxn, len(prog.Txns)),
	}
	for i, s := range prog.Schemas {
		ct := ctable{
			name:    s.Name,
			schema:  s,
			fieldID: map[string]int32{},
		}
		for _, f := range s.Fields {
			ct.fieldID[f.Name] = int32(len(ct.fields))
			ct.fields = append(ct.fields, f.Name)
			ct.zeros = append(ct.zeros, store.Zero(f.Type))
		}
		ct.alive = int32(len(ct.fields))
		ct.fieldID[ast.AliveField] = ct.alive
		ct.fields = append(ct.fields, ast.AliveField)
		ct.zeros = append(ct.zeros, store.BoolV(false))
		ct.nf = int32(len(ct.fields))
		ct.tszero = make([]int64, ct.nf)
		for _, f := range s.PrimaryKey() {
			ct.pk = append(ct.pk, ct.fieldID[f.Name])
		}
		cp.tables = append(cp.tables, ct)
		cp.tableID[s.Name] = int32(i)
	}
	for _, t := range prog.Txns {
		c := &txnCompiler{cp: cp, txn: t}
		ct, err := c.compile()
		if err != nil {
			continue // interpreter fallback for this transaction
		}
		cp.txns[t.Name] = ct
		if ct.nvars > cp.maxVars {
			cp.maxVars = ct.nvars
		}
		if len(ct.argNames) > cp.maxArgs {
			cp.maxArgs = len(ct.argNames)
		}
	}
	return cp
}

func (cp *Compiled) table(name string) (int32, *ctable) {
	id, ok := cp.tableID[name]
	if !ok {
		return -1, nil
	}
	return id, &cp.tables[id]
}

// txnCompiler compiles one transaction.
type txnCompiler struct {
	cp  *Compiled
	txn *ast.Txn

	argSlot map[string]int32
	args    []string

	varSlot map[string]int32
	varTab  []int32   // table id per var slot
	varCols [][]int32 // selected field ids per var slot, in retrieval order

	iterDepth int
	code      []cinstr
}

func (c *txnCompiler) compile() (*ctxn, error) {
	c.argSlot = map[string]int32{}
	c.varSlot = map[string]int32{}
	for _, p := range c.txn.Params {
		c.argSlot[p.Name] = int32(len(c.args))
		c.args = append(c.args, p.Name)
	}
	if err := c.stmts(c.txn.Body); err != nil {
		return nil, err
	}
	out := &ctxn{
		name:     c.txn.Name,
		src:      c.txn,
		argNames: c.args,
		nvars:    len(c.varSlot),
		code:     c.code,
	}
	if c.txn.Ret != nil {
		ret, err := c.expr(c.txn.Ret, nil, false)
		if err != nil {
			return nil, err
		}
		out.ret = ret
	}
	return out, nil
}

func (c *txnCompiler) stmts(body []ast.Stmt) error {
	for _, s := range body {
		switch x := s.(type) {
		case *ast.Skip:
		case *ast.If:
			cond, err := c.expr(x.Cond, nil, false)
			if err != nil {
				return err
			}
			jmp := len(c.code)
			c.code = append(c.code, cinstr{op: copIfFalse, cond: cond})
			if err := c.stmts(x.Then); err != nil {
				return err
			}
			c.code[jmp].a = int32(len(c.code))
		case *ast.Iterate:
			cnt, err := c.expr(x.Count, nil, false)
			if err != nil {
				return err
			}
			init := len(c.code)
			c.code = append(c.code, cinstr{op: copIterInit, cond: cnt})
			c.iterDepth++
			err = c.stmts(x.Body)
			c.iterDepth--
			if err != nil {
				return err
			}
			c.code = append(c.code, cinstr{op: copIterNext, a: int32(init + 1)})
			c.code[init].a = int32(len(c.code))
		case *ast.Select:
			cmd, err := c.selectCmd(x)
			if err != nil {
				return err
			}
			c.code = append(c.code, cinstr{op: copSelect, cmd: cmd})
		case *ast.Update:
			cmd, err := c.updateCmd(x)
			if err != nil {
				return err
			}
			c.code = append(c.code, cinstr{op: copUpdate, cmd: cmd})
		case *ast.Insert:
			cmd, err := c.insertCmd(x)
			if err != nil {
				return err
			}
			c.code = append(c.code, cinstr{op: copInsert, cmd: cmd})
		default:
			return fmt.Errorf("compile: unknown statement %T", s)
		}
	}
	return nil
}

// scan compiles the where clause and its key-range pins for a command on
// table tid.
func (c *txnCompiler) scan(tid int32, ct *ctable, where ast.Expr, cmd *ccmd) error {
	w, err := c.expr(where, ct, false)
	if err != nil {
		return err
	}
	cmd.where = w
	if eqs, ok := ast.WhereEqualities(where); ok {
		pins := map[string]ast.Expr{}
		for _, q := range eqs {
			pins[q.Field] = q.Expr
		}
		simpleKey := true
		for _, f := range ct.schema.PrimaryKey() {
			if f.Type == ast.TString {
				simpleKey = false
			}
			pin, ok := pins[f.Name]
			if !ok {
				break
			}
			pe, err := c.expr(pin, nil, false)
			if err != nil {
				return err
			}
			cmd.pins = append(cmd.pins, pe)
		}
		cmd.pinFull = len(cmd.pins) == len(ct.pk) && len(cmd.pins) > 0
		cmd.whereIsPin = cmd.pinFull && len(eqs) == len(cmd.pins) && simpleKey
	}
	return nil
}

func (c *txnCompiler) selectCmd(x *ast.Select) (*ccmd, error) {
	tid, ct := c.cp.table(x.Table)
	if ct == nil {
		return nil, fmt.Errorf("compile: unknown table %q", x.Table)
	}
	cmd := &ccmd{kind: ckSelect, label: x.Label, tid: tid}
	fields := x.Fields
	if x.Star {
		fields = nil
		for _, f := range ct.schema.Fields {
			fields = append(fields, f.Name)
		}
	}
	for _, f := range fields {
		id, ok := ct.fieldID[f]
		if !ok {
			return nil, fmt.Errorf("compile: %s lacks field %q", x.Table, f)
		}
		cmd.cols = append(cmd.cols, id)
	}
	// Bind the variable. Rebinding is only compiled when the new binding
	// has the same table and column layout — otherwise the column
	// addressing of downstream reads would be ambiguous.
	if slot, ok := c.varSlot[x.Var]; ok {
		if c.varTab[slot] != tid || !equalCols(c.varCols[slot], cmd.cols) {
			return nil, fmt.Errorf("compile: %q rebound with a different shape", x.Var)
		}
		cmd.varSlot = slot
	} else {
		slot := int32(len(c.varTab))
		c.varSlot[x.Var] = slot
		c.varTab = append(c.varTab, tid)
		c.varCols = append(c.varCols, cmd.cols)
		cmd.varSlot = slot
	}
	if err := c.scan(tid, ct, x.Where, cmd); err != nil {
		return nil, err
	}
	return cmd, nil
}

func equalCols(a, b []int32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func (c *txnCompiler) updateCmd(x *ast.Update) (*ccmd, error) {
	tid, ct := c.cp.table(x.Table)
	if ct == nil {
		return nil, fmt.Errorf("compile: unknown table %q", x.Table)
	}
	cmd := &ccmd{kind: ckUpdate, label: x.Label, tid: tid}
	for _, a := range x.Sets {
		id, ok := ct.fieldID[a.Field]
		if !ok {
			return nil, fmt.Errorf("compile: %s lacks field %q", x.Table, a.Field)
		}
		e, err := c.expr(a.Expr, nil, false)
		if err != nil {
			return nil, err
		}
		cmd.setF = append(cmd.setF, id)
		cmd.setE = append(cmd.setE, e)
	}
	if err := c.scan(tid, ct, x.Where, cmd); err != nil {
		return nil, err
	}
	return cmd, nil
}

func (c *txnCompiler) insertCmd(x *ast.Insert) (*ccmd, error) {
	tid, ct := c.cp.table(x.Table)
	if ct == nil {
		return nil, fmt.Errorf("compile: unknown table %q", x.Table)
	}
	cmd := &ccmd{kind: ckInsert, label: x.Label, tid: tid}
	for _, a := range x.Values {
		id, ok := ct.fieldID[a.Field]
		if !ok {
			return nil, fmt.Errorf("compile: %s lacks field %q", x.Table, a.Field)
		}
		_, topUUID := a.Expr.(*ast.UUID)
		e, err := c.expr(a.Expr, nil, true)
		if err != nil {
			return nil, err
		}
		cmd.insF = append(cmd.insF, id)
		cmd.insE = append(cmd.insE, e)
		cmd.insUUID = append(cmd.insUUID, topUUID)
	}
	// Emission order: the interpreter builds a field→value map (duplicate
	// fields last-wins) and emits writes sorted by field name.
	last := map[string]int32{}
	for i, id := range cmd.insF {
		last[ct.fields[id]] = int32(i)
	}
	names := make([]string, 0, len(last))
	for n := range last {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		cmd.emit = append(cmd.emit, last[n])
	}
	for _, pkID := range ct.pk {
		idx, ok := last[ct.fields[pkID]]
		if !ok {
			return nil, fmt.Errorf("compile: insert into %s misses key field %q", x.Table, ct.fields[pkID])
		}
		cmd.insPK = append(cmd.insPK, idx)
	}
	return cmd, nil
}

// expr compiles e to postfix ops. scan is the table being filtered when e
// is a where clause (this.f legal); inInsert permits uuid().
func (c *txnCompiler) expr(e ast.Expr, scan *ctable, inInsert bool) (cexpr, error) {
	var ops cexpr
	var emit func(e ast.Expr) error
	emit = func(e ast.Expr) error {
		switch n := e.(type) {
		case *ast.IntLit:
			ops = append(ops, eop{op: eConst, val: store.IntV(n.Val)})
		case *ast.BoolLit:
			ops = append(ops, eop{op: eConst, val: store.BoolV(n.Val)})
		case *ast.StringLit:
			ops = append(ops, eop{op: eConst, val: store.StringV(n.Val)})
		case *ast.UUID:
			if !inInsert {
				return fmt.Errorf("compile: uuid() outside insert")
			}
			ops = append(ops, eop{op: eUUID})
		case *ast.Arg:
			ops = append(ops, eop{op: eArg, i: c.argRef(n.Name), s: n.Name})
		case *ast.IterVar:
			if c.iterDepth == 0 {
				return fmt.Errorf("compile: iter outside iterate")
			}
			ops = append(ops, eop{op: eIterVar})
		case *ast.ThisField:
			if scan == nil {
				return fmt.Errorf("compile: this.%s outside where", n.Field)
			}
			id, ok := scan.fieldID[n.Field]
			if !ok {
				return fmt.Errorf("compile: %s lacks field %q", scan.name, n.Field)
			}
			ops = append(ops, eop{op: eThis, i: id, s: n.Field})
		case *ast.FieldAt:
			slot, vt, err := c.lookupVar(n.Var)
			if err != nil {
				return err
			}
			col, zero, ok, err := c.column(vt, slot, n.Field)
			if err != nil {
				return err
			}
			if n.Index == nil {
				if ok {
					ops = append(ops, eop{op: eField, i: slot, j: col, val: zero, s: n.Var})
				} else {
					ops = append(ops, eop{op: eFieldMiss, i: slot, val: zero, s: n.Var + "." + n.Field})
				}
			} else {
				if err := emit(n.Index); err != nil {
					return err
				}
				if ok {
					ops = append(ops, eop{op: eFieldIdx, i: slot, j: col, val: zero, s: n.Var})
				} else {
					ops = append(ops, eop{op: eFieldMissIdx, i: slot, val: zero, s: n.Var + "." + n.Field})
				}
			}
		case *ast.Agg:
			slot, vt, err := c.lookupVar(n.Var)
			if err != nil {
				return err
			}
			if n.Fn == ast.AggCount {
				ops = append(ops, eop{op: eAggCount, i: slot})
				break
			}
			col, zero, ok, err := c.column(vt, slot, n.Field)
			if err != nil {
				return err
			}
			if !ok {
				// The interpreter folds over the retrieved map, where a
				// never-selected field degenerates (sum of zeros, invalid
				// comparisons); sema rejects such programs, so no need to
				// reproduce the degeneracy — fall back.
				return fmt.Errorf("compile: agg over unselected field %s.%s", n.Var, n.Field)
			}
			var op eopc
			switch n.Fn {
			case ast.AggSum:
				op = eAggSum
			case ast.AggMin:
				op = eAggMin
			case ast.AggMax:
				op = eAggMax
			case ast.AggAny:
				op = eAggAny
			default:
				return fmt.Errorf("compile: unknown aggregator %v", n.Fn)
			}
			ops = append(ops, eop{op: op, i: slot, j: col, val: zero, s: n.Var})
		case *ast.Binary:
			// Fuse the dominant where-clause conjunct shapes into single
			// ops: this.f = arg and this.f = literal.
			if n.Op == ast.OpEq && scan != nil {
				if tf, isTF := n.L.(*ast.ThisField); isTF {
					if id, knownField := scan.fieldID[tf.Field]; knownField {
						switch r := n.R.(type) {
						case *ast.Arg:
							ops = append(ops, eop{op: eThisEqArg, i: id, j: c.argRef(r.Name), s: r.Name})
							return nil
						case *ast.IntLit:
							ops = append(ops, eop{op: eThisEqConst, i: id, val: store.IntV(r.Val)})
							return nil
						case *ast.BoolLit:
							ops = append(ops, eop{op: eThisEqConst, i: id, val: store.BoolV(r.Val)})
							return nil
						case *ast.StringLit:
							ops = append(ops, eop{op: eThisEqConst, i: id, val: store.StringV(r.Val)})
							return nil
						}
					}
				}
			}
			if err := emit(n.L); err != nil {
				return err
			}
			var short int
			if n.Op == ast.OpAnd || n.Op == ast.OpOr {
				short = len(ops)
				if n.Op == ast.OpAnd {
					ops = append(ops, eop{op: eAndShort})
				} else {
					ops = append(ops, eop{op: eOrShort})
				}
			}
			if err := emit(n.R); err != nil {
				return err
			}
			var op eopc
			switch n.Op {
			case ast.OpAdd:
				op = eAdd
			case ast.OpSub:
				op = eSub
			case ast.OpMul:
				op = eMul
			case ast.OpDiv:
				op = eDiv
			case ast.OpLt:
				op = eLt
			case ast.OpLe:
				op = eLe
			case ast.OpEq:
				op = eEq
			case ast.OpNe:
				op = eNe
			case ast.OpGt:
				op = eGt
			case ast.OpGe:
				op = eGe
			case ast.OpAnd:
				op = eAnd
			case ast.OpOr:
				op = eOr
			default:
				return fmt.Errorf("compile: unknown operator %v", n.Op)
			}
			ops = append(ops, eop{op: op})
			if n.Op == ast.OpAnd || n.Op == ast.OpOr {
				// Jump lands on the final eAnd/eOr, which the main loop then
				// steps past, leaving the short-circuited operand as result.
				ops[short].i = int32(len(ops) - 1 - short)
			}
		default:
			return fmt.Errorf("compile: unknown expression %T", e)
		}
		return nil
	}
	if err := emit(e); err != nil {
		return nil, err
	}
	return ops, nil
}

// argRef resolves (or creates) the argument slot for a named parameter.
// References to undeclared parameters are resolvable only through the
// supplied argument map and get an extra named slot.
func (c *txnCompiler) argRef(name string) int32 {
	slot, ok := c.argSlot[name]
	if !ok {
		slot = int32(len(c.args))
		c.argSlot[name] = slot
		c.args = append(c.args, name)
	}
	return slot
}

func (c *txnCompiler) lookupVar(name string) (int32, *ctable, error) {
	slot, ok := c.varSlot[name]
	if !ok {
		return 0, nil, fmt.Errorf("compile: unknown variable %q", name)
	}
	return slot, &c.cp.tables[c.varTab[slot]], nil
}

// column resolves a field of a result-set slot to its column position. ok
// is false when the field exists in the schema but was not selected (the
// interpreter reads zero from an empty result set and errors on a
// non-empty one — eFieldMiss reproduces that).
func (c *txnCompiler) column(vt *ctable, slot int32, field string) (col int32, zero store.Value, ok bool, err error) {
	id, exists := vt.fieldID[field]
	if !exists {
		return 0, store.Value{}, false, fmt.Errorf("compile: %s lacks field %q", vt.name, field)
	}
	zero = vt.zeros[id]
	for j, cid := range c.varCols[slot] {
		if cid == id {
			return int32(j), zero, true, nil
		}
	}
	return 0, zero, false, nil
}
