// Package cluster is a deterministic discrete-event simulator of a
// three-replica geo-distributed document store, standing in for the
// paper's MongoDB deployment on AWS (§7.2; see DESIGN.md §2 for the
// substitution argument). It models:
//
//   - per-topology network round-trip times (VA / US / Global clusters);
//   - per-replica service stations (statement execution costs queue);
//   - EC mode: statements execute at the client's home replica and
//     replicate asynchronously with last-writer-wins merging;
//   - SC mode: transactions route to the primary, take record locks
//     (two-phase locking), and each write waits for a majority
//     acknowledgement round-trip — the coordination the paper blames for
//     SC's cost;
//   - AT-SC mode: only the transactions the repair left anomalous run SC,
//     the rest run EC (the paper's ▲ AT-SC configuration);
//   - fault injection (fault.go): a seeded FaultPlan of partitions,
//     crashes, lag, clock skew, and message drop/reorder evaluated at the
//     drivers' event-scheduling sites, so both executors replay the same
//     faulted history.
//
// All state lives in one goroutine driven by a virtual-time event queue,
// so runs are deterministic given a seed.
package cluster

// Sim is a virtual-time discrete-event loop. Times are in microseconds.
// The queue is a hand-rolled binary min-heap rather than container/heap:
// the interface-based API boxes every event into an `any`, one heap
// allocation per scheduled event — millions per run — where the typed
// version amortizes to zero.
type Sim struct {
	now   int64
	seq   int64
	queue []event
}

type event struct {
	at  int64
	seq int64 // tie-breaker for determinism
	fn  func()
}

func eventLess(a, b *event) bool {
	if a.at != b.at {
		return a.at < b.at
	}
	return a.seq < b.seq
}

// Now returns the current virtual time in microseconds.
func (s *Sim) Now() int64 { return s.now }

// At schedules fn to run after delay microseconds (clamped to now).
func (s *Sim) At(delay int64, fn func()) {
	if delay < 0 {
		delay = 0
	}
	s.seq++
	q := append(s.queue, event{at: s.now + delay, seq: s.seq, fn: fn})
	// Sift up.
	i := len(q) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !eventLess(&q[i], &q[parent]) {
			break
		}
		q[i], q[parent] = q[parent], q[i]
		i = parent
	}
	s.queue = q
}

// Run processes events until the queue drains or virtual time passes
// until (microseconds).
func (s *Sim) Run(until int64) {
	for len(s.queue) > 0 {
		e := s.queue[0]
		if e.at > until {
			s.now = until
			return
		}
		s.pop()
		s.now = e.at
		e.fn()
	}
}

// pop removes the minimum event and restores the heap.
func (s *Sim) pop() {
	q := s.queue
	n := len(q) - 1
	q[0] = q[n]
	q[n] = event{} // release the fn reference
	q = q[:n]
	// Sift down.
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < n && eventLess(&q[l], &q[least]) {
			least = l
		}
		if r < n && eventLess(&q[r], &q[least]) {
			least = r
		}
		if least == i {
			break
		}
		q[i], q[least] = q[least], q[i]
		i = least
	}
	s.queue = q
}

// station is a FIFO k-server queue modeled by per-server busy-until
// horizons: a job arriving at t with cost c runs on the earliest-free
// server and completes at max(t, horizon) + c.
type station struct {
	horizons []int64
}

func newStation(servers int) station {
	if servers < 1 {
		servers = 1
	}
	return station{horizons: make([]int64, servers)}
}

// serve returns the completion time of a job with the given cost arriving
// now, and advances the chosen server's horizon.
func (st *station) serve(now, cost int64) int64 {
	if len(st.horizons) == 0 {
		st.horizons = []int64{0}
	}
	best := 0
	for i, h := range st.horizons {
		if h < st.horizons[best] {
			best = i
		}
	}
	start := now
	if st.horizons[best] > start {
		start = st.horizons[best]
	}
	st.horizons[best] = start + cost
	return st.horizons[best]
}
