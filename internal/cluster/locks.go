package cluster

import "atropos/internal/store"

// Record locking shared by both executors: the interpreter's txnRun and the
// compiled cTxnRun embed a lockCore, so lock ownership, FIFO waiting,
// deadlock detection, and timeout arbitration behave identically — and
// interact correctly when one run mixes engines (a transaction the compiler
// fell back on contends with compiled ones).

type lockKey struct {
	table string
	key   store.Key
}

type lockState struct {
	owner   *lockCore
	waiters []waiter
}

// waiter is one queued lock request with the generation its core had when
// it blocked: a wake-up is only honored by the wait it was issued for —
// a core that aborted and is now blocked on a different lock must ignore
// wake-ups addressed to its dead wait (they would otherwise restart the
// new wait's timeout window and duplicate its queue entry).
type waiter struct {
	c   *lockCore
	gen int
}

// lockCore is one transaction attempt's lock state. A core has at most one
// outstanding wait, so the wait's continuation lives in fields consumed on
// wake-up — waiting allocates no closures (wake and timeout events are
// pooled on the driver for the same reason).
type lockCore struct {
	d         *driver
	gen       int // invalidates stale wakeups/timeouts after abort
	waitEpoch int // distinguishes successive waits within one attempt
	waiting   bool
	blockedOn *lockState // the lock this run is waiting for, if any
	held      []lockKey
	// onAbort aborts and retries the owning transaction (engine-specific).
	onAbort func()
	// Pending-wait state consumed on wake-up.
	wantPending []lockKey
	contPending func()
}

// acquire takes the locks (FIFO) or queues behind a holder; a timeout
// aborts and retries the transaction.
func (t *lockCore) acquire(want []lockKey, cont func()) {
	d := t.d
	for _, lk := range want {
		ls := d.locks[lk]
		if ls == nil {
			ls = d.getLockState()
			d.locks[lk] = ls
		}
		if ls.owner == nil || ls.owner == t {
			if ls.owner == nil {
				ls.owner = t
				t.held = append(t.held, lk)
			}
			continue
		}
		// Deadlock detection: walk the wait-for chain from the lock's
		// owner; if it leads back to us, abort immediately (the requester
		// is the victim, as in MongoDB's write-conflict aborts) instead of
		// stalling until the timeout.
		if t.wouldDeadlock(ls) {
			t.onAbort()
			return
		}
		// Blocked: wait on this lock, retry the full set on wake-up. The
		// epoch ties the timeout to this particular wait, so a timer from
		// an earlier wait that ended cannot abort a later one prematurely.
		ls.waiters = append(ls.waiters, waiter{c: t, gen: t.gen})
		t.waiting = true
		t.blockedOn = ls
		t.waitEpoch++
		t.wantPending, t.contPending = want, cont
		d.scheduleLockTimeout(t)
		return
	}
	cont()
}

// wakeEv is one pooled wake-up event: it resumes the wait the release
// addressed (same generation, still waiting) and is a no-op for waits
// that aborted meanwhile. Within one generation a core has at most one
// outstanding wait, so wantPending/contPending are the woken wait's.
type wakeEv struct {
	d   *driver
	c   *lockCore
	gen int
	fn  func()
}

func (d *driver) scheduleWake(w waiter) {
	var e *wakeEv
	if n := len(d.wakePool); n > 0 {
		e = d.wakePool[n-1]
		d.wakePool = d.wakePool[:n-1]
	} else {
		e = &wakeEv{d: d}
		e.fn = func() {
			c, gen := e.c, e.gen
			e.c = nil
			e.d.wakePool = append(e.d.wakePool, e)
			if c.gen != gen || !c.waiting {
				return
			}
			c.waiting = false
			c.blockedOn = nil
			c.acquire(c.wantPending, c.contPending)
		}
	}
	e.c, e.gen = w.c, w.gen
	d.sim.At(0, e.fn)
}

// lockTimer is one pooled lock-timeout event with a pre-bound callback.
type lockTimer struct {
	d          *driver
	t          *lockCore
	gen, epoch int
	fn         func()
}

func (d *driver) scheduleLockTimeout(t *lockCore) {
	var e *lockTimer
	if n := len(d.timerPool); n > 0 {
		e = d.timerPool[n-1]
		d.timerPool = d.timerPool[:n-1]
	} else {
		e = &lockTimer{d: d}
		e.fn = func() {
			c, gen, epoch := e.t, e.gen, e.epoch
			e.t = nil
			e.d.timerPool = append(e.d.timerPool, e)
			if c.gen == gen && c.waiting && c.waitEpoch == epoch {
				c.onAbort()
			}
		}
	}
	e.t, e.gen, e.epoch = t, t.gen, t.waitEpoch
	d.sim.At(d.cfg.LockTimeout, e.fn)
}

// wouldDeadlock reports whether waiting on ls closes a wait-for cycle
// through us.
func (t *lockCore) wouldDeadlock(ls *lockState) bool {
	cur := ls.owner
	for hops := 0; cur != nil && hops < 64; hops++ {
		if cur == t {
			return true
		}
		if cur.blockedOn == nil {
			return false
		}
		cur = cur.blockedOn.owner
	}
	return false
}

// abortLocks is the common abort bookkeeping: clear the wait, free the
// held locks, and invalidate outstanding wakeups/timeouts.
func (t *lockCore) abortLocks() {
	t.waiting = false
	t.blockedOn = nil
	t.release()
	t.gen++
}

func (t *lockCore) release() {
	d := t.d
	for _, lk := range t.held {
		ls := d.locks[lk]
		if ls == nil || ls.owner != t {
			continue
		}
		ls.owner = nil
		waiters := ls.waiters
		ls.waiters = nil
		if len(waiters) == 0 {
			// Nobody waits and nothing references this entry any more:
			// recycle it. Without this the lock table grows one entry per
			// inserted record for the lifetime of the run (and allocates a
			// fresh lockState per insert), which sinks long ops-bounded
			// runs on insert-heavy workloads.
			delete(d.locks, lk)
			d.lockPool = append(d.lockPool, ls)
			continue
		}
		for _, w := range waiters {
			d.scheduleWake(w)
		}
	}
	t.held = t.held[:0]
}

func (d *driver) getLockState() *lockState {
	if n := len(d.lockPool); n > 0 {
		ls := d.lockPool[n-1]
		d.lockPool = d.lockPool[:n-1]
		return ls
	}
	return &lockState{}
}
