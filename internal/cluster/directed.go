package cluster

import (
	"fmt"

	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/store"
)

// This file implements the simulator's directed scheduler mode: instead of
// a randomized open-loop workload, exactly two transaction instances run
// under a caller-supplied interleaving (which command executes at which
// slot) and a caller-supplied per-command visibility relation (which of the
// other instance's write batches each command's local view contains). It is
// the execution backend for internal/replay, which lowers the anomaly
// detector's witness schedules — ord as the slot order, vis as the view
// contents — into concrete runs and checks that the statically claimed
// dependency cycle manifests. The run records, per executed command, the
// version of every relevant field it read (with the batch that wrote it)
// and every write it produced, so the caller can rebuild the dynamic
// dependency graph.
//
// Semantics match the EC interpreter client: a command sees the seeded
// base state, all of its own instance's earlier writes, and exactly the
// other-instance batches the visibility relation grants it, merged
// last-writer-wins in timestamp order. EC places no monotonicity
// constraint on views ("arbitrary subsets of committed batches"), so each
// command's view is built independently — exactly the freedom the static
// encoding's vis relation has.

// DirectedTxn names one transaction instance and its arguments.
type DirectedTxn struct {
	Name string
	Args map[string]store.Value
}

// DirectedStep pins one slot of the interleaving: instance Inst executes
// its static command Cmd (index into ast.Commands of the transaction
// body). Commands a branch skips dynamically give up their slot; commands
// that repeat under iterate execute within their slot until the dynamic
// stream moves past it.
type DirectedStep struct {
	Inst int
	Cmd  int
}

// DirectedConfig describes one directed two-transaction run.
type DirectedConfig struct {
	Program *ast.Program
	// Rows seed the initial database state (alive, timestamp 0).
	Rows []benchmarks.TableRow
	Txns [2]DirectedTxn
	// Steps is the slot order; typically one slot per static command of
	// both instances, in the witness schedule's ord order.
	Steps []DirectedStep
	// Vis reports whether the writes of the other instance's static
	// command (fromInst, fromCmd) are in the local view of (toInst, toCmd).
	// nil means nothing cross-instance is ever visible.
	Vis func(fromInst, fromCmd, toInst, toCmd int) bool
	// Trace, when non-nil, records applied batches and commits in the
	// simulator's canonical event format.
	Trace *Trace
	// MaxOps bounds executed commands (default 4096) so adversarial
	// iterate counts cannot hang a replay.
	MaxOps int
}

// ReadObs is one observed field read of one record.
type ReadObs struct {
	Table string
	Key   store.Key
	Field string
}

// BatchRef identifies one applied write batch: the static command that
// produced it and its merge timestamp.
type BatchRef struct {
	Inst int
	Cmd  int
	TS   int64
}

// DirectedObs is one executed command's observation record: the batches
// its local view contained (the realized vis relation), the fields it read
// from which records, and the writes it produced. Together these let the
// caller derive the execution's Adya-style dependency edges exactly as the
// static encoding defines them — wr on view containment, ww on timestamp
// order, rw on view non-containment.
type DirectedObs struct {
	Inst   int
	Cmd    int
	TS     int64 // apply timestamp of this command's write batch
	View   []BatchRef
	Reads  []ReadObs
	Writes []WriteOp
}

// DirectedResult is a directed run's outcome.
type DirectedResult struct {
	Obs  []DirectedObs
	Done [2]bool // instance ran its transaction to completion
	Ret  [2]store.Value
}

// trackedView is one command's local view: a clone of the seeded base with
// the visible batches applied in timestamp order, remembering which
// batches it contains. Read recording filters to the command's static read
// set — the fields the detector's encoding says the command reads —
// because the executor materializes whole rows while scanning.
type trackedView struct {
	ms        *MatStore
	applied   []BatchRef
	table     string
	fields    map[string]bool
	recording bool
	reads     []ReadObs
}

// Schema implements DBView.
func (v *trackedView) Schema(table string) *ast.Schema { return v.ms.Schema(table) }

// Keys implements DBView.
func (v *trackedView) Keys(table string) []store.Key { return v.ms.Keys(table) }

// Read implements DBView, recording filtered observations.
func (v *trackedView) Read(table string, key store.Key, field string) store.Value {
	if v.recording && table == v.table && v.fields[field] {
		v.reads = append(v.reads, ReadObs{Table: table, Key: key, Field: field})
	}
	return v.ms.Read(table, key, field)
}

// Alive implements DBView through Read so presence checks are observed
// (phantom dependencies flow through the alive field).
func (v *trackedView) Alive(table string, key store.Key) bool {
	val := v.Read(table, key, ast.AliveField)
	return val.T == ast.TBool && val.B
}

// apply merges one batch into the view and records its membership.
func (v *trackedView) apply(inst, cmd int, ts int64, ws []WriteOp) {
	for _, w := range ws {
		v.ms.Apply(w, ts)
	}
	v.applied = append(v.applied, BatchRef{Inst: inst, Cmd: cmd, TS: ts})
}

type appliedBatch struct {
	inst, cmd int
	ts        int64
	writes    []WriteOp
}

type directedRun struct {
	cfg     DirectedConfig
	base    *MatStore
	execs   [2]*TxnExec
	cmdIdx  [2]map[ast.DBCommand]int
	readSet [2][]map[string]bool // static read sets by command index
	tables  [2][]string
	batches []appliedBatch // timestamp order
	cur     [2]DBView      // control-flow view: last command's view + own writes
	uuid    *UUIDGen
	sim     *Sim
	seq     int64
	obs     []DirectedObs
}

// directedSlotGap is the virtual time between slots (µs), giving Trace
// events distinct, human-readable timestamps.
const directedSlotGap = 1000

// RunDirected executes one directed two-transaction run.
func RunDirected(cfg DirectedConfig) (*DirectedResult, error) {
	if cfg.MaxOps <= 0 {
		cfg.MaxOps = 4096
	}
	r := &directedRun{cfg: cfg, base: NewMatStore(cfg.Program), uuid: &UUIDGen{}, sim: &Sim{}}
	for _, row := range cfg.Rows {
		if err := r.base.Load(row.Table, row.Row); err != nil {
			return nil, err
		}
	}
	for inst := 0; inst < 2; inst++ {
		txn := cfg.Program.Txn(cfg.Txns[inst].Name)
		if txn == nil {
			return nil, fmt.Errorf("cluster: directed: unknown transaction %q", cfg.Txns[inst].Name)
		}
		cmds := ast.Commands(txn.Body)
		r.cmdIdx[inst] = make(map[ast.DBCommand]int, len(cmds))
		r.readSet[inst] = make([]map[string]bool, len(cmds))
		r.tables[inst] = make([]string, len(cmds))
		for i, c := range cmds {
			r.cmdIdx[inst][c] = i
			schema := cfg.Program.Schema(c.TableName())
			if schema == nil {
				return nil, fmt.Errorf("cluster: directed: unknown table %q", c.TableName())
			}
			rs := map[string]bool{}
			for _, f := range ast.CommandAccess(c, schema).Reads {
				rs[f] = true
			}
			switch c.(type) {
			case *ast.Select, *ast.Update:
				rs[ast.AliveField] = true
			}
			r.readSet[inst][i] = rs
			r.tables[inst][i] = c.TableName()
		}
		r.execs[inst] = NewTxnExec(cfg.Program, txn, cfg.Txns[inst].Args)
		r.cur[inst] = r.base
	}

	executed := 0
	step := func(inst int) error {
		executed++
		if executed > cfg.MaxOps {
			return fmt.Errorf("cluster: directed: schedule exceeded %d operations", cfg.MaxOps)
		}
		return r.execOne(inst)
	}
	var runErr error
	for i := 0; i < len(cfg.Steps) && runErr == nil; {
		st := cfg.Steps[i]
		if st.Inst < 0 || st.Inst > 1 {
			return nil, fmt.Errorf("cluster: directed: bad step instance %d", st.Inst)
		}
		e := r.execs[st.Inst]
		if e.Done() {
			i++
			continue
		}
		cmd, err := e.Advance(r.cur[st.Inst])
		if err != nil {
			runErr = err
			break
		}
		if cmd == nil {
			i++
			continue
		}
		cidx, ok := r.cmdIdx[st.Inst][cmd]
		if !ok {
			return nil, fmt.Errorf("cluster: directed: unmapped command %s", cmd.CmdLabel())
		}
		if cidx > st.Cmd {
			// The dynamic stream already passed this slot's command (a branch
			// skipped it): the slot is forfeited.
			i++
			continue
		}
		// cidx <= st.Cmd: execute. An earlier command catching up (iterate
		// repeats) keeps the slot until the stream reaches it.
		if err := step(st.Inst); err != nil {
			runErr = err
			break
		}
		if cidx == st.Cmd {
			i++
		}
	}
	// Drain: run both instances to completion (commands past the last slot
	// keep their own static visibility rows; only their relative order with
	// the other instance is no longer pinned).
	for inst := 0; inst < 2 && runErr == nil; inst++ {
		for !r.execs[inst].Done() {
			cmd, err := r.execs[inst].Advance(r.cur[inst])
			if err != nil {
				runErr = err
				break
			}
			if cmd == nil {
				break
			}
			if err := step(inst); err != nil {
				runErr = err
				break
			}
		}
	}
	if runErr != nil {
		return nil, runErr
	}
	out := &DirectedResult{Obs: r.obs}
	for inst := 0; inst < 2; inst++ {
		out.Done[inst] = r.execs[inst].Done()
		out.Ret[inst] = r.execs[inst].Result()
		if cfg.Trace != nil {
			cfg.Trace.commit(r.sim.Now(), inst, cfg.Txns[inst].Name, true)
		}
	}
	return out, nil
}

// visible consults the configured visibility relation.
func (r *directedRun) visible(fromInst, fromCmd, toInst, toCmd int) bool {
	if r.cfg.Vis == nil {
		return false
	}
	return r.cfg.Vis(fromInst, fromCmd, toInst, toCmd)
}

// buildView constructs (inst, cidx)'s local view: base state, own earlier
// batches, and the visible other-instance batches, merged in timestamp
// order.
func (r *directedRun) buildView(inst, cidx int) *trackedView {
	v := &trackedView{
		ms:     r.base.Clone(),
		table:  r.tables[inst][cidx],
		fields: r.readSet[inst][cidx],
	}
	for _, b := range r.batches {
		if b.inst != inst && !r.visible(b.inst, b.cmd, inst, cidx) {
			continue
		}
		v.apply(b.inst, b.cmd, b.ts, b.writes)
	}
	return v
}

// execOne executes the pending command of inst inside a simulator event,
// recording its observations and publishing its writes.
func (r *directedRun) execOne(inst int) error {
	var err error
	r.sim.At(directedSlotGap, func() {
		e := r.execs[inst]
		var cmd ast.DBCommand
		cmd, err = e.Advance(r.cur[inst])
		if err != nil || cmd == nil {
			return
		}
		cidx := r.cmdIdx[inst][cmd]
		view := r.buildView(inst, cidx)
		view.recording = true
		var writes []WriteOp
		writes, err = e.Exec(view, r.uuid)
		if err != nil {
			return
		}
		view.recording = false
		r.seq++
		ts := r.seq
		r.obs = append(r.obs, DirectedObs{
			Inst: inst, Cmd: cidx, TS: ts,
			View:  append([]BatchRef(nil), view.applied...),
			Reads: view.reads, Writes: writes,
		})
		if len(writes) > 0 {
			r.batches = append(r.batches, appliedBatch{inst: inst, cmd: cidx, ts: ts, writes: writes})
			if r.cfg.Trace != nil {
				r.cfg.Trace.applyOps(r.sim.Now(), inst, ts, writes)
			}
			// The instance reads its own writes from here on.
			view.apply(inst, cidx, ts, writes)
		}
		r.cur[inst] = view
	})
	r.sim.Run(r.sim.Now() + 10*directedSlotGap)
	return err
}
