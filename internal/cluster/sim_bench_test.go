package cluster

import (
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// BenchmarkSim* measure the simulator itself, per committed transaction:
// the run is ops-bounded at b.N, so ns/op is wall time per simulated
// transaction and allocs/op is the per-transaction allocation count — the
// number that must stay O(1) in run duration and table size (DESIGN.md §9).
// The *Interp variants run the AST-walking oracle on the identical
// workload; the ratio is the compiled executor's speedup.

func benchSim(b *testing.B, benchName string, mode Mode, interp bool) {
	bench := benchmarks.ByName(benchName)
	prog, err := bench.Program()
	if err != nil {
		b.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 100}
	cfg := Config{
		Program:        prog,
		Mix:            bench.Mix,
		Scale:          scale,
		Rows:           bench.Rows(scale),
		Topology:       USCluster,
		Clients:        25,
		Duration:       time.Hour, // unused: the run stops at Ops
		Warmup:         100 * time.Millisecond,
		Seed:           3,
		Mode:           mode,
		UseInterpreter: interp,
		Ops:            int64(b.N),
	}
	if mode == ModeATSC {
		cfg.SerializableTxns = map[string]bool{}
		for i, txn := range prog.Txns {
			if i%2 == 0 {
				cfg.SerializableTxns[txn.Name] = true
			}
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	res, err := Run(cfg)
	if err != nil {
		b.Fatal(err)
	}
	if res.Committed != int64(b.N) {
		b.Fatalf("committed %d txns, want %d", res.Committed, b.N)
	}
}

func BenchmarkSimEC_SmallBank(b *testing.B)   { benchSim(b, "SmallBank", ModeEC, false) }
func BenchmarkSimSC_SmallBank(b *testing.B)   { benchSim(b, "SmallBank", ModeSC, false) }
func BenchmarkSimATSC_SmallBank(b *testing.B) { benchSim(b, "SmallBank", ModeATSC, false) }
func BenchmarkSimEC_SEATS(b *testing.B)       { benchSim(b, "SEATS", ModeEC, false) }
func BenchmarkSimEC_TPCC(b *testing.B)        { benchSim(b, "TPC-C", ModeEC, false) }
func BenchmarkSimSC_TPCC(b *testing.B)        { benchSim(b, "TPC-C", ModeSC, false) }

// The AST-oracle baselines (the pre-compilation executor).
func BenchmarkSimInterpEC_SmallBank(b *testing.B) { benchSim(b, "SmallBank", ModeEC, true) }
func BenchmarkSimInterpSC_SmallBank(b *testing.B) { benchSim(b, "SmallBank", ModeSC, true) }
func BenchmarkSimInterpEC_TPCC(b *testing.B)      { benchSim(b, "TPC-C", ModeEC, true) }
