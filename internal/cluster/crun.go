package cluster

import "atropos/internal/store"

// Compiled-executor driving: the event-for-event mirror of runEC and
// txnRun, restructured as persistent state machines so steady-state
// execution schedules the same virtual-time events as the interpreter
// (identical histories) without allocating closures per statement. Each
// client owns one cframe, one EC tick closure, and one reusable SC run;
// replication batches and their delivery events come from driver pools.

// ecStep advances the client's compiled EC transaction by one phase:
// 0 = advance control flow and ship the next statement to the home replica,
// 1 = queue on the replica's station, 2 = execute, apply, and replicate.
// The phases schedule exactly the events runEC's nested closures do.
func (c *client) ecStep() {
	d := c.d
	if d.execErr != nil {
		return
	}
	r := d.replicas[c.home]
	v := cview{ms: r.state}
	switch c.ecPhase {
	case 0:
		cmd, err := c.fr.advance()
		if err != nil {
			d.fail(err)
			return
		}
		if cmd == nil {
			c.finishFn()
			return
		}
		c.ecPhase = 1
		d.sim.At(d.ecDelay(r.id), c.ecTick)
	case 1:
		done := r.station.serve(d.sim.Now(), d.cfg.StmtCost)
		c.ecPhase = 2
		d.sim.At(done-d.sim.Now(), c.ecTick)
	default:
		writes, err := c.fr.exec(v, d.uuid)
		if err != nil {
			d.fail(err)
			return
		}
		ts := d.tsAt(r.id)
		r.state.applyC(writes, ts)
		if d.cfg.Trace != nil && len(writes) > 0 {
			d.cfg.Trace.applyC(d.sim.Now(), r.id, ts, d.cp, writes)
		}
		d.creplicate(r.id, writes, ts)
		c.ecPhase = 0
		d.sim.At(d.cfg.Topology.ClientRTT/2, c.ecTick)
	}
}

func (c *client) runECCompiled(ct *ctxn, args map[string]store.Value) {
	c.fr.reset(ct, args)
	c.ecPhase = 0
	c.ecStep()
}

// runSC launches (or relaunches) the client's reusable compiled SC run.
func (c *client) runSC(ct *ctxn, args map[string]store.Value) {
	if c.scRun == nil {
		t := &cTxnRun{c: c}
		t.lockCore.d = c.d
		t.lockCore.onAbort = t.abort
		t.fr = newCFrame(c.d.cp)
		t.ov = newCOverlay(c.d.replicas[primary].state)
		t.stepF = t.step
		t.execF = t.exec
		t.contF = t.cont
		t.beginF = t.begin
		c.scRun = t
	}
	c.scRun.ct = ct
	c.scRun.args = args
	c.scRun.begin()
}

// cTxnRun is one compiled SC transaction attempt: statements execute at the
// primary under two-phase record locking with writes buffered in a compiled
// overlay; lock waits that exceed the timeout abort and retry. It mirrors
// txnRun's event sequence exactly.
type cTxnRun struct {
	lockCore
	c    *client
	ct   *ctxn
	args map[string]store.Value
	fr   *cframe
	ov   *coverlay
	want []lockKey
	wbuf []cwrite
	rows []int32
	// Bound once; rescheduled for every statement of every attempt.
	stepF, execF, contF, beginF func()
}

func (t *cTxnRun) begin() {
	d := t.c.d
	t.gen++
	t.fr.reset(t.ct, t.args)
	t.ov.reset()
	t.held = t.held[:0]
	// Client → primary (deferred to recovery while the primary is down).
	d.sim.At(d.scDelay(t.c), t.stepF)
}

func (t *cTxnRun) view() cview {
	return cview{ms: t.c.d.replicas[primary].state, ov: t.ov}
}

// step advances one statement: footprint → locks → service → execute.
func (t *cTxnRun) step() {
	d := t.c.d
	if d.execErr != nil {
		return
	}
	cmd, err := t.fr.advance()
	if err != nil {
		d.fail(err)
		return
	}
	if cmd == nil {
		t.commit()
		return
	}
	tid, keys, err := t.fr.footprint(t.view(), d.uuid)
	if err != nil {
		d.fail(err)
		return
	}
	tname := d.cp.tables[tid].name
	t.want = t.want[:0]
	for _, k := range keys {
		t.want = append(t.want, lockKey{tname, k})
	}
	t.acquire(t.want, t.contF)
}

// cont runs once the statement's locks are held: queue at the primary.
func (t *cTxnRun) cont() {
	d := t.c.d
	r := d.replicas[primary]
	done := r.station.serve(d.sim.Now()+d.cfg.StmtOverhead, d.cfg.StmtCost)
	d.sim.At(done-d.sim.Now(), t.execF)
}

// exec executes the pending statement against the overlay view.
func (t *cTxnRun) exec() {
	d := t.c.d
	writes, err := t.fr.exec(t.view(), d.uuid)
	if err != nil {
		d.fail(err)
		return
	}
	for _, w := range writes {
		t.ov.buffer(w)
	}
	if len(writes) > 0 {
		// Majority acknowledgement round trip per write statement.
		d.sim.At(d.ackDelay(), t.stepF)
	} else {
		t.step()
	}
}

func (t *cTxnRun) abort() {
	d := t.c.d
	d.countAbort()
	if d.cfg.Trace != nil {
		d.cfg.Trace.abort(d.sim.Now(), t.c.id, t.ct.name)
	}
	t.abortLocks()
	// Retry after a short randomized backoff.
	back := int64(d.rng.Intn(4000) + 500)
	d.sim.At(back, t.beginF)
}

// commit applies the buffered writes at the primary, replicates them, and
// replies to the client.
func (t *cTxnRun) commit() {
	d := t.c.d
	t.wbuf = t.wbuf[:0]
	t.wbuf, t.rows = t.ov.commitWrites(t.wbuf, t.rows)
	ts := d.tsAt(primary)
	d.replicas[primary].state.applyC(t.wbuf, ts)
	if d.cfg.Trace != nil && len(t.wbuf) > 0 {
		d.cfg.Trace.applyC(d.sim.Now(), primary, ts, d.cp, t.wbuf)
	}
	d.creplicate(primary, t.wbuf, ts)
	t.release()
	d.sim.At(t.c.primaryRTT()/2, t.c.finishFn)
}

// repBatch is a replication payload shared by the deliveries to the other
// two replicas; it returns to the pool when the last delivery lands.
type repBatch struct {
	ops  []cwrite
	ts   int64
	refs int
}

// repEv is one pooled delivery event with a pre-bound callback, so shipping
// a batch schedules no fresh closures.
type repEv struct {
	d     *driver
	tgt   *replica
	batch *repBatch
	fn    func()
}

func (d *driver) getBatch() *repBatch {
	if n := len(d.batchPool); n > 0 {
		b := d.batchPool[n-1]
		d.batchPool = d.batchPool[:n-1]
		return b
	}
	return &repBatch{}
}

func (d *driver) getRepEv() *repEv {
	if n := len(d.repPool); n > 0 {
		e := d.repPool[n-1]
		d.repPool = d.repPool[:n-1]
		return e
	}
	e := &repEv{d: d}
	e.fn = func() {
		// Applying remote ops consumes service capacity but blocks no one.
		e.tgt.station.serve(e.d.sim.Now(), e.d.cfg.StmtCost/2)
		e.tgt.state.applyC(e.batch.ops, e.batch.ts)
		if e.d.cfg.Trace != nil {
			e.d.cfg.Trace.applyC(e.d.sim.Now(), e.tgt.id, e.batch.ts, e.d.cp, e.batch.ops)
		}
		b := e.batch
		e.batch, e.tgt = nil, nil
		e.d.repPool = append(e.d.repPool, e)
		b.refs--
		if b.refs == 0 {
			b.ops = b.ops[:0]
			e.d.batchPool = append(e.d.batchPool, b)
		}
	}
	return e
}

// creplicate ships a compiled write batch to the other replicas
// asynchronously, mirroring replicate's event schedule.
func (d *driver) creplicate(from int, ws []cwrite, ts int64) {
	if len(ws) == 0 {
		return
	}
	b := d.getBatch()
	b.ops = append(b.ops[:0], ws...)
	b.ts = ts
	b.refs = 2
	for j := 0; j < 3; j++ {
		if j == from {
			continue
		}
		e := d.getRepEv()
		e.tgt = d.replicas[j]
		e.batch = b
		d.sim.At(d.repDelay(from, j), e.fn)
	}
}
