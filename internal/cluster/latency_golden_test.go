package cluster

import (
	"fmt"
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// TestLatencyPercentilesGolden pins the latency distribution of an
// ops-bounded SmallBank run per topology: virtual time makes the
// percentiles machine-independent, the fixed ops target makes the sample
// count exact, and the seeded reservoir makes the percentile estimate
// reproducible — so any drift in the simulator's timing model, the
// reservoir's sampling, or the executor's statement scheduling shows up as
// an exact-value diff. Regenerate deliberately with -run
// TestLatencyPercentilesGolden -v after an intentional timing-model change.
func TestLatencyPercentilesGolden(t *testing.T) {
	golden := map[string][3]float64{ // topology -> {p50, p95, p99} in ms
		"VA":     {42.75, 86.15, 86.75},
		"US":     {43, 86.5, 87},
		"Global": {43, 86.5, 87.25},
	}
	b := benchmarks.SmallBank
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 50}
	for _, topo := range Topologies() {
		cfg := Config{
			Program:  prog,
			Mix:      b.Mix,
			Scale:    scale,
			Rows:     b.Rows(scale),
			Topology: topo,
			Clients:  24,
			Duration: time.Hour, // unused: the run stops at Ops
			Warmup:   200 * time.Millisecond,
			Ops:      2000,
			Seed:     23,
			Mode:     ModeEC,
		}
		res, err := Run(cfg)
		if err != nil {
			t.Fatalf("%s: %v", topo.Name, err)
		}
		if res.Committed != cfg.Ops {
			t.Fatalf("%s: committed %d, want %d", topo.Name, res.Committed, cfg.Ops)
		}
		got := [3]float64{res.Point.P50Ms, res.Point.P95Ms, res.Point.P99Ms}
		want := golden[topo.Name]
		if got != want {
			t.Errorf("%s: p50/p95/p99 = %v, golden %v", topo.Name, got, want)
			t.Logf("regen: %q: {%s},", topo.Name, fmt.Sprintf("%v, %v, %v", got[0], got[1], got[2]))
		}
	}
}
