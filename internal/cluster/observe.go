package cluster

import (
	"fmt"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// Observation mode: a full randomized run (any Mode, any FaultPlan) that
// records, per executed command of every transaction instance, the same
// DirectedObs records the directed scheduler produces — which batches the
// command's local view contained, which fields it read, which writes it
// made. internal/replay derives the execution's Adya-style dependency
// graph from these and counts violation instances, which is what the
// chaos harness points at faulted executions. Observation forces the AST
// interpreter (the reference executor); it never runs on the hot compiled
// path.
//
// Views here are positional: each replica keeps an apply log of batch
// references, and a command's view is the log prefix of its replica at
// execution time — exactly the batches merged into the state it read.
// SC attempts buffer their records and flush at commit with the commit
// timestamp (one log entry per writing command, all sharing the batch
// timestamp: atomic visibility); aborted attempts are discarded, matching
// their rolled-back writes. EC statements record immediately: their
// writes apply and replicate before the transaction finishes, so they are
// visible to others whether or not the closed loop reaches the end.

// Observation receives a run's observation records (Config.Observe).
type Observation struct {
	// Obs is one record per executed command, in execution order.
	Obs []DirectedObs
	// Txns names the transaction of each instance id.
	Txns []string
}

// obsTxnMeta is the per-transaction static command metadata: command
// indices and per-command read sets, mirroring the directed scheduler.
type obsTxnMeta struct {
	cmdIdx  map[ast.DBCommand]int
	readSet []map[string]bool
	tables  []string
}

// obsState is the driver's observation recorder.
type obsState struct {
	d    *driver
	meta map[string]*obsTxnMeta
	logs [3][]BatchRef // per-replica applied batches, in apply order
	obs  []DirectedObs
	txns []string
	view obsView // reused wrapper; records are copied out per command
}

func newObsState(d *driver) *obsState {
	return &obsState{d: d, meta: map[string]*obsTxnMeta{}}
}

// metaFor lazily builds the static command metadata of one transaction.
func (o *obsState) metaFor(name string, txn *ast.Txn) *obsTxnMeta {
	if m, ok := o.meta[name]; ok {
		return m
	}
	cmds := ast.Commands(txn.Body)
	m := &obsTxnMeta{
		cmdIdx:  make(map[ast.DBCommand]int, len(cmds)),
		readSet: make([]map[string]bool, len(cmds)),
		tables:  make([]string, len(cmds)),
	}
	for i, c := range cmds {
		m.cmdIdx[c] = i
		schema := o.d.cfg.Program.Schema(c.TableName())
		if schema == nil {
			o.d.fail(fmt.Errorf("cluster: observe: unknown table %q", c.TableName()))
			break
		}
		rs := map[string]bool{}
		for _, f := range ast.CommandAccess(c, schema).Reads {
			rs[f] = true
		}
		switch c.(type) {
		case *ast.Select, *ast.Update:
			rs[ast.AliveField] = true
		}
		m.readSet[i] = rs
		m.tables[i] = c.TableName()
	}
	o.meta[name] = m
	return m
}

// beginTxn assigns the client's next instance id (called from nextTxn).
func (o *obsState) beginTxn(c *client, name string, txn *ast.Txn) {
	c.obsInst = len(o.txns)
	o.txns = append(o.txns, name)
	c.obsMeta = o.metaFor(name, txn)
	c.pend = c.pend[:0]
}

// wrap prepares the reusable recording view for one command executing at
// replica rep against inner; nil when the command is unmapped (a defect —
// the run fails through metaFor's error).
func (o *obsState) wrap(c *client, cmd ast.DBCommand, inner DBView, rep int) *obsView {
	cidx, ok := c.obsMeta.cmdIdx[cmd]
	if !ok {
		return nil
	}
	v := &o.view
	v.inner = inner
	v.table = c.obsMeta.tables[cidx]
	v.fields = c.obsMeta.readSet[cidx]
	v.reads = v.reads[:0]
	v.cidx = cidx
	v.rep = rep
	v.prefix = len(o.logs[rep])
	return v
}

// record builds the command's observation record. The view is the apply
// log prefix of the executing replica at execution time; full-slice
// expressions keep it immutable as the log grows.
func (o *obsState) record(c *client, v *obsView, writes []WriteOp, ts int64) DirectedObs {
	return DirectedObs{
		Inst:   c.obsInst,
		Cmd:    v.cidx,
		TS:     ts,
		View:   o.logs[v.rep][:v.prefix:v.prefix],
		Reads:  append([]ReadObs(nil), v.reads...),
		Writes: writes,
	}
}

// recordEC records one EC statement immediately and, when it wrote,
// appends its batch to the home replica's apply log, returning the refs
// to ship with replication.
func (o *obsState) recordEC(c *client, v *obsView, writes []WriteOp, ts int64) []BatchRef {
	if v == nil {
		return nil
	}
	ob := o.record(c, v, writes, ts)
	o.obs = append(o.obs, ob)
	if len(writes) == 0 {
		return nil
	}
	ref := BatchRef{Inst: c.obsInst, Cmd: v.cidx, TS: ts}
	o.logs[v.rep] = append(o.logs[v.rep], ref)
	return o.logs[v.rep][len(o.logs[v.rep])-1:]
}

// recordSC buffers one SC statement's record on the client until the
// attempt commits (TS is patched then) or aborts (the buffer is simply
// cleared at the next begin).
func (o *obsState) recordSC(c *client, v *obsView, writes []WriteOp) {
	if v == nil {
		return
	}
	c.pend = append(c.pend, o.record(c, v, writes, 0))
}

// flushSC publishes a committed SC attempt's buffered records: writing
// commands get the commit timestamp and one apply-log entry each (shared
// timestamp — the batch is atomically visible), and the refs return for
// replication to mirror into the secondaries' logs.
func (o *obsState) flushSC(c *client, ts int64) []BatchRef {
	start := len(o.logs[primary])
	for i := range c.pend {
		if len(c.pend[i].Writes) > 0 {
			c.pend[i].TS = ts
			o.logs[primary] = append(o.logs[primary], BatchRef{
				Inst: c.pend[i].Inst, Cmd: c.pend[i].Cmd, TS: ts,
			})
		}
		o.obs = append(o.obs, c.pend[i])
	}
	c.pend = c.pend[:0]
	return o.logs[primary][start:len(o.logs[primary]):len(o.logs[primary])]
}

// delivered mirrors a replicated batch's refs into the receiving
// replica's apply log (called inside the delivery event, after Apply).
func (o *obsState) delivered(rep int, refs []BatchRef) {
	o.logs[rep] = append(o.logs[rep], refs...)
}

// obsView wraps a command's execution view, recording reads filtered to
// the command's static read set (the executor materializes whole rows
// while scanning; the detector's encoding only reads these fields).
type obsView struct {
	inner  DBView
	table  string
	fields map[string]bool
	reads  []ReadObs
	cidx   int
	rep    int
	prefix int
}

// Schema implements DBView.
func (v *obsView) Schema(table string) *ast.Schema { return v.inner.Schema(table) }

// Keys implements DBView.
func (v *obsView) Keys(table string) []store.Key { return v.inner.Keys(table) }

// Read implements DBView, recording filtered observations.
func (v *obsView) Read(table string, key store.Key, field string) store.Value {
	if table == v.table && v.fields[field] {
		v.reads = append(v.reads, ReadObs{Table: table, Key: key, Field: field})
	}
	return v.inner.Read(table, key, field)
}

// Alive implements DBView, delegating to the wrapped view's semantics and
// recording the presence check as an alive-field read (phantom
// dependencies flow through the alive field).
func (v *obsView) Alive(table string, key store.Key) bool {
	if table == v.table && v.fields[ast.AliveField] {
		v.reads = append(v.reads, ReadObs{Table: table, Key: key, Field: ast.AliveField})
	}
	return v.inner.Alive(table, key)
}
