package cluster

import (
	"math/rand"
	"testing"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/parser"
	"atropos/internal/sema"
	"atropos/internal/store"
)

// The transfer program moves money between accounts with a read-modify-
// write pattern: serializable executions conserve the total balance
// exactly; eventually consistent ones lose updates under contention.
const transferSrc = `
table ACC { id: int key, bal: int, }

txn transfer(src: int, dst: int, amt: int) {
  s := select bal from ACC where id = src;
  d := select bal from ACC where id = dst;
  update ACC set bal = s.bal - amt where id = src;
  update ACC set bal = d.bal + amt where id = dst;
}
`

func transferConfig(t *testing.T, mode Mode, seed int64) Config {
	t.Helper()
	prog, err := parser.Parse(transferSrc)
	if err != nil {
		t.Fatal(err)
	}
	if err := sema.Check(prog); err != nil {
		t.Fatal(err)
	}
	const n = 8
	var rows []benchmarks.TableRow
	for i := 0; i < n; i++ {
		rows = append(rows, benchmarks.TableRow{Table: "ACC", Row: store.Row{
			"id": store.IntV(int64(i)), "bal": store.IntV(1000),
		}})
	}
	mix := []benchmarks.MixEntry{{
		Txn: "transfer", Weight: 1,
		Args: func(rng *rand.Rand, s benchmarks.Scale) map[string]store.Value {
			src := rng.Intn(n)
			// Distinct accounts: a self-transfer is money-creating even
			// serially (the credit overwrites the debit), so it would not
			// witness a locking bug.
			dst := (src + 1 + rng.Intn(n-1)) % n
			return map[string]store.Value{
				"src": store.IntV(int64(src)),
				"dst": store.IntV(int64(dst)),
				"amt": store.IntV(int64(1 + rng.Intn(5))),
			}
		},
	}}
	return Config{
		Program:  prog,
		Mix:      mix,
		Scale:    benchmarks.Scale{Records: n},
		Rows:     rows,
		Topology: VACluster,
		Clients:  12,
		Duration: 3 * time.Second,
		Warmup:   200 * time.Millisecond,
		Seed:     seed,
		Mode:     mode,
	}
}

// TestSCLivenessUnderContention validates the locking machinery stays
// live on an adversarial workload (every transaction locks two of eight
// records in random order): commits keep happening and deadlock aborts,
// while frequent by construction, never livelock the loop.
func TestSCLivenessUnderContention(t *testing.T) {
	cfg := transferConfig(t, ModeSC, 3)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Committed == 0 {
		t.Fatal("no transfers committed")
	}
	if res.Aborted > res.Committed*100 {
		t.Errorf("livelock: %d aborts for %d commits", res.Aborted, res.Committed)
	}
	t.Logf("committed %d, aborted %d (adversarial 2-record transfers)", res.Committed, res.Aborted)
}

// TestFinalStateConservation runs the same transfer workload through both
// modes and checks conservation of the total balance by inspecting the
// replicas' final states via a custom driver round: EC must exhibit at
// least one violation across seeds (lost updates), SC never. Both
// executors — the compiled default and the AST oracle — are held to the
// same behavior, and to identical totals seed by seed.
func TestFinalStateConservation(t *testing.T) {
	type runKey struct {
		mode   Mode
		seed   int64
		interp bool
	}
	memo := map[runKey]int64{} // each FinalState call is a full simulation
	sumAfter := func(mode Mode, seed int64, interp bool) int64 {
		k := runKey{mode, seed, interp}
		if total, ok := memo[k]; ok {
			return total
		}
		cfg := transferConfig(t, mode, seed)
		cfg.UseInterpreter = interp
		st, err := FinalState(cfg)
		if err != nil {
			t.Fatal(err)
		}
		var total int64
		for _, kk := range st.Keys("ACC") {
			total += st.Read("ACC", kk, "bal").I
		}
		memo[k] = total
		return total
	}
	const want = 8 * 1000
	for _, interp := range []bool{false, true} {
		name := "compiled"
		if interp {
			name = "interpreter"
		}
		for seed := int64(0); seed < 3; seed++ {
			if got := sumAfter(ModeSC, seed, interp); got != want {
				t.Errorf("%s SC seed %d: total = %d, want %d (locking broken)", name, seed, got, want)
			}
		}
		ecViolated := false
		for seed := int64(0); seed < 5 && !ecViolated; seed++ {
			if sumAfter(ModeEC, seed, interp) != want {
				ecViolated = true
			}
		}
		if !ecViolated {
			t.Errorf("%s EC conserved money across 5 seeds; lost updates should occur under contention", name)
		}
	}
	// The engines must agree on the exact (violated or not) final totals.
	for _, mode := range []Mode{ModeEC, ModeSC} {
		for seed := int64(0); seed < 5; seed++ {
			if c, i := sumAfter(mode, seed, false), sumAfter(mode, seed, true); c != i {
				t.Errorf("%v seed %d: compiled total %d != interpreter total %d", mode, seed, c, i)
			}
		}
	}
}
