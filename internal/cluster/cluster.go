package cluster

import (
	"fmt"
	"math/rand"
	"time"

	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/metrics"
	"atropos/internal/store"
)

// Mode selects the consistency deployment of a run (the four lines of
// Fig. 12).
type Mode int

// Deployment modes.
const (
	// ModeEC: every transaction runs against its home replica with
	// asynchronous replication (the paper's ◆ EC and ■ AT-EC lines,
	// depending on which program is supplied).
	ModeEC Mode = iota
	// ModeSC: every transaction runs at the primary under two-phase record
	// locking with majority-acknowledged writes (● SC).
	ModeSC
	// ModeATSC: transactions named in SerializableTxns run as under
	// ModeSC; the rest as under ModeEC (▲ AT-SC).
	ModeATSC
)

func (m Mode) String() string {
	switch m {
	case ModeEC:
		return "EC"
	case ModeSC:
		return "SC"
	case ModeATSC:
		return "AT-SC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one simulated run.
type Config struct {
	Program *ast.Program
	Mix     []benchmarks.MixEntry
	Scale   benchmarks.Scale
	Rows    []benchmarks.TableRow
	// Topology is the cluster geometry (VACluster/USCluster/GlobalCluster).
	Topology Topology
	Clients  int
	// Duration is the measured virtual time; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	Seed     int64
	Mode     Mode
	// SerializableTxns names the transactions run under SC in ModeATSC.
	SerializableTxns map[string]bool
	// StmtCost is the per-statement service time that consumes replica
	// capacity (microseconds); 0 means the default of 2000µs. It sets the
	// saturation throughput.
	StmtCost int64
	// StmtOverhead is per-statement latency that does not consume
	// capacity (driver, TLS, storage stalls on burstable instances);
	// 0 means the default of 12000µs. It sets the low-load latency floor.
	StmtOverhead int64
	// Servers is the per-replica service parallelism (vCPUs); 0 means 2
	// (the paper's M10 instances).
	Servers int
	// LockTimeout aborts SC transactions that wait longer than this for a
	// record lock (microseconds); 0 derives it from the topology.
	LockTimeout int64
}

// Result is the outcome of one run: a figure point plus counters.
type Result struct {
	Point     metrics.Point
	Committed int64
	Aborted   int64 // SC lock-timeout aborts (retried)
}

const (
	defaultStmtCost     = 2_000  // µs of replica capacity per statement
	defaultStmtOverhead = 12_000 // µs of latency per statement
	defaultServers      = 2      // vCPUs per replica (M10 tier)
	primary             = 0
)

// Run simulates the configured deployment and returns its measurements.
func Run(cfg Config) (Result, error) {
	_, res, err := run(cfg, false)
	return res, err
}

// FinalState simulates the deployment and returns the converged replica
// state after all in-flight transactions and replication have drained
// (used by conservation tests and state inspection).
func FinalState(cfg Config) (*MatStore, error) {
	d, _, err := run(cfg, true)
	if err != nil {
		return nil, err
	}
	return d.replicas[primary].state, nil
}

func run(cfg Config, drain bool) (*driver, Result, error) {
	if cfg.Clients <= 0 {
		return nil, Result{}, fmt.Errorf("cluster: need at least one client")
	}
	if cfg.StmtCost == 0 {
		cfg.StmtCost = defaultStmtCost
	}
	if cfg.StmtOverhead == 0 {
		cfg.StmtOverhead = defaultStmtOverhead
	}
	if cfg.Servers == 0 {
		cfg.Servers = defaultServers
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 8*cfg.Topology.majorityRTT(primary) + 20_000
	}

	base := NewMatStore(cfg.Program)
	for _, r := range cfg.Rows {
		if err := base.Load(r.Table, r.Row); err != nil {
			return nil, Result{}, err
		}
	}
	d := &driver{
		cfg:      cfg,
		sim:      &Sim{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		replicas: [3]*replica{},
		locks:    map[lockKey]*lockState{},
		uuid:     &UUIDGen{},
		lat:      metrics.NewLatencies(8192, cfg.Seed+1),
	}
	for i := range d.replicas {
		st := base
		if i > 0 {
			st = base.Clone()
		}
		d.replicas[i] = &replica{id: i, state: st, station: newStation(cfg.Servers)}
	}
	warmup := cfg.Warmup.Microseconds()
	total := warmup + cfg.Duration.Microseconds()
	d.measureFrom = warmup
	d.measureUntil = total

	for c := 0; c < cfg.Clients; c++ {
		cl := &client{d: d, id: c, home: c % 3}
		d.sim.At(int64(c%97), cl.nextTxn) // stagger arrivals slightly
	}
	d.sim.Run(total)
	if drain {
		// Stop the closed loops and drain in-flight transactions and
		// replication so the replicas converge (FinalState inspection).
		d.stopped = true
		d.sim.Run(total + 3_600_000_000)
	}

	secs := cfg.Duration.Seconds()
	res := Result{
		Committed: d.committed,
		Aborted:   d.aborted,
		Point: metrics.Point{
			Clients:    cfg.Clients,
			Throughput: float64(d.committed) / secs,
			MeanMs:     float64(d.lat.Mean().Microseconds()) / 1000,
			P95Ms:      float64(d.lat.Percentile(95).Microseconds()) / 1000,
		},
	}
	if d.execErr != nil {
		return d, res, d.execErr
	}
	return d, res, nil
}

type driver struct {
	cfg          Config
	sim          *Sim
	rng          *rand.Rand
	replicas     [3]*replica
	locks        map[lockKey]*lockState
	uuid         *UUIDGen
	lat          *metrics.Latencies
	committed    int64
	aborted      int64
	measureFrom  int64
	measureUntil int64
	stopped      bool
	tsSeq        int64
	execErr      error
}

type replica struct {
	id      int
	state   *MatStore
	station station
}

type lockKey struct {
	table string
	key   store.Key
}

type lockState struct {
	owner   *txnRun
	waiters []*txnRun
}

// ts produces a unique, strictly monotone merge timestamp. Event-loop
// processing order is the arbitration order, so a plain sequence number
// suffices (and cannot collide or wrap, unlike packing virtual time with
// a bounded sequence).
func (d *driver) ts() int64 {
	d.tsSeq++
	return d.tsSeq
}

func (d *driver) fail(err error) {
	if d.execErr == nil {
		d.execErr = err
	}
}

type client struct {
	d    *driver
	id   int
	home int
}

// nextTxn draws a transaction from the mix and launches it under the
// deployment's mode (closed loop: the next begins when this one commits).
func (c *client) nextTxn() {
	d := c.d
	if d.execErr != nil || d.stopped {
		return
	}
	m := d.cfg.Mix[pickWeighted(d.rng, d.cfg.Mix)]
	txn := d.cfg.Program.Txn(m.Txn)
	if txn == nil {
		d.fail(fmt.Errorf("cluster: mix references unknown txn %q", m.Txn))
		return
	}
	args := m.Args(d.rng, d.cfg.Scale)
	start := d.sim.Now()
	finish := func() {
		if d.sim.Now() >= d.measureFrom && d.sim.Now() <= d.measureUntil {
			d.committed++
			d.lat.Add(time.Duration(d.sim.Now()-start) * time.Microsecond)
		}
		c.nextTxn()
	}
	sc := d.cfg.Mode == ModeSC || (d.cfg.Mode == ModeATSC && d.cfg.SerializableTxns[m.Txn])
	if sc {
		run := &txnRun{c: c, txn: txn, args: args}
		run.start(finish)
	} else {
		c.runEC(txn, args, finish)
	}
}

func pickWeighted(rng *rand.Rand, mix []benchmarks.MixEntry) int {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	n := rng.Intn(total)
	for i, m := range mix {
		n -= m.Weight
		if n < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// runEC executes a transaction against the client's home replica: each
// statement is one client-replica round trip plus service time; writes
// apply locally and replicate asynchronously with LWW merging.
func (c *client) runEC(txn *ast.Txn, args map[string]store.Value, finish func()) {
	d := c.d
	r := d.replicas[c.home]
	e := NewTxnExec(d.cfg.Program, txn, args)
	var step func()
	step = func() {
		if d.execErr != nil {
			return
		}
		cmd, err := e.Advance(r.state)
		if err != nil {
			d.fail(err)
			return
		}
		if cmd == nil {
			finish()
			return
		}
		// Client → replica, queue, execute, reply.
		d.sim.At(d.cfg.Topology.ClientRTT/2+d.cfg.StmtOverhead, func() {
			done := r.station.serve(d.sim.Now(), d.cfg.StmtCost)
			d.sim.At(done-d.sim.Now(), func() {
				writes, err := e.Exec(r.state, d.uuid)
				if err != nil {
					d.fail(err)
					return
				}
				ts := d.ts()
				for _, w := range writes {
					r.state.Apply(w, ts)
				}
				c.replicate(r.id, writes, ts)
				d.sim.At(d.cfg.Topology.ClientRTT/2, step)
			})
		})
	}
	step()
}

// replicate ships writes to the other replicas asynchronously.
func (c *client) replicate(from int, writes []WriteOp, ts int64) {
	if len(writes) == 0 {
		return
	}
	d := c.d
	for j := 0; j < 3; j++ {
		if j == from {
			continue
		}
		target := d.replicas[j]
		ws := writes
		d.sim.At(d.cfg.Topology.RTT[from][j]/2, func() {
			// Applying remote ops consumes service capacity but blocks
			// no one.
			target.station.serve(d.sim.Now(), d.cfg.StmtCost/2)
			for _, w := range ws {
				target.state.Apply(w, ts)
			}
		})
	}
}

// txnRun is one SC transaction attempt: statements execute at the primary
// under two-phase record locking with buffered writes; lock waits that
// exceed the timeout abort and retry the whole transaction.
type txnRun struct {
	c         *client
	txn       *ast.Txn
	args      map[string]store.Value
	e         *TxnExec
	overlay   *Overlay
	held      []lockKey
	gen       int // invalidates stale wakeups/timeouts after abort
	waitEpoch int // distinguishes successive waits within one attempt
	waiting   bool
	blockedOn *lockState // the lock this run is waiting for, if any
	wake      func()
	finish    func()
}

func (t *txnRun) start(finish func()) {
	t.finish = finish
	t.begin()
}

func (t *txnRun) begin() {
	d := t.c.d
	t.gen++
	t.e = NewTxnExec(d.cfg.Program, t.txn, t.args)
	t.overlay = NewOverlay(d.replicas[primary].state)
	t.held = nil
	// Client → primary.
	rtt := d.cfg.Topology.ClientRTT
	if t.c.home != primary {
		rtt = d.cfg.Topology.RTT[t.c.home][primary]
	}
	d.sim.At(rtt/2, t.step)
}

// step advances one statement: footprint → locks → service → execute.
func (t *txnRun) step() {
	d := t.c.d
	if d.execErr != nil {
		return
	}
	cmd, err := t.e.Advance(t.overlay)
	if err != nil {
		d.fail(err)
		return
	}
	if cmd == nil {
		t.commit()
		return
	}
	table, keys, _, err := t.e.Footprint(t.overlay, d.uuid)
	if err != nil {
		d.fail(err)
		return
	}
	var want []lockKey
	for _, k := range keys {
		want = append(want, lockKey{table, k})
	}
	t.acquire(want, func() {
		r := d.replicas[primary]
		done := r.station.serve(d.sim.Now()+d.cfg.StmtOverhead, d.cfg.StmtCost)
		d.sim.At(done-d.sim.Now(), func() {
			writes, err := t.e.Exec(t.overlay, d.uuid)
			if err != nil {
				d.fail(err)
				return
			}
			for _, w := range writes {
				t.overlay.Buffer(w)
			}
			if len(writes) > 0 {
				// Majority acknowledgement round trip per write statement.
				d.sim.At(d.cfg.Topology.majorityRTT(primary), t.step)
			} else {
				t.step()
			}
		})
	})
}

// acquire takes the locks (FIFO) or queues behind a holder; a timeout
// aborts and retries the transaction.
func (t *txnRun) acquire(want []lockKey, cont func()) {
	d := t.c.d
	for _, lk := range want {
		ls := d.locks[lk]
		if ls == nil {
			ls = &lockState{}
			d.locks[lk] = ls
		}
		if ls.owner == nil || ls.owner == t {
			if ls.owner == nil {
				ls.owner = t
				t.held = append(t.held, lk)
			}
			continue
		}
		// Deadlock detection: walk the wait-for chain from the lock's
		// owner; if it leads back to us, abort immediately (the requester
		// is the victim, as in MongoDB's write-conflict aborts) instead of
		// stalling until the timeout.
		if t.wouldDeadlock(ls) {
			t.abort()
			return
		}
		// Blocked: wait on this lock, retry the full set on wake-up. The
		// epoch ties the timeout to this particular wait, so a timer from
		// an earlier wait that ended cannot abort a later one prematurely.
		ls.waiters = append(ls.waiters, t)
		t.waiting = true
		t.blockedOn = ls
		t.waitEpoch++
		gen, epoch := t.gen, t.waitEpoch
		t.wake = func() {
			if t.gen != gen || !t.waiting {
				return
			}
			t.waiting = false
			t.blockedOn = nil
			t.acquire(want, cont)
		}
		d.sim.At(d.cfg.LockTimeout, func() {
			if t.gen == gen && t.waiting && t.waitEpoch == epoch {
				t.abort()
			}
		})
		return
	}
	cont()
}

// wouldDeadlock reports whether waiting on ls closes a wait-for cycle
// through us.
func (t *txnRun) wouldDeadlock(ls *lockState) bool {
	cur := ls.owner
	for hops := 0; cur != nil && hops < 64; hops++ {
		if cur == t {
			return true
		}
		if cur.blockedOn == nil {
			return false
		}
		cur = cur.blockedOn.owner
	}
	return false
}

func (t *txnRun) abort() {
	d := t.c.d
	if d.sim.Now() >= d.measureFrom && d.sim.Now() <= d.measureUntil {
		d.aborted++
	}
	t.waiting = false
	t.blockedOn = nil
	t.release()
	t.gen++
	// Retry after a short randomized backoff.
	back := int64(d.rng.Intn(4000) + 500)
	d.sim.At(back, t.begin)
}

func (t *txnRun) release() {
	d := t.c.d
	for _, lk := range t.held {
		ls := d.locks[lk]
		if ls == nil || ls.owner != t {
			continue
		}
		ls.owner = nil
		waiters := ls.waiters
		ls.waiters = nil
		for _, w := range waiters {
			if w.wake != nil {
				d.sim.At(0, w.wake)
			}
		}
	}
	t.held = nil
}

// commit applies the buffered writes at the primary, replicates them, and
// replies to the client.
func (t *txnRun) commit() {
	d := t.c.d
	writes := t.overlay.Writes()
	ts := d.ts()
	for _, w := range writes {
		d.replicas[primary].state.Apply(w, ts)
	}
	t.c.replicate(primary, writes, ts)
	t.release()
	rtt := d.cfg.Topology.ClientRTT
	if t.c.home != primary {
		rtt = d.cfg.Topology.RTT[t.c.home][primary]
	}
	d.sim.At(rtt/2, t.finish)
}
