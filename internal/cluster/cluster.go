package cluster

import (
	"fmt"
	"math"
	"math/rand"
	"time"

	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/metrics"
	"atropos/internal/store"
)

// Mode selects the consistency deployment of a run (the four lines of
// Fig. 12).
type Mode int

// Deployment modes.
const (
	// ModeEC: every transaction runs against its home replica with
	// asynchronous replication (the paper's ◆ EC and ■ AT-EC lines,
	// depending on which program is supplied).
	ModeEC Mode = iota
	// ModeSC: every transaction runs at the primary under two-phase record
	// locking with majority-acknowledged writes (● SC).
	ModeSC
	// ModeATSC: transactions named in SerializableTxns run as under
	// ModeSC; the rest as under ModeEC (▲ AT-SC).
	ModeATSC
)

func (m Mode) String() string {
	switch m {
	case ModeEC:
		return "EC"
	case ModeSC:
		return "SC"
	case ModeATSC:
		return "AT-SC"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Config describes one simulated run.
type Config struct {
	Program *ast.Program
	Mix     []benchmarks.MixEntry
	Scale   benchmarks.Scale
	Rows    []benchmarks.TableRow
	// Topology is the cluster geometry (VACluster/USCluster/GlobalCluster).
	Topology Topology
	Clients  int
	// Duration is the measured virtual time; Warmup precedes it.
	Duration time.Duration
	Warmup   time.Duration
	// Ops, when positive, switches the run to the ops-bounded mode: it
	// stops after Ops measured commits instead of at Duration, which makes
	// benchmark iterations and CI checks size-exact (ns and allocs per
	// transaction) regardless of the host. Warmup still applies.
	Ops  int64
	Seed int64
	Mode Mode
	// SerializableTxns names the transactions run under SC in ModeATSC.
	SerializableTxns map[string]bool
	// StmtCost is the per-statement service time that consumes replica
	// capacity (microseconds); 0 means the default of 2000µs. It sets the
	// saturation throughput.
	StmtCost int64
	// StmtOverhead is per-statement latency that does not consume
	// capacity (driver, TLS, storage stalls on burstable instances);
	// 0 means the default of 12000µs. It sets the low-load latency floor.
	StmtOverhead int64
	// Servers is the per-replica service parallelism (vCPUs); 0 means 2
	// (the paper's M10 instances).
	Servers int
	// LockTimeout aborts SC transactions that wait longer than this for a
	// record lock (microseconds); 0 derives it from the topology.
	LockTimeout int64
	// UseInterpreter forces the AST-walking reference executor for every
	// transaction. The default runs the compiled executor (DESIGN.md §9),
	// which produces identical histories; the interpreter survives as the
	// differential-testing oracle.
	UseInterpreter bool
	// Trace, when non-nil, records the run's execution history (applied
	// write batches, commits, aborts) for differential testing.
	Trace *Trace
	// Faults, when non-nil, is the run's deterministic fault schedule
	// (partitions, crashes, lag, clock skew, drop/reorder — see fault.go).
	// Both executors see the identical faulted event sequence.
	Faults *FaultPlan
	// Observe, when non-nil, receives per-command observation records for
	// dependency-graph analysis (see observe.go). Observation forces the
	// AST interpreter.
	Observe *Observation
}

// Result is the outcome of one run: a figure point plus counters.
type Result struct {
	Point     metrics.Point
	Committed int64
	Aborted   int64 // SC lock-timeout aborts (retried)
}

const (
	defaultStmtCost     = 2_000  // µs of replica capacity per statement
	defaultStmtOverhead = 12_000 // µs of latency per statement
	defaultServers      = 2      // vCPUs per replica (M10 tier)
	primary             = 0
)

// Run simulates the configured deployment and returns its measurements.
func Run(cfg Config) (Result, error) {
	_, res, err := run(cfg, false)
	return res, err
}

// FinalState simulates the deployment and returns the converged replica
// state after all in-flight transactions and replication have drained
// (used by conservation tests and state inspection).
func FinalState(cfg Config) (*MatStore, error) {
	d, _, err := run(cfg, true)
	if err != nil {
		return nil, err
	}
	return d.replicas[primary].state, nil
}

func run(cfg Config, drain bool) (*driver, Result, error) {
	if cfg.Clients <= 0 {
		return nil, Result{}, fmt.Errorf("cluster: need at least one client")
	}
	if cfg.StmtCost == 0 {
		cfg.StmtCost = defaultStmtCost
	}
	if cfg.StmtOverhead == 0 {
		cfg.StmtOverhead = defaultStmtOverhead
	}
	if cfg.Servers == 0 {
		cfg.Servers = defaultServers
	}
	if cfg.Duration == 0 {
		cfg.Duration = 10 * time.Second
	}
	if cfg.LockTimeout == 0 {
		cfg.LockTimeout = 8*cfg.Topology.majorityRTT(primary) + 20_000
	}
	if cfg.Observe != nil {
		cfg.UseInterpreter = true
	}
	flt, err := newFaultState(cfg.Faults)
	if err != nil {
		return nil, Result{}, err
	}

	cp := CompileProgram(cfg.Program)
	base := newMatStore(cp)
	for _, r := range cfg.Rows {
		if err := base.Load(r.Table, r.Row); err != nil {
			return nil, Result{}, err
		}
	}
	d := &driver{
		cfg:      cfg,
		cp:       cp,
		sim:      &Sim{},
		rng:      rand.New(rand.NewSource(cfg.Seed)),
		replicas: [3]*replica{},
		locks:    map[lockKey]*lockState{},
		uuid:     &UUIDGen{},
		lat:      metrics.NewLatencies(8192, cfg.Seed+1),
		flt:      flt,
	}
	if cfg.Observe != nil {
		d.obs = newObsState(d)
	}
	if cfg.Trace != nil && cfg.Faults != nil {
		// Record the plan up front: fault windows are static, so the header
		// is identical on both engines and pins the schedule in the history.
		for _, f := range cfg.Faults.Faults {
			cfg.Trace.fault(f)
		}
	}
	for i := range d.replicas {
		st := base
		if i > 0 {
			st = base.Clone()
		}
		d.replicas[i] = &replica{id: i, state: st, station: newStation(cfg.Servers)}
	}
	warmup := cfg.Warmup.Microseconds()
	total := warmup + cfg.Duration.Microseconds()
	d.measureFrom = warmup
	d.measureUntil = total
	if cfg.Ops > 0 {
		d.measureUntil = math.MaxInt64
	}

	for c := 0; c < cfg.Clients; c++ {
		cl := newClient(d, c)
		d.sim.At(int64(c%97), cl.nextTxn) // stagger arrivals slightly
	}
	if cfg.Ops > 0 {
		// Ops-bounded: the closed loops stop launching once the target is
		// hit, so the queue drains by itself.
		d.sim.Run(math.MaxInt64)
	} else {
		d.sim.Run(total)
	}
	if drain {
		// Stop the closed loops and drain in-flight transactions and
		// replication so the replicas converge (FinalState inspection).
		d.stopped = true
		d.sim.Run(d.sim.Now() + 3_600_000_000)
	}

	secs := cfg.Duration.Seconds()
	if cfg.Ops > 0 {
		end := d.stopAt
		if end == 0 {
			end = d.sim.Now()
		}
		secs = float64(end-d.measureFrom) / 1e6
		if secs <= 0 {
			secs = 1e-6
		}
	}
	if cfg.Observe != nil {
		cfg.Observe.Obs = d.obs.obs
		cfg.Observe.Txns = d.obs.txns
	}
	res := Result{
		Committed: d.committed,
		Aborted:   d.aborted,
		Point: metrics.Point{
			Clients:    cfg.Clients,
			Throughput: float64(d.committed) / secs,
			MeanMs:     float64(d.lat.Mean().Microseconds()) / 1000,
			P50Ms:      float64(d.lat.Percentile(50).Microseconds()) / 1000,
			P95Ms:      float64(d.lat.Percentile(95).Microseconds()) / 1000,
			P99Ms:      float64(d.lat.Percentile(99).Microseconds()) / 1000,
		},
	}
	if d.execErr != nil {
		return d, res, d.execErr
	}
	return d, res, nil
}

type driver struct {
	cfg          Config
	cp           *Compiled
	sim          *Sim
	rng          *rand.Rand
	replicas     [3]*replica
	locks        map[lockKey]*lockState
	uuid         *UUIDGen
	lat          *metrics.Latencies
	committed    int64
	aborted      int64
	measureFrom  int64
	measureUntil int64
	stopped      bool
	stopAt       int64
	tsSeq        int64
	execErr      error
	flt          *faultState
	obs          *obsState
	// replication pools: batches and their delivery events are recycled so
	// steady-state replication allocates nothing; lockPool recycles lock
	// entries released with no waiters.
	batchPool []*repBatch
	repPool   []*repEv
	lockPool  []*lockState
	timerPool []*lockTimer
	wakePool  []*wakeEv
}

type replica struct {
	id      int
	state   *MatStore
	station station
}

// Merge timestamps come from tsAt (fault.go): a strictly monotone
// arbitration sequence — event-loop processing order is the arbitration
// order — optionally bent by an active clock-skew fault window.

func (d *driver) fail(err error) {
	if d.execErr == nil {
		d.execErr = err
	}
}

// countAbort records one SC abort if it falls inside the measurement
// window; like commits, aborts during an ops-bounded run's drain tail are
// not measured, so Result pairs exactly Ops commits with the aborts that
// happened while they accumulated.
func (d *driver) countAbort() {
	now := d.sim.Now()
	if now >= d.measureFrom && now <= d.measureUntil && !(d.cfg.Ops > 0 && d.stopped) {
		d.aborted++
	}
}

// finishTxn records one completed transaction for the owning client and, in
// ops-bounded mode, stops the run when the target is reached.
func (d *driver) finishTxn(c *client) {
	now := d.sim.Now()
	measured := now >= d.measureFrom && now <= d.measureUntil
	if d.cfg.Ops > 0 && d.committed >= d.cfg.Ops {
		// Target reached: in-flight transactions still complete while the
		// queue drains, but exactly Ops commits are measured.
		measured = false
	}
	if measured {
		d.committed++
		d.lat.Add(time.Duration(now-c.startAt) * time.Microsecond)
		if d.cfg.Ops > 0 && d.committed >= d.cfg.Ops {
			d.stopped = true
			d.stopAt = now
		}
	}
	if d.cfg.Trace != nil {
		d.cfg.Trace.commit(now, c.id, c.txnName, measured)
	}
}

type client struct {
	d       *driver
	id      int
	home    int
	startAt int64
	txnName string
	// Compiled-executor state, allocated once per client and reused for
	// every transaction it runs (DESIGN.md §9).
	fr       *cframe
	finishFn func()
	ecPhase  int
	ecTick   func()
	scRun    *cTxnRun
	// Observation-mode state (interpreter only): the current instance id,
	// its command metadata, and the SC attempt's buffered records.
	obsInst int
	obsMeta *obsTxnMeta
	pend    []DirectedObs
}

func newClient(d *driver, id int) *client {
	c := &client{d: d, id: id, home: id % 3}
	c.fr = newCFrame(d.cp)
	c.finishFn = func() {
		d.finishTxn(c)
		c.nextTxn()
	}
	c.ecTick = c.ecStep
	return c
}

// nextTxn draws a transaction from the mix and launches it under the
// deployment's mode (closed loop: the next begins when this one commits).
func (c *client) nextTxn() {
	d := c.d
	if d.execErr != nil || d.stopped {
		return
	}
	m := d.cfg.Mix[pickWeighted(d.rng, d.cfg.Mix)]
	txn := d.cfg.Program.Txn(m.Txn)
	if txn == nil {
		d.fail(fmt.Errorf("cluster: mix references unknown txn %q", m.Txn))
		return
	}
	args := m.Args(d.rng, d.cfg.Scale)
	c.startAt = d.sim.Now()
	c.txnName = m.Txn
	if d.obs != nil {
		d.obs.beginTxn(c, m.Txn, txn)
	}
	var ct *ctxn
	if !d.cfg.UseInterpreter {
		ct = d.cp.txns[m.Txn]
	}
	sc := d.cfg.Mode == ModeSC || (d.cfg.Mode == ModeATSC && d.cfg.SerializableTxns[m.Txn])
	switch {
	case sc && ct != nil:
		c.runSC(ct, args)
	case sc:
		run := &txnRun{c: c, txn: txn, args: args}
		run.start(c.finishFn)
	case ct != nil:
		c.runECCompiled(ct, args)
	default:
		c.runEC(txn, args, c.finishFn)
	}
}

func pickWeighted(rng *rand.Rand, mix []benchmarks.MixEntry) int {
	total := 0
	for _, m := range mix {
		total += m.Weight
	}
	n := rng.Intn(total)
	for i, m := range mix {
		n -= m.Weight
		if n < 0 {
			return i
		}
	}
	return len(mix) - 1
}

// runEC executes a transaction on the AST interpreter against the client's
// home replica: each statement is one client-replica round trip plus
// service time; writes apply locally and replicate asynchronously with LWW
// merging. This is the reference executor the compiled path is
// differential-tested against.
func (c *client) runEC(txn *ast.Txn, args map[string]store.Value, finish func()) {
	d := c.d
	r := d.replicas[c.home]
	e := NewTxnExec(d.cfg.Program, txn, args)
	var step func()
	step = func() {
		if d.execErr != nil {
			return
		}
		cmd, err := e.Advance(r.state)
		if err != nil {
			d.fail(err)
			return
		}
		if cmd == nil {
			finish()
			return
		}
		// Client → replica, queue, execute, reply. A crashed home replica
		// defers the statement to its recovery (ecDelay).
		d.sim.At(d.ecDelay(r.id), func() {
			done := r.station.serve(d.sim.Now(), d.cfg.StmtCost)
			d.sim.At(done-d.sim.Now(), func() {
				view := DBView(r.state)
				var ov *obsView
				if d.obs != nil {
					ov = d.obs.wrap(c, cmd, r.state, r.id)
					if ov != nil {
						view = ov
					}
				}
				writes, err := e.Exec(view, d.uuid)
				if err != nil {
					d.fail(err)
					return
				}
				ts := d.tsAt(r.id)
				for _, w := range writes {
					r.state.Apply(w, ts)
				}
				if d.cfg.Trace != nil && len(writes) > 0 {
					d.cfg.Trace.applyOps(d.sim.Now(), r.id, ts, writes)
				}
				var refs []BatchRef
				if d.obs != nil {
					refs = d.obs.recordEC(c, ov, writes, ts)
				}
				c.replicate(r.id, writes, ts, refs)
				d.sim.At(d.cfg.Topology.ClientRTT/2, step)
			})
		})
	}
	step()
}

// replicate ships interpreter writes to the other replicas
// asynchronously; refs (observation mode only) mirror the batch into the
// receivers' apply logs at delivery.
func (c *client) replicate(from int, writes []WriteOp, ts int64, refs []BatchRef) {
	if len(writes) == 0 {
		return
	}
	d := c.d
	for j := 0; j < 3; j++ {
		if j == from {
			continue
		}
		target := d.replicas[j]
		ws := writes
		d.sim.At(d.repDelay(from, j), func() {
			// Applying remote ops consumes service capacity but blocks
			// no one.
			target.station.serve(d.sim.Now(), d.cfg.StmtCost/2)
			for _, w := range ws {
				target.state.Apply(w, ts)
			}
			if d.cfg.Trace != nil {
				d.cfg.Trace.applyOps(d.sim.Now(), target.id, ts, ws)
			}
			if d.obs != nil {
				d.obs.delivered(target.id, refs)
			}
		})
	}
}

// txnRun is one interpreter SC transaction attempt: statements execute at
// the primary under two-phase record locking with buffered writes; lock
// waits that exceed the timeout abort and retry the whole transaction.
type txnRun struct {
	lockCore
	c       *client
	txn     *ast.Txn
	args    map[string]store.Value
	e       *TxnExec
	overlay *Overlay
	finish  func()
}

func (t *txnRun) start(finish func()) {
	t.lockCore.d = t.c.d
	t.lockCore.onAbort = t.abort
	t.finish = finish
	t.begin()
}

func (t *txnRun) begin() {
	d := t.c.d
	t.gen++
	t.e = NewTxnExec(d.cfg.Program, t.txn, t.args)
	t.overlay = NewOverlay(d.replicas[primary].state)
	t.held = t.held[:0]
	if d.obs != nil {
		t.c.pend = t.c.pend[:0] // discard any aborted attempt's records
	}
	// Client → primary (deferred to recovery while the primary is down).
	d.sim.At(d.scDelay(t.c), t.step)
}

// primaryRTT is the round trip between the client and the primary replica.
func (c *client) primaryRTT() int64 {
	if c.home != primary {
		return c.d.cfg.Topology.RTT[c.home][primary]
	}
	return c.d.cfg.Topology.ClientRTT
}

// step advances one statement: footprint → locks → service → execute.
func (t *txnRun) step() {
	d := t.c.d
	if d.execErr != nil {
		return
	}
	cmd, err := t.e.Advance(t.overlay)
	if err != nil {
		d.fail(err)
		return
	}
	if cmd == nil {
		t.commit()
		return
	}
	table, keys, _, err := t.e.Footprint(t.overlay, d.uuid)
	if err != nil {
		d.fail(err)
		return
	}
	var want []lockKey
	for _, k := range keys {
		want = append(want, lockKey{table, k})
	}
	t.acquire(want, func() {
		r := d.replicas[primary]
		done := r.station.serve(d.sim.Now()+d.cfg.StmtOverhead, d.cfg.StmtCost)
		d.sim.At(done-d.sim.Now(), func() {
			view := DBView(t.overlay)
			var ov *obsView
			if d.obs != nil {
				ov = d.obs.wrap(t.c, cmd, t.overlay, primary)
				if ov != nil {
					view = ov
				}
			}
			writes, err := t.e.Exec(view, d.uuid)
			if err != nil {
				d.fail(err)
				return
			}
			for _, w := range writes {
				t.overlay.Buffer(w)
			}
			if d.obs != nil {
				d.obs.recordSC(t.c, ov, writes)
			}
			if len(writes) > 0 {
				// Majority acknowledgement round trip per write statement.
				d.sim.At(d.ackDelay(), t.step)
			} else {
				t.step()
			}
		})
	})
}

func (t *txnRun) abort() {
	d := t.c.d
	d.countAbort()
	if d.cfg.Trace != nil {
		d.cfg.Trace.abort(d.sim.Now(), t.c.id, t.txn.Name)
	}
	t.abortLocks()
	// Retry after a short randomized backoff.
	back := int64(d.rng.Intn(4000) + 500)
	d.sim.At(back, t.begin)
}

// commit applies the buffered writes at the primary, replicates them, and
// replies to the client.
func (t *txnRun) commit() {
	d := t.c.d
	writes := t.overlay.Writes()
	ts := d.tsAt(primary)
	for _, w := range writes {
		d.replicas[primary].state.Apply(w, ts)
	}
	if d.cfg.Trace != nil && len(writes) > 0 {
		d.cfg.Trace.applyOps(d.sim.Now(), primary, ts, writes)
	}
	var refs []BatchRef
	if d.obs != nil {
		refs = d.obs.flushSC(t.c, ts)
	}
	t.c.replicate(primary, writes, ts, refs)
	t.release()
	d.sim.At(t.c.primaryRTT()/2, t.finish)
}
