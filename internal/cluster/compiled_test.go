package cluster

import (
	"fmt"
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// TestAllBenchmarkTxnsCompile guards the differential test below against
// becoming vacuous: if the compiler silently fell back to the interpreter
// for a transaction, compiled-vs-interpreter equivalence would hold
// trivially. Every transaction of every benchmark must compile.
func TestAllBenchmarkTxnsCompile(t *testing.T) {
	for _, b := range benchmarks.All() {
		prog, err := b.Program()
		if err != nil {
			t.Fatal(err)
		}
		cp := CompileProgram(prog)
		for _, txn := range prog.Txns {
			if cp.txns[txn.Name] == nil {
				t.Errorf("%s: transaction %s did not compile", b.Name, txn.Name)
			}
		}
	}
}

// diffConfig builds a small but busy run: every client issues a few dozen
// transactions, SC contention triggers lock waits and aborts, logging
// tables grow.
func diffConfig(b *benchmarks.Benchmark, mode Mode, seed int64, t *testing.T) Config {
	t.Helper()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 30}
	cfg := Config{
		Program:  prog,
		Mix:      b.Mix,
		Scale:    scale,
		Rows:     b.Rows(scale),
		Topology: USCluster,
		Clients:  8,
		Duration: 800 * time.Millisecond,
		Warmup:   100 * time.Millisecond,
		Seed:     seed,
		Mode:     mode,
	}
	if mode == ModeATSC {
		// Deterministically serialize every other transaction (declaration
		// order) — the differential test needs mixed engines exercised, not
		// a faithful repair.
		cfg.SerializableTxns = map[string]bool{}
		for i, txn := range prog.Txns {
			if i%2 == 0 {
				cfg.SerializableTxns[txn.Name] = true
			}
		}
	}
	return cfg
}

// TestCompiledMatchesInterpreter is the differential gate of DESIGN.md §9:
// across all nine benchmarks, the three deployment modes, and several
// seeds, the compiled executor must reproduce the AST interpreter's
// execution history byte for byte — every applied write batch (values,
// merge timestamps, replicas, virtual times), every commit, every abort —
// and its measured results exactly.
func TestCompiledMatchesInterpreter(t *testing.T) {
	for _, b := range benchmarks.All() {
		for _, mode := range []Mode{ModeEC, ModeSC, ModeATSC} {
			for seed := int64(1); seed <= 3; seed++ {
				name := fmt.Sprintf("%s/%s/seed%d", b.Name, mode, seed)
				t.Run(name, func(t *testing.T) {
					cfg := diffConfig(b, mode, seed, t)

					ref := cfg
					ref.UseInterpreter = true
					ref.Trace = &Trace{}
					wantRes, err := Run(ref)
					if err != nil {
						t.Fatalf("interpreter run: %v", err)
					}

					got := cfg
					got.Trace = &Trace{}
					gotRes, err := Run(got)
					if err != nil {
						t.Fatalf("compiled run: %v", err)
					}

					if gotRes != wantRes {
						t.Errorf("results diverge:\n  compiled:    %+v\n  interpreter: %+v", gotRes, wantRes)
					}
					if len(got.Trace.Events) != len(ref.Trace.Events) {
						t.Fatalf("history length diverges: compiled %d events, interpreter %d",
							len(got.Trace.Events), len(ref.Trace.Events))
					}
					for i := range got.Trace.Events {
						if got.Trace.Events[i] != ref.Trace.Events[i] {
							t.Fatalf("history diverges at event %d:\n  compiled:    %s\n  interpreter: %s",
								i, got.Trace.Events[i], ref.Trace.Events[i])
						}
					}
					if wantRes.Committed == 0 {
						t.Error("no transactions committed; differential run is vacuous")
					}
				})
			}
		}
	}
}

// TestCompiledMatchesInterpreterOpsBounded runs the same differential check
// in the ops-bounded mode, which exercises the stop-at-target path.
func TestCompiledMatchesInterpreterOpsBounded(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.TPCC} {
		for _, mode := range []Mode{ModeEC, ModeSC} {
			cfg := diffConfig(b, mode, 7, t)
			cfg.Duration = time.Hour // irrelevant: the run stops at Ops
			cfg.Ops = 120

			ref := cfg
			ref.UseInterpreter = true
			ref.Trace = &Trace{}
			wantRes, err := Run(ref)
			if err != nil {
				t.Fatalf("%s/%s interpreter: %v", b.Name, mode, err)
			}
			got := cfg
			got.Trace = &Trace{}
			gotRes, err := Run(got)
			if err != nil {
				t.Fatalf("%s/%s compiled: %v", b.Name, mode, err)
			}
			if gotRes != wantRes {
				t.Errorf("%s/%s: results diverge:\n  compiled:    %+v\n  interpreter: %+v",
					b.Name, mode, gotRes, wantRes)
			}
			if wantRes.Committed != 120 {
				t.Errorf("%s/%s: ops-bounded run committed %d, want exactly 120", b.Name, mode, wantRes.Committed)
			}
			for i := range got.Trace.Events {
				if i >= len(ref.Trace.Events) || got.Trace.Events[i] != ref.Trace.Events[i] {
					t.Fatalf("%s/%s: history diverges at event %d", b.Name, mode, i)
				}
			}
		}
	}
}

// TestCompiledFinalStateMatchesInterpreter drains both engines' runs and
// compares the converged primary replica row by row.
func TestCompiledFinalStateMatchesInterpreter(t *testing.T) {
	for _, b := range []*benchmarks.Benchmark{benchmarks.SmallBank, benchmarks.SEATS} {
		for _, mode := range []Mode{ModeEC, ModeSC} {
			cfg := diffConfig(b, mode, 11, t)
			ref := cfg
			ref.UseInterpreter = true
			want, err := FinalState(ref)
			if err != nil {
				t.Fatal(err)
			}
			got, err := FinalState(cfg)
			if err != nil {
				t.Fatal(err)
			}
			prog, _ := b.Program()
			for _, s := range prog.Schemas {
				wk, gk := want.Keys(s.Name), got.Keys(s.Name)
				if len(wk) != len(gk) {
					t.Fatalf("%s/%s: table %s has %d keys compiled, %d interpreted",
						b.Name, mode, s.Name, len(gk), len(wk))
				}
				for i := range wk {
					if wk[i] != gk[i] {
						t.Fatalf("%s/%s: %s key %d differs", b.Name, mode, s.Name, i)
					}
					for _, f := range s.Fields {
						if wv, gv := want.Read(s.Name, wk[i], f.Name), got.Read(s.Name, gk[i], f.Name); !wv.Equal(gv) {
							t.Fatalf("%s/%s: %s[%q].%s = %s compiled, %s interpreted",
								b.Name, mode, s.Name, string(wk[i]), f.Name, gv, wv)
						}
					}
				}
			}
		}
	}
}
