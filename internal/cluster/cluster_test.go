package cluster

import (
	"testing"
	"time"

	"atropos/internal/benchmarks"
	"atropos/internal/store"
)

func smallbankConfig(t *testing.T, mode Mode, clients int, topo Topology) Config {
	t.Helper()
	b := benchmarks.SmallBank
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 50}
	return Config{
		Program:  prog,
		Mix:      b.Mix,
		Scale:    scale,
		Rows:     b.Rows(scale),
		Topology: topo,
		Clients:  clients,
		Duration: 5 * time.Second,
		Warmup:   500 * time.Millisecond,
		Seed:     7,
		Mode:     mode,
	}
}

func TestECFasterThanSCOnUSCluster(t *testing.T) {
	ec, err := Run(smallbankConfig(t, ModeEC, 48, USCluster))
	if err != nil {
		t.Fatalf("EC run: %v", err)
	}
	sc, err := Run(smallbankConfig(t, ModeSC, 48, USCluster))
	if err != nil {
		t.Fatalf("SC run: %v", err)
	}
	if ec.Committed == 0 || sc.Committed == 0 {
		t.Fatalf("no commits: ec=%d sc=%d", ec.Committed, sc.Committed)
	}
	if ec.Point.Throughput <= sc.Point.Throughput {
		t.Errorf("EC throughput %.1f <= SC %.1f; coordination cost missing",
			ec.Point.Throughput, sc.Point.Throughput)
	}
	if ec.Point.MeanMs >= sc.Point.MeanMs {
		t.Errorf("EC latency %.2fms >= SC %.2fms", ec.Point.MeanMs, sc.Point.MeanMs)
	}
	t.Logf("EC: %.1f txn/s %.2f ms; SC: %.1f txn/s %.2f ms (aborts %d)",
		ec.Point.Throughput, ec.Point.MeanMs, sc.Point.Throughput, sc.Point.MeanMs, sc.Aborted)
}

func TestSCCheaperOnLocalCluster(t *testing.T) {
	va, err := Run(smallbankConfig(t, ModeSC, 32, VACluster))
	if err != nil {
		t.Fatal(err)
	}
	global, err := Run(smallbankConfig(t, ModeSC, 32, GlobalCluster))
	if err != nil {
		t.Fatal(err)
	}
	if va.Point.Throughput <= global.Point.Throughput {
		t.Errorf("VA SC throughput %.1f <= Global %.1f; geography has no cost",
			va.Point.Throughput, global.Point.Throughput)
	}
	if va.Point.MeanMs >= global.Point.MeanMs {
		t.Errorf("VA SC latency %.2f >= Global %.2f", va.Point.MeanMs, global.Point.MeanMs)
	}
}

func TestDeterministicRuns(t *testing.T) {
	a, err := Run(smallbankConfig(t, ModeEC, 16, USCluster))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(smallbankConfig(t, ModeEC, 16, USCluster))
	if err != nil {
		t.Fatal(err)
	}
	if a.Committed != b.Committed || a.Point.MeanMs != b.Point.MeanMs {
		t.Errorf("nondeterministic: %+v vs %+v", a.Point, b.Point)
	}
}

func TestThroughputGrowsWithClientsUnderEC(t *testing.T) {
	small, err := Run(smallbankConfig(t, ModeEC, 4, USCluster))
	if err != nil {
		t.Fatal(err)
	}
	big, err := Run(smallbankConfig(t, ModeEC, 64, USCluster))
	if err != nil {
		t.Fatal(err)
	}
	if big.Point.Throughput <= small.Point.Throughput*2 {
		t.Errorf("EC does not scale: 4 clients %.1f, 64 clients %.1f",
			small.Point.Throughput, big.Point.Throughput)
	}
}

func TestATSCBetweenECAndSC(t *testing.T) {
	cfgEC := smallbankConfig(t, ModeEC, 48, USCluster)
	cfgSC := smallbankConfig(t, ModeSC, 48, USCluster)
	cfgAT := smallbankConfig(t, ModeATSC, 48, USCluster)
	// Pretend half the transactions still need SC.
	cfgAT.SerializableTxns = map[string]bool{"writeCheck": true, "amalgamate": true, "sendPayment": true}
	ec, err := Run(cfgEC)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := Run(cfgSC)
	if err != nil {
		t.Fatal(err)
	}
	at, err := Run(cfgAT)
	if err != nil {
		t.Fatal(err)
	}
	if !(at.Point.Throughput > sc.Point.Throughput) {
		t.Errorf("AT-SC %.1f not above SC %.1f", at.Point.Throughput, sc.Point.Throughput)
	}
	if !(at.Point.Throughput < ec.Point.Throughput) {
		t.Errorf("AT-SC %.1f not below EC %.1f", at.Point.Throughput, ec.Point.Throughput)
	}
}

func TestMatStoreLWW(t *testing.T) {
	b := benchmarks.SmallBank
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMatStore(prog)
	if err := ms.Load("CHECKING", store.Row{"chk_cust": store.IntV(1), "chk_bal": store.IntV(10)}); err != nil {
		t.Fatal(err)
	}
	k := store.MakeKey(store.IntV(1))
	w := WriteOp{Table: "CHECKING", Key: k, Field: "chk_bal", Val: store.IntV(99)}
	ms.Apply(w, 100)
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(99)) {
		t.Fatalf("read %v after apply", got)
	}
	// An older write must lose.
	ms.Apply(WriteOp{Table: "CHECKING", Key: k, Field: "chk_bal", Val: store.IntV(1)}, 50)
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(99)) {
		t.Fatalf("LWW violated: read %v", got)
	}
	// A newer write wins.
	ms.Apply(WriteOp{Table: "CHECKING", Key: k, Field: "chk_bal", Val: store.IntV(7)}, 200)
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(7)) {
		t.Fatalf("newer write lost: read %v", got)
	}
}

func TestMatStoreCloneIsolated(t *testing.T) {
	prog, _ := benchmarks.SmallBank.Program()
	ms := NewMatStore(prog)
	if err := ms.Load("CHECKING", store.Row{"chk_cust": store.IntV(1), "chk_bal": store.IntV(10)}); err != nil {
		t.Fatal(err)
	}
	cp := ms.Clone()
	k := store.MakeKey(store.IntV(1))
	cp.Apply(WriteOp{Table: "CHECKING", Key: k, Field: "chk_bal", Val: store.IntV(42)}, 10)
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(10)) {
		t.Fatalf("clone shares state: original reads %v", got)
	}
}

func TestOverlayReadsOwnWrites(t *testing.T) {
	prog, _ := benchmarks.SmallBank.Program()
	ms := NewMatStore(prog)
	if err := ms.Load("CHECKING", store.Row{"chk_cust": store.IntV(1), "chk_bal": store.IntV(10)}); err != nil {
		t.Fatal(err)
	}
	k := store.MakeKey(store.IntV(1))
	o := NewOverlay(ms)
	o.Buffer(WriteOp{Table: "CHECKING", Key: k, Field: "chk_bal", Val: store.IntV(55)})
	if got := o.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(55)) {
		t.Fatalf("overlay read %v, want buffered 55", got)
	}
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(10)) {
		t.Fatalf("base mutated: %v", got)
	}
	// A fresh overlay key appears in Keys.
	k2 := store.MakeKey(store.IntV(999))
	o.Buffer(WriteOp{Table: "CHECKING", Key: k2, Field: "chk_bal", Val: store.IntV(1)})
	found := false
	for _, kk := range o.Keys("CHECKING") {
		if kk == k2 {
			found = true
		}
	}
	if !found {
		t.Error("overlay-created key missing from Keys")
	}
	if len(o.Writes()) != 2 {
		t.Errorf("Writes() = %d entries, want 2", len(o.Writes()))
	}
}

func TestUUIDGenPeekTake(t *testing.T) {
	g := &UUIDGen{}
	p := g.Peek()
	v := g.Take()
	if !p.Equal(v) {
		t.Fatalf("Peek %v != Take %v", p, v)
	}
	if g.Take().Equal(v) {
		t.Fatal("Take repeated a value")
	}
}

func TestTxnExecRunsSmallBank(t *testing.T) {
	b := benchmarks.SmallBank
	prog, _ := b.Program()
	ms := NewMatStore(prog)
	for _, r := range b.Rows(benchmarks.Scale{Records: 10}) {
		if err := ms.Load(r.Table, r.Row); err != nil {
			t.Fatal(err)
		}
	}
	u := &UUIDGen{}
	e := NewTxnExec(prog, prog.Txn("depositChecking"), map[string]store.Value{
		"cust": store.IntV(1), "amt": store.IntV(25),
	})
	steps := 0
	for {
		cmd, err := e.Advance(ms)
		if err != nil {
			t.Fatal(err)
		}
		if cmd == nil {
			break
		}
		writes, err := e.Exec(ms, u)
		if err != nil {
			t.Fatal(err)
		}
		for _, w := range writes {
			ms.Apply(w, int64(steps+1))
		}
		steps++
	}
	if steps != 2 {
		t.Fatalf("depositChecking executed %d statements, want 2", steps)
	}
	k := store.MakeKey(store.IntV(1))
	if got := ms.Read("CHECKING", k, "chk_bal"); !got.Equal(store.IntV(1025)) {
		t.Fatalf("balance %v after deposit, want 1025", got)
	}
}

func TestMajorityRTT(t *testing.T) {
	if got := USCluster.majorityRTT(0); got != 11_000 {
		t.Errorf("US majority RTT from primary = %d, want 11000 (Ohio)", got)
	}
	if got := GlobalCluster.majorityRTT(0); got != 75_000 {
		t.Errorf("Global majority RTT = %d, want 75000 (London)", got)
	}
}
