package cluster

import (
	"testing"

	"atropos/internal/parser"
	"atropos/internal/store"
)

// Ablation: the sorted-key prefix index on where-clause evaluation
// (DESIGN.md §4.4). Logging tables grow throughout a run; without the
// index every statement scans the full key space, turning AT runs
// quadratic. The two benchmarks below execute the same per-customer
// aggregate against a 20k-row log table; the indexed form pins the leading
// key field, the scan form uses an inequality the index cannot serve.

const ablationSrc = `
table LOG { cust: int key, lid: int key, v: int, }
txn readCust(k: int) {
  x := select v from LOG where cust = k;
  return sum(x.v);
}
txn readRange(k: int) {
  x := select v from LOG where cust >= k && cust <= k;
  return sum(x.v);
}
`

func ablationStore(b *testing.B, rows int) *MatStore {
	b.Helper()
	prog, err := parser.Parse(ablationSrc)
	if err != nil {
		b.Fatal(err)
	}
	ms := NewMatStore(prog)
	for i := 0; i < rows; i++ {
		err := ms.Load("LOG", store.Row{
			"cust": store.IntV(int64(i % 100)),
			"lid":  store.IntV(int64(i)),
			"v":    store.IntV(1),
		})
		if err != nil {
			b.Fatal(err)
		}
	}
	return ms
}

func runAblation(b *testing.B, txn string) {
	prog, _ := parser.Parse(ablationSrc)
	ms := ablationStore(b, 20_000)
	u := &UUIDGen{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e := NewTxnExec(prog, prog.Txn(txn), map[string]store.Value{"k": store.IntV(int64(i % 100))})
		for {
			cmd, err := e.Advance(ms)
			if err != nil {
				b.Fatal(err)
			}
			if cmd == nil {
				break
			}
			if _, err := e.Exec(ms, u); err != nil {
				b.Fatal(err)
			}
		}
		if e.Result().I != 200 {
			b.Fatalf("sum = %d, want 200", e.Result().I)
		}
	}
}

// BenchmarkMatchIndexed uses the prefix index (equality pin on the leading
// key field).
func BenchmarkMatchIndexed(b *testing.B) { runAblation(b, "readCust") }

// BenchmarkMatchScan defeats the index (range predicate), measuring the
// full-scan baseline the index replaces.
func BenchmarkMatchScan(b *testing.B) { runAblation(b, "readRange") }

// TestKeyRangeEquivalence: the indexed and scanning forms agree on every
// customer (the index is an optimization, not a semantics change).
func TestKeyRangeEquivalence(t *testing.T) {
	prog, err := parser.Parse(ablationSrc)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMatStore(prog)
	for i := 0; i < 500; i++ {
		err := ms.Load("LOG", store.Row{
			"cust": store.IntV(int64(i % 20)),
			"lid":  store.IntV(int64(i)),
			"v":    store.IntV(int64(i)),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	u := &UUIDGen{}
	runTxn := func(txn string, k int64) int64 {
		e := NewTxnExec(prog, prog.Txn(txn), map[string]store.Value{"k": store.IntV(k)})
		for {
			cmd, err := e.Advance(ms)
			if err != nil {
				t.Fatal(err)
			}
			if cmd == nil {
				break
			}
			if _, err := e.Exec(ms, u); err != nil {
				t.Fatal(err)
			}
		}
		return e.Result().I
	}
	for k := int64(0); k < 20; k++ {
		indexed := runTxn("readCust", k)
		scanned := runTxn("readRange", k)
		if indexed != scanned {
			t.Fatalf("cust %d: indexed sum %d != scanned sum %d", k, indexed, scanned)
		}
	}
}

// TestKeyRangeCompositeExact: pinning the full composite key narrows to a
// single record.
func TestKeyRangeCompositeExact(t *testing.T) {
	src := `
table LOG { cust: int key, lid: int key, v: int, }
txn one(k: int, l: int) {
  x := select v from LOG where cust = k && lid = l;
  return count(x.v);
}
`
	prog, err := parser.Parse(src)
	if err != nil {
		t.Fatal(err)
	}
	ms := NewMatStore(prog)
	for i := 0; i < 50; i++ {
		if err := ms.Load("LOG", store.Row{
			"cust": store.IntV(int64(i % 5)), "lid": store.IntV(int64(i)), "v": store.IntV(1),
		}); err != nil {
			t.Fatal(err)
		}
	}
	u := &UUIDGen{}
	for _, tc := range []struct {
		k, l, want int64
	}{{0, 0, 1}, {0, 5, 1}, {1, 0, 0}, {4, 49, 1}, {4, 48, 0}} {
		e := NewTxnExec(prog, prog.Txn("one"), map[string]store.Value{
			"k": store.IntV(tc.k), "l": store.IntV(tc.l),
		})
		for {
			cmd, err := e.Advance(ms)
			if err != nil {
				t.Fatal(err)
			}
			if cmd == nil {
				break
			}
			if _, err := e.Exec(ms, u); err != nil {
				t.Fatal(err)
			}
		}
		if e.Result().I != tc.want {
			t.Fatalf("one(%d,%d) = %d, want %d", tc.k, tc.l, e.Result().I, tc.want)
		}
	}
}
