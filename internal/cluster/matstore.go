package cluster

import (
	"fmt"
	"sort"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// DBView is the read interface the AST-walking executor runs against: a
// replica's materialized state, optionally overlaid with a transaction's
// buffered writes (SC mode reads-your-writes before commit). The compiled
// executor bypasses it and addresses MatStore rows directly by table id,
// row slot, and field index (DESIGN.md §9).
type DBView interface {
	Schema(table string) *ast.Schema
	Read(table string, key store.Key, field string) store.Value
	Alive(table string, key store.Key) bool
	Keys(table string) []store.Key
}

// WriteOp is one field write in the interpreter's name-based form, applied
// by the caller (immediately under EC, at commit under SC) and shipped to
// the other replicas.
type WriteOp struct {
	Table string
	Key   store.Key
	Field string
	Val   store.Value
}

// cwrite is the compiled executor's write: table id and field index instead
// of names.
type cwrite struct {
	tid int32
	fid int32
	key store.Key
	val store.Value
}

// MatStore is a replica's materialized state: per table, a flat
// []store.Value of rows-by-field-index with parallel last-writer-wins
// timestamps, a key→slot index, and a sorted key view for deterministic
// scans. Rows live at stable slots in arrival order; scans follow the
// sorted view.
type MatStore struct {
	cp   *Compiled
	tabs []mtable
}

type mtable struct {
	ct    *ctable
	index map[store.Key]int32
	keys  []store.Key   // by slot (append-only)
	vals  []store.Value // slot*nf + field
	ts    []int64
	// idx orders the slots by key (chunked — see keyIndex).
	idx keyIndex
	// view is the sorted []store.Key the string-based DBView.Keys exposes
	// to the interpreter oracle, materialized lazily from idx.
	view   []store.Key
	viewOK bool
}

// NewMatStore creates an empty replica state for the program.
func NewMatStore(prog *ast.Program) *MatStore {
	return newMatStore(CompileProgram(prog))
}

func newMatStore(cp *Compiled) *MatStore {
	ms := &MatStore{cp: cp, tabs: make([]mtable, len(cp.tables))}
	for i := range cp.tables {
		ms.tabs[i] = mtable{ct: &cp.tables[i], index: map[store.Key]int32{}}
	}
	return ms
}

// newSlot appends a zero row (alive=false) for key and indexes it.
func (t *mtable) newSlot(k store.Key) int32 {
	slot := int32(len(t.keys))
	t.keys = append(t.keys, k)
	t.vals = append(t.vals, t.ct.zeros...)
	t.ts = append(t.ts, t.ct.tszero...)
	t.index[k] = slot
	t.idx.insert(t.keys, k, slot)
	t.viewOK = false
	return slot
}

// sortedKeys materializes the sorted key view (interpreter oracle only —
// the compiled executor scans the chunked index directly). A fresh slice
// is built per mutation epoch so previously returned views stay stable.
func (t *mtable) sortedKeys() []store.Key {
	if !t.viewOK {
		t.view = make([]store.Key, 0, len(t.keys))
		for p := t.idx.begin(); t.idx.valid(p); p = t.idx.next(p) {
			t.view = append(t.view, t.keys[t.idx.at(p)])
		}
		t.viewOK = true
	}
	return t.view
}

func (t *mtable) read(slot, fid int32) store.Value {
	return t.vals[slot*t.ct.nf+fid]
}

// Load installs an initial record (alive, timestamp 0). Missing fields get
// zero values; the key derives from the schema's primary-key fields.
func (ms *MatStore) Load(table string, row store.Row) error {
	tid, ct := ms.cp.table(table)
	if ct == nil {
		return fmt.Errorf("cluster: unknown table %q", table)
	}
	t := &ms.tabs[tid]
	full := make([]store.Value, ct.nf)
	copy(full, ct.zeros)
	full[ct.alive] = store.BoolV(true)
	for f, v := range row {
		id, ok := ct.fieldID[f]
		if !ok {
			continue
		}
		full[id] = v
	}
	var kb []byte
	for _, pkID := range ct.pk {
		if len(kb) > 0 {
			kb = append(kb, '\x1f')
		}
		kb = store.AppendKey(kb, full[pkID])
	}
	key := store.Key(kb)
	slot, ok := t.index[key]
	if !ok {
		slot = t.newSlot(key)
	}
	base := slot * ct.nf
	copy(t.vals[base:base+ct.nf], full)
	for i := int32(0); i < ct.nf; i++ {
		t.ts[base+i] = 0
	}
	return nil
}

// Clone copies the state (used to give each replica an identical start).
// The flat layout makes this a handful of slice copies per table.
func (ms *MatStore) Clone() *MatStore {
	out := &MatStore{cp: ms.cp, tabs: make([]mtable, len(ms.tabs))}
	for i := range ms.tabs {
		t := &ms.tabs[i]
		nt := mtable{
			ct:    t.ct,
			index: make(map[store.Key]int32, len(t.index)),
			keys:  append([]store.Key(nil), t.keys...),
			vals:  append([]store.Value(nil), t.vals...),
			ts:    append([]int64(nil), t.ts...),
			idx:   t.idx.clone(),
		}
		for k, s := range t.index {
			nt.index[k] = s
		}
		out.tabs[i] = nt
	}
	return out
}

// Schema implements DBView.
func (ms *MatStore) Schema(table string) *ast.Schema { return ms.cp.prog.Schema(table) }

// Read implements DBView; unknown records read zero values.
func (ms *MatStore) Read(table string, key store.Key, field string) store.Value {
	tid, ct := ms.cp.table(table)
	if ct == nil {
		return store.Value{}
	}
	fid, ok := ct.fieldID[field]
	if !ok {
		return store.Value{}
	}
	t := &ms.tabs[tid]
	if slot, ok := t.index[key]; ok {
		return t.read(slot, fid)
	}
	return ct.zeros[fid]
}

// Alive implements DBView.
func (ms *MatStore) Alive(table string, key store.Key) bool {
	v := ms.Read(table, key, ast.AliveField)
	return v.T == ast.TBool && v.B
}

// Keys implements DBView (sorted).
func (ms *MatStore) Keys(table string) []store.Key {
	tid, ct := ms.cp.table(table)
	if ct == nil {
		return nil
	}
	return ms.tabs[tid].sortedKeys()
}

// Apply merges one write with last-writer-wins semantics at the given
// timestamp (timestamps must be unique across the run; the driver issues a
// strictly monotone sequence).
func (ms *MatStore) Apply(w WriteOp, ts int64) {
	tid, ct := ms.cp.table(w.Table)
	if ct == nil {
		return
	}
	fid, ok := ct.fieldID[w.Field]
	if !ok {
		return
	}
	ms.applyOne(tid, fid, w.Key, w.Val, ts)
}

func (ms *MatStore) applyOne(tid, fid int32, key store.Key, val store.Value, ts int64) {
	t := &ms.tabs[tid]
	slot, ok := t.index[key]
	if !ok {
		slot = t.newSlot(key)
	}
	at := slot*t.ct.nf + fid
	if ts >= t.ts[at] {
		t.vals[at] = val
		t.ts[at] = ts
	}
}

// applyC merges a compiled write batch. Batches are key-adjacent (updates
// emit key-major, inserts write one key), so the key→slot resolution is
// cached across consecutive writes.
func (ms *MatStore) applyC(ws []cwrite, ts int64) {
	lastTid := int32(-1)
	var lastKey store.Key
	var t *mtable
	var slot int32
	for i := range ws {
		w := &ws[i]
		if w.tid != lastTid || w.key != lastKey {
			t = &ms.tabs[w.tid]
			s, ok := t.index[w.key]
			if !ok {
				s = t.newSlot(w.key)
			}
			slot = s
			lastTid, lastKey = w.tid, w.key
		}
		at := slot*t.ct.nf + w.fid
		if ts >= t.ts[at] {
			t.vals[at] = w.val
			t.ts[at] = ts
		}
	}
}

// Overlay is a DBView layering a transaction's buffered writes over a
// base state (the interpreter's SC transactions read their own uncommitted
// writes through it; the compiled executor uses coverlay).
type Overlay struct {
	Base   DBView
	writes map[string]map[store.Key]store.Row
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base DBView) *Overlay {
	return &Overlay{Base: base, writes: map[string]map[store.Key]store.Row{}}
}

// Buffer records a pending write.
func (o *Overlay) Buffer(w WriteOp) {
	t := o.writes[w.Table]
	if t == nil {
		t = map[store.Key]store.Row{}
		o.writes[w.Table] = t
	}
	r := t[w.Key]
	if r == nil {
		r = store.Row{}
		t[w.Key] = r
	}
	r[w.Field] = w.Val
}

// Writes returns the buffered writes in deterministic order.
func (o *Overlay) Writes() []WriteOp {
	var tables []string
	for t := range o.writes {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var out []WriteOp
	for _, tn := range tables {
		var keys []store.Key
		for k := range o.writes[tn] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			row := o.writes[tn][k]
			var fields []string
			for f := range row {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				out = append(out, WriteOp{Table: tn, Key: k, Field: f, Val: row[f]})
			}
		}
	}
	return out
}

// Schema implements DBView.
func (o *Overlay) Schema(table string) *ast.Schema { return o.Base.Schema(table) }

// Read implements DBView.
func (o *Overlay) Read(table string, key store.Key, field string) store.Value {
	if t, ok := o.writes[table]; ok {
		if r, ok := t[key]; ok {
			if v, ok := r[field]; ok {
				return v
			}
		}
	}
	return o.Base.Read(table, key, field)
}

// Alive implements DBView.
func (o *Overlay) Alive(table string, key store.Key) bool {
	v := o.Read(table, key, ast.AliveField)
	return v.T == ast.TBool && v.B
}

// Keys implements DBView: base keys plus overlay-created keys.
func (o *Overlay) Keys(table string) []store.Key {
	base := o.Base.Keys(table)
	t, ok := o.writes[table]
	if !ok {
		return base
	}
	seen := map[store.Key]bool{}
	for _, k := range base {
		seen[k] = true
	}
	extra := false
	for k := range t {
		if !seen[k] {
			extra = true
		}
	}
	if !extra {
		return base
	}
	out := append([]store.Key(nil), base...)
	for k := range t {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
