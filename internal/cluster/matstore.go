package cluster

import (
	"fmt"
	"sort"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// DBView is the read interface transactions execute against: a replica's
// materialized state, optionally overlaid with a transaction's buffered
// writes (SC mode reads-your-writes before commit).
type DBView interface {
	Schema(table string) *ast.Schema
	Read(table string, key store.Key, field string) store.Value
	Alive(table string, key store.Key) bool
	Keys(table string) []store.Key
}

// WriteOp is one field write produced by a statement, applied by the
// caller (immediately under EC, at commit under SC) and shipped to the
// other replicas.
type WriteOp struct {
	Table string
	Key   store.Key
	Field string
	Val   store.Value
}

// MatStore is a replica's materialized state: current field values with
// per-field last-writer-wins timestamps for replication merging.
type MatStore struct {
	prog   *ast.Program
	tables map[string]*matTable
}

type matTable struct {
	rows map[store.Key]*matRow
	keys []store.Key // sorted, for deterministic scans
}

type matRow struct {
	fields store.Row
	ts     map[string]int64
}

// NewMatStore creates an empty replica state for the program.
func NewMatStore(prog *ast.Program) *MatStore {
	ms := &MatStore{prog: prog, tables: map[string]*matTable{}}
	for _, s := range prog.Schemas {
		ms.tables[s.Name] = &matTable{rows: map[store.Key]*matRow{}}
	}
	return ms
}

// Load installs an initial record (alive, timestamp 0). Missing fields get
// zero values; the key derives from the schema's primary-key fields.
func (ms *MatStore) Load(table string, row store.Row) error {
	s := ms.prog.Schema(table)
	if s == nil {
		return fmt.Errorf("cluster: unknown table %q", table)
	}
	t := ms.tables[table]
	full := store.Row{}
	for _, f := range s.Fields {
		if v, ok := row[f.Name]; ok {
			full[f.Name] = v
		} else {
			full[f.Name] = store.Zero(f.Type)
		}
	}
	if v, ok := row[ast.AliveField]; ok {
		full[ast.AliveField] = v
	} else {
		full[ast.AliveField] = store.BoolV(true)
	}
	var pk []store.Value
	for _, f := range s.PrimaryKey() {
		pk = append(pk, full[f.Name])
	}
	key := store.MakeKey(pk...)
	if _, exists := t.rows[key]; !exists {
		t.insertKey(key)
	}
	t.rows[key] = &matRow{fields: full, ts: map[string]int64{}}
	return nil
}

// Clone copies the state (used to give each replica an identical start).
func (ms *MatStore) Clone() *MatStore {
	out := &MatStore{prog: ms.prog, tables: map[string]*matTable{}}
	for name, t := range ms.tables {
		nt := &matTable{rows: make(map[store.Key]*matRow, len(t.rows)), keys: append([]store.Key(nil), t.keys...)}
		for k, r := range t.rows {
			nr := &matRow{fields: r.fields.Clone(), ts: make(map[string]int64, len(r.ts))}
			for f, ts := range r.ts {
				nr.ts[f] = ts
			}
			nt.rows[k] = nr
		}
		out.tables[name] = nt
	}
	return out
}

func (t *matTable) insertKey(k store.Key) {
	i := sort.Search(len(t.keys), func(i int) bool { return t.keys[i] >= k })
	t.keys = append(t.keys, "")
	copy(t.keys[i+1:], t.keys[i:])
	t.keys[i] = k
}

// Schema implements DBView.
func (ms *MatStore) Schema(table string) *ast.Schema { return ms.prog.Schema(table) }

// Read implements DBView; unknown records read zero values.
func (ms *MatStore) Read(table string, key store.Key, field string) store.Value {
	t := ms.tables[table]
	if t != nil {
		if r, ok := t.rows[key]; ok {
			if v, ok := r.fields[field]; ok {
				return v
			}
		}
	}
	if s := ms.prog.Schema(table); s != nil {
		if f := s.Field(field); f != nil {
			return store.Zero(f.Type)
		}
	}
	return store.Value{}
}

// Alive implements DBView.
func (ms *MatStore) Alive(table string, key store.Key) bool {
	v := ms.Read(table, key, ast.AliveField)
	return v.T == ast.TBool && v.B
}

// Keys implements DBView (sorted).
func (ms *MatStore) Keys(table string) []store.Key {
	t := ms.tables[table]
	if t == nil {
		return nil
	}
	return t.keys
}

// Apply merges one write with last-writer-wins semantics at the given
// timestamp (timestamps must be unique across the run; the driver encodes
// virtual time and a sequence number).
func (ms *MatStore) Apply(w WriteOp, ts int64) {
	t := ms.tables[w.Table]
	if t == nil {
		return
	}
	r, ok := t.rows[w.Key]
	if !ok {
		r = &matRow{fields: store.Row{}, ts: map[string]int64{}}
		// Initialize declared fields to zero so reads are well-typed.
		if s := ms.prog.Schema(w.Table); s != nil {
			for _, f := range s.Fields {
				r.fields[f.Name] = store.Zero(f.Type)
			}
			r.fields[ast.AliveField] = store.BoolV(false)
		}
		t.rows[w.Key] = r
		t.insertKey(w.Key)
	}
	if ts >= r.ts[w.Field] {
		r.fields[w.Field] = w.Val
		r.ts[w.Field] = ts
	}
}

// Overlay is a DBView layering a transaction's buffered writes over a
// base state (SC transactions read their own uncommitted writes).
type Overlay struct {
	Base   DBView
	writes map[string]map[store.Key]store.Row
}

// NewOverlay creates an empty overlay over base.
func NewOverlay(base DBView) *Overlay {
	return &Overlay{Base: base, writes: map[string]map[store.Key]store.Row{}}
}

// Buffer records a pending write.
func (o *Overlay) Buffer(w WriteOp) {
	t := o.writes[w.Table]
	if t == nil {
		t = map[store.Key]store.Row{}
		o.writes[w.Table] = t
	}
	r := t[w.Key]
	if r == nil {
		r = store.Row{}
		t[w.Key] = r
	}
	r[w.Field] = w.Val
}

// Writes returns the buffered writes in deterministic order.
func (o *Overlay) Writes() []WriteOp {
	var tables []string
	for t := range o.writes {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	var out []WriteOp
	for _, tn := range tables {
		var keys []store.Key
		for k := range o.writes[tn] {
			keys = append(keys, k)
		}
		sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
		for _, k := range keys {
			row := o.writes[tn][k]
			var fields []string
			for f := range row {
				fields = append(fields, f)
			}
			sort.Strings(fields)
			for _, f := range fields {
				out = append(out, WriteOp{Table: tn, Key: k, Field: f, Val: row[f]})
			}
		}
	}
	return out
}

// Schema implements DBView.
func (o *Overlay) Schema(table string) *ast.Schema { return o.Base.Schema(table) }

// Read implements DBView.
func (o *Overlay) Read(table string, key store.Key, field string) store.Value {
	if t, ok := o.writes[table]; ok {
		if r, ok := t[key]; ok {
			if v, ok := r[field]; ok {
				return v
			}
		}
	}
	return o.Base.Read(table, key, field)
}

// Alive implements DBView.
func (o *Overlay) Alive(table string, key store.Key) bool {
	v := o.Read(table, key, ast.AliveField)
	return v.T == ast.TBool && v.B
}

// Keys implements DBView: base keys plus overlay-created keys.
func (o *Overlay) Keys(table string) []store.Key {
	base := o.Base.Keys(table)
	t, ok := o.writes[table]
	if !ok {
		return base
	}
	seen := map[store.Key]bool{}
	for _, k := range base {
		seen[k] = true
	}
	extra := false
	for k := range t {
		if !seen[k] {
			extra = true
		}
	}
	if !extra {
		return base
	}
	out := append([]store.Key(nil), base...)
	for k := range t {
		if !seen[k] {
			out = append(out, k)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
