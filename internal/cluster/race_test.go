package cluster

import (
	"sync"
	"testing"
	"time"

	"atropos/internal/benchmarks"
)

// TestRunConcurrentSharedInputs launches many simulations that share one
// program, one row set, and one mix — exactly how the parallel experiment
// engine drives a panel. Each run must own all mutable state (replicas,
// RNG, latency reservoir, lock table); with -race this test guards that,
// and it checks determinism: equal configs produce equal results no matter
// how many runs race alongside.
func TestRunConcurrentSharedInputs(t *testing.T) {
	b := benchmarks.SIBench
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 20}
	rows := b.Rows(scale)
	serializable := map[string]bool{"increment": true}
	cfg := func(seed int64, mode Mode) Config {
		return Config{
			Program:          prog,
			Mix:              b.Mix,
			Scale:            scale,
			Rows:             rows,
			Topology:         VACluster,
			Clients:          6,
			Duration:         1 * time.Second,
			Warmup:           100 * time.Millisecond,
			Seed:             seed,
			Mode:             mode,
			SerializableTxns: serializable,
		}
	}

	type job struct {
		seed int64
		mode Mode
	}
	var jobs []job
	for seed := int64(1); seed <= 4; seed++ {
		for _, mode := range []Mode{ModeEC, ModeSC, ModeATSC} {
			jobs = append(jobs, job{seed, mode})
		}
	}
	// Two full rounds of every job run concurrently; matching jobs must
	// produce identical measurements.
	results := make([]Result, 2*len(jobs))
	var wg sync.WaitGroup
	for i := range results {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			j := jobs[i%len(jobs)]
			res, err := Run(cfg(j.seed, j.mode))
			if err != nil {
				t.Errorf("seed %d mode %v: %v", j.seed, j.mode, err)
				return
			}
			results[i] = res
		}(i)
	}
	wg.Wait()
	for i, j := range jobs {
		a, b := results[i], results[len(jobs)+i]
		if a != b {
			t.Errorf("seed %d mode %v not deterministic under concurrency:\n  %+v\n  %+v", j.seed, j.mode, a, b)
		}
		if a.Committed == 0 {
			t.Errorf("seed %d mode %v: no transactions committed", j.seed, j.mode)
		}
	}
}
