package cluster

import (
	"fmt"
	"sort"
	"strings"
)

// Trace records a run's execution history — every applied write batch with
// its merge timestamp and replica, every commit with its virtual time and
// client, every SC abort — as one canonical string per event. The
// differential tests assert that the compiled executor and the AST
// interpreter produce byte-identical traces for a fixed seed (DESIGN.md
// §9). Writes within a batch are sorted by table/key/field name before
// rendering: the two engines emit batch members in different (state-
// equivalent) orders, and the canonical form erases exactly that
// difference and nothing else.
type Trace struct {
	Events []string
}

func (tr *Trace) add(s string) { tr.Events = append(tr.Events, s) }

// applyC records a compiled write batch applied at a replica.
func (tr *Trace) applyC(now int64, rep int, ts int64, cp *Compiled, ws []cwrite) {
	parts := make([]string, len(ws))
	for i, w := range ws {
		ct := &cp.tables[w.tid]
		parts[i] = fmt.Sprintf("%s/%q.%s=%s", ct.name, string(w.key), ct.fields[w.fid], w.val)
	}
	tr.addApply(now, rep, ts, parts)
}

// applyOps records an interpreter write batch applied at a replica.
func (tr *Trace) applyOps(now int64, rep int, ts int64, ws []WriteOp) {
	parts := make([]string, len(ws))
	for i, w := range ws {
		parts[i] = fmt.Sprintf("%s/%q.%s=%s", w.Table, string(w.Key), w.Field, w.Val)
	}
	tr.addApply(now, rep, ts, parts)
}

func (tr *Trace) addApply(now int64, rep int, ts int64, parts []string) {
	sort.Strings(parts)
	tr.add(fmt.Sprintf("%d r%d ts%d %s", now, rep, ts, strings.Join(parts, " ")))
}

func (tr *Trace) commit(now int64, client int, txn string, measured bool) {
	tag := "commit"
	if !measured {
		tag = "commit-unmeasured"
	}
	tr.add(fmt.Sprintf("%d c%d %s %s", now, client, tag, txn))
}

func (tr *Trace) abort(now int64, client int, txn string) {
	tr.add(fmt.Sprintf("%d c%d abort %s", now, client, txn))
}

// fault records one fault window of the run's plan as a header event, so
// a trace pins the schedule it ran under alongside the history it
// produced (node kinds name one replica, link kinds the pair).
func (tr *Trace) fault(f Fault) {
	switch f.Kind {
	case FaultCrash:
		tr.add(fmt.Sprintf("fault %s r%d [%d,%d)", f.Kind, f.A, f.From, f.Until))
	case FaultSkew:
		tr.add(fmt.Sprintf("fault %s r%d %+d [%d,%d)", f.Kind, f.A, f.Amount, f.From, f.Until))
	case FaultDrop:
		tr.add(fmt.Sprintf("fault %s r%d-r%d %d%% [%d,%d)", f.Kind, f.A, f.B, f.Pct, f.From, f.Until))
	default:
		tr.add(fmt.Sprintf("fault %s r%d-r%d %d [%d,%d)", f.Kind, f.A, f.B, f.Amount, f.From, f.Until))
	}
}
