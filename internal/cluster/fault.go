package cluster

import (
	"fmt"
	"math/rand"
)

// This file is the simulator's deterministic fault layer (DESIGN.md §13).
// A FaultPlan is a declarative, seeded schedule of adverse conditions —
// link partitions, replica crashes with replication catch-up, added link
// lag, bounded clock skew on merge-timestamp assignment, and message
// drop/reorder — evaluated at the points where the drivers schedule
// network and service events. Both executors (the AST interpreter and the
// compiled engine) route every affected delay through the same hooks in
// the same order, so a faulted run remains a byte-identical differential
// twin: same (seed, plan, config) ⇒ same Trace, on either engine, on
// every machine. A nil plan compiles to a nil state and every hook takes
// the exact pre-fault fast path, leaving fault-free runs bit-for-bit
// unchanged.

// FaultKind selects what a Fault window does while it is active.
type FaultKind int

// Fault kinds. Link kinds apply to the unordered replica pair {A, B};
// node kinds apply to replica A.
const (
	// FaultPartition cuts the link: messages sent while the window is
	// active queue at the sender and depart when the link heals.
	FaultPartition FaultKind = iota
	// FaultCrash fail-stops the replica: statements routed to it and
	// replication batches arriving at it defer to its recovery time, where
	// the deferred batches land in send order — the catch-up.
	FaultCrash
	// FaultLag inflates the link's one-way transit by Amount µs.
	FaultLag
	// FaultSkew offsets the replica's merge-timestamp clock by Amount
	// ticks (positive or negative), bending last-writer-wins arbitration.
	FaultSkew
	// FaultDrop loses Pct percent of the link's messages; a lost message
	// retransmits after one round trip (deterministically, from the
	// plan's own RNG).
	FaultDrop
	// FaultReorder adds per-message jitter drawn from [0, Amount) µs to
	// the link, letting later sends overtake earlier ones.
	FaultReorder
)

func (k FaultKind) String() string {
	switch k {
	case FaultPartition:
		return "partition"
	case FaultCrash:
		return "crash"
	case FaultLag:
		return "lag"
	case FaultSkew:
		return "skew"
	case FaultDrop:
		return "drop"
	case FaultReorder:
		return "reorder"
	default:
		return fmt.Sprintf("FaultKind(%d)", int(k))
	}
}

// Fault is one scheduled fault window, active on [From, Until) virtual µs.
type Fault struct {
	Kind        FaultKind
	From, Until int64
	// A, B are replica indices: link kinds use the pair {A, B}, node
	// kinds (crash, skew) use A alone.
	A, B int
	// Amount is µs for lag/reorder and timestamp ticks for skew.
	Amount int64
	// Pct is the drop probability in percent (1..95).
	Pct int
}

// FaultPlan is a seeded schedule of fault windows. The seed drives only
// the plan's own RNG (drop lotteries, reorder jitter), kept separate from
// the workload RNG so the same workload meets the same faults regardless
// of how many random draws either side makes.
type FaultPlan struct {
	Seed   int64
	Faults []Fault
}

// faultState is a FaultPlan compiled for one run: windows bucketed per
// directed link and per node for O(active windows) queries, plus the
// plan's RNG.
type faultState struct {
	rng     *rand.Rand
	hasSkew bool
	link    [3][3][]Fault
	node    [3][]Fault
}

func newFaultState(p *FaultPlan) (*faultState, error) {
	if p == nil {
		return nil, nil
	}
	f := &faultState{rng: rand.New(rand.NewSource(p.Seed))}
	for i, w := range p.Faults {
		if w.Until <= w.From || w.From < 0 {
			return nil, fmt.Errorf("cluster: fault %d: bad window [%d, %d)", i, w.From, w.Until)
		}
		switch w.Kind {
		case FaultCrash, FaultSkew:
			if w.A < 0 || w.A > 2 {
				return nil, fmt.Errorf("cluster: fault %d: bad replica %d", i, w.A)
			}
			f.node[w.A] = append(f.node[w.A], w)
			if w.Kind == FaultSkew {
				f.hasSkew = true
			}
		case FaultPartition, FaultLag, FaultDrop, FaultReorder:
			if w.A < 0 || w.A > 2 || w.B < 0 || w.B > 2 || w.A == w.B {
				return nil, fmt.Errorf("cluster: fault %d: bad link %d-%d", i, w.A, w.B)
			}
			if w.Kind == FaultDrop && (w.Pct < 1 || w.Pct > 95) {
				return nil, fmt.Errorf("cluster: fault %d: drop pct %d outside 1..95", i, w.Pct)
			}
			if (w.Kind == FaultLag || w.Kind == FaultReorder) && w.Amount <= 0 {
				return nil, fmt.Errorf("cluster: fault %d: %s needs a positive amount", i, w.Kind)
			}
			f.link[w.A][w.B] = append(f.link[w.A][w.B], w)
			f.link[w.B][w.A] = append(f.link[w.B][w.A], w)
		default:
			return nil, fmt.Errorf("cluster: fault %d: unknown kind %d", i, int(w.Kind))
		}
	}
	return f, nil
}

// aliveAt returns the first instant ≥ t at which replica r is up,
// chaining through overlapping or back-to-back crash windows.
func (f *faultState) aliveAt(r int, t int64) int64 {
	for again := true; again; {
		again = false
		for _, w := range f.node[r] {
			if w.Kind == FaultCrash && t >= w.From && t < w.Until {
				t, again = w.Until, true
			}
		}
	}
	return t
}

// healedAt returns the first instant ≥ t at which the a–b link carries
// traffic (no partition window active).
func (f *faultState) healedAt(a, b int, t int64) int64 {
	for again := true; again; {
		again = false
		for _, w := range f.link[a][b] {
			if w.Kind == FaultPartition && t >= w.From && t < w.Until {
				t, again = w.Until, true
			}
		}
	}
	return t
}

// lagAt sums the link's active lag amounts at t.
func (f *faultState) lagAt(a, b int, t int64) int64 {
	var lag int64
	for _, w := range f.link[a][b] {
		if w.Kind == FaultLag && t >= w.From && t < w.Until {
			lag += w.Amount
		}
	}
	return lag
}

// dropPct is the link's strongest active drop probability at t.
func (f *faultState) dropPct(a, b int, t int64) int {
	pct := 0
	for _, w := range f.link[a][b] {
		if w.Kind == FaultDrop && t >= w.From && t < w.Until && w.Pct > pct {
			pct = w.Pct
		}
	}
	return pct
}

// reorderSpan is the link's widest active jitter bound at t.
func (f *faultState) reorderSpan(a, b int, t int64) int64 {
	var span int64
	for _, w := range f.link[a][b] {
		if w.Kind == FaultReorder && t >= w.From && t < w.Until && w.Amount > span {
			span = w.Amount
		}
	}
	return span
}

// skewAt sums the replica's active clock offsets at t.
func (f *faultState) skewAt(r int, t int64) int64 {
	var skew int64
	for _, w := range f.node[r] {
		if w.Kind == FaultSkew && t >= w.From && t < w.Until {
			skew += w.Amount
		}
	}
	return skew
}

// deliver computes the absolute arrival time of one message from a to b,
// sent at `sent` with fault-free one-way transit `transit`: partitions
// queue it at the sender until heal, drops retransmit it after a round
// trip, lag and reorder jitter stretch the flight, and a crashed receiver
// defers it to recovery — which is exactly the catch-up: every batch
// deferred during an outage lands at the recovery instant in send order.
func (f *faultState) deliver(a, b int, sent, transit int64) int64 {
	t := f.healedAt(a, b, sent)
	for retry := 0; retry < 64; retry++ {
		pct := f.dropPct(a, b, t)
		if pct <= 0 || f.rng.Intn(100) >= pct {
			break
		}
		t = f.healedAt(a, b, t+2*transit)
	}
	at := t + transit + f.lagAt(a, b, t)
	if span := f.reorderSpan(a, b, t); span > 0 {
		at += f.rng.Int63n(span)
	}
	return f.aliveAt(b, at)
}

// Driver hooks. Every delay the fault layer can bend is computed here —
// by both engines, at mirrored call sites, in the same order — and each
// hook's nil-plan branch reproduces the pre-fault expression verbatim.

// repDelay is the delay after which a replication batch sent now from
// `from` arrives at `to` (half the link RTT when no fault is active).
func (d *driver) repDelay(from, to int) int64 {
	transit := d.cfg.Topology.RTT[from][to] / 2
	if d.flt == nil {
		return transit
	}
	now := d.sim.Now()
	return d.flt.deliver(from, to, now, transit) - now
}

// ecDelay is the client → home-replica leg of one EC statement, including
// the non-queueing per-statement overhead; a crashed home replica defers
// service to its recovery. (Client links themselves are not in the fault
// vocabulary: clients are colocated with their replica.)
func (d *driver) ecDelay(r int) int64 {
	base := d.cfg.Topology.ClientRTT/2 + d.cfg.StmtOverhead
	if d.flt == nil {
		return base
	}
	now := d.sim.Now()
	return d.flt.aliveAt(r, now+base) - now
}

// scDelay is the client → primary leg of an SC attempt; a crashed primary
// defers the attempt to its recovery.
func (d *driver) scDelay(c *client) int64 {
	base := c.primaryRTT() / 2
	if d.flt == nil {
		return base
	}
	now := d.sim.Now()
	return d.flt.aliveAt(primary, now+base) - now
}

// ackDelay is the majority-acknowledgement wait of one SC write
// statement: the fastest secondary's request + ack round trip under the
// active faults (equal to Topology.majorityRTT when none are).
func (d *driver) ackDelay() int64 {
	if d.flt == nil {
		return d.cfg.Topology.majorityRTT(primary)
	}
	now := d.sim.Now()
	best := int64(-1)
	for j := 0; j < 3; j++ {
		if j == primary {
			continue
		}
		transit := d.cfg.Topology.RTT[primary][j] / 2
		req := d.flt.deliver(primary, j, now, transit)
		ack := d.flt.deliver(j, primary, req, transit)
		if best < 0 || ack < best {
			best = ack
		}
	}
	return best - now
}

// tsAt produces the merge timestamp for a batch committing at replica r.
// Without skew it is the plain strictly monotone arbitration sequence.
// Under an active skew window the sequence is offset by the replica's
// clock error and tagged with the replica index in the low bits, so
// timestamps stay unique across replicas while a skewed replica's batches
// arbitrate as if stamped earlier or later than arrival order; the rare
// same-replica collision (a window closing) is resolved by Apply's
// deterministic later-apply-wins tie rule.
func (d *driver) tsAt(r int) int64 {
	d.tsSeq++
	if d.flt == nil || !d.flt.hasSkew {
		return d.tsSeq
	}
	return (d.tsSeq+d.flt.skewAt(r, d.sim.Now()))*4 + int64(r)
}

// Scenario is one named fault schedule of the chaos panel.
type Scenario struct {
	Name string
	Plan *FaultPlan
}

// ChaosScenarios builds the canonical chaos panel for a run of the given
// virtual horizon (µs): clean (no faults — the control), flaky-link
// (drop + reorder on the secondary link, lag toward one secondary),
// rolling-crash (each secondary down in turn), split-brain-heal (one
// secondary partitioned from both peers, healing late), and skewed-clocks
// (opposite bounded clock offsets on the secondaries). Scenarios never
// crash or isolate-from-quorum the primary, so SC progress is preserved.
func ChaosScenarios(horizon int64) []Scenario {
	h := horizon
	return []Scenario{
		{Name: "clean"},
		{Name: "flaky-link", Plan: &FaultPlan{Seed: 101, Faults: []Fault{
			{Kind: FaultDrop, From: h / 10, Until: 9 * h / 10, A: 1, B: 2, Pct: 40},
			{Kind: FaultReorder, From: h / 10, Until: 9 * h / 10, A: 1, B: 2, Amount: 20_000},
			{Kind: FaultLag, From: h / 5, Until: 4 * h / 5, A: 0, B: 2, Amount: 60_000},
		}}},
		{Name: "rolling-crash", Plan: &FaultPlan{Seed: 102, Faults: []Fault{
			{Kind: FaultCrash, From: 15 * h / 100, Until: 35 * h / 100, A: 1},
			{Kind: FaultCrash, From: 45 * h / 100, Until: 65 * h / 100, A: 2},
		}}},
		{Name: "split-brain-heal", Plan: &FaultPlan{Seed: 103, Faults: []Fault{
			{Kind: FaultPartition, From: h / 5, Until: 7 * h / 10, A: 0, B: 2},
			{Kind: FaultPartition, From: h / 5, Until: 7 * h / 10, A: 1, B: 2},
		}}},
		{Name: "skewed-clocks", Plan: &FaultPlan{Seed: 104, Faults: []Fault{
			{Kind: FaultSkew, From: h / 10, Until: 9 * h / 10, A: 1, Amount: 64},
			{Kind: FaultSkew, From: h / 10, Until: 9 * h / 10, A: 2, Amount: -64},
		}}},
	}
}
