package cluster

import (
	"fmt"
	"sort"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// This file is the compiled executor: a cframe runs a ctxn's op-codes
// against a MatStore (optionally through a coverlay for SC
// read-your-writes) with all scratch state — value stack, result sets,
// matched-key buffers, write batches — owned by the frame and reused
// across transactions, so steady-state execution allocates O(1) per
// transaction regardless of run length or table size.

// cview is the compiled executor's view of replica state: the base store
// plus an optional transaction-private overlay.
type cview struct {
	ms *MatStore
	ov *coverlay
}

// scanRef identifies the row a where clause's this.f refers to during a
// scan, with the flat-array offsets precomputed: base is slot*nf into the
// table's value array (-1 for overlay-only rows), ovBase is ovRow*nf into
// the overlay's (-1 when the row has no overlay state).
type scanRef struct {
	t      *mtable
	ot     *covTab
	base   int32
	ovBase int32
}

var scanNone = scanRef{base: -1, ovBase: -1}

// field resolves a field through overlay → base row → schema zero.
func (sr scanRef) field(fid int32) store.Value {
	if sr.ovBase >= 0 && sr.ot.set[sr.ovBase+fid] {
		return sr.ot.vals[sr.ovBase+fid]
	}
	if sr.base >= 0 {
		return sr.t.vals[sr.base+fid]
	}
	return sr.t.ct.zeros[fid]
}

// crset is a slot-bound query result: n rows of ncol columns in one flat
// value array (no per-row maps).
type crset struct {
	bound bool
	n     int
	ncol  int
	vals  []store.Value
}

type citer struct{ idx, count int64 }

// cframe executes one transaction instance and is reset and reused for the
// next (per client under EC, per txnRun under SC).
type cframe struct {
	cp    *Compiled
	ct    *ctxn
	args  []store.Value
	argOK []bool
	vars  []crset
	iters []citer
	stack []store.Value

	// scan scratch: matched keys with their precomputed base and overlay
	// array offsets (slot*nf / ovRow*nf, -1 when absent).
	mkeys  []store.Key
	mbases []int32
	movs   []int32

	pinVals []store.Value
	insVals []store.Value
	keyBuf  []byte
	writes  []cwrite

	pc      int32
	pending int32
	done    bool
	ret     store.Value
}

func newCFrame(cp *Compiled) *cframe {
	return &cframe{
		cp:      cp,
		args:    make([]store.Value, cp.maxArgs),
		argOK:   make([]bool, cp.maxArgs),
		vars:    make([]crset, cp.maxVars),
		pending: -1,
	}
}

// reset prepares the frame for a fresh instance of ct with the given
// argument binding.
func (f *cframe) reset(ct *ctxn, args map[string]store.Value) {
	f.ct = ct
	f.pc, f.pending, f.done = 0, -1, false
	f.ret = store.Value{}
	if n := len(ct.argNames); n > len(f.args) {
		f.args = make([]store.Value, n)
		f.argOK = make([]bool, n)
	}
	for i, name := range ct.argNames {
		f.args[i], f.argOK[i] = args[name]
	}
	if ct.nvars > len(f.vars) {
		f.vars = make([]crset, ct.nvars)
	}
	for i := 0; i < ct.nvars; i++ {
		f.vars[i].bound = false
		f.vars[i].n = 0
	}
	f.iters = f.iters[:0]
}

// advance runs control flow up to the next database command, returning it,
// or nil when the transaction finished (evaluating its return expression) —
// the compiled counterpart of TxnExec.Advance.
func (f *cframe) advance() (*ccmd, error) {
	if f.pending >= 0 {
		return f.ct.code[f.pending].cmd, nil
	}
	code := f.ct.code
	for {
		if int(f.pc) >= len(code) {
			if f.ct.ret != nil && !f.done {
				val, err := f.eval(f.ct.ret, scanNone, nil)
				if err != nil {
					return nil, err
				}
				f.ret = val
			}
			f.done = true
			return nil, nil
		}
		in := &code[f.pc]
		switch in.op {
		case copIfFalse:
			val, err := f.eval(in.cond, scanNone, nil)
			if err != nil {
				return nil, err
			}
			if val.T == ast.TBool && val.B {
				f.pc++
			} else {
				f.pc = in.a
			}
		case copIterInit:
			val, err := f.eval(in.cond, scanNone, nil)
			if err != nil {
				return nil, err
			}
			if val.T == ast.TInt && val.I > 0 {
				f.iters = append(f.iters, citer{idx: 1, count: val.I})
				f.pc++
			} else {
				f.pc = in.a
			}
		case copIterNext:
			it := &f.iters[len(f.iters)-1]
			if it.idx < it.count {
				it.idx++
				f.pc = in.a
			} else {
				f.iters = f.iters[:len(f.iters)-1]
				f.pc++
			}
		default:
			f.pending = f.pc
			return in.cmd, nil
		}
	}
}

// exec executes the pending command, filling f.writes with the produced
// (not yet applied) writes — the compiled counterpart of TxnExec.Exec.
func (f *cframe) exec(v cview, u *UUIDGen) ([]cwrite, error) {
	cmd := f.ct.code[f.pending].cmd
	f.pending = -1
	f.pc++
	f.writes = f.writes[:0]
	switch cmd.kind {
	case ckSelect:
		return nil, f.execSelect(v, cmd)
	case ckUpdate:
		return f.execUpdate(v, cmd)
	default:
		return f.execInsert(v, cmd, u)
	}
}

// footprint computes the records the pending command touches (for lock
// acquisition) without executing it; uuid's Peek previews insert keys.
func (f *cframe) footprint(v cview, u *UUIDGen) (tid int32, keys []store.Key, err error) {
	cmd := f.ct.code[f.pending].cmd
	if cmd.kind == ckInsert {
		k, err := f.insertKey(v, cmd, u.Peek())
		if err != nil {
			return 0, nil, err
		}
		f.mkeys = append(f.mkeys[:0], k)
		return cmd.tid, f.mkeys, nil
	}
	if err := f.matching(v, cmd); err != nil {
		return 0, nil, err
	}
	return cmd.tid, f.mkeys, nil
}

// matching fills f.mkeys/mbases/movs with the alive records satisfying the
// command's where clause, in sorted key order, narrowing the scan by the
// compiled primary-key prefix pins when they evaluate cleanly (a pin
// evaluation error falls back to the full scan, like the interpreter).
// When the clause is exactly a full primary-key pin over int/bool key
// fields (c.whereIsPin), every key in the narrowed window satisfies it by
// key-encoding injectivity and the per-row evaluation is skipped.
func (f *cframe) matching(v cview, c *ccmd) error {
	f.mkeys = f.mkeys[:0]
	f.mbases = f.mbases[:0]
	f.movs = f.movs[:0]
	t := &v.ms.tabs[c.tid]
	var ovKeys []store.Key
	var ot *covTab
	if v.ov != nil {
		ot = &v.ov.tabs[c.tid]
		ovKeys = ot.newKeys
	}
	ovLo, ovHi := 0, len(ovKeys)

	// Scan window: all keys, the keys under a pin prefix, or one exact key.
	const (
		scanAll = iota
		scanPrefix
		scanExact
	)
	window := scanAll
	bpos := t.idx.begin()
	if len(c.pins) > 0 {
		f.pinVals = f.pinVals[:0]
		ok := true
		for _, pe := range c.pins {
			val, err := f.eval(pe, scanNone, nil)
			if err != nil {
				ok = false
				break
			}
			f.pinVals = append(f.pinVals, val)
		}
		if ok {
			f.keyBuf = f.keyBuf[:0]
			for i, pv := range f.pinVals {
				if i > 0 {
					f.keyBuf = append(f.keyBuf, '\x1f')
				}
				f.keyBuf = store.AppendKey(f.keyBuf, pv)
			}
			if c.pinFull {
				window = scanExact
			} else {
				f.keyBuf = append(f.keyBuf, '\x1f')
				window = scanPrefix
			}
			bpos = t.idx.seek(t.keys, f.keyBuf)
			ovLo, ovHi = narrowPlain(ovKeys, f.keyBuf, c.pinFull)
		}
	}
	skipWhere := window == scanExact && c.whereIsPin
	nf := t.ct.nf
	aliveID := t.ct.alive

	// inWindow reports whether a base key is still inside the scan window.
	inWindow := func(k store.Key) bool {
		switch window {
		case scanPrefix:
			return keyHasPrefix(k, f.keyBuf)
		case scanExact:
			return keyCmp(k, f.keyBuf) == 0
		default:
			return true
		}
	}

	if ot == nil || len(ot.keys) == 0 {
		// No overlay state for this table (every EC scan, and the common
		// SC case): iterate the base window directly.
		for ; t.idx.valid(bpos); bpos = t.idx.next(bpos) {
			slot := t.idx.at(bpos)
			k := t.keys[slot]
			if window != scanAll && !inWindow(k) {
				break
			}
			base := slot * nf
			alive := t.vals[base+aliveID]
			if alive.T != ast.TBool || !alive.B {
				continue
			}
			if !skipWhere {
				val, err := f.eval(c.where, scanRef{t: t, base: base, ovBase: -1}, nil)
				if err != nil {
					return err
				}
				if val.T != ast.TBool || !val.B {
					continue
				}
			}
			f.mkeys = append(f.mkeys, k)
			f.mbases = append(f.mbases, base)
			f.movs = append(f.movs, -1)
			if window == scanExact {
				break
			}
		}
		return nil
	}

	// Merge the base window with the overlay's transaction-created keys in
	// sorted order.
	oi := ovLo
	baseDone := false
	for {
		var bk store.Key
		var slot int32
		bHas := false
		if !baseDone && t.idx.valid(bpos) {
			slot = t.idx.at(bpos)
			bk = t.keys[slot]
			if window == scanAll || inWindow(bk) {
				bHas = true
			} else {
				baseDone = true
			}
		}
		oHas := oi < ovHi
		if !bHas && !oHas {
			break
		}
		var k store.Key
		base, ovBase := int32(-1), int32(-1)
		if bHas && (!oHas || bk <= ovKeys[oi]) {
			k = bk
			base = slot * nf
			bpos = t.idx.next(bpos)
			if window == scanExact {
				baseDone = true
			}
			// A key can live on both sides: buffered while absent from the
			// base (so it entered newKeys), then committed to the base by a
			// concurrent EC transaction. Consume both cursors so the row is
			// emitted once, like the interpreter's deduplicating
			// Overlay.Keys.
			if oHas && bk == ovKeys[oi] {
				oi++
			}
		} else {
			k = ovKeys[oi]
			oi++
		}
		if r, ok := ot.idx[k]; ok {
			ovBase = r * nf
		}
		sr := scanRef{t: t, ot: ot, base: base, ovBase: ovBase}
		alive := sr.field(aliveID)
		if alive.T != ast.TBool || !alive.B {
			continue
		}
		if !skipWhere {
			val, err := f.eval(c.where, sr, nil)
			if err != nil {
				return err
			}
			if val.T != ast.TBool || !val.B {
				continue
			}
		}
		f.mkeys = append(f.mkeys, k)
		f.mbases = append(f.mbases, base)
		f.movs = append(f.movs, ovBase)
	}
	return nil
}

// keyCmp compares a key with a prefix buffer bytewise (no string
// conversion, so scans build prefixes without allocating).
func keyCmp(k store.Key, p []byte) int {
	n := len(k)
	if len(p) < n {
		n = len(p)
	}
	for i := 0; i < n; i++ {
		if k[i] != p[i] {
			if k[i] < p[i] {
				return -1
			}
			return 1
		}
	}
	switch {
	case len(k) == len(p):
		return 0
	case len(k) < len(p):
		return -1
	default:
		return 1
	}
}

func keyHasPrefix(k store.Key, p []byte) bool {
	return len(k) >= len(p) && keyCmp(k[:len(p)], p) == 0
}

// narrowPlain returns the half-open window of an already-sorted key slice
// (the overlay's transaction-created keys) matching the pin prefix: an
// exact single-key window for full-key pins, a prefix window otherwise
// (the prefix already carries its separator).
func narrowPlain(keys []store.Key, prefix []byte, exact bool) (int, int) {
	lo := sort.Search(len(keys), func(i int) bool { return keyCmp(keys[i], prefix) >= 0 })
	if exact {
		if lo < len(keys) && keyCmp(keys[lo], prefix) == 0 {
			return lo, lo + 1
		}
		return lo, lo
	}
	hi := lo
	for hi < len(keys) && keyHasPrefix(keys[hi], prefix) {
		hi++
	}
	return lo, hi
}

func (f *cframe) execSelect(v cview, c *ccmd) error {
	if err := f.matching(v, c); err != nil {
		return err
	}
	rs := &f.vars[c.varSlot]
	rs.bound = true
	rs.n = len(f.mkeys)
	rs.ncol = len(c.cols)
	need := rs.n * rs.ncol
	if cap(rs.vals) < need {
		rs.vals = make([]store.Value, need)
	}
	rs.vals = rs.vals[:need]
	t := &v.ms.tabs[c.tid]
	var ot *covTab
	if v.ov != nil {
		ot = &v.ov.tabs[c.tid]
	}
	for i := range f.mkeys {
		sr := scanRef{t: t, ot: ot, base: f.mbases[i], ovBase: f.movs[i]}
		row := i * rs.ncol
		if sr.ovBase < 0 {
			for j, fid := range c.cols {
				rs.vals[row+j] = t.vals[sr.base+fid]
			}
		} else {
			for j, fid := range c.cols {
				rs.vals[row+j] = sr.field(fid)
			}
		}
	}
	return nil
}

func (f *cframe) execUpdate(v cview, c *ccmd) ([]cwrite, error) {
	if err := f.matching(v, c); err != nil {
		return nil, err
	}
	f.insVals = f.insVals[:0]
	for _, e := range c.setE {
		val, err := f.eval(e, scanNone, nil)
		if err != nil {
			return nil, err
		}
		f.insVals = append(f.insVals, val)
	}
	for _, k := range f.mkeys {
		for i, fid := range c.setF {
			f.writes = append(f.writes, cwrite{tid: c.tid, fid: fid, key: k, val: f.insVals[i]})
		}
	}
	return f.writes, nil
}

// insertKey evaluates the insert's values (uuid fields read the peeked
// value, everything else evaluates uuid-free) and builds the primary key.
func (f *cframe) insertKey(v cview, c *ccmd, peek store.Value) (store.Key, error) {
	f.insVals = f.insVals[:0]
	for i, e := range c.insE {
		if c.insUUID[i] {
			f.insVals = append(f.insVals, peek)
			continue
		}
		val, err := f.eval(e, scanNone, nil)
		if err != nil {
			return "", err
		}
		f.insVals = append(f.insVals, val)
	}
	return f.buildInsertKey(c), nil
}

func (f *cframe) buildInsertKey(c *ccmd) store.Key {
	f.keyBuf = f.keyBuf[:0]
	for i, idx := range c.insPK {
		if i > 0 {
			f.keyBuf = append(f.keyBuf, '\x1f')
		}
		f.keyBuf = store.AppendKey(f.keyBuf, f.insVals[idx])
	}
	return store.Key(f.keyBuf)
}

func (f *cframe) execInsert(v cview, c *ccmd, u *UUIDGen) ([]cwrite, error) {
	f.insVals = f.insVals[:0]
	for _, e := range c.insE {
		val, err := f.eval(e, scanNone, u)
		if err != nil {
			return nil, err
		}
		f.insVals = append(f.insVals, val)
	}
	k := f.buildInsertKey(c)
	for _, idx := range c.emit {
		f.writes = append(f.writes, cwrite{tid: c.tid, fid: c.insF[idx], key: k, val: f.insVals[idx]})
	}
	alive := v.ms.tabs[c.tid].ct.alive
	f.writes = append(f.writes, cwrite{tid: c.tid, fid: alive, key: k, val: store.BoolV(true)})
	return f.writes, nil
}

// eval runs a compiled expression on the frame's reusable stack. sr is the
// scanned row for this.f (scanNone outside where clauses — the compiler
// guarantees eThis never occurs there); u gates uuid().
func (f *cframe) eval(e cexpr, sr scanRef, u *UUIDGen) (store.Value, error) {
	st := f.stack[:0]
	for pc := 0; pc < len(e); pc++ {
		op := &e[pc]
		switch op.op {
		case eConst:
			st = append(st, op.val)
		case eArg:
			if !f.argOK[op.i] {
				f.stack = st[:0]
				return store.Value{}, fmt.Errorf("cluster: unknown argument %q", op.s)
			}
			st = append(st, f.args[op.i])
		case eIterVar:
			if len(f.iters) == 0 {
				f.stack = st[:0]
				return store.Value{}, fmt.Errorf("cluster: iter outside iterate")
			}
			st = append(st, store.IntV(f.iters[len(f.iters)-1].idx))
		case eThis:
			if sr.ovBase < 0 {
				st = append(st, sr.t.vals[sr.base+op.i])
			} else {
				st = append(st, sr.field(op.i))
			}
		case eThisEqArg:
			if !f.argOK[op.j] {
				f.stack = st[:0]
				return store.Value{}, fmt.Errorf("cluster: unknown argument %q", op.s)
			}
			var tv store.Value
			if sr.ovBase < 0 {
				tv = sr.t.vals[sr.base+op.i]
			} else {
				tv = sr.field(op.i)
			}
			st = append(st, store.BoolV(tv.Equal(f.args[op.j])))
		case eThisEqConst:
			var tv store.Value
			if sr.ovBase < 0 {
				tv = sr.t.vals[sr.base+op.i]
			} else {
				tv = sr.field(op.i)
			}
			st = append(st, store.BoolV(tv.Equal(op.val)))
		case eField:
			rs := &f.vars[op.i]
			if rs.n < 1 {
				z, err := f.zeroOrUnbound(rs, op)
				if err != nil {
					f.stack = st[:0]
					return store.Value{}, err
				}
				st = append(st, z)
				break
			}
			st = append(st, rs.vals[op.j])
		case eFieldIdx:
			rs := &f.vars[op.i]
			idx := st[len(st)-1].I
			st = st[:len(st)-1]
			if idx < 1 || idx > int64(rs.n) {
				z, err := f.zeroOrUnbound(rs, op)
				if err != nil {
					f.stack = st[:0]
					return store.Value{}, err
				}
				st = append(st, z)
				break
			}
			st = append(st, rs.vals[(int(idx)-1)*rs.ncol+int(op.j)])
		case eFieldMiss, eFieldMissIdx:
			rs := &f.vars[op.i]
			idx := int64(1)
			if op.op == eFieldMissIdx {
				idx = st[len(st)-1].I
				st = st[:len(st)-1]
			}
			if idx >= 1 && idx <= int64(rs.n) {
				f.stack = st[:0]
				return store.Value{}, fmt.Errorf("cluster: result lacks field %q", op.s)
			}
			z, err := f.zeroOrUnbound(rs, op)
			if err != nil {
				f.stack = st[:0]
				return store.Value{}, err
			}
			st = append(st, z)
		case eAggCount:
			st = append(st, store.IntV(int64(f.vars[op.i].n)))
		case eAggSum:
			rs := &f.vars[op.i]
			var total int64
			for r := 0; r < rs.n; r++ {
				total += rs.vals[r*rs.ncol+int(op.j)].I
			}
			st = append(st, store.IntV(total))
		case eAggMin, eAggMax, eAggAny:
			rs := &f.vars[op.i]
			if rs.n == 0 {
				z, err := f.zeroOrUnbound(rs, op)
				if err != nil {
					f.stack = st[:0]
					return store.Value{}, err
				}
				st = append(st, z)
				break
			}
			best := rs.vals[op.j]
			if op.op != eAggAny {
				for r := 1; r < rs.n; r++ {
					val := rs.vals[r*rs.ncol+int(op.j)]
					if (op.op == eAggMin && val.Less(best)) || (op.op == eAggMax && best.Less(val)) {
						best = val
					}
				}
			}
			st = append(st, best)
		case eUUID:
			if u == nil {
				f.stack = st[:0]
				return store.Value{}, fmt.Errorf("cluster: uuid() outside insert")
			}
			st = append(st, u.Take())
		case eAndShort:
			if t := st[len(st)-1]; t.T == ast.TBool && !t.B {
				pc += int(op.i)
			}
		case eOrShort:
			if t := st[len(st)-1]; t.T == ast.TBool && t.B {
				pc += int(op.i)
			}
		default:
			r := st[len(st)-1]
			st = st[:len(st)-1]
			l := st[len(st)-1]
			var res store.Value
			switch op.op {
			case eAdd:
				res = store.IntV(l.I + r.I)
			case eSub:
				res = store.IntV(l.I - r.I)
			case eMul:
				res = store.IntV(l.I * r.I)
			case eDiv:
				if r.I == 0 {
					f.stack = st[:0]
					return store.Value{}, fmt.Errorf("cluster: division by zero")
				}
				res = store.IntV(l.I / r.I)
			case eLt:
				res = store.BoolV(l.Less(r))
			case eLe:
				res = store.BoolV(l.Less(r) || l.Equal(r))
			case eEq:
				res = store.BoolV(l.Equal(r))
			case eNe:
				res = store.BoolV(!l.Equal(r))
			case eGt:
				res = store.BoolV(r.Less(l))
			case eGe:
				res = store.BoolV(r.Less(l) || l.Equal(r))
			case eAnd:
				res = store.BoolV(l.B && r.B)
			case eOr:
				res = store.BoolV(l.B || r.B)
			}
			st[len(st)-1] = res
		}
	}
	out := st[len(st)-1]
	f.stack = st[:0]
	return out, nil
}

// zeroOrUnbound mirrors the interpreter's zeroOf: an out-of-range read on a
// bound result set yields the schema zero of the field; reading a variable
// no select has bound yet is an error.
func (f *cframe) zeroOrUnbound(rs *crset, op *eop) (store.Value, error) {
	if !rs.bound {
		return store.Value{}, fmt.Errorf("cluster: unknown variable %q", op.s)
	}
	return op.val, nil
}

// coverlay buffers an SC transaction's uncommitted writes in compiled
// addressing: per table, flat per-row field arrays with set bitmaps, plus
// the sorted list of keys the transaction created (absent from the base
// store). It is reset and reused across attempts.
type coverlay struct {
	ms      *MatStore
	tabs    []covTab
	touched []int32
}

type covTab struct {
	idx      map[store.Key]int32
	keys     []store.Key
	baseSlot []int32
	vals     []store.Value // row*nf + field
	set      []bool
	newKeys  []store.Key // sorted; keys with no base row
}

func newCOverlay(ms *MatStore) *coverlay {
	ov := &coverlay{ms: ms, tabs: make([]covTab, len(ms.tabs))}
	return ov
}

// reset drops all buffered state, keeping allocated capacity.
func (o *coverlay) reset() {
	for _, tid := range o.touched {
		t := &o.tabs[tid]
		clear(t.idx)
		t.keys = t.keys[:0]
		t.baseSlot = t.baseSlot[:0]
		t.vals = t.vals[:0]
		t.set = t.set[:0]
		t.newKeys = t.newKeys[:0]
	}
	o.touched = o.touched[:0]
}

// buffer records one pending write.
func (o *coverlay) buffer(w cwrite) {
	t := &o.tabs[w.tid]
	if t.idx == nil {
		t.idx = map[store.Key]int32{}
	}
	if len(t.keys) == 0 {
		o.touched = append(o.touched, w.tid)
	}
	nf := int(o.ms.tabs[w.tid].ct.nf)
	row, ok := t.idx[w.key]
	if !ok {
		row = int32(len(t.keys))
		t.idx[w.key] = row
		t.keys = append(t.keys, w.key)
		slot := int32(-1)
		if s, ok := o.ms.tabs[w.tid].index[w.key]; ok {
			slot = s
		} else {
			i := sort.Search(len(t.newKeys), func(i int) bool { return t.newKeys[i] >= w.key })
			t.newKeys = append(t.newKeys, "")
			copy(t.newKeys[i+1:], t.newKeys[i:])
			t.newKeys[i] = w.key
		}
		t.baseSlot = append(t.baseSlot, slot)
		for i := 0; i < nf; i++ {
			t.vals = append(t.vals, store.Value{})
			t.set = append(t.set, false)
		}
	}
	at := int(row)*nf + int(w.fid)
	t.vals[at] = w.val
	t.set[at] = true
}

// commitWrites appends the buffered writes to dst in deterministic order:
// ascending table id, sorted key, ascending field index. (The interpreter
// emits name-sorted order instead; batches share one timestamp, so replica
// state is identical either way — see DESIGN.md §9.)
func (o *coverlay) commitWrites(dst []cwrite, rowScratch []int32) ([]cwrite, []int32) {
	// Insertion sorts: the touched-table and per-table row counts are tiny
	// (an SC transaction's write set), and sort.Slice would allocate its
	// closure and swapper on every commit.
	for i := 1; i < len(o.touched); i++ {
		for j := i; j > 0 && o.touched[j] < o.touched[j-1]; j-- {
			o.touched[j], o.touched[j-1] = o.touched[j-1], o.touched[j]
		}
	}
	for _, tid := range o.touched {
		t := &o.tabs[tid]
		nf := int(o.ms.tabs[tid].ct.nf)
		rowScratch = rowScratch[:0]
		for r := range t.keys {
			rowScratch = append(rowScratch, int32(r))
		}
		for i := 1; i < len(rowScratch); i++ {
			for j := i; j > 0 && t.keys[rowScratch[j]] < t.keys[rowScratch[j-1]]; j-- {
				rowScratch[j], rowScratch[j-1] = rowScratch[j-1], rowScratch[j]
			}
		}
		for _, r := range rowScratch {
			base := int(r) * nf
			for fid := 0; fid < nf; fid++ {
				if t.set[base+fid] {
					dst = append(dst, cwrite{tid: tid, fid: int32(fid), key: t.keys[r], val: t.vals[base+fid]})
				}
			}
		}
	}
	return dst, rowScratch
}
