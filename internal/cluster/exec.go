package cluster

import (
	"fmt"
	"sort"
	"strings"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// UUIDGen issues globally fresh negative integers for uuid() expressions.
// Peek previews the value the next Take will produce, so a statement's
// lock footprint can be computed without consuming the identifier.
type UUIDGen struct{ next int64 }

// Peek returns the value the next Take will return.
func (g *UUIDGen) Peek() store.Value { return store.IntV(-(g.next + 1)) }

// Take consumes and returns the next fresh value.
func (g *UUIDGen) Take() store.Value {
	g.next++
	return store.IntV(-g.next)
}

// TxnExec executes one transaction instance statement by statement against
// a DBView, producing (but not applying) writes. Control commands cost
// nothing; each Exec call performs exactly one database command. This is
// the cluster simulator's counterpart of interp.Instance, operating on
// materialized replica state instead of the event store.
type TxnExec struct {
	prog   *ast.Program
	txn    *ast.Txn
	args   map[string]store.Value
	env    map[string]store.ResultSet
	envTab map[string]string
	frames []*execFrame
	retVal store.Value
	done   bool
	// pending is the command Advance stopped at, awaiting Exec.
	pending ast.DBCommand
}

type execFrame struct {
	stmts     []ast.Stmt
	idx       int
	isIter    bool
	iterCount int64
	iterIdx   int64
}

// NewTxnExec prepares an instance (arguments are assumed checked upstream).
func NewTxnExec(prog *ast.Program, txn *ast.Txn, args map[string]store.Value) *TxnExec {
	return &TxnExec{
		prog: prog, txn: txn, args: args,
		env:    map[string]store.ResultSet{},
		envTab: map[string]string{},
		frames: []*execFrame{{stmts: txn.Body}},
	}
}

// Done reports completion.
func (e *TxnExec) Done() bool { return e.done }

// Advance runs control flow up to the next database command and returns
// it, or nil when the transaction has finished (evaluating its return
// expression). Calling Advance twice without Exec returns the same command.
func (e *TxnExec) Advance(view DBView) (ast.DBCommand, error) {
	if e.pending != nil {
		return e.pending, nil
	}
	for {
		if len(e.frames) == 0 {
			if e.txn.Ret != nil && !e.done {
				v, err := e.eval(e.txn.Ret, nil, view, nil)
				if err != nil {
					return nil, err
				}
				e.retVal = v
			}
			e.done = true
			return nil, nil
		}
		f := e.frames[len(e.frames)-1]
		if f.idx >= len(f.stmts) {
			if f.isIter && f.iterIdx < f.iterCount {
				f.iterIdx++
				f.idx = 0
				continue
			}
			e.frames = e.frames[:len(e.frames)-1]
			continue
		}
		s := f.stmts[f.idx]
		f.idx++
		switch x := s.(type) {
		case *ast.Skip:
		case *ast.If:
			v, err := e.eval(x.Cond, nil, view, nil)
			if err != nil {
				return nil, err
			}
			if v.T == ast.TBool && v.B {
				e.frames = append(e.frames, &execFrame{stmts: x.Then})
			}
		case *ast.Iterate:
			v, err := e.eval(x.Count, nil, view, nil)
			if err != nil {
				return nil, err
			}
			if v.T == ast.TInt && v.I > 0 {
				e.frames = append(e.frames, &execFrame{stmts: x.Body, isIter: true, iterCount: v.I, iterIdx: 1})
			}
		case ast.DBCommand:
			e.pending = x
			return x, nil
		default:
			return nil, fmt.Errorf("cluster: unknown statement %T", s)
		}
	}
}

// Result returns the transaction's return value after completion.
func (e *TxnExec) Result() store.Value { return e.retVal }

// Footprint computes the records the pending command touches (for lock
// acquisition) without executing it. wrote reports whether the command
// writes. uuid's Peek previews insert keys.
func (e *TxnExec) Footprint(view DBView, u *UUIDGen) (table string, keys []store.Key, wrote bool, err error) {
	c := e.pending
	if c == nil {
		return "", nil, false, fmt.Errorf("cluster: no pending command")
	}
	switch x := c.(type) {
	case *ast.Select:
		ks, err := e.matching(view, x.Table, x.Where)
		return x.Table, ks, false, err
	case *ast.Update:
		ks, err := e.matching(view, x.Table, x.Where)
		return x.Table, ks, true, err
	case *ast.Insert:
		k, err := e.insertKey(view, x, u.Peek())
		if err != nil {
			return "", nil, false, err
		}
		return x.Table, []store.Key{k}, true, nil
	}
	return "", nil, false, fmt.Errorf("cluster: unknown command %T", c)
}

// Exec executes the pending command against the view and returns the
// writes it produces (not yet applied anywhere).
func (e *TxnExec) Exec(view DBView, u *UUIDGen) ([]WriteOp, error) {
	c := e.pending
	if c == nil {
		return nil, fmt.Errorf("cluster: no pending command")
	}
	e.pending = nil
	switch x := c.(type) {
	case *ast.Select:
		return nil, e.execSelect(view, x)
	case *ast.Update:
		return e.execUpdate(view, x)
	case *ast.Insert:
		return e.execInsert(view, x, u)
	}
	return nil, fmt.Errorf("cluster: unknown command %T", c)
}

// matching returns the alive records satisfying the where clause. When the
// clause pins a prefix of the primary key with equalities, the sorted key
// space is narrowed by binary search instead of scanned — essential for
// append-only logging tables, which grow throughout a run.
func (e *TxnExec) matching(view DBView, table string, where ast.Expr) ([]store.Key, error) {
	var out []store.Key
	schema := view.Schema(table)
	if schema == nil {
		return nil, fmt.Errorf("cluster: unknown table %q", table)
	}
	keys := view.Keys(table)
	if lo, hi, ok := e.keyRange(view, schema, where, keys); ok {
		keys = keys[lo:hi]
	}
	for _, k := range keys {
		if !view.Alive(table, k) {
			continue
		}
		row := e.materialize(view, schema, table, k)
		v, err := e.eval(where, row, view, nil)
		if err != nil {
			return nil, err
		}
		if v.T == ast.TBool && v.B {
			out = append(out, k)
		}
	}
	return out, nil
}

// keyRange narrows sorted keys to those whose encoded primary-key prefix
// matches the where clause's equality pins on the leading key fields.
func (e *TxnExec) keyRange(view DBView, schema *ast.Schema, where ast.Expr, keys []store.Key) (int, int, bool) {
	eqs, ok := ast.WhereEqualities(where)
	if !ok {
		return 0, 0, false
	}
	pins := map[string]ast.Expr{}
	for _, q := range eqs {
		pins[q.Field] = q.Expr
	}
	var vals []store.Value
	for _, pk := range schema.PrimaryKey() {
		pin, ok := pins[pk.Name]
		if !ok {
			break
		}
		v, err := e.eval(pin, nil, view, nil)
		if err != nil {
			return 0, 0, false
		}
		vals = append(vals, v)
	}
	if len(vals) == 0 {
		return 0, 0, false
	}
	prefix := string(store.MakeKey(vals...))
	if len(vals) < len(schema.PrimaryKey()) {
		prefix += "\x1f"
	}
	lo := sort.Search(len(keys), func(i int) bool { return string(keys[i]) >= prefix })
	hi := lo
	for hi < len(keys) && strings.HasPrefix(string(keys[hi]), prefix) {
		hi++
	}
	// Exact full-key pins match a single key (no separator suffix).
	if len(vals) == len(schema.PrimaryKey()) {
		hi = lo
		if lo < len(keys) && string(keys[lo]) == prefix {
			hi = lo + 1
		}
	}
	return lo, hi, true
}

func (e *TxnExec) materialize(view DBView, schema *ast.Schema, table string, k store.Key) store.Row {
	row := store.Row{}
	for _, f := range schema.Fields {
		row[f.Name] = view.Read(table, k, f.Name)
	}
	row[ast.AliveField] = view.Read(table, k, ast.AliveField)
	return row
}

func (e *TxnExec) execSelect(view DBView, x *ast.Select) error {
	schema := view.Schema(x.Table)
	keys, err := e.matching(view, x.Table, x.Where)
	if err != nil {
		return err
	}
	fields := x.Fields
	if x.Star {
		fields = nil
		for _, f := range schema.Fields {
			fields = append(fields, f.Name)
		}
	}
	var rs store.ResultSet
	for _, k := range keys {
		out := store.Row{}
		for _, f := range fields {
			out[f] = view.Read(x.Table, k, f)
		}
		rs = append(rs, store.ResultRow{Key: k, Fields: out})
	}
	e.env[x.Var] = rs
	e.envTab[x.Var] = x.Table
	return nil
}

func (e *TxnExec) execUpdate(view DBView, x *ast.Update) ([]WriteOp, error) {
	keys, err := e.matching(view, x.Table, x.Where)
	if err != nil {
		return nil, err
	}
	vals := make([]store.Value, len(x.Sets))
	for i, a := range x.Sets {
		v, err := e.eval(a.Expr, nil, view, nil)
		if err != nil {
			return nil, err
		}
		vals[i] = v
	}
	var out []WriteOp
	for _, k := range keys {
		for i, a := range x.Sets {
			out = append(out, WriteOp{Table: x.Table, Key: k, Field: a.Field, Val: vals[i]})
		}
	}
	return out, nil
}

func (e *TxnExec) insertKey(view DBView, x *ast.Insert, peek store.Value) (store.Key, error) {
	schema := view.Schema(x.Table)
	if schema == nil {
		return "", fmt.Errorf("cluster: unknown table %q", x.Table)
	}
	vals := map[string]store.Value{}
	for _, a := range x.Values {
		if _, isUUID := a.Expr.(*ast.UUID); isUUID {
			vals[a.Field] = peek
			continue
		}
		v, err := e.eval(a.Expr, nil, view, nil)
		if err != nil {
			return "", err
		}
		vals[a.Field] = v
	}
	var pk []store.Value
	for _, f := range schema.PrimaryKey() {
		pk = append(pk, vals[f.Name])
	}
	return store.MakeKey(pk...), nil
}

func (e *TxnExec) execInsert(view DBView, x *ast.Insert, u *UUIDGen) ([]WriteOp, error) {
	schema := view.Schema(x.Table)
	if schema == nil {
		return nil, fmt.Errorf("cluster: unknown table %q", x.Table)
	}
	row := store.Row{}
	for _, a := range x.Values {
		v, err := e.eval(a.Expr, nil, view, u)
		if err != nil {
			return nil, err
		}
		row[a.Field] = v
	}
	var pk []store.Value
	for _, f := range schema.PrimaryKey() {
		v, ok := row[f.Name]
		if !ok {
			return nil, fmt.Errorf("cluster: insert into %s misses key field %q", x.Table, f.Name)
		}
		pk = append(pk, v)
	}
	k := store.MakeKey(pk...)
	var out []WriteOp
	for f, v := range row {
		out = append(out, WriteOp{Table: x.Table, Key: k, Field: f, Val: v})
	}
	// Deterministic order (map iteration above is not).
	sortWrites(out)
	out = append(out, WriteOp{Table: x.Table, Key: k, Field: ast.AliveField, Val: store.BoolV(true)})
	return out, nil
}

func sortWrites(ws []WriteOp) {
	for i := 1; i < len(ws); i++ {
		for j := i; j > 0 && ws[j].Field < ws[j-1].Field; j-- {
			ws[j], ws[j-1] = ws[j-1], ws[j]
		}
	}
}

// eval mirrors the interpreter's expression semantics against a DBView.
func (e *TxnExec) eval(x ast.Expr, this store.Row, view DBView, u *UUIDGen) (store.Value, error) {
	switch n := x.(type) {
	case *ast.IntLit:
		return store.IntV(n.Val), nil
	case *ast.BoolLit:
		return store.BoolV(n.Val), nil
	case *ast.StringLit:
		return store.StringV(n.Val), nil
	case *ast.UUID:
		if u == nil {
			return store.Value{}, fmt.Errorf("cluster: uuid() outside insert")
		}
		return u.Take(), nil
	case *ast.Arg:
		v, ok := e.args[n.Name]
		if !ok {
			return store.Value{}, fmt.Errorf("cluster: unknown argument %q", n.Name)
		}
		return v, nil
	case *ast.IterVar:
		for i := len(e.frames) - 1; i >= 0; i-- {
			if e.frames[i].isIter {
				return store.IntV(e.frames[i].iterIdx), nil
			}
		}
		return store.Value{}, fmt.Errorf("cluster: iter outside iterate")
	case *ast.ThisField:
		if this == nil {
			return store.Value{}, fmt.Errorf("cluster: this.%s outside where", n.Field)
		}
		v, ok := this[n.Field]
		if !ok {
			return store.Value{}, fmt.Errorf("cluster: record lacks field %q", n.Field)
		}
		return v, nil
	case *ast.FieldAt:
		rs := e.env[n.Var]
		idx := int64(1)
		if n.Index != nil {
			iv, err := e.eval(n.Index, this, view, u)
			if err != nil {
				return store.Value{}, err
			}
			idx = iv.I
		}
		if idx < 1 || idx > int64(len(rs)) {
			return e.zeroOf(view, n.Var, n.Field)
		}
		v, ok := rs[idx-1].Fields[n.Field]
		if !ok {
			return store.Value{}, fmt.Errorf("cluster: result %q lacks field %q", n.Var, n.Field)
		}
		return v, nil
	case *ast.Agg:
		return e.evalAgg(view, n)
	case *ast.Binary:
		return e.evalBinary(view, n, this, u)
	default:
		return store.Value{}, fmt.Errorf("cluster: unknown expression %T", x)
	}
}

func (e *TxnExec) zeroOf(view DBView, varName, field string) (store.Value, error) {
	tab := e.envTab[varName]
	if tab == "" {
		return store.Value{}, fmt.Errorf("cluster: unknown variable %q", varName)
	}
	s := view.Schema(tab)
	if s == nil {
		return store.Value{}, fmt.Errorf("cluster: unknown table %q", tab)
	}
	f := s.Field(field)
	if f == nil {
		return store.Value{}, fmt.Errorf("cluster: table %s lacks field %q", tab, field)
	}
	return store.Zero(f.Type), nil
}

func (e *TxnExec) evalAgg(view DBView, x *ast.Agg) (store.Value, error) {
	rs := e.env[x.Var]
	if x.Fn == ast.AggCount {
		return store.IntV(int64(len(rs))), nil
	}
	if len(rs) == 0 {
		if x.Fn == ast.AggSum {
			return store.IntV(0), nil
		}
		return e.zeroOf(view, x.Var, x.Field)
	}
	best := rs[0].Fields[x.Field]
	switch x.Fn {
	case ast.AggAny:
		return best, nil
	case ast.AggSum:
		var total int64
		for _, r := range rs {
			total += r.Fields[x.Field].I
		}
		return store.IntV(total), nil
	default:
		for _, r := range rs[1:] {
			v := r.Fields[x.Field]
			if (x.Fn == ast.AggMin && v.Less(best)) || (x.Fn == ast.AggMax && best.Less(v)) {
				best = v
			}
		}
		return best, nil
	}
}

func (e *TxnExec) evalBinary(view DBView, x *ast.Binary, this store.Row, u *UUIDGen) (store.Value, error) {
	l, err := e.eval(x.L, this, view, u)
	if err != nil {
		return store.Value{}, err
	}
	if x.Op == ast.OpAnd && l.T == ast.TBool && !l.B {
		return store.BoolV(false), nil
	}
	if x.Op == ast.OpOr && l.T == ast.TBool && l.B {
		return store.BoolV(true), nil
	}
	r, err := e.eval(x.R, this, view, u)
	if err != nil {
		return store.Value{}, err
	}
	switch {
	case x.Op.IsArith():
		switch x.Op {
		case ast.OpAdd:
			return store.IntV(l.I + r.I), nil
		case ast.OpSub:
			return store.IntV(l.I - r.I), nil
		case ast.OpMul:
			return store.IntV(l.I * r.I), nil
		default:
			if r.I == 0 {
				return store.Value{}, fmt.Errorf("cluster: division by zero")
			}
			return store.IntV(l.I / r.I), nil
		}
	case x.Op.IsComparison():
		switch x.Op {
		case ast.OpEq:
			return store.BoolV(l.Equal(r)), nil
		case ast.OpNe:
			return store.BoolV(!l.Equal(r)), nil
		case ast.OpLt:
			return store.BoolV(l.Less(r)), nil
		case ast.OpLe:
			return store.BoolV(l.Less(r) || l.Equal(r)), nil
		case ast.OpGt:
			return store.BoolV(r.Less(l)), nil
		default:
			return store.BoolV(r.Less(l) || l.Equal(r)), nil
		}
	default:
		if x.Op == ast.OpAnd {
			return store.BoolV(l.B && r.B), nil
		}
		return store.BoolV(l.B || r.B), nil
	}
}
