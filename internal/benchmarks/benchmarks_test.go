package benchmarks

import (
	"math/rand"
	"testing"

	"atropos/internal/interp"
	"atropos/internal/store"
)

func TestAllBenchmarksParseAndCheck(t *testing.T) {
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			if _, err := b.Program(); err != nil {
				t.Fatalf("Program: %v", err)
			}
		})
	}
}

func TestTable1Shape(t *testing.T) {
	// Table 1's benchmark inventory: transaction and table counts.
	want := map[string][2]int{ // name -> {txns, tables}
		"TPC-C":      {5, 9},
		"SEATS":      {6, 8},
		"Courseware": {5, 3},
		"SmallBank":  {6, 3},
		"Twitter":    {5, 4},
		"FMKe":       {7, 7},
		"SIBench":    {2, 1},
		"Wikipedia":  {5, 12},
		"Killrchat":  {5, 3},
	}
	for _, b := range All() {
		p, err := b.Program()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		w, ok := want[b.Name]
		if !ok {
			t.Errorf("unexpected benchmark %q", b.Name)
			continue
		}
		if len(p.Txns) != w[0] {
			t.Errorf("%s: %d txns, want %d", b.Name, len(p.Txns), w[0])
		}
		if len(p.Schemas) != w[1] {
			t.Errorf("%s: %d tables, want %d", b.Name, len(p.Schemas), w[1])
		}
	}
}

func TestMixesReferToRealTxns(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for _, b := range All() {
		p, err := b.Program()
		if err != nil {
			t.Fatalf("%s: %v", b.Name, err)
		}
		if len(b.Mix) == 0 {
			t.Errorf("%s: empty mix", b.Name)
		}
		for _, m := range b.Mix {
			txn := p.Txn(m.Txn)
			if txn == nil {
				t.Errorf("%s: mix references unknown txn %q", b.Name, m.Txn)
				continue
			}
			// Generated args must exactly match the parameter list.
			a := m.Args(rng, Scale{})
			if len(a) != len(txn.Params) {
				t.Errorf("%s.%s: %d args generated, txn takes %d", b.Name, m.Txn, len(a), len(txn.Params))
			}
			for _, prm := range txn.Params {
				v, ok := a[prm.Name]
				if !ok {
					t.Errorf("%s.%s: missing arg %q", b.Name, m.Txn, prm.Name)
					continue
				}
				if v.T != prm.Type {
					t.Errorf("%s.%s: arg %q has type %v, want %v", b.Name, m.Txn, prm.Name, v.T, prm.Type)
				}
			}
		}
	}
}

func TestRowsLoadable(t *testing.T) {
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			db := store.NewDB(p)
			rows := b.Rows(Scale{Records: 20})
			if len(rows) == 0 {
				t.Fatal("no rows generated")
			}
			for _, r := range rows {
				if _, err := db.Load(r.Table, r.Row); err != nil {
					t.Fatalf("Load %s: %v", r.Table, err)
				}
			}
		})
	}
}

// TestWorkloadRunsSerially executes a few hundred mixed transactions of
// each benchmark under serializable semantics: every transaction must run
// without interpreter errors.
func TestWorkloadRunsSerially(t *testing.T) {
	for _, b := range All() {
		t.Run(b.Name, func(t *testing.T) {
			p, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			db := store.NewDB(p)
			scale := Scale{Records: 30}
			for _, r := range b.Rows(scale) {
				if _, err := db.Load(r.Table, r.Row); err != nil {
					t.Fatal(err)
				}
			}
			rng := rand.New(rand.NewSource(42))
			for i := 0; i < 200; i++ {
				m := b.PickTxn(rng)
				call := interp.Call{Txn: m.Txn, Args: m.Args(rng, scale)}
				if _, err := interp.RunSerial(p, db, []interp.Call{call}); err != nil {
					t.Fatalf("txn %s (iter %d): %v", m.Txn, i, err)
				}
			}
		})
	}
}

func TestPickTxnCoversMix(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, b := range All() {
		seen := map[string]bool{}
		for i := 0; i < 2000; i++ {
			seen[b.PickTxn(rng).Txn] = true
		}
		for _, m := range b.Mix {
			if !seen[m.Txn] {
				t.Errorf("%s: mix entry %s never drawn in 2000 picks (weight %d)", b.Name, m.Txn, m.Weight)
			}
		}
	}
}

func TestByName(t *testing.T) {
	if ByName("SmallBank") != SmallBank {
		t.Error("ByName(SmallBank) failed")
	}
	if ByName("nope") != nil {
		t.Error("ByName(nope) returned a benchmark")
	}
}

func TestScaleKeyInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	s := Scale{Records: 50, Hot: 5, HotP: 0.9}
	hot := 0
	for i := 0; i < 1000; i++ {
		k := s.Key(rng)
		if k < 0 || k >= 50 {
			t.Fatalf("key %d out of range", k)
		}
		if k < 5 {
			hot++
		}
	}
	if hot < 700 {
		t.Errorf("hot fraction %d/1000, want skewed toward hot range", hot)
	}
}
