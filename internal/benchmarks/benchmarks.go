// Package benchmarks contains the paper's nine evaluation benchmarks
// (Table 1) translated into the DSL: TPC-C, SEATS, Courseware, SmallBank,
// Twitter, FMKe, SIBench, Wikipedia, and Killrchat. Each benchmark bundles
// its program source, a transaction mix with argument generators (used by
// the workload driver), and an initial-population generator.
//
// The translations preserve each benchmark's table count, transaction
// count, and conflict structure (which read-modify-writes are increments,
// which writes are conditional or absolute, which reads chase foreign
// keys); absolute anomaly counts therefore land near — not exactly on —
// the paper's, since the authors' DSL translations are not public. The
// measured counts are recorded in EXPERIMENTS.md.
package benchmarks

import (
	"fmt"
	"math/rand"
	"sync"

	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/sema"
	"atropos/internal/store"
)

// Scale sizes a benchmark's population and key domains.
type Scale struct {
	// Records is the base table cardinality.
	Records int
	// Hot is the size of the hot-key range; a fraction HotP of accesses
	// draw keys from it to create contention.
	Hot int
	// HotP is the probability of drawing from the hot range.
	HotP float64
}

// DefaultScale is used when a Scale is zero-valued.
var DefaultScale = Scale{Records: 100, Hot: 10, HotP: 0.5}

func (s Scale) orDefault() Scale {
	if s.Records == 0 {
		return DefaultScale
	}
	if s.Hot == 0 {
		s.Hot = s.Records / 10
		if s.Hot == 0 {
			s.Hot = 1
		}
	}
	if s.HotP == 0 {
		s.HotP = 0.5
	}
	return s
}

// Key draws a record key with hot-spot contention.
func (s Scale) Key(rng *rand.Rand) int64 {
	s = s.orDefault()
	if rng.Float64() < s.HotP {
		return int64(rng.Intn(s.Hot))
	}
	return int64(rng.Intn(s.Records))
}

// MixEntry is one transaction of a benchmark's workload mix.
type MixEntry struct {
	Txn    string
	Weight int
	// Args generates an argument binding for one invocation.
	Args func(rng *rand.Rand, s Scale) map[string]store.Value
}

// TableRow is one initial record.
type TableRow struct {
	Table string
	Row   store.Row
}

// Benchmark is one evaluation program plus its workload description.
type Benchmark struct {
	Name   string
	Source string
	Mix    []MixEntry
	// Rows generates the initial population at the given scale.
	Rows func(s Scale) []TableRow

	once sync.Once
	prog *ast.Program
	perr error
}

// Program parses and checks the benchmark's source (cached).
func (b *Benchmark) Program() (*ast.Program, error) {
	b.once.Do(func() {
		p, err := parser.Parse(b.Source)
		if err != nil {
			b.perr = fmt.Errorf("benchmarks: %s: %w", b.Name, err)
			return
		}
		if err := sema.Check(p); err != nil {
			b.perr = fmt.Errorf("benchmarks: %s: %w", b.Name, err)
			return
		}
		b.prog = p
	})
	return b.prog, b.perr
}

// MustProgram is Program but panics on error (benchmarks are static).
func (b *Benchmark) MustProgram() *ast.Program {
	p, err := b.Program()
	if err != nil {
		panic(err)
	}
	return p
}

// PickTxn draws a transaction from the mix by weight.
func (b *Benchmark) PickTxn(rng *rand.Rand) MixEntry {
	total := 0
	for _, m := range b.Mix {
		total += m.Weight
	}
	n := rng.Intn(total)
	for _, m := range b.Mix {
		n -= m.Weight
		if n < 0 {
			return m
		}
	}
	return b.Mix[len(b.Mix)-1]
}

// All returns every benchmark in Table 1 order.
func All() []*Benchmark {
	return []*Benchmark{
		TPCC, SEATS, Courseware, SmallBank, Twitter, FMKe, SIBench, Wikipedia, Killrchat,
	}
}

// ByName looks a benchmark up case-sensitively; nil if unknown.
func ByName(name string) *Benchmark {
	for _, b := range All() {
		if b.Name == name {
			return b
		}
	}
	return nil
}

// iv, bv, sv are population helpers.
func iv(n int64) store.Value  { return store.IntV(n) }
func bv(b bool) store.Value   { return store.BoolV(b) }
func sv(s string) store.Value { return store.StringV(s) }

// args builds an argument map tersely.
func args(kv ...any) map[string]store.Value {
	m := map[string]store.Value{}
	for i := 0; i+1 < len(kv); i += 2 {
		name := kv[i].(string)
		switch v := kv[i+1].(type) {
		case int64:
			m[name] = store.IntV(v)
		case int:
			m[name] = store.IntV(int64(v))
		case bool:
			m[name] = store.BoolV(v)
		case string:
			m[name] = store.StringV(v)
		case store.Value:
			m[name] = v
		default:
			panic(fmt.Sprintf("benchmarks: bad arg %v", v))
		}
	}
	return m
}
