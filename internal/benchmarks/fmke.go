package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// FMKe is the real-world key-value healthcare benchmark [46]: patients,
// pharmacies, facilities, staff, prescriptions, and the two prescription
// index tables. Prescription counters are loggable; the double index
// maintenance in createPrescription is not relatable by θ̂ and remains
// (Table 1: 6 → 2).
var FMKe = &Benchmark{
	Name: "FMKe",
	Source: `
table PATIENT {
  pa_id: int key,
  pa_name: string,
  pa_presc_cnt: int,
}

table PHARMACY {
  ph_id: int key,
  ph_name: string,
  ph_presc_cnt: int,
}

table FACILITY {
  fa_id: int key,
  fa_name: string,
}

table STAFF {
  sf_id: int key,
  sf_fa_id: int,
  sf_name: string,
}

table PRESCRIPTION {
  pc_id: int key,
  pc_pa_id: int,
  pc_ph_id: int,
  pc_sf_id: int,
  pc_drug: int,
  pc_processed: bool,
}

table PATIENT_INDEX {
  pi_pa_id: int key,
  pi_pc_id: int key,
  pi_active: bool,
}

table PHARMACY_INDEX {
  phi_ph_id: int key,
  phi_pc_id: int key,
  phi_active: bool,
}

txn createPatient(p: int, name: string) {
  insert into PATIENT values (pa_id = p, pa_name = name, pa_presc_cnt = 0);
}

txn createPrescription(pc: int, pa: int, ph: int, sf: int, drug: int) {
  insert into PRESCRIPTION values (pc_id = pc, pc_pa_id = pa, pc_ph_id = ph, pc_sf_id = sf, pc_drug = drug, pc_processed = false);
  update PATIENT_INDEX set pi_active = true where pi_pa_id = pa && pi_pc_id = pc;
  update PHARMACY_INDEX set phi_active = true where phi_ph_id = ph && phi_pc_id = pc;
  c := select pa_presc_cnt from PATIENT where pa_id = pa;
  update PATIENT set pa_presc_cnt = c.pa_presc_cnt + 1 where pa_id = pa;
  d := select ph_presc_cnt from PHARMACY where ph_id = ph;
  update PHARMACY set ph_presc_cnt = d.ph_presc_cnt + 1 where ph_id = ph;
}

txn getPrescription(pc: int) {
  x := select pc_drug from PRESCRIPTION where pc_id = pc;
  return x.pc_drug;
}

txn getPharmacyPrescriptions(ph: int) {
  x := select phi_active from PHARMACY_INDEX where phi_ph_id = ph;
  c := select ph_presc_cnt from PHARMACY where ph_id = ph;
  return count(x.phi_active) + c.ph_presc_cnt;
}

txn processPrescription(pc: int) {
  x := select pc_processed from PRESCRIPTION where pc_id = pc;
  if (x.pc_processed = false) {
    update PRESCRIPTION set pc_processed = true where pc_id = pc;
  }
}

txn getStaffPrescriptions(sf: int) {
  x := select pc_drug from PRESCRIPTION where pc_sf_id = sf;
  return count(x.pc_drug);
}

txn getFacilityStaff(fa: int) {
  x := select sf_name from STAFF where sf_fa_id = fa;
  f := select fa_name from FACILITY where fa_id = fa;
  return count(x.sf_name);
}
`,
	Mix: []MixEntry{
		{Txn: "createPatient", Weight: 5, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			id := int64(sc.Records + rng.Intn(1<<20))
			return args("p", id, "name", fmt.Sprintf("patient%d", id))
		}},
		{Txn: "createPrescription", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			return args("pc", int64(sc.Records+rng.Intn(1<<20)), "pa", s.Key(rng),
				"ph", int64(rng.Intn(pharmacies(s))), "sf", int64(rng.Intn(staffCount(s))), "drug", int64(rng.Intn(500)))
		}},
		{Txn: "getPrescription", Weight: 25, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("pc", s.Key(rng))
		}},
		{Txn: "getPharmacyPrescriptions", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("ph", int64(rng.Intn(pharmacies(s))))
		}},
		{Txn: "processPrescription", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("pc", s.Key(rng))
		}},
		{Txn: "getStaffPrescriptions", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("sf", int64(rng.Intn(staffCount(s))))
		}},
		{Txn: "getFacilityStaff", Weight: 5, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("fa", int64(rng.Intn(facilities(s))))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		for f := 0; f < facilities(s); f++ {
			rows = append(rows, TableRow{"FACILITY", store.Row{
				"fa_id": iv(int64(f)), "fa_name": sv(fmt.Sprintf("facility%d", f)),
			}})
		}
		for sf := 0; sf < staffCount(s); sf++ {
			rows = append(rows, TableRow{"STAFF", store.Row{
				"sf_id": iv(int64(sf)), "sf_fa_id": iv(int64(sf % facilities(s))), "sf_name": sv(fmt.Sprintf("staff%d", sf)),
			}})
		}
		for ph := 0; ph < pharmacies(s); ph++ {
			rows = append(rows, TableRow{"PHARMACY", store.Row{
				"ph_id": iv(int64(ph)), "ph_name": sv(fmt.Sprintf("pharmacy%d", ph)), "ph_presc_cnt": iv(0),
			}})
		}
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"PATIENT", store.Row{
					"pa_id": id, "pa_name": sv(fmt.Sprintf("patient%d", i)), "pa_presc_cnt": iv(1),
				}},
				TableRow{"PRESCRIPTION", store.Row{
					"pc_id": id, "pc_pa_id": id, "pc_ph_id": iv(int64(i % pharmacies(s))),
					"pc_sf_id": iv(int64(i % staffCount(s))), "pc_drug": iv(int64(i % 500)), "pc_processed": bv(false),
				}},
				TableRow{"PATIENT_INDEX", store.Row{"pi_pa_id": id, "pi_pc_id": id, "pi_active": bv(true)}},
				TableRow{"PHARMACY_INDEX", store.Row{"phi_ph_id": iv(int64(i % pharmacies(s))), "phi_pc_id": id, "phi_active": bv(true)}},
			)
		}
		return rows
	},
}

func pharmacies(s Scale) int {
	s = s.orDefault()
	n := s.Records / 20
	if n < 2 {
		n = 2
	}
	return n
}

func staffCount(s Scale) int {
	s = s.orDefault()
	n := s.Records / 10
	if n < 2 {
		n = 2
	}
	return n
}

func facilities(s Scale) int {
	s = s.orDefault()
	n := s.Records / 50
	if n < 2 {
		n = 2
	}
	return n
}
