package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// Wikipedia is the OLTP-Bench Wikipedia workload [18]: twelve tables and
// five transactions (page reads, watchlist maintenance, page updates). The
// edit counters are loggable; the revision/text insert chain behind
// updatePage is not (Table 1: 2 → 1, 12 tables → 13 with the log).
var Wikipedia = &Benchmark{
	Name: "Wikipedia",
	Source: `
table USERACCT {
  ua_id: int key,
  ua_name: string,
  ua_touched: int,
  ua_editcount: int,
}

table USER_GROUPS {
  ug_ua_id: int key,
  ug_group: int,
}

table PAGE {
  pg_id: int key,
  pg_ns: int,
  pg_title: string,
  pg_latest: int,
  pg_touched: int,
}

table PAGE_RESTRICTIONS {
  pr_pg_id: int key,
  pr_level: int,
}

table IPBLOCKS {
  ipb_ua_id: int key,
  ipb_active: bool,
}

table REVISION {
  rev_id: int key,
  rev_pg_id: int,
  rev_text_id: int,
  rev_ua_id: int,
}

table TEXTTAB {
  old_id: int key,
  old_text: string,
}

table RECENTCHANGES {
  rc_id: int key,
  rc_pg_id: int,
  rc_ua_id: int,
}

table WATCHLIST {
  wl_ua_id: int key,
  wl_pg_id: int key,
  wl_active: bool,
}

table LOGGING {
  lg_id: int key,
  lg_pg_id: int,
  lg_ua_id: int,
}

table SITE_STATS {
  ss_id: int key,
  ss_edits: int,
}

table VALUE_BACKUP {
  vb_id: int key,
  vb_pg_id: int,
}

txn getPageAnonymous(p: int) {
  pg := select pg_latest from PAGE where pg_id = p;
  restr := select pr_level from PAGE_RESTRICTIONS where pr_pg_id = p;
  rev := select rev_text_id from REVISION where rev_id = pg.pg_latest;
  txt := select old_text from TEXTTAB where old_id = rev.rev_text_id;
  return count(txt.old_text) + restr.pr_level;
}

txn getPageAuthenticated(p: int, u: int) {
  ua := select ua_name from USERACCT where ua_id = u;
  ug := select ug_group from USER_GROUPS where ug_ua_id = u;
  ipb := select ipb_active from IPBLOCKS where ipb_ua_id = u;
  pg := select pg_latest from PAGE where pg_id = p;
  rev := select rev_text_id from REVISION where rev_id = pg.pg_latest;
  txt := select old_text from TEXTTAB where old_id = rev.rev_text_id;
  return count(txt.old_text) + ug.ug_group;
}

txn addWatchList(u: int, p: int) {
  update WATCHLIST set wl_active = true where wl_ua_id = u && wl_pg_id = p;
  update USERACCT set ua_touched = 1 where ua_id = u;
}

txn removeWatchList(u: int, p: int) {
  update WATCHLIST set wl_active = false where wl_ua_id = u && wl_pg_id = p;
  update USERACCT set ua_touched = 2 where ua_id = u;
}

txn updatePage(p: int, u: int, rid: int, tid: int, text: string) {
  insert into TEXTTAB values (old_id = tid, old_text = text);
  insert into REVISION values (rev_id = rid, rev_pg_id = p, rev_text_id = tid, rev_ua_id = u);
  update PAGE set pg_latest = rid, pg_touched = 1 where pg_id = p;
  insert into RECENTCHANGES values (rc_id = uuid(), rc_pg_id = p, rc_ua_id = u);
  insert into LOGGING values (lg_id = uuid(), lg_pg_id = p, lg_ua_id = u);
  insert into VALUE_BACKUP values (vb_id = uuid(), vb_pg_id = p);
  ec := select ua_editcount from USERACCT where ua_id = u;
  update USERACCT set ua_editcount = ec.ua_editcount + 1 where ua_id = u;
  ss := select ss_edits from SITE_STATS where ss_id = 0;
  update SITE_STATS set ss_edits = ss.ss_edits + 1 where ss_id = 0;
}
`,
	Mix: []MixEntry{
		{Txn: "getPageAnonymous", Weight: 55, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("p", s.Key(rng))
		}},
		{Txn: "getPageAuthenticated", Weight: 25, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("p", s.Key(rng), "u", s.Key(rng))
		}},
		{Txn: "addWatchList", Weight: 5, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "p", s.Key(rng))
		}},
		{Txn: "removeWatchList", Weight: 5, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "p", s.Key(rng))
		}},
		{Txn: "updatePage", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			fresh := int64(sc.Records + rng.Intn(1<<20))
			return args("p", s.Key(rng), "u", s.Key(rng), "rid", fresh, "tid", fresh,
				"text", fmt.Sprintf("revision %d", fresh))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		rows = append(rows, TableRow{"SITE_STATS", store.Row{"ss_id": iv(0), "ss_edits": iv(0)}})
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"USERACCT", store.Row{
					"ua_id": id, "ua_name": sv(fmt.Sprintf("user%d", i)), "ua_touched": iv(0), "ua_editcount": iv(0),
				}},
				TableRow{"USER_GROUPS", store.Row{"ug_ua_id": id, "ug_group": iv(int64(i % 3))}},
				TableRow{"PAGE", store.Row{
					"pg_id": id, "pg_ns": iv(0), "pg_title": sv(fmt.Sprintf("Page %d", i)),
					"pg_latest": id, "pg_touched": iv(0),
				}},
				TableRow{"PAGE_RESTRICTIONS", store.Row{"pr_pg_id": id, "pr_level": iv(0)}},
				TableRow{"REVISION", store.Row{
					"rev_id": id, "rev_pg_id": id, "rev_text_id": id, "rev_ua_id": iv(0),
				}},
				TableRow{"TEXTTAB", store.Row{"old_id": id, "old_text": sv(fmt.Sprintf("content %d", i))}},
			)
		}
		return rows
	},
}
