package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// SEATS is the airline ticketing benchmark [18, 45]: eight tables and six
// transactions over customers, flights, and reservations. Seat-count and
// mileage increments are loggable; the guarded seat change in
// updateReservation is not (Table 1: 35 → 10).
var SEATS = &Benchmark{
	Name: "SEATS",
	Source: `
table COUNTRY {
  cn_id: int key,
  cn_name: string,
}

table AIRPORT {
  ap_id: int key,
  ap_cn_id: int,
  ap_name: string,
}

table AIRLINE {
  al_id: int key,
  al_cn_id: int,
  al_name: string,
}

table CUSTOMER {
  cu_id: int key,
  cu_base_ap_id: int,
  cu_balance: int,
  cu_sattr: int,
}

table FREQUENT_FLYER {
  ff_cu_id: int key,
  ff_al_id: int key,
  ff_miles: int,
}

table FLIGHT {
  fl_id: int key,
  fl_al_id: int,
  fl_depart_ap_id: int,
  fl_arrive_ap_id: int,
  fl_base_price: int,
  fl_seats_left: int,
  fl_status: int,
}

table RESERVATION {
  re_id: int key,
  re_cu_id: int,
  re_fl_id: int,
  re_seat: int,
  re_price: int,
  re_active: bool,
}

table CONFIG {
  cf_id: int key,
  cf_val: int,
}

txn findFlights(depart: int, arrive: int) {
  f := select fl_base_price from FLIGHT where fl_depart_ap_id = depart && fl_arrive_ap_id = arrive;
  a := select ap_name from AIRPORT where ap_id = depart;
  return count(f.fl_base_price);
}

txn findOpenSeats(f: int) {
  fl := select fl_seats_left from FLIGHT where fl_id = f;
  re := select re_seat from RESERVATION where re_fl_id = f;
  return fl.fl_seats_left - count(re.re_seat);
}

txn newReservation(r: int, c: int, f: int, al: int, seat: int) {
  pr := select fl_base_price from FLIGHT where fl_id = f;
  insert into RESERVATION values (re_id = r, re_cu_id = c, re_fl_id = f, re_seat = seat, re_price = pr.fl_base_price, re_active = true);
  sl := select fl_seats_left from FLIGHT where fl_id = f;
  update FLIGHT set fl_seats_left = sl.fl_seats_left - 1 where fl_id = f;
  fm := select ff_miles from FREQUENT_FLYER where ff_cu_id = c && ff_al_id = al;
  update FREQUENT_FLYER set ff_miles = fm.ff_miles + 100 where ff_cu_id = c && ff_al_id = al;
}

txn updateCustomer(c: int, attr: int) {
  cu := select cu_base_ap_id from CUSTOMER where cu_id = c;
  update CUSTOMER set cu_sattr = attr where cu_id = c;
  ap := select ap_name from AIRPORT where ap_id = cu.cu_base_ap_id;
  return count(ap.ap_name);
}

txn updateReservation(r: int, seat: int) {
  re := select re_seat from RESERVATION where re_id = r;
  if (re.re_seat != seat) {
    update RESERVATION set re_seat = seat where re_id = r;
  }
}

txn deleteReservation(r: int, c: int, f: int, al: int) {
  re := select re_price from RESERVATION where re_id = r;
  update RESERVATION set re_active = false where re_id = r;
  cb := select cu_balance from CUSTOMER where cu_id = c;
  update CUSTOMER set cu_balance = cb.cu_balance + re.re_price where cu_id = c;
  sl := select fl_seats_left from FLIGHT where fl_id = f;
  update FLIGHT set fl_seats_left = sl.fl_seats_left + 1 where fl_id = f;
  fm := select ff_miles from FREQUENT_FLYER where ff_cu_id = c && ff_al_id = al;
  update FREQUENT_FLYER set ff_miles = fm.ff_miles - 100 where ff_cu_id = c && ff_al_id = al;
}
`,
	Mix: []MixEntry{
		{Txn: "findFlights", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("depart", int64(rng.Intn(airports(s))), "arrive", int64(rng.Intn(airports(s))))
		}},
		{Txn: "findOpenSeats", Weight: 35, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("f", int64(rng.Intn(flights(s))))
		}},
		{Txn: "newReservation", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			return args("r", int64(sc.Records+rng.Intn(1<<20)), "c", s.Key(rng),
				"f", int64(rng.Intn(flights(s))), "al", int64(rng.Intn(3)), "seat", int64(rng.Intn(150)))
		}},
		{Txn: "updateCustomer", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("c", s.Key(rng), "attr", int64(rng.Intn(1000)))
		}},
		{Txn: "updateReservation", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("r", s.Key(rng), "seat", int64(rng.Intn(150)))
		}},
		{Txn: "deleteReservation", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("r", s.Key(rng), "c", s.Key(rng), "f", int64(rng.Intn(flights(s))), "al", int64(rng.Intn(3)))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		rows = append(rows, TableRow{"COUNTRY", store.Row{"cn_id": iv(0), "cn_name": sv("US")}})
		for a := 0; a < airports(s); a++ {
			rows = append(rows, TableRow{"AIRPORT", store.Row{
				"ap_id": iv(int64(a)), "ap_cn_id": iv(0), "ap_name": sv(fmt.Sprintf("AP%d", a)),
			}})
		}
		for al := 0; al < 3; al++ {
			rows = append(rows, TableRow{"AIRLINE", store.Row{
				"al_id": iv(int64(al)), "al_cn_id": iv(0), "al_name": sv(fmt.Sprintf("AL%d", al)),
			}})
		}
		for f := 0; f < flights(s); f++ {
			rows = append(rows, TableRow{"FLIGHT", store.Row{
				"fl_id": iv(int64(f)), "fl_al_id": iv(int64(f % 3)),
				"fl_depart_ap_id": iv(int64(f % airports(s))), "fl_arrive_ap_id": iv(int64((f + 1) % airports(s))),
				"fl_base_price": iv(100), "fl_seats_left": iv(150), "fl_status": iv(0),
			}})
		}
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"CUSTOMER", store.Row{
					"cu_id": id, "cu_base_ap_id": iv(int64(i % airports(s))), "cu_balance": iv(0), "cu_sattr": iv(0),
				}},
				TableRow{"FREQUENT_FLYER", store.Row{
					"ff_cu_id": id, "ff_al_id": iv(int64(i % 3)), "ff_miles": iv(0),
				}},
				TableRow{"RESERVATION", store.Row{
					"re_id": id, "re_cu_id": id, "re_fl_id": iv(int64(i % flights(s))),
					"re_seat": iv(int64(i % 150)), "re_price": iv(100), "re_active": bv(true),
				}},
			)
		}
		rows = append(rows, TableRow{"CONFIG", store.Row{"cf_id": iv(0), "cf_val": iv(1)}})
		return rows
	},
}

func airports(s Scale) int {
	s = s.orDefault()
	n := s.Records / 20
	if n < 3 {
		n = 3
	}
	return n
}

func flights(s Scale) int {
	s = s.orDefault()
	n := s.Records / 5
	if n < 4 {
		n = 4
	}
	return n
}
