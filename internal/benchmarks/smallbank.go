package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// SmallBank is the H-Store/OLTP-Bench SmallBank benchmark [18, 43]: three
// tables (accounts, savings, checking) and six transactions over them. The
// increments (deposits) are repairable by logging; the conditional and
// absolute writes (transactSavings' overdraft guard, amalgamate's zeroing)
// are not — matching the paper's partial repair (Table 1: 24 → 8).
var SmallBank = &Benchmark{
	Name: "SmallBank",
	Source: `
table ACCOUNTS {
  acc_id: int key,
  acc_name: string,
}

table SAVINGS {
  sav_cust: int key,
  sav_bal: int,
}

table CHECKING {
  chk_cust: int key,
  chk_bal: int,
}

txn depositChecking(cust: int, amt: int) {
  c := select chk_bal from CHECKING where chk_cust = cust;
  update CHECKING set chk_bal = c.chk_bal + amt where chk_cust = cust;
}

txn transactSavings(cust: int, amt: int) {
  s := select sav_bal from SAVINGS where sav_cust = cust;
  if (s.sav_bal + amt >= 0) {
    s2 := select sav_bal from SAVINGS where sav_cust = cust;
    update SAVINGS set sav_bal = s2.sav_bal + amt where sav_cust = cust;
  }
}

txn balance(cust: int) {
  a := select acc_name from ACCOUNTS where acc_id = cust;
  s := select sav_bal from SAVINGS where sav_cust = cust;
  c := select chk_bal from CHECKING where chk_cust = cust;
  return s.sav_bal + c.chk_bal;
}

txn amalgamate(src: int, dst: int) {
  s := select sav_bal from SAVINGS where sav_cust = src;
  c := select chk_bal from CHECKING where chk_cust = src;
  // Functional zeroing: withdraw exactly what was read.
  update SAVINGS set sav_bal = s.sav_bal - s.sav_bal where sav_cust = src;
  update CHECKING set chk_bal = c.chk_bal - c.chk_bal where chk_cust = src;
  d := select chk_bal from CHECKING where chk_cust = dst;
  update CHECKING set chk_bal = d.chk_bal + (s.sav_bal + c.chk_bal) where chk_cust = dst;
}

txn writeCheck(cust: int, amt: int) {
  s := select sav_bal from SAVINGS where sav_cust = cust;
  c := select chk_bal from CHECKING where chk_cust = cust;
  if (s.sav_bal + c.chk_bal < amt) {
    update CHECKING set chk_bal = c.chk_bal - (amt + 1) where chk_cust = cust;
  }
  if (s.sav_bal + c.chk_bal >= amt) {
    update CHECKING set chk_bal = c.chk_bal - amt where chk_cust = cust;
  }
}

txn sendPayment(src: int, dst: int, amt: int) {
  c := select chk_bal from CHECKING where chk_cust = src;
  if (c.chk_bal >= amt) {
    update CHECKING set chk_bal = c.chk_bal - amt where chk_cust = src;
    d := select chk_bal from CHECKING where chk_cust = dst;
    update CHECKING set chk_bal = d.chk_bal + amt where chk_cust = dst;
  }
}
`,
	Mix: []MixEntry{
		{Txn: "balance", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("cust", s.Key(rng))
		}},
		{Txn: "depositChecking", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("cust", s.Key(rng), "amt", int64(1+rng.Intn(100)))
		}},
		{Txn: "transactSavings", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("cust", s.Key(rng), "amt", int64(rng.Intn(200)-100))
		}},
		{Txn: "amalgamate", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("src", s.Key(rng), "dst", s.Key(rng))
		}},
		{Txn: "writeCheck", Weight: 25, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("cust", s.Key(rng), "amt", int64(1+rng.Intn(100)))
		}},
		{Txn: "sendPayment", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("src", s.Key(rng), "dst", s.Key(rng), "amt", int64(1+rng.Intn(50)))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"ACCOUNTS", store.Row{"acc_id": id, "acc_name": sv(fmt.Sprintf("cust%d", i))}},
				TableRow{"SAVINGS", store.Row{"sav_cust": id, "sav_bal": iv(1000)}},
				TableRow{"CHECKING", store.Row{"chk_cust": id, "chk_bal": iv(1000)}},
			)
		}
		return rows
	},
}
