package benchmarks

import (
	"math/rand"

	"atropos/internal/store"
)

// SIBench is the snapshot-isolation microbenchmark [18]: one table, a
// scanning reader and an incrementing writer. The single lost-update
// anomaly is fully repairable by logging (Table 1: 1 → 0, 1 table → 2).
var SIBench = &Benchmark{
	Name: "SIBench",
	Source: `
table SITEST {
  si_id: int key,
  si_value: int,
}

txn readAll(lo: int) {
  x := select si_value from SITEST where si_id >= lo;
  return sum(x.si_value);
}

txn increment(k: int) {
  x := select si_value from SITEST where si_id = k;
  update SITEST set si_value = x.si_value + 1 where si_id = k;
}
`,
	Mix: []MixEntry{
		{Txn: "readAll", Weight: 50, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("lo", int64(0))
		}},
		{Txn: "increment", Weight: 50, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("k", s.Key(rng))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		for i := 0; i < s.Records; i++ {
			rows = append(rows, TableRow{"SITEST", store.Row{"si_id": iv(int64(i)), "si_value": iv(0)}})
		}
		return rows
	},
}
