package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// TPCC is the TPC-C order-processing benchmark [1, 30]: nine tables and the
// five standard transactions. The YTD and counter increments are loggable;
// the order-id allocator (d_next_o_id feeds the order inserts, so its read
// never becomes dead) and the threshold read of s_quantity are not —
// matching the partial repair of Table 1 (33 → 8).
var TPCC = &Benchmark{
	Name: "TPC-C",
	Source: `
table WAREHOUSE {
  w_id: int key,
  w_name: string,
  w_ytd: int,
}

table DISTRICT {
  d_w_id: int key,
  d_id: int key,
  d_next_o_id: int,
  d_ytd: int,
}

table CUSTOMER {
  c_w_id: int key,
  c_d_id: int key,
  c_id: int key,
  c_name: string,
  c_balance: int,
  c_ytd_payment: int,
  c_payment_cnt: int,
  c_delivery_cnt: int,
}

table ORDERS {
  o_w_id: int key,
  o_d_id: int key,
  o_id: int key,
  o_c_id: int,
  o_carrier_id: int,
  o_ol_cnt: int,
}

table NEW_ORDER {
  no_w_id: int key,
  no_d_id: int key,
  no_o_id: int key,
  no_pending: bool,
}

table ORDER_LINE {
  ol_w_id: int key,
  ol_d_id: int key,
  ol_o_id: int key,
  ol_number: int key,
  ol_i_id: int,
  ol_amount: int,
  ol_delivered: bool,
}

table ITEM {
  i_id: int key,
  i_name: string,
  i_price: int,
}

table STOCK {
  s_w_id: int key,
  s_i_id: int key,
  s_quantity: int,
  s_ytd: int,
  s_order_cnt: int,
}

table HISTORY {
  h_id: int key,
  h_c_id: int,
  h_amount: int,
}

txn newOrder(w: int, d: int, c: int, item: int, qty: int) {
  nx := select d_next_o_id from DISTRICT where d_w_id = w && d_id = d;
  update DISTRICT set d_next_o_id = nx.d_next_o_id + 1 where d_w_id = w && d_id = d;
  insert into ORDERS values (o_w_id = w, o_d_id = d, o_id = nx.d_next_o_id, o_c_id = c, o_carrier_id = 0, o_ol_cnt = 1);
  insert into NEW_ORDER values (no_w_id = w, no_d_id = d, no_o_id = nx.d_next_o_id, no_pending = true);
  pr := select i_price from ITEM where i_id = item;
  sq := select s_quantity from STOCK where s_w_id = w && s_i_id = item;
  update STOCK set s_quantity = sq.s_quantity - qty where s_w_id = w && s_i_id = item;
  sy := select s_ytd from STOCK where s_w_id = w && s_i_id = item;
  update STOCK set s_ytd = sy.s_ytd + qty where s_w_id = w && s_i_id = item;
  so := select s_order_cnt from STOCK where s_w_id = w && s_i_id = item;
  update STOCK set s_order_cnt = so.s_order_cnt + 1 where s_w_id = w && s_i_id = item;
  insert into ORDER_LINE values (ol_w_id = w, ol_d_id = d, ol_o_id = nx.d_next_o_id, ol_number = 1, ol_i_id = item, ol_amount = pr.i_price * qty, ol_delivered = false);
}

txn payment(w: int, d: int, c: int, amt: int) {
  wy := select w_ytd from WAREHOUSE where w_id = w;
  update WAREHOUSE set w_ytd = wy.w_ytd + amt where w_id = w;
  dy := select d_ytd from DISTRICT where d_w_id = w && d_id = d;
  update DISTRICT set d_ytd = dy.d_ytd + amt where d_w_id = w && d_id = d;
  cb := select c_balance from CUSTOMER where c_w_id = w && c_d_id = d && c_id = c;
  update CUSTOMER set c_balance = cb.c_balance - amt where c_w_id = w && c_d_id = d && c_id = c;
  cp := select c_payment_cnt from CUSTOMER where c_w_id = w && c_d_id = d && c_id = c;
  update CUSTOMER set c_payment_cnt = cp.c_payment_cnt + 1 where c_w_id = w && c_d_id = d && c_id = c;
  insert into HISTORY values (h_id = uuid(), h_c_id = c, h_amount = amt);
}

txn orderStatus(w: int, d: int, c: int, oid: int) {
  cb := select c_balance from CUSTOMER where c_w_id = w && c_d_id = d && c_id = c;
  oo := select o_carrier_id from ORDERS where o_w_id = w && o_d_id = d && o_id = oid;
  ol := select ol_amount from ORDER_LINE where ol_w_id = w && ol_d_id = d && ol_o_id = oid;
  return cb.c_balance + oo.o_carrier_id + sum(ol.ol_amount);
}

txn delivery(w: int, d: int, oid: int, carrier: int) {
  np := select no_pending from NEW_ORDER where no_w_id = w && no_d_id = d && no_o_id = oid;
  if (np.no_pending) {
    update NEW_ORDER set no_pending = false where no_w_id = w && no_d_id = d && no_o_id = oid;
    update ORDERS set o_carrier_id = carrier where o_w_id = w && o_d_id = d && o_id = oid;
    oc := select o_c_id from ORDERS where o_w_id = w && o_d_id = d && o_id = oid;
    ol := select ol_amount from ORDER_LINE where ol_w_id = w && ol_d_id = d && ol_o_id = oid;
    update ORDER_LINE set ol_delivered = true where ol_w_id = w && ol_d_id = d && ol_o_id = oid;
    cb := select c_balance from CUSTOMER where c_w_id = w && c_d_id = d && c_id = oc.o_c_id;
    update CUSTOMER set c_balance = cb.c_balance + sum(ol.ol_amount) where c_w_id = w && c_d_id = d && c_id = oc.o_c_id;
    cd := select c_delivery_cnt from CUSTOMER where c_w_id = w && c_d_id = d && c_id = oc.o_c_id;
    update CUSTOMER set c_delivery_cnt = cd.c_delivery_cnt + 1 where c_w_id = w && c_d_id = d && c_id = oc.o_c_id;
  }
}

txn stockLevel(w: int, d: int, threshold: int) {
  nx := select d_next_o_id from DISTRICT where d_w_id = w && d_id = d;
  low := select s_quantity from STOCK where s_w_id = w && s_quantity < threshold;
  return count(low.s_quantity) + nx.d_next_o_id;
}
`,
	Mix: []MixEntry{
		{Txn: "newOrder", Weight: 45, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("w", tpccW(rng, s), "d", int64(rng.Intn(10)), "c", s.Key(rng),
				"item", s.Key(rng), "qty", int64(1+rng.Intn(10)))
		}},
		{Txn: "payment", Weight: 43, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("w", tpccW(rng, s), "d", int64(rng.Intn(10)), "c", s.Key(rng), "amt", int64(1+rng.Intn(5000)))
		}},
		{Txn: "orderStatus", Weight: 4, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("w", tpccW(rng, s), "d", int64(rng.Intn(10)), "c", s.Key(rng), "oid", int64(rng.Intn(100)))
		}},
		{Txn: "delivery", Weight: 4, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("w", tpccW(rng, s), "d", int64(rng.Intn(10)), "oid", int64(rng.Intn(100)), "carrier", int64(1+rng.Intn(10)))
		}},
		{Txn: "stockLevel", Weight: 4, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("w", tpccW(rng, s), "d", int64(rng.Intn(10)), "threshold", int64(10+rng.Intn(10)))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		nW := warehouses(s)
		for w := 0; w < nW; w++ {
			rows = append(rows, TableRow{"WAREHOUSE", store.Row{
				"w_id": iv(int64(w)), "w_name": sv(fmt.Sprintf("w%d", w)), "w_ytd": iv(0),
			}})
			for d := 0; d < 10; d++ {
				rows = append(rows, TableRow{"DISTRICT", store.Row{
					"d_w_id": iv(int64(w)), "d_id": iv(int64(d)), "d_next_o_id": iv(100), "d_ytd": iv(0),
				}})
			}
		}
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"CUSTOMER", store.Row{
					"c_w_id": iv(0), "c_d_id": iv(int64(i % 10)), "c_id": id,
					"c_name": sv(fmt.Sprintf("cust%d", i)), "c_balance": iv(0),
					"c_ytd_payment": iv(0), "c_payment_cnt": iv(0), "c_delivery_cnt": iv(0),
				}},
				TableRow{"ITEM", store.Row{
					"i_id": id, "i_name": sv(fmt.Sprintf("item%d", i)), "i_price": iv(int64(1 + i%100)),
				}},
				TableRow{"STOCK", store.Row{
					"s_w_id": iv(0), "s_i_id": id, "s_quantity": iv(100), "s_ytd": iv(0), "s_order_cnt": iv(0),
				}},
			)
		}
		return rows
	},
}

func warehouses(s Scale) int {
	s = s.orDefault()
	n := s.Records / 50
	if n < 1 {
		n = 1
	}
	return n
}

func tpccW(rng *rand.Rand, s Scale) int64 {
	return int64(rng.Intn(warehouses(s)))
}
