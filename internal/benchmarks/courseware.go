package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// Courseware is the course-management benchmark [25, 29] — the paper's
// running example (Figs. 1–3) extended to the five transactions the
// evaluation uses. Every anomaly is repairable: the email and availability
// fields fold into STUDENT and the enrollment counter becomes a logging
// table, dropping COURSE and EMAIL (Table 1: 3 tables → 2, 5 → 0).
var Courseware = &Benchmark{
	Name: "Courseware",
	Source: `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}

txn unregSt(id: int, course: int) {
  update STUDENT set st_reg = false, st_co_id = course where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt - 1, co_avail = true where co_id = course;
}

txn addSt(id: int, name: string, em: int) {
  insert into STUDENT values (st_id = id, st_name = name, st_em_id = em, st_co_id = 0, st_reg = false);
}
`,
	Mix: []MixEntry{
		{Txn: "getSt", Weight: 40, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("id", s.Key(rng))
		}},
		{Txn: "setSt", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			k := s.Key(rng)
			return args("id", k, "name", fmt.Sprintf("name%d", rng.Intn(1000)), "email", fmt.Sprintf("u%d@example.org", rng.Intn(1000)))
		}},
		{Txn: "regSt", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("id", s.Key(rng), "course", int64(rng.Intn(courseCount(s))))
		}},
		{Txn: "unregSt", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("id", s.Key(rng), "course", int64(rng.Intn(courseCount(s))))
		}},
		{Txn: "addSt", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			id := int64(sc.Records + rng.Intn(1<<20))
			return args("id", id, "name", fmt.Sprintf("new%d", id), "em", id)
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		nCourses := courseCount(s)
		for c := 0; c < nCourses; c++ {
			rows = append(rows, TableRow{"COURSE", store.Row{
				"co_id": iv(int64(c)), "co_avail": bv(true), "co_st_cnt": iv(0),
			}})
		}
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"EMAIL", store.Row{"em_id": id, "em_addr": sv(fmt.Sprintf("u%d@example.org", i))}},
				TableRow{"STUDENT", store.Row{
					"st_id": id, "st_name": sv(fmt.Sprintf("student%d", i)),
					"st_em_id": id, "st_co_id": iv(int64(i % nCourses)), "st_reg": bv(false),
				}},
			)
		}
		return rows
	},
}

func courseCount(s Scale) int {
	s = s.orDefault()
	n := s.Records / 10
	if n < 2 {
		n = 2
	}
	return n
}
