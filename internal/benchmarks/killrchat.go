package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// Killrchat is the Cassandra-based scalable chat application [2, 13]:
// users, rooms, and messages. Room/user counters are loggable increments;
// the guarded message post (read room state, conditionally insert) is not
// repairable (Table 1: 6 → 3).
var Killrchat = &Benchmark{
	Name: "Killrchat",
	Source: `
table USERS {
  us_login: int key,
  us_name: string,
  us_rooms: int,
}

table ROOMS {
  ro_id: int key,
  ro_creator: int,
  ro_open: bool,
  ro_participants: int,
}

table MESSAGES {
  me_room: int key,
  me_id: int key,
  me_author: int,
  me_text: string,
}

txn createUser(u: int, name: string) {
  insert into USERS values (us_login = u, us_name = name, us_rooms = 0);
}

txn joinRoom(u: int, r: int) {
  p := select ro_participants from ROOMS where ro_id = r;
  update ROOMS set ro_participants = p.ro_participants + 1 where ro_id = r;
  c := select us_rooms from USERS where us_login = u;
  update USERS set us_rooms = c.us_rooms + 1 where us_login = u;
}

txn leaveRoom(u: int, r: int) {
  p := select ro_participants from ROOMS where ro_id = r;
  update ROOMS set ro_participants = p.ro_participants - 1 where ro_id = r;
  c := select us_rooms from USERS where us_login = u;
  update USERS set us_rooms = c.us_rooms - 1 where us_login = u;
}

txn postMessage(u: int, r: int, text: string) {
  x := select ro_open from ROOMS where ro_id = r;
  if (x.ro_open) {
    insert into MESSAGES values (me_room = r, me_id = uuid(), me_author = u, me_text = text);
    update ROOMS set ro_open = true where ro_id = r;
  }
}

txn readRoom(u: int, r: int) {
  m := select me_text from MESSAGES where me_room = r;
  p := select ro_participants from ROOMS where ro_id = r;
  return count(m.me_text) + p.ro_participants;
}
`,
	Mix: []MixEntry{
		{Txn: "createUser", Weight: 5, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			id := int64(sc.Records + rng.Intn(1<<20))
			return args("u", id, "name", fmt.Sprintf("user%d", id))
		}},
		{Txn: "joinRoom", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "r", int64(rng.Intn(roomCount(s))))
		}},
		{Txn: "leaveRoom", Weight: 15, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "r", int64(rng.Intn(roomCount(s))))
		}},
		{Txn: "postMessage", Weight: 35, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "r", int64(rng.Intn(roomCount(s))), "text", fmt.Sprintf("msg %d", rng.Intn(1000)))
		}},
		{Txn: "readRoom", Weight: 25, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "r", int64(rng.Intn(roomCount(s))))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		for r := 0; r < roomCount(s); r++ {
			rows = append(rows, TableRow{"ROOMS", store.Row{
				"ro_id": iv(int64(r)), "ro_creator": iv(0), "ro_open": bv(true), "ro_participants": iv(0),
			}})
		}
		for i := 0; i < s.Records; i++ {
			rows = append(rows, TableRow{"USERS", store.Row{
				"us_login": iv(int64(i)), "us_name": sv(fmt.Sprintf("user%d", i)), "us_rooms": iv(0),
			}})
		}
		return rows
	},
}

func roomCount(s Scale) int {
	s = s.orDefault()
	n := s.Records / 20
	if n < 2 {
		n = 2
	}
	return n
}
