package benchmarks

import (
	"fmt"
	"math/rand"

	"atropos/internal/store"
)

// Twitter is the OLTP-Bench Twitter workload [18]: users, tweets and the
// follower graph. The counter increments are loggable and the duplicated
// FOLLOWS/FOLLOWERS edge pair folds into one table via redirect; the
// insert-plus-counter pattern in insertTweet is not repairable (Table 1:
// 6 → 1).
var Twitter = &Benchmark{
	Name: "Twitter",
	Source: `
table USERS {
  u_id: int key,
  u_name: string,
  u_follower_cnt: int,
  u_tweet_cnt: int,
}

table TWEETS {
  t_id: int key,
  t_u_id: int,
  t_text: string,
}

table FOLLOWS {
  f_u_id: int key,
  f_target: int key,
  f_active: bool,
}

table FOLLOWERS {
  fo_u_id: int key,
  fo_src: int key,
  fo_active: bool,
}

txn getTweet(t: int) {
  x := select t_text from TWEETS where t_id = t;
  return x.t_text;
}

txn getUserTimeline(u: int) {
  p := select u_tweet_cnt from USERS where u_id = u;
  x := select t_text from TWEETS where t_u_id = u;
  return count(x.t_text) + p.u_tweet_cnt;
}

txn insertTweet(u: int, t: int, text: string) {
  insert into TWEETS values (t_id = t, t_u_id = u, t_text = text);
  c := select u_tweet_cnt from USERS where u_id = u;
  update USERS set u_tweet_cnt = c.u_tweet_cnt + 1 where u_id = u;
}

txn follow(u: int, v: int) {
  update FOLLOWS set f_active = true where f_u_id = u && f_target = v;
  update FOLLOWERS set fo_active = true where fo_u_id = v && fo_src = u;
  c := select u_follower_cnt from USERS where u_id = v;
  update USERS set u_follower_cnt = c.u_follower_cnt + 1 where u_id = v;
}

txn getFollowers(u: int) {
  x := select fo_active from FOLLOWERS where fo_u_id = u;
  c := select u_follower_cnt from USERS where u_id = u;
  return count(x.fo_active) + c.u_follower_cnt;
}
`,
	Mix: []MixEntry{
		{Txn: "getTweet", Weight: 35, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("t", s.Key(rng))
		}},
		{Txn: "getUserTimeline", Weight: 25, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng))
		}},
		{Txn: "insertTweet", Weight: 20, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			sc := s.orDefault()
			return args("u", s.Key(rng), "t", int64(sc.Records+rng.Intn(1<<20)), "text", fmt.Sprintf("tweet %d", rng.Intn(1000)))
		}},
		{Txn: "follow", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng), "v", s.Key(rng))
		}},
		{Txn: "getFollowers", Weight: 10, Args: func(rng *rand.Rand, s Scale) map[string]store.Value {
			return args("u", s.Key(rng))
		}},
	},
	Rows: func(s Scale) []TableRow {
		s = s.orDefault()
		var rows []TableRow
		for i := 0; i < s.Records; i++ {
			id := iv(int64(i))
			rows = append(rows,
				TableRow{"USERS", store.Row{
					"u_id": id, "u_name": sv(fmt.Sprintf("user%d", i)),
					"u_follower_cnt": iv(0), "u_tweet_cnt": iv(1),
				}},
				TableRow{"TWEETS", store.Row{
					"t_id": id, "t_u_id": id, "t_text": sv(fmt.Sprintf("hello from %d", i)),
				}},
			)
		}
		return rows
	},
}
