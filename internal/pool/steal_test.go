package pool

import (
	"sync"
	"testing"
)

// chainTask models the wavefront protocol: task i may only complete after
// task i-1, suspending (and being woken by its predecessor's completion)
// otherwise.
type chainState struct {
	mu      sync.Mutex
	done    []bool
	waiters []*chainTask
	order   []int
}

type chainTask struct {
	st *chainState
	i  int
}

func (t *chainTask) Run(s *Stealer, w int) TaskStatus {
	st := t.st
	st.mu.Lock()
	if t.i > 0 && !st.done[t.i-1] {
		st.waiters[t.i-1] = t
		st.mu.Unlock()
		return TaskSuspended
	}
	st.done[t.i] = true
	st.order = append(st.order, t.i)
	wake := st.waiters[t.i]
	st.waiters[t.i] = nil
	st.mu.Unlock()
	if wake != nil {
		s.Push(w, wake)
	}
	return TaskDone
}

func TestStealerChainDependency(t *testing.T) {
	const n = 200
	for _, workers := range []int{1, 2, 4, 8} {
		st := &chainState{done: make([]bool, n), waiters: make([]*chainTask, n)}
		seed := make([]Task, n)
		for i := 0; i < n; i++ {
			seed[i] = &chainTask{st: st, i: i}
		}
		NewStealer(workers, n).Run(seed)
		if len(st.order) != n {
			t.Fatalf("workers=%d: %d of %d tasks completed", workers, len(st.order), n)
		}
		for i, got := range st.order {
			if got != i {
				t.Fatalf("workers=%d: completion order %v violates the chain", workers, st.order[:i+1])
			}
		}
	}
}

// countTask checks plain fan-out: independent tasks all run exactly once.
type countTask struct {
	mu   *sync.Mutex
	runs *int
}

func (t *countTask) Run(*Stealer, int) TaskStatus {
	t.mu.Lock()
	*t.runs++
	t.mu.Unlock()
	return TaskDone
}

func TestStealerIndependentTasks(t *testing.T) {
	const n = 500
	var mu sync.Mutex
	runs := 0
	seed := make([]Task, n)
	for i := range seed {
		seed[i] = &countTask{mu: &mu, runs: &runs}
	}
	NewStealer(4, n).Run(seed)
	if runs != n {
		t.Fatalf("%d runs for %d tasks", runs, n)
	}
}

func TestStealerNoTasks(t *testing.T) {
	NewStealer(4, 0).Run(nil) // must terminate immediately
}
