// Package pool provides the bounded worker pool shared by the experiment
// drivers and the incremental anomaly-detection session. It lives below
// both internal/exp and internal/anomaly so either side can fan work out
// without an import cycle (exp imports anomaly).
package pool

import (
	"runtime"
	"sync"
)

// Workers resolves a parallelism knob: n <= 0 means GOMAXPROCS.
func Workers(n int) int {
	if n <= 0 {
		return runtime.GOMAXPROCS(0)
	}
	return n
}

// ForEach runs fn(0) … fn(n-1) on at most w goroutines and waits for all
// of them. Every index runs even if an earlier one fails; the error for
// the lowest index is returned so the outcome does not depend on
// scheduling. With w <= 1 it degenerates to a plain sequential loop.
func ForEach(w, n int, fn func(i int) error) error {
	if n == 0 {
		return nil
	}
	if w > n {
		w = n
	}
	if w <= 1 {
		var first error
		for i := 0; i < n; i++ {
			if err := fn(i); err != nil && first == nil {
				first = err
			}
		}
		return first
	}
	errs := make([]error, n)
	next := make(chan int)
	var wg sync.WaitGroup
	for g := 0; g < w; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				errs[i] = fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}
