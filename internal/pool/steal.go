package pool

import "sync"

// Work-stealing runner for suspendable tasks (DESIGN.md §15).
//
// The anomaly detector's parallel wavefront needs finer-grained fan-out
// than ForEach's fixed index handout: its units (one witness of one
// transaction) have cross-unit ordering constraints, so a unit must be
// able to *suspend* — stop running until another unit publishes the
// progress it waits on — without holding a worker goroutine hostage.
//
// The contract:
//
//   - Run executes until the task either completes (TaskDone) or cannot
//     proceed (TaskSuspended). A task returning TaskSuspended must have
//     already arranged — under its own synchronization — for some other
//     task to Push it back once the awaited progress exists. The runner
//     never re-schedules a suspended task on its own.
//   - Between the suspend registration and the return, Run must not touch
//     task state: the waker may Push (and another worker may re-run) the
//     task before the suspending Run invocation has unwound. The
//     registration's mutex is what publishes the task's state to the
//     next Run.
//   - Each worker owns a deque. It pops its own bottom (LIFO — a woken
//     successor runs hot on the worker that woke it) and steals from the
//     top of other deques (FIFO — stealing the oldest, largest-grained
//     work first). Deques are mutex-guarded; tasks here are milliseconds
//     of SAT solving, so the lock is not the bottleneck the way it would
//     be in a nanosecond-granularity scheduler.
//   - The runner exits when `total` tasks have returned TaskDone. Tasks
//     must guarantee that many completions (a drained error path still
//     completes its tasks).

// TaskStatus is the result of one Task.Run invocation.
type TaskStatus int

const (
	// TaskDone: the task finished and will not run again.
	TaskDone TaskStatus = iota
	// TaskSuspended: the task parked itself; its waker will Push it back.
	TaskSuspended
)

// Task is one resumable unit of work.
type Task interface {
	// Run executes on worker w until done or suspended. It may call
	// s.Push(w, t) to schedule tasks it has made runnable.
	Run(s *Stealer, w int) TaskStatus
}

// Stealer runs suspendable tasks on a fixed set of workers.
type Stealer struct {
	mu        sync.Mutex
	cond      *sync.Cond
	deques    [][]Task
	remaining int // tasks not yet TaskDone (runnable, running, or suspended)
}

// NewStealer prepares a runner for exactly total task completions on w
// workers (w is clamped to at least 1).
func NewStealer(w, total int) *Stealer {
	if w < 1 {
		w = 1
	}
	s := &Stealer{deques: make([][]Task, w), remaining: total}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Push makes t runnable on worker w's deque (any worker may steal it).
// Safe to call from any goroutine, including from inside Run.
func (s *Stealer) Push(w int, t Task) {
	s.mu.Lock()
	s.deques[w%len(s.deques)] = append(s.deques[w%len(s.deques)], t)
	s.mu.Unlock()
	s.cond.Signal()
}

// pop claims the next task for worker w: own deque bottom first, then the
// top of the other deques. It blocks while no task is runnable but some
// are still pending, and returns nil when all work is complete.
func (s *Stealer) pop(w int) Task {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if s.remaining == 0 {
			return nil
		}
		if d := s.deques[w]; len(d) > 0 {
			t := d[len(d)-1]
			d[len(d)-1] = nil
			s.deques[w] = d[:len(d)-1]
			return t
		}
		for i := 1; i < len(s.deques); i++ {
			v := (w + i) % len(s.deques)
			if d := s.deques[v]; len(d) > 0 {
				t := d[0]
				copy(d, d[1:])
				d[len(d)-1] = nil
				s.deques[v] = d[:len(d)-1]
				return t
			}
		}
		s.cond.Wait()
	}
}

// done records one task completion, waking parked workers when the last
// task finishes.
func (s *Stealer) done() {
	s.mu.Lock()
	s.remaining--
	last := s.remaining == 0
	s.mu.Unlock()
	if last {
		s.cond.Broadcast()
	}
}

// Run seeds the deques round-robin with the initially runnable tasks and
// blocks until every task has completed. It must be called once.
func (s *Stealer) Run(seed []Task) {
	for i, t := range seed {
		s.deques[i%len(s.deques)] = append(s.deques[i%len(s.deques)], t)
	}
	var wg sync.WaitGroup
	for w := 0; w < len(s.deques); w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				t := s.pop(w)
				if t == nil {
					return
				}
				if t.Run(s, w) == TaskDone {
					s.done()
				}
				// TaskSuspended: drop the reference; the waker owns it now.
			}
		}(w)
	}
	wg.Wait()
}
