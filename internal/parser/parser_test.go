package parser

import (
	"strings"
	"testing"

	"atropos/internal/ast"
)

// courseware is the paper's running example (Fig. 1).
const courseware = `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}
`

func TestParseCourseware(t *testing.T) {
	p, err := Parse(courseware)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	if got := len(p.Schemas); got != 3 {
		t.Fatalf("schemas = %d, want 3", got)
	}
	if got := len(p.Txns); got != 3 {
		t.Fatalf("txns = %d, want 3", got)
	}
	st := p.Schema("STUDENT")
	if st == nil {
		t.Fatal("missing STUDENT schema")
	}
	if pk := st.PrimaryKey(); len(pk) != 1 || pk[0].Name != "st_id" {
		t.Fatalf("STUDENT pk = %v", pk)
	}
	getSt := p.Txn("getSt")
	if getSt == nil {
		t.Fatal("missing getSt")
	}
	if len(getSt.Params) != 1 || getSt.Params[0].Name != "id" || getSt.Params[0].Type != ast.TInt {
		t.Fatalf("getSt params = %+v", getSt.Params)
	}
	if getSt.Ret == nil {
		t.Fatal("getSt has no return expression")
	}
	cmds := ast.Commands(getSt.Body)
	if len(cmds) != 3 {
		t.Fatalf("getSt commands = %d, want 3", len(cmds))
	}
	wantLabels := []string{"S1", "S2", "S3"}
	for i, c := range cmds {
		if c.CmdLabel() != wantLabels[i] {
			t.Errorf("command %d label = %q, want %q", i, c.CmdLabel(), wantLabels[i])
		}
	}
}

func TestParseLabelsMixed(t *testing.T) {
	p := MustParse(courseware)
	cmds := ast.Commands(p.Txn("regSt").Body)
	want := []string{"U1", "S1", "U2"}
	for i, c := range cmds {
		if c.CmdLabel() != want[i] {
			t.Errorf("regSt command %d label = %q, want %q", i, c.CmdLabel(), want[i])
		}
	}
}

func TestWhereThisResolution(t *testing.T) {
	p := MustParse(courseware)
	sel := ast.Commands(p.Txn("getSt").Body)[0].(*ast.Select)
	eqs, ok := ast.WhereEqualities(sel.Where)
	if !ok {
		t.Fatalf("where clause not an equality conjunction: %s", ast.ExprString(sel.Where))
	}
	if len(eqs) != 1 || eqs[0].Field != "st_id" {
		t.Fatalf("eqs = %+v", eqs)
	}
	if _, isArg := eqs[0].Expr.(*ast.Arg); !isArg {
		t.Fatalf("pin expr = %T, want *ast.Arg", eqs[0].Expr)
	}
}

func TestRoundTrip(t *testing.T) {
	p1, err := Parse(courseware)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	text := ast.Format(p1)
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse of formatted output failed: %v\n%s", err, text)
	}
	if ast.Format(p2) != text {
		t.Fatalf("format not idempotent:\n--- first ---\n%s\n--- second ---\n%s", text, ast.Format(p2))
	}
}

func TestParseControlAndInsert(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn bump(k: int, times: int) {
  iterate (times) {
    x := select n from T where id = k;
    if (x.n < 10) {
      update T set n = x.n + 1 where id = k;
    }
  }
  insert into T values (id = uuid(), n = iter);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	body := p.Txn("bump").Body
	it, ok := body[0].(*ast.Iterate)
	if !ok {
		t.Fatalf("stmt 0 = %T, want *ast.Iterate", body[0])
	}
	if len(it.Body) != 2 {
		t.Fatalf("iterate body = %d stmts", len(it.Body))
	}
	if _, ok := it.Body[1].(*ast.If); !ok {
		t.Fatalf("iterate body[1] = %T, want *ast.If", it.Body[1])
	}
	ins, ok := body[1].(*ast.Insert)
	if !ok {
		t.Fatalf("stmt 1 = %T, want *ast.Insert", body[1])
	}
	if ins.Label != "U2" {
		t.Errorf("insert label = %q, want U2 (if inside control counts as U1)", ins.Label)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"missing semi", `table T { id: int key, } txn a() { x := select * from T where id = 1 }`, "expected ';'"},
		{"unknown table", `txn a() { x := select * from T where id = 1; }`, "unknown table"},
		{"bad char", `table T { id: int key, } txn a() { x := select * from T where id = #1; }`, "unexpected character"},
		{"dup table", `table T { id: int key, } table T { id: int key, }`, "duplicate table"},
		{"dup txn", `txn a() { skip; } txn a() { skip; }`, "duplicate transaction"},
		{"bad type", `table T { id: float key, }`, "unknown type"},
		{"return not last", `table T { id: int key, } txn a() { return 1; skip; }`, "final statement"},
		{"unterminated string", `table T { id: int key, } txn a(s: string) { update T set id = 1 where id = 1; return "abc; }`, "unterminated string"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := Parse(tc.src)
			if err == nil {
				t.Fatalf("Parse succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestParseExprPrecedence(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn a(x: int, y: int) {
  update T set n = x + y * 2 where id = x && n > 1 || n < 0;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	u := ast.Commands(p.Txn("a").Body)[0].(*ast.Update)
	// x + y*2 parses with * binding tighter.
	set := u.Sets[0].Expr.(*ast.Binary)
	if set.Op != ast.OpAdd {
		t.Fatalf("top op = %v, want +", set.Op)
	}
	if r, ok := set.R.(*ast.Binary); !ok || r.Op != ast.OpMul {
		t.Fatalf("rhs = %s, want multiplication", ast.ExprString(set.R))
	}
	// where parses as (id=x && n>1) || (n<0).
	w := u.Where.(*ast.Binary)
	if w.Op != ast.OpOr {
		t.Fatalf("where top op = %v, want ||", w.Op)
	}
}

func TestAggAndUUIDParsing(t *testing.T) {
	src := `
table LOG { id: int key, log_id: int key, v: int, }
txn read(k: int) {
  x := select v from LOG where id = k;
  return sum(x.v);
}
txn write(k: int, amt: int) {
  insert into LOG values (id = k, log_id = uuid(), v = amt);
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	agg, ok := p.Txn("read").Ret.(*ast.Agg)
	if !ok || agg.Fn != ast.AggSum || agg.Var != "x" || agg.Field != "v" {
		t.Fatalf("return = %s", ast.ExprString(p.Txn("read").Ret))
	}
	ins := ast.Commands(p.Txn("write").Body)[0].(*ast.Insert)
	if _, ok := ins.Values[1].Expr.(*ast.UUID); !ok {
		t.Fatalf("log_id value = %T, want *ast.UUID", ins.Values[1].Expr)
	}
}

func TestDeleteSugar(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn drop(k: int) {
  delete from T where id = k;
}
`
	p, err := Parse(src)
	if err != nil {
		t.Fatalf("Parse: %v", err)
	}
	cmds := ast.Commands(p.Txn("drop").Body)
	u, ok := cmds[0].(*ast.Update)
	if !ok {
		t.Fatalf("delete desugared to %T, want *ast.Update", cmds[0])
	}
	if len(u.Sets) != 1 || u.Sets[0].Field != ast.AliveField {
		t.Fatalf("delete sets %v, want alive=false", u.Sets)
	}
	// Printing re-sugars and the output round-trips.
	text := ast.Format(p)
	if !strings.Contains(text, "delete from T where") {
		t.Fatalf("delete not re-sugared:\n%s", text)
	}
	p2, err := Parse(text)
	if err != nil {
		t.Fatalf("reparse: %v", err)
	}
	if !ast.EqualStmt(p.Txns[0].Body[0], p2.Txns[0].Body[0]) {
		t.Fatal("delete round trip differs")
	}
}
