// Package parser implements a lexer and recursive-descent parser for the
// database-program DSL (paper Fig. 5). The concrete syntax follows the
// paper's listings:
//
//	table STUDENT { st_id: int key, st_name: string, }
//
//	txn getSt(id: int) {
//	  x := select * from STUDENT where st_id = id;
//	  return x.st_name;
//	}
//
// The parser auto-assigns the stable command labels (S1, U1, ...) used in
// the paper's figures and in anomaly reports.
package parser

import (
	"fmt"
	"strings"
	"unicode"
)

type tokenKind int

const (
	tokEOF tokenKind = iota
	tokIdent
	tokInt
	tokString
	// punctuation
	tokAssign // :=
	tokLParen
	tokRParen
	tokLBrace
	tokRBrace
	tokLBracket
	tokRBracket
	tokComma
	tokSemi
	tokColon
	tokDot
	// operators
	tokPlus
	tokMinus
	tokStar
	tokSlash
	tokLt
	tokLe
	tokEq
	tokNe
	tokGt
	tokGe
	tokAndAnd
	tokOrOr
)

func (k tokenKind) String() string {
	switch k {
	case tokEOF:
		return "end of input"
	case tokIdent:
		return "identifier"
	case tokInt:
		return "integer"
	case tokString:
		return "string"
	case tokAssign:
		return "':='"
	case tokLParen:
		return "'('"
	case tokRParen:
		return "')'"
	case tokLBrace:
		return "'{'"
	case tokRBrace:
		return "'}'"
	case tokLBracket:
		return "'['"
	case tokRBracket:
		return "']'"
	case tokComma:
		return "','"
	case tokSemi:
		return "';'"
	case tokColon:
		return "':'"
	case tokDot:
		return "'.'"
	case tokPlus:
		return "'+'"
	case tokMinus:
		return "'-'"
	case tokStar:
		return "'*'"
	case tokSlash:
		return "'/'"
	case tokLt:
		return "'<'"
	case tokLe:
		return "'<='"
	case tokEq:
		return "'='"
	case tokNe:
		return "'!='"
	case tokGt:
		return "'>'"
	case tokGe:
		return "'>='"
	case tokAndAnd:
		return "'&&'"
	case tokOrOr:
		return "'||'"
	default:
		return fmt.Sprintf("token(%d)", int(k))
	}
}

type token struct {
	kind tokenKind
	text string
	line int
	col  int
}

// Error is a parse or lex error with source position.
type Error struct {
	Line, Col int
	Msg       string
}

func (e *Error) Error() string {
	return fmt.Sprintf("%d:%d: %s", e.Line, e.Col, e.Msg)
}

type lexer struct {
	src  string
	pos  int
	line int
	col  int
}

func newLexer(src string) *lexer {
	return &lexer{src: src, line: 1, col: 1}
}

func (l *lexer) errf(format string, args ...any) *Error {
	return &Error{Line: l.line, Col: l.col, Msg: fmt.Sprintf(format, args...)}
}

func (l *lexer) peekByte() byte {
	if l.pos >= len(l.src) {
		return 0
	}
	return l.src[l.pos]
}

func (l *lexer) advance() byte {
	c := l.src[l.pos]
	l.pos++
	if c == '\n' {
		l.line++
		l.col = 1
	} else {
		l.col++
	}
	return c
}

func (l *lexer) skipSpaceAndComments() {
	for l.pos < len(l.src) {
		c := l.peekByte()
		switch {
		case c == ' ' || c == '\t' || c == '\r' || c == '\n':
			l.advance()
		case c == '/' && l.pos+1 < len(l.src) && l.src[l.pos+1] == '/':
			for l.pos < len(l.src) && l.peekByte() != '\n' {
				l.advance()
			}
		default:
			return
		}
	}
}

func isIdentStart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c))
}

func isIdentPart(c byte) bool {
	return c == '_' || unicode.IsLetter(rune(c)) || unicode.IsDigit(rune(c))
}

func (l *lexer) next() (token, *Error) {
	l.skipSpaceAndComments()
	line, col := l.line, l.col
	mk := func(k tokenKind, text string) token {
		return token{kind: k, text: text, line: line, col: col}
	}
	if l.pos >= len(l.src) {
		return mk(tokEOF, ""), nil
	}
	c := l.peekByte()
	switch {
	case isIdentStart(c):
		start := l.pos
		for l.pos < len(l.src) && isIdentPart(l.peekByte()) {
			l.advance()
		}
		return mk(tokIdent, l.src[start:l.pos]), nil
	case unicode.IsDigit(rune(c)):
		start := l.pos
		for l.pos < len(l.src) && unicode.IsDigit(rune(l.peekByte())) {
			l.advance()
		}
		return mk(tokInt, l.src[start:l.pos]), nil
	case c == '"':
		l.advance()
		var sb strings.Builder
		for {
			if l.pos >= len(l.src) {
				return token{}, l.errf("unterminated string literal")
			}
			ch := l.advance()
			if ch == '"' {
				break
			}
			if ch == '\\' {
				if l.pos >= len(l.src) {
					return token{}, l.errf("unterminated escape in string literal")
				}
				esc := l.advance()
				switch esc {
				case 'n':
					sb.WriteByte('\n')
				case 't':
					sb.WriteByte('\t')
				case '"', '\\':
					sb.WriteByte(esc)
				default:
					return token{}, l.errf("unknown escape \\%c", esc)
				}
				continue
			}
			sb.WriteByte(ch)
		}
		return mk(tokString, sb.String()), nil
	}
	l.advance()
	two := func(nextc byte, k2 tokenKind, k1 tokenKind) (token, *Error) {
		if l.peekByte() == nextc {
			l.advance()
			return mk(k2, ""), nil
		}
		if k1 == tokEOF {
			return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
		}
		return mk(k1, ""), nil
	}
	switch c {
	case ':':
		return two('=', tokAssign, tokColon)
	case '(':
		return mk(tokLParen, ""), nil
	case ')':
		return mk(tokRParen, ""), nil
	case '{':
		return mk(tokLBrace, ""), nil
	case '}':
		return mk(tokRBrace, ""), nil
	case '[':
		return mk(tokLBracket, ""), nil
	case ']':
		return mk(tokRBracket, ""), nil
	case ',':
		return mk(tokComma, ""), nil
	case ';':
		return mk(tokSemi, ""), nil
	case '.':
		return mk(tokDot, ""), nil
	case '+':
		return mk(tokPlus, ""), nil
	case '-':
		return mk(tokMinus, ""), nil
	case '*':
		return mk(tokStar, ""), nil
	case '/':
		return mk(tokSlash, ""), nil
	case '<':
		return two('=', tokLe, tokLt)
	case '>':
		return two('=', tokGe, tokGt)
	case '=':
		return mk(tokEq, ""), nil
	case '!':
		return two('=', tokNe, tokEOF)
	case '&':
		return two('&', tokAndAnd, tokEOF)
	case '|':
		return two('|', tokOrOr, tokEOF)
	}
	return token{}, &Error{Line: line, Col: col, Msg: fmt.Sprintf("unexpected character %q", c)}
}

// lexAll tokenizes the whole input.
func lexAll(src string) ([]token, *Error) {
	l := newLexer(src)
	var toks []token
	for {
		t, err := l.next()
		if err != nil {
			return nil, err
		}
		toks = append(toks, t)
		if t.kind == tokEOF {
			return toks, nil
		}
	}
}
