package parser_test

import (
	"testing"

	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/progen"
	"atropos/internal/sema"
)

// This file property-tests the parser against the printer: randomly
// generated, well-formed programs must survive Format → Parse with their
// structure intact, and must pass the semantic checker.

// TestRandomProgramRoundTrip: Format(p) reparses to a structurally equal
// program that passes the semantic checker.
func TestRandomProgramRoundTrip(t *testing.T) {
	for seed := int64(0); seed < 150; seed++ {
		p := progen.Program(seed)
		text := ast.Format(p)
		p2, err := parser.Parse(text)
		if err != nil {
			t.Fatalf("seed %d: reparse failed: %v\n%s", seed, err, text)
		}
		if err := sema.Check(p2); err != nil {
			t.Fatalf("seed %d: reparsed program ill-typed: %v\n%s", seed, err, text)
		}
		if len(p2.Txns) != len(p.Txns) || len(p2.Schemas) != len(p.Schemas) {
			t.Fatalf("seed %d: shape mismatch", seed)
		}
		for i := range p.Txns {
			if len(p2.Txns[i].Body) != len(p.Txns[i].Body) {
				t.Fatalf("seed %d: txn %d body length %d != %d\n%s",
					seed, i, len(p2.Txns[i].Body), len(p.Txns[i].Body), text)
			}
			for j := range p.Txns[i].Body {
				if !ast.EqualStmt(p.Txns[i].Body[j], p2.Txns[i].Body[j]) {
					t.Fatalf("seed %d: txn %d stmt %d differs:\n  orig: %s\n  got:  %s",
						seed, i, j, ast.StmtString(p.Txns[i].Body[j]), ast.StmtString(p2.Txns[i].Body[j]))
				}
			}
			if !ast.EqualExpr(p.Txns[i].Ret, p2.Txns[i].Ret) {
				t.Fatalf("seed %d: txn %d return differs", seed, i)
			}
		}
		// Format is a fixpoint after one round trip.
		if ast.Format(p2) != text {
			t.Fatalf("seed %d: Format not idempotent", seed)
		}
	}
}

// TestRandomProgramsClone guards the AST deep-copy against all generator
// shapes.
func TestRandomProgramsClone(t *testing.T) {
	for seed := int64(0); seed < 50; seed++ {
		p := progen.Program(seed)
		cp := ast.CloneProgram(p)
		if ast.Format(cp) != ast.Format(p) {
			t.Fatalf("seed %d: clone formats differently", seed)
		}
	}
}
