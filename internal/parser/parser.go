package parser

import (
	"fmt"
	"strconv"

	"atropos/internal/ast"
)

// Parse parses DSL source into a program. Labels are assigned to every
// database command (S1.. for selects, U1.. for updates and inserts,
// per-transaction counters), matching the paper's naming in Figs. 1 and 11.
func Parse(src string) (*ast.Program, error) {
	toks, lerr := lexAll(src)
	if lerr != nil {
		return nil, lerr
	}
	p := &parser{toks: toks}
	prog, err := p.parseProgram()
	if err != nil {
		return nil, err
	}
	AssignLabels(prog)
	// Hash-cons the freshly built expressions while the program is still
	// private to the parser: structurally equal where clauses and values
	// share one canonical node from the start, which makes the repair
	// engine's EqualExpr checks O(1) (see ast.Intern).
	ast.InternProgramExprs(prog)
	return prog, nil
}

// MustParse parses src and panics on error; intended for embedded benchmark
// sources and tests.
func MustParse(src string) *ast.Program {
	p, err := Parse(src)
	if err != nil {
		panic(fmt.Sprintf("parser.MustParse: %v", err))
	}
	return p
}

// AssignLabels (re)assigns stable command labels within each transaction:
// selects become S1, S2, ...; updates and inserts become U1, U2, ....
func AssignLabels(prog *ast.Program) {
	for _, t := range prog.Txns {
		nSel, nUpd := 0, 0
		ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
			switch c := s.(type) {
			case *ast.Select:
				nSel++
				c.Label = fmt.Sprintf("S%d", nSel)
			case *ast.Update:
				nUpd++
				c.Label = fmt.Sprintf("U%d", nUpd)
			case *ast.Insert:
				nUpd++
				c.Label = fmt.Sprintf("U%d", nUpd)
			}
			return true
		})
	}
}

type parser struct {
	toks []token
	pos  int
	prog *ast.Program
	// current transaction context for identifier resolution
	curParams map[string]bool
	curVars   map[string]bool
	// current where-clause table context (nil outside where clauses)
	whereSchema *ast.Schema
}

func (p *parser) cur() token  { return p.toks[p.pos] }
func (p *parser) peek() token { return p.toks[min(p.pos+1, len(p.toks)-1)] }

func (p *parser) advance() token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *parser) errf(t token, format string, args ...any) error {
	return &Error{Line: t.line, Col: t.col, Msg: fmt.Sprintf(format, args...)}
}

func (p *parser) expect(k tokenKind) (token, error) {
	t := p.cur()
	if t.kind != k {
		return t, p.errf(t, "expected %s, found %s %q", k, t.kind, t.text)
	}
	return p.advance(), nil
}

func (p *parser) expectKeyword(kw string) error {
	t := p.cur()
	if t.kind != tokIdent || t.text != kw {
		return p.errf(t, "expected %q, found %s %q", kw, t.kind, t.text)
	}
	p.advance()
	return nil
}

func (p *parser) atKeyword(kw string) bool {
	t := p.cur()
	return t.kind == tokIdent && t.text == kw
}

func (p *parser) parseProgram() (*ast.Program, error) {
	p.prog = &ast.Program{}
	for {
		switch {
		case p.cur().kind == tokEOF:
			return p.prog, nil
		case p.atKeyword("table"):
			s, err := p.parseSchema()
			if err != nil {
				return nil, err
			}
			if p.prog.Schema(s.Name) != nil {
				return nil, p.errf(p.cur(), "duplicate table %q", s.Name)
			}
			p.prog.Schemas = append(p.prog.Schemas, s)
		case p.atKeyword("txn"):
			t, err := p.parseTxn()
			if err != nil {
				return nil, err
			}
			if p.prog.Txn(t.Name) != nil {
				return nil, p.errf(p.cur(), "duplicate transaction %q", t.Name)
			}
			p.prog.Txns = append(p.prog.Txns, t)
		default:
			return nil, p.errf(p.cur(), "expected 'table' or 'txn', found %s %q", p.cur().kind, p.cur().text)
		}
	}
}

func (p *parser) parseSchema() (*ast.Schema, error) {
	p.advance() // table
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	s := &ast.Schema{Name: name.text}
	for p.cur().kind != tokRBrace {
		fname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ftype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		f := &ast.Field{Name: fname.text, Type: ftype}
		if p.atKeyword("key") {
			p.advance()
			f.PK = true
		}
		s.Fields = append(s.Fields, f)
		if p.cur().kind == tokComma {
			p.advance()
			continue
		}
		break
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return s, nil
}

func (p *parser) parseType() (ast.Type, error) {
	t, err := p.expect(tokIdent)
	if err != nil {
		return ast.TInvalid, err
	}
	switch t.text {
	case "int":
		return ast.TInt, nil
	case "bool":
		return ast.TBool, nil
	case "string":
		return ast.TString, nil
	default:
		return ast.TInvalid, p.errf(t, "unknown type %q", t.text)
	}
}

func (p *parser) parseTxn() (*ast.Txn, error) {
	p.advance() // txn
	name, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	t := &ast.Txn{Name: name.text}
	p.curParams = map[string]bool{}
	p.curVars = map[string]bool{}
	for p.cur().kind != tokRParen {
		pname, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokColon); err != nil {
			return nil, err
		}
		ptype, err := p.parseType()
		if err != nil {
			return nil, err
		}
		t.Params = append(t.Params, &ast.Param{Name: pname.text, Type: ptype})
		p.curParams[pname.text] = true
		if p.cur().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // )
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, ret, err := p.parseBlockBody(true)
	if err != nil {
		return nil, err
	}
	t.Body = body
	t.Ret = ret
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return t, nil
}

// parseBlockBody parses statements until '}'. When allowReturn is true a
// trailing `return e;` is captured as the transaction's return expression.
func (p *parser) parseBlockBody(allowReturn bool) ([]ast.Stmt, ast.Expr, error) {
	var body []ast.Stmt
	for p.cur().kind != tokRBrace && p.cur().kind != tokEOF {
		if p.atKeyword("return") {
			if !allowReturn {
				return nil, nil, p.errf(p.cur(), "return is only allowed at the end of a transaction body")
			}
			p.advance()
			e, err := p.parseExpr()
			if err != nil {
				return nil, nil, err
			}
			if _, err := p.expect(tokSemi); err != nil {
				return nil, nil, err
			}
			if p.cur().kind != tokRBrace {
				return nil, nil, p.errf(p.cur(), "return must be the final statement")
			}
			return body, e, nil
		}
		s, err := p.parseStmt()
		if err != nil {
			return nil, nil, err
		}
		body = append(body, s)
	}
	return body, nil, nil
}

func (p *parser) parseStmt() (ast.Stmt, error) {
	t := p.cur()
	switch {
	case p.atKeyword("update"):
		return p.parseUpdate()
	case p.atKeyword("insert"):
		return p.parseInsert()
	case p.atKeyword("delete"):
		return p.parseDelete()
	case p.atKeyword("if"):
		return p.parseIf()
	case p.atKeyword("iterate"):
		return p.parseIterate()
	case p.atKeyword("skip"):
		p.advance()
		if _, err := p.expect(tokSemi); err != nil {
			return nil, err
		}
		return &ast.Skip{}, nil
	case t.kind == tokIdent && p.peek().kind == tokAssign:
		return p.parseSelect()
	default:
		return nil, p.errf(t, "expected statement, found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseSelect() (ast.Stmt, error) {
	v, _ := p.expect(tokIdent)
	p.advance() // :=
	if err := p.expectKeyword("select"); err != nil {
		return nil, err
	}
	sel := &ast.Select{Var: v.text}
	if p.cur().kind == tokStar {
		p.advance()
		sel.Star = true
	} else {
		for {
			f, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			sel.Fields = append(sel.Fields, f.text)
			if p.cur().kind != tokComma {
				break
			}
			p.advance()
		}
	}
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	sel.Table = tbl.text
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	w, err := p.parseWhere(tbl)
	if err != nil {
		return nil, err
	}
	sel.Where = w
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	p.curVars[v.text] = true
	return sel, nil
}

func (p *parser) parseUpdate() (ast.Stmt, error) {
	p.advance() // update
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("set"); err != nil {
		return nil, err
	}
	u := &ast.Update{Table: tbl.text}
	for {
		f, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		u.Sets = append(u.Sets, ast.Assign{Field: f.text, Expr: e})
		if p.cur().kind != tokComma {
			break
		}
		p.advance()
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	w, err := p.parseWhere(tbl)
	if err != nil {
		return nil, err
	}
	u.Where = w
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return u, nil
}

func (p *parser) parseInsert() (ast.Stmt, error) {
	p.advance() // insert
	if err := p.expectKeyword("into"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("values"); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	ins := &ast.Insert{Table: tbl.text}
	for p.cur().kind != tokRParen {
		f, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokEq); err != nil {
			return nil, err
		}
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		ins.Values = append(ins.Values, ast.Assign{Field: f.text, Expr: e})
		if p.cur().kind == tokComma {
			p.advance()
		}
	}
	p.advance() // )
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return ins, nil
}

// parseDelete desugars `delete from R where φ` into an update clearing the
// implicit alive field (paper §3: DELETE and INSERT are modeled through the
// presence field without extending the core syntax).
func (p *parser) parseDelete() (ast.Stmt, error) {
	p.advance() // delete
	if err := p.expectKeyword("from"); err != nil {
		return nil, err
	}
	tbl, err := p.expect(tokIdent)
	if err != nil {
		return nil, err
	}
	if err := p.expectKeyword("where"); err != nil {
		return nil, err
	}
	w, err := p.parseWhere(tbl)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokSemi); err != nil {
		return nil, err
	}
	return &ast.Update{
		Table: tbl.text,
		Sets:  []ast.Assign{{Field: ast.AliveField, Expr: &ast.BoolLit{Val: false}}},
		Where: w,
	}, nil
}

func (p *parser) parseIf() (ast.Stmt, error) {
	p.advance() // if
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	cond, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, _, err := p.parseBlockBody(false)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return &ast.If{Cond: cond, Then: body}, nil
}

func (p *parser) parseIterate() (ast.Stmt, error) {
	p.advance() // iterate
	if _, err := p.expect(tokLParen); err != nil {
		return nil, err
	}
	count, err := p.parseExpr()
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRParen); err != nil {
		return nil, err
	}
	if _, err := p.expect(tokLBrace); err != nil {
		return nil, err
	}
	body, _, err := p.parseBlockBody(false)
	if err != nil {
		return nil, err
	}
	if _, err := p.expect(tokRBrace); err != nil {
		return nil, err
	}
	return &ast.Iterate{Count: count, Body: body}, nil
}

// parseWhere parses a where clause in the context of table tbl: bare
// identifiers that name a field of that table become this.f references.
func (p *parser) parseWhere(tbl token) (ast.Expr, error) {
	schema := p.prog.Schema(tbl.text)
	if schema == nil {
		return nil, p.errf(tbl, "unknown table %q", tbl.text)
	}
	prev := p.whereSchema
	p.whereSchema = schema
	defer func() { p.whereSchema = prev }()
	return p.parseExpr()
}

// Expression parsing with precedence climbing:
// or < and < comparison < additive < multiplicative < primary.

func (p *parser) parseExpr() (ast.Expr, error) { return p.parseOr() }

func (p *parser) parseOr() (ast.Expr, error) {
	l, err := p.parseAnd()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokOrOr {
		p.advance()
		r, err := p.parseAnd()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpOr, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseAnd() (ast.Expr, error) {
	l, err := p.parseCmp()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokAndAnd {
		p.advance()
		r, err := p.parseCmp()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: ast.OpAnd, L: l, R: r}
	}
	return l, nil
}

var cmpOps = map[tokenKind]ast.BinOp{
	tokLt: ast.OpLt, tokLe: ast.OpLe, tokEq: ast.OpEq,
	tokNe: ast.OpNe, tokGt: ast.OpGt, tokGe: ast.OpGe,
}

func (p *parser) parseCmp() (ast.Expr, error) {
	l, err := p.parseAdd()
	if err != nil {
		return nil, err
	}
	if op, ok := cmpOps[p.cur().kind]; ok {
		p.advance()
		r, err := p.parseAdd()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: op, L: l, R: r}, nil
	}
	return l, nil
}

func (p *parser) parseAdd() (ast.Expr, error) {
	l, err := p.parseMul()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokPlus || p.cur().kind == tokMinus {
		op := ast.OpAdd
		if p.cur().kind == tokMinus {
			op = ast.OpSub
		}
		p.advance()
		r, err := p.parseMul()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

func (p *parser) parseMul() (ast.Expr, error) {
	l, err := p.parsePrimary()
	if err != nil {
		return nil, err
	}
	for p.cur().kind == tokStar || p.cur().kind == tokSlash {
		op := ast.OpMul
		if p.cur().kind == tokSlash {
			op = ast.OpDiv
		}
		p.advance()
		r, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		l = &ast.Binary{Op: op, L: l, R: r}
	}
	return l, nil
}

var aggFns = map[string]ast.AggFn{
	"sum": ast.AggSum, "min": ast.AggMin, "max": ast.AggMax,
	"count": ast.AggCount, "any": ast.AggAny,
}

func (p *parser) parsePrimary() (ast.Expr, error) {
	t := p.cur()
	switch t.kind {
	case tokInt:
		p.advance()
		n, err := strconv.ParseInt(t.text, 10, 64)
		if err != nil {
			return nil, p.errf(t, "invalid integer %q", t.text)
		}
		return &ast.IntLit{Val: n}, nil
	case tokString:
		p.advance()
		return &ast.StringLit{Val: t.text}, nil
	case tokMinus:
		p.advance()
		e, err := p.parsePrimary()
		if err != nil {
			return nil, err
		}
		return &ast.Binary{Op: ast.OpSub, L: &ast.IntLit{Val: 0}, R: e}, nil
	case tokLParen:
		p.advance()
		e, err := p.parseExpr()
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return e, nil
	case tokIdent:
		return p.parseIdentExpr()
	default:
		return nil, p.errf(t, "expected expression, found %s %q", t.kind, t.text)
	}
}

func (p *parser) parseIdentExpr() (ast.Expr, error) {
	t := p.advance()
	switch t.text {
	case "true":
		return &ast.BoolLit{Val: true}, nil
	case "false":
		return &ast.BoolLit{Val: false}, nil
	case "iter":
		return &ast.IterVar{}, nil
	case "uuid":
		if p.cur().kind == tokLParen {
			p.advance()
			if _, err := p.expect(tokRParen); err != nil {
				return nil, err
			}
			return &ast.UUID{}, nil
		}
	case "this":
		if p.cur().kind == tokDot {
			p.advance()
			f, err := p.expect(tokIdent)
			if err != nil {
				return nil, err
			}
			return &ast.ThisField{Field: f.text}, nil
		}
	}
	if fn, ok := aggFns[t.text]; ok && p.cur().kind == tokLParen {
		p.advance()
		v, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokDot); err != nil {
			return nil, err
		}
		f, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		if _, err := p.expect(tokRParen); err != nil {
			return nil, err
		}
		return &ast.Agg{Fn: fn, Var: v.text, Field: f.text}, nil
	}
	// x.f or x.f[e]: access to a previously bound query variable.
	if p.cur().kind == tokDot {
		p.advance()
		f, err := p.expect(tokIdent)
		if err != nil {
			return nil, err
		}
		fa := &ast.FieldAt{Var: t.text, Field: f.text}
		if p.cur().kind == tokLBracket {
			p.advance()
			idx, err := p.parseExpr()
			if err != nil {
				return nil, err
			}
			if _, err := p.expect(tokRBracket); err != nil {
				return nil, err
			}
			fa.Index = idx
		}
		return fa, nil
	}
	// Bare identifier: inside a where clause, a field of the target table
	// denotes this.f; otherwise it is a transaction argument.
	if p.whereSchema != nil && p.whereSchema.HasField(t.text) {
		return &ast.ThisField{Field: t.text}, nil
	}
	return &ast.Arg{Name: t.text}, nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
