package ast

import "sync"

// Hash-consing of expressions (DESIGN.md §10): Intern canonicalizes an
// expression tree against a global, size-bounded cons table so that
// structurally equal expressions share one node. Interned expressions make
// EqualExpr O(1) on the repair hot path (pointer identity plus a memoized
// uuid-freeness check) and let speculative refactoring candidates share
// their rebuilt where clauses instead of re-allocating them per probe.
//
// The table is keyed by structural hash with EqualExpr verifying bucket
// collisions, so a (vanishingly unlikely) 64-bit collision degrades to an
// unshared node, never to a wrong merge. Subtrees containing uuid() are
// never interned: uuid() is fresh per evaluation, so two occurrences are
// never equal and sharing them would let the equality fast path lie.
//
// The table is sharded by hash (DESIGN.md §15) so that N-way parallel
// detection does not serialize on a single mutex: each shard carries its
// own lock, bucket map, and share of the global bound. Correctness is
// unchanged — a given hash always maps to the same shard, so two
// structurally equal expressions still meet in one bucket.
//
// The bound caps memory for adversarial workloads (fuzzers generating
// unbounded distinct literals): once a shard is full, Intern still
// canonicalizes against its existing entries but stops inserting new ones.
// The per-shard bound keeps the aggregate cap at consTableMax; skew across
// shards can fill one shard early, which only costs sharing, never safety.

const (
	consTableMax = 1 << 16
	consShards   = 64 // power of two; shard index taken from hash digest bits
	consShardMax = consTableMax / consShards
)

type consShard struct {
	sync.Mutex
	m map[uint64][]Expr
	n int
	// Pad to a cache line so shard locks on adjacent array slots do not
	// false-share under parallel detection.
	_ [24]byte
}

var consTable [consShards]consShard

func init() {
	for i := range consTable {
		consTable[i].m = make(map[uint64][]Expr)
	}
}

// consShardFor picks the shard for a hash word. The digest bits of HashExpr
// are already well mixed; use high digest bits so the shard index and the
// map's own bucketing (low bits) stay independent.
func consShardFor(h uint64) *consShard {
	return &consTable[(h>>32)&(consShards-1)]
}

// Intern returns the canonical node for e, interning its children bottom-up.
// The result prints and compares identically to e; callers must treat it as
// shared and immutable. nil interns to nil.
func Intern(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		l, r := Intern(x.L), Intern(x.R)
		if l != x.L || r != x.R {
			e = &Binary{Op: x.Op, L: l, R: r}
		}
	case *FieldAt:
		if idx := Intern(x.Index); idx != x.Index {
			e = &FieldAt{Var: x.Var, Field: x.Field, Index: idx}
		}
	}
	h := HashExpr(e)
	if h&hashUUID != 0 {
		return e
	}
	s := consShardFor(h)
	s.Lock()
	defer s.Unlock()
	for _, c := range s.m[h] {
		if EqualExpr(c, e) {
			return c
		}
	}
	if s.n < consShardMax {
		s.m[h] = append(s.m[h], e)
		s.n++
	}
	return e
}

// InternTxnExprs canonicalizes every expression of a transaction in place.
// It is a builder-side operation: the parser and generators call it while
// the transaction is still private to them, before it is shared or hashed.
func InternTxnExprs(t *Txn) {
	var walk func(body []Stmt)
	walk = func(body []Stmt) {
		for _, s := range body {
			switch x := s.(type) {
			case *Select:
				x.Where = Intern(x.Where)
			case *Update:
				x.Where = Intern(x.Where)
				for i := range x.Sets {
					x.Sets[i].Expr = Intern(x.Sets[i].Expr)
				}
			case *Insert:
				for i := range x.Values {
					x.Values[i].Expr = Intern(x.Values[i].Expr)
				}
			case *If:
				x.Cond = Intern(x.Cond)
				walk(x.Then)
			case *Iterate:
				x.Count = Intern(x.Count)
				walk(x.Body)
			}
		}
	}
	walk(t.Body)
	t.Ret = Intern(t.Ret)
}

// InternProgramExprs canonicalizes every expression of a program in place
// (same builder-side caveat as InternTxnExprs).
func InternProgramExprs(p *Program) {
	for _, t := range p.Txns {
		InternTxnExprs(t)
	}
}
