package ast

import (
	"fmt"
	"strings"
)

// Format renders a program in the DSL concrete syntax accepted by the
// parser, with command labels as trailing comments (paper Fig. 1 style).
func Format(p *Program) string {
	var b strings.Builder
	for i, s := range p.Schemas {
		if i > 0 {
			b.WriteString("\n")
		}
		FormatSchema(&b, s)
	}
	for _, t := range p.Txns {
		b.WriteString("\n")
		FormatTxn(&b, t)
	}
	return b.String()
}

// FormatSchema writes one schema declaration.
func FormatSchema(b *strings.Builder, s *Schema) {
	fmt.Fprintf(b, "table %s {\n", s.Name)
	for _, f := range s.Fields {
		fmt.Fprintf(b, "  %s: %s", f.Name, f.Type)
		if f.PK {
			b.WriteString(" key")
		}
		b.WriteString(",\n")
	}
	b.WriteString("}\n")
}

// FormatTxn writes one transaction declaration.
func FormatTxn(b *strings.Builder, t *Txn) {
	fmt.Fprintf(b, "txn %s(", t.Name)
	for i, p := range t.Params {
		if i > 0 {
			b.WriteString(", ")
		}
		fmt.Fprintf(b, "%s: %s", p.Name, p.Type)
	}
	b.WriteString(") {\n")
	formatStmts(b, t.Body, 1)
	if t.Ret != nil {
		fmt.Fprintf(b, "  return %s;\n", ExprString(t.Ret))
	}
	b.WriteString("}\n")
}

func formatStmts(b *strings.Builder, body []Stmt, depth int) {
	ind := strings.Repeat("  ", depth)
	for _, s := range body {
		switch x := s.(type) {
		case *Select:
			cols := "*"
			if !x.Star {
				cols = strings.Join(x.Fields, ", ")
			}
			fmt.Fprintf(b, "%s%s := select %s from %s where %s;%s\n",
				ind, x.Var, cols, x.Table, ExprString(x.Where), labelComment(x.Label))
		case *Update:
			if isDelete(x) {
				fmt.Fprintf(b, "%sdelete from %s where %s;%s\n",
					ind, x.Table, ExprString(x.Where), labelComment(x.Label))
				continue
			}
			fmt.Fprintf(b, "%supdate %s set %s where %s;%s\n",
				ind, x.Table, assignString(x.Sets), ExprString(x.Where), labelComment(x.Label))
		case *Insert:
			fmt.Fprintf(b, "%sinsert into %s values (%s);%s\n",
				ind, x.Table, assignString(x.Values), labelComment(x.Label))
		case *If:
			fmt.Fprintf(b, "%sif (%s) {\n", ind, ExprString(x.Cond))
			formatStmts(b, x.Then, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Iterate:
			fmt.Fprintf(b, "%siterate (%s) {\n", ind, ExprString(x.Count))
			formatStmts(b, x.Body, depth+1)
			fmt.Fprintf(b, "%s}\n", ind)
		case *Skip:
			fmt.Fprintf(b, "%sskip;\n", ind)
		}
	}
}

// isDelete recognizes the desugared form of `delete from R where φ`.
func isDelete(u *Update) bool {
	if len(u.Sets) != 1 || u.Sets[0].Field != AliveField {
		return false
	}
	b, ok := u.Sets[0].Expr.(*BoolLit)
	return ok && !b.Val
}

func labelComment(label string) string {
	if label == "" {
		return ""
	}
	return " // " + label
}

func assignString(as []Assign) string {
	parts := make([]string, len(as))
	for i, a := range as {
		parts[i] = fmt.Sprintf("%s = %s", a.Field, ExprString(a.Expr))
	}
	return strings.Join(parts, ", ")
}

// ExprString renders an expression in concrete syntax.
func ExprString(e Expr) string {
	switch x := e.(type) {
	case nil:
		return ""
	case *IntLit:
		return fmt.Sprintf("%d", x.Val)
	case *BoolLit:
		return fmt.Sprintf("%t", x.Val)
	case *StringLit:
		return fmt.Sprintf("%q", x.Val)
	case *Arg:
		return x.Name
	case *Binary:
		return fmt.Sprintf("(%s %s %s)", ExprString(x.L), x.Op, ExprString(x.R))
	case *IterVar:
		return "iter"
	case *ThisField:
		return x.Field
	case *FieldAt:
		if x.Index == nil {
			return fmt.Sprintf("%s.%s", x.Var, x.Field)
		}
		return fmt.Sprintf("%s.%s[%s]", x.Var, x.Field, ExprString(x.Index))
	case *Agg:
		return fmt.Sprintf("%s(%s.%s)", x.Fn, x.Var, x.Field)
	case *UUID:
		return "uuid()"
	default:
		return fmt.Sprintf("<%T>", e)
	}
}

// StmtString renders a single statement (without trailing newline) for
// diagnostics.
func StmtString(s Stmt) string {
	var b strings.Builder
	formatStmts(&b, []Stmt{s}, 0)
	return strings.TrimRight(b.String(), "\n")
}
