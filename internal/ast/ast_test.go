package ast

import "testing"

func sampleTxn() *Txn {
	// x := select a, b from T where id = k;
	// if (x.a > 0) { update T set b = x.b + 1 where id = k; }
	// return x.a;
	return &Txn{
		Name:   "t",
		Params: []*Param{{Name: "k", Type: TInt}},
		Body: []Stmt{
			&Select{Label: "S1", Var: "x", Fields: []string{"a", "b"}, Table: "T",
				Where: &Binary{Op: OpEq, L: &ThisField{Field: "id"}, R: &Arg{Name: "k"}}},
			&If{
				Cond: &Binary{Op: OpGt, L: &FieldAt{Var: "x", Field: "a"}, R: &IntLit{Val: 0}},
				Then: []Stmt{
					&Update{Label: "U1", Table: "T",
						Sets:  []Assign{{Field: "b", Expr: &Binary{Op: OpAdd, L: &FieldAt{Var: "x", Field: "b"}, R: &IntLit{Val: 1}}}},
						Where: &Binary{Op: OpEq, L: &ThisField{Field: "id"}, R: &Arg{Name: "k"}}},
				},
			},
		},
		Ret: &FieldAt{Var: "x", Field: "a"},
	}
}

func TestCommandsFlattening(t *testing.T) {
	cmds := Commands(sampleTxn().Body)
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2 (one nested in if)", len(cmds))
	}
	if cmds[0].CmdLabel() != "S1" || cmds[1].CmdLabel() != "U1" {
		t.Fatalf("labels = %q, %q", cmds[0].CmdLabel(), cmds[1].CmdLabel())
	}
}

func TestCloneIsDeep(t *testing.T) {
	orig := sampleTxn()
	cp := CloneTxn(orig)
	// Mutate clone; original must be untouched.
	cp.Body[0].(*Select).Fields[0] = "zz"
	cp.Params[0].Name = "q"
	Commands(cp.Body)[1].SetCmdLabel("U9")
	if orig.Body[0].(*Select).Fields[0] != "a" {
		t.Error("clone shares Fields slice with original")
	}
	if orig.Params[0].Name != "k" {
		t.Error("clone shares params with original")
	}
	if Commands(orig.Body)[1].CmdLabel() != "U1" {
		t.Error("clone shares nested command with original")
	}
}

func TestCloneProgramDeep(t *testing.T) {
	p := &Program{
		Schemas: []*Schema{{Name: "T", Fields: []*Field{{Name: "id", Type: TInt, PK: true}}}},
		Txns:    []*Txn{sampleTxn()},
	}
	cp := CloneProgram(p)
	cp.Schemas[0].Fields[0].Name = "other"
	cp.Txns[0].Name = "other"
	if p.Schemas[0].Fields[0].Name != "id" || p.Txns[0].Name != "t" {
		t.Error("CloneProgram is shallow")
	}
}

func TestEqualExpr(t *testing.T) {
	a := &Binary{Op: OpAdd, L: &FieldAt{Var: "x", Field: "b"}, R: &IntLit{Val: 1}}
	b := CloneExpr(a)
	if !EqualExpr(a, b) {
		t.Error("clone not equal to original")
	}
	c := &Binary{Op: OpAdd, L: &FieldAt{Var: "x", Field: "b"}, R: &IntLit{Val: 2}}
	if EqualExpr(a, c) {
		t.Error("different constants compare equal")
	}
	if !EqualExpr(nil, nil) {
		t.Error("nil != nil")
	}
	if EqualExpr(a, nil) {
		t.Error("expr == nil")
	}
	// uuid() is never equal, even to itself (fresh per evaluation).
	u := &UUID{}
	if EqualExpr(u, u) {
		t.Error("uuid() compared equal")
	}
}

func TestEqualStmt(t *testing.T) {
	t1 := sampleTxn()
	t2 := CloneTxn(t1)
	for i := range t1.Body {
		if !EqualStmt(t1.Body[i], t2.Body[i]) {
			t.Errorf("stmt %d not equal to its clone", i)
		}
	}
	if EqualStmt(t1.Body[0], t1.Body[1]) {
		t.Error("select equals if")
	}
}

func TestWhereEqualities(t *testing.T) {
	// this.a = k && this.b = 2 — well formed.
	w := &Binary{Op: OpAnd,
		L: &Binary{Op: OpEq, L: &ThisField{Field: "a"}, R: &Arg{Name: "k"}},
		R: &Binary{Op: OpEq, L: &ThisField{Field: "b"}, R: &IntLit{Val: 2}},
	}
	eqs, ok := WhereEqualities(w)
	if !ok || len(eqs) != 2 {
		t.Fatalf("eqs=%v ok=%v", eqs, ok)
	}
	// Disjunction is not well formed.
	bad := &Binary{Op: OpOr, L: w.L, R: w.R}
	if _, ok := WhereEqualities(bad); ok {
		t.Error("disjunction accepted as equality conjunction")
	}
	// Inequality is not well formed.
	bad2 := &Binary{Op: OpLt, L: &ThisField{Field: "a"}, R: &IntLit{Val: 3}}
	if _, ok := WhereEqualities(bad2); ok {
		t.Error("inequality accepted")
	}
	// Repeated field is not well formed.
	bad3 := &Binary{Op: OpAnd, L: w.L, R: w.L}
	if _, ok := WhereEqualities(bad3); ok {
		t.Error("repeated field accepted")
	}
	// this on the right-hand side is not well formed.
	bad4 := &Binary{Op: OpEq, L: &ThisField{Field: "a"}, R: &ThisField{Field: "b"}}
	if _, ok := WhereEqualities(bad4); ok {
		t.Error("field-to-field equality accepted")
	}
}

func TestWellFormedWhere(t *testing.T) {
	schema := &Schema{Name: "T", Fields: []*Field{
		{Name: "id", Type: TInt, PK: true},
		{Name: "n", Type: TInt},
	}}
	w := &Binary{Op: OpEq, L: &ThisField{Field: "id"}, R: &Arg{Name: "k"}}
	m, ok := WellFormedWhere(w, schema)
	if !ok {
		t.Fatal("pk equality rejected")
	}
	if _, ok := m["id"].(*Arg); !ok {
		t.Fatalf("pin for id = %T", m["id"])
	}
	// Constraining only a non-key field does not cover the pk.
	w2 := &Binary{Op: OpEq, L: &ThisField{Field: "n"}, R: &IntLit{Val: 1}}
	if _, ok := WellFormedWhere(w2, schema); ok {
		t.Error("non-pk-covering clause accepted")
	}
}

func TestCommandAccess(t *testing.T) {
	schema := &Schema{Name: "T", Fields: []*Field{
		{Name: "id", Type: TInt, PK: true},
		{Name: "a", Type: TInt},
		{Name: "b", Type: TInt},
	}}
	tx := sampleTxn()
	cmds := Commands(tx.Body)
	selAcc := CommandAccess(cmds[0], schema)
	if len(selAcc.Reads) != 3 { // id (where) + a + b
		t.Fatalf("select reads = %v", selAcc.Reads)
	}
	updAcc := CommandAccess(cmds[1], schema)
	if len(updAcc.Writes) != 1 || updAcc.Writes[0] != "b" {
		t.Fatalf("update writes = %v", updAcc.Writes)
	}
	if len(updAcc.Reads) != 1 || updAcc.Reads[0] != "id" {
		t.Fatalf("update reads = %v", updAcc.Reads)
	}
	// SELECT * reads every declared field.
	star := &Select{Var: "x", Star: true, Table: "T", Where: &Binary{Op: OpEq, L: &ThisField{Field: "id"}, R: &IntLit{Val: 1}}}
	if got := CommandAccess(star, schema); len(got.Reads) != 3 {
		t.Fatalf("star reads = %v", got.Reads)
	}
	// INSERT writes alive in addition to its value fields.
	ins := &Insert{Table: "T", Values: []Assign{{Field: "id", Expr: &IntLit{Val: 1}}}}
	insAcc := CommandAccess(ins, schema)
	found := false
	for _, w := range insAcc.Writes {
		if w == AliveField {
			found = true
		}
	}
	if !found {
		t.Fatalf("insert writes = %v, want alive included", insAcc.Writes)
	}
}

func TestMapStmtsDeleteAndReplace(t *testing.T) {
	tx := sampleTxn()
	// Delete all selects, duplicate all updates.
	out := MapStmts(tx.Body, func(s Stmt) []Stmt {
		switch s.(type) {
		case *Select:
			return nil
		case *Update:
			return []Stmt{s, CloneStmt(s)}
		}
		return []Stmt{s}
	})
	cmds := Commands(out)
	if len(cmds) != 2 {
		t.Fatalf("commands after map = %d, want 2 updates", len(cmds))
	}
	for _, c := range cmds {
		if _, ok := c.(*Update); !ok {
			t.Fatalf("leftover %T", c)
		}
	}
}

func TestMapExprRewrite(t *testing.T) {
	e := &Binary{Op: OpAdd, L: &FieldAt{Var: "x", Field: "old"}, R: &IntLit{Val: 1}}
	out := MapExpr(e, func(x Expr) Expr {
		if fa, ok := x.(*FieldAt); ok && fa.Field == "old" {
			return &FieldAt{Var: fa.Var, Field: "new", Index: fa.Index}
		}
		return x
	})
	want := "(x.new + 1)"
	if got := ExprString(out); got != want {
		t.Fatalf("rewritten = %s, want %s", got, want)
	}
	// Original untouched.
	if ExprString(e) != "(x.old + 1)" {
		t.Fatal("MapExpr mutated its input")
	}
}

func TestVarsRead(t *testing.T) {
	e := &Binary{Op: OpAdd,
		L: &Agg{Fn: AggSum, Var: "x", Field: "v"},
		R: &FieldAt{Var: "y", Field: "w"},
	}
	vars := VarsRead(e)
	if !vars["x"] || !vars["y"] || len(vars) != 2 {
		t.Fatalf("vars = %v", vars)
	}
}

func TestSchemaAliveImplicit(t *testing.T) {
	s := &Schema{Name: "T", Fields: []*Field{{Name: "id", Type: TInt, PK: true}}}
	f := s.Field(AliveField)
	if f == nil || f.Type != TBool {
		t.Fatalf("alive field = %+v", f)
	}
	if !s.HasField(AliveField) {
		t.Error("HasField(alive) = false")
	}
}
