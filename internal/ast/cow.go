package ast

// Copy-on-write (path-copying) helpers (DESIGN.md §10). The refactoring
// engine edits programs by rebuilding only the spine from the edited node
// up to the Program header, sharing every untouched sibling: a speculative
// merge probe costs O(depth of the edited command), not O(program). The
// helpers here are the primitives: COW variants of MapExpr/MapStmts that
// return their input unchanged (pointer-identical) when the rewriter
// touches nothing, and shallow Program/Txn replacement.

// WithTxn returns a program equal to p with the transaction at index i
// replaced by nt. Schemas and all other transactions are shared.
func WithTxn(p *Program, i int, nt *Txn) *Program {
	txns := make([]*Txn, len(p.Txns))
	copy(txns, p.Txns)
	txns[i] = nt
	return &Program{Schemas: p.Schemas, Txns: txns}
}

// WithSchemas returns a program equal to p with the schema list replaced;
// transactions are shared.
func WithSchemas(p *Program, schemas []*Schema) *Program {
	return &Program{Schemas: schemas, Txns: p.Txns}
}

// TxnIndex returns the index of the transaction with the given name, or -1.
func TxnIndex(p *Program, name string) int {
	for i, t := range p.Txns {
		if t.Name == name {
			return i
		}
	}
	return -1
}

// MapExprCOW rebuilds e bottom-up like MapExpr, but allocates a new
// interior node only when a child actually changed. fn must return its
// argument (pointer-identical) to signal "unchanged"; the result is then
// pointer-identical to e and shares every node.
func MapExprCOW(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		l := MapExprCOW(x.L, fn)
		r := MapExprCOW(x.R, fn)
		if l != x.L || r != x.R {
			e = &Binary{Op: x.Op, L: l, R: r}
		}
	case *FieldAt:
		if idx := MapExprCOW(x.Index, fn); idx != x.Index {
			e = &FieldAt{Var: x.Var, Field: x.Field, Index: idx}
		}
	}
	return fn(e)
}

// MapStmtsCOW rebuilds body via fn like MapStmts — fn may delete (nil),
// keep, replace, or expand a statement — but returns (body, false) when
// nothing changed, sharing the input slice. fn signals "unchanged" by
// returning a one-element slice holding the exact statement it was given.
// Control bodies are rewritten first, and their wrappers are only
// re-allocated when the nested body changed.
func MapStmtsCOW(body []Stmt, fn func(Stmt) []Stmt) ([]Stmt, bool) {
	var out []Stmt
	changed := false
	for i, s := range body {
		switch x := s.(type) {
		case *If:
			if then, c := MapStmtsCOW(x.Then, fn); c {
				s = &If{Cond: x.Cond, Then: then}
			}
		case *Iterate:
			if b, c := MapStmtsCOW(x.Body, fn); c {
				s = &Iterate{Count: x.Count, Body: b}
			}
		}
		repl := fn(s)
		same := s == body[i] && len(repl) == 1 && repl[0] == s
		if !changed && !same {
			out = append(out, body[:i]...)
			changed = true
		}
		if changed {
			out = append(out, repl...)
		}
	}
	if !changed {
		return body, false
	}
	return out, true
}

// MapTxnExprsCOW applies an expression rewriter to every expression of t
// (command where clauses, assignment right-hand sides, control conditions,
// and the return expression), rebuilding only the statements whose
// expressions changed. Returns (t, false) when nothing changed.
func MapTxnExprsCOW(t *Txn, rewrite func(Expr) Expr) (*Txn, bool) {
	body, bodyChanged := MapStmtsCOW(t.Body, func(s Stmt) []Stmt {
		return []Stmt{rewriteStmtExprs(s, rewrite)}
	})
	ret := rewrite(t.Ret)
	if !bodyChanged && ret == t.Ret {
		return t, false
	}
	return &Txn{Name: t.Name, Params: t.Params, Body: body, Ret: ret}, true
}

// rewriteStmtExprs returns s with its directly embedded expressions
// rewritten, sharing s when none changed.
func rewriteStmtExprs(s Stmt, rewrite func(Expr) Expr) Stmt {
	switch x := s.(type) {
	case *Select:
		if w := rewrite(x.Where); w != x.Where {
			return &Select{Label: x.Label, Var: x.Var, Star: x.Star, Fields: x.Fields, Table: x.Table, Where: w}
		}
	case *Update:
		w := rewrite(x.Where)
		sets, setsChanged := rewriteAssignsCOW(x.Sets, rewrite)
		if w != x.Where || setsChanged {
			return &Update{Label: x.Label, Table: x.Table, Sets: sets, Where: w}
		}
	case *Insert:
		if values, changed := rewriteAssignsCOW(x.Values, rewrite); changed {
			return &Insert{Label: x.Label, Table: x.Table, Values: values}
		}
	case *If:
		if c := rewrite(x.Cond); c != x.Cond {
			return &If{Cond: c, Then: x.Then}
		}
	case *Iterate:
		if c := rewrite(x.Count); c != x.Count {
			return &Iterate{Count: c, Body: x.Body}
		}
	}
	return s
}

// rewriteAssignsCOW rewrites assignment expressions, sharing the input
// slice when none changed.
func rewriteAssignsCOW(as []Assign, rewrite func(Expr) Expr) ([]Assign, bool) {
	for i := range as {
		if e := rewrite(as[i].Expr); e != as[i].Expr {
			out := make([]Assign, len(as))
			copy(out, as[:i])
			out[i] = Assign{Field: as[i].Field, Expr: e}
			for j := i + 1; j < len(as); j++ {
				out[j] = Assign{Field: as[j].Field, Expr: rewrite(as[j].Expr)}
			}
			return out, true
		}
	}
	return as, false
}
