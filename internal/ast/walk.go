package ast

// WalkExpr calls fn on e and every sub-expression of e, pre-order. If fn
// returns false the walk does not descend into the expression's children.
func WalkExpr(e Expr, fn func(Expr) bool) {
	if e == nil || !fn(e) {
		return
	}
	switch x := e.(type) {
	case *Binary:
		WalkExpr(x.L, fn)
		WalkExpr(x.R, fn)
	case *FieldAt:
		WalkExpr(x.Index, fn)
	}
}

// WalkStmts calls fn on every statement in body, pre-order, descending into
// control-command bodies. If fn returns false the walk does not descend into
// that statement's children.
func WalkStmts(body []Stmt, fn func(Stmt) bool) {
	for _, s := range body {
		walkStmt(s, fn)
	}
}

func walkStmt(s Stmt, fn func(Stmt) bool) {
	if s == nil || !fn(s) {
		return
	}
	switch x := s.(type) {
	case *If:
		WalkStmts(x.Then, fn)
	case *Iterate:
		WalkStmts(x.Body, fn)
	}
}

// Commands returns every database command in body in program order,
// including those nested inside if/iterate bodies.
func Commands(body []Stmt) []DBCommand {
	var out []DBCommand
	WalkStmts(body, func(s Stmt) bool {
		if c, ok := s.(DBCommand); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// StmtExprs returns the expressions directly embedded in s (not those of
// nested statements).
func StmtExprs(s Stmt) []Expr {
	var out []Expr
	add := func(e Expr) {
		if e != nil {
			out = append(out, e)
		}
	}
	switch x := s.(type) {
	case *Select:
		add(x.Where)
	case *Update:
		add(x.Where)
		for _, a := range x.Sets {
			add(a.Expr)
		}
	case *Insert:
		for _, a := range x.Values {
			add(a.Expr)
		}
	case *If:
		add(x.Cond)
	case *Iterate:
		add(x.Count)
	}
	return out
}

// ExprsInTxn returns every expression appearing anywhere in the transaction:
// statement expressions (recursively through control bodies) plus the return
// expression.
func ExprsInTxn(t *Txn) []Expr {
	var out []Expr
	WalkStmts(t.Body, func(s Stmt) bool {
		out = append(out, StmtExprs(s)...)
		return true
	})
	if t.Ret != nil {
		out = append(out, t.Ret)
	}
	return out
}

// VarsRead returns the names of the local variables whose query results are
// read by expression e (via at/agg accesses).
func VarsRead(e Expr) map[string]bool {
	vars := map[string]bool{}
	WalkExpr(e, func(x Expr) bool {
		switch v := x.(type) {
		case *FieldAt:
			vars[v.Var] = true
		case *Agg:
			vars[v.Var] = true
		}
		return true
	})
	return vars
}

// WhereFields returns the set of fields φ_fld referenced via this.f in a
// where clause.
func WhereFields(e Expr) []string {
	seen := map[string]bool{}
	var out []string
	WalkExpr(e, func(x Expr) bool {
		if tf, ok := x.(*ThisField); ok && !seen[tf.Field] {
			seen[tf.Field] = true
			out = append(out, tf.Field)
		}
		return true
	})
	return out
}

// MapExpr rebuilds e bottom-up, replacing each node by fn's result. fn is
// applied to the node after its children have been rewritten. A nil e maps
// to nil.
func MapExpr(e Expr, fn func(Expr) Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		e = &Binary{Op: x.Op, L: MapExpr(x.L, fn), R: MapExpr(x.R, fn)}
	case *FieldAt:
		e = &FieldAt{Var: x.Var, Field: x.Field, Index: MapExpr(x.Index, fn)}
	}
	return fn(e)
}

// MapStmts rebuilds every statement in body via fn, descending into control
// bodies first so fn sees statements whose children are already rewritten.
// fn may return nil to delete a statement, a single statement, or several.
func MapStmts(body []Stmt, fn func(Stmt) []Stmt) []Stmt {
	var out []Stmt
	for _, s := range body {
		switch x := s.(type) {
		case *If:
			s = &If{Cond: x.Cond, Then: MapStmts(x.Then, fn)}
		case *Iterate:
			s = &Iterate{Count: x.Count, Body: MapStmts(x.Body, fn)}
		}
		out = append(out, fn(s)...)
	}
	return out
}
