package ast

// This file defines the field-access views of database commands used by the
// anomaly detector (§3.2: access pairs are command × field-set pairs) and
// the where-clause well-formedness analysis required by the redirect rule
// (§4.2.1: φ must be a conjunction of equality constraints covering the
// primary key).

// Access describes the fields a database command reads and writes within
// its table, relative to a schema (needed to resolve SELECT *).
type Access struct {
	Table string
	// Reads are fields read: where-clause fields plus selected fields.
	Reads []string
	// Writes are fields written by UPDATE/INSERT.
	Writes []string
}

// CommandAccess computes the Access of a database command. schema may be
// nil when the command's table is unknown; SELECT * then yields no
// column reads (where-clause reads are still reported).
func CommandAccess(c DBCommand, schema *Schema) Access {
	switch x := c.(type) {
	case *Select:
		a := Access{Table: x.Table, Reads: WhereFields(x.Where)}
		if x.Star {
			if schema != nil {
				for _, f := range schema.Fields {
					a.Reads = appendUnique(a.Reads, f.Name)
				}
			}
		} else {
			for _, f := range x.Fields {
				a.Reads = appendUnique(a.Reads, f)
			}
		}
		return a
	case *Update:
		a := Access{Table: x.Table, Reads: WhereFields(x.Where)}
		for _, s := range x.Sets {
			a.Writes = appendUnique(a.Writes, s.Field)
		}
		return a
	case *Insert:
		a := Access{Table: x.Table}
		for _, s := range x.Values {
			a.Writes = appendUnique(a.Writes, s.Field)
		}
		a.Writes = appendUnique(a.Writes, AliveField)
		return a
	default:
		return Access{}
	}
}

func appendUnique(xs []string, x string) []string {
	for _, y := range xs {
		if y == x {
			return xs
		}
	}
	return append(xs, x)
}

// WhereEquality is one conjunct this.f = e of a well-formed where clause.
type WhereEquality struct {
	Field string
	Expr  Expr
}

// WhereEqualities decomposes φ into equality conjuncts if φ has the shape
// (this.f1 = e1) ∧ ... ∧ (this.fn = en) with no field repeated and no this.f
// on the right-hand side. ok is false for any other shape (disjunctions,
// inequalities, field-to-field comparisons).
func WhereEqualities(e Expr) (eqs []WhereEquality, ok bool) {
	if e == nil {
		return nil, false
	}
	var collect func(Expr) bool
	seen := map[string]bool{}
	collect = func(x Expr) bool {
		b, isBin := x.(*Binary)
		if !isBin {
			return false
		}
		switch b.Op {
		case OpAnd:
			return collect(b.L) && collect(b.R)
		case OpEq:
			tf, isField := b.L.(*ThisField)
			if !isField || seen[tf.Field] || exprUsesThis(b.R) {
				return false
			}
			seen[tf.Field] = true
			eqs = append(eqs, WhereEquality{Field: tf.Field, Expr: b.R})
			return true
		default:
			return false
		}
	}
	if !collect(e) {
		return nil, false
	}
	return eqs, true
}

func exprUsesThis(e Expr) bool {
	found := false
	WalkExpr(e, func(x Expr) bool {
		if _, ok := x.(*ThisField); ok {
			found = true
		}
		return !found
	})
	return found
}

// WellFormedWhere reports whether φ is well-formed with respect to schema
// (§4.2.1): a conjunction of equality constraints that covers every
// primary-key field of the schema. It returns the φ[f]exp mapping from
// constrained field to its pinning expression.
func WellFormedWhere(e Expr, schema *Schema) (map[string]Expr, bool) {
	eqs, ok := WhereEqualities(e)
	if !ok {
		return nil, false
	}
	m := map[string]Expr{}
	for _, q := range eqs {
		m[q.Field] = q.Expr
	}
	for _, pk := range schema.PrimaryKey() {
		if _, ok := m[pk.Name]; !ok {
			return nil, false
		}
	}
	return m, true
}

// EqualityOn returns the expression pinning field f in φ, if φ decomposes
// into equality conjuncts and constrains f; otherwise nil.
func EqualityOn(e Expr, f string) Expr {
	eqs, ok := WhereEqualities(e)
	if !ok {
		return nil
	}
	for _, q := range eqs {
		if q.Field == f {
			return q.Expr
		}
	}
	return nil
}
