package ast

import (
	"fmt"
	"sync"
	"testing"
)

// Parallel-interning microbenchmarks (DESIGN.md §15): detection workers
// intern the same small population of expressions over and over while
// building pair encoders, so the steady-state cost is a hash + lock +
// bucket probe plus the occasional canonicalizing rebuild.
// BenchmarkInternParallel measures the sharded table that ships;
// BenchmarkInternParallelMutex re-implements the pre-shard single-mutex
// table locally so the two can be compared on a multi-core machine (the
// scaling claim is sharded ≥4x mutex at 8 procs). Both use a fixed
// 8-goroutine fan-out rather than b.RunParallel so allocs/op — gated by
// BENCH_allocs.json at -benchtime 1x — do not depend on GOMAXPROCS.

const (
	internBenchWorkers = 8
	internBenchOps     = 1024 // interns per worker per benchmark op
)

// internWorkingSet builds n distinct expression trees shaped like the
// where-clauses the encoder interns: comparisons over fields, args, and
// literals. The trees deliberately share sub-shapes (8 field names, one
// arg) so steady-state interning exercises the canonicalizing-rebuild
// path, not just pointer-identity hits.
func internWorkingSet(n int) []Expr {
	set := make([]Expr, n)
	for i := range set {
		set[i] = &Binary{
			Op: OpLt,
			L:  &ThisField{Field: fmt.Sprintf("f%d", i%8)},
			R: &Binary{
				Op: OpAdd,
				L:  &Arg{Name: "a"},
				R:  &IntLit{Val: int64(i)},
			},
		}
	}
	return set
}

func BenchmarkInternParallel(b *testing.B) {
	set := internWorkingSet(256)
	for _, e := range set {
		Intern(e) // pre-populate: steady state is lookup + rebuild, not insert
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for w := 0; w < internBenchWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < internBenchOps; i++ {
					Intern(set[(i+w)&255])
				}
			}(w)
		}
		wg.Wait()
	}
}

// mutexConsTable is the pre-shard design: one lock in front of the whole
// bucket map. Kept here (test-only) as the benchmark baseline.
type mutexConsTable struct {
	sync.Mutex
	m map[uint64][]Expr
	n int
}

func (t *mutexConsTable) intern(e Expr) Expr {
	if e == nil {
		return nil
	}
	switch x := e.(type) {
	case *Binary:
		l, r := t.intern(x.L), t.intern(x.R)
		if l != x.L || r != x.R {
			e = &Binary{Op: x.Op, L: l, R: r}
		}
	case *FieldAt:
		if idx := t.intern(x.Index); idx != x.Index {
			e = &FieldAt{Var: x.Var, Field: x.Field, Index: idx}
		}
	}
	h := HashExpr(e)
	if h&hashUUID != 0 {
		return e
	}
	t.Lock()
	defer t.Unlock()
	for _, c := range t.m[h] {
		if EqualExpr(c, e) {
			return c
		}
	}
	if t.n < consTableMax {
		t.m[h] = append(t.m[h], e)
		t.n++
	}
	return e
}

func BenchmarkInternParallelMutex(b *testing.B) {
	tab := &mutexConsTable{m: make(map[uint64][]Expr)}
	set := internWorkingSet(256)
	for _, e := range set {
		tab.intern(e)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for n := 0; n < b.N; n++ {
		var wg sync.WaitGroup
		for w := 0; w < internBenchWorkers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				for i := 0; i < internBenchOps; i++ {
					tab.intern(set[(i+w)&255])
				}
			}(w)
		}
		wg.Wait()
	}
}

// TestInternParallelCanonical hammers the sharded table from many
// goroutines with structurally equal but physically distinct trees and
// asserts every goroutine observes the same canonical node per shape.
func TestInternParallelCanonical(t *testing.T) {
	const workers = 8
	const shapes = 64
	results := make([][]Expr, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			got := make([]Expr, shapes)
			for i, e := range internWorkingSet(shapes) {
				got[i] = Intern(e)
			}
			results[w] = got
		}(w)
	}
	wg.Wait()
	for w := 1; w < workers; w++ {
		for i := range results[0] {
			if results[w][i] != results[0][i] {
				t.Fatalf("worker %d shape %d: got a different canonical node than worker 0", w, i)
			}
		}
	}
}
