package ast

import "sync/atomic"

// Structural hashing (DESIGN.md §10). Every statement, expression, and
// transaction node carries a memoized 64-bit structural hash: the first
// HashX call walks the subtree, every later call is an atomic load. The
// memo is sound because nodes are immutable once shared (see the package
// comment): the copy-on-write refactoring engine builds new nodes instead
// of mutating, so a node pointer is a stable identity for its content and
// unchanged subtrees hash in O(1) across the repair pipeline's detection
// passes.
//
// Layout of a hash word: bit 63 (hashUUID) marks subtrees containing a
// uuid() expression — such trees are never structurally equal (uuid() is
// fresh per evaluation), so equality fast paths and the cons table skip
// them. The remaining bits are an FNV-1a-style digest. A computed hash is
// never 0; 0 is the "not yet computed" sentinel.

// memoHash is the per-node memo slot. It is accessed atomically so that a
// first hash computed concurrently by two goroutines races benignly (both
// write the same value) and passes the race detector.
type memoHash struct{ v atomic.Uint64 }

func (m *memoHash) load() uint64   { return m.v.Load() }
func (m *memoHash) store(h uint64) { m.v.Store(h) }
func (m *memoHash) reset()         { m.v.Store(0) }

const (
	hashSeed   uint64 = 14695981039346656037 // FNV-64 offset basis
	hashPrime  uint64 = 1099511628211        // FNV-64 prime
	hashUUID   uint64 = 1 << 63              // subtree contains uuid()
	hashDigest        = ^hashUUID            // digest bits of a hash word
)

// Per-node-kind tags keep distinct shapes with equal leaves distinct.
const (
	tagNil uint64 = iota + 0x9e37
	tagIntLit
	tagBoolLit
	tagStringLit
	tagArg
	tagBinary
	tagIterVar
	tagThisField
	tagFieldAt
	tagAgg
	tagUUID
	tagSelect
	tagUpdate
	tagInsert
	tagIf
	tagIterate
	tagSkip
	tagTxn
	tagSchema
	tagField
	tagParam
	tagAssign
	tagRet
	tagProgram
)

func hashByte(h uint64, b byte) uint64 { return (h ^ uint64(b)) * hashPrime }

func hashUint(h, v uint64) uint64 {
	for i := 0; i < 8; i++ {
		h = hashByte(h, byte(v))
		v >>= 8
	}
	return h
}

// hashString digests s with a terminator so consecutive strings keep
// distinct boundaries ("ab","c" vs "a","bc").
func hashString(h uint64, s string) uint64 {
	for i := 0; i < len(s); i++ {
		h = hashByte(h, s[i])
	}
	return hashByte(h, 0xff)
}

// hashSub folds a child hash word's digest bits into h and accumulates its
// uuid bit into *uuid. Intermediate FNV products may set bit 63, so the
// uuid flag is tracked out of band and stamped onto the digest by finish.
func hashSub(h, child uint64, uuid *uint64) uint64 {
	*uuid |= child & hashUUID
	return hashUint(h, child&hashDigest)
}

// finish masks the accumulator to digest bits, stamps the uuid flag, and
// normalizes so a computed hash is never the 0 sentinel.
func finish(h, uuid uint64) uint64 {
	h = h&hashDigest | uuid
	if h&hashDigest == 0 {
		h |= 1
	}
	return h
}

// HashExpr returns the memoized structural hash of e; nil hashes to a
// fixed value. Two expressions with equal hashes are structurally equal
// with overwhelming probability (64-bit digest); unequal hashes are
// definitely structurally different.
func HashExpr(e Expr) uint64 {
	switch x := e.(type) {
	case nil:
		return finish(hashUint(hashSeed, tagNil), 0)
	case *IntLit:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := finish(hashUint(hashUint(hashSeed, tagIntLit), uint64(x.Val)), 0)
		x.memo.store(h)
		return h
	case *BoolLit:
		if h := x.memo.load(); h != 0 {
			return h
		}
		v := uint64(0)
		if x.Val {
			v = 1
		}
		h := finish(hashUint(hashUint(hashSeed, tagBoolLit), v), 0)
		x.memo.store(h)
		return h
	case *StringLit:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := finish(hashString(hashUint(hashSeed, tagStringLit), x.Val), 0)
		x.memo.store(h)
		return h
	case *Arg:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := finish(hashString(hashUint(hashSeed, tagArg), x.Name), 0)
		x.memo.store(h)
		return h
	case *Binary:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashUint(hashUint(hashSeed, tagBinary), uint64(x.Op))
		h = hashSub(h, HashExpr(x.L), &uuid)
		h = hashSub(h, HashExpr(x.R), &uuid)
		h = finish(h, uuid)
		x.memo.store(h)
		return h
	case *IterVar:
		return finish(hashUint(hashSeed, tagIterVar), 0)
	case *ThisField:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := finish(hashString(hashUint(hashSeed, tagThisField), x.Field), 0)
		x.memo.store(h)
		return h
	case *FieldAt:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashString(hashString(hashUint(hashSeed, tagFieldAt), x.Var), x.Field)
		h = hashSub(h, HashExpr(x.Index), &uuid)
		h = finish(h, uuid)
		x.memo.store(h)
		return h
	case *Agg:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := hashUint(hashUint(hashSeed, tagAgg), uint64(x.Fn))
		h = finish(hashString(hashString(h, x.Var), x.Field), 0)
		x.memo.store(h)
		return h
	case *UUID:
		return finish(hashUint(hashSeed, tagUUID), hashUUID)
	default:
		return finish(hashUint(hashSeed, tagNil), 0)
	}
}

// memoizedExprHash returns e's hash if it has already been computed and
// memoized, else 0. It never computes: EqualExpr's pointer fast path must
// stay allocation- and walk-free.
func memoizedExprHash(e Expr) uint64 {
	switch x := e.(type) {
	case *IntLit:
		return x.memo.load()
	case *BoolLit:
		return x.memo.load()
	case *StringLit:
		return x.memo.load()
	case *Arg:
		return x.memo.load()
	case *Binary:
		return x.memo.load()
	case *ThisField:
		return x.memo.load()
	case *FieldAt:
		return x.memo.load()
	case *Agg:
		return x.memo.load()
	default:
		return 0
	}
}

// HashStmt returns the memoized structural hash of s, including command
// labels (anomaly reports address commands by label, so two programs that
// differ only in labels must fingerprint differently).
func HashStmt(s Stmt) uint64 {
	switch x := s.(type) {
	case nil:
		return finish(hashUint(hashSeed, tagNil), 0)
	case *Select:
		if h := x.memo.load(); h != 0 {
			return h
		}
		h := hashString(hashUint(hashSeed, tagSelect), x.Label)
		h = hashString(h, x.Var)
		if x.Star {
			h = hashByte(h, 1)
		} else {
			h = hashByte(h, 0)
		}
		for _, f := range x.Fields {
			h = hashString(h, f)
		}
		h = hashString(h, x.Table)
		var uuid uint64
		h = finish(hashSub(h, HashExpr(x.Where), &uuid), uuid)
		x.memo.store(h)
		return h
	case *Update:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashString(hashUint(hashSeed, tagUpdate), x.Label)
		h = hashString(h, x.Table)
		h = hashAssigns(h, x.Sets, &uuid)
		h = finish(hashSub(h, HashExpr(x.Where), &uuid), uuid)
		x.memo.store(h)
		return h
	case *Insert:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashString(hashUint(hashSeed, tagInsert), x.Label)
		h = hashString(h, x.Table)
		h = finish(hashAssigns(h, x.Values, &uuid), uuid)
		x.memo.store(h)
		return h
	case *If:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashSub(hashUint(hashSeed, tagIf), HashExpr(x.Cond), &uuid)
		h = finish(hashStmts(h, x.Then, &uuid), uuid)
		x.memo.store(h)
		return h
	case *Iterate:
		if h := x.memo.load(); h != 0 {
			return h
		}
		var uuid uint64
		h := hashSub(hashUint(hashSeed, tagIterate), HashExpr(x.Count), &uuid)
		h = finish(hashStmts(h, x.Body, &uuid), uuid)
		x.memo.store(h)
		return h
	case *Skip:
		return finish(hashUint(hashSeed, tagSkip), 0)
	default:
		return finish(hashUint(hashSeed, tagNil), 0)
	}
}

func hashAssigns(h uint64, as []Assign, uuid *uint64) uint64 {
	for _, a := range as {
		h = hashUint(h, tagAssign)
		h = hashString(h, a.Field)
		h = hashSub(h, HashExpr(a.Expr), uuid)
	}
	return h
}

func hashStmts(h uint64, body []Stmt, uuid *uint64) uint64 {
	for _, s := range body {
		h = hashSub(h, HashStmt(s), uuid)
	}
	return h
}

// HashTxn returns the memoized structural hash of a transaction: name,
// parameters, body (labels included), and return expression. The repair
// pipeline's detection passes fingerprint transactions with it; because
// refactoring is copy-on-write, an untouched transaction keeps its node —
// and thus its memo — so re-fingerprinting it costs one atomic load.
func HashTxn(t *Txn) uint64 {
	if h := t.memo.load(); h != 0 {
		return h
	}
	h := hashString(hashUint(hashSeed, tagTxn), t.Name)
	for _, p := range t.Params {
		h = hashUint(h, tagParam)
		h = hashString(h, p.Name)
		h = hashUint(h, uint64(p.Type))
	}
	var uuid uint64
	h = hashStmts(h, t.Body, &uuid)
	h = hashUint(h, tagRet)
	h = finish(hashSub(h, HashExpr(t.Ret), &uuid), uuid)
	t.memo.store(h)
	return h
}

// HashSchema digests a schema declaration. Schemas are small and — unlike
// statements — still mutated in place by the deep-clone legacy path
// (GCSchemas), so their hash is recomputed on every call rather than
// memoized.
func HashSchema(s *Schema) uint64 {
	h := hashString(hashUint(hashSeed, tagSchema), s.Name)
	for _, f := range s.Fields {
		h = hashUint(h, tagField)
		h = hashString(h, f.Name)
		h = hashUint(h, uint64(f.Type))
		if f.PK {
			h = hashByte(h, 1)
		} else {
			h = hashByte(h, 0)
		}
	}
	return finish(h, 0)
}

// HashProgram digests a whole program (schemas then transactions). Not
// memoized: Program headers are rebuilt freely by the COW engine.
func HashProgram(p *Program) uint64 {
	h := hashUint(hashSeed, tagProgram)
	for _, s := range p.Schemas {
		h = hashUint(h, HashSchema(s))
	}
	var uuid uint64
	for _, t := range p.Txns {
		h = hashSub(h, HashTxn(t), &uuid)
	}
	return finish(h, uuid)
}
