// Package ast defines the abstract syntax of the database-program DSL from
// the paper's Figure 5: programs are a set of relational schemas plus a set
// of named transactions whose bodies are sequences of SELECT/UPDATE/INSERT
// commands and control commands (if, iterate).
//
// Every schema implicitly contains a boolean field named Alive ("alive")
// which models row presence; INSERT and DELETE are definable in terms of
// updates to it (paper §3). Commands carry stable labels (S1, U1, ...)
// assigned by the parser and used in anomaly reports.
//
// # Immutability and hash-consing
//
// Statement, expression, and transaction nodes carry a lazily computed,
// memoized structural hash (see hash.go) and may be freely shared between
// programs: the refactoring engine is copy-on-write, so a refactored
// program aliases every node the refactoring did not touch. The contract
// (DESIGN.md §10) is that a node must not be mutated once it is reachable
// from a program handed to detection, repair, or another long-lived
// consumer; builders (the parser, progen, tests) may mutate nodes freely
// while the tree is still private to them. CloneProgram remains available
// for callers that need an unshared deep copy (the deep-clone differential
// oracle in internal/refactor uses it).
package ast

import "fmt"

// AliveField is the name of the implicit presence field carried by every
// schema (paper §3: "Every schema includes a special Boolean field, alive").
const AliveField = "alive"

// LogIDField is the reserved primary-key suffix field introduced on logging
// schemas by the logger refactoring rule (paper §4.2.2).
const LogIDField = "log_id"

// Type is the type of a field, parameter, or expression.
type Type int

// The DSL's value types.
const (
	TInvalid Type = iota
	TInt
	TBool
	TString
)

func (t Type) String() string {
	switch t {
	case TInt:
		return "int"
	case TBool:
		return "bool"
	case TString:
		return "string"
	default:
		return "invalid"
	}
}

// Program is a database program P = (R̄, T̄): schemas plus transactions.
type Program struct {
	Schemas []*Schema
	Txns    []*Txn
}

// Schema returns the schema with the given name, or nil.
func (p *Program) Schema(name string) *Schema {
	for _, s := range p.Schemas {
		if s.Name == name {
			return s
		}
	}
	return nil
}

// Txn returns the transaction with the given name, or nil.
func (p *Program) Txn(name string) *Txn {
	for _, t := range p.Txns {
		if t.Name == name {
			return t
		}
	}
	return nil
}

// Schema is a named relation schema ρ : f̄ with a non-empty primary key.
type Schema struct {
	Name   string
	Fields []*Field
}

// Field returns the field with the given name, or nil. The implicit alive
// field is visible through this accessor.
func (s *Schema) Field(name string) *Field {
	for _, f := range s.Fields {
		if f.Name == name {
			return f
		}
	}
	if name == AliveField {
		return aliveField
	}
	return nil
}

var aliveField = &Field{Name: AliveField, Type: TBool}

// HasField reports whether the schema declares the field (or it is alive).
func (s *Schema) HasField(name string) bool { return s.Field(name) != nil }

// PrimaryKey returns the fields marked as primary key, in declaration order.
func (s *Schema) PrimaryKey() []*Field {
	var pk []*Field
	for _, f := range s.Fields {
		if f.PK {
			pk = append(pk, f)
		}
	}
	return pk
}

// NonKeyFields returns the declared fields that are not part of the key.
func (s *Schema) NonKeyFields() []*Field {
	var out []*Field
	for _, f := range s.Fields {
		if !f.PK {
			out = append(out, f)
		}
	}
	return out
}

// Field is a single schema field; PK marks primary-key membership.
type Field struct {
	Name string
	Type Type
	PK   bool
}

// Txn is a named transaction t(ā){c̄; return e}.
type Txn struct {
	Name   string
	Params []*Param
	Body   []Stmt
	Ret    Expr // nil when the transaction returns nothing

	memo memoHash
}

// Param returns the parameter with the given name, or nil.
func (t *Txn) Param(name string) *Param {
	for _, p := range t.Params {
		if p.Name == name {
			return p
		}
	}
	return nil
}

// Param is a typed transaction argument.
type Param struct {
	Name string
	Type Type
}

// Stmt is a statement: a database command or a control command.
type Stmt interface {
	isStmt()
}

// DBCommand is implemented by the three database commands (SELECT, UPDATE,
// INSERT); control commands do not implement it.
type DBCommand interface {
	Stmt
	// CmdLabel returns the stable label (S1, U1, ...) of the command.
	CmdLabel() string
	// SetCmdLabel updates the stable label.
	SetCmdLabel(string)
	// TableName returns the table the command operates on.
	TableName() string
}

// Select is x := SELECT f̄ FROM R WHERE φ. Star selects all fields.
type Select struct {
	Label  string
	Var    string
	Star   bool
	Fields []string
	Table  string
	Where  Expr

	memo memoHash
}

// Update is UPDATE R SET f̄ = ē WHERE φ.
type Update struct {
	Label string
	Table string
	Sets  []Assign
	Where Expr

	memo memoHash
}

// Insert is INSERT INTO R VALUES (f̄ = ē). Per paper §3 it is sugar for an
// update that sets alive = true on a fresh primary key; the interpreter and
// the refactoring engine treat it as an atomic whole-record write.
type Insert struct {
	Label  string
	Table  string
	Values []Assign

	memo memoHash
}

// Assign pairs a field name with the expression assigned to it.
type Assign struct {
	Field string
	Expr  Expr
}

// If is if(e){c̄}.
type If struct {
	Cond Expr
	Then []Stmt

	memo memoHash
}

// Iterate is iterate(e){c̄}: run the body e times; the current index is
// available inside the body as the iter expression.
type Iterate struct {
	Count Expr
	Body  []Stmt

	memo memoHash
}

// Skip is the no-op statement.
type Skip struct{}

func (*Select) isStmt()  {}
func (*Update) isStmt()  {}
func (*Insert) isStmt()  {}
func (*If) isStmt()      {}
func (*Iterate) isStmt() {}
func (*Skip) isStmt()    {}

// CmdLabel implements DBCommand.
func (s *Select) CmdLabel() string { return s.Label }

// SetCmdLabel implements DBCommand. It drops the node's own hash memo, but
// callers must not relabel a command that is already shared (enclosing
// nodes would keep stale memos); builders relabel before sharing.
func (s *Select) SetCmdLabel(l string) { s.Label = l; s.memo.reset() }

// TableName implements DBCommand.
func (s *Select) TableName() string { return s.Table }

// CmdLabel implements DBCommand.
func (u *Update) CmdLabel() string { return u.Label }

// SetCmdLabel implements DBCommand (see Select.SetCmdLabel on sharing).
func (u *Update) SetCmdLabel(l string) { u.Label = l; u.memo.reset() }

// TableName implements DBCommand.
func (u *Update) TableName() string { return u.Table }

// CmdLabel implements DBCommand.
func (i *Insert) CmdLabel() string { return i.Label }

// SetCmdLabel implements DBCommand (see Select.SetCmdLabel on sharing).
func (i *Insert) SetCmdLabel(l string) { i.Label = l; i.memo.reset() }

// TableName implements DBCommand.
func (i *Insert) TableName() string { return i.Table }

// Expr is an expression (paper Fig. 5 e / φ productions).
type Expr interface {
	isExpr()
}

// IntLit is an integer constant.
type IntLit struct {
	Val int64

	memo memoHash
}

// BoolLit is a boolean constant.
type BoolLit struct {
	Val bool

	memo memoHash
}

// StringLit is a string constant.
type StringLit struct {
	Val string

	memo memoHash
}

// Arg references a transaction parameter.
type Arg struct {
	Name string

	memo memoHash
}

// BinOp enumerates binary operators: arithmetic ⊕, comparison ⊙, boolean ∘.
type BinOp int

// Binary operators.
const (
	OpAdd BinOp = iota
	OpSub
	OpMul
	OpDiv
	OpLt
	OpLe
	OpEq
	OpNe
	OpGt
	OpGe
	OpAnd
	OpOr
)

func (op BinOp) String() string {
	switch op {
	case OpAdd:
		return "+"
	case OpSub:
		return "-"
	case OpMul:
		return "*"
	case OpDiv:
		return "/"
	case OpLt:
		return "<"
	case OpLe:
		return "<="
	case OpEq:
		return "="
	case OpNe:
		return "!="
	case OpGt:
		return ">"
	case OpGe:
		return ">="
	case OpAnd:
		return "&&"
	case OpOr:
		return "||"
	default:
		return fmt.Sprintf("op(%d)", int(op))
	}
}

// IsComparison reports whether op is one of ⊙ (<, <=, =, !=, >, >=).
func (op BinOp) IsComparison() bool { return op >= OpLt && op <= OpGe }

// IsArith reports whether op is one of ⊕ (+, -, *, /).
func (op BinOp) IsArith() bool { return op <= OpDiv }

// IsLogical reports whether op is ∧ or ∨.
func (op BinOp) IsLogical() bool { return op == OpAnd || op == OpOr }

// Binary is e op e.
type Binary struct {
	Op   BinOp
	L, R Expr

	memo memoHash
}

// IterVar is the iter expression: the current iterate counter.
type IterVar struct{}

// ThisField is this.f — a field reference inside a where clause.
type ThisField struct {
	Field string

	memo memoHash
}

// FieldAt is at_e(x.f): the value of field f in the e-th record held in x.
// A nil Index means at1 (the sole/first record), the common case.
type FieldAt struct {
	Var   string
	Field string
	Index Expr

	memo memoHash
}

// AggFn enumerates aggregation functions over query results.
type AggFn int

// Aggregators. Any is the nondeterministic-choice aggregator used by value
// correspondences (paper §4.1); Count is provided for workloads.
const (
	AggSum AggFn = iota
	AggMin
	AggMax
	AggCount
	AggAny
)

func (a AggFn) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	case AggCount:
		return "count"
	case AggAny:
		return "any"
	default:
		return fmt.Sprintf("agg(%d)", int(a))
	}
}

// Agg is agg(x.f): fold the f values of the records held in x.
type Agg struct {
	Fn    AggFn
	Var   string
	Field string

	memo memoHash
}

// UUID is the uuid() expression: a globally fresh value (paper Fig. 3).
type UUID struct{}

func (*IntLit) isExpr()    {}
func (*BoolLit) isExpr()   {}
func (*StringLit) isExpr() {}
func (*Arg) isExpr()       {}
func (*Binary) isExpr()    {}
func (*IterVar) isExpr()   {}
func (*ThisField) isExpr() {}
func (*FieldAt) isExpr()   {}
func (*Agg) isExpr()       {}
func (*UUID) isExpr()      {}
