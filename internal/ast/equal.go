package ast

// EqualExpr reports structural equality of two expressions. Two nil
// expressions are equal. Used by the repair engine to decide whether two
// where clauses always select the same records (merge precondition R1).
//
// Interned expressions (see Intern) compare in O(1): pointer-identical
// nodes whose memoized hash proves them uuid-free are equal without a
// walk. uuid() stays never-equal — even to itself — so the fast path
// requires a computed memo with the uuid bit clear.
func EqualExpr(a, b Expr) bool {
	if a == nil || b == nil {
		return a == nil && b == nil
	}
	if a == b {
		if h := memoizedExprHash(a); h != 0 && h&hashUUID == 0 {
			return true
		}
	}
	switch x := a.(type) {
	case *IntLit:
		y, ok := b.(*IntLit)
		return ok && x.Val == y.Val
	case *BoolLit:
		y, ok := b.(*BoolLit)
		return ok && x.Val == y.Val
	case *StringLit:
		y, ok := b.(*StringLit)
		return ok && x.Val == y.Val
	case *Arg:
		y, ok := b.(*Arg)
		return ok && x.Name == y.Name
	case *Binary:
		y, ok := b.(*Binary)
		return ok && x.Op == y.Op && EqualExpr(x.L, y.L) && EqualExpr(x.R, y.R)
	case *IterVar:
		_, ok := b.(*IterVar)
		return ok
	case *ThisField:
		y, ok := b.(*ThisField)
		return ok && x.Field == y.Field
	case *FieldAt:
		y, ok := b.(*FieldAt)
		return ok && x.Var == y.Var && x.Field == y.Field && EqualExpr(x.Index, y.Index)
	case *Agg:
		y, ok := b.(*Agg)
		return ok && x.Fn == y.Fn && x.Var == y.Var && x.Field == y.Field
	case *UUID:
		// uuid() is fresh on every evaluation: never equal, even to itself.
		return false
	default:
		return false
	}
}

// EqualStmt reports structural equality of two statements (labels ignored).
func EqualStmt(a, b Stmt) bool {
	switch x := a.(type) {
	case *Select:
		y, ok := b.(*Select)
		if !ok || x.Var != y.Var || x.Star != y.Star || x.Table != y.Table {
			return false
		}
		return equalStrings(x.Fields, y.Fields) && EqualExpr(x.Where, y.Where)
	case *Update:
		y, ok := b.(*Update)
		if !ok || x.Table != y.Table {
			return false
		}
		return equalAssigns(x.Sets, y.Sets) && EqualExpr(x.Where, y.Where)
	case *Insert:
		y, ok := b.(*Insert)
		return ok && x.Table == y.Table && equalAssigns(x.Values, y.Values)
	case *If:
		y, ok := b.(*If)
		return ok && EqualExpr(x.Cond, y.Cond) && equalStmts(x.Then, y.Then)
	case *Iterate:
		y, ok := b.(*Iterate)
		return ok && EqualExpr(x.Count, y.Count) && equalStmts(x.Body, y.Body)
	case *Skip:
		_, ok := b.(*Skip)
		return ok
	default:
		return false
	}
}

func equalStmts(a, b []Stmt) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if !EqualStmt(a[i], b[i]) {
			return false
		}
	}
	return true
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func equalAssigns(a, b []Assign) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].Field != b[i].Field || !EqualExpr(a[i].Expr, b[i].Expr) {
			return false
		}
	}
	return true
}
