package ast

// CloneProgram returns a deep copy of p. The refactoring engine mutates
// programs freely, so every repair step starts from a clone.
func CloneProgram(p *Program) *Program {
	out := &Program{}
	for _, s := range p.Schemas {
		out.Schemas = append(out.Schemas, CloneSchema(s))
	}
	for _, t := range p.Txns {
		out.Txns = append(out.Txns, CloneTxn(t))
	}
	return out
}

// CloneSchema returns a deep copy of s.
func CloneSchema(s *Schema) *Schema {
	out := &Schema{Name: s.Name}
	for _, f := range s.Fields {
		cp := *f
		out.Fields = append(out.Fields, &cp)
	}
	return out
}

// CloneTxn returns a deep copy of t.
func CloneTxn(t *Txn) *Txn {
	out := &Txn{Name: t.Name, Ret: CloneExpr(t.Ret)}
	for _, p := range t.Params {
		cp := *p
		out.Params = append(out.Params, &cp)
	}
	out.Body = CloneStmts(t.Body)
	return out
}

// CloneStmts returns a deep copy of a statement list.
func CloneStmts(body []Stmt) []Stmt {
	if body == nil {
		return nil
	}
	out := make([]Stmt, 0, len(body))
	for _, s := range body {
		out = append(out, CloneStmt(s))
	}
	return out
}

// CloneStmt returns a deep copy of s.
func CloneStmt(s Stmt) Stmt {
	switch x := s.(type) {
	case *Select:
		return &Select{
			Label:  x.Label,
			Var:    x.Var,
			Star:   x.Star,
			Fields: append([]string(nil), x.Fields...),
			Table:  x.Table,
			Where:  CloneExpr(x.Where),
		}
	case *Update:
		return &Update{
			Label: x.Label,
			Table: x.Table,
			Sets:  cloneAssigns(x.Sets),
			Where: CloneExpr(x.Where),
		}
	case *Insert:
		return &Insert{
			Label:  x.Label,
			Table:  x.Table,
			Values: cloneAssigns(x.Values),
		}
	case *If:
		return &If{Cond: CloneExpr(x.Cond), Then: CloneStmts(x.Then)}
	case *Iterate:
		return &Iterate{Count: CloneExpr(x.Count), Body: CloneStmts(x.Body)}
	case *Skip:
		return &Skip{}
	default:
		return s
	}
}

func cloneAssigns(as []Assign) []Assign {
	out := make([]Assign, len(as))
	for i, a := range as {
		out[i] = Assign{Field: a.Field, Expr: CloneExpr(a.Expr)}
	}
	return out
}

// CloneExpr returns a deep copy of e; nil clones to nil.
func CloneExpr(e Expr) Expr {
	switch x := e.(type) {
	case nil:
		return nil
	case *IntLit:
		return &IntLit{Val: x.Val}
	case *BoolLit:
		return &BoolLit{Val: x.Val}
	case *StringLit:
		return &StringLit{Val: x.Val}
	case *Arg:
		return &Arg{Name: x.Name}
	case *Binary:
		return &Binary{Op: x.Op, L: CloneExpr(x.L), R: CloneExpr(x.R)}
	case *IterVar:
		return &IterVar{}
	case *ThisField:
		return &ThisField{Field: x.Field}
	case *FieldAt:
		return &FieldAt{Var: x.Var, Field: x.Field, Index: CloneExpr(x.Index)}
	case *Agg:
		return &Agg{Fn: x.Fn, Var: x.Var, Field: x.Field}
	case *UUID:
		return &UUID{}
	default:
		return e
	}
}
