package ast

import (
	"testing"
)

func TestHashStructuralIdentity(t *testing.T) {
	a, b := sampleTxn(), sampleTxn()
	if HashTxn(a) != HashTxn(b) {
		t.Fatal("structurally equal transactions hash differently")
	}
	// Memoized second call returns the same value.
	if HashTxn(a) != HashTxn(b) {
		t.Fatal("memoized hash diverges from first computation")
	}
	c := sampleTxn()
	c.Body[0].(*Select).Label = "S2"
	if HashTxn(a) == HashTxn(c) {
		t.Fatal("label change did not change the transaction hash")
	}
	d := sampleTxn()
	d.Ret = &FieldAt{Var: "x", Field: "b"}
	if HashTxn(a) == HashTxn(d) {
		t.Fatal("return-expression change did not change the transaction hash")
	}
}

func TestHashDistinguishesShapes(t *testing.T) {
	pairs := [][2]Expr{
		{&IntLit{Val: 1}, &IntLit{Val: 2}},
		{&IntLit{Val: 1}, &BoolLit{Val: true}},
		{&StringLit{Val: "ab"}, &StringLit{Val: "a"}},
		{&Arg{Name: "x"}, &ThisField{Field: "x"}},
		{
			&Binary{Op: OpAdd, L: &IntLit{Val: 1}, R: &IntLit{Val: 2}},
			&Binary{Op: OpAdd, L: &IntLit{Val: 2}, R: &IntLit{Val: 1}},
		},
		{&FieldAt{Var: "x", Field: "f"}, &Agg{Fn: AggAny, Var: "x", Field: "f"}},
	}
	for i, p := range pairs {
		if HashExpr(p[0]) == HashExpr(p[1]) {
			t.Errorf("pair %d: distinct expressions %v / %v hash equal", i, ExprString(p[0]), ExprString(p[1]))
		}
	}
}

func TestHashUUIDBit(t *testing.T) {
	u := HashExpr(&UUID{})
	if u&hashUUID == 0 {
		t.Fatal("uuid() hash lacks the uuid bit")
	}
	wrapped := HashExpr(&Binary{Op: OpAdd, L: &IntLit{Val: 1}, R: &UUID{}})
	if wrapped&hashUUID == 0 {
		t.Fatal("uuid bit not propagated to enclosing expression")
	}
	plain := HashExpr(&Binary{Op: OpAdd, L: &IntLit{Val: 1}, R: &IntLit{Val: 2}})
	if plain&hashUUID != 0 {
		t.Fatal("uuid bit set on a uuid-free expression")
	}
}

func TestSchemaHash(t *testing.T) {
	a := &Schema{Name: "T", Fields: []*Field{{Name: "id", Type: TInt, PK: true}, {Name: "v", Type: TInt}}}
	b := &Schema{Name: "T", Fields: []*Field{{Name: "id", Type: TInt, PK: true}, {Name: "v", Type: TInt}}}
	if HashSchema(a) != HashSchema(b) {
		t.Fatal("equal schemas hash differently")
	}
	b.Fields[1].PK = true
	if HashSchema(a) == HashSchema(b) {
		t.Fatal("primary-key change did not change the schema hash")
	}
}

func TestInternCanonicalizes(t *testing.T) {
	mk := func() Expr {
		return &Binary{Op: OpEq, L: &ThisField{Field: "id"}, R: &Arg{Name: "uniq_intern_test_k"}}
	}
	a := Intern(mk())
	b := Intern(mk())
	if a != b {
		t.Fatal("structurally equal expressions interned to distinct nodes")
	}
	if !EqualExpr(a, b) {
		t.Fatal("interned nodes not equal")
	}
	// uuid-containing trees must not canonicalize: uuid() is never equal.
	u1 := Intern(&Binary{Op: OpAdd, L: &IntLit{Val: 1}, R: &UUID{}})
	u2 := Intern(&Binary{Op: OpAdd, L: &IntLit{Val: 1}, R: &UUID{}})
	if u1 == u2 {
		t.Fatal("uuid-containing expressions shared a cons-table node")
	}
	if EqualExpr(u1, u1) {
		t.Fatal("uuid-containing expression compared equal to itself")
	}
}

func TestMapExprCOWShares(t *testing.T) {
	e := &Binary{Op: OpAnd,
		L: &Binary{Op: OpEq, L: &ThisField{Field: "a"}, R: &IntLit{Val: 1}},
		R: &Binary{Op: OpEq, L: &ThisField{Field: "b"}, R: &IntLit{Val: 2}},
	}
	// Identity rewrite: pointer-identical result.
	same := MapExprCOW(e, func(x Expr) Expr { return x })
	if same != Expr(e) {
		t.Fatal("identity rewrite did not share the input")
	}
	// Rewrite one leaf: the untouched sibling subtree is shared.
	out := MapExprCOW(e, func(x Expr) Expr {
		if tf, ok := x.(*ThisField); ok && tf.Field == "a" {
			return &ThisField{Field: "z"}
		}
		return x
	})
	nb, ok := out.(*Binary)
	if !ok || nb == e {
		t.Fatalf("rewrite did not rebuild the spine: %v", ExprString(out))
	}
	if nb.R != e.R {
		t.Error("untouched right subtree was copied, not shared")
	}
	if ExprString(e) != "((a = 1) && (b = 2))" {
		t.Errorf("input mutated: %s", ExprString(e))
	}
	if ExprString(out) != "((z = 1) && (b = 2))" {
		t.Errorf("rewrite produced %s", ExprString(out))
	}
}

func TestMapStmtsCOWShares(t *testing.T) {
	body := []Stmt{
		&Skip{},
		&If{Cond: &BoolLit{Val: true}, Then: []Stmt{&Skip{}}},
		&Update{Label: "U1", Table: "T", Sets: []Assign{{Field: "a", Expr: &IntLit{Val: 1}}}},
	}
	same, changed := MapStmtsCOW(body, func(s Stmt) []Stmt { return []Stmt{s} })
	if changed || &same[0] != &body[0] {
		t.Fatal("identity map did not share the input slice")
	}
	out, changed := MapStmtsCOW(body, func(s Stmt) []Stmt {
		if u, ok := s.(*Update); ok && u.Label == "U1" {
			return nil // delete
		}
		return []Stmt{s}
	})
	if !changed || len(out) != 2 {
		t.Fatalf("deletion produced %d stmts (changed=%t)", len(out), changed)
	}
	if out[0] != body[0] || out[1] != body[1] {
		t.Error("untouched statements were copied, not shared")
	}
	// Nested deletion rebuilds the control wrapper but shares its Cond.
	out2, changed := MapStmtsCOW(body, func(s Stmt) []Stmt {
		if _, ok := s.(*Skip); ok {
			return nil
		}
		return []Stmt{s}
	})
	if !changed || len(out2) != 2 {
		t.Fatalf("nested deletion produced %d stmts", len(out2))
	}
	nif, ok := out2[0].(*If)
	if !ok || len(nif.Then) != 0 {
		t.Fatalf("nested deletion did not rewrite the if body: %v", out2[0])
	}
	if nif == body[1] {
		t.Error("if wrapper shared despite changed body")
	}
	if nif.Cond != body[1].(*If).Cond {
		t.Error("if condition copied, not shared")
	}
}

func TestWithTxnShares(t *testing.T) {
	p := &Program{
		Schemas: []*Schema{{Name: "T"}},
		Txns:    []*Txn{sampleTxn(), {Name: "u"}},
	}
	nt := &Txn{Name: "t2"}
	np := WithTxn(p, 0, nt)
	if np.Txns[0] != nt || np.Txns[1] != p.Txns[1] {
		t.Fatal("WithTxn did not replace/share as expected")
	}
	if &np.Schemas[0] != &p.Schemas[0] {
		t.Fatal("WithTxn copied the schema list")
	}
	if p.Txns[0] == nt {
		t.Fatal("WithTxn mutated its input")
	}
	if TxnIndex(p, "u") != 1 || TxnIndex(p, "nope") != -1 {
		t.Fatal("TxnIndex wrong")
	}
}
