package sema

import (
	"strings"
	"testing"

	"atropos/internal/parser"
)

func checkSrc(t *testing.T, src string) error {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Check(p)
}

func TestCheckValidProgram(t *testing.T) {
	src := `
table ACC { id: int key, bal: int, owner: string, open: bool, }
txn deposit(k: int, amt: int) {
  x := select bal from ACC where id = k;
  update ACC set bal = x.bal + amt where id = k;
  return x.bal + amt;
}
txn audit(k: int) {
  x := select * from ACC where id = k;
  if (x.open) {
    update ACC set bal = 0 where id = k && open = true;
  }
  return count(x.bal);
}
txn batch(n: int) {
  iterate (n) {
    insert into ACC values (id = uuid(), bal = iter, owner = "new", open = true);
  }
}
`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("Check: %v", err)
	}
}

func TestCheckErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want string
	}{
		{"no pk", `table T { n: int, }`, "no primary key"},
		{"reserved alive", `table T { id: int key, alive: bool, }`, "reserved"},
		{"dup field", `table T { id: int key, id: int, }`, "duplicate field"},
		{"dup param", `table T { id: int key, } txn a(x: int, x: int) { skip; }`, "duplicate parameter"},
		{"unknown select field", `table T { id: int key, } txn a(k: int) { x := select zap from T where id = k; }`, "unknown field"},
		{"unknown arg", `table T { id: int key, } txn a(k: int) { update T set id = 1 where id = zap; }`, "unknown identifier"},
		{"var before def", `table T { id: int key, n: int, } txn a(k: int) { update T set n = x.n where id = k; }`, "unknown variable"},
		{"field not selected", `table T { id: int key, n: int, m: int, } txn a(k: int) { x := select n from T where id = k; return x.m; }`, "does not carry field"},
		{"set type mismatch", `table T { id: int key, n: int, } txn a(k: int) { update T set n = true where id = k; }`, "type"},
		{"where not bool", `table T { id: int key, n: int, } txn a(k: int) { x := select n from T where id + 1; }`, "want bool"},
		{"arith on bool", `table T { id: int key, b: bool, } txn a(k: int) { update T set b = true where id = k && (b + b = 2); }`, "arithmetic"},
		{"cmp mismatch", `table T { id: int key, s: string, } txn a(k: int) { x := select s from T where s = k; }`, "comparison"},
		{"ordering on bool", `table T { id: int key, b: bool, } txn a(k: int) { x := select b from T where b < true; }`, "ordering"},
		{"iter outside", `table T { id: int key, n: int, } txn a(k: int) { update T set n = iter where id = k; }`, "outside iterate"},
		{"sum over string", `table T { id: int key, s: string, } txn a(k: int) { x := select s from T where id = k; return sum(x.s); }`, "non-int"},
		{"insert missing pk", `table T { id: int key, n: int, } txn a(k: int) { insert into T values (n = 1); }`, "primary-key"},
		{"insert unknown field", `table T { id: int key, } txn a(k: int) { insert into T values (id = k, zap = 1); }`, "unknown field"},
		{"iterate count bool", `table T { id: int key, } txn a(k: int) { iterate (true) { skip; } }`, "want int"},
		{"if cond int", `table T { id: int key, } txn a(k: int) { if (k) { skip; } }`, "want bool"},
		{"set twice", `table T { id: int key, n: int, } txn a(k: int) { update T set n = 1, n = 2 where id = k; }`, "set twice"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkSrc(t, tc.src)
			if err == nil {
				t.Fatalf("Check succeeded, want error containing %q", tc.want)
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not contain %q", err, tc.want)
			}
		})
	}
}

func TestCountOverAnyType(t *testing.T) {
	src := `
table T { id: int key, s: string, }
txn a(k: int) {
  x := select s from T where id = k;
  return count(x.s);
}
`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("count over string rejected: %v", err)
	}
}

func TestAnyAggPreservesType(t *testing.T) {
	src := `
table T { id: int key, s: string, }
txn a(k: int, w: string) {
  x := select s from T where id = k;
  update T set s = any(x.s) where id = k;
}
`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("any(string) assigned to string field rejected: %v", err)
	}
}

func TestAliveUsableInWhere(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn a(k: int) {
  x := select n from T where id = k && alive = true;
}
`
	if err := checkSrc(t, src); err != nil {
		t.Fatalf("alive in where rejected: %v", err)
	}
}
