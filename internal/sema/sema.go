// Package sema implements the semantic checker for database programs:
// schema well-formedness (non-empty primary keys, reserved names), variable
// definition-before-use, field resolution, and expression typing. Programs
// that pass Check are safe inputs for the interpreter, the anomaly detector,
// and the refactoring engine.
package sema

import (
	"fmt"

	"atropos/internal/ast"
)

// Error is a semantic error, tagged with the enclosing declaration.
type Error struct {
	Where string // "table T" / "txn t"
	Msg   string
}

func (e *Error) Error() string { return fmt.Sprintf("%s: %s", e.Where, e.Msg) }

// Check validates the whole program, returning the first error found.
func Check(p *ast.Program) error {
	for _, s := range p.Schemas {
		if err := checkSchema(s); err != nil {
			return err
		}
	}
	for _, t := range p.Txns {
		if err := checkTxn(p, t); err != nil {
			return err
		}
	}
	return nil
}

func checkSchema(s *ast.Schema) error {
	where := "table " + s.Name
	if len(s.Fields) == 0 {
		return &Error{where, "schema has no fields"}
	}
	seen := map[string]bool{}
	for _, f := range s.Fields {
		if f.Name == ast.AliveField {
			return &Error{where, "field name 'alive' is reserved (implicit presence field)"}
		}
		if seen[f.Name] {
			return &Error{where, fmt.Sprintf("duplicate field %q", f.Name)}
		}
		seen[f.Name] = true
	}
	if len(s.PrimaryKey()) == 0 {
		return &Error{where, "schema has no primary key field"}
	}
	return nil
}

// varBinding records what a SELECT bound: the table and the set of fields
// available through the variable.
type varBinding struct {
	table  *ast.Schema
	fields map[string]ast.Type
}

type checker struct {
	prog  *ast.Program
	txn   *ast.Txn
	vars  map[string]*varBinding
	depth int // iterate nesting depth; iter is only legal when > 0
}

func checkTxn(p *ast.Program, t *ast.Txn) error {
	c := &checker{prog: p, txn: t, vars: map[string]*varBinding{}}
	where := "txn " + t.Name
	seen := map[string]bool{}
	for _, pr := range t.Params {
		if seen[pr.Name] {
			return &Error{where, fmt.Sprintf("duplicate parameter %q", pr.Name)}
		}
		seen[pr.Name] = true
	}
	if err := c.checkStmts(t.Body); err != nil {
		return &Error{where, err.Error()}
	}
	if t.Ret != nil {
		if _, err := c.typeOf(t.Ret); err != nil {
			return &Error{where, fmt.Sprintf("return: %v", err)}
		}
	}
	return nil
}

func (c *checker) checkStmts(body []ast.Stmt) error {
	for _, s := range body {
		if err := c.checkStmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *checker) checkStmt(s ast.Stmt) error {
	switch x := s.(type) {
	case *ast.Select:
		return c.checkSelect(x)
	case *ast.Update:
		return c.checkUpdate(x)
	case *ast.Insert:
		return c.checkInsert(x)
	case *ast.If:
		ty, err := c.typeOf(x.Cond)
		if err != nil {
			return fmt.Errorf("if condition: %w", err)
		}
		if ty != ast.TBool {
			return fmt.Errorf("if condition has type %s, want bool", ty)
		}
		return c.checkStmts(x.Then)
	case *ast.Iterate:
		ty, err := c.typeOf(x.Count)
		if err != nil {
			return fmt.Errorf("iterate count: %w", err)
		}
		if ty != ast.TInt {
			return fmt.Errorf("iterate count has type %s, want int", ty)
		}
		c.depth++
		err = c.checkStmts(x.Body)
		c.depth--
		return err
	case *ast.Skip:
		return nil
	default:
		return fmt.Errorf("unknown statement %T", s)
	}
}

func (c *checker) schema(table, label string) (*ast.Schema, error) {
	s := c.prog.Schema(table)
	if s == nil {
		return nil, fmt.Errorf("%s: unknown table %q", label, table)
	}
	return s, nil
}

func (c *checker) checkWhere(w ast.Expr, schema *ast.Schema, label string) error {
	if w == nil {
		return fmt.Errorf("%s: missing where clause", label)
	}
	// this.f references must resolve in the target schema.
	var bad string
	ast.WalkExpr(w, func(e ast.Expr) bool {
		if tf, ok := e.(*ast.ThisField); ok && !schema.HasField(tf.Field) {
			bad = tf.Field
		}
		return bad == ""
	})
	if bad != "" {
		return fmt.Errorf("%s: where references unknown field %q of table %s", label, bad, schema.Name)
	}
	ty, err := c.typeOfIn(w, schema)
	if err != nil {
		return fmt.Errorf("%s: where: %w", label, err)
	}
	if ty != ast.TBool {
		return fmt.Errorf("%s: where clause has type %s, want bool", label, ty)
	}
	return nil
}

func (c *checker) checkSelect(x *ast.Select) error {
	schema, err := c.schema(x.Table, x.Label)
	if err != nil {
		return err
	}
	fields := map[string]ast.Type{}
	if x.Star {
		for _, f := range schema.Fields {
			fields[f.Name] = f.Type
		}
	} else {
		if len(x.Fields) == 0 {
			return fmt.Errorf("%s: empty field list", x.Label)
		}
		for _, fn := range x.Fields {
			f := schema.Field(fn)
			if f == nil {
				return fmt.Errorf("%s: unknown field %q of table %s", x.Label, fn, x.Table)
			}
			fields[fn] = f.Type
		}
	}
	if err := c.checkWhere(x.Where, schema, x.Label); err != nil {
		return err
	}
	if x.Var == "" {
		return fmt.Errorf("%s: select must bind a variable", x.Label)
	}
	c.vars[x.Var] = &varBinding{table: schema, fields: fields}
	return nil
}

func (c *checker) checkUpdate(x *ast.Update) error {
	schema, err := c.schema(x.Table, x.Label)
	if err != nil {
		return err
	}
	if len(x.Sets) == 0 {
		return fmt.Errorf("%s: empty set list", x.Label)
	}
	seen := map[string]bool{}
	for _, a := range x.Sets {
		f := schema.Field(a.Field)
		if f == nil {
			return fmt.Errorf("%s: unknown field %q of table %s", x.Label, a.Field, x.Table)
		}
		if seen[a.Field] {
			return fmt.Errorf("%s: field %q set twice", x.Label, a.Field)
		}
		seen[a.Field] = true
		ty, err := c.typeOf(a.Expr)
		if err != nil {
			return fmt.Errorf("%s: set %s: %w", x.Label, a.Field, err)
		}
		if ty != f.Type {
			return fmt.Errorf("%s: set %s: type %s, field has type %s", x.Label, a.Field, ty, f.Type)
		}
	}
	return c.checkWhere(x.Where, schema, x.Label)
}

func (c *checker) checkInsert(x *ast.Insert) error {
	schema, err := c.schema(x.Table, x.Label)
	if err != nil {
		return err
	}
	assigned := map[string]bool{}
	for _, a := range x.Values {
		f := schema.Field(a.Field)
		if f == nil {
			return fmt.Errorf("%s: unknown field %q of table %s", x.Label, a.Field, x.Table)
		}
		if assigned[a.Field] {
			return fmt.Errorf("%s: field %q assigned twice", x.Label, a.Field)
		}
		assigned[a.Field] = true
		ty, err := c.typeOf(a.Expr)
		if err != nil {
			return fmt.Errorf("%s: value %s: %w", x.Label, a.Field, err)
		}
		if ty != f.Type {
			return fmt.Errorf("%s: value %s: type %s, field has type %s", x.Label, a.Field, ty, f.Type)
		}
	}
	for _, pk := range schema.PrimaryKey() {
		if !assigned[pk.Name] {
			return fmt.Errorf("%s: insert does not assign primary-key field %q", x.Label, pk.Name)
		}
	}
	return nil
}

// typeOf types an expression outside a where clause (this.f is illegal).
func (c *checker) typeOf(e ast.Expr) (ast.Type, error) { return c.typeOfIn(e, nil) }

// typeOfIn types an expression; this.f resolves against schema when non-nil.
func (c *checker) typeOfIn(e ast.Expr, schema *ast.Schema) (ast.Type, error) {
	switch x := e.(type) {
	case *ast.IntLit:
		return ast.TInt, nil
	case *ast.BoolLit:
		return ast.TBool, nil
	case *ast.StringLit:
		return ast.TString, nil
	case *ast.UUID:
		return ast.TInt, nil
	case *ast.IterVar:
		if c.depth == 0 {
			return ast.TInvalid, fmt.Errorf("iter used outside iterate")
		}
		return ast.TInt, nil
	case *ast.Arg:
		p := c.txn.Param(x.Name)
		if p == nil {
			return ast.TInvalid, fmt.Errorf("unknown identifier %q", x.Name)
		}
		return p.Type, nil
	case *ast.ThisField:
		if schema == nil {
			return ast.TInvalid, fmt.Errorf("this.%s used outside a where clause", x.Field)
		}
		f := schema.Field(x.Field)
		if f == nil {
			return ast.TInvalid, fmt.Errorf("unknown field %q of table %s", x.Field, schema.Name)
		}
		return f.Type, nil
	case *ast.FieldAt:
		b, ty, err := c.varField(x.Var, x.Field)
		if err != nil {
			return ast.TInvalid, err
		}
		_ = b
		if x.Index != nil {
			ity, err := c.typeOfIn(x.Index, schema)
			if err != nil {
				return ast.TInvalid, err
			}
			if ity != ast.TInt {
				return ast.TInvalid, fmt.Errorf("at-index has type %s, want int", ity)
			}
		}
		return ty, nil
	case *ast.Agg:
		_, ty, err := c.varField(x.Var, x.Field)
		if err != nil {
			return ast.TInvalid, err
		}
		switch x.Fn {
		case ast.AggCount:
			return ast.TInt, nil
		case ast.AggAny:
			return ty, nil
		default: // sum/min/max require numeric
			if ty != ast.TInt {
				return ast.TInvalid, fmt.Errorf("%s over non-int field %s.%s", x.Fn, x.Var, x.Field)
			}
			return ast.TInt, nil
		}
	case *ast.Binary:
		lt, err := c.typeOfIn(x.L, schema)
		if err != nil {
			return ast.TInvalid, err
		}
		rt, err := c.typeOfIn(x.R, schema)
		if err != nil {
			return ast.TInvalid, err
		}
		switch {
		case x.Op.IsArith():
			if lt != ast.TInt || rt != ast.TInt {
				return ast.TInvalid, fmt.Errorf("arithmetic %s on %s and %s", x.Op, lt, rt)
			}
			return ast.TInt, nil
		case x.Op.IsComparison():
			if lt != rt {
				return ast.TInvalid, fmt.Errorf("comparison %s between %s and %s", x.Op, lt, rt)
			}
			if x.Op != ast.OpEq && x.Op != ast.OpNe && lt == ast.TBool {
				return ast.TInvalid, fmt.Errorf("ordering %s on bool", x.Op)
			}
			return ast.TBool, nil
		default: // logical
			if lt != ast.TBool || rt != ast.TBool {
				return ast.TInvalid, fmt.Errorf("logical %s on %s and %s", x.Op, lt, rt)
			}
			return ast.TBool, nil
		}
	default:
		return ast.TInvalid, fmt.Errorf("unknown expression %T", e)
	}
}

func (c *checker) varField(v, field string) (*varBinding, ast.Type, error) {
	b := c.vars[v]
	if b == nil {
		return nil, ast.TInvalid, fmt.Errorf("unknown variable %q (no preceding select binds it)", v)
	}
	ty, ok := b.fields[field]
	if !ok {
		return nil, ast.TInvalid, fmt.Errorf("variable %q does not carry field %q (selected: table %s)", v, field, b.table.Name)
	}
	return b, ty, nil
}
