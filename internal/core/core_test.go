package core

import (
	"strings"
	"testing"

	"atropos/internal/anomaly"
)

const src = `
table T { id: int key, n: int, }
txn bump(k: int) {
  x := select n from T where id = k;
  update T set n = x.n + 1 where id = k;
}
`

func TestLoadProgram(t *testing.T) {
	p, err := LoadProgram(src)
	if err != nil {
		t.Fatalf("LoadProgram: %v", err)
	}
	if p.Txn("bump") == nil {
		t.Fatal("bump missing")
	}
}

func TestLoadProgramErrors(t *testing.T) {
	if _, err := LoadProgram("table T {"); err == nil || !strings.Contains(err.Error(), "core:") {
		t.Errorf("parse error not wrapped: %v", err)
	}
	if _, err := LoadProgram("table T { n: int, }"); err == nil {
		t.Error("sema error not surfaced")
	}
}

func TestRunPipeline(t *testing.T) {
	p, err := LoadProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	res, err := Run(p, anomaly.EC)
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if res.Elapsed <= 0 {
		t.Error("elapsed not measured")
	}
	if len(res.Repair.Initial) == 0 {
		t.Error("no anomalies detected")
	}
	if len(res.Repair.Remaining) != 0 {
		t.Errorf("remaining: %v", res.Repair.Remaining)
	}
}

func TestAnalyzeOnly(t *testing.T) {
	p, err := LoadProgram(src)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Analyze(p, anomaly.SC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() != 0 {
		t.Errorf("SC anomalies = %d, want 0", rep.Count())
	}
}
