// Package core wires the Atropos pipeline together (paper Fig. 4): the
// static anomaly detector feeds the preprocessing and refactoring engine,
// whose output is post-processed and re-analyzed. It is the programmatic
// entry point the CLI, the experiment harness, and the public root package
// build on.
package core

import (
	"fmt"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/repair"
	"atropos/internal/sema"
)

// Result is the outcome of one pipeline run.
type Result struct {
	// Repair carries the refactored program, the correspondences, and the
	// before/after anomaly sets.
	Repair *repair.Result
	// Elapsed is the total analyze-and-repair wall time (the paper's
	// "Time (s)" column of Table 1).
	Elapsed time.Duration
}

// LoadProgram parses and semantically checks DSL source.
func LoadProgram(src string) (*ast.Program, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	if err := sema.Check(p); err != nil {
		return nil, fmt.Errorf("core: %w", err)
	}
	return p, nil
}

// Run executes the full pipeline on a checked program under the given
// consistency model, with the incremental detection engine on (the
// default).
func Run(prog *ast.Program, model anomaly.Model) (*Result, error) {
	return RunWith(prog, model, repair.Options{Incremental: true})
}

// RunWith executes the full pipeline with explicit engine options.
func RunWith(prog *ast.Program, model anomaly.Model, opts repair.Options) (*Result, error) {
	start := time.Now()
	rep, err := repair.RepairWith(prog, model, opts)
	if err != nil {
		return nil, err
	}
	return &Result{Repair: rep, Elapsed: time.Since(start)}, nil
}

// Analyze runs only the anomaly oracle.
func Analyze(prog *ast.Program, model anomaly.Model) (*anomaly.Report, error) {
	return anomaly.Detect(prog, model)
}
