package refactor

import (
	"atropos/internal/ast"
)

// This file implements the post-processing cleanups (§5): dead select
// elimination (a select whose variable is never read is obsolete — the key
// enabling condition for the logger rule) and garbage collection of schemas
// and fields the refactored program no longer accesses (Fig. 3 drops the
// COURSE and EMAIL tables entirely).

// DeadSelects returns the labels of selects in t whose bound variable is
// never read by a later expression or the return expression.
func DeadSelects(t *ast.Txn) []string {
	used := map[string]bool{}
	for _, e := range ast.ExprsInTxn(t) {
		for v := range ast.VarsRead(e) {
			used[v] = true
		}
	}
	var dead []string
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if sel, ok := s.(*ast.Select); ok && !used[sel.Var] {
			dead = append(dead, sel.Label)
		}
		return true
	})
	return dead
}

// RemoveDeadSelects deletes unused selects from every transaction,
// iterating to a fixpoint (removing a select can orphan the selects that
// fed its where clause). The input program is modified in place.
func RemoveDeadSelects(p *ast.Program) int {
	removed := 0
	for {
		changed := false
		for _, t := range p.Txns {
			for _, label := range DeadSelects(t) {
				removeCommand(t, label)
				removed++
				changed = true
			}
		}
		if !changed {
			return removed
		}
	}
}

// IsDeadSelect reports whether the select labelled label in txn is dead
// code (used by try_logging to validate the repair).
func IsDeadSelect(p *ast.Program, txn, label string) bool {
	t := p.Txn(txn)
	if t == nil {
		return false
	}
	for _, d := range DeadSelects(t) {
		if d == label {
			return true
		}
	}
	return false
}

// accessedFields computes every (table, field) the program touches,
// treating SELECT * as touching all of the table's declared fields.
func accessedFields(p *ast.Program) map[string]map[string]bool {
	acc := map[string]map[string]bool{}
	touch := func(table, field string) {
		if acc[table] == nil {
			acc[table] = map[string]bool{}
		}
		acc[table][field] = true
	}
	for _, t := range p.Txns {
		for _, c := range ast.Commands(t.Body) {
			schema := p.Schema(c.TableName())
			a := ast.CommandAccess(c, schema)
			for _, f := range a.Reads {
				touch(c.TableName(), f)
			}
			for _, f := range a.Writes {
				touch(c.TableName(), f)
			}
			if acc[c.TableName()] == nil {
				acc[c.TableName()] = map[string]bool{}
			}
		}
	}
	return acc
}

// GCSchemas removes the schemas and fields the refactoring made obsolete:
// a field is dropped only when no command accesses it AND its data moved
// elsewhere (it is the source of one of the correspondences in moved —
// maps table name to the set of moved field names); a table is dropped
// only when no command accesses it and at least one of its fields moved
// (Fig. 3 drops COURSE and EMAIL). Fields and tables that are merely
// unread keep their data: dropping them would lose information and break
// the containment relation. Returns the removed table names. The program
// is modified in place.
func GCSchemas(p *ast.Program, moved map[string]map[string]bool) []string {
	acc := accessedFields(p)
	var kept []*ast.Schema
	var removedTables []string
	for _, s := range p.Schemas {
		fields, used := acc[s.Name]
		movedHere := moved[s.Name]
		allMoved := len(movedHere) > 0
		for _, f := range s.NonKeyFields() {
			if !movedHere[f.Name] {
				allMoved = false
			}
		}
		if !used && allMoved {
			removedTables = append(removedTables, s.Name)
			continue
		}
		var keptFields []*ast.Field
		for _, f := range s.Fields {
			if f.PK || fields[f.Name] || !movedHere[f.Name] {
				keptFields = append(keptFields, f)
			}
		}
		s.Fields = keptFields
		kept = append(kept, s)
	}
	p.Schemas = kept
	return removedTables
}
