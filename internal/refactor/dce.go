package refactor

import (
	"atropos/internal/ast"
)

// This file implements the post-processing cleanups (§5): dead select
// elimination (a select whose variable is never read is obsolete — the key
// enabling condition for the logger rule) and garbage collection of schemas
// and fields the refactored program no longer accesses (Fig. 3 drops the
// COURSE and EMAIL tables entirely). Both are functional: they return a
// (possibly node-sharing) copy and leave the input program untouched.

// DeadSelects returns the labels of selects in t whose bound variable is
// never read by a later expression or the return expression.
func DeadSelects(t *ast.Txn) []string {
	used := map[string]bool{}
	for _, e := range ast.ExprsInTxn(t) {
		for v := range ast.VarsRead(e) {
			used[v] = true
		}
	}
	var dead []string
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if sel, ok := s.(*ast.Select); ok && !used[sel.Var] {
			dead = append(dead, sel.Label)
		}
		return true
	})
	return dead
}

// RemoveDeadSelects deletes unused selects from every transaction,
// iterating to a fixpoint (removing a select can orphan the selects that
// fed its where clause). It returns the pruned program — sharing every
// untouched transaction with p — and the number of selects removed.
func RemoveDeadSelects(p *ast.Program) (*ast.Program, int) {
	if DeepClone() {
		return deepRemoveDeadSelects(p)
	}
	return cowRemoveDeadSelects(p)
}

// IsDeadSelect reports whether the select labelled label in txn is dead
// code (used by try_logging to validate the repair).
func IsDeadSelect(p *ast.Program, txn, label string) bool {
	t := p.Txn(txn)
	if t == nil {
		return false
	}
	for _, d := range DeadSelects(t) {
		if d == label {
			return true
		}
	}
	return false
}

// accessedFields computes every (table, field) the program touches,
// treating SELECT * as touching all of the table's declared fields.
func accessedFields(p *ast.Program) map[string]map[string]bool {
	acc := map[string]map[string]bool{}
	touch := func(table, field string) {
		if acc[table] == nil {
			acc[table] = map[string]bool{}
		}
		acc[table][field] = true
	}
	for _, t := range p.Txns {
		for _, c := range ast.Commands(t.Body) {
			schema := p.Schema(c.TableName())
			a := ast.CommandAccess(c, schema)
			for _, f := range a.Reads {
				touch(c.TableName(), f)
			}
			for _, f := range a.Writes {
				touch(c.TableName(), f)
			}
			if acc[c.TableName()] == nil {
				acc[c.TableName()] = map[string]bool{}
			}
		}
	}
	return acc
}

// GCSchemas removes the schemas and fields the refactoring made obsolete:
// a field is dropped only when no command accesses it AND its data moved
// elsewhere (it is the source of one of the correspondences in moved —
// maps table name to the set of moved field names); a table is dropped
// only when no command accesses it and at least one of its fields moved
// (Fig. 3 drops COURSE and EMAIL). Fields and tables that are merely
// unread keep their data: dropping them would lose information and break
// the containment relation. It returns the collected program — sharing
// every surviving schema and all transactions with p — and the removed
// table names.
func GCSchemas(p *ast.Program, moved map[string]map[string]bool) (*ast.Program, []string) {
	if DeepClone() {
		return deepGCSchemas(p, moved)
	}
	return cowGCSchemas(p, moved)
}
