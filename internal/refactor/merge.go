package refactor

import (
	"fmt"

	"atropos/internal/ast"
)

// This file implements the command splitting used by repair's preprocessing
// (§5: "database commands are split into multiple commands such that each
// command is involved in at most one anomalous access pair") and the
// merging strategy of try_merge, including the same-records analysis that
// decides when two where clauses always select the same records (condition
// R1 of §4.2).

// SplitUpdate splits the update labelled label in transaction txn into one
// update per field group, labelled label.1, label.2, ... (Fig. 11: U4
// becomes U4.1 and U4.2). Groups must partition the update's set fields.
func SplitUpdate(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	out := ast.CloneProgram(p)
	t := out.Txn(txn)
	if t == nil {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	var serr error
	found := false
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		u, ok := s.(*ast.Update)
		if !ok || u.Label != label {
			return []ast.Stmt{s}
		}
		found = true
		byField := map[string]ast.Assign{}
		for _, a := range u.Sets {
			byField[a.Field] = a
		}
		var parts []ast.Stmt
		covered := 0
		for i, g := range groups {
			nu := &ast.Update{
				Label: fmt.Sprintf("%s.%d", label, i+1),
				Table: u.Table,
				Where: ast.CloneExpr(u.Where),
			}
			for _, f := range g {
				a, ok := byField[f]
				if !ok {
					serr = errf("split", "%s.%s does not set field %q", txn, label, f)
					return []ast.Stmt{s}
				}
				nu.Sets = append(nu.Sets, ast.Assign{Field: f, Expr: ast.CloneExpr(a.Expr)})
				covered++
			}
			parts = append(parts, nu)
		}
		if covered != len(u.Sets) {
			serr = errf("split", "%s.%s: groups cover %d of %d set fields", txn, label, covered, len(u.Sets))
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no update labelled %q in %s", label, txn)
	}
	return out, nil
}

// SplitSelect splits the select labelled label into one select per field
// group with fresh variables, rewriting downstream accesses accordingly.
func SplitSelect(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	out := ast.CloneProgram(p)
	t := out.Txn(txn)
	if t == nil {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	var serr error
	found := false
	fieldVar := map[string]string{} // field -> new variable
	var oldVar string
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		sel, ok := s.(*ast.Select)
		if !ok || sel.Label != label {
			return []ast.Stmt{s}
		}
		if sel.Star {
			serr = errf("split", "%s.%s: cannot split SELECT *", txn, label)
			return []ast.Stmt{s}
		}
		found = true
		oldVar = sel.Var
		have := map[string]bool{}
		for _, f := range sel.Fields {
			have[f] = true
		}
		var parts []ast.Stmt
		covered := 0
		for i, g := range groups {
			nv := fmt.Sprintf("%s_%d", sel.Var, i+1)
			ns := &ast.Select{
				Label: fmt.Sprintf("%s.%d", label, i+1),
				Var:   nv,
				Table: sel.Table,
				Where: ast.CloneExpr(sel.Where),
			}
			for _, f := range g {
				if !have[f] {
					serr = errf("split", "%s.%s does not select field %q", txn, label, f)
					return []ast.Stmt{s}
				}
				ns.Fields = append(ns.Fields, f)
				fieldVar[f] = nv
				covered++
			}
			parts = append(parts, ns)
		}
		if covered != len(sel.Fields) {
			serr = errf("split", "%s.%s: groups cover %d of %d fields", txn, label, covered, len(sel.Fields))
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no select labelled %q in %s", label, txn)
	}
	// Rewrite accesses x.f to the new variable holding f.
	rewrite := func(e ast.Expr) ast.Expr {
		return ast.MapExpr(e, func(x ast.Expr) ast.Expr {
			switch fa := x.(type) {
			case *ast.FieldAt:
				if fa.Var == oldVar {
					if nv, ok := fieldVar[fa.Field]; ok {
						return &ast.FieldAt{Var: nv, Field: fa.Field, Index: fa.Index}
					}
				}
			case *ast.Agg:
				if fa.Var == oldVar {
					if nv, ok := fieldVar[fa.Field]; ok {
						return &ast.Agg{Fn: fa.Fn, Var: nv, Field: fa.Field}
					}
				}
			}
			return x
		})
	}
	rewriteTxnExprs(t, rewrite)
	return out, nil
}

// rewriteTxnExprs applies an expression rewriter to every expression in the
// transaction.
func rewriteTxnExprs(t *ast.Txn, rewrite func(ast.Expr) ast.Expr) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		switch x := s.(type) {
		case *ast.Select:
			x.Where = rewrite(x.Where)
		case *ast.Update:
			x.Where = rewrite(x.Where)
			for i := range x.Sets {
				x.Sets[i].Expr = rewrite(x.Sets[i].Expr)
			}
		case *ast.Insert:
			for i := range x.Values {
				x.Values[i].Expr = rewrite(x.Values[i].Expr)
			}
		case *ast.If:
			x.Cond = rewrite(x.Cond)
		case *ast.Iterate:
			x.Count = rewrite(x.Count)
		}
		return []ast.Stmt{s}
	})
	t.Ret = rewrite(t.Ret)
}

// SameRecords decides whether two commands of one transaction always select
// the same set of records (try_merge's R1 condition). Three patterns are
// recognized, mirroring the paper's examples (§5):
//
//  1. syntactically equal where clauses;
//  2. the lookup pattern: one clause pins this.g = x.g where x was selected
//     from the same table by the other clause (Fig. 9's st_em_id lookup);
//  3. the pinned-by-set pattern: one command's update sets g = e and the
//     other clause is this.g = e (Fig. 11's st_co_id = course).
//
// It returns the where clause the merged command should keep.
func SameRecords(t *ast.Txn, c1, c2 ast.DBCommand) (ast.Expr, bool) {
	w1 := whereOf(c1)
	w2 := whereOf(c2)
	if w1 == nil || w2 == nil {
		return nil, false
	}
	if ast.EqualExpr(w1, w2) {
		return w1, true
	}
	if samePinMaps(w1, w2) {
		return w1, true
	}
	if lookupPattern(t, c1.TableName(), w1, w2) {
		return w1, true
	}
	if lookupPattern(t, c2.TableName(), w2, w1) {
		return w2, true
	}
	if pinnedBySet(t, c1, w1, w2) {
		return w1, true
	}
	if pinnedBySet(t, c2, w2, w1) {
		return w2, true
	}
	return nil, false
}

// samePinMaps reports equality of two equality-conjunction clauses up to
// conjunct reordering.
func samePinMaps(w1, w2 ast.Expr) bool {
	e1, ok1 := ast.WhereEqualities(w1)
	e2, ok2 := ast.WhereEqualities(w2)
	if !ok1 || !ok2 || len(e1) != len(e2) {
		return false
	}
	m1 := map[string]ast.Expr{}
	for _, q := range e1 {
		m1[q.Field] = q.Expr
	}
	for _, q := range e2 {
		e, ok := m1[q.Field]
		if !ok || !ast.EqualExpr(e, q.Expr) {
			return false
		}
	}
	return true
}

func whereOf(c ast.DBCommand) ast.Expr {
	switch x := c.(type) {
	case *ast.Select:
		return x.Where
	case *ast.Update:
		return x.Where
	default:
		return nil
	}
}

// lookupPattern reports whether wLookup has the shape this.g = x.g where x
// was bound by a select on table whose where clause equals wAnchor: the
// looked-up record is the anchored record itself.
func lookupPattern(t *ast.Txn, table string, wAnchor, wLookup ast.Expr) bool {
	bin, ok := wLookup.(*ast.Binary)
	if !ok || bin.Op != ast.OpEq {
		return false
	}
	tf, ok := bin.L.(*ast.ThisField)
	if !ok {
		return false
	}
	fa, ok := bin.R.(*ast.FieldAt)
	if !ok || fa.Index != nil || fa.Field != tf.Field {
		return false
	}
	sel := findSelect(t, fa.Var)
	return sel != nil && sel.Table == table && ast.EqualExpr(sel.Where, wAnchor)
}

// pinnedBySet reports whether every equality conjunct this.g = e of w is
// justified by the anchor command c: either c's update sets g = e (after c
// runs its target records satisfy the conjunct — Fig. 11's st_co_id =
// course) or c's own where clause pins g to the same expression.
func pinnedBySet(t *ast.Txn, c ast.DBCommand, wAnchor, w ast.Expr) bool {
	pins, ok := ast.WhereEqualities(w)
	if !ok || len(pins) == 0 {
		return false
	}
	anchorPins := map[string]ast.Expr{}
	if eqs, ok := ast.WhereEqualities(wAnchor); ok {
		for _, q := range eqs {
			anchorPins[q.Field] = q.Expr
		}
	}
	u, isUpdate := c.(*ast.Update)
	for _, q := range pins {
		justified := false
		if isUpdate {
			for _, a := range u.Sets {
				if a.Field == q.Field && ast.EqualExpr(a.Expr, q.Expr) {
					justified = true
					break
				}
			}
		}
		if !justified {
			if e, ok := anchorPins[q.Field]; ok && ast.EqualExpr(e, q.Expr) {
				justified = true
			}
		}
		if !justified && lookupConjunct(t, c.TableName(), wAnchor, q) {
			justified = true
		}
		if !justified {
			return false
		}
	}
	return true
}

// lookupConjunct reports whether the conjunct this.g = x.g reads g from the
// record selected by wAnchor on the same table.
func lookupConjunct(t *ast.Txn, table string, wAnchor ast.Expr, q ast.WhereEquality) bool {
	fa, ok := q.Expr.(*ast.FieldAt)
	if !ok || fa.Index != nil || fa.Field != q.Field {
		return false
	}
	sel := findSelect(t, fa.Var)
	return sel != nil && sel.Table == table && ast.EqualExpr(sel.Where, wAnchor)
}

// Merge merges command c2 into c1 within transaction txn (both identified
// by label): the merged command takes c1's position, and uses of c2's
// variable are rewritten to c1's. It fails unless the commands are the same
// kind, on the same table, provably select the same records, and no
// conflicting command sits between them.
//
// All feasibility checks run against p itself — they are pure reads — and
// the program is deep-cloned only once a merge is known to go through:
// repair's try_repair and post-processing probe Merge speculatively, so
// the failing probes must not pay (or leak) a whole-program clone.
func Merge(p *ast.Program, txn, label1, label2 string) (*ast.Program, error) {
	mergedWhere, err := checkMerge(p, txn, label1, label2)
	if err != nil {
		return nil, err
	}
	// mergedWhere points into p; every use below deep-clones it, so the
	// clone never aliases the input program.
	out := ast.CloneProgram(p)
	applyMerge(out.Txn(txn), label1, label2, mergedWhere)
	return out, nil
}

// MergeInPlace is Merge without the whole-program clone: the transaction is
// mutated directly. Exhaustive merge loops (repair's post-processing) use
// it to avoid paying a program clone per successful merge.
func MergeInPlace(p *ast.Program, txn, label1, label2 string) error {
	mergedWhere, err := checkMerge(p, txn, label1, label2)
	if err != nil {
		return err
	}
	applyMerge(p.Txn(txn), label1, label2, mergedWhere)
	return nil
}

// checkMerge runs Merge's feasibility checks (pure reads against p) and
// returns the where clause the merged command keeps.
func checkMerge(p *ast.Program, txn, label1, label2 string) (ast.Expr, error) {
	pt := p.Txn(txn)
	if pt == nil {
		return nil, errf("merge", "unknown transaction %q", txn)
	}
	pc1 := findCommand(pt, label1)
	pc2 := findCommand(pt, label2)
	if pc1 == nil || pc2 == nil {
		return nil, errf("merge", "%s: commands %q/%q not found", txn, label1, label2)
	}
	if pc1.TableName() != pc2.TableName() {
		return nil, errf("merge", "%s: %s and %s target different tables", txn, label1, label2)
	}
	mergedWhere, ok := SameRecords(pt, pc1, pc2)
	if !ok {
		return nil, errf("merge", "%s: cannot prove %s and %s select the same records", txn, label1, label2)
	}
	if err := checkNoConflictBetween(pt, pc1, pc2); err != nil {
		return nil, err
	}
	switch x1 := pc1.(type) {
	case *ast.Select:
		if _, ok := pc2.(*ast.Select); !ok {
			return nil, errf("merge", "%s: %s and %s are different kinds", txn, label1, label2)
		}
	case *ast.Update:
		x2, ok := pc2.(*ast.Update)
		if !ok {
			return nil, errf("merge", "%s: %s and %s are different kinds", txn, label1, label2)
		}
		for _, a := range x2.Sets {
			for _, b := range x1.Sets {
				if b.Field == a.Field && !ast.EqualExpr(a.Expr, b.Expr) {
					return nil, errf("merge", "%s: %s and %s set %q to different values", txn, label1, label2, a.Field)
				}
			}
		}
	default:
		return nil, errf("merge", "%s: %s is not mergeable (inserts are already atomic)", txn, label1)
	}
	return mergedWhere, nil
}

// applyMerge performs the validated merge on t. mergedWhere may alias the
// program that owns t; every use deep-clones it.
func applyMerge(t *ast.Txn, label1, label2 string, mergedWhere ast.Expr) {
	c1 := findCommand(t, label1)
	c2 := findCommand(t, label2)

	switch x1 := c1.(type) {
	case *ast.Select:
		x2 := c2.(*ast.Select)
		merged := &ast.Select{Label: x1.Label, Var: x1.Var, Table: x1.Table, Where: ast.CloneExpr(mergedWhere)}
		if x1.Star || x2.Star {
			merged.Star = true
		} else {
			seen := map[string]bool{}
			for _, f := range append(append([]string(nil), x1.Fields...), x2.Fields...) {
				if !seen[f] {
					seen[f] = true
					merged.Fields = append(merged.Fields, f)
				}
			}
		}
		replaceCommand(t, label1, merged)
		removeCommand(t, label2)
		// Uses of c2's variable now read from the merged select.
		old, nw := x2.Var, x1.Var
		rewriteTxnExprs(t, func(e ast.Expr) ast.Expr {
			return ast.MapExpr(e, func(x ast.Expr) ast.Expr {
				switch fa := x.(type) {
				case *ast.FieldAt:
					if fa.Var == old {
						return &ast.FieldAt{Var: nw, Field: fa.Field, Index: fa.Index}
					}
				case *ast.Agg:
					if fa.Var == old {
						return &ast.Agg{Fn: fa.Fn, Var: nw, Field: fa.Field}
					}
				}
				return x
			})
		})
	case *ast.Update:
		x2 := c2.(*ast.Update)
		merged := &ast.Update{Label: x1.Label, Table: x1.Table, Where: ast.CloneExpr(mergedWhere)}
		merged.Sets = append(merged.Sets, cloneAssignsList(x1.Sets)...)
		for _, a := range x2.Sets {
			dup := false
			for _, b := range x1.Sets {
				if b.Field == a.Field {
					dup = true // equal exprs: validated before cloning
				}
			}
			if !dup {
				merged.Sets = append(merged.Sets, ast.Assign{Field: a.Field, Expr: ast.CloneExpr(a.Expr)})
			}
		}
		replaceCommand(t, label1, merged)
		removeCommand(t, label2)
	}
}

func cloneAssignsList(as []ast.Assign) []ast.Assign {
	out := make([]ast.Assign, len(as))
	for i, a := range as {
		out[i] = ast.Assign{Field: a.Field, Expr: ast.CloneExpr(a.Expr)}
	}
	return out
}

// checkNoConflictBetween refuses the merge when a command between c1 and c2
// could observe or disturb the effect of moving c2 up to c1's position.
func checkNoConflictBetween(t *ast.Txn, c1, c2 ast.DBCommand) error {
	cmds := ast.Commands(t.Body)
	i1, i2 := -1, -1
	for i, c := range cmds {
		if c.CmdLabel() == c1.CmdLabel() {
			i1 = i
		}
		if c.CmdLabel() == c2.CmdLabel() {
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 {
		return errf("merge", "%s: commands not found", t.Name)
	}
	if i1 > i2 {
		i1, i2 = i2, i1
	}
	_, c2IsSelect := c2.(*ast.Select)
	var between []ast.DBCommand
	for _, c := range cmds[i1+1 : i2] {
		between = append(between, c)
	}
	for _, c := range between {
		if c.TableName() != c2.TableName() {
			continue
		}
		if _, isSel := c.(*ast.Select); isSel && c2IsSelect {
			continue // reads commute with reads
		}
		return errf("merge", "%s: command %s between %s and %s conflicts with the merge",
			t.Name, c.CmdLabel(), c1.CmdLabel(), c2.CmdLabel())
	}
	// Moving c2 up must not break def-use: its expressions may not read
	// variables bound between the two commands.
	needed := map[string]bool{}
	for _, e := range ast.StmtExprs(c2) {
		for v := range ast.VarsRead(e) {
			needed[v] = true
		}
	}
	for _, c := range between {
		if sel, ok := c.(*ast.Select); ok && needed[sel.Var] {
			return errf("merge", "%s: %s reads %q bound between the merge points", t.Name, c2.CmdLabel(), sel.Var)
		}
	}
	return nil
}

// findCommand locates a database command by label.
func findCommand(t *ast.Txn, label string) ast.DBCommand {
	var found ast.DBCommand
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			found = c
		}
		return true
	})
	return found
}

// replaceCommand swaps the command with the given label for a new statement.
func replaceCommand(t *ast.Txn, label string, repl ast.Stmt) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			return []ast.Stmt{repl}
		}
		return []ast.Stmt{s}
	})
}

// removeCommand deletes the command with the given label.
func removeCommand(t *ast.Txn, label string) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			return nil
		}
		return []ast.Stmt{s}
	})
}
