package refactor

import (
	"atropos/internal/ast"
)

// This file implements the command splitting used by repair's preprocessing
// (§5: "database commands are split into multiple commands such that each
// command is involved in at most one anomalous access pair") and the
// merging strategy of try_merge, including the same-records analysis that
// decides when two where clauses always select the same records (condition
// R1 of §4.2). The feasibility analyses here are pure reads shared by both
// engines; the transformations live in cow.go (default) and deep.go (the
// differential oracle).

// SplitUpdate splits the update labelled label in transaction txn into one
// update per field group, labelled label.1, label.2, ... (Fig. 11: U4
// becomes U4.1 and U4.2). Groups must partition the update's set fields.
// The returned program is a copy; p is not modified.
func SplitUpdate(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	if DeepClone() {
		return deepSplitUpdate(p, txn, label, groups)
	}
	return cowSplitUpdate(p, txn, label, groups)
}

// SplitSelect splits the select labelled label into one select per field
// group with fresh variables, rewriting downstream accesses accordingly.
// The returned program is a copy; p is not modified.
func SplitSelect(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	if DeepClone() {
		return deepSplitSelect(p, txn, label, groups)
	}
	return cowSplitSelect(p, txn, label, groups)
}

// SameRecords decides whether two commands of one transaction always select
// the same set of records (try_merge's R1 condition). Three patterns are
// recognized, mirroring the paper's examples (§5):
//
//  1. syntactically equal where clauses;
//  2. the lookup pattern: one clause pins this.g = x.g where x was selected
//     from the same table by the other clause (Fig. 9's st_em_id lookup);
//  3. the pinned-by-set pattern: one command's update sets g = e and the
//     other clause is this.g = e (Fig. 11's st_co_id = course).
//
// It returns the where clause the merged command should keep.
func SameRecords(t *ast.Txn, c1, c2 ast.DBCommand) (ast.Expr, bool) {
	w1 := whereOf(c1)
	w2 := whereOf(c2)
	if w1 == nil || w2 == nil {
		return nil, false
	}
	if ast.EqualExpr(w1, w2) {
		return w1, true
	}
	if samePinMaps(w1, w2) {
		return w1, true
	}
	if lookupPattern(t, c1.TableName(), w1, w2) {
		return w1, true
	}
	if lookupPattern(t, c2.TableName(), w2, w1) {
		return w2, true
	}
	if pinnedBySet(t, c1, w1, w2) {
		return w1, true
	}
	if pinnedBySet(t, c2, w2, w1) {
		return w2, true
	}
	return nil, false
}

// samePinMaps reports equality of two equality-conjunction clauses up to
// conjunct reordering.
func samePinMaps(w1, w2 ast.Expr) bool {
	e1, ok1 := ast.WhereEqualities(w1)
	e2, ok2 := ast.WhereEqualities(w2)
	if !ok1 || !ok2 || len(e1) != len(e2) {
		return false
	}
	m1 := map[string]ast.Expr{}
	for _, q := range e1 {
		m1[q.Field] = q.Expr
	}
	for _, q := range e2 {
		e, ok := m1[q.Field]
		if !ok || !ast.EqualExpr(e, q.Expr) {
			return false
		}
	}
	return true
}

func whereOf(c ast.DBCommand) ast.Expr {
	switch x := c.(type) {
	case *ast.Select:
		return x.Where
	case *ast.Update:
		return x.Where
	default:
		return nil
	}
}

// lookupPattern reports whether wLookup has the shape this.g = x.g where x
// was bound by a select on table whose where clause equals wAnchor: the
// looked-up record is the anchored record itself.
func lookupPattern(t *ast.Txn, table string, wAnchor, wLookup ast.Expr) bool {
	bin, ok := wLookup.(*ast.Binary)
	if !ok || bin.Op != ast.OpEq {
		return false
	}
	tf, ok := bin.L.(*ast.ThisField)
	if !ok {
		return false
	}
	fa, ok := bin.R.(*ast.FieldAt)
	if !ok || fa.Index != nil || fa.Field != tf.Field {
		return false
	}
	sel := findSelect(t, fa.Var)
	return sel != nil && sel.Table == table && ast.EqualExpr(sel.Where, wAnchor)
}

// pinnedBySet reports whether every equality conjunct this.g = e of w is
// justified by the anchor command c: either c's update sets g = e (after c
// runs its target records satisfy the conjunct — Fig. 11's st_co_id =
// course) or c's own where clause pins g to the same expression.
func pinnedBySet(t *ast.Txn, c ast.DBCommand, wAnchor, w ast.Expr) bool {
	pins, ok := ast.WhereEqualities(w)
	if !ok || len(pins) == 0 {
		return false
	}
	anchorPins := map[string]ast.Expr{}
	if eqs, ok := ast.WhereEqualities(wAnchor); ok {
		for _, q := range eqs {
			anchorPins[q.Field] = q.Expr
		}
	}
	u, isUpdate := c.(*ast.Update)
	for _, q := range pins {
		justified := false
		if isUpdate {
			for _, a := range u.Sets {
				if a.Field == q.Field && ast.EqualExpr(a.Expr, q.Expr) {
					justified = true
					break
				}
			}
		}
		if !justified {
			if e, ok := anchorPins[q.Field]; ok && ast.EqualExpr(e, q.Expr) {
				justified = true
			}
		}
		if !justified && lookupConjunct(t, c.TableName(), wAnchor, q) {
			justified = true
		}
		if !justified {
			return false
		}
	}
	return true
}

// lookupConjunct reports whether the conjunct this.g = x.g reads g from the
// record selected by wAnchor on the same table.
func lookupConjunct(t *ast.Txn, table string, wAnchor ast.Expr, q ast.WhereEquality) bool {
	fa, ok := q.Expr.(*ast.FieldAt)
	if !ok || fa.Index != nil || fa.Field != q.Field {
		return false
	}
	sel := findSelect(t, fa.Var)
	return sel != nil && sel.Table == table && ast.EqualExpr(sel.Where, wAnchor)
}

// Merge merges command c2 into c1 within transaction txn (both identified
// by label): the merged command takes c1's position, and uses of c2's
// variable are rewritten to c1's. It fails unless the commands are the same
// kind, on the same table, provably select the same records, and no
// conflicting command sits between them.
//
// All feasibility checks run against p itself — they are pure reads — so
// failing speculative probes (repair's try_repair and post-processing
// probe Merge exhaustively) cost no allocation at all. A successful merge
// path-copies only the merged transaction under the default engine.
func Merge(p *ast.Program, txn, label1, label2 string) (*ast.Program, error) {
	mergedWhere, err := checkMerge(p, txn, label1, label2)
	if err != nil {
		return nil, err
	}
	if DeepClone() {
		return deepMerge(p, txn, label1, label2, mergedWhere), nil
	}
	return cowMerge(p, txn, label1, label2, mergedWhere), nil
}

// checkMerge runs Merge's feasibility checks (pure reads against p) and
// returns the where clause the merged command keeps.
func checkMerge(p *ast.Program, txn, label1, label2 string) (ast.Expr, error) {
	pt := p.Txn(txn)
	if pt == nil {
		return nil, errf("merge", "unknown transaction %q", txn)
	}
	pc1 := findCommand(pt, label1)
	pc2 := findCommand(pt, label2)
	if pc1 == nil || pc2 == nil {
		return nil, errf("merge", "%s: commands %q/%q not found", txn, label1, label2)
	}
	if pc1.TableName() != pc2.TableName() {
		return nil, errf("merge", "%s: %s and %s target different tables", txn, label1, label2)
	}
	mergedWhere, ok := SameRecords(pt, pc1, pc2)
	if !ok {
		return nil, errf("merge", "%s: cannot prove %s and %s select the same records", txn, label1, label2)
	}
	if err := checkNoConflictBetween(pt, pc1, pc2); err != nil {
		return nil, err
	}
	switch x1 := pc1.(type) {
	case *ast.Select:
		if _, ok := pc2.(*ast.Select); !ok {
			return nil, errf("merge", "%s: %s and %s are different kinds", txn, label1, label2)
		}
	case *ast.Update:
		x2, ok := pc2.(*ast.Update)
		if !ok {
			return nil, errf("merge", "%s: %s and %s are different kinds", txn, label1, label2)
		}
		for _, a := range x2.Sets {
			for _, b := range x1.Sets {
				if b.Field == a.Field && !ast.EqualExpr(a.Expr, b.Expr) {
					return nil, errf("merge", "%s: %s and %s set %q to different values", txn, label1, label2, a.Field)
				}
			}
		}
	default:
		return nil, errf("merge", "%s: %s is not mergeable (inserts are already atomic)", txn, label1)
	}
	return mergedWhere, nil
}

// checkNoConflictBetween refuses the merge when a command between c1 and c2
// could observe or disturb the effect of moving c2 up to c1's position.
func checkNoConflictBetween(t *ast.Txn, c1, c2 ast.DBCommand) error {
	cmds := ast.Commands(t.Body)
	i1, i2 := -1, -1
	for i, c := range cmds {
		if c.CmdLabel() == c1.CmdLabel() {
			i1 = i
		}
		if c.CmdLabel() == c2.CmdLabel() {
			i2 = i
		}
	}
	if i1 < 0 || i2 < 0 {
		return errf("merge", "%s: commands not found", t.Name)
	}
	if i1 > i2 {
		i1, i2 = i2, i1
	}
	_, c2IsSelect := c2.(*ast.Select)
	var between []ast.DBCommand
	for _, c := range cmds[i1+1 : i2] {
		between = append(between, c)
	}
	for _, c := range between {
		if c.TableName() != c2.TableName() {
			continue
		}
		if _, isSel := c.(*ast.Select); isSel && c2IsSelect {
			continue // reads commute with reads
		}
		return errf("merge", "%s: command %s between %s and %s conflicts with the merge",
			t.Name, c.CmdLabel(), c1.CmdLabel(), c2.CmdLabel())
	}
	// Moving c2 up must not break def-use: its expressions may not read
	// variables bound between the two commands.
	needed := map[string]bool{}
	for _, e := range ast.StmtExprs(c2) {
		for v := range ast.VarsRead(e) {
			needed[v] = true
		}
	}
	for _, c := range between {
		if sel, ok := c.(*ast.Select); ok && needed[sel.Var] {
			return errf("merge", "%s: %s reads %q bound between the merge points", t.Name, c2.CmdLabel(), sel.Var)
		}
	}
	return nil
}

// findCommand locates a database command by label.
func findCommand(t *ast.Txn, label string) ast.DBCommand {
	var found ast.DBCommand
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			found = c
		}
		return true
	})
	return found
}
