package refactor

import (
	"fmt"

	"atropos/internal/ast"
)

// Error describes why a refactoring rule does not apply.
type Error struct {
	Rule string
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("refactor: %s: %s", e.Rule, e.Msg) }

func errf(rule, format string, args ...any) *Error {
	return &Error{Rule: rule, Msg: fmt.Sprintf(format, args...)}
}

// shareExpr is the copy-on-write engine's expression "copy": nodes are
// immutable once shared, so sharing the original is sound. The deep-clone
// engine passes ast.CloneExpr instead.
func shareExpr(e ast.Expr) ast.Expr { return e }

// IntroSchema implements the (intro ρ) rule: add a fresh, empty schema.
// The returned program is a copy; p is not modified.
func IntroSchema(p *ast.Program, name string) (*ast.Program, error) {
	if p.Schema(name) != nil {
		return nil, errf("intro-schema", "schema %q already exists", name)
	}
	if DeepClone() {
		return deepIntroSchema(p, name), nil
	}
	return cowIntroSchema(p, name), nil
}

// IntroField implements the (intro ρ.f) rule: add a fresh field to an
// existing schema. The returned program is a copy.
func IntroField(p *ast.Program, table string, field ast.Field) (*ast.Program, error) {
	s := p.Schema(table)
	if s == nil {
		return nil, errf("intro-field", "unknown schema %q", table)
	}
	if s.HasField(field.Name) {
		return nil, errf("intro-field", "schema %s already has field %q", table, field.Name)
	}
	if DeepClone() {
		return deepIntroField(p, table, field), nil
	}
	return cowIntroField(p, table, field), nil
}

// ApplyCorr implements the (intro v) rule: rewrite every access to
// (v.SrcTable, v.SrcField) to use (v.DstTable, v.DstField) per the
// redirect rule (Agg = any) or logger rule (Agg = sum, Logging = true) of
// Fig. 17. It validates the rule's side conditions (R1–R3 preconditions)
// and returns a rewritten copy of the program, or an error describing the
// failing condition.
func ApplyCorr(p *ast.Program, v ValueCorr) (*ast.Program, error) {
	src := p.Schema(v.SrcTable)
	if src == nil {
		return nil, errf("intro-v", "unknown source schema %q", v.SrcTable)
	}
	if src.Field(v.SrcField) == nil {
		return nil, errf("intro-v", "unknown source field %s.%s", v.SrcTable, v.SrcField)
	}
	dst := p.Schema(v.DstTable)
	if dst == nil {
		return nil, errf("intro-v", "unknown destination schema %q", v.DstTable)
	}
	if dst.Field(v.DstField) == nil {
		return nil, errf("intro-v", "unknown destination field %s.%s", v.DstTable, v.DstField)
	}
	for _, pk := range src.PrimaryKey() {
		g, ok := v.Theta[pk.Name]
		if !ok {
			return nil, errf("intro-v", "θ̂ does not map primary-key field %s.%s", v.SrcTable, pk.Name)
		}
		if dst.Field(g) == nil {
			return nil, errf("intro-v", "θ̂ maps %s to unknown field %s.%s", pk.Name, v.DstTable, g)
		}
	}
	if v.Logging && v.Agg != ast.AggSum {
		return nil, errf("intro-v", "logger rule requires the sum aggregator")
	}
	if !v.Logging && v.Agg != ast.AggAny {
		return nil, errf("intro-v", "redirect rule requires the any aggregator")
	}
	if DeepClone() {
		return deepApplyCorr(p, v)
	}
	return cowApplyCorr(p, v)
}

// validateRewriteTxn is pass 1 of [[·]]_v on one transaction: find the
// variables bound by selects that will be redirected, and validate that
// every access to (SrcTable, SrcField) is rewritable. Pure reads; shared
// by both engines.
func validateRewriteTxn(t *ast.Txn, src *ast.Schema, v ValueCorr) (map[string]bool, error) {
	redirected := map[string]bool{}
	var failure error
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if failure != nil {
			return false
		}
		c, ok := s.(ast.DBCommand)
		if !ok || c.TableName() != v.SrcTable {
			return true
		}
		acc := ast.CommandAccess(c, src)
		touches := false
		for _, f := range append(append([]string(nil), acc.Reads...), acc.Writes...) {
			if f == v.SrcField {
				touches = true
			}
		}
		if !touches {
			return true
		}
		switch x := c.(type) {
		case *ast.Select:
			if x.Star {
				failure = errf("intro-v", "%s.%s: cannot redirect SELECT * (narrow the selection first)", t.Name, x.Label)
				return false
			}
			if len(x.Fields) != 1 {
				failure = errf("intro-v", "%s.%s: select accesses %v; split so it accesses only %s", t.Name, x.Label, x.Fields, v.SrcField)
				return false
			}
			if !whereRedirectable(x.Where, src, v) {
				failure = errf("intro-v", "%s.%s: where clause is not redirectable through θ̂", t.Name, x.Label)
				return false
			}
			redirected[x.Var] = true
		case *ast.Update:
			if len(x.Sets) != 1 || x.Sets[0].Field != v.SrcField {
				failure = errf("intro-v", "%s.%s: update sets multiple fields; split first", t.Name, x.Label)
				return false
			}
			if !whereRedirectable(x.Where, src, v) {
				failure = errf("intro-v", "%s.%s: where clause is not redirectable through θ̂", t.Name, x.Label)
				return false
			}
			for _, f := range ast.WhereFields(x.Where) {
				if f == v.SrcField {
					failure = errf("intro-v", "%s.%s: where clause reads the moved field", t.Name, x.Label)
					return false
				}
			}
		case *ast.Insert:
			failure = errf("intro-v", "%s.%s: inserts into the source schema are not redirectable", t.Name, x.Label)
			return false
		}
		return true
	})
	return redirected, failure
}

// redirectedAccessRewriter builds pass 3's expression rewriter: accesses
// through redirected variables are retargeted to the destination field
// (R2). It reports failures through *rerr; copyExpr is the engine's
// expression copy (share or deep clone). The rewriter's fn contract
// matches both ast.MapExpr and ast.MapExprCOW: return the argument
// unchanged to signal "no rewrite".
func redirectedAccessRewriter(t *ast.Txn, v ValueCorr, redirected map[string]bool, rerr *error) func(ast.Expr) ast.Expr {
	return func(x ast.Expr) ast.Expr {
		switch fa := x.(type) {
		case *ast.FieldAt:
			if redirected[fa.Var] && fa.Field == v.SrcField {
				if v.Logging {
					if fa.Index != nil {
						*rerr = errf("intro-v", "%s: indexed access %s cannot be rewritten under the logger rule", t.Name, ast.ExprString(fa))
						return x
					}
					return &ast.Agg{Fn: ast.AggSum, Var: fa.Var, Field: v.DstField}
				}
				return &ast.FieldAt{Var: fa.Var, Field: v.DstField, Index: fa.Index}
			}
		case *ast.Agg:
			if redirected[fa.Var] && fa.Field == v.SrcField {
				// Under logging only sum survives: one source record maps
				// to many log rows, so count/min/max/any would aggregate
				// over log entries rather than records.
				if v.Logging && fa.Fn != ast.AggSum {
					*rerr = errf("intro-v", "%s: %s aggregation cannot be rewritten under the logger rule", t.Name, ast.ExprString(fa))
					return x
				}
				return &ast.Agg{Fn: fa.Fn, Var: fa.Var, Field: v.DstField}
			}
		}
		return x
	}
}

// redirectWhere implements redirect(φ, θ̂) (§4.2.1): the well-formed where
// clause's primary-key equalities become equalities on the θ̂-image fields.
// As a generalization, a clause that is not a full key-equality conjunction
// (e.g. a range scan) is still redirectable when every field it references
// is θ̂-mapped: each this.f is replaced by this.θ̂(f). copyExpr is the
// engine's expression copy.
func redirectWhere(w ast.Expr, src *ast.Schema, v ValueCorr, copyExpr func(ast.Expr) ast.Expr) (ast.Expr, error) {
	if pins, ok := ast.WellFormedWhere(w, src); ok {
		var out ast.Expr
		for _, pk := range src.PrimaryKey() {
			conj := &ast.Binary{
				Op: ast.OpEq,
				L:  &ast.ThisField{Field: v.Theta[pk.Name]},
				R:  copyExpr(pins[pk.Name]),
			}
			if out == nil {
				out = conj
			} else {
				out = &ast.Binary{Op: ast.OpAnd, L: out, R: conj}
			}
		}
		return out, nil
	}
	for _, f := range ast.WhereFields(w) {
		if _, ok := v.Theta[f]; !ok {
			return nil, errf("intro-v", "where clause %q references un-mapped field %q", ast.ExprString(w), f)
		}
	}
	out := ast.MapExpr(copyExpr(w), func(e ast.Expr) ast.Expr {
		if tf, ok := e.(*ast.ThisField); ok {
			return &ast.ThisField{Field: v.Theta[tf.Field]}
		}
		return e
	})
	return out, nil
}

// whereRedirectable reports whether a where clause can be translated by
// redirectWhere: either well-formed (full key-equality conjunction) or
// referencing only θ̂-mapped fields.
func whereRedirectable(w ast.Expr, src *ast.Schema, v ValueCorr) bool {
	if _, ok := ast.WellFormedWhere(w, src); ok {
		return true
	}
	for _, f := range ast.WhereFields(w) {
		if _, ok := v.Theta[f]; !ok {
			return false
		}
	}
	return true
}

// rewriteUpdate rewrites an update of the moved field: the redirect rule
// retargets it; the logger rule turns increment-shaped updates into inserts
// (Fig. 11: U4.1 becomes an insert into COURSE_CO_ST_CNT_LOG).
func rewriteUpdate(x *ast.Update, src *ast.Schema, v ValueCorr, t *ast.Txn, copyExpr func(ast.Expr) ast.Expr) (ast.Stmt, error) {
	if !v.Logging {
		nw, err := redirectWhere(x.Where, src, v, copyExpr)
		if err != nil {
			return nil, err
		}
		return &ast.Update{
			Label: x.Label, Table: v.DstTable,
			Sets:  []ast.Assign{{Field: v.DstField, Expr: copyExpr(x.Sets[0].Expr)}},
			Where: nw,
		}, nil
	}
	delta, err := incrementDelta(x, v, t, copyExpr)
	if err != nil {
		return nil, err
	}
	pins, ok := ast.WellFormedWhere(x.Where, src)
	if !ok {
		return nil, errf("intro-v", "%s: where clause is not a primary-key equality conjunction", x.Label)
	}
	values := []ast.Assign{}
	for _, pk := range src.PrimaryKey() {
		values = append(values, ast.Assign{Field: v.Theta[pk.Name], Expr: copyExpr(pins[pk.Name])})
	}
	values = append(values,
		ast.Assign{Field: ast.LogIDField, Expr: &ast.UUID{}},
		ast.Assign{Field: v.DstField, Expr: delta},
	)
	return &ast.Insert{Label: x.Label, Table: v.DstTable, Values: values}, nil
}

// incrementDelta recognizes the increment shapes f = e + at1(x.f),
// f = at1(x.f) + e, and f = at1(x.f) - e, where x was selected from the
// same record (equal where clause), and returns the logged delta.
func incrementDelta(x *ast.Update, v ValueCorr, t *ast.Txn, copyExpr func(ast.Expr) ast.Expr) (ast.Expr, error) {
	bin, ok := x.Sets[0].Expr.(*ast.Binary)
	if !ok || (bin.Op != ast.OpAdd && bin.Op != ast.OpSub) {
		return nil, errf("intro-v", "%s: assignment %q is not increment-shaped", x.Label, ast.ExprString(x.Sets[0].Expr))
	}
	isSelfRead := func(e ast.Expr) (string, bool) {
		fa, ok := e.(*ast.FieldAt)
		if !ok || fa.Index != nil || fa.Field != v.SrcField {
			return "", false
		}
		return fa.Var, true
	}
	var varName string
	var delta ast.Expr
	neg := false
	if vn, ok := isSelfRead(bin.L); ok {
		varName, delta = vn, bin.R
		neg = bin.Op == ast.OpSub
	} else if vn, ok := isSelfRead(bin.R); ok && bin.Op == ast.OpAdd {
		varName, delta = vn, bin.L
	} else {
		return nil, errf("intro-v", "%s: assignment %q is not increment-shaped", x.Label, ast.ExprString(x.Sets[0].Expr))
	}
	// The self-read variable must come from a select on the same record.
	sel := findSelect(t, varName)
	if sel == nil || sel.Table != v.SrcTable || !ast.EqualExpr(sel.Where, x.Where) {
		return nil, errf("intro-v", "%s: %s.%s is not a read of the updated record", x.Label, varName, v.SrcField)
	}
	// The delta may read the moved field (through this or other selects):
	// those accesses are values at insert time, and the expression-rewrite
	// pass redirects them to log sums. Only the top-level occurrence is
	// consumed by the increment shape.
	delta = copyExpr(delta)
	if neg {
		delta = &ast.Binary{Op: ast.OpSub, L: &ast.IntLit{Val: 0}, R: delta}
	}
	return delta, nil
}

// findSelect locates the select binding a variable in a transaction.
func findSelect(t *ast.Txn, varName string) *ast.Select {
	var found *ast.Select
	ast.WalkStmts(t.Body, func(s ast.Stmt) bool {
		if sel, ok := s.(*ast.Select); ok && sel.Var == varName {
			found = sel
		}
		return true
	})
	return found
}

// BuildLoggerSchema introduces the logging schema for (srcTable, srcField)
// per §4.2.2 — primary key = source primary key + log_id, single value
// field — and returns the extended program together with the logger
// correspondence.
func BuildLoggerSchema(p *ast.Program, srcTable, srcField string) (*ast.Program, ValueCorr, error) {
	src := p.Schema(srcTable)
	if src == nil {
		return nil, ValueCorr{}, errf("intro-schema", "unknown schema %q", srcTable)
	}
	f := src.Field(srcField)
	if f == nil {
		return nil, ValueCorr{}, errf("intro-schema", "unknown field %s.%s", srcTable, srcField)
	}
	if f.Type != ast.TInt {
		return nil, ValueCorr{}, errf("intro-schema", "logger rule requires an int field, %s.%s is %s", srcTable, srcField, f.Type)
	}
	logName := LogTableName(p, srcTable, srcField)
	out, err := IntroSchema(p, logName)
	if err != nil {
		return nil, ValueCorr{}, err
	}
	theta := map[string]string{}
	for _, pk := range src.PrimaryKey() {
		out, err = IntroField(out, logName, ast.Field{Name: pk.Name, Type: pk.Type, PK: true})
		if err != nil {
			return nil, ValueCorr{}, err
		}
		theta[pk.Name] = pk.Name
	}
	out, err = IntroField(out, logName, ast.Field{Name: ast.LogIDField, Type: ast.TInt, PK: true})
	if err != nil {
		return nil, ValueCorr{}, err
	}
	valField := LogFieldName(srcField)
	out, err = IntroField(out, logName, ast.Field{Name: valField, Type: ast.TInt})
	if err != nil {
		return nil, ValueCorr{}, err
	}
	corr := ValueCorr{
		SrcTable: srcTable, SrcField: srcField,
		DstTable: logName, DstField: valField,
		Theta: theta, Agg: ast.AggSum, Logging: true,
	}
	return out, corr, nil
}
