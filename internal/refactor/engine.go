package refactor

import "sync/atomic"

// The refactoring rules have two interchangeable implementations:
//
//   - The default copy-on-write engine (cow.go): every rule returns a new
//     program that path-copies only the spine from the edited node to the
//     Program header and shares all untouched transactions, schemas,
//     statements, and expressions with its input. Sound because AST nodes
//     are immutable once shared (ast package contract, DESIGN.md §10).
//   - The legacy deep-clone engine (deep.go): every rule deep-clones the
//     whole program and mutates the private clone — the implementation the
//     repair pipeline used before the COW rewrite.
//
// Both produce byte-identical programs, steps, and correspondences; the
// legacy engine is kept as the differential oracle for the COW path (the
// property and fuzz tests in internal/repair flip the switch and compare
// whole pipelines). It is not intended for production use: it exists to
// keep the old cost model — and the old aliasing discipline — runnable.
var deepCloneEngine atomic.Bool

// SetDeepClone selects the legacy deep-clone implementation of every
// refactoring rule (true) or the default copy-on-write one (false). The
// switch is global: it is a test-only differential-oracle hook, flipped
// around sequential pipeline runs, not a per-call option.
func SetDeepClone(on bool) { deepCloneEngine.Store(on) }

// DeepClone reports whether the legacy deep-clone engine is selected.
func DeepClone() bool { return deepCloneEngine.Load() }
