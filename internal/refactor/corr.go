// Package refactor implements the paper's schema-refactoring engine (§4):
// value correspondences, the three refactoring rule templates (intro ρ,
// intro ρ.f, intro v with the redirect and logger instantiations of Fig.
// 17), command merging and splitting, dead-code elimination, the database
// containment relation Σ ⊑_V Σ′ (§4.1), and the data migration that
// materializes a correspondence's image on concrete store states.
package refactor

import (
	"fmt"
	"strings"

	"atropos/internal/ast"
)

// ValueCorr is a value correspondence (R, R′, f, f′, θ, α) (§4.1): field
// SrcField of schema SrcTable is computed from field DstField of schema
// DstTable by aggregating, with Agg, the values of the records related by
// the record correspondence θ.
type ValueCorr struct {
	SrcTable string
	SrcField string
	DstTable string
	DstField string
	// Theta is the lifted record correspondence θ̂: it maps each primary-key
	// field of SrcTable to the DstTable field that carries its value, so
	// θ(r) = { r′ | ∀f. r′.Theta[f] = r.f } (§4.2.1).
	Theta map[string]string
	// Agg is the fold α: AggAny for the redirect rule, AggSum for the
	// logger rule.
	Agg ast.AggFn
	// Logging marks logger-rule correspondences: DstTable is a logging
	// schema whose primary key extends SrcTable's with log_id, and updates
	// to SrcField become inserts (§4.2.2).
	Logging bool
}

func (v ValueCorr) String() string {
	return fmt.Sprintf("(%s, %s, %s, %s, θ̂%v, %s)",
		v.SrcTable, v.DstTable, v.SrcField, v.DstField, v.Theta, v.Agg)
}

// fieldPrefix guesses the destination table's field-name prefix (e.g. "st_"
// for STUDENT{st_id, st_name, ...}) so introduced fields follow the table's
// naming convention, like the paper's st_em_addr and st_co_avail.
func fieldPrefix(s *ast.Schema) string {
	if len(s.Fields) == 0 {
		return strings.ToLower(s.Name) + "_"
	}
	prefix := s.Fields[0].Name
	for _, f := range s.Fields[1:] {
		for !strings.HasPrefix(f.Name, prefix) && prefix != "" {
			prefix = prefix[:len(prefix)-1]
		}
	}
	if prefix == "" || !strings.Contains(prefix, "_") {
		return strings.ToLower(s.Name) + "_"
	}
	// Cut after the last underscore of the common prefix.
	return prefix[:strings.LastIndex(prefix, "_")+1]
}

// DstFieldName derives the introduced field's name on the destination
// schema: the destination's prefix plus the source field name
// (COURSE.co_avail moved into STUDENT becomes st_co_avail).
func DstFieldName(dst *ast.Schema, srcField string) string {
	name := fieldPrefix(dst) + srcField
	for i := 2; dst.HasField(name); i++ {
		name = fmt.Sprintf("%s%s_%d", fieldPrefix(dst), srcField, i)
	}
	return name
}

// LogTableName derives the logging schema's name (COURSE.co_st_cnt becomes
// COURSE_CO_ST_CNT_LOG, as in §2).
func LogTableName(prog *ast.Program, srcTable, srcField string) string {
	name := fmt.Sprintf("%s_%s_LOG", srcTable, strings.ToUpper(srcField))
	for i := 2; prog.Schema(name) != nil; i++ {
		name = fmt.Sprintf("%s_%s_LOG_%d", srcTable, strings.ToUpper(srcField), i)
	}
	return name
}

// LogFieldName derives the logging schema's value field (co_st_cnt becomes
// co_st_cnt_log).
func LogFieldName(srcField string) string { return srcField + "_log" }
