package refactor

import (
	"fmt"

	"atropos/internal/ast"
	"atropos/internal/store"
)

// This file implements the dynamic counterpart of the paper's containment
// relation Σ ⊑_V Σ′ (§4.1) and the data migration that materializes a
// refactored program's initial state from the original program's state.
// The containment checker is the executable oracle behind the refinement
// tests (Theorem 4.2): run both programs under corresponding schedules and
// verify the original final state is recoverable from the refactored one.

// Contains checks that the original store state is contained in the
// refactored state under the correspondences: every alive record of every
// original table is recoverable. Fields with a correspondence are computed
// through θ and α; fields that still exist (same table and field name in
// the refactored program) are compared under the identity correspondence.
// It returns nil when containment holds.
func Contains(orig, ref *store.DB, origProg, refProg *ast.Program, corrs []ValueCorr) error {
	origView := orig.FullView()
	refView := ref.FullView()
	corrFor := func(table, field string) *ValueCorr {
		for i := range corrs {
			if corrs[i].SrcTable == table && corrs[i].SrcField == field {
				return &corrs[i]
			}
		}
		return nil
	}
	for _, s := range origProg.Schemas {
		refSchema := refProg.Schema(s.Name)
		for _, key := range origView.Keys(s.Name) {
			if !origView.Alive(s.Name, key) {
				continue
			}
			row := origView.Row(s.Name, key)
			for _, f := range s.Fields {
				if v := corrFor(s.Name, f.Name); v != nil {
					if err := checkCorr(refView, refProg, *v, row, f.Name); err != nil {
						return fmt.Errorf("refactor: containment: %s[%v].%s: %w", s.Name, key, f.Name, err)
					}
					continue
				}
				if refSchema != nil && refSchema.HasField(f.Name) {
					if err := checkIdentity(refView, refProg, s, row, key, f.Name); err != nil {
						return fmt.Errorf("refactor: containment: %s[%v].%s: %w", s.Name, key, f.Name, err)
					}
					continue
				}
				// A primary-key field of a dropped table is implicitly
				// recovered through any correspondence whose θ̂ maps it.
				if f.PK && pkCovered(corrs, s.Name, f.Name) {
					continue
				}
				return fmt.Errorf("refactor: containment: %s.%s has no correspondence and no identity", s.Name, f.Name)
			}
		}
	}
	return nil
}

// pkCovered reports whether some correspondence's θ̂ maps the primary-key
// field (its value is then recoverable from the matching records).
func pkCovered(corrs []ValueCorr, table, field string) bool {
	for _, v := range corrs {
		if v.SrcTable == table {
			if _, ok := v.Theta[field]; ok {
				return true
			}
		}
	}
	return false
}

// thetaImage collects the destination records θ(r) for an original record
// with the given row valuation.
func thetaImage(refView *store.View, refProg *ast.Program, v ValueCorr, row store.Row) []store.Key {
	var out []store.Key
	if refProg.Schema(v.DstTable) == nil {
		return nil
	}
	for _, k := range refView.Keys(v.DstTable) {
		if !refView.Alive(v.DstTable, k) {
			continue
		}
		match := true
		for srcPK, dstField := range v.Theta {
			want, ok := row[srcPK]
			if !ok {
				match = false
				break
			}
			got, _ := refView.Read(v.DstTable, k, dstField)
			if !got.Equal(want) {
				match = false
				break
			}
		}
		if match {
			out = append(out, k)
		}
	}
	return out
}

// checkCorr verifies X(r.f) = α({ X′(r′.f′) | r′ ∈ θ(r) }) for one record
// and correspondence.
func checkCorr(refView *store.View, refProg *ast.Program, v ValueCorr, row store.Row, field string) error {
	image := thetaImage(refView, refProg, v, row)
	want := row[field]
	if len(image) == 0 {
		// Total-table reading (§3: a table conceptually contains a record
		// for every primary key): an empty materialized image denotes
		// records holding zero values, so the original value is
		// recoverable iff it is the zero value.
		if want.Equal(store.Zero(want.T)) {
			return nil
		}
		return fmt.Errorf("θ(r) has no materialized records but the value is %s", want)
	}
	switch v.Agg {
	case ast.AggAny:
		// any is a nondeterministic choice: the original value must be one
		// of the values carried by the corresponding records.
		for _, k := range image {
			got, _ := refView.Read(v.DstTable, k, v.DstField)
			if got.Equal(want) {
				return nil
			}
		}
		return fmt.Errorf("value %s not among the %d corresponding records", want, len(image))
	case ast.AggSum:
		var total int64
		for _, k := range image {
			got, _ := refView.Read(v.DstTable, k, v.DstField)
			total += got.I
		}
		if want.T != ast.TInt || total != want.I {
			return fmt.Errorf("sum over θ(r) = %d, original value %s", total, want)
		}
		return nil
	default:
		return fmt.Errorf("unsupported aggregator %v", v.Agg)
	}
}

// checkIdentity compares a field that survived the refactoring unchanged.
func checkIdentity(refView *store.View, refProg *ast.Program, s *ast.Schema, row store.Row, key store.Key, field string) error {
	if !refView.Alive(s.Name, key) {
		return fmt.Errorf("record missing in refactored table")
	}
	got, _ := refView.Read(s.Name, key, field)
	if !got.Equal(row[field]) {
		return fmt.Errorf("identity mismatch: original %s, refactored %s", row[field], got)
	}
	return nil
}

// Migrate builds the refactored program's initial store state from the
// original program's state: surviving tables copy their records, moved
// fields are materialized on the θ-matching destination records, and
// logger correspondences seed one log row per source record carrying its
// current value. This is the schema-migration step a deployment of the
// refactored program would run.
func Migrate(orig *store.DB, origProg, refProg *ast.Program, corrs []ValueCorr) (*store.DB, error) {
	origView := orig.FullView()
	// Migration-created log identifiers live in a range disjoint from
	// runtime uuid() values (instance-scoped negatives well above -1e15),
	// so later inserts can never collide with migrated rows.
	migSeq := int64(0)
	migID := func() store.Value {
		migSeq++
		return store.IntV(-1_000_000_000_000_000 - migSeq)
	}

	// Materialize surviving tables.
	rows := map[string]map[store.Key]store.Row{}
	for _, s := range refProg.Schemas {
		rows[s.Name] = map[store.Key]store.Row{}
		if origProg.Schema(s.Name) == nil {
			continue // introduced table: filled by correspondences below
		}
		for _, k := range origView.Keys(s.Name) {
			if !origView.Alive(s.Name, k) {
				continue
			}
			origRow := origView.Row(s.Name, k)
			nr := store.Row{}
			for _, f := range s.Fields {
				if v, ok := origRow[f.Name]; ok {
					nr[f.Name] = v
				} else {
					nr[f.Name] = store.Zero(f.Type)
				}
			}
			rows[s.Name][k] = nr
		}
	}

	// Apply correspondences in order.
	for _, v := range corrs {
		srcSchema := origProg.Schema(v.SrcTable)
		if srcSchema == nil {
			return nil, fmt.Errorf("refactor: migrate: unknown source table %q", v.SrcTable)
		}
		dstSchema := refProg.Schema(v.DstTable)
		if dstSchema == nil {
			return nil, fmt.Errorf("refactor: migrate: destination table %q absent from refactored program", v.DstTable)
		}
		for _, sk := range origView.Keys(v.SrcTable) {
			if !origView.Alive(v.SrcTable, sk) {
				continue
			}
			srcRow := origView.Row(v.SrcTable, sk)
			if v.Logging {
				// Seed the log with the current value.
				nr := store.Row{}
				var pkVals []store.Value
				for _, pk := range dstSchema.PrimaryKey() {
					if pk.Name == ast.LogIDField {
						val := migID()
						nr[ast.LogIDField] = val
						pkVals = append(pkVals, val)
						continue
					}
					// Log tables name their key fields after the source's.
					srcField := pk.Name
					for sf, df := range v.Theta {
						if df == pk.Name {
							srcField = sf
						}
					}
					val := srcRow[srcField]
					nr[pk.Name] = val
					pkVals = append(pkVals, val)
				}
				nr[v.DstField] = srcRow[v.SrcField]
				rows[v.DstTable][store.MakeKey(pkVals...)] = fillZeros(nr, dstSchema)
				continue
			}
			// Redirect: set the destination field on every θ-matching row.
			for dk, dr := range rows[v.DstTable] {
				match := true
				for srcPK, dstField := range v.Theta {
					if !dr[dstField].Equal(srcRow[srcPK]) {
						match = false
						break
					}
				}
				if match {
					dr[v.DstField] = srcRow[v.SrcField]
					rows[v.DstTable][dk] = dr
				}
			}
		}
	}

	// Load into a fresh store.
	db := store.NewDB(refProg)
	for table, recs := range rows {
		for _, r := range recs {
			if _, err := db.Load(table, r); err != nil {
				return nil, fmt.Errorf("refactor: migrate: %s: %w", table, err)
			}
		}
	}
	return db, nil
}

func fillZeros(r store.Row, s *ast.Schema) store.Row {
	for _, f := range s.Fields {
		if _, ok := r[f.Name]; !ok {
			r[f.Name] = store.Zero(f.Type)
		}
	}
	return r
}
