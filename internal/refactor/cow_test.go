package refactor

import (
	"testing"

	"atropos/internal/ast"
)

// These tests pin the copy-on-write engine's sharing contract at the rule
// level: a rule's output shares every transaction and schema it did not
// edit with its input (path copying, pointer-identical nodes), and never
// mutates the input. The repair-level differential tests
// (internal/repair/cow_test.go) pin output equivalence against the
// deep-clone engine; these pin that the cheap path actually is cheap.

func TestCOWApplyCorrSharesUntouchedTxns(t *testing.T) {
	p := mustProg(t, courseware)
	before := ast.Format(p)
	p2, err := IntroField(p, "STUDENT", ast.Field{Name: "st_em_addr", Type: ast.TString})
	if err != nil {
		t.Fatalf("IntroField: %v", err)
	}
	// IntroField touches no transaction: all are shared.
	for i := range p.Txns {
		if p2.Txns[i] != p.Txns[i] {
			t.Errorf("IntroField copied transaction %s", p.Txns[i].Name)
		}
	}
	// Untouched schemas are shared; the edited one is not.
	if p2.Schema("COURSE") != p.Schema("COURSE") {
		t.Error("IntroField copied an untouched schema")
	}
	if p2.Schema("STUDENT") == p.Schema("STUDENT") {
		t.Error("IntroField mutated the input's schema node")
	}

	p3, err := ApplyCorr(p2, emailCorr())
	if err != nil {
		t.Fatalf("ApplyCorr: %v", err)
	}
	// regSt never touches EMAIL.em_addr: its node survives the rewrite.
	if p3.Txn("regSt") != p2.Txn("regSt") {
		t.Error("ApplyCorr copied a transaction the correspondence does not touch")
	}
	if p3.Txn("getSt") == p2.Txn("getSt") {
		t.Error("ApplyCorr mutated a rewritten transaction in place")
	}
	if got := ast.Format(p); got != before {
		t.Errorf("input program mutated:\n%s", got)
	}
}

func TestCOWMergeSharesUntouchedTxns(t *testing.T) {
	src := `
table T { id: int key, a: int, b: int, }
txn two(k: int) {
  x := select a from T where id = k;
  y := select b from T where id = k;
  return x.a + y.b;
}
txn other(k: int) {
  z := select a from T where id = k;
  return z.a;
}
`
	p := mustProg(t, src)
	before := ast.Format(p)
	p2, err := Merge(p, "two", "S1", "S2")
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	if p2.Txn("other") != p.Txn("other") {
		t.Error("Merge copied the untouched transaction")
	}
	if len(p2.Schemas) != len(p.Schemas) || p2.Schemas[0] != p.Schemas[0] {
		t.Error("Merge copied the schema list")
	}
	if got := ast.Format(p); got != before {
		t.Errorf("Merge mutated its input:\n%s", got)
	}
	checkSema(t, p2, "Merge")
}

func TestDeepCloneEngineMatchesOnRules(t *testing.T) {
	// Rule-level spot check of the engine switch: the same split produces
	// byte-identical programs under both engines.
	p := mustProg(t, courseware)
	cow, err := SplitUpdate(p, "regSt", "U2", [][]string{{"co_st_cnt"}, {"co_avail"}})
	if err != nil {
		t.Fatalf("SplitUpdate (cow): %v", err)
	}
	SetDeepClone(true)
	defer SetDeepClone(false)
	deep, err := SplitUpdate(p, "regSt", "U2", [][]string{{"co_st_cnt"}, {"co_avail"}})
	if err != nil {
		t.Fatalf("SplitUpdate (deep): %v", err)
	}
	if ast.Format(cow) != ast.Format(deep) {
		t.Errorf("engines diverge:\n--- cow ---\n%s\n--- deep ---\n%s", ast.Format(cow), ast.Format(deep))
	}
}
