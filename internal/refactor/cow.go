package refactor

import (
	"atropos/internal/ast"
)

// The copy-on-write engine (DESIGN.md §10): every rule returns a program
// that path-copies only the spine from the edited node up to the Program
// header. A speculative probe that edits one command in one transaction
// allocates a Program header, one transaction, the rewritten statements,
// and the rebuilt expressions — everything else (all other transactions,
// all schemas, every untouched statement and expression) is shared with
// the input. Sound because shared AST nodes are immutable (ast package
// contract); validated against the deep-clone engine by the differential
// tests in internal/repair.

func cowIntroSchema(p *ast.Program, name string) *ast.Program {
	schemas := make([]*ast.Schema, len(p.Schemas), len(p.Schemas)+1)
	copy(schemas, p.Schemas)
	schemas = append(schemas, &ast.Schema{Name: name})
	return ast.WithSchemas(p, schemas)
}

func cowIntroField(p *ast.Program, table string, field ast.Field) *ast.Program {
	schemas := make([]*ast.Schema, len(p.Schemas))
	copy(schemas, p.Schemas)
	for i, s := range schemas {
		if s.Name != table {
			continue
		}
		fields := make([]*ast.Field, len(s.Fields), len(s.Fields)+1)
		copy(fields, s.Fields)
		cp := field
		schemas[i] = &ast.Schema{Name: s.Name, Fields: append(fields, &cp)}
		break
	}
	return ast.WithSchemas(p, schemas)
}

func cowApplyCorr(p *ast.Program, v ValueCorr) (*ast.Program, error) {
	out := &ast.Program{Schemas: p.Schemas, Txns: make([]*ast.Txn, len(p.Txns))}
	copy(out.Txns, p.Txns)
	for i, t := range p.Txns {
		nt, err := cowRewriteTxn(p, t, v)
		if err != nil {
			return nil, err
		}
		out.Txns[i] = nt
	}
	return out, nil
}

// cowRewriteTxn applies [[·]]_v to one transaction, sharing it when the
// correspondence does not touch it.
func cowRewriteTxn(p *ast.Program, t *ast.Txn, v ValueCorr) (*ast.Txn, error) {
	src := p.Schema(v.SrcTable)

	// Pass 1: validate and collect redirected variables.
	redirected, err := validateRewriteTxn(t, src, v)
	if err != nil {
		return nil, err
	}

	// Pass 2: rewrite the commands.
	var rerr error
	body, bodyChanged := ast.MapStmtsCOW(t.Body, func(s ast.Stmt) []ast.Stmt {
		if rerr != nil {
			return []ast.Stmt{s}
		}
		c, ok := s.(ast.DBCommand)
		if !ok || c.TableName() != v.SrcTable {
			return []ast.Stmt{s}
		}
		switch x := c.(type) {
		case *ast.Select:
			if len(x.Fields) != 1 || x.Fields[0] != v.SrcField {
				return []ast.Stmt{s}
			}
			nw, err := redirectWhere(x.Where, src, v, shareExpr)
			if err != nil {
				rerr = err
				return []ast.Stmt{s}
			}
			return []ast.Stmt{&ast.Select{
				Label: x.Label, Var: x.Var,
				Fields: []string{v.DstField},
				Table:  v.DstTable,
				Where:  ast.Intern(nw),
			}}
		case *ast.Update:
			if len(x.Sets) != 1 || x.Sets[0].Field != v.SrcField {
				return []ast.Stmt{s}
			}
			ns, err := rewriteUpdate(x, src, v, t, shareExpr)
			if err != nil {
				rerr = err
				return []ast.Stmt{s}
			}
			return []ast.Stmt{ns}
		default:
			return []ast.Stmt{s}
		}
	})
	if rerr != nil {
		return nil, rerr
	}
	nt := t
	if bodyChanged {
		nt = &ast.Txn{Name: t.Name, Params: t.Params, Body: body, Ret: t.Ret}
	}

	// Pass 3: rewrite accesses through redirected variables everywhere
	// (commands' embedded expressions and the return expression): R2.
	fn := redirectedAccessRewriter(nt, v, redirected, &rerr)
	nt, _ = ast.MapTxnExprsCOW(nt, func(e ast.Expr) ast.Expr { return ast.MapExprCOW(e, fn) })
	if rerr != nil {
		return nil, rerr
	}
	return nt, nil
}

func cowSplitUpdate(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	ti := ast.TxnIndex(p, txn)
	if ti < 0 {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	t := p.Txns[ti]
	var serr error
	found := false
	body, _ := ast.MapStmtsCOW(t.Body, func(s ast.Stmt) []ast.Stmt {
		u, ok := s.(*ast.Update)
		if !ok || u.Label != label {
			return []ast.Stmt{s}
		}
		found = true
		parts, err := splitUpdateParts(u, txn, label, groups, shareExpr)
		if err != nil {
			serr = err
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no update labelled %q in %s", label, txn)
	}
	return ast.WithTxn(p, ti, &ast.Txn{Name: t.Name, Params: t.Params, Body: body, Ret: t.Ret}), nil
}

func cowSplitSelect(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	ti := ast.TxnIndex(p, txn)
	if ti < 0 {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	t := p.Txns[ti]
	var serr error
	found := false
	fieldVar := map[string]string{} // field -> new variable
	var oldVar string
	body, _ := ast.MapStmtsCOW(t.Body, func(s ast.Stmt) []ast.Stmt {
		sel, ok := s.(*ast.Select)
		if !ok || sel.Label != label {
			return []ast.Stmt{s}
		}
		if sel.Star {
			serr = errf("split", "%s.%s: cannot split SELECT *", txn, label)
			return []ast.Stmt{s}
		}
		found = true
		oldVar = sel.Var
		parts, err := splitSelectParts(sel, txn, label, groups, fieldVar, shareExpr)
		if err != nil {
			serr = err
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no select labelled %q in %s", label, txn)
	}
	nt := &ast.Txn{Name: t.Name, Params: t.Params, Body: body, Ret: t.Ret}
	// Rewrite accesses x.f to the new variable holding f.
	fn := splitVarRewriter(oldVar, fieldVar)
	nt, _ = ast.MapTxnExprsCOW(nt, func(e ast.Expr) ast.Expr { return ast.MapExprCOW(e, fn) })
	return ast.WithTxn(p, ti, nt), nil
}

// cowMerge performs the validated merge, path-copying only the merged
// transaction. mergedWhere may alias p — sharing it is sound.
func cowMerge(p *ast.Program, txn, label1, label2 string, mergedWhere ast.Expr) *ast.Program {
	ti := ast.TxnIndex(p, txn)
	t := p.Txns[ti]
	c1 := findCommand(t, label1)
	c2 := findCommand(t, label2)

	var repl ast.Stmt
	var rewriteVars func(ast.Expr) ast.Expr
	switch x1 := c1.(type) {
	case *ast.Select:
		x2 := c2.(*ast.Select)
		repl = mergedSelect(x1, x2, mergedWhere)
		// Uses of c2's variable now read from the merged select.
		rewriteVars = mergeVarRewriter(x2.Var, x1.Var)
	case *ast.Update:
		x2 := c2.(*ast.Update)
		repl = mergedUpdate(x1, x2, mergedWhere, shareExpr)
	}

	body, _ := ast.MapStmtsCOW(t.Body, func(s ast.Stmt) []ast.Stmt {
		c, ok := s.(ast.DBCommand)
		if !ok {
			return []ast.Stmt{s}
		}
		switch c.CmdLabel() {
		case label1:
			return []ast.Stmt{repl}
		case label2:
			return nil
		}
		return []ast.Stmt{s}
	})
	nt := &ast.Txn{Name: t.Name, Params: t.Params, Body: body, Ret: t.Ret}
	if rewriteVars != nil {
		nt, _ = ast.MapTxnExprsCOW(nt, func(e ast.Expr) ast.Expr { return ast.MapExprCOW(e, rewriteVars) })
	}
	return ast.WithTxn(p, ti, nt)
}

func cowRemoveDeadSelects(p *ast.Program) (*ast.Program, int) {
	removed := 0
	out := p
	for {
		changed := false
		for i := range out.Txns {
			t := out.Txns[i]
			dead := DeadSelects(t)
			if len(dead) == 0 {
				continue
			}
			deadSet := map[string]bool{}
			for _, label := range dead {
				deadSet[label] = true
			}
			body, _ := ast.MapStmtsCOW(t.Body, func(s ast.Stmt) []ast.Stmt {
				if sel, ok := s.(*ast.Select); ok && deadSet[sel.Label] {
					return nil
				}
				return []ast.Stmt{s}
			})
			if out == p {
				out = &ast.Program{Schemas: p.Schemas, Txns: make([]*ast.Txn, len(p.Txns))}
				copy(out.Txns, p.Txns)
			}
			out.Txns[i] = &ast.Txn{Name: t.Name, Params: t.Params, Body: body, Ret: t.Ret}
			removed += len(dead)
			changed = true
		}
		if !changed {
			return out, removed
		}
	}
}

func cowGCSchemas(p *ast.Program, moved map[string]map[string]bool) (*ast.Program, []string) {
	acc := accessedFields(p)
	var kept []*ast.Schema
	var removedTables []string
	for _, s := range p.Schemas {
		fields, used := acc[s.Name]
		movedHere := moved[s.Name]
		if gcDropsTable(s, used, movedHere) {
			removedTables = append(removedTables, s.Name)
			continue
		}
		var keptFields []*ast.Field
		dropped := false
		for _, f := range s.Fields {
			if f.PK || fields[f.Name] || !movedHere[f.Name] {
				keptFields = append(keptFields, f)
			} else {
				dropped = true
			}
		}
		if dropped {
			kept = append(kept, &ast.Schema{Name: s.Name, Fields: keptFields})
		} else {
			kept = append(kept, s)
		}
	}
	return ast.WithSchemas(p, kept), removedTables
}
