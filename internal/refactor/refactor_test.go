package refactor

import (
	"strings"
	"testing"

	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/sema"
)

const courseware = `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}
`

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return p
}

func checkSema(t *testing.T, p *ast.Program, context string) {
	t.Helper()
	if err := sema.Check(p); err != nil {
		t.Fatalf("%s produced an ill-typed program: %v\n%s", context, err, ast.Format(p))
	}
}

func TestIntroSchemaAndField(t *testing.T) {
	p := mustProg(t, courseware)
	p2, err := IntroSchema(p, "NEW")
	if err != nil {
		t.Fatalf("IntroSchema: %v", err)
	}
	if p.Schema("NEW") != nil {
		t.Error("IntroSchema mutated its input")
	}
	if p2.Schema("NEW") == nil {
		t.Fatal("schema not added")
	}
	if _, err := IntroSchema(p2, "NEW"); err == nil {
		t.Error("duplicate schema accepted")
	}
	p3, err := IntroField(p2, "NEW", ast.Field{Name: "id", Type: ast.TInt, PK: true})
	if err != nil {
		t.Fatalf("IntroField: %v", err)
	}
	if p3.Schema("NEW").Field("id") == nil {
		t.Fatal("field not added")
	}
	if _, err := IntroField(p3, "NEW", ast.Field{Name: "id", Type: ast.TInt}); err == nil {
		t.Error("duplicate field accepted")
	}
	if _, err := IntroField(p3, "NOPE", ast.Field{Name: "x", Type: ast.TInt}); err == nil {
		t.Error("unknown schema accepted")
	}
}

// emailCorr is the paper's Fig. 9 correspondence: EMAIL.em_addr moves into
// STUDENT.st_em_addr with θ̂(em_id) = st_em_id.
func emailCorr() ValueCorr {
	return ValueCorr{
		SrcTable: "EMAIL", SrcField: "em_addr",
		DstTable: "STUDENT", DstField: "st_em_addr",
		Theta: map[string]string{"em_id": "st_em_id"},
		Agg:   ast.AggAny,
	}
}

func applyEmailCorr(t *testing.T, p *ast.Program) *ast.Program {
	t.Helper()
	p2, err := IntroField(p, "STUDENT", ast.Field{Name: "st_em_addr", Type: ast.TString})
	if err != nil {
		t.Fatalf("IntroField: %v", err)
	}
	p3, err := ApplyCorr(p2, emailCorr())
	if err != nil {
		t.Fatalf("ApplyCorr: %v", err)
	}
	return p3
}

func TestApplyCorrRedirectsFig9(t *testing.T) {
	p3 := applyEmailCorr(t, mustProg(t, courseware))
	checkSema(t, p3, "redirect")

	// getSt's S2 now selects st_em_addr from STUDENT where st_em_id = x.st_em_id.
	getSt := p3.Txn("getSt")
	s2 := ast.Commands(getSt.Body)[1].(*ast.Select)
	if s2.Table != "STUDENT" || s2.Fields[0] != "st_em_addr" {
		t.Fatalf("S2 redirected to %s.%v", s2.Table, s2.Fields)
	}
	if got := ast.ExprString(s2.Where); !strings.Contains(got, "st_em_id") {
		t.Fatalf("S2 where = %s, want st_em_id constraint", got)
	}
	// The return expression was rewritten (R2).
	if got := ast.ExprString(getSt.Ret); got != "y.st_em_addr" {
		t.Fatalf("getSt return = %s, want y.st_em_addr", got)
	}
	// setSt's U2 now updates STUDENT (Fig. 9 bottom-right).
	setSt := p3.Txn("setSt")
	u2 := ast.Commands(setSt.Body)[2].(*ast.Update)
	if u2.Table != "STUDENT" || u2.Sets[0].Field != "st_em_addr" {
		t.Fatalf("U2 redirected to %s.%v", u2.Table, u2.Sets)
	}
}

func TestApplyCorrValidations(t *testing.T) {
	p := mustProg(t, courseware)
	cases := []struct {
		name string
		corr ValueCorr
		want string
	}{
		{"unknown src table", ValueCorr{SrcTable: "NOPE", SrcField: "x", DstTable: "STUDENT", DstField: "st_name", Theta: map[string]string{}, Agg: ast.AggAny}, "unknown source schema"},
		{"unknown src field", ValueCorr{SrcTable: "EMAIL", SrcField: "nope", DstTable: "STUDENT", DstField: "st_name", Theta: map[string]string{}, Agg: ast.AggAny}, "unknown source field"},
		{"unknown dst", ValueCorr{SrcTable: "EMAIL", SrcField: "em_addr", DstTable: "NOPE", DstField: "x", Theta: map[string]string{}, Agg: ast.AggAny}, "unknown destination schema"},
		{"theta incomplete", ValueCorr{SrcTable: "EMAIL", SrcField: "em_addr", DstTable: "STUDENT", DstField: "st_name", Theta: map[string]string{}, Agg: ast.AggAny}, "θ̂ does not map"},
		{"bad agg", ValueCorr{SrcTable: "EMAIL", SrcField: "em_addr", DstTable: "STUDENT", DstField: "st_name", Theta: map[string]string{"em_id": "st_em_id"}, Agg: ast.AggSum}, "redirect rule requires"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := ApplyCorr(p, tc.corr)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error = %v, want containing %q", err, tc.want)
			}
		})
	}
}

func TestBuildLoggerSchemaAndApply(t *testing.T) {
	p := mustProg(t, courseware)
	// Split U2 of regSt first so it sets only co_st_cnt.
	p, err := SplitUpdate(p, "regSt", "U2", [][]string{{"co_st_cnt"}, {"co_avail"}})
	if err != nil {
		t.Fatalf("SplitUpdate: %v", err)
	}
	p2, corr, err := BuildLoggerSchema(p, "COURSE", "co_st_cnt")
	if err != nil {
		t.Fatalf("BuildLoggerSchema: %v", err)
	}
	if corr.DstTable != "COURSE_CO_ST_CNT_LOG" {
		t.Fatalf("log table = %s", corr.DstTable)
	}
	logSchema := p2.Schema(corr.DstTable)
	if logSchema == nil {
		t.Fatal("log schema missing")
	}
	if pk := logSchema.PrimaryKey(); len(pk) != 2 {
		t.Fatalf("log pk = %v, want co_id + log_id", pk)
	}
	p3, err := ApplyCorr(p2, corr)
	if err != nil {
		t.Fatalf("ApplyCorr(logger): %v", err)
	}
	checkSema(t, p3, "logger")
	// The increment update became an insert with delta 1 and uuid log_id.
	regSt := p3.Txn("regSt")
	var ins *ast.Insert
	for _, c := range ast.Commands(regSt.Body) {
		if x, ok := c.(*ast.Insert); ok {
			ins = x
		}
	}
	if ins == nil {
		t.Fatalf("no insert in repaired regSt:\n%s", ast.Format(p3))
	}
	if ins.Table != corr.DstTable {
		t.Fatalf("insert into %s, want %s", ins.Table, corr.DstTable)
	}
	hasUUID := false
	for _, a := range ins.Values {
		if _, ok := a.Expr.(*ast.UUID); ok && a.Field == ast.LogIDField {
			hasUUID = true
		}
	}
	if !hasUUID {
		t.Fatal("insert does not set log_id = uuid()")
	}
	// The select S1 of regSt is now dead (its variable feeds only the
	// removed increment).
	if !IsDeadSelect(p3, "regSt", "S1") {
		t.Fatalf("S1 not dead after logging:\n%s", ast.Format(p3))
	}
}

func TestLoggerRejectsNonIncrement(t *testing.T) {
	src := `
table T { id: int key, n: int, }
txn setAbs(k: int, v: int) {
  update T set n = v where id = k;
}
`
	p := mustProg(t, src)
	p2, corr, err := BuildLoggerSchema(p, "T", "n")
	if err != nil {
		t.Fatalf("BuildLoggerSchema: %v", err)
	}
	if _, err := ApplyCorr(p2, corr); err == nil || !strings.Contains(err.Error(), "increment") {
		t.Fatalf("absolute assignment accepted by logger rule: %v", err)
	}
}

func TestLoggerRejectsNonIntField(t *testing.T) {
	p := mustProg(t, courseware)
	if _, _, err := BuildLoggerSchema(p, "EMAIL", "em_addr"); err == nil {
		t.Fatal("logger accepted a string field")
	}
}

func TestSplitUpdate(t *testing.T) {
	p := mustProg(t, courseware)
	p2, err := SplitUpdate(p, "regSt", "U2", [][]string{{"co_st_cnt"}, {"co_avail"}})
	if err != nil {
		t.Fatalf("SplitUpdate: %v", err)
	}
	checkSema(t, p2, "split")
	cmds := ast.Commands(p2.Txn("regSt").Body)
	if len(cmds) != 4 {
		t.Fatalf("regSt has %d commands after split, want 4", len(cmds))
	}
	u21, ok1 := cmds[2].(*ast.Update)
	u22, ok2 := cmds[3].(*ast.Update)
	if !ok1 || !ok2 {
		t.Fatalf("split results are %T, %T", cmds[2], cmds[3])
	}
	if u21.Label != "U2.1" || u22.Label != "U2.2" {
		t.Fatalf("labels = %s, %s", u21.Label, u22.Label)
	}
	if len(u21.Sets) != 1 || u21.Sets[0].Field != "co_st_cnt" {
		t.Fatalf("U2.1 sets %v", u21.Sets)
	}
	if !ast.EqualExpr(u21.Where, u22.Where) {
		t.Fatal("split parts have different where clauses")
	}
	// Errors.
	if _, err := SplitUpdate(p, "regSt", "U2", [][]string{{"co_st_cnt"}}); err == nil {
		t.Error("partial partition accepted")
	}
	if _, err := SplitUpdate(p, "regSt", "U9", nil); err == nil {
		t.Error("unknown label accepted")
	}
}

func TestSplitSelect(t *testing.T) {
	src := `
table T { id: int key, a: int, b: int, }
txn rd(k: int) {
  x := select a, b from T where id = k;
  return x.a + x.b;
}
`
	p := mustProg(t, src)
	p2, err := SplitSelect(p, "rd", "S1", [][]string{{"a"}, {"b"}})
	if err != nil {
		t.Fatalf("SplitSelect: %v", err)
	}
	checkSema(t, p2, "split select")
	cmds := ast.Commands(p2.Txn("rd").Body)
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2", len(cmds))
	}
	ret := ast.ExprString(p2.Txn("rd").Ret)
	if !strings.Contains(ret, "x_1.a") || !strings.Contains(ret, "x_2.b") {
		t.Fatalf("return = %s, want split variable accesses", ret)
	}
}

func TestMergeSelectsEqualWhere(t *testing.T) {
	src := `
table T { id: int key, a: int, b: int, }
txn rd(k: int) {
  x := select a from T where id = k;
  y := select b from T where id = k;
  return x.a + y.b;
}
`
	p := mustProg(t, src)
	p2, err := Merge(p, "rd", "S1", "S2")
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	checkSema(t, p2, "merge")
	cmds := ast.Commands(p2.Txn("rd").Body)
	if len(cmds) != 1 {
		t.Fatalf("commands = %d, want 1", len(cmds))
	}
	sel := cmds[0].(*ast.Select)
	if len(sel.Fields) != 2 {
		t.Fatalf("merged fields = %v", sel.Fields)
	}
	if got := ast.ExprString(p2.Txn("rd").Ret); got != "(x.a + x.b)" {
		t.Fatalf("return = %s, want (x.a + x.b)", got)
	}
}

func TestMergeLookupPattern(t *testing.T) {
	// Fig. 9 after redirect: U1 (where st_id = id) and U2' (where
	// st_em_id = x.st_em_id, x selected by st_id = id) merge into one
	// update anchored at st_id = id.
	p3 := applyEmailCorr(t, mustProg(t, courseware))
	p4, err := Merge(p3, "setSt", "U1", "U2")
	if err != nil {
		t.Fatalf("Merge: %v", err)
	}
	checkSema(t, p4, "lookup merge")
	setSt := p4.Txn("setSt")
	var updates []*ast.Update
	for _, c := range ast.Commands(setSt.Body) {
		if u, ok := c.(*ast.Update); ok {
			updates = append(updates, u)
		}
	}
	if len(updates) != 1 {
		t.Fatalf("updates after merge = %d, want 1", len(updates))
	}
	if got := ast.ExprString(updates[0].Where); !strings.Contains(got, "st_id") {
		t.Fatalf("merged where = %s, want anchored at st_id", got)
	}
	if len(updates[0].Sets) != 2 {
		t.Fatalf("merged sets = %v", updates[0].Sets)
	}
}

func TestMergeRefusesDifferentRecords(t *testing.T) {
	src := `
table T { id: int key, a: int, }
txn rd(k: int, j: int) {
  x := select a from T where id = k;
  y := select a from T where id = j;
  return x.a + y.a;
}
`
	p := mustProg(t, src)
	if _, err := Merge(p, "rd", "S1", "S2"); err == nil {
		t.Fatal("merged selects on provably different keys")
	}
}

func TestMergeRefusesConflictBetween(t *testing.T) {
	src := `
table T { id: int key, a: int, b: int, }
txn rmw(k: int) {
  x := select a from T where id = k;
  update T set a = x.a + 1 where id = k;
  y := select b from T where id = k;
  return y.b;
}
`
	p := mustProg(t, src)
	// Merging S1 and S2 would move the second read above the write it must
	// observe.
	if _, err := Merge(p, "rmw", "S1", "S2"); err == nil {
		t.Fatal("merge across a conflicting update accepted")
	}
}

func TestDeadSelectRemoval(t *testing.T) {
	src := `
table T { id: int key, a: int, }
txn dead(k: int) {
  x := select a from T where id = k;
  y := select a from T where id = k;
  update T set a = y.a + 1 where id = k;
}
`
	p := mustProg(t, src)
	p, n := RemoveDeadSelects(p)
	if n != 1 {
		t.Fatalf("removed %d selects, want 1 (x unused)", n)
	}
	cmds := ast.Commands(p.Txn("dead").Body)
	if len(cmds) != 2 {
		t.Fatalf("commands = %d, want 2", len(cmds))
	}
}

func TestDeadSelectCascade(t *testing.T) {
	src := `
table T { id: int key, a: int, }
txn chain(k: int) {
  x := select a from T where id = k;
  y := select a from T where id = x.a;
}
`
	p := mustProg(t, src)
	// y is dead; removing it makes x dead too.
	if _, n := RemoveDeadSelects(p); n != 2 {
		t.Fatalf("removed %d selects, want 2 (cascade)", n)
	}
}

func TestGCSchemas(t *testing.T) {
	src := `
table USED { id: int key, a: int, b: int, }
table MOVED { id: int key, x: int, }
table IDLE { id: int key, y: int, }
txn rd(k: int) {
  v := select a from USED where id = k;
  return v.a;
}
`
	p := mustProg(t, src)
	// x of MOVED and b of USED have been relocated by correspondences;
	// y of IDLE has not.
	moved := map[string]map[string]bool{
		"MOVED": {"x": true},
		"USED":  {"b": true},
	}
	p, removed := GCSchemas(p, moved)
	if len(removed) != 1 || removed[0] != "MOVED" {
		t.Fatalf("removed = %v, want [MOVED]", removed)
	}
	// Field b of USED moved and is unaccessed: dropped; the key stays.
	used := p.Schema("USED")
	if used.Field("b") != nil {
		t.Error("moved, unaccessed field b survived GC")
	}
	if used.Field("id") == nil || used.Field("a") == nil {
		t.Error("GC removed live fields")
	}
	// IDLE is unaccessed but nothing moved out of it: its data must stay.
	idle := p.Schema("IDLE")
	if idle == nil {
		t.Fatal("unaccessed-but-unmoved table dropped (information loss)")
	}
	if idle.Field("y") == nil {
		t.Error("unmoved field y dropped (information loss)")
	}
}

func TestFieldAndTableNaming(t *testing.T) {
	p := mustProg(t, courseware)
	st := p.Schema("STUDENT")
	if got := DstFieldName(st, "em_addr"); got != "st_em_addr" {
		t.Errorf("DstFieldName = %s, want st_em_addr", got)
	}
	if got := DstFieldName(st, "co_avail"); got != "st_co_avail" {
		t.Errorf("DstFieldName = %s, want st_co_avail", got)
	}
	if got := LogTableName(p, "COURSE", "co_st_cnt"); got != "COURSE_CO_ST_CNT_LOG" {
		t.Errorf("LogTableName = %s", got)
	}
	if got := LogFieldName("co_st_cnt"); got != "co_st_cnt_log" {
		t.Errorf("LogFieldName = %s", got)
	}
}
