package refactor

import (
	"fmt"

	"atropos/internal/ast"
)

// The legacy deep-clone engine: the pre-COW implementation of every
// refactoring rule, preserved as the differential oracle (see engine.go).
// Each rule deep-clones the whole program and mutates its private clone,
// so it can never corrupt shared nodes — the property the differential
// tests lean on: if the COW engine ever mutated a shared subtree, its
// output would diverge from this engine's on some later pipeline step.

func deepIntroSchema(p *ast.Program, name string) *ast.Program {
	out := ast.CloneProgram(p)
	out.Schemas = append(out.Schemas, &ast.Schema{Name: name})
	return out
}

func deepIntroField(p *ast.Program, table string, field ast.Field) *ast.Program {
	out := ast.CloneProgram(p)
	cp := field
	out.Schema(table).Fields = append(out.Schema(table).Fields, &cp)
	return out
}

func deepApplyCorr(p *ast.Program, v ValueCorr) (*ast.Program, error) {
	out := ast.CloneProgram(p)
	for _, t := range out.Txns {
		if err := deepRewriteTxn(out, t, v); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// deepRewriteTxn applies [[·]]_v to one transaction in place.
func deepRewriteTxn(p *ast.Program, t *ast.Txn, v ValueCorr) error {
	src := p.Schema(v.SrcTable)

	// Pass 1: validate and collect redirected variables.
	redirected, err := validateRewriteTxn(t, src, v)
	if err != nil {
		return err
	}

	// Pass 2: rewrite the commands.
	var rerr error
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		if rerr != nil {
			return []ast.Stmt{s}
		}
		c, ok := s.(ast.DBCommand)
		if !ok || c.TableName() != v.SrcTable {
			return []ast.Stmt{s}
		}
		switch x := c.(type) {
		case *ast.Select:
			if len(x.Fields) != 1 || x.Fields[0] != v.SrcField {
				return []ast.Stmt{s}
			}
			nw, err := redirectWhere(x.Where, src, v, ast.CloneExpr)
			if err != nil {
				rerr = err
				return []ast.Stmt{s}
			}
			return []ast.Stmt{&ast.Select{
				Label: x.Label, Var: x.Var,
				Fields: []string{v.DstField},
				Table:  v.DstTable,
				Where:  nw,
			}}
		case *ast.Update:
			if len(x.Sets) != 1 || x.Sets[0].Field != v.SrcField {
				return []ast.Stmt{s}
			}
			ns, err := rewriteUpdate(x, src, v, t, ast.CloneExpr)
			if err != nil {
				rerr = err
				return []ast.Stmt{s}
			}
			return []ast.Stmt{ns}
		default:
			return []ast.Stmt{s}
		}
	})
	if rerr != nil {
		return rerr
	}

	// Pass 3: rewrite accesses through redirected variables everywhere
	// (commands' embedded expressions and the return expression): R2.
	fn := redirectedAccessRewriter(t, v, redirected, &rerr)
	rewriteExpr := func(e ast.Expr) ast.Expr { return ast.MapExpr(e, fn) }
	deepRewriteTxnExprs(t, rewriteExpr)
	return rerr
}

// deepRewriteTxnExprs applies an expression rewriter to every expression in
// the transaction, in place.
func deepRewriteTxnExprs(t *ast.Txn, rewrite func(ast.Expr) ast.Expr) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		switch x := s.(type) {
		case *ast.Select:
			x.Where = rewrite(x.Where)
		case *ast.Update:
			x.Where = rewrite(x.Where)
			for i := range x.Sets {
				x.Sets[i].Expr = rewrite(x.Sets[i].Expr)
			}
		case *ast.Insert:
			for i := range x.Values {
				x.Values[i].Expr = rewrite(x.Values[i].Expr)
			}
		case *ast.If:
			x.Cond = rewrite(x.Cond)
		case *ast.Iterate:
			x.Count = rewrite(x.Count)
		}
		return []ast.Stmt{s}
	})
	t.Ret = rewrite(t.Ret)
}

func deepSplitUpdate(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	out := ast.CloneProgram(p)
	t := out.Txn(txn)
	if t == nil {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	var serr error
	found := false
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		u, ok := s.(*ast.Update)
		if !ok || u.Label != label {
			return []ast.Stmt{s}
		}
		found = true
		parts, err := splitUpdateParts(u, txn, label, groups, ast.CloneExpr)
		if err != nil {
			serr = err
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no update labelled %q in %s", label, txn)
	}
	return out, nil
}

func deepSplitSelect(p *ast.Program, txn, label string, groups [][]string) (*ast.Program, error) {
	out := ast.CloneProgram(p)
	t := out.Txn(txn)
	if t == nil {
		return nil, errf("split", "unknown transaction %q", txn)
	}
	var serr error
	found := false
	fieldVar := map[string]string{} // field -> new variable
	var oldVar string
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		sel, ok := s.(*ast.Select)
		if !ok || sel.Label != label {
			return []ast.Stmt{s}
		}
		if sel.Star {
			serr = errf("split", "%s.%s: cannot split SELECT *", txn, label)
			return []ast.Stmt{s}
		}
		found = true
		oldVar = sel.Var
		parts, err := splitSelectParts(sel, txn, label, groups, fieldVar, ast.CloneExpr)
		if err != nil {
			serr = err
			return []ast.Stmt{s}
		}
		return parts
	})
	if serr != nil {
		return nil, serr
	}
	if !found {
		return nil, errf("split", "no select labelled %q in %s", label, txn)
	}
	deepRewriteTxnExprs(t, func(e ast.Expr) ast.Expr {
		return ast.MapExpr(e, splitVarRewriter(oldVar, fieldVar))
	})
	return out, nil
}

// deepMerge performs the validated merge on a deep clone of p.
func deepMerge(p *ast.Program, txn, label1, label2 string, mergedWhere ast.Expr) *ast.Program {
	// mergedWhere points into p; every use below deep-clones it, so the
	// clone never aliases the input program.
	out := ast.CloneProgram(p)
	t := out.Txn(txn)
	c1 := findCommand(t, label1)
	c2 := findCommand(t, label2)

	switch x1 := c1.(type) {
	case *ast.Select:
		x2 := c2.(*ast.Select)
		merged := mergedSelect(x1, x2, ast.CloneExpr(mergedWhere))
		deepReplaceCommand(t, label1, merged)
		deepRemoveCommand(t, label2)
		// Uses of c2's variable now read from the merged select.
		deepRewriteTxnExprs(t, func(e ast.Expr) ast.Expr {
			return ast.MapExpr(e, mergeVarRewriter(x2.Var, x1.Var))
		})
	case *ast.Update:
		x2 := c2.(*ast.Update)
		merged := mergedUpdate(x1, x2, ast.CloneExpr(mergedWhere), ast.CloneExpr)
		deepReplaceCommand(t, label1, merged)
		deepRemoveCommand(t, label2)
	}
	return out
}

// deepReplaceCommand swaps the command with the given label for a new
// statement, in place.
func deepReplaceCommand(t *ast.Txn, label string, repl ast.Stmt) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			return []ast.Stmt{repl}
		}
		return []ast.Stmt{s}
	})
}

// deepRemoveCommand deletes the command with the given label, in place.
func deepRemoveCommand(t *ast.Txn, label string) {
	t.Body = ast.MapStmts(t.Body, func(s ast.Stmt) []ast.Stmt {
		if c, ok := s.(ast.DBCommand); ok && c.CmdLabel() == label {
			return nil
		}
		return []ast.Stmt{s}
	})
}

func deepRemoveDeadSelects(p *ast.Program) (*ast.Program, int) {
	out := ast.CloneProgram(p)
	removed := 0
	for {
		changed := false
		for _, t := range out.Txns {
			for _, label := range DeadSelects(t) {
				deepRemoveCommand(t, label)
				removed++
				changed = true
			}
		}
		if !changed {
			return out, removed
		}
	}
}

func deepGCSchemas(p *ast.Program, moved map[string]map[string]bool) (*ast.Program, []string) {
	out := ast.CloneProgram(p)
	acc := accessedFields(out)
	var kept []*ast.Schema
	var removedTables []string
	for _, s := range out.Schemas {
		fields, used := acc[s.Name]
		movedHere := moved[s.Name]
		if gcDropsTable(s, used, movedHere) {
			removedTables = append(removedTables, s.Name)
			continue
		}
		var keptFields []*ast.Field
		for _, f := range s.Fields {
			if f.PK || fields[f.Name] || !movedHere[f.Name] {
				keptFields = append(keptFields, f)
			}
		}
		s.Fields = keptFields
		kept = append(kept, s)
	}
	out.Schemas = kept
	return out, removedTables
}

// splitUpdateParts builds the per-group updates of SplitUpdate (Fig. 11:
// U4 becomes U4.1 and U4.2); shared by both engines, parameterized over
// the expression copy.
func splitUpdateParts(u *ast.Update, txn, label string, groups [][]string, copyExpr func(ast.Expr) ast.Expr) ([]ast.Stmt, error) {
	byField := map[string]ast.Assign{}
	for _, a := range u.Sets {
		byField[a.Field] = a
	}
	var parts []ast.Stmt
	covered := 0
	for i, g := range groups {
		nu := &ast.Update{
			Label: fmt.Sprintf("%s.%d", label, i+1),
			Table: u.Table,
			Where: copyExpr(u.Where),
		}
		for _, f := range g {
			a, ok := byField[f]
			if !ok {
				return nil, errf("split", "%s.%s does not set field %q", txn, label, f)
			}
			nu.Sets = append(nu.Sets, ast.Assign{Field: f, Expr: copyExpr(a.Expr)})
			covered++
		}
		parts = append(parts, nu)
	}
	if covered != len(u.Sets) {
		return nil, errf("split", "%s.%s: groups cover %d of %d set fields", txn, label, covered, len(u.Sets))
	}
	return parts, nil
}

// splitSelectParts builds the per-group selects of SplitSelect, recording
// the field → fresh-variable mapping in fieldVar.
func splitSelectParts(sel *ast.Select, txn, label string, groups [][]string, fieldVar map[string]string, copyExpr func(ast.Expr) ast.Expr) ([]ast.Stmt, error) {
	have := map[string]bool{}
	for _, f := range sel.Fields {
		have[f] = true
	}
	var parts []ast.Stmt
	covered := 0
	for i, g := range groups {
		nv := fmt.Sprintf("%s_%d", sel.Var, i+1)
		ns := &ast.Select{
			Label: fmt.Sprintf("%s.%d", label, i+1),
			Var:   nv,
			Table: sel.Table,
			Where: copyExpr(sel.Where),
		}
		for _, f := range g {
			if !have[f] {
				return nil, errf("split", "%s.%s does not select field %q", txn, label, f)
			}
			ns.Fields = append(ns.Fields, f)
			fieldVar[f] = nv
			covered++
		}
		parts = append(parts, ns)
	}
	if covered != len(sel.Fields) {
		return nil, errf("split", "%s.%s: groups cover %d of %d fields", txn, label, covered, len(sel.Fields))
	}
	return parts, nil
}

// splitVarRewriter rewrites accesses x.f of the split select's old variable
// to the new variable holding f.
func splitVarRewriter(oldVar string, fieldVar map[string]string) func(ast.Expr) ast.Expr {
	return func(x ast.Expr) ast.Expr {
		switch fa := x.(type) {
		case *ast.FieldAt:
			if fa.Var == oldVar {
				if nv, ok := fieldVar[fa.Field]; ok {
					return &ast.FieldAt{Var: nv, Field: fa.Field, Index: fa.Index}
				}
			}
		case *ast.Agg:
			if fa.Var == oldVar {
				if nv, ok := fieldVar[fa.Field]; ok {
					return &ast.Agg{Fn: fa.Fn, Var: nv, Field: fa.Field}
				}
			}
		}
		return x
	}
}

// mergeVarRewriter rewrites accesses of the removed select's variable to
// the merged select's.
func mergeVarRewriter(old, nw string) func(ast.Expr) ast.Expr {
	return func(x ast.Expr) ast.Expr {
		switch fa := x.(type) {
		case *ast.FieldAt:
			if fa.Var == old {
				return &ast.FieldAt{Var: nw, Field: fa.Field, Index: fa.Index}
			}
		case *ast.Agg:
			if fa.Var == old {
				return &ast.Agg{Fn: fa.Fn, Var: nw, Field: fa.Field}
			}
		}
		return x
	}
}

// mergedSelect builds the merged select of two validated same-records
// selects; where is already copied per the engine's discipline.
func mergedSelect(x1, x2 *ast.Select, where ast.Expr) *ast.Select {
	merged := &ast.Select{Label: x1.Label, Var: x1.Var, Table: x1.Table, Where: where}
	if x1.Star || x2.Star {
		merged.Star = true
	} else {
		seen := map[string]bool{}
		for _, f := range append(append([]string(nil), x1.Fields...), x2.Fields...) {
			if !seen[f] {
				seen[f] = true
				merged.Fields = append(merged.Fields, f)
			}
		}
	}
	return merged
}

// mergedUpdate builds the merged update of two validated same-records
// updates (equal-valued duplicate sets validated by checkMerge).
func mergedUpdate(x1, x2 *ast.Update, where ast.Expr, copyExpr func(ast.Expr) ast.Expr) *ast.Update {
	merged := &ast.Update{Label: x1.Label, Table: x1.Table, Where: where}
	for _, a := range x1.Sets {
		merged.Sets = append(merged.Sets, ast.Assign{Field: a.Field, Expr: copyExpr(a.Expr)})
	}
	for _, a := range x2.Sets {
		dup := false
		for _, b := range x1.Sets {
			if b.Field == a.Field {
				dup = true // equal exprs: validated before applying
			}
		}
		if !dup {
			merged.Sets = append(merged.Sets, ast.Assign{Field: a.Field, Expr: copyExpr(a.Expr)})
		}
	}
	return merged
}

// gcDropsTable decides whether GCSchemas drops a whole table: no command
// accesses it and every non-key field's data moved elsewhere.
func gcDropsTable(s *ast.Schema, used bool, movedHere map[string]bool) bool {
	allMoved := len(movedHere) > 0
	for _, f := range s.NonKeyFields() {
		if !movedHere[f.Name] {
			allMoved = false
		}
	}
	return !used && allMoved
}
