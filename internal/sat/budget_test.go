package sat

import "testing"

// TestBudgetExhaustsSolve: a conflict budget far below what a hard UNSAT
// instance needs must make Solve return false with Exhausted() true (and
// Stopped() false) — an unknown, not a refutation.
func TestBudgetExhaustsSolve(t *testing.T) {
	s := pigeonhole(t, 9, 8)
	s.SetBudget(Budget{Conflicts: 10})
	if s.Solve() {
		t.Fatal("PHP(9,8) reported SAT")
	}
	if !s.Exhausted() {
		t.Fatal("Solve returned false without Exhausted(): refuted PHP(9,8) inside 10 conflicts?")
	}
	if s.Stopped() {
		t.Fatal("budget exhaustion reads as Stopped()")
	}
}

// TestZeroBudgetUnlimited: the zero Budget must not limit anything — the
// solve runs to its real verdict with Exhausted() false.
func TestZeroBudgetUnlimited(t *testing.T) {
	if (Budget{}).Limited() {
		t.Fatal("zero Budget reports Limited()")
	}
	s := pigeonhole(t, 5, 4)
	s.SetBudget(Budget{})
	if s.Solve() {
		t.Fatal("PHP(5,4) reported SAT")
	}
	if s.Exhausted() {
		t.Fatal("unlimited solve reports Exhausted()")
	}
}

// TestBudgetRetryAfterExhaustion: lifting the budget and re-solving the same
// solver must run to a real verdict with Exhausted() false — an exhausted
// solve is retryable in place, like a stopped one.
func TestBudgetRetryAfterExhaustion(t *testing.T) {
	s := pigeonhole(t, 6, 5)
	s.SetBudget(Budget{Conflicts: 2})
	if s.Solve() || !s.Exhausted() {
		t.Fatal("setup: first solve was not exhausted")
	}
	s.SetBudget(Budget{})
	if s.Solve() {
		t.Fatal("PHP(6,5) reported SAT on retry")
	}
	if s.Exhausted() {
		t.Fatal("Exhausted() true after a completed retry")
	}
}

// TestBudgetIsPerSolveDelta: the conflict allowance is snapshotted at each
// Solve, so a sequence of solves on one solver each gets the full budget —
// earlier solves' conflicts must not count against later ones.
func TestBudgetIsPerSolveDelta(t *testing.T) {
	s := pigeonhole(t, 4, 3) // refutable in well under 200 conflicts
	s.SetBudget(Budget{Conflicts: 200})
	if s.Solve() {
		t.Fatal("PHP(4,3) reported SAT")
	}
	if s.Exhausted() {
		t.Fatalf("PHP(4,3) exhausted a 200-conflict budget (%d conflicts)", s.Conflicts)
	}
	if s.Conflicts == 0 {
		t.Skip("instance refuted without conflicts; delta semantics not exercised")
	}
	// Re-solving under assumptions re-runs a search; with an absolute cap the
	// accumulated s.Conflicts from run one would eat the allowance.
	for i := 0; i < 5; i++ {
		if s.Solve() {
			t.Fatal("PHP(4,3) reported SAT on re-solve")
		}
		if s.Exhausted() {
			t.Fatalf("re-solve %d exhausted: budget charged across Solve calls (total conflicts %d)", i, s.Conflicts)
		}
	}
}

// TestArenaBudgetIsAbsolute: the arena ceiling is a memory bound, not a
// delta — a solver whose clause database already exceeds it exhausts on the
// next Solve before searching.
func TestArenaBudgetIsAbsolute(t *testing.T) {
	s := pigeonhole(t, 6, 5)
	if len(s.arena) == 0 {
		t.Fatal("setup: problem clauses allocated no arena")
	}
	s.SetBudget(Budget{ArenaLits: 1})
	if s.Solve() {
		t.Fatal("PHP(6,5) reported SAT")
	}
	if !s.Exhausted() {
		t.Fatal("solve with overfull arena did not exhaust")
	}
	if s.Conflicts != 0 {
		t.Fatalf("arena-exhausted solve ran %d conflicts", s.Conflicts)
	}
}

// TestResetClearsBudget: Reset (the pooling hook) must shed the budget so a
// pooled solver cannot inherit a dead request's ceiling.
func TestResetClearsBudget(t *testing.T) {
	s := pigeonhole(t, 5, 4)
	s.SetBudget(Budget{Conflicts: 1})
	if s.Solve() || !s.Exhausted() {
		t.Fatal("setup: solve was not exhausted")
	}
	s.Reset()
	if s.Exhausted() {
		t.Fatal("Exhausted() survived Reset")
	}
	if s.budget.Limited() {
		t.Fatal("budget survived Reset")
	}
}

// TestBudgetDeterministic: exhaustion is checked every main-loop iteration,
// so for a fixed formula and budget the abandoned search stops at identical
// counter values — the determinism the service-chaos gate pins.
func TestBudgetDeterministic(t *testing.T) {
	run := func() (int64, int64) {
		s := pigeonhole(t, 9, 8)
		s.SetBudget(Budget{Conflicts: 50})
		if s.Solve() || !s.Exhausted() {
			t.Fatal("setup: solve was not exhausted")
		}
		return s.Conflicts, s.Propagations
	}
	c1, p1 := run()
	c2, p2 := run()
	if c1 != c2 || p1 != p2 {
		t.Fatalf("exhaustion point drifted: (%d conflicts, %d props) vs (%d, %d)", c1, p1, c2, p2)
	}
}

// fuzzCNF builds the same random CNF (derived from the fuzz bytes) on a
// fresh solver: nv variables, clauses of up to three literals split on zero
// bytes. Returns the solver and whether clause addition already refuted the
// formula at level 0.
func fuzzCNF(data []byte, nv int) (*Solver, bool) {
	s := New()
	for i := 0; i < nv; i++ {
		s.NewVar()
	}
	ok := true
	var clause []Lit
	flush := func() {
		if len(clause) > 0 {
			ok = s.AddClause(clause...) && ok
			clause = clause[:0]
		}
	}
	for _, b := range data {
		if b == 0 {
			flush()
			continue
		}
		clause = append(clause, NewLit(int(b>>1)%nv, b&1 == 1))
		if len(clause) == 3 {
			flush()
		}
	}
	flush()
	return s, !ok
}

// FuzzBudgetedSolveEquivalence is the budget-soundness differential: for a
// random CNF, (1) a solver with an effectively infinite budget must return
// the exact verdict of an unbudgeted solver without ever exhausting, and
// (2) a tightly budgeted solver must either exhaust or agree — a budget may
// only withhold answers, never change them.
func FuzzBudgetedSolveEquivalence(f *testing.F) {
	f.Add([]byte{3, 5, 0, 2, 9, 0, 6, 1, 4, 0, 7}, uint8(12))
	f.Add([]byte{2, 3, 4, 5, 6, 7, 2, 5, 3, 0, 1, 1}, uint8(1))
	f.Add([]byte{255, 254, 253, 0, 9, 8, 7, 0, 128, 129, 130}, uint8(40))
	f.Fuzz(func(t *testing.T, data []byte, rawBudget uint8) {
		if len(data) > 1<<12 {
			return
		}
		nv := 3 + len(data)%8

		ref, refuted := fuzzCNF(data, nv)
		want := ref.Solve()
		if ref.Stopped() || ref.Exhausted() {
			t.Fatal("unbudgeted reference solve neither finished nor was interrupted")
		}
		if refuted && want {
			t.Fatal("level-0 refuted formula reported SAT")
		}

		huge, _ := fuzzCNF(data, nv)
		huge.SetBudget(Budget{Conflicts: 1 << 40, Propagations: 1 << 40, ArenaLits: 1 << 40})
		if got := huge.Solve(); got != want {
			t.Fatalf("huge budget changed the verdict: %v, want %v", got, want)
		}
		if huge.Exhausted() {
			t.Fatal("huge budget exhausted on a toy formula")
		}

		tight, _ := fuzzCNF(data, nv)
		tight.SetBudget(Budget{Conflicts: 1 + int64(rawBudget)%16, Propagations: 1 + int64(rawBudget)/16})
		got := tight.Solve()
		if tight.Exhausted() {
			if got {
				t.Fatal("exhausted solve reported SAT")
			}
			return // unknown: no claim to check
		}
		if got != want {
			t.Fatalf("tight budget changed the verdict without exhausting: %v, want %v", got, want)
		}
	})
}
