package sat

import "sync/atomic"

// Portfolio solving (DESIGN.md §15): SetPortfolio(k) attaches k-1 shadow
// solvers to this one. Every NewVar and AddClause is forwarded, so all
// replicas hold the same formula under the same variable numbering, but
// each shadow searches differently (diversified initial phases and restart
// schedule). Solve then races all replicas: the first definitive verdict —
// SAT or UNSAT, not stopped, not budget-exhausted — wins, and the losers
// are aborted through the solver's existing cooperative stop probe.
//
// Verdicts are sound and deterministic — SAT/UNSAT is a property of the
// formula, not of which replica answers first. Which *model* a satisfiable
// query reports is timing-dependent (the winner's), and after an aborted
// race each replica's learnt state diverges, so a later budget-exhaustion
// boundary is timing-dependent too. Callers that need byte-reproducible
// model-derived output must not enable the portfolio (the anomaly session
// taints portfolio encoders out of its history-keyed cache for exactly
// this reason).

// SetPortfolio configures the solver to race k replicas per Solve call
// (the solver itself plus k-1 diversified shadows); k <= 1 restores plain
// solving. Must be called at decision level 0 (between Solve calls). The
// current formula — variables, level-0 units, and problem clauses — is
// replicated onto the new shadows, and everything added afterwards is
// forwarded, so SetPortfolio may be called before or during incremental
// clause loading. Reset drops the shadows.
func (s *Solver) SetPortfolio(k int) {
	s.shadows = nil
	for i := 1; i < k; i++ {
		sh := New()
		sh.diversity = i
		for v := 0; v < s.NumVars(); v++ {
			sh.NewVar()
		}
		if !s.ok {
			// Already unsat: don't replicate (the trail/clauses may be
			// mid-conflict); a poisoned shadow must not report SAT.
			sh.ok = false
			s.shadows = append(s.shadows, sh)
			continue
		}
		// Level-0 trail: units and their implications, all formula-implied.
		for _, l := range s.trail {
			sh.AddClause(l)
		}
		// Binary clauses live only in the watch lists; each appears once
		// per literal, so keep the li < blocker orientation. Learnt
		// binaries replicate too — they are implied, so this is sound.
		for li := range s.watches {
			for _, w := range s.watches[li] {
				if w.ref == crefBinary && li < int(w.blocker) {
					sh.AddClause(Lit(li), w.blocker)
				}
			}
		}
		for _, r := range s.clauses {
			if !s.claDead(r) {
				sh.AddClause(s.claLits(r)...)
			}
		}
		s.shadows = append(s.shadows, sh)
	}
}

// Portfolio returns the number of replicas Solve races (1 when plain).
func (s *Solver) Portfolio() int { return 1 + len(s.shadows) }

// solvePortfolio races the solver and its shadows on one query. Each
// replica's stop probe is the shared abort flag OR'd with the caller's
// stop function; the first definitive verdict sets the flag, and the
// result is published back onto the primary (model, stopped, exhausted)
// so callers observe exactly the plain-solver contract.
func (s *Solver) solvePortfolio(assumptions []Lit) bool {
	s.stopped = false
	s.exhausted = false
	if !s.ok {
		return false
	}
	userStop := s.stop
	var abort atomic.Bool
	probe := func() bool {
		return abort.Load() || (userStop != nil && userStop())
	}
	replicas := make([]*Solver, 0, 1+len(s.shadows))
	replicas = append(replicas, s)
	replicas = append(replicas, s.shadows...)
	for _, r := range replicas {
		r.stop = probe
	}
	type outcome struct {
		idx int
		sat bool
	}
	ch := make(chan outcome, len(replicas))
	for i, r := range replicas {
		go func(i int, r *Solver) {
			ch <- outcome{idx: i, sat: r.solveOne(assumptions)}
		}(i, r)
	}
	winner, winnerSat := -1, false
	for range replicas {
		out := <-ch
		r := replicas[out.idx]
		if r.stopped || r.exhausted {
			continue
		}
		if winner == -1 {
			winner, winnerSat = out.idx, out.sat
			abort.Store(true) // stop the losers
		}
	}
	for _, r := range replicas {
		r.stop = nil
		r.stopped = false
	}
	s.stop = userStop
	if winner >= 0 {
		s.exhausted = false
		if winnerSat && winner != 0 {
			s.model = append(s.model[:0], replicas[winner].model...)
		}
		return winnerSat
	}
	// No definitive verdict. The abort flag was never set, so every stop
	// came from the caller's probe; otherwise every replica exhausted its
	// budget.
	if userStop != nil && userStop() {
		s.stopped = true
		s.exhausted = false
		return false
	}
	s.stopped = false
	s.exhausted = true
	return false
}
