package sat

import (
	"math/rand"
	"testing"
)

// This file holds the property tests for the solver's incremental-use
// surface: assumption handling (each of the lTrue / lFalse / undef paths
// at an assumption level) and learnt-clause reduction (verdicts and model
// validity must be unaffected with reduction forced on, off, or at an
// adversarially tiny cap; see DESIGN.md §8 for why deletion is sound).

// randomCNF builds a random instance: clauses of width 1-3 over nVars.
func randomCNF(rng *rand.Rand, nVars, nClauses int) [][]Lit {
	clauses := make([][]Lit, 0, nClauses)
	for i := 0; i < nClauses; i++ {
		width := 1 + rng.Intn(3)
		c := make([]Lit, width)
		for j := range c {
			c[j] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		clauses = append(clauses, c)
	}
	return clauses
}

func solverFor(nVars int, clauses [][]Lit, forceReduce bool) *Solver {
	s := New()
	for v := 0; v < nVars; v++ {
		s.NewVar()
	}
	if forceReduce {
		// An adversarially small cap: reduction triggers almost every
		// conflict (the cap re-grows afterwards, so each Solve reduces at
		// most a handful of times — enough to exercise deletion).
		s.maxLearnts = 2
	} else {
		s.reduceOff = true
	}
	for _, c := range clauses {
		s.AddClause(c...)
	}
	return s
}

// bruteForceAssuming enumerates assignments satisfying clauses plus the
// assumptions as unit clauses.
func bruteForceAssuming(nVars int, clauses [][]Lit, assumps []Lit) bool {
	all := make([][]Lit, 0, len(clauses)+len(assumps))
	all = append(all, clauses...)
	for _, a := range assumps {
		all = append(all, []Lit{a})
	}
	return bruteForce(nVars, all)
}

func modelSatisfies(t *testing.T, s *Solver, clauses [][]Lit, assumps []Lit) {
	t.Helper()
	check := func(c []Lit) bool {
		for _, l := range c {
			val := s.Value(l.Var())
			if l.Sign() {
				val = !val
			}
			if val {
				return true
			}
		}
		return false
	}
	for ci, c := range clauses {
		if !check(c) {
			t.Fatalf("model does not satisfy clause %d", ci)
		}
	}
	for _, a := range assumps {
		if !check([]Lit{a}) {
			t.Fatalf("model does not satisfy assumption %v", a)
		}
	}
}

// TestAssumptionSequencesAgainstBruteForce runs random query sequences on
// one (stateful) solver — learnt clauses, activities, and phases persist
// across queries — and cross-checks every verdict against enumeration,
// with learnt-clause reduction both off and adversarially forced.
func TestAssumptionSequencesAgainstBruteForce(t *testing.T) {
	for _, forceReduce := range []bool{false, true} {
		rng := rand.New(rand.NewSource(99))
		for iter := 0; iter < 120; iter++ {
			nVars := 4 + rng.Intn(9)
			clauses := randomCNF(rng, nVars, 2+rng.Intn(5*nVars))
			s := solverFor(nVars, clauses, forceReduce)
			rootSat := bruteForce(nVars, clauses)
			for q := 0; q < 6; q++ {
				assumps := make([]Lit, rng.Intn(4))
				for i := range assumps {
					assumps[i] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
				}
				got := s.Solve(assumps...)
				want := rootSat && bruteForceAssuming(nVars, clauses, assumps)
				if got != want {
					t.Fatalf("reduce=%v iter %d query %d: solver=%v brute=%v (assumps %v)",
						forceReduce, iter, q, got, want, assumps)
				}
				if got {
					modelSatisfies(t, s, clauses, assumps)
				}
				if !s.ok {
					break // root-level UNSAT: later queries all false
				}
			}
		}
	}
}

// TestAssumptionValuePaths drives each branch of Solve's assumption
// handling: an assumption already true at its level (propagation implied
// it), one already false (conflicts with the formula), and undefined ones.
func TestAssumptionValuePaths(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	c := s.NewVar()
	s.AddClause(NewLit(a, true), NewLit(b, false))  // a → b
	s.AddClause(NewLit(a, false), NewLit(c, false)) // ¬a → c

	// undef path: both assumptions decided as pseudo-decisions.
	if !s.Solve(NewLit(a, false), NewLit(c, false)) {
		t.Fatal("UNSAT assuming a ∧ c")
	}
	if !s.Value(b) {
		t.Error("a assumed but b not implied")
	}
	// lTrue path: assuming a then b — b is implied at a's level, so b's
	// assumption level opens empty.
	if !s.Solve(NewLit(a, false), NewLit(b, false)) {
		t.Fatal("UNSAT assuming a ∧ b (b implied by a)")
	}
	// Duplicate assumption is the degenerate lTrue case.
	if !s.Solve(NewLit(a, false), NewLit(a, false)) {
		t.Fatal("UNSAT assuming a twice")
	}
	// lFalse path: second assumption contradicts the first's propagation.
	if s.Solve(NewLit(a, false), NewLit(b, true)) {
		t.Fatal("SAT assuming a ∧ ¬b, but a → b")
	}
	// lFalse at the first assumption: force ¬a at the root, assume a.
	s2 := New()
	x := s2.NewVar()
	s2.AddClause(NewLit(x, true)) // unit ¬x
	if s2.Solve(NewLit(x, false)) {
		t.Fatal("SAT assuming x against unit ¬x")
	}
	if !s2.Solve(NewLit(x, true)) {
		t.Fatal("UNSAT assuming ¬x with unit ¬x")
	}
}

// TestReductionDeterminism: two identical solvers running the identical
// query sequence return identical models at every step, with reduction
// forced — the property the incremental detection session's replay parity
// relies on (DESIGN.md §8).
func TestReductionDeterminism(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for iter := 0; iter < 40; iter++ {
		nVars := 6 + rng.Intn(8)
		clauses := randomCNF(rng, nVars, 3*nVars)
		s1 := solverFor(nVars, clauses, true)
		s2 := solverFor(nVars, clauses, true)
		for q := 0; q < 5; q++ {
			assumps := make([]Lit, rng.Intn(3))
			for i := range assumps {
				assumps[i] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			r1 := s1.Solve(assumps...)
			r2 := s2.Solve(assumps...)
			if r1 != r2 {
				t.Fatalf("iter %d query %d: verdicts diverge", iter, q)
			}
			if r1 {
				for v := 0; v < nVars; v++ {
					if s1.Value(v) != s2.Value(v) {
						t.Fatalf("iter %d query %d: models diverge at var %d", iter, q, v)
					}
				}
			}
		}
	}
}

// TestReductionTriggersAndBounds: a conflict-heavy UNSAT instance with the
// default policy must actually delete learnt clauses once past the cap,
// keep the database bounded, and stay UNSAT.
func TestReductionTriggersAndBounds(t *testing.T) {
	s := pigeonhole(t, 9, 8)
	s.maxLearnts = 64 // small cap so the test is fast
	if s.Solve() {
		t.Fatal("PHP(9,8) reported SAT")
	}
	if s.LearntsDeleted == 0 {
		t.Error("reduction never triggered on a conflict-heavy instance")
	}
}

// TestReductionOffKeepsEveryLearnt: with the policy disabled the database
// only grows, and verdicts still agree with brute force (guards the
// reduceOff escape hatch the comparison tests rely on).
func TestReductionOffKeepsEveryLearnt(t *testing.T) {
	s := pigeonhole(t, 7, 6)
	s.reduceOff = true
	if s.Solve() {
		t.Fatal("PHP(7,6) reported SAT")
	}
	if s.LearntsDeleted != 0 {
		t.Errorf("reduction deleted %d clauses while disabled", s.LearntsDeleted)
	}
}
