package sat

import (
	"math/rand"
	"testing"
)

// randomInstance builds one random 3-SAT-ish instance on two solvers: a
// plain one and one configured with a k-replica portfolio, interleaving
// SetPortfolio into the clause stream to exercise state replication.
func randomInstance(rng *rand.Rand, k int, portfolioAt int) (plain, port *Solver, clauses [][]Lit, nVars int) {
	nVars = 3 + rng.Intn(12)
	nClauses := 1 + rng.Intn(5*nVars)
	plain, port = New(), New()
	for v := 0; v < nVars; v++ {
		plain.NewVar()
		port.NewVar()
	}
	for i := 0; i < nClauses; i++ {
		if i == portfolioAt {
			port.SetPortfolio(k)
		}
		width := 1 + rng.Intn(3)
		c := make([]Lit, width)
		for j := range c {
			c[j] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		clauses = append(clauses, c)
		plain.AddClause(c...)
		port.AddClause(c...)
	}
	if portfolioAt >= nClauses {
		port.SetPortfolio(k)
	}
	return plain, port, clauses, nVars
}

// TestPortfolioVerdictEquivalence pins the portfolio's core guarantee:
// the SAT/UNSAT verdict equals the plain solver's on every instance, and
// a satisfiable race reports a genuine model (whichever replica won).
func TestPortfolioVerdictEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(427))
	for iter := 0; iter < 200; iter++ {
		k := 2 + rng.Intn(3)
		plain, port, clauses, _ := randomInstance(rng, k, rng.Intn(20))
		want := plain.Solve()
		got := port.Solve()
		if got != want {
			t.Fatalf("iter %d: portfolio=%v plain=%v", iter, got, want)
		}
		if port.Stopped() || port.Exhausted() {
			t.Fatalf("iter %d: definitive race left Stopped=%v Exhausted=%v", iter, port.Stopped(), port.Exhausted())
		}
		if got {
			for ci, c := range clauses {
				ok := false
				for _, l := range c {
					val := port.Value(l.Var())
					if l.Sign() {
						val = !val
					}
					ok = ok || val
				}
				if !ok {
					t.Fatalf("iter %d: portfolio model does not satisfy clause %d", iter, ci)
				}
			}
		}
	}
}

// TestPortfolioIncrementalAssumptions checks the repair pipeline's usage
// shape: one encoding, many assumption queries on the same portfolio.
func TestPortfolioIncrementalAssumptions(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for iter := 0; iter < 50; iter++ {
		plain, port, _, nVars := randomInstance(rng, 3, 0)
		for q := 0; q < 6; q++ {
			a := NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
			b := NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
			want := plain.Solve(a, b)
			got := port.Solve(a, b)
			if got != want {
				t.Fatalf("iter %d query %d: portfolio=%v plain=%v", iter, q, got, want)
			}
		}
	}
}

func TestPortfolioUnsatCore(t *testing.T) {
	s := pigeonhole(t, 6, 5)
	s.SetPortfolio(4)
	if s.Solve() {
		t.Fatal("pigeonhole(6,5) reported SAT under portfolio")
	}
	if s.Stopped() || s.Exhausted() {
		t.Fatal("definitive UNSAT race left stopped/exhausted set")
	}
}

func TestPortfolioExhaustionNeedsAllReplicas(t *testing.T) {
	s := pigeonhole(t, 9, 8)
	s.SetPortfolio(3)
	s.SetBudget(Budget{Conflicts: 1})
	if s.Solve() {
		t.Fatal("budgeted pigeonhole reported SAT")
	}
	if !s.Exhausted() {
		t.Fatal("all replicas over budget must surface Exhausted")
	}
	if s.Stopped() {
		t.Fatal("budget exhaustion must not read as Stopped")
	}
	// Removing the budget resolves the query definitively.
	s.SetBudget(Budget{})
	if s.Solve() {
		t.Fatal("pigeonhole(9,8) reported SAT after budget removal")
	}
	if s.Exhausted() {
		t.Fatal("unbudgeted race left Exhausted set")
	}
}

func TestPortfolioStopAborts(t *testing.T) {
	s := pigeonhole(t, 9, 8)
	s.SetPortfolio(3)
	stopped := false
	s.SetStop(func() bool { return stopped })
	stopped = true
	if s.Solve() {
		t.Fatal("stopped solve reported SAT")
	}
	if !s.Stopped() {
		t.Fatal("caller stop must surface Stopped")
	}
}

func TestPortfolioResetDropsShadows(t *testing.T) {
	s := New()
	s.NewVar()
	s.SetPortfolio(4)
	if s.Portfolio() != 4 {
		t.Fatalf("Portfolio() = %d, want 4", s.Portfolio())
	}
	s.Reset()
	if s.Portfolio() != 1 {
		t.Fatalf("Reset kept %d replicas", s.Portfolio())
	}
}

func TestPortfolioReplicationSnapshot(t *testing.T) {
	// Clauses added before SetPortfolio (units, binaries, long clauses)
	// must reach the shadows: force a verdict only decidable with them.
	s := New()
	a, b, c, d := s.NewVar(), s.NewVar(), s.NewVar(), s.NewVar()
	s.AddClause(NewLit(a, false))                                    // unit
	s.AddClause(NewLit(a, true), NewLit(b, false))                   // binary: a→b
	s.AddClause(NewLit(b, true), NewLit(c, false), NewLit(d, false)) // long
	s.SetPortfolio(3)
	s.AddClause(NewLit(c, true))
	s.AddClause(NewLit(d, true))
	if s.Solve() {
		t.Fatal("instance is UNSAT; portfolio reported SAT (snapshot not replicated?)")
	}
	if s.Stopped() || s.Exhausted() {
		t.Fatal("definitive UNSAT race left stopped/exhausted set")
	}
}
