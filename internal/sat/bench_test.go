package sat

import (
	"math/rand"
	"testing"
)

// Allocation-reporting solver microbenchmarks: clause loading into the
// arena, a long stateful assumption-query sequence (the anomaly oracle's
// usage pattern), and conflict-heavy search with learnt-clause reduction.

// BenchmarkAddClauses measures clause construction: simplification,
// arena allocation, watcher attachment (including the binary special
// case).
func BenchmarkAddClauses(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	const nVars, nClauses = 200, 2000
	clauses := make([][]Lit, nClauses)
	for i := range clauses {
		width := 2 + rng.Intn(4)
		c := make([]Lit, width)
		for j := range c {
			c[j] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		clauses[i] = c
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
	}
}

// BenchmarkSolveAssumingSequence runs many assumption queries on one
// solver — the oracle's witness loop shape — so learnt clauses, phases,
// and activities accumulate across queries.
func BenchmarkSolveAssumingSequence(b *testing.B) {
	rng := rand.New(rand.NewSource(11))
	const nVars = 60
	clauses := make([][]Lit, 3*nVars)
	for i := range clauses {
		c := make([]Lit, 3)
		for j := range c {
			c[j] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
		}
		clauses[i] = c
	}
	queries := make([][2]Lit, 64)
	for i := range queries {
		queries[i] = [2]Lit{
			NewLit(rng.Intn(nVars), rng.Intn(2) == 0),
			NewLit(rng.Intn(nVars), rng.Intn(2) == 0),
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		for _, q := range queries {
			s.Solve(q[0], q[1])
		}
	}
}

func BenchmarkPigeonholeReduced(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s := New()
		s.maxLearnts = 256
		buildPigeonhole(s, 8, 7)
		if s.Solve() {
			b.Fatal("PHP(8,7) SAT")
		}
	}
}

func buildPigeonhole(s *Solver, pigeons, holes int) {
	x := make([][]int, pigeons)
	for p := 0; p < pigeons; p++ {
		x[p] = make([]int, holes)
		for h := 0; h < holes; h++ {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = NewLit(x[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NewLit(x[p1][h], true), NewLit(x[p2][h], true))
			}
		}
	}
}
