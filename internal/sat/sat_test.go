package sat

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTrivialSat(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(b, false)) // a ∨ b
	s.AddClause(NewLit(a, true))                    // ¬a
	if !s.Solve() {
		t.Fatal("satisfiable formula reported UNSAT")
	}
	if s.Value(a) {
		t.Error("a should be false")
	}
	if !s.Value(b) {
		t.Error("b should be true")
	}
}

func TestTrivialUnsat(t *testing.T) {
	s := New()
	a := s.NewVar()
	s.AddClause(NewLit(a, false))
	if s.AddClause(NewLit(a, true)) {
		t.Fatal("adding contradictory unit clause returned true")
	}
	if s.Solve() {
		t.Fatal("unsatisfiable formula reported SAT")
	}
}

func TestEmptyFormulaSat(t *testing.T) {
	s := New()
	s.NewVar()
	if !s.Solve() {
		t.Fatal("empty formula UNSAT")
	}
}

func TestChainedImplications(t *testing.T) {
	// x0 → x1 → ... → x49, x0 forced true: all must be true.
	s := New()
	n := 50
	vars := make([]int, n)
	for i := range vars {
		vars[i] = s.NewVar()
	}
	for i := 0; i+1 < n; i++ {
		s.AddClause(NewLit(vars[i], true), NewLit(vars[i+1], false))
	}
	s.AddClause(NewLit(vars[0], false))
	if !s.Solve() {
		t.Fatal("UNSAT")
	}
	for i, v := range vars {
		if !s.Value(v) {
			t.Fatalf("x%d false, implication chain broken", i)
		}
	}
}

// pigeonhole encodes PHP(n+1, n): n+1 pigeons into n holes — always UNSAT
// and requires real conflict-driven search.
func pigeonhole(t *testing.T, pigeons, holes int) *Solver {
	t.Helper()
	s := New()
	x := make([][]int, pigeons)
	for p := 0; p < pigeons; p++ {
		x[p] = make([]int, holes)
		for h := 0; h < holes; h++ {
			x[p][h] = s.NewVar()
		}
	}
	// Every pigeon in some hole.
	for p := 0; p < pigeons; p++ {
		lits := make([]Lit, holes)
		for h := 0; h < holes; h++ {
			lits[h] = NewLit(x[p][h], false)
		}
		s.AddClause(lits...)
	}
	// No two pigeons share a hole.
	for h := 0; h < holes; h++ {
		for p1 := 0; p1 < pigeons; p1++ {
			for p2 := p1 + 1; p2 < pigeons; p2++ {
				s.AddClause(NewLit(x[p1][h], true), NewLit(x[p2][h], true))
			}
		}
	}
	return s
}

func TestPigeonholeUnsat(t *testing.T) {
	for n := 2; n <= 6; n++ {
		s := pigeonhole(t, n+1, n)
		if s.Solve() {
			t.Fatalf("PHP(%d,%d) reported SAT", n+1, n)
		}
	}
}

func TestPigeonholeSatWhenEnoughHoles(t *testing.T) {
	s := pigeonhole(t, 5, 5)
	if !s.Solve() {
		t.Fatal("PHP(5,5) reported UNSAT")
	}
}

func TestAssumptions(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(b, false)) // a ∨ b
	if !s.Solve(NewLit(a, true)) {                  // assume ¬a
		t.Fatal("UNSAT under ¬a, but b can be true")
	}
	if !s.Value(b) {
		t.Error("b must be true under ¬a")
	}
	if !s.Solve(NewLit(b, true)) { // assume ¬b
		t.Fatal("UNSAT under ¬b, but a can be true")
	}
	if !s.Value(a) {
		t.Error("a must be true under ¬b")
	}
	if s.Solve(NewLit(a, true), NewLit(b, true)) { // assume ¬a ∧ ¬b
		t.Error("SAT under ¬a ∧ ¬b")
	}
	// The solver is reusable after assumption-UNSAT.
	if !s.Solve() {
		t.Error("formula itself became UNSAT")
	}
}

func TestTautologyAndDuplicates(t *testing.T) {
	s := New()
	a := s.NewVar()
	b := s.NewVar()
	s.AddClause(NewLit(a, false), NewLit(a, true)) // tautology: dropped
	s.AddClause(NewLit(b, false), NewLit(b, false), NewLit(b, false))
	if !s.Solve() {
		t.Fatal("UNSAT")
	}
	if !s.Value(b) {
		t.Error("duplicate-literal unit clause did not force b")
	}
}

// bruteForce checks satisfiability by enumeration (for cross-validation).
func bruteForce(nVars int, clauses [][]Lit) bool {
	for m := 0; m < 1<<nVars; m++ {
		ok := true
		for _, c := range clauses {
			sat := false
			for _, l := range c {
				val := m>>l.Var()&1 == 1
				if l.Sign() {
					val = !val
				}
				if val {
					sat = true
					break
				}
			}
			if !sat {
				ok = false
				break
			}
		}
		if ok {
			return true
		}
	}
	return false
}

// TestRandom3SATAgainstBruteForce is a property test: on random small 3-SAT
// instances the CDCL result must agree with exhaustive enumeration, and on
// SAT results the model must actually satisfy every clause.
func TestRandom3SATAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	for iter := 0; iter < 300; iter++ {
		nVars := 3 + rng.Intn(10)
		nClauses := 1 + rng.Intn(5*nVars)
		var clauses [][]Lit
		for i := 0; i < nClauses; i++ {
			width := 1 + rng.Intn(3)
			c := make([]Lit, width)
			for j := range c {
				c[j] = NewLit(rng.Intn(nVars), rng.Intn(2) == 0)
			}
			clauses = append(clauses, c)
		}
		s := New()
		for v := 0; v < nVars; v++ {
			s.NewVar()
		}
		for _, c := range clauses {
			s.AddClause(c...)
		}
		got := s.Solve()
		want := bruteForce(nVars, clauses)
		if got != want {
			t.Fatalf("iter %d: solver=%v brute=%v (%d vars, %d clauses)", iter, got, want, nVars, nClauses)
		}
		if got {
			for ci, c := range clauses {
				sat := false
				for _, l := range c {
					val := s.Value(l.Var())
					if l.Sign() {
						val = !val
					}
					if val {
						sat = true
					}
				}
				if !sat {
					t.Fatalf("iter %d: model does not satisfy clause %d", iter, ci)
				}
			}
		}
	}
}

func TestLitEncoding(t *testing.T) {
	f := func(v uint16, neg bool) bool {
		l := NewLit(int(v), neg)
		return l.Var() == int(v) && l.Sign() == neg && l.Neg().Var() == int(v) && l.Neg().Sign() == !neg
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLubySequence(t *testing.T) {
	want := []int64{1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8}
	for i, w := range want {
		if got := luby(int64(i + 1)); got != w {
			t.Fatalf("luby(%d) = %d, want %d", i+1, got, w)
		}
	}
}

func TestGraphColoring(t *testing.T) {
	// K4 is 3-colorable? No: needs 4. Encode 3-coloring of K4 → UNSAT,
	// and 3-coloring of C5 (odd cycle) → SAT with 3 colors.
	colorable := func(n int, edges [][2]int, colors int) bool {
		s := New()
		x := make([][]int, n)
		for v := 0; v < n; v++ {
			x[v] = make([]int, colors)
			for c := 0; c < colors; c++ {
				x[v][c] = s.NewVar()
			}
			lits := make([]Lit, colors)
			for c := 0; c < colors; c++ {
				lits[c] = NewLit(x[v][c], false)
			}
			s.AddClause(lits...)
		}
		for _, e := range edges {
			for c := 0; c < colors; c++ {
				s.AddClause(NewLit(x[e[0]][c], true), NewLit(x[e[1]][c], true))
			}
		}
		return s.Solve()
	}
	k4 := [][2]int{{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}
	if colorable(4, k4, 3) {
		t.Error("K4 3-colored")
	}
	if !colorable(4, k4, 4) {
		t.Error("K4 not 4-colored")
	}
	c5 := [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0}}
	if colorable(5, c5, 2) {
		t.Error("C5 2-colored")
	}
	if !colorable(5, c5, 3) {
		t.Error("C5 not 3-colored")
	}
}

func BenchmarkPigeonhole8(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s := New()
		pigeons, holes := 8, 7
		x := make([][]int, pigeons)
		for p := 0; p < pigeons; p++ {
			x[p] = make([]int, holes)
			for h := 0; h < holes; h++ {
				x[p][h] = s.NewVar()
			}
		}
		for p := 0; p < pigeons; p++ {
			lits := make([]Lit, holes)
			for h := 0; h < holes; h++ {
				lits[h] = NewLit(x[p][h], false)
			}
			s.AddClause(lits...)
		}
		for h := 0; h < holes; h++ {
			for p1 := 0; p1 < pigeons; p1++ {
				for p2 := p1 + 1; p2 < pigeons; p2++ {
					s.AddClause(NewLit(x[p1][h], true), NewLit(x[p2][h], true))
				}
			}
		}
		if s.Solve() {
			b.Fatal("PHP(8,7) SAT")
		}
	}
}
