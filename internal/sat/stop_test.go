package sat

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStopInterruptsSolve: a stop probe that trips while the solver is deep
// in a hard UNSAT search must make Solve return promptly with Stopped()
// true, so callers can tell an interrupt from a real UNSAT verdict.
func TestStopInterruptsSolve(t *testing.T) {
	s := pigeonhole(t, 12, 11) // far beyond what finishes in the deadline
	var stop atomic.Bool
	s.SetStop(stop.Load)
	go func() {
		time.Sleep(20 * time.Millisecond)
		stop.Store(true)
	}()
	start := time.Now()
	ok := s.Solve()
	elapsed := time.Since(start)
	if ok {
		t.Fatal("PHP(12,11) reported SAT")
	}
	if !s.Stopped() {
		t.Fatal("Solve returned false without Stopped(): ran a 12-pigeon search to UNSAT inside the deadline?")
	}
	// The probe is polled every 64 main-loop iterations; returning takes
	// microseconds once it trips. The wide bound only guards against a
	// solver that ignores the probe until the search finishes.
	if elapsed > 5*time.Second {
		t.Fatalf("Solve took %v after stop tripped at 20ms", elapsed)
	}
}

// TestStopBeforeSolve: a probe already tripped at entry stops the solve
// before any search.
func TestStopBeforeSolve(t *testing.T) {
	s := pigeonhole(t, 6, 5)
	s.SetStop(func() bool { return true })
	if s.Solve() {
		t.Fatal("stopped solve reported SAT")
	}
	if !s.Stopped() {
		t.Fatal("Stopped() false after entry-check stop")
	}
	if s.Conflicts != 0 {
		t.Fatalf("entry-stopped solve ran %d conflicts", s.Conflicts)
	}
}

// TestStopClearedForRetry: clearing the probe and re-solving the same
// solver must run the search to a real verdict, and Stopped() must read
// false again — an interrupted solve is retryable in place.
func TestStopClearedForRetry(t *testing.T) {
	s := pigeonhole(t, 5, 4)
	s.SetStop(func() bool { return true })
	if s.Solve() || !s.Stopped() {
		t.Fatal("setup: first solve was not stopped")
	}
	s.SetStop(nil)
	if s.Solve() {
		t.Fatal("PHP(5,4) reported SAT on retry")
	}
	if s.Stopped() {
		t.Fatal("Stopped() true after a completed retry")
	}
}

// TestResetClearsStop: Reset (the pooling hook) must shed the stop probe so
// a pooled solver cannot inherit a dead request's cancellation.
func TestResetClearsStop(t *testing.T) {
	s := pigeonhole(t, 5, 4)
	s.SetStop(func() bool { return true })
	if s.Solve() || !s.Stopped() {
		t.Fatal("setup: solve was not stopped")
	}
	s.Reset()
	if s.Stopped() {
		t.Fatal("Stopped() survived Reset")
	}
	// Rebuild the instance on the reset solver and check it solves freely.
	x := make([][]int, 5)
	for p := range x {
		x[p] = make([]int, 4)
		for h := range x[p] {
			x[p][h] = s.NewVar()
		}
	}
	for p := 0; p < 5; p++ {
		lits := make([]Lit, 4)
		for h := 0; h < 4; h++ {
			lits[h] = NewLit(x[p][h], false)
		}
		s.AddClause(lits...)
	}
	for h := 0; h < 4; h++ {
		for p1 := 0; p1 < 5; p1++ {
			for p2 := p1 + 1; p2 < 5; p2++ {
				s.AddClause(NewLit(x[p1][h], true), NewLit(x[p2][h], true))
			}
		}
	}
	if s.Solve() {
		t.Fatal("PHP(5,4) reported SAT after Reset")
	}
	if s.Stopped() {
		t.Fatal("completed solve after Reset reads as stopped")
	}
}
