// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat style: two-watched-literal propagation, first-UIP
// conflict analysis, VSIDS variable activity, phase saving, and Luby
// restarts. It is the satisfiability backend for the anomaly-detection
// oracle (the paper uses Z3; the bounded FOL encoding used for anomaly
// detection reduces to propositional SAT, see internal/anomaly).
package sat

// Lit is a literal: variable v has positive literal 2v and negative literal
// 2v+1.
type Lit int32

// NewLit builds the literal for variable v, negated when neg is true.
func NewLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	default:
		return lUndef
	}
}

type clause struct {
	lits   []Lit
	learnt bool
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New.
type Solver struct {
	clauses  []*clause
	learnts  []*clause
	watches  [][]*clause // indexed by literal
	assigns  []lbool     // indexed by variable
	polarity []bool      // saved phase, indexed by variable
	level    []int
	reason   []*clause
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap

	ok    bool    // false once a top-level conflict is found
	model []lbool // assignment saved at the last satisfiable Solve

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
}

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1.0, ok: true}
	s.heap = newVarHeap(&s.activity)
	return s
}

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	s.polarity = append(s.polarity, true) // default phase: false
	s.level = append(s.level, 0)
	s.reason = append(s.reason, nil)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.heap.push(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return v.neg()
	}
	return v
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (empty clause derived).
// Must be called before Solve, at decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	if !s.ok {
		return false
	}
	// Simplify: drop false literals and duplicates; detect tautologies.
	seen := map[Lit]bool{}
	out := lits[:0:0]
	for _, l := range lits {
		switch {
		case s.valueLit(l) == lTrue || seen[l.Neg()]:
			return true // clause already satisfied / tautology
		case s.valueLit(l) == lFalse || seen[l]:
			continue
		default:
			seen[l] = true
			out = append(out, l)
		}
	}
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], nil)
		s.ok = s.propagate() == nil
		return s.ok
	}
	c := &clause{lits: out}
	s.clauses = append(s.clauses, c)
	s.attach(c)
	return true
}

func (s *Solver) attach(c *clause) {
	s.watches[c.lits[0]] = append(s.watches[c.lits[0]], c)
	s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
}

func (s *Solver) uncheckedEnqueue(l Lit, from *clause) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns a conflicting clause or
// nil.
func (s *Solver) propagate() *clause {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		kept := ws[:0]
		var conflict *clause
		for i := 0; i < len(ws); i++ {
			c := ws[i]
			if conflict != nil {
				kept = append(kept, c)
				continue
			}
			// Normalize: watched false literal at position 1.
			if c.lits[0] == falseLit {
				c.lits[0], c.lits[1] = c.lits[1], c.lits[0]
			}
			// Satisfied by the other watcher?
			if s.valueLit(c.lits[0]) == lTrue {
				kept = append(kept, c)
				continue
			}
			// Look for a replacement watch.
			moved := false
			for k := 2; k < len(c.lits); k++ {
				if s.valueLit(c.lits[k]) != lFalse {
					c.lits[1], c.lits[k] = c.lits[k], c.lits[1]
					s.watches[c.lits[1]] = append(s.watches[c.lits[1]], c)
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, c)
			if s.valueLit(c.lits[0]) == lFalse {
				conflict = c
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(c.lits[0], c)
			}
		}
		s.watches[falseLit] = kept
		if conflict != nil {
			return conflict
		}
	}
	return nil
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first) and the backtrack level.
func (s *Solver) analyze(confl *clause) ([]Lit, int) {
	learnt := []Lit{0} // slot 0 reserved for the asserting literal
	seen := make([]bool, len(s.assigns))
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		for _, q := range confl.lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()

	// Backtrack level: highest level among the non-asserting literals.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		if l := s.level[learnt[i].Var()]; l > bt {
			bt = l
		}
	}
	// Move a literal of the backtrack level to position 1 (watch invariant).
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	return learnt, bt
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.trail[i].Sign()
		s.assigns[v] = lUndef
		s.reason[v] = nil
		s.heap.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for s.heap.len() > 0 {
		v := s.heap.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// luby computes the Luby restart sequence element for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	x := i - 1
	var size, seq int64
	for size, seq = 1, 0; size < x+1; seq, size = seq+1, 2*size+1 {
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve determines satisfiability under the given assumptions. On a
// satisfiable result, the model is available through Value.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if !s.ok {
		return false
	}
	defer s.cancelUntil(0)

	restartBase := int64(100)
	var restartCount int64
	conflictsUntilRestart := restartBase * luby(1)
	var conflictsSinceRestart int64

	for {
		confl := s.propagate()
		if confl != nil {
			s.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return false
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			if len(learnt) == 1 {
				s.uncheckedEnqueue(learnt[0], nil)
			} else {
				c := &clause{lits: learnt, learnt: true}
				s.learnts = append(s.learnts, c)
				s.attach(c)
				s.uncheckedEnqueue(learnt[0], c)
			}
			s.decayVarActivity()
			continue
		}
		if conflictsSinceRestart >= conflictsUntilRestart {
			restartCount++
			conflictsSinceRestart = 0
			conflictsUntilRestart = restartBase * luby(restartCount+1)
			s.cancelUntil(0)
			continue
		}
		// Apply assumptions as pseudo-decisions below real decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already satisfied: open an empty decision level.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Assumptions conflict with the formula.
				return false
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, nil)
				continue
			}
		}
		v := s.pickBranchVar()
		if v == -1 {
			// All variables assigned: save the model (the deferred
			// cancelUntil(0) will unwind the trail).
			s.model = append(s.model[:0], s.assigns...)
			return true
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(NewLit(v, s.polarity[v]), nil)
	}
}

// Value returns variable v's value in the model saved by the most recent
// satisfiable Solve. Variables created after that Solve read false.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// Model returns a copy of the saved model as a bool slice indexed by
// variable.
func (s *Solver) Model() []bool {
	m := make([]bool, len(s.model))
	for v := range s.model {
		m[v] = s.model[v] == lTrue
	}
	return m
}

// varHeap is a max-heap over variable activities with lazy rebuilds.
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return // already present
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
