// Package sat implements a CDCL (conflict-driven clause learning) SAT
// solver in the MiniSat style: two-watched-literal propagation, first-UIP
// conflict analysis, VSIDS variable activity, phase saving, and Luby
// restarts. It is the satisfiability backend for the anomaly-detection
// oracle (the paper uses Z3; the bounded FOL encoding used for anomaly
// detection reduces to propositional SAT, see internal/anomaly).
//
// Memory layout (see DESIGN.md §8): clause literals live in one flat
// arena addressed by int32 refs, so propagation walks contiguous memory
// instead of chasing per-clause pointers. Watcher lists carry a blocker
// literal (a literal whose truth proves the clause satisfied without
// touching the arena), binary clauses live entirely in the watcher lists,
// and learnt clauses are periodically reduced by LBD/activity so long
// Solve sequences stop growing without bound.
package sat

import (
	"math"
	"slices"
)

// Lit is a literal: variable v has positive literal 2v and negative literal
// 2v+1.
type Lit int32

// NewLit builds the literal for variable v, negated when neg is true.
func NewLit(v int, neg bool) Lit {
	l := Lit(v << 1)
	if neg {
		l |= 1
	}
	return l
}

// Var returns the literal's variable index.
func (l Lit) Var() int { return int(l >> 1) }

// Sign reports whether the literal is negated.
func (l Lit) Sign() bool { return l&1 == 1 }

// Neg returns the complementary literal.
func (l Lit) Neg() Lit { return l ^ 1 }

type lbool int8

const (
	lUndef lbool = iota
	lTrue
	lFalse
)

func (b lbool) neg() lbool {
	switch b {
	case lTrue:
		return lFalse
	case lFalse:
		return lTrue
	default:
		return lUndef
	}
}

// cref addresses a clause in the literal arena. Special values mark the
// absence of a clause and the two clause forms that never enter the arena.
type cref = int32

const (
	// crefUndef marks "no clause": decision/assumption reasons, no conflict.
	crefUndef cref = -1
	// crefBinary tags a watcher (or conflict) as a binary clause; the
	// literals live in the watcher itself / binConflict.
	crefBinary cref = -2
)

// binReason encodes the reason "implied by a binary clause whose other
// literal is l" into a cref-compatible tag. Arena refs are >= 0, crefUndef
// and crefBinary occupy -1/-2, so binary reasons start at -3.
func binReason(other Lit) cref { return -3 - cref(other) }

func isBinReason(r cref) bool { return r <= -3 }

func binReasonLit(r cref) Lit { return Lit(-3 - r) }

// Clause arena layout: header word, then for learnt clauses an LBD word
// and a float32 activity word, then the literals. The header packs
// size<<2 | dead<<1 | learnt.
const (
	claLearntBit = 1
	claDeadBit   = 2
	claSizeShift = 2
)

// watcher is one entry of a literal's watch list. blocker is a literal of
// the clause whose truth proves the clause satisfied without reading the
// arena; for binary clauses (ref == crefBinary) it is the only other
// literal, so the whole clause lives in the watcher.
type watcher struct {
	ref     cref
	blocker Lit
}

// Solver is a CDCL SAT solver. The zero value is not usable; construct with
// New.
type Solver struct {
	arena    []Lit  // flat clause storage (headers + literals)
	clauses  []cref // problem clauses of size > 2
	learnts  []cref // learnt clauses of size > 2
	nProblem int    // problem clauses added (any size), for the reduce cap

	watches  [][]watcher // indexed by literal
	wslab    []watcher   // chunked backing store seeding fresh watch lists
	assigns  []lbool     // indexed by variable
	polarity []bool      // saved phase, indexed by variable
	level    []int
	reason   []cref
	trail    []Lit
	trailLim []int
	qhead    int

	activity []float64
	varInc   float64
	heap     *varHeap

	// Learnt-clause activity (MiniSat cla_inc/cla_decay, stored per clause
	// as float32 in the arena header).
	claInc float64

	// Learnt-clause reduction policy: when len(learnts) reaches maxLearnts
	// the solver restarts and deleteHalf runs; the cap then grows so the
	// database stays roughly proportional to live demand. reduceOff
	// disables the policy (tests compare on vs off).
	maxLearnts int
	reduceOff  bool

	ok    bool    // false once a top-level conflict is found
	model []lbool // assignment saved at the last satisfiable Solve

	// Cooperative cancellation: Solve polls stop every stopCheckMask+1
	// iterations and abandons the search when it returns true. stopped
	// distinguishes an interrupted Solve (which also returns false) from a
	// genuine UNSAT answer.
	stop    func() bool
	stopped bool

	// Portfolio mode (portfolio.go): shadows are the extra replicas Solve
	// races; diversity != 0 marks a shadow and seeds its phase/restart
	// perturbation. Reset clears both.
	shadows   []*Solver
	diversity int

	// Resource budget: when set, Solve abandons the search the moment a
	// per-call conflict/propagation ceiling or the arena memory ceiling is
	// crossed, returning false with Exhausted() true — a distinguishable
	// "unknown" rather than a wrong UNSAT. A zero budget never triggers and
	// adds no work to the search loop.
	budget    Budget
	exhausted bool

	binConflict [2]Lit // literals of a binary conflict (crefBinary)
	binScratch  [2]Lit // reason view for binary-implied literals
	seenLit     []byte // per-literal scratch for AddClause dedup
	seenVar     []bool // per-variable scratch for analyze
	learntTmp   []Lit  // scratch for the learnt clause under construction
	levelMark   []int  // per-level scratch for LBD computation
	lbdEpoch    int

	// Stats
	Conflicts    int64
	Decisions    int64
	Propagations int64
	// LearntsDeleted counts learnt clauses removed by reduction.
	LearntsDeleted int64
}

// reduceFloor is the minimum learnt-clause count before a reduction can
// trigger. It is deliberately high relative to the anomaly encodings (whose
// solvers accumulate at most a few hundred learnt clauses over a full
// repair), so reduction only engages on long adversarial Solve sequences.
const reduceFloor = 4096

// initialVarCap sizes the per-variable arrays up front: the typical
// anomaly encoding holds a few hundred variables, and pre-sizing spares
// every encoder the early append-doubling churn (8 parallel slices grow on
// NewVar).
const initialVarCap = 256

// New creates an empty solver.
func New() *Solver {
	s := &Solver{varInc: 1.0, claInc: 1.0, ok: true}
	s.assigns = make([]lbool, 0, initialVarCap)
	s.polarity = make([]bool, 0, initialVarCap)
	s.level = make([]int, 0, initialVarCap)
	s.reason = make([]cref, 0, initialVarCap)
	s.activity = make([]float64, 0, initialVarCap)
	s.watches = make([][]watcher, 0, 2*initialVarCap)
	s.seenLit = make([]byte, 0, 2*initialVarCap)
	s.seenVar = make([]bool, 0, initialVarCap)
	s.heap = newVarHeap(&s.activity)
	return s
}

// Reset restores the solver to its freshly constructed state while keeping
// every backing array: a reset solver behaves identically to sat.New()'s —
// same clause refs, same variable numbering, same search — but re-adding a
// similarly sized problem allocates almost nothing. The anomaly detector
// recycles solvers across its (txn, witness) encoders through this.
func (s *Solver) Reset() {
	s.arena = s.arena[:0]
	s.clauses = s.clauses[:0]
	s.learnts = s.learnts[:0]
	s.nProblem = 0
	// Watch lists must drop to nil, not truncate: live lists may alias
	// wslab windows that the next use re-carves for other literals.
	for i := range s.watches {
		s.watches[i] = nil
	}
	s.watches = s.watches[:0]
	s.wslab = s.wslab[:0]
	s.assigns = s.assigns[:0]
	s.polarity = s.polarity[:0]
	s.level = s.level[:0]
	s.reason = s.reason[:0]
	s.trail = s.trail[:0]
	s.trailLim = s.trailLim[:0]
	s.qhead = 0
	s.activity = s.activity[:0]
	s.varInc = 1.0
	s.heap.reset()
	s.claInc = 1.0
	s.maxLearnts = 0
	s.reduceOff = false
	s.ok = true
	s.model = s.model[:0]
	s.seenLit = s.seenLit[:0]
	s.seenVar = s.seenVar[:0]
	s.learntTmp = s.learntTmp[:0]
	s.levelMark = s.levelMark[:0]
	s.lbdEpoch = 0
	s.stop = nil
	s.stopped = false
	s.shadows = nil
	s.diversity = 0
	s.budget = Budget{}
	s.exhausted = false
	s.Conflicts, s.Decisions, s.Propagations, s.LearntsDeleted = 0, 0, 0, 0
}

// Budget bounds one Solve call. Zero fields are unlimited; a zero Budget
// disables budgeting entirely (Solve behaves byte-identically to an
// unbudgeted solver — the differential fuzz target pins this).
type Budget struct {
	// Conflicts / Propagations cap the respective per-Solve deltas: the
	// counters are snapshotted when Solve starts, so a long Solve sequence
	// on one solver gives every call the full allowance.
	Conflicts    int64
	Propagations int64
	// ArenaLits caps the total clause-arena size in literals (an absolute
	// memory ceiling, not a delta: learnt clauses persist across Solve
	// calls, and it is the accumulated database that exhausts memory).
	ArenaLits int64
}

// Limited reports whether any ceiling is set.
func (b Budget) Limited() bool {
	return b.Conflicts > 0 || b.Propagations > 0 || b.ArenaLits > 0
}

// SetBudget installs a per-Solve resource budget. The zero Budget removes
// it. Reset clears the budget, so pooled solvers never carry one into
// their next life.
func (s *Solver) SetBudget(b Budget) {
	s.budget = b
	for _, sh := range s.shadows {
		sh.SetBudget(b)
	}
}

// Exhausted reports whether the most recent Solve was abandoned because it
// crossed its resource budget rather than finishing with a real SAT/UNSAT
// answer (or being stopped). Callers that treat Solve's false as UNSAT
// must check Exhausted (and Stopped) first.
//
// An exhausted Solve leaves the learnt clauses it derived in place — they
// are sound consequences — but the search state diverges from what an
// unbudgeted run would have produced, so incremental callers that memoize
// on solver-state parity must stop reusing cached answers afterwards (see
// internal/anomaly's encoder tainting).
func (s *Solver) Exhausted() bool { return s.exhausted }

// overBudget checks the per-Solve deltas and the arena ceiling against the
// installed budget. Called only when the budget is limited.
func (s *Solver) overBudget(baseConfl, baseProp int64) bool {
	b := &s.budget
	return (b.Conflicts > 0 && s.Conflicts-baseConfl >= b.Conflicts) ||
		(b.Propagations > 0 && s.Propagations-baseProp >= b.Propagations) ||
		(b.ArenaLits > 0 && int64(len(s.arena)) >= b.ArenaLits)
}

// SetStop installs a cancellation probe: Solve polls f periodically and
// abandons the search (returning false with Stopped() true) once it reports
// true. A nil f removes the probe. Reset clears it, so pooled solvers never
// carry a stale context's stop function into their next life.
func (s *Solver) SetStop(f func() bool) { s.stop = f }

// Stopped reports whether the most recent Solve was abandoned by the stop
// probe rather than finishing with a real SAT/UNSAT answer. Callers that
// treat Solve's false as UNSAT must check Stopped first.
func (s *Solver) Stopped() bool { return s.stopped }

// NewVar introduces a fresh variable and returns its index.
func (s *Solver) NewVar() int {
	for _, sh := range s.shadows {
		sh.NewVar()
	}
	v := len(s.assigns)
	s.assigns = append(s.assigns, lUndef)
	// Default phase: false. Shadow replicas flip the initial phase of
	// alternating variable runs so the portfolio's searches start in
	// different corners of the assignment space.
	phase := true
	if s.diversity > 0 {
		phase = (v/s.diversity)%2 == 0
	}
	s.polarity = append(s.polarity, phase)
	s.level = append(s.level, 0)
	s.reason = append(s.reason, crefUndef)
	s.activity = append(s.activity, 0)
	s.watches = append(s.watches, nil, nil)
	s.seenLit = append(s.seenLit, 0, 0)
	s.seenVar = append(s.seenVar, false)
	s.heap.push(v)
	return v
}

// NumVars returns the number of variables.
func (s *Solver) NumVars() int { return len(s.assigns) }

func (s *Solver) valueLit(l Lit) lbool {
	v := s.assigns[l.Var()]
	if l.Sign() {
		return v.neg()
	}
	return v
}

// --- clause arena ---

func (s *Solver) claSize(r cref) int { return int(s.arena[r]) >> claSizeShift }

func (s *Solver) claLearnt(r cref) bool { return s.arena[r]&claLearntBit != 0 }

func (s *Solver) claDead(r cref) bool { return s.arena[r]&claDeadBit != 0 }

func (s *Solver) claLitOff(r cref) cref {
	if s.arena[r]&claLearntBit != 0 {
		return r + 3
	}
	return r + 1
}

// claLits returns the clause's literal slice (a view into the arena).
func (s *Solver) claLits(r cref) []Lit {
	off := s.claLitOff(r)
	return s.arena[off : int(off)+s.claSize(r)]
}

func (s *Solver) claLBD(r cref) int { return int(s.arena[r+1]) }

func (s *Solver) claActivity(r cref) float32 {
	return math.Float32frombits(uint32(s.arena[r+2]))
}

func (s *Solver) claSetActivity(r cref, a float32) {
	s.arena[r+2] = Lit(math.Float32bits(a))
}

// allocClause copies lits into the arena and returns the new clause's ref.
func (s *Solver) allocClause(lits []Lit, learnt bool, lbd int) cref {
	r := cref(len(s.arena))
	hdr := Lit(len(lits) << claSizeShift)
	if learnt {
		hdr |= claLearntBit
		s.arena = append(s.arena, hdr, Lit(lbd), Lit(math.Float32bits(0)))
	} else {
		s.arena = append(s.arena, hdr)
	}
	s.arena = append(s.arena, lits...)
	return r
}

// addWatch appends to a literal's watch list. Fresh lists are carved as
// 4-capacity windows out of a chunked slab rather than allocated
// individually: the axiom encodings watch hundreds of thousands of
// literals per repair (two aux variables per transitivity instance), and
// one heap object per list dominated the whole pipeline's allocation
// profile. A list that outgrows its window is moved by append's normal
// doubling, abandoning the window; watch lists average a handful of
// entries, so most never leave the slab.
func (s *Solver) addWatch(l Lit, w watcher) {
	if s.watches[l] == nil {
		if len(s.wslab)+watchSeedCap > cap(s.wslab) {
			s.wslab = make([]watcher, 0, watchSlabSize)
		}
		base := len(s.wslab)
		s.wslab = s.wslab[:base+watchSeedCap]
		s.watches[l] = s.wslab[base : base : base+watchSeedCap]
	}
	s.watches[l] = append(s.watches[l], w)
}

const (
	watchSeedCap  = 4
	watchSlabSize = 4096
)

func (s *Solver) attach(r cref) {
	lits := s.claLits(r)
	s.addWatch(lits[0], watcher{ref: r, blocker: lits[1]})
	s.addWatch(lits[1], watcher{ref: r, blocker: lits[0]})
}

func (s *Solver) attachBinary(a, b Lit) {
	s.addWatch(a, watcher{ref: crefBinary, blocker: b})
	s.addWatch(b, watcher{ref: crefBinary, blocker: a})
}

// AddClause adds a clause over the given literals. It returns false if the
// solver is already in an unsatisfiable state (empty clause derived).
// Must be called before Solve, at decision level 0.
func (s *Solver) AddClause(lits ...Lit) bool {
	for _, sh := range s.shadows {
		sh.AddClause(lits...)
	}
	if !s.ok {
		return false
	}
	// Simplify: drop false literals and duplicates; detect tautologies.
	// seenLit is a persistent per-literal scratch, cleared before returning.
	out := s.learntTmp[:0]
	satisfied := false
	for _, l := range lits {
		switch {
		case s.valueLit(l) == lTrue || s.seenLit[l.Neg()] != 0:
			satisfied = true // clause already satisfied / tautology
		case s.valueLit(l) == lFalse || s.seenLit[l] != 0:
			continue
		default:
			s.seenLit[l] = 1
			out = append(out, l)
		}
		if satisfied {
			break
		}
	}
	s.learntTmp = out[:0]
	for _, l := range out {
		s.seenLit[l] = 0
	}
	if satisfied {
		return true
	}
	s.nProblem++
	switch len(out) {
	case 0:
		s.ok = false
		return false
	case 1:
		s.uncheckedEnqueue(out[0], crefUndef)
		s.ok = s.propagate() == crefUndef
		return s.ok
	case 2:
		s.attachBinary(out[0], out[1])
		return true
	}
	r := s.allocClause(out, false, 0)
	s.clauses = append(s.clauses, r)
	s.attach(r)
	return true
}

func (s *Solver) uncheckedEnqueue(l Lit, from cref) {
	v := l.Var()
	if l.Sign() {
		s.assigns[v] = lFalse
	} else {
		s.assigns[v] = lTrue
	}
	s.level[v] = s.decisionLevel()
	s.reason[v] = from
	s.trail = append(s.trail, l)
}

func (s *Solver) decisionLevel() int { return len(s.trailLim) }

// propagate performs unit propagation; it returns a conflicting clause ref
// (crefBinary: the literals are in binConflict) or crefUndef.
func (s *Solver) propagate() cref {
	for s.qhead < len(s.trail) {
		p := s.trail[s.qhead]
		s.qhead++
		s.Propagations++
		falseLit := p.Neg()
		ws := s.watches[falseLit]
		kept := ws[:0]
		conflict := crefUndef
		for i := 0; i < len(ws); i++ {
			w := ws[i]
			if conflict != crefUndef {
				kept = append(kept, w)
				continue
			}
			if w.ref == crefBinary {
				// Binary clause {falseLit, blocker}: satisfied, unit, or
				// conflicting — the watcher never moves.
				switch s.valueLit(w.blocker) {
				case lTrue:
				case lFalse:
					s.binConflict = [2]Lit{falseLit, w.blocker}
					conflict = crefBinary
					s.qhead = len(s.trail)
				default:
					s.uncheckedEnqueue(w.blocker, binReason(falseLit))
				}
				kept = append(kept, w)
				continue
			}
			// Blocker fast path: a true blocker proves the clause satisfied
			// without touching the arena.
			if s.valueLit(w.blocker) == lTrue {
				kept = append(kept, w)
				continue
			}
			lits := s.claLits(w.ref)
			// Normalize: watched false literal at position 1.
			if lits[0] == falseLit {
				lits[0], lits[1] = lits[1], lits[0]
			}
			first := lits[0]
			// Satisfied by the other watcher?
			if s.valueLit(first) == lTrue {
				kept = append(kept, watcher{ref: w.ref, blocker: first})
				continue
			}
			// Look for a replacement watch.
			moved := false
			for k := 2; k < len(lits); k++ {
				if s.valueLit(lits[k]) != lFalse {
					lits[1], lits[k] = lits[k], lits[1]
					s.addWatch(lits[1], watcher{ref: w.ref, blocker: first})
					moved = true
					break
				}
			}
			if moved {
				continue
			}
			// Unit or conflicting.
			kept = append(kept, watcher{ref: w.ref, blocker: first})
			if s.valueLit(first) == lFalse {
				conflict = w.ref
				s.qhead = len(s.trail)
			} else {
				s.uncheckedEnqueue(first, w.ref)
			}
		}
		s.watches[falseLit] = kept
		if conflict != crefUndef {
			return conflict
		}
	}
	return crefUndef
}

// analyze performs first-UIP conflict analysis, returning the learnt clause
// (asserting literal first, in a scratch buffer reused across conflicts)
// and the backtrack level.
func (s *Solver) analyze(confl cref) ([]Lit, int) {
	learnt := append(s.learntTmp[:0], 0) // slot 0 reserved for the asserting literal
	seen := s.seenVar
	counter := 0
	var p Lit = -1
	idx := len(s.trail) - 1

	for {
		var lits []Lit
		switch {
		case confl == crefBinary:
			lits = s.binConflict[:]
		case isBinReason(confl):
			s.binScratch = [2]Lit{p, binReasonLit(confl)}
			lits = s.binScratch[:]
		default:
			if s.claLearnt(confl) {
				s.bumpClause(confl)
			}
			lits = s.claLits(confl)
		}
		for _, q := range lits {
			if p != -1 && q == p {
				continue
			}
			v := q.Var()
			if !seen[v] && s.level[v] > 0 {
				seen[v] = true
				s.bumpVar(v)
				if s.level[v] == s.decisionLevel() {
					counter++
				} else {
					learnt = append(learnt, q)
				}
			}
		}
		// Find next literal on the trail to resolve on.
		for !seen[s.trail[idx].Var()] {
			idx--
		}
		p = s.trail[idx]
		idx--
		seen[p.Var()] = false
		counter--
		if counter == 0 {
			break
		}
		confl = s.reason[p.Var()]
	}
	learnt[0] = p.Neg()
	// Release the per-variable scratch marks (p's own was cleared above).
	for _, l := range learnt[1:] {
		seen[l.Var()] = false
	}
	s.learntTmp = learnt

	// Backtrack level: highest level among the non-asserting literals.
	bt := 0
	for i := 1; i < len(learnt); i++ {
		if l := s.level[learnt[i].Var()]; l > bt {
			bt = l
		}
	}
	// Move a literal of the backtrack level to position 1 (watch invariant).
	if len(learnt) > 1 {
		maxI := 1
		for i := 2; i < len(learnt); i++ {
			if s.level[learnt[i].Var()] > s.level[learnt[maxI].Var()] {
				maxI = i
			}
		}
		learnt[1], learnt[maxI] = learnt[maxI], learnt[1]
	}
	return learnt, bt
}

// lbd computes the literal block distance of a clause: the number of
// distinct decision levels among its literals (Audemard & Simon's glue
// metric; lower predicts more useful learnt clauses).
func (s *Solver) lbd(lits []Lit) int {
	s.lbdEpoch++
	n := 0
	for _, l := range lits {
		lvl := s.level[l.Var()]
		for lvl >= len(s.levelMark) {
			s.levelMark = append(s.levelMark, 0)
		}
		if s.levelMark[lvl] != s.lbdEpoch {
			s.levelMark[lvl] = s.lbdEpoch
			n++
		}
	}
	return n
}

func (s *Solver) bumpVar(v int) {
	s.activity[v] += s.varInc
	if s.activity[v] > 1e100 {
		for i := range s.activity {
			s.activity[i] *= 1e-100
		}
		s.varInc *= 1e-100
	}
	s.heap.update(v)
}

func (s *Solver) decayVarActivity() { s.varInc /= 0.95 }

func (s *Solver) bumpClause(r cref) {
	a := float32(float64(s.claActivity(r)) + s.claInc)
	s.claSetActivity(r, a)
	if a > 1e20 {
		for _, lr := range s.learnts {
			s.claSetActivity(lr, s.claActivity(lr)*1e-20)
		}
		s.claInc *= 1e-20
	}
}

func (s *Solver) decayClauseActivity() { s.claInc /= 0.999 }

func (s *Solver) cancelUntil(level int) {
	if s.decisionLevel() <= level {
		return
	}
	for i := len(s.trail) - 1; i >= s.trailLim[level]; i-- {
		v := s.trail[i].Var()
		s.polarity[v] = s.trail[i].Sign()
		s.assigns[v] = lUndef
		s.reason[v] = crefUndef
		s.heap.push(v)
	}
	s.trail = s.trail[:s.trailLim[level]]
	s.trailLim = s.trailLim[:level]
	s.qhead = len(s.trail)
}

func (s *Solver) pickBranchVar() int {
	for s.heap.len() > 0 {
		v := s.heap.pop()
		if s.assigns[v] == lUndef {
			return v
		}
	}
	return -1
}

// reduceDB deletes the less useful half of the learnt-clause database and
// compacts the arena. It must run at decision level 0 (reasons recorded on
// the level-0 trail are cleared first — they are never consulted by
// analyze, which only resolves above level 0). Deletion is sound: learnt
// clauses are logical consequences of the problem clauses, so removing
// them never changes satisfiability, and the deterministic trigger/order
// keep the solver's model sequence reproducible run to run.
func (s *Solver) reduceDB() {
	for _, l := range s.trail {
		s.reason[l.Var()] = crefUndef
	}
	// Rank learnts: glue clauses (LBD <= 2) are always kept; the rest are
	// ordered worst-first by (LBD desc, activity asc, ref desc) and the
	// worst half of the database is deleted.
	candidates := make([]cref, 0, len(s.learnts))
	for _, r := range s.learnts {
		if s.claLBD(r) > 2 {
			candidates = append(candidates, r)
		}
	}
	slices.SortFunc(candidates, func(a, b cref) int {
		if la, lb := s.claLBD(a), s.claLBD(b); la != lb {
			return lb - la
		}
		if aa, ab := s.claActivity(a), s.claActivity(b); aa != ab {
			if aa < ab {
				return -1
			}
			return 1
		}
		return int(b - a)
	})
	drop := len(s.learnts) / 2
	if drop > len(candidates) {
		drop = len(candidates)
	}
	for _, r := range candidates[:drop] {
		s.arena[r] |= claDeadBit
	}
	s.LearntsDeleted += int64(drop)

	// Compact: copy surviving clauses into a fresh arena, remapping refs.
	remap := make(map[cref]cref, len(s.clauses)+len(s.learnts)-drop)
	newArena := make([]Lit, 0, len(s.arena))
	for r := cref(0); int(r) < len(s.arena); {
		size := int(s.arena[r]) >> claSizeShift
		width := 1 + size
		if s.arena[r]&claLearntBit != 0 {
			width += 2
		}
		if s.arena[r]&claDeadBit == 0 {
			remap[r] = cref(len(newArena))
			newArena = append(newArena, s.arena[r:int(r)+width]...)
		}
		r += cref(width)
	}
	s.arena = newArena
	for i, r := range s.clauses {
		s.clauses[i] = remap[r]
	}
	kept := s.learnts[:0]
	for _, r := range s.learnts {
		if nr, ok := remap[r]; ok {
			kept = append(kept, nr)
		}
	}
	s.learnts = kept
	for li := range s.watches {
		ws := s.watches[li]
		out := ws[:0]
		for _, w := range ws {
			if w.ref == crefBinary {
				out = append(out, w)
				continue
			}
			if nr, ok := remap[w.ref]; ok {
				out = append(out, watcher{ref: nr, blocker: w.blocker})
			}
		}
		s.watches[li] = out
	}
	// Grow the cap so the database tracks live demand; the max() guards
	// against a glue-heavy database that cannot shrink below the cap.
	next := s.maxLearnts * 3 / 2
	if next < len(s.learnts)+reduceFloor/2 {
		next = len(s.learnts) + reduceFloor/2
	}
	s.maxLearnts = next
}

// luby computes the Luby restart sequence element for index i (1-based):
// 1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8, ...
func luby(i int64) int64 {
	x := i - 1
	var size, seq int64
	for size, seq = 1, 0; size < x+1; seq, size = seq+1, 2*size+1 {
	}
	for size-1 != x {
		size = (size - 1) >> 1
		seq--
		x %= size
	}
	return int64(1) << uint(seq)
}

// Solve determines satisfiability under the given assumptions. On a
// satisfiable result, the model is available through Value. With a
// portfolio configured (SetPortfolio), the query races every replica and
// the first definitive verdict wins; the contract — return value, model
// access, Stopped, Exhausted — is unchanged.
func (s *Solver) Solve(assumptions ...Lit) bool {
	if len(s.shadows) > 0 {
		return s.solvePortfolio(assumptions)
	}
	return s.solveOne(assumptions)
}

// solveOne is the plain CDCL search loop, shared by direct solving and the
// portfolio's replicas.
func (s *Solver) solveOne(assumptions []Lit) bool {
	s.stopped = false
	s.exhausted = false
	if !s.ok {
		return false
	}
	if s.stop != nil && s.stop() {
		s.stopped = true
		return false
	}
	defer s.cancelUntil(0)
	// The trail holds at most one entry per variable (plus empty assumption
	// levels contribute none); one reservation sized to the variable count
	// replaces append growth across the whole Solve sequence.
	if cap(s.trail) < len(s.assigns) {
		t := make([]Lit, len(s.trail), len(s.assigns))
		copy(t, s.trail)
		s.trail = t
	}
	if s.maxLearnts == 0 {
		s.maxLearnts = s.nProblem / 3
		if s.maxLearnts < reduceFloor {
			s.maxLearnts = reduceFloor
		}
	}

	// Shadow replicas diversify their restart schedule so the portfolio's
	// searches decorrelate (diversity 0 — plain solving — keeps the
	// canonical base of 100).
	restartBase := int64(100)
	if s.diversity > 0 {
		restartBase = 64 + 32*int64(s.diversity)
	}
	var restartCount int64
	conflictsUntilRestart := restartBase * luby(1)
	var conflictsSinceRestart int64

	// Poll the stop probe once per stopCheckMask+1 loop iterations: rare
	// enough to stay off the propagate/analyze profile, frequent enough
	// that a cancelled context aborts a stuck search within microseconds.
	const stopCheckMask = 63
	var iter uint

	// Budget baselines: the ceilings apply to this call's deltas. The
	// check runs every iteration when a budget is installed — plain int
	// compares, off the hot path entirely when unlimited — so exhaustion
	// is deterministic for a given formula and budget (the service-chaos
	// gate pins degraded counts on this).
	limited := s.budget.Limited()
	baseConfl, baseProp := s.Conflicts, s.Propagations

	for {
		if iter++; s.stop != nil && iter&stopCheckMask == 0 && s.stop() {
			s.stopped = true
			return false
		}
		if limited && s.overBudget(baseConfl, baseProp) {
			s.exhausted = true
			return false
		}
		confl := s.propagate()
		if confl != crefUndef {
			s.Conflicts++
			conflictsSinceRestart++
			if s.decisionLevel() == 0 {
				s.ok = false
				return false
			}
			learnt, bt := s.analyze(confl)
			s.cancelUntil(bt)
			switch len(learnt) {
			case 1:
				s.uncheckedEnqueue(learnt[0], crefUndef)
			case 2:
				s.attachBinary(learnt[0], learnt[1])
				s.uncheckedEnqueue(learnt[0], binReason(learnt[1]))
			default:
				r := s.allocClause(learnt, true, s.lbd(learnt))
				s.learnts = append(s.learnts, r)
				s.attach(r)
				s.bumpClause(r)
				s.uncheckedEnqueue(learnt[0], r)
			}
			s.decayVarActivity()
			s.decayClauseActivity()
			if !s.reduceOff && len(s.learnts) >= s.maxLearnts {
				s.cancelUntil(0)
				s.reduceDB()
			}
			continue
		}
		if conflictsSinceRestart >= conflictsUntilRestart {
			restartCount++
			conflictsSinceRestart = 0
			conflictsUntilRestart = restartBase * luby(restartCount+1)
			s.cancelUntil(0)
			continue
		}
		// Apply assumptions as pseudo-decisions below real decisions.
		if s.decisionLevel() < len(assumptions) {
			a := assumptions[s.decisionLevel()]
			switch s.valueLit(a) {
			case lTrue:
				// Already satisfied: open an empty decision level.
				s.trailLim = append(s.trailLim, len(s.trail))
				continue
			case lFalse:
				// Assumptions conflict with the formula.
				return false
			default:
				s.trailLim = append(s.trailLim, len(s.trail))
				s.uncheckedEnqueue(a, crefUndef)
				continue
			}
		}
		v := s.pickBranchVar()
		if v == -1 {
			// All variables assigned: save the model (the deferred
			// cancelUntil(0) will unwind the trail).
			s.model = append(s.model[:0], s.assigns...)
			return true
		}
		s.Decisions++
		s.trailLim = append(s.trailLim, len(s.trail))
		s.uncheckedEnqueue(NewLit(v, s.polarity[v]), crefUndef)
	}
}

// Value returns variable v's value in the model saved by the most recent
// satisfiable Solve. Variables created after that Solve read false.
func (s *Solver) Value(v int) bool { return v < len(s.model) && s.model[v] == lTrue }

// Model returns a copy of the saved model as a bool slice indexed by
// variable.
func (s *Solver) Model() []bool {
	return s.ModelInto(nil)
}

// ModelInto writes the saved model into dst — reusing its backing array
// when large enough — and returns it. Callers extracting many models (the
// anomaly detector's witness schedules) read them through one scratch
// buffer instead of allocating per query.
func (s *Solver) ModelInto(dst []bool) []bool {
	if cap(dst) < len(s.model) {
		dst = make([]bool, len(s.model))
	}
	dst = dst[:len(s.model)]
	for v := range s.model {
		dst[v] = s.model[v] == lTrue
	}
	return dst
}

// NumLearnts returns the current number of learnt clauses of size > 2 (the
// population learnt-clause reduction manages).
func (s *Solver) NumLearnts() int { return len(s.learnts) }

// varHeap is a max-heap over variable activities with lazy rebuilds.
type varHeap struct {
	act     *[]float64
	heap    []int
	indices []int
}

func newVarHeap(act *[]float64) *varHeap {
	return &varHeap{act: act}
}

// reset empties the heap keeping its backing arrays; push re-grows indices
// as variables are re-created in order.
func (h *varHeap) reset() {
	h.heap = h.heap[:0]
	h.indices = h.indices[:0]
}

func (h *varHeap) len() int { return len(h.heap) }

func (h *varHeap) less(i, j int) bool {
	return (*h.act)[h.heap[i]] > (*h.act)[h.heap[j]]
}

func (h *varHeap) swap(i, j int) {
	h.heap[i], h.heap[j] = h.heap[j], h.heap[i]
	h.indices[h.heap[i]] = i
	h.indices[h.heap[j]] = j
}

func (h *varHeap) push(v int) {
	for v >= len(h.indices) {
		h.indices = append(h.indices, -1)
	}
	if h.indices[v] >= 0 {
		return // already present
	}
	h.heap = append(h.heap, v)
	h.indices[v] = len(h.heap) - 1
	h.up(len(h.heap) - 1)
}

func (h *varHeap) pop() int {
	v := h.heap[0]
	h.swap(0, len(h.heap)-1)
	h.heap = h.heap[:len(h.heap)-1]
	h.indices[v] = -1
	if len(h.heap) > 0 {
		h.down(0)
	}
	return v
}

func (h *varHeap) update(v int) {
	if v < len(h.indices) && h.indices[v] >= 0 {
		h.up(h.indices[v])
	}
}

func (h *varHeap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !h.less(i, parent) {
			break
		}
		h.swap(i, parent)
		i = parent
	}
}

func (h *varHeap) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < len(h.heap) && h.less(l, smallest) {
			smallest = l
		}
		if r < len(h.heap) && h.less(r, smallest) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.swap(i, smallest)
		i = smallest
	}
}
