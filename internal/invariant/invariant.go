// Package invariant implements the paper's SmallBank application-level
// invariant study (§7.1, Appendix A.2). Three invariants are checked over
// randomized concurrent executions under eventual consistency:
//
//  1. balances never go negative (the overdraft guard must hold);
//  2. accounts reflect the full history of deposits (no lost updates);
//  3. clients always witness a consistent joint state of their savings and
//     checking accounts (no intermediate transfer states).
//
// Each invariant is driven by a scenario: a set of concurrent transaction
// invocations whose serializable outcomes are known, executed repeatedly
// under the interpreter's EC view policy with random schedules. A run that
// produces a result outside the serializable outcome set is a violation.
// The same scenarios run against the original and the repaired program
// (the repaired program keeps the transaction names and signatures, so
// the scenarios transfer verbatim; its initial state comes from the data
// migration).
package invariant

import (
	"fmt"
	"math/rand"

	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/interp"
	"atropos/internal/refactor"
	"atropos/internal/store"
)

// Report summarizes violations found per invariant.
type Report struct {
	Runs int
	// Violations[i] counts runs violating invariant i+1.
	Violations [3]int
}

// ViolatedCount returns how many of the three invariants were violated at
// least once.
func (r Report) ViolatedCount() int {
	n := 0
	for _, v := range r.Violations {
		if v > 0 {
			n++
		}
	}
	return n
}

func (r Report) String() string {
	return fmt.Sprintf("runs=%d  I1(non-negative)=%d  I2(deposit-history)=%d  I3(joint-view)=%d  violated=%d/3",
		r.Runs, r.Violations[0], r.Violations[1], r.Violations[2], r.ViolatedCount())
}

// Config drives CheckSmallBank.
type Config struct {
	// Program is the SmallBank program (original or repaired).
	Program *ast.Program
	// Corrs are the value correspondences of the repair (empty for the
	// original program); they drive the initial-state migration.
	Corrs []refactor.ValueCorr
	// Original is the program the rows below belong to. When Program is a
	// repaired variant, rows are migrated through Corrs.
	Original *ast.Program
	Rows     []benchmarks.TableRow
	RunsPer  int // runs per scenario (default 40)
	Seed     int64
}

// CheckSmallBank executes the three invariant scenarios and reports
// violations.
func CheckSmallBank(cfg Config) (Report, error) {
	if cfg.RunsPer == 0 {
		cfg.RunsPer = 40
	}
	rep := Report{}
	scenarios := []func(cfg Config, rng *rand.Rand) (bool, error){
		scenarioNonNegative,
		scenarioDepositHistory,
		scenarioJointView,
	}
	for i, sc := range scenarios {
		for run := 0; run < cfg.RunsPer; run++ {
			rng := rand.New(rand.NewSource(cfg.Seed + int64(i*10_000+run)))
			violated, err := sc(cfg, rng)
			if err != nil {
				return rep, fmt.Errorf("invariant %d run %d: %w", i+1, run, err)
			}
			rep.Runs++
			if violated {
				rep.Violations[i]++
			}
		}
	}
	return rep, nil
}

// newDB loads (and if needed migrates) the initial state.
func newDB(cfg Config) (*store.DB, error) {
	orig := cfg.Original
	if orig == nil {
		orig = cfg.Program
	}
	db := store.NewDB(orig)
	for _, r := range cfg.Rows {
		if _, err := db.Load(r.Table, r.Row); err != nil {
			return nil, err
		}
	}
	if orig == cfg.Program {
		return db, nil
	}
	return refactor.Migrate(db, orig, cfg.Program, cfg.Corrs)
}

// runConcurrent executes the calls under EC with a random schedule and
// returns the finished instances.
func runConcurrent(cfg Config, db *store.DB, rng *rand.Rand, calls []interp.Call) ([]*interp.Instance, error) {
	policy := &interp.ECPolicy{Rng: rng}
	return interp.RunConcurrent(cfg.Program, db, policy, calls, rng)
}

// readBalance runs balance(cust) serially on the final state.
func readBalance(cfg Config, db *store.DB, cust int64) (int64, error) {
	res, err := interp.RunSerial(cfg.Program, db, []interp.Call{
		{Txn: "balance", Args: map[string]store.Value{"cust": store.IntV(cust)}},
	})
	if err != nil {
		return 0, err
	}
	return res[0].I, nil
}

// scenarioNonNegative: savings starts at 100; two concurrent withdrawals
// of 80 race. Serially at most one succeeds, so the final total (savings
// 20 + checking 1000) is 1020 — or 1100/... if both guards failed. A total
// below 1000 means savings went negative: invariant 1 violated.
func scenarioNonNegative(cfg Config, rng *rand.Rand) (bool, error) {
	db, err := newDB(cfg)
	if err != nil {
		return false, err
	}
	cust := store.IntV(0)
	// Lower savings to 100 first (serial prologue: withdraw 900).
	if _, err := interp.RunSerial(cfg.Program, db, []interp.Call{
		{Txn: "transactSavings", Args: map[string]store.Value{"cust": cust, "amt": store.IntV(-900)}},
	}); err != nil {
		return false, err
	}
	calls := []interp.Call{
		{Txn: "transactSavings", Args: map[string]store.Value{"cust": cust, "amt": store.IntV(-80)}},
		{Txn: "transactSavings", Args: map[string]store.Value{"cust": cust, "amt": store.IntV(-80)}},
	}
	if _, err := runConcurrent(cfg, db, rng, calls); err != nil {
		return false, err
	}
	total, err := readBalance(cfg, db, 0)
	if err != nil {
		return false, err
	}
	return total < 1000, nil
}

// scenarioDepositHistory: four concurrent deposits of 10 into checking.
// Serializable outcome: initial 1000 + 40. Anything less lost a deposit:
// invariant 2 violated.
func scenarioDepositHistory(cfg Config, rng *rand.Rand) (bool, error) {
	db, err := newDB(cfg)
	if err != nil {
		return false, err
	}
	var calls []interp.Call
	for i := 0; i < 4; i++ {
		calls = append(calls, interp.Call{
			Txn:  "depositChecking",
			Args: map[string]store.Value{"cust": store.IntV(1), "amt": store.IntV(10)},
		})
	}
	if _, err := runConcurrent(cfg, db, rng, calls); err != nil {
		return false, err
	}
	total, err := readBalance(cfg, db, 1)
	if err != nil {
		return false, err
	}
	// balance = savings (1000) + checking (1000 + 4×10).
	return total != 2040, nil
}

// scenarioJointView: a client reads balance(2) while amalgamate(2,3) moves
// all of customer 2's funds to customer 3. Serializable outcomes for the
// reader: 2000 (before) or 0 (after). Any other value witnessed an
// intermediate transfer state: invariant 3 violated.
func scenarioJointView(cfg Config, rng *rand.Rand) (bool, error) {
	db, err := newDB(cfg)
	if err != nil {
		return false, err
	}
	calls := []interp.Call{
		{Txn: "amalgamate", Args: map[string]store.Value{"src": store.IntV(2), "dst": store.IntV(3)}},
		{Txn: "balance", Args: map[string]store.Value{"cust": store.IntV(2)}},
	}
	instances, err := runConcurrent(cfg, db, rng, calls)
	if err != nil {
		return false, err
	}
	v, ok := instances[1].Result()
	if !ok {
		return false, fmt.Errorf("balance returned nothing")
	}
	return v.I != 2000 && v.I != 0, nil
}
