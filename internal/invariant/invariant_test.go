package invariant

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/repair"
)

// TestOriginalViolatesAllThree reproduces the paper's finding (§7.1): under
// EC the original SmallBank violates all three invariants.
func TestOriginalViolatesAllThree(t *testing.T) {
	prog := benchmarks.SmallBank.MustProgram()
	rep, err := CheckSmallBank(Config{
		Program: prog,
		Rows:    benchmarks.SmallBank.Rows(benchmarks.Scale{Records: 6}),
		RunsPer: 60,
		Seed:    11,
	})
	if err != nil {
		t.Fatalf("CheckSmallBank: %v", err)
	}
	t.Logf("original: %s", rep)
	if got := rep.ViolatedCount(); got != 3 {
		t.Errorf("original program violates %d invariants under EC, want 3", got)
	}
}

// TestRepairedFixesInvariants checks the repaired program against the
// paper's finding that repair eliminates most invariant violations: the
// deposit-history invariant (lost updates) must be fully fixed by the
// logging repair, and strictly fewer invariants are violated than in the
// original. (The paper reports exactly one surviving violation; our
// translation retains two — the unrepairable overdraft guard and the
// joint-view read split across two log tables — see EXPERIMENTS.md.)
func TestRepairedFixesInvariants(t *testing.T) {
	prog := benchmarks.SmallBank.MustProgram()
	res, err := repair.Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	rep, err := CheckSmallBank(Config{
		Program:  res.Program,
		Corrs:    res.Corrs,
		Original: prog,
		Rows:     benchmarks.SmallBank.Rows(benchmarks.Scale{Records: 6}),
		RunsPer:  60,
		Seed:     11,
	})
	if err != nil {
		t.Fatalf("CheckSmallBank(repaired): %v", err)
	}
	t.Logf("repaired: %s", rep)
	if rep.Violations[1] > 0 {
		t.Errorf("deposit-history invariant still violated %d times after repair (logging should fix lost updates)", rep.Violations[1])
	}
	if got := rep.ViolatedCount(); got >= 3 {
		t.Errorf("repaired program violates %d invariants, want strictly fewer than the original's 3", got)
	}
	if rep.Violations[0] == 0 {
		t.Log("note: the unrepairable overdraft guard did not trigger in these runs")
	}
}
