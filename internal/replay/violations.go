package replay

import (
	"sort"

	"atropos/internal/cluster"
)

// Violation counting over full-run observations (cluster.Observation):
// the N-instance generalization of hasViolation. The dependency edges are
// derived exactly as for two-instance witness replays (deriveEdges); an
// instance counts as a violation when some dependency cycle enters it at
// one command and leaves at a different one — the anomaly shape the
// static detector's query asserts, lifted from a fixed pair to arbitrary
// executions. Strongly connected components make that check exact: an
// instance X qualifies iff, within X's SCC of the instance-level
// dependency graph, X has an incoming edge at command b and an outgoing
// edge at command a with a ≠ b — strong connectivity composes the
// out-edge's target back around to the in-edge's source, and conversely
// any qualifying cycle lies inside one SCC.

// Violations returns the instance ids that sit on an anomalous dependency
// cycle, in ascending order. The result is deterministic for a given
// observation set (set-valued, so map iteration order cannot leak in).
func Violations(obs []cluster.DirectedObs) []int {
	edges := deriveEdges(obs)
	if len(edges) == 0 {
		return nil
	}
	// Instance-level adjacency (dedup), remembering per directed edge the
	// commands it leaves and enters at.
	adj := map[int]map[int]bool{}
	node := func(i int) map[int]bool {
		n, ok := adj[i]
		if !ok {
			n = map[int]bool{}
			adj[i] = n
		}
		return n
	}
	for e := range edges {
		if e.From.Inst == e.To.Inst {
			continue
		}
		node(e.From.Inst)[e.To.Inst] = true
		node(e.To.Inst) // ensure the target exists as a node
	}
	comp := sccs(adj)
	size := map[int]int{}
	for _, c := range comp {
		size[c]++
	}
	// One pass over the edges: collect, per instance, the commands at which
	// SCC-internal edges leave and enter it.
	outCmds := map[int]map[int]bool{}
	inCmds := map[int]map[int]bool{}
	mark := func(m map[int]map[int]bool, inst, cmd int) {
		s, ok := m[inst]
		if !ok {
			s = map[int]bool{}
			m[inst] = s
		}
		s[cmd] = true
	}
	for e := range edges {
		if e.From.Inst == e.To.Inst || comp[e.From.Inst] != comp[e.To.Inst] {
			continue
		}
		mark(outCmds, e.From.Inst, e.From.Cmd)
		mark(inCmds, e.To.Inst, e.To.Cmd)
	}
	var out []int
	for inst := range adj {
		if size[comp[inst]] >= 2 && qualifies(outCmds[inst], inCmds[inst]) {
			out = append(out, inst)
		}
	}
	sort.Ints(out)
	return out
}

// qualifies reports whether some out-command differs from some in-command.
func qualifies(outCmds, inCmds map[int]bool) bool {
	for a := range outCmds {
		for b := range inCmds {
			if a != b {
				return true
			}
		}
	}
	return false
}

// sccs computes strongly connected components (iterative Tarjan) over the
// instance graph, returning a component id per instance. Nodes are
// visited in ascending id order so component ids are deterministic —
// though callers only compare them for equality.
func sccs(adj map[int]map[int]bool) map[int]int {
	nodes := make([]int, 0, len(adj))
	for n := range adj {
		nodes = append(nodes, n)
	}
	sort.Ints(nodes)
	succ := make(map[int][]int, len(adj))
	for n, set := range adj {
		ss := make([]int, 0, len(set))
		for s := range set {
			ss = append(ss, s)
		}
		sort.Ints(ss)
		succ[n] = ss
	}

	index := map[int]int{}
	low := map[int]int{}
	onStack := map[int]bool{}
	comp := map[int]int{}
	var stack []int
	next, ncomp := 0, 0

	type frame struct {
		v  int
		si int // next successor index
	}
	for _, root := range nodes {
		if _, seen := index[root]; seen {
			continue
		}
		frames := []frame{{v: root}}
		index[root], low[root] = next, next
		next++
		stack = append(stack, root)
		onStack[root] = true
		for len(frames) > 0 {
			f := &frames[len(frames)-1]
			if f.si < len(succ[f.v]) {
				w := succ[f.v][f.si]
				f.si++
				if _, seen := index[w]; !seen {
					index[w], low[w] = next, next
					next++
					stack = append(stack, w)
					onStack[w] = true
					frames = append(frames, frame{v: w})
				} else if onStack[w] && index[w] < low[f.v] {
					low[f.v] = index[w]
				}
				continue
			}
			if low[f.v] == index[f.v] {
				for {
					n := len(stack) - 1
					w := stack[n]
					stack = stack[:n]
					onStack[w] = false
					comp[w] = ncomp
					if w == f.v {
						break
					}
				}
				ncomp++
			}
			v := f.v
			frames = frames[:len(frames)-1]
			if len(frames) > 0 {
				p := &frames[len(frames)-1]
				if low[v] < low[p.v] {
					low[p.v] = low[v]
				}
			}
		}
	}
	return comp
}
