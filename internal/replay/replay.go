// Package replay turns the anomaly detector's static witnesses into
// executable certificates. Every anomalous access pair the detector reports
// is justified by a satisfying model of its cycle query — an ordering of
// the two transaction instances' commands, a visibility relation, and an
// aliasing valuation over their key terms. This package lowers that model
// into a concrete directed run of the cluster simulator (internal/cluster's
// directed scheduler mode), executes it, and checks that the claimed
// dependency cycle actually manifests in the run's observations: the
// static finding is certified by a real execution, not just a SAT verdict.
//
// Certification is three-sided:
//
//   - Positive: the lowered schedule, run under the witness's visibility,
//     exhibits both model edges and with them the violation cycle.
//   - SC control: the same program, arguments, and seeded rows replayed
//     serially (both orders) show no cycle — the violation is a property of
//     the weak schedule, not of the inputs.
//   - Repair control: the repaired program, run under the projection of the
//     same schedule, shows no cycle — the refactoring removed the anomaly
//     on the very execution that exhibited it.
//
// See DESIGN.md §11 for the model-extraction contract and the lowering.
package replay

import (
	"context"
	"fmt"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/cluster"
)

// PairOutcome is the certification result for one anomalous access pair.
type PairOutcome struct {
	Pair anomaly.AccessPair
	// Lowered reports whether the witness model was realizable as a
	// concrete run (see lower.go for what can prevent it).
	Lowered bool
	// Reproduced reports whether some replayed schedule exhibited a
	// dependency cycle entering the transaction at one of the pair's
	// commands and leaving at the other.
	Reproduced bool
	// Exact additionally reports that the model's own two edges manifested
	// verbatim (per-field kinds included) on the model's own schedule.
	Exact bool
	// Method names the attempt that reproduced the pair: "model",
	// "model-minvis", or one of the "split-*" canonical interleavings,
	// suffixed with the defaults profile index when not the first.
	Method string
	// Reason explains a false Lowered or Reproduced.
	Reason string
	// Trace is the reproducing run's canonical event log.
	Trace []string

	prof profile // defaults profile of the reproducing (or first) attempt
}

// Certificate aggregates replay outcomes over one report.
type Certificate struct {
	Model anomaly.Model
	// Total counts pairs examined; Lowered those with a realizable witness;
	// Certified those whose cycle manifested when run.
	Total     int
	Lowered   int
	Certified int
	Outcomes  []PairOutcome
}

// Rate is the fraction of examined pairs whose witness replayed: the
// certificate reproduction rate.
func (c *Certificate) Rate() float64 {
	if c.Total == 0 {
		return 1
	}
	return float64(c.Certified) / float64(c.Total)
}

// Certify replays every pair of a witnessed report against the program.
// Pairs detected without witness recording (Witness.Schedule == nil) count
// as not lowered.
//
// Each pair gets a bounded ladder of replay attempts: the model's own
// schedule first (which alone can set Exact), then the model schedule with
// only edge-required visibility, then the canonical split interleavings at
// c1 — each under a few defaults profiles so branch guards of either
// polarity can be taken. The first run whose dependency graph contains a
// cycle through the pair's two commands certifies it.
func Certify(prog *ast.Program, rep *anomaly.Report) *Certificate {
	cert, _ := certifyContext(context.Background(), prog, rep)
	return cert
}

// certifyContext is Certify with cooperative cancellation between pairs:
// when ctx expires mid-run the certificate built so far is returned with
// complete=false (its counts cover only the pairs processed).
func certifyContext(ctx context.Context, prog *ast.Program, rep *anomaly.Report) (*Certificate, bool) {
	cert := &Certificate{Model: rep.Model}
	for _, pair := range rep.Pairs {
		if ctx.Err() != nil {
			return cert, false
		}
		cert.Total++
		out := certifyPair(prog, pair)
		if out.Lowered {
			cert.Lowered++
		}
		if out.Reproduced {
			cert.Certified++
		}
		cert.Outcomes = append(cert.Outcomes, out)
	}
	return cert, true
}

// itemIdx finds instance 0's static command index for a command label.
func itemIdx(sched *anomaly.Schedule, label string) int {
	for _, it := range sched.Items {
		if it.Inst == 0 && it.Label == label {
			return it.Idx
		}
	}
	return -1
}

// certifyPair runs the attempt ladder for one pair.
func certifyPair(prog *ast.Program, pair anomaly.AccessPair) PairOutcome {
	out := PairOutcome{Pair: pair, prof: profiles[0]}
	sched := pair.Witness.Schedule
	if sched == nil {
		out.Reason = "no recorded witness schedule"
		return out
	}
	i1 := itemIdx(sched, pair.C1)
	i2 := itemIdx(sched, pair.C2)
	if i1 < 0 || i2 < 0 {
		out.Reason = "pair commands missing from schedule"
		return out
	}
	for pi, prof := range profiles {
		low, reason := lowerSchedule(prog, sched, prof)
		if reason != "" {
			out.Reason = reason
			return out // structural: no profile can change it
		}
		out.Lowered = true
		type attempt struct {
			name string
			cfg  cluster.DirectedConfig
		}
		attempts := []attempt{
			{"model", low.Cfg},
			{"model-minvis", minimalVis(low, sched)},
			{"split-hidden", splitConfig(low, prog, sched, i1, splitHidden)},
			{"split-dirty", splitConfig(low, prog, sched, i1, splitPrefixVis)},
			{"split-nonrep", splitConfig(low, prog, sched, i1, splitTailVis)},
			{"split-both", splitConfig(low, prog, sched, i1, splitBothVis)},
		}
		for _, at := range attempts {
			edges, trace, err := runEdges(at.cfg)
			if err != nil {
				out.Reason = "run failed: " + err.Error()
				continue
			}
			if !hasPairCycle(edges, i1, i2) {
				out.Reason = "no dependency cycle through the pair"
				continue
			}
			out.Reproduced = true
			out.Exact = at.name == "model" &&
				edgeManifests(sched, sched.Edge1, edges) &&
				edgeManifests(sched, sched.Edge2, edges)
			out.Method = at.name
			if pi > 0 {
				out.Method = fmt.Sprintf("%s@p%d", at.name, pi)
			}
			out.Trace = trace
			out.prof = prof
			return out
		}
	}
	return out
}

// CertifyModel detects with witness recording and certifies the report.
func CertifyModel(prog *ast.Program, model anomaly.Model) (*Certificate, *anomaly.Report, error) {
	return CertifyModelContext(context.Background(), prog, model)
}

// CertifyModelContext is CertifyModel with cancellation: the context aborts
// the detection phase mid-solve and is re-checked before the replay phase.
func CertifyModelContext(ctx context.Context, prog *ast.Program, model anomaly.Model) (*Certificate, *anomaly.Report, error) {
	rep, err := anomaly.DetectWitnessedContext(ctx, prog, model)
	if err != nil {
		return nil, nil, err
	}
	if err := ctx.Err(); err != nil {
		return nil, nil, err
	}
	return Certify(prog, rep), rep, nil
}

// RepairCertificate extends a positive certificate with the two negative
// controls: the original program under serializability, and the repaired
// program under the (projected) anomalous schedules.
type RepairCertificate struct {
	*Certificate
	// SCRuns / SCViolations: serial replays of the original program on the
	// lowered inputs (two orders per lowered pair) and how many exhibited a
	// cycle. Soundness demands zero violations.
	SCRuns       int
	SCViolations int
	// RepairedRuns / RepairedViolations: projected replays against the
	// repaired program, for pairs whose transaction and witness are fully
	// repaired. Zero violations certifies the repair on these schedules.
	RepairedRuns       int
	RepairedViolations int
	// SkippedPartial counts lowered pairs not replayed against the repaired
	// program because their transaction or witness kept a residual anomaly
	// (the repair pipeline gave up on it), so a cycle there would prove
	// nothing about the refactoring.
	SkippedPartial int
	// Errors collects run failures from the negative controls.
	Errors []string
}

// CertifyRepair certifies a witnessed pre-repair report against both the
// original and the repaired program. stillAnomalous lists transactions the
// repair left with residual pairs (repair.Result.SerializableTxns).
func CertifyRepair(orig, repaired *ast.Program, rep *anomaly.Report, stillAnomalous []string) *RepairCertificate {
	rc, _ := CertifyRepairContext(context.Background(), orig, repaired, rep, stillAnomalous)
	return rc
}

// CertifyRepairContext is CertifyRepair with cooperative cancellation: ctx
// is checked between pairs in both the positive-certificate ladder and the
// negative-control replays. When it expires mid-run the partial
// certificate built so far is returned with complete=false — its counts
// cover only the pairs processed, so callers must label the result
// degraded instead of holding it to the certification gates.
func CertifyRepairContext(ctx context.Context, orig, repaired *ast.Program, rep *anomaly.Report, stillAnomalous []string) (*RepairCertificate, bool) {
	partial := map[string]bool{}
	for _, t := range stillAnomalous {
		partial[t] = true
	}
	cert, complete := certifyContext(ctx, orig, rep)
	rc := &RepairCertificate{Certificate: cert}
	if !complete {
		return rc, false
	}
	for _, out := range rc.Outcomes {
		if ctx.Err() != nil {
			return rc, false
		}
		if !out.Lowered {
			continue
		}
		sched := out.Pair.Witness.Schedule
		low, reason := lowerSchedule(orig, sched, out.prof)
		if reason != "" {
			continue
		}
		for first := 0; first < 2; first++ {
			cfg, reason := lowerSerial(orig, sched, low.Args, low.Cfg.Rows, first)
			if reason != "" {
				rc.Errors = append(rc.Errors, fmt.Sprintf("%s: SC lowering: %s", out.Pair.Txn, reason))
				continue
			}
			rc.SCRuns++
			bad, err := runViolates(cfg)
			if err != nil {
				rc.Errors = append(rc.Errors, fmt.Sprintf("%s: SC replay: %v", out.Pair.Txn, err))
				continue
			}
			if bad {
				rc.SCViolations++
			}
		}
		if repaired == nil {
			continue
		}
		if partial[out.Pair.Txn] || partial[out.Pair.Witness.Txn] {
			rc.SkippedPartial++
			continue
		}
		cfg, reason := lowerProjected(repaired, sched, low.Args, out.prof)
		if reason != "" {
			rc.Errors = append(rc.Errors, fmt.Sprintf("%s: projection: %s", out.Pair.Txn, reason))
			continue
		}
		rc.RepairedRuns++
		bad, err := runViolates(cfg)
		if err != nil {
			rc.Errors = append(rc.Errors, fmt.Sprintf("%s: repaired replay: %v", out.Pair.Txn, err))
			continue
		}
		if bad {
			rc.RepairedViolations++
		}
	}
	return rc, true
}
