package replay

import (
	"reflect"
	"testing"

	"atropos/internal/cluster"
	"atropos/internal/store"
)

// Observation builders for hand-constructed dependency graphs.

func obsRead(inst, cmd int, key string, view ...cluster.BatchRef) cluster.DirectedObs {
	return cluster.DirectedObs{
		Inst: inst, Cmd: cmd, View: view,
		Reads: []cluster.ReadObs{{Table: "t", Key: store.Key(key), Field: "f"}},
	}
}

func obsWrite(inst, cmd int, ts int64, key string) cluster.DirectedObs {
	return cluster.DirectedObs{
		Inst: inst, Cmd: cmd, TS: ts,
		Writes: []cluster.WriteOp{{Table: "t", Key: store.Key(key), Field: "f", Val: store.IntV(1)}},
	}
}

func TestViolations(t *testing.T) {
	cases := []struct {
		name string
		obs  []cluster.DirectedObs
		want []int
	}{
		{name: "empty", obs: nil, want: nil},
		{
			// Write skew: each instance reads the other's slot before the
			// other's write is visible — rw in both directions, entering and
			// leaving each instance at distinct commands.
			name: "write-skew",
			obs: []cluster.DirectedObs{
				obsRead(0, 0, "x"),
				obsWrite(0, 1, 1, "y"),
				obsRead(1, 0, "y"),
				obsWrite(1, 1, 2, "x"),
			},
			want: []int{0, 1},
		},
		{
			// Serializable order: instance 1 reads with instance 0's batch in
			// its view — one wr edge, no cycle.
			name: "wr-chain",
			obs: []cluster.DirectedObs{
				obsWrite(0, 0, 1, "x"),
				obsRead(1, 0, "x", cluster.BatchRef{Inst: 0, Cmd: 0, TS: 1}),
			},
			want: nil,
		},
		{
			// A cycle that enters and leaves each instance at the SAME
			// command (single read-modify-write commands) does not match the
			// detector's anomaly shape: c1 ≠ c2 fails.
			name: "same-command-cycle",
			obs: []cluster.DirectedObs{
				{Inst: 0, Cmd: 0,
					Reads:  []cluster.ReadObs{{Table: "t", Key: store.Key("x"), Field: "f"}},
					Writes: []cluster.WriteOp{{Table: "t", Key: store.Key("y"), Field: "f", Val: store.IntV(1)}}, TS: 1},
				{Inst: 1, Cmd: 0,
					Reads:  []cluster.ReadObs{{Table: "t", Key: store.Key("y"), Field: "f"}},
					Writes: []cluster.WriteOp{{Table: "t", Key: store.Key("x"), Field: "f", Val: store.IntV(1)}}, TS: 2},
			},
			want: nil,
		},
		{
			// Three-instance cycle 0 → 1 → 2 → 0, each hop an
			// anti-dependency at distinct commands — the N-instance shape the
			// pairwise replay check cannot see.
			name: "three-cycle",
			obs: []cluster.DirectedObs{
				obsRead(0, 0, "a"), obsWrite(0, 1, 1, "c"),
				obsRead(1, 0, "b"), obsWrite(1, 1, 2, "a"),
				obsRead(2, 0, "c"), obsWrite(2, 1, 3, "b"),
			},
			want: []int{0, 1, 2},
		},
		{
			// A cycle among instances 0 and 1 plus a bystander (instance 2)
			// hanging off it: only the cycle members count.
			name: "bystander",
			obs: []cluster.DirectedObs{
				obsRead(0, 0, "x"),
				obsWrite(0, 1, 1, "y"),
				obsRead(1, 0, "y"),
				obsWrite(1, 1, 2, "x"),
				obsRead(2, 0, "x"), // rw 2 → 1, no edge back into 2
			},
			want: []int{0, 1},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got := Violations(tc.obs)
			if !reflect.DeepEqual(got, tc.want) {
				t.Errorf("Violations = %v, want %v", got, tc.want)
			}
			// On two-instance observation sets the N-instance counter must
			// agree with the pairwise replay check.
			twoInst := true
			for _, o := range tc.obs {
				if o.Inst > 1 {
					twoInst = false
				}
			}
			if twoInst && len(tc.obs) > 0 {
				if pair, n := hasViolation(deriveEdges(tc.obs)), len(got) > 0; pair != n {
					t.Errorf("hasViolation = %v but Violations = %v", pair, got)
				}
			}
		})
	}
}
