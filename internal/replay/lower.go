package replay

import (
	"fmt"
	"sort"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/store"
)

// This file lowers a witness Schedule — the satisfying model the detector
// read off its cycle query — into a concrete cluster.DirectedConfig. The
// model is symbolic: it orders command instances (ord), grants view
// contents (vis), and values aliasing-equality atoms over primary-key
// terms. Lowering makes it concrete by choosing actual argument values and
// seeded rows such that every term-equality the model requires holds at
// runtime, then pinning the interleaving and visibility to ord/vis.
//
// The construction is a union-find over term ids: terms the model equates
// share a class, classes pick up forced values from constant pins and
// argument identities from parameter pins, and remaining classes get fresh
// distinct values per type. Rows are seeded greedily so every select and
// update finds the record its key class denotes; field reads that feed
// later keys (at(x.f) pins) are back-propagated into the binding select's
// row. A schedule whose model cannot be realized this way — conflicting
// constants, or a disequality the static over-approximation asserted that
// concrete values cannot satisfy — is reported as not lowerable with a
// reason rather than silently producing a vacuous run.

// lowered is one schedule made concrete.
type lowered struct {
	Cfg  cluster.DirectedConfig
	Args [2]map[string]store.Value
}

// evalStatic evaluates an expression that depends on nothing but literals,
// arguments, and the iterate counter (pinned to 1, its first-iteration
// value — the bound the static encoding assumes). The second result is
// false for execution-dependent expressions (field reads, aggregates,
// uuid()).
func evalStatic(e ast.Expr, args map[string]store.Value) (store.Value, bool) {
	switch x := e.(type) {
	case *ast.IntLit:
		return store.IntV(x.Val), true
	case *ast.BoolLit:
		return store.BoolV(x.Val), true
	case *ast.StringLit:
		return store.StringV(x.Val), true
	case *ast.IterVar:
		return store.IntV(1), true
	case *ast.Arg:
		if args == nil {
			return store.Value{}, false
		}
		v, ok := args[x.Name]
		return v, ok
	case *ast.Binary:
		l, ok := evalStatic(x.L, args)
		if !ok {
			return store.Value{}, false
		}
		r, ok := evalStatic(x.R, args)
		if !ok {
			return store.Value{}, false
		}
		switch {
		case x.Op.IsArith():
			switch x.Op {
			case ast.OpAdd:
				return store.IntV(l.I + r.I), true
			case ast.OpSub:
				return store.IntV(l.I - r.I), true
			case ast.OpMul:
				return store.IntV(l.I * r.I), true
			default:
				if r.I == 0 {
					return store.Value{}, false
				}
				return store.IntV(l.I / r.I), true
			}
		case x.Op.IsComparison():
			switch x.Op {
			case ast.OpEq:
				return store.BoolV(l.Equal(r)), true
			case ast.OpNe:
				return store.BoolV(!l.Equal(r)), true
			case ast.OpLt:
				return store.BoolV(l.Less(r)), true
			case ast.OpLe:
				return store.BoolV(l.Less(r) || l.Equal(r)), true
			case ast.OpGt:
				return store.BoolV(r.Less(l)), true
			default:
				return store.BoolV(r.Less(l) || l.Equal(r)), true
			}
		default:
			if x.Op == ast.OpAnd {
				return store.BoolV(l.B && r.B), true
			}
			return store.BoolV(l.B || r.B), true
		}
	default:
		return store.Value{}, false
	}
}

// classes is a deterministic union-find over term ids: roots are the
// lexicographically least member, so class identity does not depend on
// union order.
type classes struct {
	parent map[string]string
}

func newClasses() *classes { return &classes{parent: map[string]string{}} }

func (c *classes) find(x string) string {
	p, ok := c.parent[x]
	if !ok || p == x {
		return x
	}
	r := c.find(p)
	c.parent[x] = r
	return r
}

func (c *classes) union(a, b string) {
	ra, rb := c.find(a), c.find(b)
	if ra == rb {
		return
	}
	if rb < ra {
		ra, rb = rb, ra
	}
	c.parent[rb] = ra
}

// classInfo accumulates what lowering knows about one equality class.
type classInfo struct {
	typ    ast.Type
	typOK  bool
	forced bool
	val    store.Value
	hasVal bool
	uuid   bool
	// args lists (instance, parameter) identities pinned to this class.
	args [][2]interface{}
}

// argKey identifies one instance's parameter.
type argKey struct {
	inst int
	name string
}

// freshPool hands out fresh values per type, never colliding with values
// already in play.
type freshPool struct {
	usedInt    map[int64]bool
	usedString map[string]bool
	nextInt    int64
	nextStr    int
	nextBool   bool
}

func newFreshPool() *freshPool {
	return &freshPool{usedInt: map[int64]bool{}, usedString: map[string]bool{}, nextInt: 9001}
}

func (p *freshPool) note(v store.Value) {
	switch v.T {
	case ast.TInt:
		p.usedInt[v.I] = true
	case ast.TString:
		p.usedString[v.S] = true
	}
}

func (p *freshPool) fresh(t ast.Type) store.Value {
	switch t {
	case ast.TBool:
		v := store.BoolV(p.nextBool)
		p.nextBool = !p.nextBool
		return v
	case ast.TString:
		for {
			s := fmt.Sprintf("rk%d", p.nextStr)
			p.nextStr++
			if !p.usedString[s] {
				p.usedString[s] = true
				return store.StringV(s)
			}
		}
	default:
		for p.usedInt[p.nextInt] {
			p.nextInt++
		}
		p.usedInt[p.nextInt] = true
		v := store.IntV(p.nextInt)
		p.nextInt++
		return v
	}
}

// profile chooses the defaults for values the model leaves unconstrained.
// The static encoding assumes every command may execute, but a concrete run
// takes concrete branches; certification retries the lowering under a few
// profiles so guards of either polarity (if bal >= amt, if !processed) can
// be satisfied. Pinned values — classes the model forced — never vary.
type profile struct {
	argInt   int64
	fieldInt int64
	boolVal  bool
}

// profiles is the attempt ladder: balanced defaults first, then large
// arguments (overdraft-style guards), then each with false booleans
// (not-yet-processed-style guards).
var profiles = []profile{
	{argInt: 1, fieldInt: 100, boolVal: true},
	{argInt: 1000, fieldInt: 100, boolVal: true},
	{argInt: 1, fieldInt: 100, boolVal: false},
	{argInt: 1000, fieldInt: 100, boolVal: false},
}

func (p profile) defaultValue(t ast.Type, field bool) store.Value {
	switch t {
	case ast.TBool:
		return store.BoolV(p.boolVal)
	case ast.TString:
		return store.StringV("x")
	default:
		if field {
			return store.IntV(p.fieldInt)
		}
		return store.IntV(p.argInt)
	}
}

// seedRow is one initial record under construction.
type seedRow struct {
	fields map[string]store.Value
}

// instItem locates a schedule item by (instance, static command index).
type instItem struct {
	inst, idx int
}

// lowerSchedule turns a witness schedule into a runnable directed
// configuration under the given defaults profile. A non-empty reason means
// the schedule is structurally not runnable against this program.
func lowerSchedule(prog *ast.Program, sched *anomaly.Schedule, prof profile) (*lowered, string) {
	var txns [2]*ast.Txn
	txns[0] = prog.Txn(sched.TxnA)
	txns[1] = prog.Txn(sched.TxnB)
	if txns[0] == nil || txns[1] == nil {
		return nil, "transaction missing from program"
	}

	// Phase 1: equality classes. The model's true equality atoms merge term
	// classes; pins of the same (instance, parameter) merge too, because one
	// argument has one runtime value.
	cls := newClasses()
	for _, eq := range sched.Eqs {
		if eq.Equal {
			cls.union(eq.A, eq.B)
		}
	}
	argClass := map[argKey]string{}
	for _, it := range sched.Items {
		for _, p := range it.Pins {
			if a, ok := p.Expr.(*ast.Arg); ok {
				k := argKey{it.Inst, a.Name}
				if prev, ok := argClass[k]; ok {
					cls.union(prev, p.Term)
				} else {
					argClass[k] = p.Term
				}
			}
		}
	}

	// Phase 2: per-class info — types from the pinned schema fields, forced
	// values from statically evaluable pin expressions.
	info := map[string]*classInfo{}
	at := func(term string) *classInfo {
		r := cls.find(term)
		ci := info[r]
		if ci == nil {
			ci = &classInfo{}
			info[r] = ci
		}
		return ci
	}
	pool := newFreshPool()
	for _, it := range sched.Items {
		schema := prog.Schema(it.Table)
		for _, p := range it.Pins {
			ci := at(p.Term)
			if schema != nil {
				if f := schema.Field(p.Field); f != nil && !ci.typOK {
					ci.typ, ci.typOK = f.Type, true
				}
			}
			if p.Kind == anomaly.TermUUID {
				ci.uuid = true
				continue
			}
			if v, ok := evalStatic(p.Expr, nil); ok {
				pool.note(v)
				// Conflicting constants in one class mean the model valued
				// per-sort equality atoms inconsistently across sorts (the
				// encoding has no cross-sort congruence axiom); keep the
				// first value and let the dynamic check judge the run.
				if !ci.forced {
					ci.forced, ci.val, ci.hasVal = true, v, true
				}
			}
		}
	}

	// Phase 3: value every non-uuid class, forced first (already valued),
	// then fresh per type in deterministic root order.
	roots := make([]string, 0, len(info))
	for r := range info {
		roots = append(roots, r)
	}
	sort.Strings(roots)
	for _, r := range roots {
		ci := info[r]
		if ci.uuid {
			if ci.forced {
				return nil, fmt.Sprintf("class %s merges uuid() with a constant", r)
			}
			continue
		}
		if !ci.hasVal {
			t := ast.TInt
			if ci.typOK {
				t = ci.typ
			}
			ci.val, ci.hasVal = pool.fresh(t), true
		}
	}

	// The model's false equality atoms need no enforcement: unforced classes
	// take distinct fresh values anyway, and a disequality a merge or forced
	// constant violates is a per-sort valuation the encoding never required
	// to be congruent across sorts. Making more terms coincide only grows
	// the run's aliasing — it cannot unmake the claimed edges, and the
	// dynamic cycle check is the final arbiter.

	classVal := func(term string) (store.Value, bool) {
		ci := info[cls.find(term)]
		if ci == nil || ci.uuid || !ci.hasVal {
			return store.Value{}, false
		}
		return ci.val, true
	}

	// Phase 5: arguments. Parameters pinned to a class take its value;
	// everything else defaults by declared type.
	var args [2]map[string]store.Value
	for inst := 0; inst < 2; inst++ {
		args[inst] = map[string]store.Value{}
		for _, p := range txns[inst].Params {
			if cl, ok := argClass[argKey{inst, p.Name}]; ok {
				if v, ok := classVal(cl); ok {
					args[inst][p.Name] = v
					continue
				}
			}
			args[inst][p.Name] = prof.defaultValue(p.Type, false)
		}
	}

	// Phase 6: seed rows so every select/update key actually denotes a
	// record, with class values winning over static evaluation (they carry
	// the model's aliasing), then back-propagate at(x.f)-pinned values into
	// the rows the binding selects return.
	pinsOf := map[instItem][]anomaly.KeyPin{}
	for _, it := range sched.Items {
		pinsOf[instItem{it.Inst, it.Idx}] = it.Pins
	}
	rows, itemRow := seedRows(prog, txns, args, pinsOf, classVal)
	backpropagate(txns, pinsOf, classVal, itemRow)
	inserts := insertKeyVals(prog, txns, args, pinsOf, classVal)
	tableRows := finalizeRows(prog, rows, pool, prof, inserts)

	// Phase 7: interleaving and visibility straight off the model.
	cfg := cluster.DirectedConfig{
		Program: prog,
		Rows:    tableRows,
		Txns: [2]cluster.DirectedTxn{
			{Name: sched.TxnA, Args: args[0]},
			{Name: sched.TxnB, Args: args[1]},
		},
	}
	for _, g := range sched.Order {
		inst, idx := sched.ItemAt(g)
		cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: inst, Cmd: idx})
	}
	gidx := map[instItem]int{}
	for g := range sched.Items {
		inst, idx := sched.ItemAt(g)
		gidx[instItem{inst, idx}] = g
	}
	vis := sched.Vis
	cfg.Vis = func(fi, fc, ti, tc int) bool {
		gf, ok1 := gidx[instItem{fi, fc}]
		gt, ok2 := gidx[instItem{ti, tc}]
		return ok1 && ok2 && vis[gf][gt]
	}
	return &lowered{Cfg: cfg, Args: args}, ""
}

// seedRows builds the initial population: one pass over both transactions'
// selects and updates, each contributing its key pins (class values) plus
// any statically evaluable where conjunct, greedily merged into rows that
// agree on primary-key fields. classVal may be nil (projection lowering for
// a repaired program, where no model classes exist).
func seedRows(
	prog *ast.Program,
	txns [2]*ast.Txn,
	args [2]map[string]store.Value,
	pinsOf map[instItem][]anomaly.KeyPin,
	classVal func(string) (store.Value, bool),
) (map[string][]*seedRow, map[instItem]*seedRow) {
	rows := map[string][]*seedRow{}
	itemRow := map[instItem]*seedRow{}
	for inst := 0; inst < 2; inst++ {
		for ci, c := range ast.Commands(txns[inst].Body) {
			var where ast.Expr
			switch x := c.(type) {
			case *ast.Select:
				where = x.Where
			case *ast.Update:
				where = x.Where
			default:
				continue // inserts create their records at runtime
			}
			schema := prog.Schema(c.TableName())
			if schema == nil {
				continue
			}
			pinVals := map[string]store.Value{}
			if classVal != nil {
				for _, p := range pinsOf[instItem{inst, ci}] {
					if v, ok := classVal(p.Term); ok {
						pinVals[p.Field] = v
					}
				}
			}
			if eqs, ok := ast.WhereEqualities(where); ok {
				for _, q := range eqs {
					if _, have := pinVals[q.Field]; have {
						continue
					}
					if v, ok := evalStatic(q.Expr, args[inst]); ok {
						pinVals[q.Field] = v
					}
				}
			}
			pk := map[string]bool{}
			for _, f := range schema.PrimaryKey() {
				pk[f.Name] = true
			}
			row := mergeRow(rows, c.TableName(), pk, pinVals)
			itemRow[instItem{inst, ci}] = row
		}
	}
	return rows, itemRow
}

// mergeRow finds the first existing row of the table whose set primary-key
// fields are compatible with vals (equal wherever both are set) and merges
// vals in; otherwise it starts a new row. Non-key conflicts keep the first
// value — the run may then fail to reproduce, which certification reports.
func mergeRow(rows map[string][]*seedRow, table string, pk map[string]bool, vals map[string]store.Value) *seedRow {
	var target *seedRow
	for _, r := range rows[table] {
		ok := true
		for f, v := range vals {
			if !pk[f] {
				continue
			}
			if have, set := r.fields[f]; set && !have.Equal(v) {
				ok = false
				break
			}
		}
		if ok {
			target = r
			break
		}
	}
	if target == nil {
		target = &seedRow{fields: map[string]store.Value{}}
		rows[table] = append(rows[table], target)
	}
	for _, f := range mapsKeys(vals) {
		if _, set := target.fields[f]; !set {
			target.fields[f] = vals[f]
		}
	}
	return target
}

func mapsKeys(m map[string]store.Value) []string {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// backpropagate pushes at(x.f)- and agg(x.f)-pinned class values into the
// row the binding select returns: if a later key equals the value some
// select read, the seeded record must hold that value in that field.
func backpropagate(
	txns [2]*ast.Txn,
	pinsOf map[instItem][]anomaly.KeyPin,
	classVal func(string) (store.Value, bool),
	itemRow map[instItem]*seedRow,
) {
	if classVal == nil {
		return
	}
	for inst := 0; inst < 2; inst++ {
		cmds := ast.Commands(txns[inst].Body)
		for ci := range cmds {
			for _, p := range pinsOf[instItem{inst, ci}] {
				var srcVar, srcField string
				switch x := p.Expr.(type) {
				case *ast.FieldAt:
					srcVar, srcField = x.Var, x.Field
				case *ast.Agg:
					if x.Fn == ast.AggCount {
						continue
					}
					srcVar, srcField = x.Var, x.Field
				default:
					continue
				}
				v, ok := classVal(p.Term)
				if !ok {
					continue
				}
				// The binding select is the last earlier select into srcVar.
				for j := ci - 1; j >= 0; j-- {
					sel, ok := cmds[j].(*ast.Select)
					if !ok || sel.Var != srcVar {
						continue
					}
					if row := itemRow[instItem{inst, j}]; row != nil {
						if _, set := row.fields[srcField]; !set {
							row.fields[srcField] = v
						}
					}
					break
				}
			}
		}
	}
}

// insertKeyVals collects, per (table, primary-key field), the values the
// transactions' inserts will write — from the model class of the pin when
// it has one, else static evaluation. finalizeRows aligns otherwise
// unconstrained seeded keys with these so a seeded record and a runtime
// insert can denote the same record (an update scanning three of four key
// fields then collides with the insert on the fourth).
func insertKeyVals(
	prog *ast.Program,
	txns [2]*ast.Txn,
	args [2]map[string]store.Value,
	pinsOf map[instItem][]anomaly.KeyPin,
	classVal func(string) (store.Value, bool),
) map[string]map[string][]store.Value {
	out := map[string]map[string][]store.Value{}
	for inst := 0; inst < 2; inst++ {
		for ci, c := range ast.Commands(txns[inst].Body) {
			ins, ok := c.(*ast.Insert)
			if !ok {
				continue
			}
			for _, p := range pinsOf[instItem{inst, ci}] {
				v, ok := store.Value{}, false
				if classVal != nil {
					v, ok = classVal(p.Term)
				}
				if !ok {
					v, ok = evalStatic(p.Expr, args[inst])
				}
				if !ok {
					continue
				}
				t := ins.TableName()
				if out[t] == nil {
					out[t] = map[string][]store.Value{}
				}
				out[t][p.Field] = append(out[t][p.Field], v)
			}
		}
	}
	return out
}

// finalizeRows fills unset primary-key fields — aligning with insert key
// values where possible, fresh otherwise — defaults the remaining schema
// fields, and dedupes rows that converged onto one key.
func finalizeRows(prog *ast.Program, rows map[string][]*seedRow, pool *freshPool, prof profile, inserts map[string]map[string][]store.Value) []benchmarks.TableRow {
	var out []benchmarks.TableRow
	tables := make([]string, 0, len(rows))
	for t := range rows {
		tables = append(tables, t)
	}
	sort.Strings(tables)
	for _, t := range tables {
		schema := prog.Schema(t)
		if schema == nil {
			continue
		}
		seen := map[store.Key]int{}
		for _, r := range rows[t] {
			for _, f := range schema.PrimaryKey() {
				if _, set := r.fields[f.Name]; !set {
					if vs := inserts[t][f.Name]; len(vs) > 0 {
						r.fields[f.Name] = vs[0]
					} else {
						r.fields[f.Name] = pool.fresh(f.Type)
					}
				}
			}
			for _, f := range schema.Fields {
				if f.Name == ast.AliveField {
					continue
				}
				if _, set := r.fields[f.Name]; !set {
					r.fields[f.Name] = prof.defaultValue(f.Type, true)
				}
			}
			keyVals := make([]store.Value, 0, 2)
			for _, f := range schema.PrimaryKey() {
				keyVals = append(keyVals, r.fields[f.Name])
			}
			key := store.MakeKey(keyVals...)
			if i, dup := seen[key]; dup {
				// Same record: merge, earlier row's values win.
				prev := out[i].Row
				for f, v := range r.fields {
					if _, set := prev[f]; !set {
						prev[f] = v
					}
				}
				continue
			}
			row := store.Row{}
			for f, v := range r.fields {
				row[f] = v
			}
			seen[key] = len(out)
			out = append(out, benchmarks.TableRow{Table: t, Row: row})
		}
	}
	return out
}

// lowerProjected maps a witness schedule onto a *different* program — the
// repaired one — by positional projection: the slot sequence keeps the
// model's instance interleaving pattern, successive static commands of the
// repaired transactions fill their instance's slots in order, and each
// repaired command inherits the visibility row of the original item at its
// position (overflow commands clamp to the last item). The projection is a
// heuristic alignment — refactorings add, merge, and split commands — but
// the produced run is a genuine execution of the consistency semantics, so
// the certified property (a fully repaired program admits no violation on
// it) does not depend on the alignment being tight.
func lowerProjected(prog *ast.Program, sched *anomaly.Schedule, args [2]map[string]store.Value, prof profile) (*cluster.DirectedConfig, string) {
	var txns [2]*ast.Txn
	txns[0] = prog.Txn(sched.TxnA)
	txns[1] = prog.Txn(sched.TxnB)
	if txns[0] == nil || txns[1] == nil {
		return nil, "transaction missing from repaired program"
	}
	// Keep only arguments the repaired transaction still declares; default
	// any it gained.
	var pargs [2]map[string]store.Value
	for inst := 0; inst < 2; inst++ {
		pargs[inst] = map[string]store.Value{}
		for _, p := range txns[inst].Params {
			if v, ok := args[inst][p.Name]; ok && v.T == p.Type {
				pargs[inst][p.Name] = v
			} else {
				pargs[inst][p.Name] = prof.defaultValue(p.Type, false)
			}
		}
	}
	rows, _ := seedRows(prog, txns, pargs, nil, nil)
	cfg := &cluster.DirectedConfig{
		Program: prog,
		Rows:    finalizeRows(prog, rows, newFreshPool(), prof, nil),
		Txns: [2]cluster.DirectedTxn{
			{Name: sched.TxnA, Args: pargs[0]},
			{Name: sched.TxnB, Args: pargs[1]},
		},
	}
	// origSeq[inst] is the instance's items in model order; repaired command
	// j of that instance aligns with origSeq[inst][min(j, last)].
	var origSeq [2][]int
	for _, g := range sched.Order {
		inst, _ := sched.ItemAt(g)
		origSeq[inst] = append(origSeq[inst], g)
	}
	var nCmds [2]int
	for inst := 0; inst < 2; inst++ {
		if len(origSeq[inst]) == 0 {
			return nil, "instance absent from schedule"
		}
		nCmds[inst] = len(ast.Commands(txns[inst].Body))
	}
	var next [2]int
	for _, g := range sched.Order {
		inst, _ := sched.ItemAt(g)
		if next[inst] < nCmds[inst] {
			cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: inst, Cmd: next[inst]})
			next[inst]++
		}
	}
	align := func(inst, cmd int) int {
		seq := origSeq[inst]
		if cmd >= len(seq) {
			return seq[len(seq)-1]
		}
		return seq[cmd]
	}
	vis := sched.Vis
	cfg.Vis = func(fi, fc, ti, tc int) bool {
		if fi == ti {
			return false
		}
		return vis[align(fi, fc)][align(ti, tc)]
	}
	return cfg, ""
}

// minimalVis replaces a lowered configuration's visibility with exactly
// what the model's two cycle edges require: true for each wr edge's
// (writer → reader) entry, false everywhere else (rw edges require absence,
// ww edges only order). The model's remaining vis entries were arbitrary
// solver choices — free for the replayer — and an all-closed default keeps
// both instances reading the seeded state, so key expressions derived from
// reads evaluate identically on both sides.
func minimalVis(low *lowered, sched *anomaly.Schedule) cluster.DirectedConfig {
	type entry struct{ from, to instItem }
	var wants []entry
	for _, e := range []anomaly.SchedEdge{sched.Edge1, sched.Edge2} {
		if e.Kind != anomaly.EdgeWR {
			continue
		}
		fi, fc := sched.ItemAt(e.From)
		ti, tc := sched.ItemAt(e.To)
		wants = append(wants, entry{instItem{fi, fc}, instItem{ti, tc}})
	}
	cfg := low.Cfg
	cfg.Vis = func(fi, fc, ti, tc int) bool {
		for _, w := range wants {
			if w.from == (instItem{fi, fc}) && w.to == (instItem{ti, tc}) {
				return true
			}
		}
		return false
	}
	return cfg
}

// splitMode selects a canonical interleaving template's visibility shape.
type splitMode int

const (
	// splitHidden: neither instance sees the other — lost-update and
	// write-skew shapes (conflicts manifest as ww/rw).
	splitHidden splitMode = iota
	// splitPrefixVis: B sees A's commands up to and including c1 — the
	// dirty-read shape (B observes A's intermediate state).
	splitPrefixVis
	// splitTailVis: A's commands after c1 see all of B — the
	// non-repeatable-read shape (A re-reads state B changed in between).
	splitTailVis
	// splitBothVis: both of the above.
	splitBothVis
)

// splitConfig builds the canonical interleaving for an access pair: A runs
// through its command i1, then all of B, then the rest of A. With the
// pair's two commands on opposite sides of B, every conflict between them
// and B's commands realizes a cycle through the pair — the non-atomic
// visibility the pair claims — while all key reads resolve against the
// seeded state (plus the granted views), sidestepping data-flow divergence
// the exact model schedule can force.
func splitConfig(low *lowered, prog *ast.Program, sched *anomaly.Schedule, i1 int, mode splitMode) cluster.DirectedConfig {
	cfg := low.Cfg
	cfg.Steps = nil
	nA := len(ast.Commands(prog.Txn(sched.TxnA).Body))
	nB := len(ast.Commands(prog.Txn(sched.TxnB).Body))
	for c := 0; c <= i1 && c < nA; c++ {
		cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: 0, Cmd: c})
	}
	for d := 0; d < nB; d++ {
		cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: 1, Cmd: d})
	}
	for c := i1 + 1; c < nA; c++ {
		cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: 0, Cmd: c})
	}
	cfg.Vis = func(fi, fc, ti, tc int) bool {
		prefix := fi == 0 && ti == 1 && fc <= i1
		tail := fi == 1 && ti == 0 && tc > i1
		switch mode {
		case splitPrefixVis:
			return prefix
		case splitTailVis:
			return tail
		case splitBothVis:
			return prefix || tail
		default:
			return false
		}
	}
	return cfg
}

// lowerSerial builds the strongly consistent replay of the same inputs:
// both instances run serially in the given order, the second seeing
// everything the first committed — the SC execution the certificate
// contrasts the anomalous schedule against.
func lowerSerial(prog *ast.Program, sched *anomaly.Schedule, args [2]map[string]store.Value, rows []benchmarks.TableRow, first int) (*cluster.DirectedConfig, string) {
	var txns [2]*ast.Txn
	txns[0] = prog.Txn(sched.TxnA)
	txns[1] = prog.Txn(sched.TxnB)
	if txns[0] == nil || txns[1] == nil {
		return nil, "transaction missing from program"
	}
	cfg := &cluster.DirectedConfig{
		Program: prog,
		Rows:    rows,
		Txns: [2]cluster.DirectedTxn{
			{Name: sched.TxnA, Args: args[0]},
			{Name: sched.TxnB, Args: args[1]},
		},
	}
	second := 1 - first
	for _, inst := range []int{first, second} {
		for ci := range ast.Commands(txns[inst].Body) {
			cfg.Steps = append(cfg.Steps, cluster.DirectedStep{Inst: inst, Cmd: ci})
		}
	}
	cfg.Vis = func(fi, _, ti, _ int) bool { return fi == first && ti == second }
	return cfg, ""
}
