package replay_test

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/replay"
)

// Differential-oracle golden: the exact per-benchmark certificate counts
// for every benchmark × weak model. Like the Table-1 golden, these pin the
// current behavior — update deliberately when the detector, the lowering,
// or a benchmark changes, never to paper over a regression.
//
// The one pair that never reproduces is SmallBank writeCheck (U1, U2):
// its two commands sit on mutually exclusive branches of the same guard,
// so no single execution can run both — an honest over-approximation of
// the static encoding (DESIGN.md §11).

type certCounts struct{ total, certified int }

var certGolden = map[string]map[anomaly.Model]certCounts{
	"TPC-C":      {anomaly.EC: {123, 123}, anomaly.CC: {123, 123}, anomaly.RR: {123, 123}},
	"SEATS":      {anomaly.EC: {38, 38}, anomaly.CC: {38, 38}, anomaly.RR: {38, 38}},
	"Courseware": {anomaly.EC: {10, 10}, anomaly.CC: {10, 10}, anomaly.RR: {10, 10}},
	"SmallBank":  {anomaly.EC: {32, 31}, anomaly.CC: {32, 31}, anomaly.RR: {31, 30}},
	"Twitter":    {anomaly.EC: {11, 11}, anomaly.CC: {11, 11}, anomaly.RR: {11, 11}},
	"FMKe":       {anomaly.EC: {23, 23}, anomaly.CC: {23, 23}, anomaly.RR: {23, 23}},
	"SIBench":    {anomaly.EC: {1, 1}, anomaly.CC: {1, 1}, anomaly.RR: {1, 1}},
	"Wikipedia":  {anomaly.EC: {29, 29}, anomaly.CC: {29, 29}, anomaly.RR: {29, 29}},
	"Killrchat":  {anomaly.EC: {13, 13}, anomaly.CC: {13, 13}, anomaly.RR: {13, 13}},
}

// TestCertifiedGolden replays witness certificates for all nine benchmarks
// under EC/CC/RR and pins the exact counts, the ≥95% reproduction floor,
// and that every detected pair's witness lowered into a runnable schedule.
func TestCertifiedGolden(t *testing.T) {
	for _, b := range benchmarks.All() {
		want, ok := certGolden[b.Name]
		if !ok {
			t.Errorf("%s: benchmark missing from certGolden — add its counts", b.Name)
			continue
		}
		prog := b.MustProgram()
		for _, model := range []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR} {
			cert, rep, err := replay.CertifyModel(prog, model)
			if err != nil {
				t.Fatalf("%s/%s: %v", b.Name, model, err)
			}
			w := want[model]
			if cert.Total != len(rep.Pairs) {
				t.Errorf("%s/%s: certificate covers %d pairs, report has %d",
					b.Name, model, cert.Total, len(rep.Pairs))
			}
			if cert.Total != w.total || cert.Certified != w.certified {
				t.Errorf("%s/%s: certified %d/%d, golden %d/%d",
					b.Name, model, cert.Certified, cert.Total, w.certified, w.total)
			}
			if cert.Lowered != cert.Total {
				t.Errorf("%s/%s: only %d/%d witnesses lowered into runnable schedules",
					b.Name, model, cert.Lowered, cert.Total)
			}
			if cert.Rate() < 0.95 {
				t.Errorf("%s/%s: reproduction rate %.2f below the 0.95 floor",
					b.Name, model, cert.Rate())
			}
		}
	}
}
