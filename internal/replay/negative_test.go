package replay_test

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/repair"
)

// Negative-path certification: on every formerly-anomalous schedule, the
// original program replayed serially (the SC control) and the repaired
// program replayed under the projected schedule must show zero violations.
// A violation in either would mean the replayer's cycle check is unsound —
// flagging cycles the schedule cannot cause — or the repair did not remove
// the anomaly it claims to.
func TestNegativeControlsZeroViolations(t *testing.T) {
	anyRepairedRuns := false
	for _, b := range benchmarks.All() {
		prog := b.MustProgram()
		res, err := repair.RepairWith(prog, anomaly.EC, repair.Options{Incremental: true, Certify: true})
		if err != nil {
			t.Fatalf("%s: repair: %v", b.Name, err)
		}
		c := res.Certificate
		if c == nil {
			t.Fatalf("%s: Options.Certify produced no certificate", b.Name)
		}
		// Anti-vacuity: every benchmark must contribute replayed schedules —
		// a zero-run control proves nothing.
		if c.Lowered == 0 {
			t.Errorf("%s: no witness lowered into a replayable schedule (vacuous control)", b.Name)
		}
		if c.Certified == 0 {
			t.Errorf("%s: no anomaly reproduced — positive side is vacuous", b.Name)
		}
		if c.SCRuns == 0 {
			t.Errorf("%s: no serial control runs executed", b.Name)
		}
		if c.SCViolations != 0 {
			t.Errorf("%s: %d/%d serial (SC) replays exhibited a violation; want 0",
				b.Name, c.SCViolations, c.SCRuns)
		}
		if c.RepairedViolations != 0 {
			t.Errorf("%s: %d/%d repaired-program replays exhibited a violation; want 0",
				b.Name, c.RepairedViolations, c.RepairedRuns)
		}
		if c.RepairedRuns > 0 {
			anyRepairedRuns = true
		}
		// Pairs whose transactions keep residual anomalies are skipped, not
		// silently dropped: runs + skips must account for every lowered pair.
		if got := c.RepairedRuns + c.SkippedPartial; got > c.Lowered {
			t.Errorf("%s: repaired runs (%d) + skips (%d) exceed lowered pairs (%d)",
				b.Name, c.RepairedRuns, c.SkippedPartial, c.Lowered)
		}
		for _, e := range c.Errors {
			t.Errorf("%s: negative control error: %s", b.Name, e)
		}
	}
	if !anyRepairedRuns {
		t.Error("no benchmark exercised the repaired-program control (vacuous across the corpus)")
	}
}
