package replay

import (
	"atropos/internal/anomaly"
	"atropos/internal/cluster"
	"atropos/internal/store"
)

// This file turns a directed run's observations into the execution's
// Adya-style dependency graph and checks it against the static claim. The
// dynamic edge definitions mirror the encoder's exactly, with the model's
// symbolic relations replaced by the run's realized ones:
//
//	wr(x → y, f): y read field f of a record x wrote, and x's batch was in
//	              y's local view (realized vis);
//	ww(x → y, f): both wrote field f of one record and x's batch merged
//	              first (realized ord of the commit timestamps);
//	rw(x → y, f): x read field f of a record y wrote, and y's batch was
//	              NOT in x's view (realized ¬vis) — the anti-dependency.
//
// Only cross-instance edges are derived; the static cycle shape needs
// nothing else. A witness reproduces when both of its model edges manifest
// with the exact per-field kinds the solver claimed; a run exhibits a
// violation when some dependency cycle enters one instance at one command
// and leaves at a different one — the same shape the detector's query
// asserts.

// cmdRef names a static command of one instance.
type cmdRef struct {
	Inst, Cmd int
}

// edgeKey is one dynamic dependency edge, per field.
type edgeKey struct {
	From, To cmdRef
	Kind     anomaly.EdgeKind
	Field    string
}

// slotKey addresses one field of one record.
type slotKey struct {
	table string
	key   store.Key
	field string
}

type writeRec struct {
	ref cmdRef
	ts  int64
}

// deriveEdges computes the run's cross-instance dependency edges.
func deriveEdges(obs []cluster.DirectedObs) map[edgeKey]bool {
	writes := map[slotKey][]writeRec{}
	for _, o := range obs {
		for _, w := range o.Writes {
			s := slotKey{w.Table, w.Key, w.Field}
			writes[s] = append(writes[s], writeRec{cmdRef{o.Inst, o.Cmd}, o.TS})
		}
	}
	edges := map[edgeKey]bool{}
	for s, ws := range writes {
		for _, a := range ws {
			for _, b := range ws {
				if a.ref.Inst != b.ref.Inst && a.ts < b.ts {
					edges[edgeKey{a.ref, b.ref, anomaly.EdgeWW, s.field}] = true
				}
			}
		}
	}
	for _, o := range obs {
		me := cmdRef{o.Inst, o.Cmd}
		inView := map[cmdRef]bool{}
		for _, b := range o.View {
			if b.Inst != o.Inst {
				inView[cmdRef{b.Inst, b.Cmd}] = true
			}
		}
		seen := map[slotKey]bool{}
		for _, r := range o.Reads {
			s := slotKey{r.Table, r.Key, r.Field}
			if seen[s] {
				continue
			}
			seen[s] = true
			for _, w := range writes[s] {
				if w.ref.Inst == o.Inst {
					continue
				}
				if inView[w.ref] {
					edges[edgeKey{w.ref, me, anomaly.EdgeWR, s.field}] = true
				} else {
					edges[edgeKey{me, w.ref, anomaly.EdgeRW, s.field}] = true
				}
			}
		}
	}
	return edges
}

// edgeManifests reports whether one model edge appears in the run with
// every per-field kind the solver's model asserted.
func edgeManifests(sched *anomaly.Schedule, e anomaly.SchedEdge, edges map[edgeKey]bool) bool {
	if len(e.Fields) == 0 {
		return false
	}
	fi, fc := sched.ItemAt(e.From)
	ti, tc := sched.ItemAt(e.To)
	for _, f := range e.Fields {
		if !edges[edgeKey{cmdRef{fi, fc}, cmdRef{ti, tc}, f.Kind, f.Field}] {
			return false
		}
	}
	return true
}

// hasViolation reports whether the edge set contains a dependency cycle
// that enters some instance at one command and leaves at another — the
// static anomaly shape dep(A.c1 → B.d1) ∧ dep(B.d2 → A.c2), c1 ≠ c2,
// checked from both instances' perspectives.
func hasViolation(edges map[edgeKey]bool) bool {
	var out [2]map[int]bool // commands of inst with an edge to the other
	var in [2]map[int]bool  // commands of inst with an edge from the other
	for i := range out {
		out[i] = map[int]bool{}
		in[i] = map[int]bool{}
	}
	for e := range edges {
		out[e.From.Inst][e.From.Cmd] = true
		in[e.To.Inst][e.To.Cmd] = true
	}
	for inst := 0; inst < 2; inst++ {
		for a := range out[inst] {
			for b := range in[inst] {
				if a != b {
					return true
				}
			}
		}
	}
	return false
}

// hasPairCycle reports whether the edges contain a cycle that enters
// instance A at one of the pair's two commands and leaves at the other (in
// either orientation) — the pair's defining anomaly shape.
func hasPairCycle(edges map[edgeKey]bool, i1, i2 int) bool {
	out := map[int]bool{}
	in := map[int]bool{}
	for e := range edges {
		if e.From.Inst == 0 {
			out[e.From.Cmd] = true
		}
		if e.To.Inst == 0 {
			in[e.To.Cmd] = true
		}
	}
	return (out[i1] && in[i2]) || (out[i2] && in[i1])
}

// runEdges executes one directed configuration and derives its dependency
// edges, with the canonical event trace.
func runEdges(cfg cluster.DirectedConfig) (map[edgeKey]bool, []string, error) {
	tr := &cluster.Trace{}
	cfg.Trace = tr
	res, err := cluster.RunDirected(cfg)
	if err != nil {
		return nil, nil, err
	}
	return deriveEdges(res.Obs), tr.Events, nil
}

// runViolates executes one directed configuration and reports whether its
// dependency graph contains the anomaly cycle shape.
func runViolates(cfg *cluster.DirectedConfig) (bool, error) {
	res, err := cluster.RunDirected(*cfg)
	if err != nil {
		return false, err
	}
	return hasViolation(deriveEdges(res.Obs)), nil
}
