package replay_test

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/progen"
	"atropos/internal/replay"
)

// FuzzWitnessReplaySoundness drives the detect → extract → lower → replay
// pipeline over generator-derived programs under fuzzed seeds. Invariants:
//
//   - witnessed detection and certification never error or panic;
//   - a certified pair really is backed by a run — Certified ≤ Lowered ≤
//     Total, every reproduced outcome names its method, and every
//     non-reproduced one its reason (no certified-but-irreproducible pair);
//   - certification is deterministic: a second replay of the same report
//     reproduces exactly the same outcomes;
//   - the serial (SC) control never exhibits a violation — serial runs
//     order every dependency edge one way, so a cycle there would be a
//     soundness bug in the replayer's cycle check.
//
// The nightly CI job fuzzes this target for 30s per night
// (see .github/workflows/nightly.yml); `make fuzz` runs it locally.
func FuzzWitnessReplaySoundness(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		prog := progen.Program(seed)
		rep, err := anomaly.DetectWitnessed(prog, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: DetectWitnessed: %v", seed, err)
		}
		cert := replay.Certify(prog, rep)
		if cert.Total != len(rep.Pairs) {
			t.Fatalf("seed %d: certificate covers %d pairs, report has %d", seed, cert.Total, len(rep.Pairs))
		}
		if cert.Certified > cert.Lowered || cert.Lowered > cert.Total {
			t.Fatalf("seed %d: incoherent counts certified=%d lowered=%d total=%d",
				seed, cert.Certified, cert.Lowered, cert.Total)
		}
		for i, out := range cert.Outcomes {
			if out.Reproduced && !out.Lowered {
				t.Fatalf("seed %d: pair %d certified without a lowered schedule", seed, i)
			}
			if out.Reproduced && out.Method == "" {
				t.Fatalf("seed %d: pair %d certified without naming its replay method", seed, i)
			}
			if !out.Reproduced && out.Reason == "" {
				t.Fatalf("seed %d: pair %d unreproduced without a reason", seed, i)
			}
		}
		// Determinism: replaying the same witnessed report again must land
		// on identical outcomes.
		again := replay.Certify(prog, rep)
		if again.Certified != cert.Certified || again.Lowered != cert.Lowered {
			t.Fatalf("seed %d: replay nondeterministic: %d/%d then %d/%d",
				seed, cert.Certified, cert.Lowered, again.Certified, again.Lowered)
		}
		for i := range cert.Outcomes {
			a, b := cert.Outcomes[i], again.Outcomes[i]
			if a.Reproduced != b.Reproduced || a.Method != b.Method || a.Reason != b.Reason {
				t.Fatalf("seed %d: pair %d outcome nondeterministic: (%t %q %q) then (%t %q %q)",
					seed, i, a.Reproduced, a.Method, a.Reason, b.Reproduced, b.Method, b.Reason)
			}
		}
		// Serial control: replaying the lowered inputs serially (both
		// orders) must never exhibit a violation.
		rc := replay.CertifyRepair(prog, nil, rep, nil)
		if rc.SCViolations != 0 {
			t.Fatalf("seed %d: %d/%d serial replays exhibited a violation", seed, rc.SCViolations, rc.SCRuns)
		}
	})
}
