package engine

import (
	"context"
	"errors"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/repair"
	"atropos/internal/sat"
)

// TestRetryAfterFormula pins the adaptive backoff hint exactly:
// (queued+1) × service-time-EWMA / workers, clamped to [1s, 60s], with a
// 1s default before any observation.
func TestRetryAfterFormula(t *testing.T) {
	e := New(Config{Workers: 2, QueueDepth: 8})
	if got := e.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter with no observations = %v, want 1s", got)
	}
	e.ewmaNs.Store(int64(4 * time.Second))
	if got := e.RetryAfter(); got != 2*time.Second {
		t.Fatalf("RetryAfter(queued=0, ewma=4s, workers=2) = %v, want 2s", got)
	}
	e.queued.Store(3)
	if got := e.RetryAfter(); got != 8*time.Second {
		t.Fatalf("RetryAfter(queued=3, ewma=4s, workers=2) = %v, want 8s", got)
	}
	e.ewmaNs.Store(int64(time.Millisecond))
	if got := e.RetryAfter(); got != time.Second {
		t.Fatalf("RetryAfter below floor = %v, want clamp to 1s", got)
	}
	e.ewmaNs.Store(int64(10 * time.Minute))
	if got := e.RetryAfter(); got != time.Minute {
		t.Fatalf("RetryAfter above ceiling = %v, want clamp to 60s", got)
	}
}

// TestServiceEwma pins the smoothing: the first observation seeds the
// estimate, each further one folds in at 1/5 weight.
func TestServiceEwma(t *testing.T) {
	e := New(Config{Workers: 1})
	e.observeService(100 * time.Millisecond)
	if got := e.ewmaNs.Load(); got != int64(100*time.Millisecond) {
		t.Fatalf("first observation = %dns, want seed 100ms", got)
	}
	e.observeService(200 * time.Millisecond)
	want := int64(100*time.Millisecond) + int64(100*time.Millisecond)/5
	if got := e.ewmaNs.Load(); got != want {
		t.Fatalf("second observation = %dns, want %dns (1/5 fold)", got, want)
	}
}

// TestQueueWaitShed: a waiter older than MaxQueueWait is shed with
// ErrOverloaded and counted, instead of going stale in the queue.
func TestQueueWaitShed(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2, MaxQueueWait: 20 * time.Millisecond})
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	defer e.release()
	start := time.Now()
	err := e.acquire(context.Background())
	if !errors.Is(err, ErrOverloaded) {
		t.Fatalf("stale waiter returned %v, want ErrOverloaded", err)
	}
	if !strings.Contains(err.Error(), "shed") {
		t.Fatalf("shed error does not say so: %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("shed took %v", elapsed)
	}
	st := e.Stats()
	if st.Shed != 1 || st.Rejected != 1 || st.Queued != 0 {
		t.Fatalf("stats after shed = %+v, want shed=1 rejected=1 queued=0", st)
	}
}

// TestQueueWaitDisabled: a negative MaxQueueWait turns the ceiling off — the
// waiter holds its place until the slot frees.
func TestQueueWaitDisabled(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1, MaxQueueWait: -1})
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	waiter := make(chan error, 1)
	go func() { waiter <- e.acquire(context.Background()) }()
	waitQueued(t, e, 1)
	time.Sleep(50 * time.Millisecond) // would shed under any small ceiling
	e.release()
	if err := <-waiter; err != nil {
		t.Fatalf("waiter with disabled ceiling: %v", err)
	}
	e.release()
	if st := e.Stats(); st.Shed != 0 {
		t.Fatalf("shed = %d with ceiling disabled", st.Shed)
	}
}

// TestBreakerStateMachine drives the per-client circuit directly through
// its transitions: closed → open at the trip threshold → fast-failing →
// half-open after cooldown → re-open on one more degraded result → closed
// on a clean one.
func TestBreakerStateMachine(t *testing.T) {
	e := New(Config{Workers: 1, BreakerTrip: 3, BreakerCooldown: 25 * time.Millisecond})
	const client = "c"
	for i := 0; i < 2; i++ {
		e.breakerResult(client, true)
		if err := e.breakerCheck(client); err != nil {
			t.Fatalf("breaker open after %d degraded results: %v", i+1, err)
		}
	}
	e.breakerResult(client, true) // third strike
	if err := e.breakerCheck(client); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker check after trip = %v, want ErrCircuitOpen", err)
	}
	st := e.Stats()
	if st.BreakerTrips != 1 || st.BreakerFastFails != 1 || st.BreakerOpen != 1 {
		t.Fatalf("stats after trip = %+v, want trips=1 fastFails=1 open=1", st)
	}
	time.Sleep(30 * time.Millisecond)
	if err := e.breakerCheck(client); err != nil {
		t.Fatalf("half-open probe rejected after cooldown: %v", err)
	}
	// The probe degrades too: one strike re-opens (consec resumed at trip-1).
	e.breakerResult(client, true)
	if err := e.breakerCheck(client); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("breaker after degraded half-open probe = %v, want ErrCircuitOpen", err)
	}
	time.Sleep(30 * time.Millisecond)
	if err := e.breakerCheck(client); err != nil {
		t.Fatalf("second half-open probe rejected: %v", err)
	}
	e.breakerResult(client, false) // clean probe closes the circuit
	for i := 0; i < 2; i++ {
		if err := e.breakerCheck(client); err != nil {
			t.Fatalf("breaker open after clean close: %v", err)
		}
		e.breakerResult(client, true)
	}
	// Two strikes after a clean close must not trip a 3-strike breaker:
	// closing forgets history.
	if err := e.breakerCheck(client); err != nil {
		t.Fatalf("breaker tripped on stale strikes: %v", err)
	}
}

// TestBreakerEndToEnd drives the circuit through the public verb: repeated
// budget-starved analyses from one client trip its breaker; a fresh client
// is unaffected.
func TestBreakerEndToEnd(t *testing.T) {
	e := New(Config{Workers: 1, BreakerTrip: 2, BreakerCooldown: time.Hour})
	prog := loadRMW(t)
	starved := []repair.Option{
		repair.Client("greedy"), repair.Incremental(false),
		repair.SolveBudget(sat.Budget{Propagations: 1}),
	}
	for i := 0; i < 2; i++ {
		rep, err := e.Analyze(context.Background(), prog, anomaly.EC, starved...)
		if err != nil {
			t.Fatalf("starved analyze %d: %v", i, err)
		}
		if !rep.Degraded || rep.Unknown == 0 {
			t.Fatalf("starved analyze %d not degraded: degraded=%v unknown=%d", i, rep.Degraded, rep.Unknown)
		}
	}
	if _, err := e.Analyze(context.Background(), prog, anomaly.EC, starved...); !errors.Is(err, ErrCircuitOpen) {
		t.Fatalf("post-trip analyze = %v, want ErrCircuitOpen", err)
	}
	rep, err := e.Analyze(context.Background(), prog, anomaly.EC, repair.Client("patient"), repair.Incremental(false))
	if err != nil || rep.Degraded {
		t.Fatalf("unbudgeted client affected by neighbor's breaker: err=%v degraded=%v", err, rep != nil && rep.Degraded)
	}
	st := e.Stats()
	if st.BreakerTrips != 1 || st.Degraded != 2 || st.BudgetExhaustions == 0 {
		t.Fatalf("stats = %+v, want trips=1 degraded=2 exhaustions>0", st)
	}
}

// TestStageSplitDerivedFromDeadline: a Repair with a context deadline and no
// explicit stage split gets repair.Split's allocation — pinned here by
// giving the whole request a microscopic deadline and checking the result
// degrades per-stage instead of erroring.
func TestStageSplitDerivedFromDeadline(t *testing.T) {
	e := New(Config{Workers: 1})
	prog, err := benchmarks.TPCC.Program()
	if err != nil {
		t.Fatal(err)
	}
	// TPC-C detection takes well over the 55ms detect allowance this
	// deadline splits out, so the detect stage must expire and degrade.
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	res, err := e.Repair(ctx, prog, anomaly.EC, repair.Incremental(false))
	if err != nil {
		// The parent deadline itself may fire first on a slow machine; that
		// path is the caller's timeout, not a stage degradation.
		if !errors.Is(err, context.DeadlineExceeded) {
			t.Fatalf("repair under tiny deadline: %v", err)
		}
		return
	}
	if !res.Degraded || len(res.DegradedStages) == 0 {
		t.Fatalf("repair under tiny deadline returned undegraded result: %+v", res.DegradedStages)
	}
	if res.Program == nil {
		t.Fatal("degraded repair returned no program")
	}
}

// TestEngineInvariantsUnderChaos is the stats-accounting property test: a
// concurrent mix of clean requests, budget-starved requests, panicking
// requests, cancelled requests, and overload rejections must leave the
// engine drained (no occupied slots, no queued waiters) with every request
// accounted for in exactly one of completed/canceled/rejected.
func TestEngineInvariantsUnderChaos(t *testing.T) {
	e := New(Config{
		Workers: 2, QueueDepth: 1, MaxQueueWait: 5 * time.Millisecond,
		BreakerTrip: 3, BreakerCooldown: time.Millisecond,
		Hooks: &Hooks{Exec: func(verb, client string) {
			if client == "boom" {
				panic("chaos: injected")
			}
		}},
	})
	prog := loadRMW(t)
	const n = 48
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			switch i % 5 {
			case 0: // clean, session-backed
				e.Analyze(ctx, prog, anomaly.EC, repair.Client(fmt.Sprintf("ok-%d", i%3))) //nolint:errcheck
			case 1: // budget-starved (degrades, may trip its breaker)
				e.Analyze(ctx, prog, anomaly.EC, repair.Client("greedy"),
					repair.Incremental(false), repair.SolveBudget(sat.Budget{Propagations: 1})) //nolint:errcheck
			case 2: // panics inside the worker slot
				e.Analyze(ctx, prog, anomaly.EC, repair.Client("boom"), repair.Incremental(false)) //nolint:errcheck
			case 3: // cancelled almost immediately
				cctx, ccancel := context.WithTimeout(ctx, time.Millisecond)
				e.Analyze(cctx, prog, anomaly.EC, repair.Incremental(false)) //nolint:errcheck
				ccancel()
			case 4: // full repair, session-backed
				e.Repair(ctx, prog, anomaly.EC, repair.Client(fmt.Sprintf("ok-%d", i%3))) //nolint:errcheck
			}
		}(i)
	}
	wg.Wait()
	st := e.Stats()
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("engine not drained: %+v", st)
	}
	if got := st.Completed + st.Canceled + st.Rejected; got != n {
		t.Fatalf("request accounting: completed %d + canceled %d + rejected %d = %d, want %d",
			st.Completed, st.Canceled, st.Rejected, got, n)
	}
	// The engine must still serve cleanly after the storm.
	rep, err := e.Analyze(context.Background(), prog, anomaly.EC, repair.Incremental(false))
	if err != nil || rep.Degraded {
		t.Fatalf("post-chaos analyze: err=%v degraded=%v", err, rep != nil && rep.Degraded)
	}
}
