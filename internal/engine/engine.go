// Package engine hosts the long-lived Atropos engine behind the public API
// and the atroposd service: one object owning the bounded worker pool,
// per-client incremental detection sessions, and the pooled encoder/solver
// arenas that every request draws from. The CLI, the daemon, and the tests
// all share this entry point, so "run one repair" and "serve a million
// repairs" differ only in who calls it.
//
// Concurrency model (DESIGN.md §12):
//
//   - Admission: every request acquires one of Workers slots; up to
//     QueueDepth further requests wait for a slot, and anything beyond that
//     is rejected immediately with ErrOverloaded (the service layer maps it
//     to HTTP 429 + Retry-After). A waiting request that is cancelled
//     leaves the queue without consuming a slot.
//   - Sessions: each (client, model, recording) key checks a DetectSession
//     out of an LRU; a session is owned exclusively while checked out
//     (DetectSession serializes its own Detect calls by contract), so a
//     concurrent request for the same key simply gets a fresh session, and
//     whichever finishes last is recycled instead of cached twice. Evicted
//     and surplus sessions are Reset() — dropping their caches but keeping
//     their allocated map/slice capacity — and parked on a freelist.
//   - Cancellation: the request context threads through repair → anomaly →
//     sat, where the CDCL solvers poll it; a disconnected client frees its
//     worker slot mid-solve instead of leaking it.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/cluster"
	"atropos/internal/core"
	"atropos/internal/repair"
	"atropos/internal/replay"
)

// ErrOverloaded reports an admission rejection: every worker slot is busy
// and the wait queue is full (or the request was shed after waiting past
// the queue-wait ceiling). Callers should back off and retry after
// RetryAfter.
var ErrOverloaded = errors.New("engine: overloaded (worker queue full)")

// ErrCircuitOpen reports a per-client circuit-breaker fast-fail: the
// client's recent requests repeatedly exhausted their resource budgets, so
// the engine rejects further ones without consuming a slot until the
// cooldown passes. Callers should reduce their budget pressure (smaller
// programs, larger budgets) before retrying.
var ErrCircuitOpen = errors.New("engine: circuit open (repeated budget exhaustions)")

// Config sizes an Engine.
type Config struct {
	// Workers bounds concurrently executing requests; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the ones
	// executing; <= 0 selects 4×Workers.
	QueueDepth int
	// Sessions caps the per-(client, model, recording) DetectSession LRU;
	// <= 0 selects 64.
	Sessions int
	// DetectParallelism is the per-request detection worker count applied
	// when a request does not set repair.Parallelism itself: 0 selects
	// repair.DefaultParallelism (min(GOMAXPROCS, 4) — multi-core detection
	// is the fast path), 1 restores strictly sequential per-request
	// detection (the right setting when the engine's own Workers fan-out
	// already saturates the machine), n > 1 pins the count.
	DetectParallelism int
	// MaxQueueWait is the CoDel-style queue-wait ceiling: a request still
	// waiting for a worker slot after this long is shed with ErrOverloaded
	// instead of going stale in the queue (its client's deadline budget is
	// mostly spent by then anyway). 0 selects 30s; negative disables the
	// ceiling.
	MaxQueueWait time.Duration
	// BreakerTrip is how many consecutive degraded (budget-exhausted)
	// results open a client's circuit breaker; 0 selects 3, negative
	// disables the breaker.
	BreakerTrip int
	// BreakerCooldown is how long an open breaker fast-fails the client
	// before admitting a half-open probe; <= 0 selects 10s.
	BreakerCooldown time.Duration
	// Hooks instruments request execution for the deterministic
	// service-chaos harness; nil costs nothing.
	Hooks *Hooks
}

// Hooks are test/chaos instrumentation points. All hooks run on request
// goroutines; they must be safe for concurrent use.
type Hooks struct {
	// Exec runs inside the request's worker slot, after admission and the
	// panic guard are in place and before the verb body. It may stall (to
	// hold slots and build queue depth) or panic (to exercise the guard) —
	// exactly the faults exp.RunServiceChaos injects.
	Exec func(verb, client string)
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	if c.MaxQueueWait == 0 {
		c.MaxQueueWait = 30 * time.Second
	}
	if c.BreakerTrip == 0 {
		c.BreakerTrip = 3
	}
	if c.BreakerCooldown <= 0 {
		c.BreakerCooldown = 10 * time.Second
	}
	return c
}

// sessionKey identifies a cached session: witness-recording sessions are
// kept apart from plain ones because results cached without recording carry
// no schedules (anomaly.DetectSession.RecordWitnesses).
type sessionKey struct {
	client string
	model  anomaly.Model
	record bool
}

type sessionFlavor struct {
	model  anomaly.Model
	record bool
}

type cachedSession struct {
	key sessionKey
	s   *anomaly.DetectSession
}

// maxFree bounds each flavor's freelist of reset sessions.
const maxFree = 8

// Engine is the long-lived request executor. Construct with New; an Engine
// is safe for concurrent use.
type Engine struct {
	cfg Config

	sem    chan struct{} // worker slots
	queued atomic.Int64  // requests waiting for a slot

	mu    sync.Mutex
	lru   *list.List // of *cachedSession; front = most recently returned
	byKey map[sessionKey]*list.Element
	free  map[sessionFlavor][]*anomaly.DetectSession

	completed atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64

	// Overload-control state (see acquire, RetryAfter, breaker*).
	shed             atomic.Int64
	degraded         atomic.Int64
	exhaustions      atomic.Int64
	breakerTrips     atomic.Int64
	breakerFastFails atomic.Int64
	ewmaNs           atomic.Int64 // service-time EWMA, nanoseconds; 0 = no observation yet

	bmu      sync.Mutex
	breakers map[string]*breaker
}

// breaker is one client's circuit-breaker state: consec counts consecutive
// degraded results; a non-zero openUntil means the circuit is open
// (fast-failing) until that instant, after which the first check switches
// it to half-open — one more degraded result re-opens it immediately, a
// clean one closes it.
type breaker struct {
	consec    int
	openUntil time.Time
}

// New builds an engine from cfg (zero value: GOMAXPROCS workers, 4×queue,
// 64 sessions).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:      cfg,
		sem:      make(chan struct{}, cfg.Workers),
		lru:      list.New(),
		byKey:    map[sessionKey]*list.Element{},
		free:     map[sessionFlavor][]*anomaly.DetectSession{},
		breakers: map[string]*breaker{},
	}
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// acquire admits one request: it takes a worker slot, waiting in the
// bounded queue if none is free. It returns ErrOverloaded when the queue is
// full and ctx.Err() if the caller is cancelled while waiting.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the wait queue if it has room. The CAS loop keeps
	// the queue bound exact under concurrent arrivals.
	for {
		n := e.queued.Load()
		if n >= int64(e.cfg.QueueDepth) {
			e.rejected.Add(1)
			return ErrOverloaded
		}
		if e.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer e.queued.Add(-1)
	// CoDel-style staleness ceiling: a waiter this old has burned most of
	// its client's deadline budget in line, so shedding it (and letting the
	// client retry against a shorter queue) beats serving it late.
	var shed <-chan time.Time
	if e.cfg.MaxQueueWait > 0 {
		t := time.NewTimer(e.cfg.MaxQueueWait)
		defer t.Stop()
		shed = t.C
	}
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-shed:
		e.shed.Add(1)
		e.rejected.Add(1)
		return fmt.Errorf("%w (shed after waiting %s)", ErrOverloaded, e.cfg.MaxQueueWait)
	case <-ctx.Done():
		e.canceled.Add(1)
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// finish folds one executed request into the counters, feeds the
// service-time EWMA, and passes its error through.
func (e *Engine) finish(start time.Time, err error) error {
	e.observeService(time.Since(start))
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		e.canceled.Add(1)
	} else {
		e.completed.Add(1)
	}
	return err
}

// ewmaWeight is the EWMA smoothing numerator out of ewmaDenom: each new
// observation contributes 20%, so the estimate tracks load shifts within a
// handful of requests without jittering on one outlier.
const (
	ewmaWeight = 1
	ewmaDenom  = 5
)

// observeService folds one request's service time into the EWMA. Lock-free:
// concurrent finishers CAS, and a lost race simply re-folds against the
// winner's estimate.
func (e *Engine) observeService(d time.Duration) {
	ns := int64(d)
	if ns < 1 {
		ns = 1
	}
	for {
		old := e.ewmaNs.Load()
		next := ns // first observation seeds the estimate directly
		if old != 0 {
			next = old + (ns-old)*ewmaWeight/ewmaDenom
			if next < 1 {
				next = 1
			}
		}
		if e.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// RetryAfter estimates how long a rejected client should back off: the
// current queue (plus itself) worked off at the observed service rate across
// the worker pool, clamped to [1s, 60s]. With no observations yet it
// defaults to 1s.
func (e *Engine) RetryAfter() time.Duration {
	ewma := e.ewmaNs.Load()
	if ewma == 0 {
		return time.Second
	}
	wait := time.Duration((e.queued.Load() + 1) * ewma / int64(e.cfg.Workers))
	if wait < time.Second {
		return time.Second
	}
	if wait > time.Minute {
		return time.Minute
	}
	return wait
}

// guard converts a panic inside one request's body into an error return,
// so a single poisoned request cannot take down the daemon or leak its
// worker slot (release is deferred after guard, so it still runs). The
// panicking request's session is deliberately NOT checked back in — its
// caches may be mid-mutation — which is why the verbs check sessions in
// inline after the body returns rather than via defer.
func (e *Engine) guard(start time.Time, err *error) {
	if v := recover(); v != nil {
		*err = e.finish(start, fmt.Errorf("engine: internal panic: %v\n%s", v, debug.Stack()))
	}
}

// execHook runs the chaos instrumentation point, if any.
func (e *Engine) execHook(verb, client string) {
	if e.cfg.Hooks != nil && e.cfg.Hooks.Exec != nil {
		e.cfg.Hooks.Exec(verb, client)
	}
}

// breakerCheck gates admission on the client's circuit breaker: an open
// circuit fast-fails without consuming a slot; one past its cooldown flips
// to half-open — the next request runs as a probe, but a single further
// degraded result re-opens the circuit (consec resumes at trip-1).
func (e *Engine) breakerCheck(client string) error {
	if client == "" || e.cfg.BreakerTrip < 0 {
		return nil
	}
	now := time.Now()
	e.bmu.Lock()
	defer e.bmu.Unlock()
	b := e.breakers[client]
	if b == nil || b.openUntil.IsZero() {
		return nil
	}
	if now.Before(b.openUntil) {
		e.breakerFastFails.Add(1)
		e.rejected.Add(1)
		return fmt.Errorf("%w (client %q, retry after %s)", ErrCircuitOpen, client, time.Until(b.openUntil).Round(time.Millisecond))
	}
	// Cooldown passed: half-open.
	b.openUntil = time.Time{}
	b.consec = e.cfg.BreakerTrip - 1
	return nil
}

// breakerResult folds one completed request's degradation verdict into the
// client's breaker: a clean result closes (and forgets) it; consecutive
// degraded results up to the trip threshold open it for the cooldown.
func (e *Engine) breakerResult(client string, degraded bool) {
	if client == "" || e.cfg.BreakerTrip < 0 {
		return
	}
	e.bmu.Lock()
	defer e.bmu.Unlock()
	if !degraded {
		delete(e.breakers, client)
		return
	}
	b := e.breakers[client]
	if b == nil {
		b = &breaker{}
		e.breakers[client] = b
	}
	if !b.openUntil.IsZero() {
		return // already open; a straggler's verdict changes nothing
	}
	b.consec++
	if b.consec >= e.cfg.BreakerTrip {
		b.openUntil = time.Now().Add(e.cfg.BreakerCooldown)
		e.breakerTrips.Add(1)
	}
}

// checkout takes the session cached under k, a recycled same-flavor
// session, or a fresh one — in that order. The caller owns the session
// exclusively until checkin.
func (e *Engine) checkout(k sessionKey) *anomaly.DetectSession {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.byKey[k]; ok {
		e.hits.Add(1)
		cs := el.Value.(*cachedSession)
		e.lru.Remove(el)
		delete(e.byKey, k)
		return cs.s
	}
	e.misses.Add(1)
	fl := sessionFlavor{model: k.model, record: k.record}
	if free := e.free[fl]; len(free) > 0 {
		s := free[len(free)-1]
		free[len(free)-1] = nil
		e.free[fl] = free[:len(free)-1]
		return s
	}
	s := anomaly.NewSession(k.model)
	if k.record {
		s.RecordWitnesses()
	}
	return s
}

// checkin returns a session to the cache under k, evicting from the LRU
// tail past capacity. If a concurrent request for the same key returned
// first, the cached copy stays and this one is recycled — last writer
// yields, so the cache never holds two sessions for one key.
func (e *Engine) checkin(k sessionKey, s *anomaly.DetectSession) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fl := sessionFlavor{model: k.model, record: k.record}
	if _, ok := e.byKey[k]; ok {
		e.recycle(fl, s)
		return
	}
	e.byKey[k] = e.lru.PushFront(&cachedSession{key: k, s: s})
	for e.lru.Len() > e.cfg.Sessions {
		el := e.lru.Back()
		cs := el.Value.(*cachedSession)
		e.lru.Remove(el)
		delete(e.byKey, cs.key)
		e.evictions.Add(1)
		e.recycle(sessionFlavor{model: cs.key.model, record: cs.key.record}, cs.s)
	}
}

// recycle resets a session (dropping caches, keeping capacity) and parks it
// on its flavor's bounded freelist. Callers hold e.mu.
func (e *Engine) recycle(fl sessionFlavor, s *anomaly.DetectSession) {
	s.Reset()
	if len(e.free[fl]) < maxFree {
		e.free[fl] = append(e.free[fl], s)
	}
}

// Parse parses and semantically checks DSL source. It is pure CPU-light
// work and bypasses admission.
func (e *Engine) Parse(src string) (*ast.Program, error) {
	return core.LoadProgram(src)
}

// Analyze runs the static anomaly oracle under model. With a Client option
// the detection runs through that client's cached session, so re-analyzing
// related programs only re-solves what changed.
func (e *Engine) Analyze(ctx context.Context, prog *ast.Program, model anomaly.Model, opts ...repair.Option) (rep *anomaly.Report, err error) {
	o := repair.BuildOptions(opts...)
	if err := e.breakerCheck(o.Client); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	start := time.Now()
	defer e.guard(start, &err)
	e.execHook("analyze", o.Client)
	if o.Client == "" || !o.Incremental {
		rep, derr := anomaly.DetectBudgeted(ctx, prog, model, o.SolveBudget)
		e.noteReport(o.Client, rep, derr)
		return rep, e.finish(start, derr)
	}
	k := sessionKey{client: o.Client, model: model, record: o.Certify}
	s := e.checkout(k)
	// Request option first, then the engine-wide default; zero resolves to
	// repair.DefaultParallelism (mirrors repair.Options.Parallelism).
	par := o.Parallelism
	if par == 0 {
		par = e.cfg.DetectParallelism
	}
	s.SetParallelism(repair.ResolveParallelism(par))
	s.SetPortfolio(o.Portfolio)
	s.SetSolveBudget(o.SolveBudget)
	rep, derr := s.DetectContext(ctx, prog)
	e.checkin(k, s)
	e.noteReport(o.Client, rep, derr)
	return rep, e.finish(start, derr)
}

// noteReport folds a detection verdict into the degradation counters and
// the client's breaker.
func (e *Engine) noteReport(client string, rep *anomaly.Report, err error) {
	degraded := err == nil && rep != nil && rep.Degraded
	if degraded {
		e.degraded.Add(1)
		e.exhaustions.Add(int64(rep.Exhausted))
	}
	if err == nil {
		e.breakerResult(client, degraded)
	}
}

// noteResult is noteReport's twin for full repair results.
func (e *Engine) noteResult(client string, res *repair.Result, err error) {
	degraded := err == nil && res != nil && res.Degraded
	if degraded {
		e.degraded.Add(1)
		e.exhaustions.Add(int64(res.Exhausted))
	}
	if err == nil {
		e.breakerResult(client, degraded)
	}
}

// Repair runs the full repair pipeline under model. With a Client option
// the pipeline's detection passes run through that client's cached session.
func (e *Engine) Repair(ctx context.Context, prog *ast.Program, model anomaly.Model, opts ...repair.Option) (res *repair.Result, err error) {
	o := repair.BuildOptions(opts...)
	if err := e.breakerCheck(o.Client); err != nil {
		return nil, err
	}
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	start := time.Now()
	defer e.guard(start, &err)
	e.execHook("repair", o.Client)
	// A request deadline with no explicit stage split gets the default one,
	// so a single slow stage degrades softly instead of eating the whole
	// allowance and erroring at the end.
	if o.Stages == (repair.StageDeadlines{}) {
		if dl, ok := ctx.Deadline(); ok {
			o.Stages = repair.Split(time.Until(dl))
		}
	}
	// Engine-wide detection parallelism applies when the request left the
	// knob unset; repair.RunWith resolves the final zero to the default.
	if o.Parallelism == 0 {
		o.Parallelism = e.cfg.DetectParallelism
	}
	var k sessionKey
	var s *anomaly.DetectSession
	if o.Client != "" && o.Incremental && o.Session == nil {
		k = sessionKey{client: o.Client, model: model, record: o.Certify}
		s = e.checkout(k)
		o.Session = s
	}
	res, rerr := repair.RunWith(ctx, prog, model, o)
	if s != nil {
		// Checked in only on a normal return: a panicking pipeline would
		// leave the session's caches mid-mutation.
		e.checkin(k, s)
	}
	e.noteResult(o.Client, res, rerr)
	return res, e.finish(start, rerr)
}

// Certify detects with witness recording and replays every reported pair
// as an executable certificate (internal/replay).
func (e *Engine) Certify(ctx context.Context, prog *ast.Program, model anomaly.Model) (cert *replay.Certificate, rep *anomaly.Report, err error) {
	if err := e.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer e.release()
	start := time.Now()
	defer e.guard(start, &err)
	e.execHook("certify", "")
	cert, rep, cerr := replay.CertifyModelContext(ctx, prog, model)
	return cert, rep, e.finish(start, cerr)
}

// Simulate runs one cluster deployment configuration. The simulator is
// ops/virtual-time bounded and does not poll the context mid-run; the
// context gates admission and is checked once more before the run starts.
func (e *Engine) Simulate(ctx context.Context, cfg cluster.Config) (res cluster.Result, err error) {
	if err := e.acquire(ctx); err != nil {
		return cluster.Result{}, err
	}
	defer e.release()
	start := time.Now()
	defer e.guard(start, &err)
	e.execHook("simulate", "")
	if err := ctx.Err(); err != nil {
		return cluster.Result{}, e.finish(start, err)
	}
	res, serr := cluster.Run(cfg)
	return res, e.finish(start, serr)
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// InFlight / Queued are instantaneous occupancy gauges.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Completed counts requests that ran to an answer (including
	// application errors); Canceled counts context aborts — at admission or
	// mid-solve; Rejected counts every fast-failed admission (queue-full,
	// shed, and breaker rejections included).
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Overload-control counters: Shed counts waiters evicted past the
	// queue-wait ceiling; Degraded counts requests answered partially after
	// budget/deadline exhaustion; BudgetExhaustions totals the individual
	// exhausted solves behind them; the Breaker* trio tracks the per-client
	// circuit breakers (BreakerOpen is an instantaneous gauge).
	Shed              int64 `json:"shed"`
	Degraded          int64 `json:"degraded"`
	BudgetExhaustions int64 `json:"budget_exhaustions"`
	BreakerTrips      int64 `json:"breaker_trips"`
	BreakerFastFails  int64 `json:"breaker_fast_fails"`
	BreakerOpen       int   `json:"breaker_open"`
	// ServiceTimeEwmaMs is the smoothed per-request service time feeding
	// Retry-After. Informational: timing-dependent, so never drift-compared.
	ServiceTimeEwmaMs float64 `json:"service_time_ewma_ms"`
	// Session cache counters.
	SessionHits      int64 `json:"session_hits"`
	SessionMisses    int64 `json:"session_misses"`
	SessionEvictions int64 `json:"session_evictions"`
	CachedSessions   int   `json:"cached_sessions"`
}

// SessionHitRate is the fraction of session checkouts served from the LRU.
func (s Stats) SessionHitRate() float64 {
	total := s.SessionHits + s.SessionMisses
	if total == 0 {
		return 0
	}
	return float64(s.SessionHits) / float64(total)
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	cached := e.lru.Len()
	e.mu.Unlock()
	open := 0
	now := time.Now()
	e.bmu.Lock()
	for _, b := range e.breakers {
		if !b.openUntil.IsZero() && now.Before(b.openUntil) {
			open++
		}
	}
	e.bmu.Unlock()
	return Stats{
		Workers:           e.cfg.Workers,
		QueueDepth:        e.cfg.QueueDepth,
		InFlight:          len(e.sem),
		Queued:            int(e.queued.Load()),
		Completed:         e.completed.Load(),
		Canceled:          e.canceled.Load(),
		Rejected:          e.rejected.Load(),
		Shed:              e.shed.Load(),
		Degraded:          e.degraded.Load(),
		BudgetExhaustions: e.exhaustions.Load(),
		BreakerTrips:      e.breakerTrips.Load(),
		BreakerFastFails:  e.breakerFastFails.Load(),
		BreakerOpen:       open,
		ServiceTimeEwmaMs: float64(e.ewmaNs.Load()) / 1e6,
		SessionHits:       e.hits.Load(),
		SessionMisses:     e.misses.Load(),
		SessionEvictions:  e.evictions.Load(),
		CachedSessions:    cached,
	}
}
