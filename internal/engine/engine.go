// Package engine hosts the long-lived Atropos engine behind the public API
// and the atroposd service: one object owning the bounded worker pool,
// per-client incremental detection sessions, and the pooled encoder/solver
// arenas that every request draws from. The CLI, the daemon, and the tests
// all share this entry point, so "run one repair" and "serve a million
// repairs" differ only in who calls it.
//
// Concurrency model (DESIGN.md §12):
//
//   - Admission: every request acquires one of Workers slots; up to
//     QueueDepth further requests wait for a slot, and anything beyond that
//     is rejected immediately with ErrOverloaded (the service layer maps it
//     to HTTP 429 + Retry-After). A waiting request that is cancelled
//     leaves the queue without consuming a slot.
//   - Sessions: each (client, model, recording) key checks a DetectSession
//     out of an LRU; a session is owned exclusively while checked out
//     (DetectSession serializes its own Detect calls by contract), so a
//     concurrent request for the same key simply gets a fresh session, and
//     whichever finishes last is recycled instead of cached twice. Evicted
//     and surplus sessions are Reset() — dropping their caches but keeping
//     their allocated map/slice capacity — and parked on a freelist.
//   - Cancellation: the request context threads through repair → anomaly →
//     sat, where the CDCL solvers poll it; a disconnected client frees its
//     worker slot mid-solve instead of leaking it.
package engine

import (
	"container/list"
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/cluster"
	"atropos/internal/core"
	"atropos/internal/repair"
	"atropos/internal/replay"
)

// ErrOverloaded reports an admission rejection: every worker slot is busy
// and the wait queue is full. Callers should back off and retry.
var ErrOverloaded = errors.New("engine: overloaded (worker queue full)")

// Config sizes an Engine.
type Config struct {
	// Workers bounds concurrently executing requests; <= 0 selects
	// GOMAXPROCS.
	Workers int
	// QueueDepth bounds requests waiting for a worker slot beyond the ones
	// executing; <= 0 selects 4×Workers.
	QueueDepth int
	// Sessions caps the per-(client, model, recording) DetectSession LRU;
	// <= 0 selects 64.
	Sessions int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 4 * c.Workers
	}
	if c.Sessions <= 0 {
		c.Sessions = 64
	}
	return c
}

// sessionKey identifies a cached session: witness-recording sessions are
// kept apart from plain ones because results cached without recording carry
// no schedules (anomaly.DetectSession.RecordWitnesses).
type sessionKey struct {
	client string
	model  anomaly.Model
	record bool
}

type sessionFlavor struct {
	model  anomaly.Model
	record bool
}

type cachedSession struct {
	key sessionKey
	s   *anomaly.DetectSession
}

// maxFree bounds each flavor's freelist of reset sessions.
const maxFree = 8

// Engine is the long-lived request executor. Construct with New; an Engine
// is safe for concurrent use.
type Engine struct {
	cfg Config

	sem    chan struct{} // worker slots
	queued atomic.Int64  // requests waiting for a slot

	mu    sync.Mutex
	lru   *list.List // of *cachedSession; front = most recently returned
	byKey map[sessionKey]*list.Element
	free  map[sessionFlavor][]*anomaly.DetectSession

	completed atomic.Int64
	canceled  atomic.Int64
	rejected  atomic.Int64
	hits      atomic.Int64
	misses    atomic.Int64
	evictions atomic.Int64
}

// New builds an engine from cfg (zero value: GOMAXPROCS workers, 4×queue,
// 64 sessions).
func New(cfg Config) *Engine {
	cfg = cfg.withDefaults()
	return &Engine{
		cfg:   cfg,
		sem:   make(chan struct{}, cfg.Workers),
		lru:   list.New(),
		byKey: map[sessionKey]*list.Element{},
		free:  map[sessionFlavor][]*anomaly.DetectSession{},
	}
}

// Config returns the engine's resolved configuration.
func (e *Engine) Config() Config { return e.cfg }

// acquire admits one request: it takes a worker slot, waiting in the
// bounded queue if none is free. It returns ErrOverloaded when the queue is
// full and ctx.Err() if the caller is cancelled while waiting.
func (e *Engine) acquire(ctx context.Context) error {
	select {
	case e.sem <- struct{}{}:
		return nil
	default:
	}
	// No free slot: join the wait queue if it has room. The CAS loop keeps
	// the queue bound exact under concurrent arrivals.
	for {
		n := e.queued.Load()
		if n >= int64(e.cfg.QueueDepth) {
			e.rejected.Add(1)
			return ErrOverloaded
		}
		if e.queued.CompareAndSwap(n, n+1) {
			break
		}
	}
	defer e.queued.Add(-1)
	select {
	case e.sem <- struct{}{}:
		return nil
	case <-ctx.Done():
		e.canceled.Add(1)
		return ctx.Err()
	}
}

func (e *Engine) release() { <-e.sem }

// finish folds one executed request into the counters and passes its error
// through.
func (e *Engine) finish(err error) error {
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		e.canceled.Add(1)
	} else {
		e.completed.Add(1)
	}
	return err
}

// guard converts a panic inside one request's body into an error return,
// so a single poisoned request cannot take down the daemon or leak its
// worker slot (release is deferred after guard, so it still runs). The
// panicking request's session is deliberately NOT checked back in — its
// caches may be mid-mutation — which is why the verbs check sessions in
// inline after the body returns rather than via defer.
func (e *Engine) guard(err *error) {
	if v := recover(); v != nil {
		*err = e.finish(fmt.Errorf("engine: internal panic: %v\n%s", v, debug.Stack()))
	}
}

// checkout takes the session cached under k, a recycled same-flavor
// session, or a fresh one — in that order. The caller owns the session
// exclusively until checkin.
func (e *Engine) checkout(k sessionKey) *anomaly.DetectSession {
	e.mu.Lock()
	defer e.mu.Unlock()
	if el, ok := e.byKey[k]; ok {
		e.hits.Add(1)
		cs := el.Value.(*cachedSession)
		e.lru.Remove(el)
		delete(e.byKey, k)
		return cs.s
	}
	e.misses.Add(1)
	fl := sessionFlavor{model: k.model, record: k.record}
	if free := e.free[fl]; len(free) > 0 {
		s := free[len(free)-1]
		free[len(free)-1] = nil
		e.free[fl] = free[:len(free)-1]
		return s
	}
	s := anomaly.NewSession(k.model)
	if k.record {
		s.RecordWitnesses()
	}
	return s
}

// checkin returns a session to the cache under k, evicting from the LRU
// tail past capacity. If a concurrent request for the same key returned
// first, the cached copy stays and this one is recycled — last writer
// yields, so the cache never holds two sessions for one key.
func (e *Engine) checkin(k sessionKey, s *anomaly.DetectSession) {
	e.mu.Lock()
	defer e.mu.Unlock()
	fl := sessionFlavor{model: k.model, record: k.record}
	if _, ok := e.byKey[k]; ok {
		e.recycle(fl, s)
		return
	}
	e.byKey[k] = e.lru.PushFront(&cachedSession{key: k, s: s})
	for e.lru.Len() > e.cfg.Sessions {
		el := e.lru.Back()
		cs := el.Value.(*cachedSession)
		e.lru.Remove(el)
		delete(e.byKey, cs.key)
		e.evictions.Add(1)
		e.recycle(sessionFlavor{model: cs.key.model, record: cs.key.record}, cs.s)
	}
}

// recycle resets a session (dropping caches, keeping capacity) and parks it
// on its flavor's bounded freelist. Callers hold e.mu.
func (e *Engine) recycle(fl sessionFlavor, s *anomaly.DetectSession) {
	s.Reset()
	if len(e.free[fl]) < maxFree {
		e.free[fl] = append(e.free[fl], s)
	}
}

// Parse parses and semantically checks DSL source. It is pure CPU-light
// work and bypasses admission.
func (e *Engine) Parse(src string) (*ast.Program, error) {
	return core.LoadProgram(src)
}

// Analyze runs the static anomaly oracle under model. With a Client option
// the detection runs through that client's cached session, so re-analyzing
// related programs only re-solves what changed.
func (e *Engine) Analyze(ctx context.Context, prog *ast.Program, model anomaly.Model, opts ...repair.Option) (rep *anomaly.Report, err error) {
	o := repair.BuildOptions(opts...)
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	defer e.guard(&err)
	if o.Client == "" || !o.Incremental {
		rep, err := anomaly.DetectContext(ctx, prog, model)
		return rep, e.finish(err)
	}
	k := sessionKey{client: o.Client, model: model, record: o.Certify}
	s := e.checkout(k)
	// Sequential detection is the safe default — the engine already fans
	// requests out across workers (mirrors repair.Options.Parallelism).
	par := o.Parallelism
	if par <= 1 {
		par = 1
	}
	s.SetParallelism(par)
	rep, derr := s.DetectContext(ctx, prog)
	e.checkin(k, s)
	return rep, e.finish(derr)
}

// Repair runs the full repair pipeline under model. With a Client option
// the pipeline's detection passes run through that client's cached session.
func (e *Engine) Repair(ctx context.Context, prog *ast.Program, model anomaly.Model, opts ...repair.Option) (res *repair.Result, err error) {
	o := repair.BuildOptions(opts...)
	if err := e.acquire(ctx); err != nil {
		return nil, err
	}
	defer e.release()
	defer e.guard(&err)
	var k sessionKey
	var s *anomaly.DetectSession
	if o.Client != "" && o.Incremental && o.Session == nil {
		k = sessionKey{client: o.Client, model: model, record: o.Certify}
		s = e.checkout(k)
		o.Session = s
	}
	res, rerr := repair.RunWith(ctx, prog, model, o)
	if s != nil {
		// Checked in only on a normal return: a panicking pipeline would
		// leave the session's caches mid-mutation.
		e.checkin(k, s)
	}
	return res, e.finish(rerr)
}

// Certify detects with witness recording and replays every reported pair
// as an executable certificate (internal/replay).
func (e *Engine) Certify(ctx context.Context, prog *ast.Program, model anomaly.Model) (cert *replay.Certificate, rep *anomaly.Report, err error) {
	if err := e.acquire(ctx); err != nil {
		return nil, nil, err
	}
	defer e.release()
	defer e.guard(&err)
	cert, rep, cerr := replay.CertifyModelContext(ctx, prog, model)
	return cert, rep, e.finish(cerr)
}

// Simulate runs one cluster deployment configuration. The simulator is
// ops/virtual-time bounded and does not poll the context mid-run; the
// context gates admission and is checked once more before the run starts.
func (e *Engine) Simulate(ctx context.Context, cfg cluster.Config) (res cluster.Result, err error) {
	if err := e.acquire(ctx); err != nil {
		return cluster.Result{}, err
	}
	defer e.release()
	defer e.guard(&err)
	if err := ctx.Err(); err != nil {
		return cluster.Result{}, e.finish(err)
	}
	res, serr := cluster.Run(cfg)
	return res, e.finish(serr)
}

// Stats is a point-in-time snapshot of the engine's counters.
type Stats struct {
	Workers    int `json:"workers"`
	QueueDepth int `json:"queue_depth"`
	// InFlight / Queued are instantaneous occupancy gauges.
	InFlight int `json:"in_flight"`
	Queued   int `json:"queued"`
	// Completed counts requests that ran to an answer (including
	// application errors); Canceled counts context aborts — at admission or
	// mid-solve; Rejected counts ErrOverloaded admissions.
	Completed int64 `json:"completed"`
	Canceled  int64 `json:"canceled"`
	Rejected  int64 `json:"rejected"`
	// Session cache counters.
	SessionHits      int64 `json:"session_hits"`
	SessionMisses    int64 `json:"session_misses"`
	SessionEvictions int64 `json:"session_evictions"`
	CachedSessions   int   `json:"cached_sessions"`
}

// SessionHitRate is the fraction of session checkouts served from the LRU.
func (s Stats) SessionHitRate() float64 {
	total := s.SessionHits + s.SessionMisses
	if total == 0 {
		return 0
	}
	return float64(s.SessionHits) / float64(total)
}

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	cached := e.lru.Len()
	e.mu.Unlock()
	return Stats{
		Workers:          e.cfg.Workers,
		QueueDepth:       e.cfg.QueueDepth,
		InFlight:         len(e.sem),
		Queued:           int(e.queued.Load()),
		Completed:        e.completed.Load(),
		Canceled:         e.canceled.Load(),
		Rejected:         e.rejected.Load(),
		SessionHits:      e.hits.Load(),
		SessionMisses:    e.misses.Load(),
		SessionEvictions: e.evictions.Load(),
		CachedSessions:   cached,
	}
}
