package engine

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/benchmarks"
	"atropos/internal/cluster"
	"atropos/internal/repair"
)

const rmwSrc = `
table T { id: int key, n: int, }
txn bump(k: int, amt: int) {
  x := select n from T where id = k;
  update T set n = x.n + amt where id = k;
}
txn read(k: int) {
  x := select n from T where id = k;
  return x.n;
}
`

func loadRMW(t *testing.T) *ast.Program {
	t.Helper()
	e := New(Config{})
	prog, err := e.Parse(rmwSrc)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// waitQueued spins until the engine's wait queue holds n requests.
func waitQueued(t *testing.T, e *Engine, n int64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for e.queued.Load() != n {
		if time.Now().After(deadline) {
			t.Fatalf("queued = %d, want %d", e.queued.Load(), n)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestAdmissionBackpressure pins the admission contract exactly: with one
// worker slot taken and one request waiting, the next arrival is rejected
// with ErrOverloaded instead of queueing unboundedly, and releasing the
// slot un-blocks the waiter.
func TestAdmissionBackpressure(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	if err := e.acquire(context.Background()); err != nil {
		t.Fatalf("first acquire: %v", err)
	}
	waiter := make(chan error, 1)
	go func() { waiter <- e.acquire(context.Background()) }()
	waitQueued(t, e, 1)
	if err := e.acquire(context.Background()); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("acquire with full queue = %v, want ErrOverloaded", err)
	}
	e.release()
	if err := <-waiter; err != nil {
		t.Fatalf("queued acquire after release: %v", err)
	}
	e.release()
	st := e.Stats()
	if st.Rejected != 1 || st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("stats after drain: %+v", st)
	}
}

// TestQueuedAcquireCancel: cancelling a request waiting for a worker slot
// frees its queue position without consuming a slot.
func TestQueuedAcquireCancel(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 2})
	if err := e.acquire(context.Background()); err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	waiter := make(chan error, 1)
	go func() { waiter <- e.acquire(ctx) }()
	waitQueued(t, e, 1)
	cancel()
	if err := <-waiter; !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled queued acquire = %v, want context.Canceled", err)
	}
	waitQueued(t, e, 0)
	st := e.Stats()
	if st.Canceled != 1 || st.InFlight != 1 {
		t.Fatalf("stats = %+v, want 1 canceled, 1 in flight", st)
	}
	e.release()
}

// TestCancelAbortsMidSolve drives the full path the daemon relies on: a
// context cancelled while the detector is inside SAT solves makes the
// request return promptly with the context's error, and the worker slot
// comes back (a follow-up request on the same single-worker engine runs).
func TestCancelAbortsMidSolve(t *testing.T) {
	e := New(Config{Workers: 1, QueueDepth: 1})
	prog, err := benchmarks.TPCC.Program()
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := e.Analyze(ctx, prog, anomaly.EC)
		done <- err
	}()
	// TPC-C analysis runs for tens of milliseconds of SAT work; cancel
	// while it is in flight.
	time.Sleep(5 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("cancelled Analyze = %v, want context.Canceled", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("cancelled Analyze did not return")
	}
	// The slot must be free again: a fresh request on the only worker
	// completes without queueing.
	rep, err := e.Analyze(context.Background(), loadRMW(t), anomaly.EC)
	if err != nil {
		t.Fatalf("Analyze after cancellation: %v", err)
	}
	if rep.Count() == 0 {
		t.Fatal("no anomalies in the RMW program")
	}
	st := e.Stats()
	if st.Canceled != 1 || st.Completed != 1 || st.InFlight != 0 {
		t.Fatalf("stats = %+v, want 1 canceled + 1 completed, none in flight", st)
	}
}

// TestPreCancelledContext: a context dead on arrival aborts before any
// solving, deterministically.
func TestPreCancelledContext(t *testing.T) {
	e := New(Config{Workers: 1})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Analyze(ctx, loadRMW(t), anomaly.EC); !errors.Is(err, context.Canceled) {
		t.Fatalf("Analyze on cancelled ctx = %v", err)
	}
	if _, _, err := e.Certify(ctx, loadRMW(t), anomaly.EC); !errors.Is(err, context.Canceled) {
		t.Fatalf("Certify on cancelled ctx = %v", err)
	}
	if st := e.Stats(); st.InFlight != 0 {
		t.Fatalf("in flight = %d after aborted requests", st.InFlight)
	}
}

// TestSessionLRU pins the session cache: per-client reuse hits, capacity
// eviction recycles the oldest client, and recording sessions never mix
// with plain ones.
func TestSessionLRU(t *testing.T) {
	e := New(Config{Workers: 1, Sessions: 2})
	prog := loadRMW(t)
	ctx := context.Background()
	analyze := func(client string) {
		t.Helper()
		if _, err := e.Analyze(ctx, prog, anomaly.EC, repair.Client(client)); err != nil {
			t.Fatal(err)
		}
	}
	analyze("a")
	analyze("b")
	analyze("a") // hit
	st := e.Stats()
	if st.SessionHits != 1 || st.SessionMisses != 2 {
		t.Fatalf("hits/misses = %d/%d, want 1/2", st.SessionHits, st.SessionMisses)
	}
	analyze("c") // evicts b (LRU tail)
	st = e.Stats()
	if st.SessionEvictions != 1 || st.CachedSessions != 2 {
		t.Fatalf("evictions = %d cached = %d, want 1 and 2", st.SessionEvictions, st.CachedSessions)
	}
	analyze("b") // must miss: b was evicted
	if st = e.Stats(); st.SessionMisses != 4 {
		t.Fatalf("misses = %d, want 4 (b evicted)", st.SessionMisses)
	}
	// A certifying request for client "a" needs a recording session — a
	// different cache key, so it must not reuse a's plain session.
	if _, err := e.Repair(ctx, prog, anomaly.EC, repair.Client("a"), repair.Certify(true)); err != nil {
		t.Fatal(err)
	}
	if st = e.Stats(); st.SessionMisses != 5 {
		t.Fatalf("misses = %d, want 5 (recording flavor is a distinct key)", st.SessionMisses)
	}
}

// TestSessionReuseKeepsReports: repeated Analyze through one client's
// cached session reports exactly what a fresh detector does.
func TestSessionReuseKeepsReports(t *testing.T) {
	e := New(Config{Workers: 1})
	prog := loadRMW(t)
	ctx := context.Background()
	fresh, err := anomaly.Detect(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		rep, err := e.Analyze(ctx, prog, anomaly.EC, repair.Client("steady"))
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Pairs) != len(fresh.Pairs) {
			t.Fatalf("round %d: %d pairs via session, %d fresh", i, len(rep.Pairs), len(fresh.Pairs))
		}
		for j, p := range rep.Pairs {
			if p.String() != fresh.Pairs[j].String() {
				t.Fatalf("round %d pair %d: %s != %s", i, j, p, fresh.Pairs[j])
			}
		}
	}
}

// TestConcurrentMixedRequests hammers one engine with 16 concurrent clients
// running mixed request kinds (the acceptance bar for the race detector):
// everything must complete, nothing may leak a worker slot or a queue
// position.
func TestConcurrentMixedRequests(t *testing.T) {
	e := New(Config{Workers: 4, QueueDepth: 64, Sessions: 8})
	prog := loadRMW(t)
	bank, err := benchmarks.SIBench.Program()
	if err != nil {
		t.Fatal(err)
	}
	scale := benchmarks.Scale{Records: 10}
	ctx := context.Background()
	const goroutines = 16
	var wg sync.WaitGroup
	errs := make(chan error, goroutines)
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			client := []string{"alpha", "beta", "gamma", "delta"}[i%4]
			var err error
			switch i % 4 {
			case 0:
				_, err = e.Analyze(ctx, prog, anomaly.EC, repair.Client(client))
			case 1:
				_, err = e.Repair(ctx, prog, anomaly.EC, repair.Client(client))
			case 2:
				_, _, err = e.Certify(ctx, bank, anomaly.EC)
			default:
				_, err = e.Simulate(ctx, cluster.Config{
					Program:  bank,
					Mix:      benchmarks.SIBench.Mix,
					Scale:    scale,
					Rows:     benchmarks.SIBench.Rows(scale),
					Topology: cluster.VACluster,
					Clients:  4,
					Duration: time.Second,
					Seed:     int64(i),
					Mode:     cluster.ModeEC,
				})
			}
			if err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Errorf("request failed: %v", err)
	}
	st := e.Stats()
	if st.Completed != goroutines {
		t.Fatalf("completed = %d, want %d", st.Completed, goroutines)
	}
	if st.InFlight != 0 || st.Queued != 0 {
		t.Fatalf("leaked admission state: %+v", st)
	}
}

// TestCheckinLastWriterYields: two concurrent checkouts of one key produce
// two sessions; the second checkin must recycle instead of caching a
// duplicate.
func TestCheckinLastWriterYields(t *testing.T) {
	e := New(Config{Workers: 2, Sessions: 4})
	k := sessionKey{client: "dup", model: anomaly.EC}
	s1 := e.checkout(k)
	s2 := e.checkout(k)
	if s1 == s2 {
		t.Fatal("concurrent checkouts shared a session")
	}
	e.checkin(k, s1)
	e.checkin(k, s2)
	if st := e.Stats(); st.CachedSessions != 1 {
		t.Fatalf("cached = %d after double checkin, want 1", st.CachedSessions)
	}
	// The yielded copy lands on the freelist and is reused for a fresh key.
	fl := sessionFlavor{model: anomaly.EC}
	e.mu.Lock()
	freeLen := len(e.free[fl])
	e.mu.Unlock()
	if freeLen != 1 {
		t.Fatalf("freelist = %d, want the yielded session parked", freeLen)
	}
	s3 := e.checkout(sessionKey{client: "other", model: anomaly.EC})
	if s3 != s2 {
		t.Fatal("freelist session not reused")
	}
}

// TestPanicIsolation: a request whose body panics must surface as an error
// return, not a daemon crash — and must free its worker slot so the engine
// keeps serving (DESIGN.md §12's robustness contract).
func TestPanicIsolation(t *testing.T) {
	e := New(Config{Workers: 2})
	_, err := e.Simulate(context.Background(), cluster.Config{Clients: 1}) // nil Program panics inside the simulator
	if err == nil || !strings.Contains(err.Error(), "panic") {
		t.Fatalf("Simulate with nil program: err = %v, want an internal-panic error", err)
	}
	if st := e.Stats(); st.InFlight != 0 {
		t.Fatalf("in_flight = %d after a panicking request, want 0", st.InFlight)
	}
	// The slot is free and the engine still answers.
	prog := loadRMW(t)
	rep, err := e.Analyze(context.Background(), prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Count() == 0 {
		t.Error("post-panic analyze found no anomalies; engine state corrupted?")
	}
}
