package repair

import (
	"context"
	"reflect"
	"testing"
	"time"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/sat"
)

// TestRepairHugeBudgetEquivalent: a solve budget far above what courseware
// needs must leave every observable field of the repair — program text,
// pair lists, steps, deployment set, query counters — identical to the
// unbudgeted run's.
func TestRepairHugeBudgetEquivalent(t *testing.T) {
	prog := mustProg(t, courseware)
	want, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	huge := sat.Budget{Conflicts: 1 << 40, Propagations: 1 << 40, ArenaLits: 1 << 40}
	got, err := RepairWith(prog, anomaly.EC, Options{Incremental: true, SolveBudget: huge})
	if err != nil {
		t.Fatal(err)
	}
	if got.Degraded || got.Unknown != 0 || got.Exhausted != 0 {
		t.Fatalf("huge-budget repair degraded: degraded=%v unknown=%d exhausted=%d",
			got.Degraded, got.Unknown, got.Exhausted)
	}
	if g, w := ast.Format(got.Program), ast.Format(want.Program); g != w {
		t.Fatalf("huge-budget repair produced a different program:\n%s\n-- want --\n%s", g, w)
	}
	if !reflect.DeepEqual(got.Initial, want.Initial) || !reflect.DeepEqual(got.Remaining, want.Remaining) {
		t.Fatalf("huge-budget pair lists differ:\ngot  %v / %v\nwant %v / %v",
			got.Initial, got.Remaining, want.Initial, want.Remaining)
	}
	if !reflect.DeepEqual(got.Steps, want.Steps) {
		t.Fatalf("huge-budget steps differ:\ngot  %v\nwant %v", got.Steps, want.Steps)
	}
	if !reflect.DeepEqual(got.SerializableTxns, want.SerializableTxns) {
		t.Fatalf("huge-budget deployment set differs: %v, want %v", got.SerializableTxns, want.SerializableTxns)
	}
	if got.Stats != want.Stats {
		t.Fatalf("huge-budget stats differ: %+v, want %+v", got.Stats, want.Stats)
	}
}

// TestRepairStarvedBudgetDegrades: under a starvation budget the pipeline
// must return a sound partial result — degraded with the exhaustion
// counted, a valid (possibly untouched) program, reported pairs a subset
// of the full run's, every remaining anomalous transaction conservatively
// in the deployment set — and do so deterministically.
func TestRepairStarvedBudgetDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	full, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	starved := Options{Incremental: true, SolveBudget: sat.Budget{Propagations: 1}}
	got, err := RepairWith(prog, anomaly.EC, starved)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Degraded || got.Exhausted == 0 || got.Unknown == 0 {
		t.Fatalf("starved repair not degraded: degraded=%v unknown=%d exhausted=%d",
			got.Degraded, got.Unknown, got.Exhausted)
	}
	if len(got.DegradedStages) != 0 {
		t.Fatalf("budget exhaustion named stages %v; stages are deadline degradations", got.DegradedStages)
	}
	if got.Program == nil {
		t.Fatal("degraded repair returned no program")
	}
	inFull := map[string]bool{}
	for _, p := range full.Initial {
		inFull[p.String()] = true
	}
	for _, p := range got.Initial {
		if !inFull[p.String()] {
			t.Fatalf("starved repair invented pair %s absent from the full run", p)
		}
	}
	txns := map[string]bool{}
	for _, n := range got.SerializableTxns {
		txns[n] = true
	}
	for _, p := range got.Remaining {
		if !txns[p.Txn] {
			t.Fatalf("remaining pair %s's transaction missing from the deployment set %v", p, got.SerializableTxns)
		}
	}
	again, err := RepairWith(prog, anomaly.EC, starved)
	if err != nil {
		t.Fatal(err)
	}
	if ast.Format(got.Program) != ast.Format(again.Program) ||
		!reflect.DeepEqual(got.Initial, again.Initial) ||
		!reflect.DeepEqual(got.Remaining, again.Remaining) ||
		got.Unknown != again.Unknown || got.Exhausted != again.Exhausted {
		t.Fatalf("starved repair nondeterministic:\nrun1 %+v\nrun2 %+v", got, again)
	}
}

// TestSplitProportions pins the default deadline carve-up: 55% detect, 25%
// repair, 20% certify, and the zero/negative total mapping to no stage
// bounds at all.
func TestSplitProportions(t *testing.T) {
	got := Split(time.Second)
	want := StageDeadlines{Detect: 550 * time.Millisecond, Repair: 250 * time.Millisecond, Certify: 200 * time.Millisecond}
	if got != want {
		t.Fatalf("Split(1s) = %+v, want %+v", got, want)
	}
	if (Split(0) != StageDeadlines{}) || (Split(-time.Second) != StageDeadlines{}) {
		t.Fatal("Split of a non-positive total must impose no stage bounds")
	}
}

// TestDetectStageExpiredDegrades: an already-spent detect allowance makes
// the run degrade to the sound catch-all — untouched program, every
// transaction serialized — instead of erroring.
func TestDetectStageExpiredDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	res, err := RunWith(context.Background(), prog, anomaly.EC,
		Options{Incremental: true, Stages: StageDeadlines{Detect: time.Nanosecond}})
	if err != nil {
		t.Fatalf("expired detect stage must degrade, not fail: %v", err)
	}
	if !res.Degraded || len(res.DegradedStages) == 0 || res.DegradedStages[0] != "detect" {
		t.Fatalf("degraded stages = %v, want [detect]", res.DegradedStages)
	}
	if ast.Format(res.Program) != ast.Format(prog) {
		t.Fatal("detect-starved repair modified the program")
	}
	if len(res.SerializableTxns) != len(prog.Txns) {
		t.Fatalf("conservative deployment set has %d transactions, want all %d",
			len(res.SerializableTxns), len(prog.Txns))
	}
}

// TestRepairStageExpiredDegrades: an already-spent repair allowance skips
// the pair loop — nothing is refactored, the anomalous transactions are
// serialized instead — while detection still runs to completion.
func TestRepairStageExpiredDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	full, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if len(full.Initial) == 0 {
		t.Fatal("setup: courseware has no anomalies to skip")
	}
	res, err := RunWith(context.Background(), prog, anomaly.EC,
		Options{Incremental: true, Stages: StageDeadlines{Repair: time.Nanosecond}})
	if err != nil {
		t.Fatalf("expired repair stage must degrade, not fail: %v", err)
	}
	if !res.Degraded || len(res.DegradedStages) != 1 || res.DegradedStages[0] != "repair" {
		t.Fatalf("degraded stages = %v, want [repair]", res.DegradedStages)
	}
	if len(res.Corrs) != 0 {
		t.Fatalf("repair-starved run still applied %d refactorings", len(res.Corrs))
	}
	if len(res.Initial) != len(full.Initial) {
		t.Fatalf("detection under an expired repair stage found %d pairs, full run %d",
			len(res.Initial), len(full.Initial))
	}
	txns := map[string]bool{}
	for _, n := range res.SerializableTxns {
		txns[n] = true
	}
	for _, p := range res.Remaining {
		if !txns[p.Txn] {
			t.Fatalf("unrepaired pair %s's transaction missing from the deployment set %v", p, res.SerializableTxns)
		}
	}
}

// TestCertifyStageExpiredDegrades: a spent certify allowance cuts off
// certificate replay — the repair itself is complete and identical to an
// uncertified run, only the certificate is partial (or absent).
func TestCertifyStageExpiredDegrades(t *testing.T) {
	prog := mustProg(t, courseware)
	plain, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	res, err := RunWith(context.Background(), prog, anomaly.EC,
		Options{Incremental: true, Certify: true, Stages: StageDeadlines{Certify: time.Nanosecond}})
	if err != nil {
		t.Fatalf("expired certify stage must degrade, not fail: %v", err)
	}
	if !res.Degraded || len(res.DegradedStages) != 1 || res.DegradedStages[0] != "certify" {
		t.Fatalf("degraded stages = %v, want [certify]", res.DegradedStages)
	}
	if ast.Format(res.Program) != ast.Format(plain.Program) {
		t.Fatal("certify-starved run changed the repair itself")
	}
	if len(res.Remaining) != len(plain.Remaining) {
		t.Fatalf("certify-starved run left %d pairs, plain run %d", len(res.Remaining), len(plain.Remaining))
	}
}
