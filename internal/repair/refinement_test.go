package repair

import (
	"math/rand"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/benchmarks"
	"atropos/internal/interp"
	"atropos/internal/refactor"
	"atropos/internal/store"
)

// TestRefinementUnderSerialWorkloads is the dynamic counterpart of the
// paper's soundness theorem (Theorem 4.2): for every serializable history
// of the original program there is a corresponding history of the
// refactored program whose final state contains the original's (Σ ⊑_V Σ′)
// and whose transactions return the same values. We validate this over
// randomized serial workloads on the benchmarks the repair changes most.
func TestRefinementUnderSerialWorkloads(t *testing.T) {
	for _, name := range []string{"Courseware", "SmallBank", "SIBench", "Killrchat", "Twitter"} {
		b := benchmarks.ByName(name)
		t.Run(name, func(t *testing.T) {
			checkRefinement(t, b, 3, 60)
		})
	}
}

func checkRefinement(t *testing.T, b *benchmarks.Benchmark, seeds int64, callsPerRun int) {
	t.Helper()
	prog, err := b.Program()
	if err != nil {
		t.Fatal(err)
	}
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	scale := benchmarks.Scale{Records: 12}
	for seed := int64(0); seed < seeds; seed++ {
		// Draw one serial workload.
		rng := rand.New(rand.NewSource(seed*1000 + 7))
		var calls []interp.Call
		for i := 0; i < callsPerRun; i++ {
			m := b.PickTxn(rng)
			calls = append(calls, interp.Call{Txn: m.Txn, Args: m.Args(rng, scale)})
		}

		// Original program, original data.
		origDB := store.NewDB(prog)
		for _, r := range b.Rows(scale) {
			if _, err := origDB.Load(r.Table, r.Row); err != nil {
				t.Fatal(err)
			}
		}
		origResults, err := interp.RunSerial(prog, origDB, calls)
		if err != nil {
			t.Fatalf("seed %d: original run: %v", seed, err)
		}

		// Refactored program, migrated data, same serial schedule.
		freshDB := store.NewDB(prog)
		for _, r := range b.Rows(scale) {
			if _, err := freshDB.Load(r.Table, r.Row); err != nil {
				t.Fatal(err)
			}
		}
		refDB, err := refactor.Migrate(freshDB, prog, res.Program, res.Corrs)
		if err != nil {
			t.Fatalf("seed %d: migrate: %v", seed, err)
		}
		refResults, err := interp.RunSerial(res.Program, refDB, calls)
		if err != nil {
			t.Fatalf("seed %d: refactored run: %v", seed, err)
		}

		// R2: same return values, call by call.
		for i := range calls {
			if !origResults[i].Equal(refResults[i]) {
				t.Fatalf("seed %d: call %d (%s): original returned %s, refactored %s",
					seed, i, calls[i].Txn, origResults[i], refResults[i])
			}
		}

		// Σ ⊑_V Σ′: the original final state is recoverable from the
		// refactored one through the recorded correspondences.
		if err := refactor.Contains(origDB, refDB, prog, res.Program, res.Corrs); err != nil {
			t.Fatalf("seed %d: containment violated: %v", seed, err)
		}
	}
}

// TestMigrationAloneIsContained checks the base case: before any
// transaction runs, the migrated state contains the original state.
func TestMigrationAloneIsContained(t *testing.T) {
	for _, b := range benchmarks.All() {
		t.Run(b.Name, func(t *testing.T) {
			prog, err := b.Program()
			if err != nil {
				t.Fatal(err)
			}
			res, err := Repair(prog, anomaly.EC)
			if err != nil {
				t.Fatal(err)
			}
			db := store.NewDB(prog)
			for _, r := range b.Rows(benchmarks.Scale{Records: 8}) {
				if _, err := db.Load(r.Table, r.Row); err != nil {
					t.Fatal(err)
				}
			}
			refDB, err := refactor.Migrate(db, prog, res.Program, res.Corrs)
			if err != nil {
				t.Fatalf("Migrate: %v", err)
			}
			if err := refactor.Contains(db, refDB, prog, res.Program, res.Corrs); err != nil {
				t.Fatalf("containment after migration: %v", err)
			}
		})
	}
}
