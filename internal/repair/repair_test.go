package repair

import (
	"strings"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/parser"
	"atropos/internal/sema"
)

const courseware = `
table COURSE {
  co_id: int key,
  co_avail: bool,
  co_st_cnt: int,
}

table EMAIL {
  em_id: int key,
  em_addr: string,
}

table STUDENT {
  st_id: int key,
  st_name: string,
  st_em_id: int,
  st_co_id: int,
  st_reg: bool,
}

txn getSt(id: int) {
  x := select * from STUDENT where st_id = id;
  y := select em_addr from EMAIL where em_id = x.st_em_id;
  z := select co_avail from COURSE where co_id = x.st_co_id;
  return y.em_addr;
}

txn setSt(id: int, name: string, email: string) {
  x := select st_em_id from STUDENT where st_id = id;
  update STUDENT set st_name = name where st_id = id;
  update EMAIL set em_addr = email where em_id = x.st_em_id;
}

txn regSt(id: int, course: int) {
  update STUDENT set st_co_id = course, st_reg = true where st_id = id;
  x := select co_st_cnt from COURSE where co_id = course;
  update COURSE set co_st_cnt = x.co_st_cnt + 1, co_avail = true where co_id = course;
}
`

func mustProg(t *testing.T, src string) *ast.Program {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	if err := sema.Check(p); err != nil {
		t.Fatalf("sema: %v", err)
	}
	return p
}

// TestRepairCoursewareMatchesFig3 is the paper's worked example end to end:
// Atropos turns Fig. 1 into Fig. 3.
func TestRepairCoursewareMatchesFig3(t *testing.T) {
	prog := mustProg(t, courseware)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	out := res.Program
	t.Logf("steps:\n  %s", strings.Join(res.Steps, "\n  "))
	t.Logf("repaired program:\n%s", ast.Format(out))
	if err := sema.Check(out); err != nil {
		t.Fatalf("repaired program ill-typed: %v", err)
	}

	// All anomalies eliminated (paper Table 1: Courseware EC=5, AT=0).
	if len(res.Remaining) != 0 {
		t.Fatalf("remaining anomalies: %v", res.Remaining)
	}
	if len(res.Initial) == 0 {
		t.Fatal("no initial anomalies detected")
	}

	// Schema shape of Fig. 3: STUDENT absorbed the email address and the
	// course availability; COURSE and EMAIL are gone; a logging table holds
	// the enrollment counter.
	st := out.Schema("STUDENT")
	if st == nil {
		t.Fatal("STUDENT missing")
	}
	if st.Field("st_em_addr") == nil {
		t.Error("STUDENT.st_em_addr missing")
	}
	if st.Field("st_co_avail") == nil {
		t.Error("STUDENT.st_co_avail missing")
	}
	if out.Schema("EMAIL") != nil {
		t.Error("EMAIL not dropped")
	}
	if out.Schema("COURSE") != nil {
		t.Error("COURSE not dropped")
	}
	logSchema := out.Schema("COURSE_CO_ST_CNT_LOG")
	if logSchema == nil {
		t.Fatal("COURSE_CO_ST_CNT_LOG missing")
	}
	if logSchema.Field("co_st_cnt_log") == nil {
		t.Error("log value field missing")
	}

	// Transaction shapes of Fig. 3.
	getSt := ast.Commands(out.Txn("getSt").Body)
	if len(getSt) != 1 {
		t.Errorf("getSt has %d commands, want 1 select", len(getSt))
	} else if _, ok := getSt[0].(*ast.Select); !ok {
		t.Errorf("getSt command is %T", getSt[0])
	}
	setSt := ast.Commands(out.Txn("setSt").Body)
	if len(setSt) != 1 {
		t.Errorf("setSt has %d commands, want 1 update", len(setSt))
	} else if _, ok := setSt[0].(*ast.Update); !ok {
		t.Errorf("setSt command is %T", setSt[0])
	}
	regSt := ast.Commands(out.Txn("regSt").Body)
	if len(regSt) != 2 {
		t.Errorf("regSt has %d commands, want update + insert", len(regSt))
	} else {
		if _, ok := regSt[0].(*ast.Update); !ok {
			t.Errorf("regSt[0] is %T, want update", regSt[0])
		}
		if ins, ok := regSt[1].(*ast.Insert); !ok {
			t.Errorf("regSt[1] is %T, want insert", regSt[1])
		} else if ins.Table != "COURSE_CO_ST_CNT_LOG" {
			t.Errorf("regSt insert targets %s", ins.Table)
		}
	}

	// Value correspondences were recorded.
	if len(res.Corrs) == 0 {
		t.Error("no correspondences recorded")
	}
	// Nothing needs serializability any more.
	if len(res.SerializableTxns) != 0 {
		t.Errorf("serializable txns = %v, want none", res.SerializableTxns)
	}
}

func TestRepairIdempotentOnCleanProgram(t *testing.T) {
	src := `
table T { id: int key, a: int, }
txn rd(k: int) {
  x := select a from T where id = k;
  return x.a;
}
`
	prog := mustProg(t, src)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(res.Initial) != 0 || len(res.Remaining) != 0 {
		t.Fatalf("clean program reported anomalies: %v", res.Initial)
	}
	if len(res.Corrs) != 0 {
		t.Error("clean program got correspondences")
	}
}

func TestRepairLostUpdateViaLogging(t *testing.T) {
	src := `
table ACC { id: int key, bal: int, }
txn deposit(k: int, amt: int) {
  x := select bal from ACC where id = k;
  update ACC set bal = x.bal + amt where id = k;
}
`
	prog := mustProg(t, src)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(res.Remaining) != 0 {
		t.Fatalf("remaining: %v\n%s", res.Remaining, ast.Format(res.Program))
	}
	if res.Program.Schema("ACC_BAL_LOG") == nil {
		t.Fatalf("no logging schema introduced:\n%s", ast.Format(res.Program))
	}
	cmds := ast.Commands(res.Program.Txn("deposit").Body)
	if len(cmds) != 1 {
		t.Fatalf("deposit has %d commands, want 1 insert", len(cmds))
	}
	if _, ok := cmds[0].(*ast.Insert); !ok {
		t.Fatalf("deposit command is %T, want insert", cmds[0])
	}
}

func TestRepairPreservesReadersOfLoggedField(t *testing.T) {
	// A reader aggregates the logged field: it must be rewritten to
	// sum over the log, not removed.
	src := `
table ACC { id: int key, bal: int, }
txn deposit(k: int, amt: int) {
  x := select bal from ACC where id = k;
  update ACC set bal = x.bal + amt where id = k;
}
txn balance(k: int) {
  x := select bal from ACC where id = k;
  return x.bal;
}
`
	prog := mustProg(t, src)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if err := sema.Check(res.Program); err != nil {
		t.Fatalf("ill-typed: %v\n%s", err, ast.Format(res.Program))
	}
	bal := res.Program.Txn("balance")
	cmds := ast.Commands(bal.Body)
	if len(cmds) != 1 {
		t.Fatalf("balance has %d commands", len(cmds))
	}
	sel := cmds[0].(*ast.Select)
	if sel.Table != "ACC_BAL_LOG" {
		t.Fatalf("balance reads %s, want ACC_BAL_LOG:\n%s", sel.Table, ast.Format(res.Program))
	}
	if got := ast.ExprString(bal.Ret); !strings.Contains(got, "sum(") {
		t.Fatalf("balance return = %s, want sum aggregation", got)
	}
}

func TestRepairUnfixableAbsoluteWrite(t *testing.T) {
	// An absolute (non-increment) read-modify-write on a single field
	// cannot be merged or logged: it must be reported as remaining.
	src := `
table ACC { id: int key, bal: int, cap: int, }
txn clamp(k: int) {
  x := select bal from ACC where id = k;
  if (x.bal > 100) {
    update ACC set bal = 100 where id = k;
  }
}
`
	prog := mustProg(t, src)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	if len(res.Remaining) == 0 {
		t.Fatalf("absolute RMW write reported as repaired:\n%s", ast.Format(res.Program))
	}
	if len(res.SerializableTxns) != 1 || res.SerializableTxns[0] != "clamp" {
		t.Fatalf("serializable txns = %v, want [clamp]", res.SerializableTxns)
	}
}

func TestRepairSplitsMultiFieldUpdate(t *testing.T) {
	// regSt's U2 sets both co_st_cnt and co_avail; preprocessing must
	// split it (Fig. 11).
	prog := mustProg(t, courseware)
	res, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatalf("Repair: %v", err)
	}
	foundSplit := false
	for _, s := range res.Steps {
		if strings.Contains(s, "split regSt.U2") {
			foundSplit = true
		}
	}
	if !foundSplit {
		t.Errorf("no split step recorded:\n%s", strings.Join(res.Steps, "\n"))
	}
}

func TestRepairedProgramStillRepairsToItself(t *testing.T) {
	// Repair is idempotent: repairing the repaired courseware changes
	// nothing.
	prog := mustProg(t, courseware)
	res1, err := Repair(prog, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := Repair(res1.Program, anomaly.EC)
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Initial) != 0 {
		t.Fatalf("repaired program still has %d anomalies", len(res2.Initial))
	}
	if ast.Format(res2.Program) != ast.Format(res1.Program) {
		t.Errorf("second repair changed the program:\n--- first ---\n%s\n--- second ---\n%s",
			ast.Format(res1.Program), ast.Format(res2.Program))
	}
}
