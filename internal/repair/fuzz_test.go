package repair

import (
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/progen"
	"atropos/internal/sema"
)

// TestRepairRandomPrograms drives the full pipeline over randomly
// generated well-formed programs: repair must never error, never produce
// an ill-typed program, and never increase the anomaly count (the
// soundness theorem's "no new behaviours" corollary — sound refactorings
// cannot introduce anomalies).
func TestRepairRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Program(seed)
		if err := sema.Check(p); err != nil {
			t.Fatalf("seed %d: generator produced ill-typed program: %v", seed, err)
		}
		res, err := Repair(p, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: Repair: %v", seed, err)
		}
		if err := sema.Check(res.Program); err != nil {
			t.Fatalf("seed %d: repaired program ill-typed: %v", seed, err)
		}
		if len(res.Remaining) > len(res.Initial) {
			t.Fatalf("seed %d: repair increased anomalies %d -> %d",
				seed, len(res.Initial), len(res.Remaining))
		}
		// Repair must be idempotent on its own output.
		res2, err := Repair(res.Program, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: second Repair: %v", seed, err)
		}
		if len(res2.Remaining) > len(res.Remaining) {
			t.Fatalf("seed %d: re-repair increased anomalies %d -> %d",
				seed, len(res.Remaining), len(res2.Remaining))
		}
	}
}
