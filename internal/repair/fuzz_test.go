package repair

import (
	"reflect"
	"testing"

	"atropos/internal/anomaly"
	"atropos/internal/ast"
	"atropos/internal/progen"
	"atropos/internal/refactor"
	"atropos/internal/sema"
)

// TestRepairRandomPrograms drives the full pipeline over randomly
// generated well-formed programs: repair must never error, never produce
// an ill-typed program, and never increase the anomaly count (the
// soundness theorem's "no new behaviours" corollary — sound refactorings
// cannot introduce anomalies).
func TestRepairRandomPrograms(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for seed := int64(0); seed < 60; seed++ {
		p := progen.Program(seed)
		if err := sema.Check(p); err != nil {
			t.Fatalf("seed %d: generator produced ill-typed program: %v", seed, err)
		}
		res, err := Repair(p, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: Repair: %v", seed, err)
		}
		if err := sema.Check(res.Program); err != nil {
			t.Fatalf("seed %d: repaired program ill-typed: %v", seed, err)
		}
		if len(res.Remaining) > len(res.Initial) {
			t.Fatalf("seed %d: repair increased anomalies %d -> %d",
				seed, len(res.Initial), len(res.Remaining))
		}
		// Repair must be idempotent on its own output.
		res2, err := Repair(res.Program, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: second Repair: %v", seed, err)
		}
		if len(res2.Remaining) > len(res.Remaining) {
			t.Fatalf("seed %d: re-repair increased anomalies %d -> %d",
				seed, len(res.Remaining), len(res2.Remaining))
		}
	}
}

// FuzzRepairRandomProgram drives the pipeline over generator-derived
// programs under fuzzed seeds: repair must never error, never produce an
// ill-typed program, never increase the anomaly count, and the incremental
// engine's stats must stay coherent. The nightly CI job runs this target
// for 30s per night (see .github/workflows/nightly.yml).
func FuzzRepairRandomProgram(f *testing.F) {
	for seed := int64(0); seed < 8; seed++ {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, seed int64) {
		p := progen.Program(seed)
		if err := sema.Check(p); err != nil {
			t.Fatalf("seed %d: generator produced ill-typed program: %v", seed, err)
		}
		res, err := Repair(p, anomaly.EC)
		if err != nil {
			t.Fatalf("seed %d: Repair: %v", seed, err)
		}
		if err := sema.Check(res.Program); err != nil {
			t.Fatalf("seed %d: repaired program ill-typed: %v", seed, err)
		}
		if len(res.Remaining) > len(res.Initial) {
			t.Fatalf("seed %d: repair increased anomalies %d -> %d",
				seed, len(res.Initial), len(res.Remaining))
		}
		if res.Stats.Solved > res.Stats.Queries {
			t.Fatalf("seed %d: solved %d > issued %d", seed, res.Stats.Solved, res.Stats.Queries)
		}
	})
}

// FuzzCOWDeepCloneEquivalence fuzzes the copy-on-write refactoring
// engine's differential contract (DESIGN.md §10): over random progen
// programs and weak models, the full repair pipeline must produce a
// byte-identical printed program, identical steps, and identical
// remaining-pair counts under the COW engine and the legacy deep-clone
// engine. The nightly CI job runs this target alongside the others.
func FuzzCOWDeepCloneEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, modelByte uint8) {
		model := []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR}[int(modelByte)%3]
		run := func(deep bool) (string, []string, int, int) {
			refactor.SetDeepClone(deep)
			defer refactor.SetDeepClone(false)
			res, err := Repair(progen.Program(seed), model)
			if err != nil {
				t.Fatalf("seed %d %v deep=%t: Repair: %v", seed, model, deep, err)
			}
			return ast.Format(res.Program), res.Steps, len(res.Initial), len(res.Remaining)
		}
		dProg, dSteps, dInit, dRem := run(true)
		cProg, cSteps, cInit, cRem := run(false)
		if dProg != cProg {
			t.Fatalf("seed %d %v: printed programs diverge\ndeep:\n%s\ncow:\n%s", seed, model, dProg, cProg)
		}
		if !reflect.DeepEqual(dSteps, cSteps) {
			t.Fatalf("seed %d %v: steps diverge\ndeep %v\ncow  %v", seed, model, dSteps, cSteps)
		}
		if dInit != cInit || dRem != cRem {
			t.Fatalf("seed %d %v: pair counts diverge (deep %d→%d, cow %d→%d)",
				seed, model, dInit, dRem, cInit, cRem)
		}
	})
}

// FuzzParallelDetectEquivalence fuzzes the parallel fast path's
// contract: over random progen programs, weak models, fan-out widths,
// and portfolio sizes, a wavefront detection must report the same pairs
// as the sequential fresh oracle (byte-identical without a portfolio;
// identity-identical with one — racing replicas return timing-dependent
// satisfying models, so reported fields may differ while the verdicts,
// and hence the pair identities, cannot). The nightly CI job runs this
// target alongside the others (see .github/workflows/nightly.yml).
func FuzzParallelDetectEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(0), uint8(2), uint8(1))
	f.Add(int64(1), uint8(1), uint8(4), uint8(3))
	f.Add(int64(2), uint8(2), uint8(8), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, modelByte, parByte, kByte uint8) {
		model := []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR}[int(modelByte)%3]
		par := 2 + int(parByte)%7     // 2..8 workers
		portfolio := 1 + int(kByte)%3 // 1..3 replicas
		p := progen.Program(seed)
		fresh, err := anomaly.Detect(p, model)
		if err != nil {
			t.Fatalf("seed %d %v: Detect: %v", seed, model, err)
		}
		s := anomaly.NewSession(model)
		s.SetParallelism(par)
		s.SetPortfolio(portfolio)
		got, err := s.Detect(p)
		if err != nil {
			t.Fatalf("seed %d %v par=%d k=%d: wavefront Detect: %v", seed, model, par, portfolio, err)
		}
		if got.Queries != fresh.Queries {
			t.Fatalf("seed %d %v par=%d k=%d: wavefront issued %d queries, fresh %d",
				seed, model, par, portfolio, got.Queries, fresh.Queries)
		}
		if portfolio <= 1 {
			if !reflect.DeepEqual(fresh.Pairs, got.Pairs) {
				t.Fatalf("seed %d %v par=%d: wavefront diverges:\nfresh %v\ngot   %v",
					seed, model, par, fresh.Pairs, got.Pairs)
			}
			return
		}
		if len(fresh.Pairs) != len(got.Pairs) {
			t.Fatalf("seed %d %v par=%d k=%d: %d pairs vs fresh %d",
				seed, model, par, portfolio, len(got.Pairs), len(fresh.Pairs))
		}
		for i := range fresh.Pairs {
			fp, gp := fresh.Pairs[i], got.Pairs[i]
			if fp.Txn != gp.Txn || fp.C1 != gp.C1 || fp.C2 != gp.C2 ||
				fp.Witness.Txn != gp.Witness.Txn || fp.Witness.D1 != gp.Witness.D1 || fp.Witness.D2 != gp.Witness.D2 {
				t.Fatalf("seed %d %v par=%d k=%d: pair %d identity diverges:\nfresh %v\ngot   %v",
					seed, model, par, portfolio, i, fp, gp)
			}
		}
	})
}

// FuzzDetectSessionEquivalence fuzzes the incremental oracle's core
// contract: a DetectSession must report byte-identical pairs to a fresh
// Detect on the same program, under every weak model, and repair must make
// identical decisions with either oracle.
func FuzzDetectSessionEquivalence(f *testing.F) {
	f.Add(int64(0), uint8(0))
	f.Add(int64(1), uint8(1))
	f.Add(int64(2), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, modelByte uint8) {
		model := []anomaly.Model{anomaly.EC, anomaly.CC, anomaly.RR}[int(modelByte)%3]
		p := progen.Program(seed)
		fresh, err := anomaly.Detect(p, model)
		if err != nil {
			t.Fatalf("seed %d %v: Detect: %v", seed, model, err)
		}
		s := anomaly.NewSession(model)
		got, err := s.Detect(p)
		if err != nil {
			t.Fatalf("seed %d %v: session Detect: %v", seed, model, err)
		}
		if !reflect.DeepEqual(fresh.Pairs, got.Pairs) {
			t.Fatalf("seed %d %v: session diverges from fresh Detect:\nfresh %v\ngot   %v",
				seed, model, fresh.Pairs, got.Pairs)
		}
		freshRep, err := RepairWith(p, model, Options{})
		if err != nil {
			t.Fatalf("seed %d %v: fresh repair: %v", seed, model, err)
		}
		incRep, err := RepairWith(p, model, Options{Incremental: true})
		if err != nil {
			t.Fatalf("seed %d %v: incremental repair: %v", seed, model, err)
		}
		if !reflect.DeepEqual(freshRep.Steps, incRep.Steps) {
			t.Fatalf("seed %d %v: repair steps diverge", seed, model)
		}
	})
}
